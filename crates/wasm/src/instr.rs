//! Structured decoding of individual instructions from raw bytecode.
//!
//! The engine interprets bytecode in place; this module provides the shared
//! instruction cursor used by the validator, the JIT compiler, the bytecode
//! rewriter, and monitors that enumerate probe sites.

use crate::leb128;
use crate::opcodes as op;
use crate::types::{BlockType, ValType};

/// Immediate operands of a decoded instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Imm {
    /// No immediates.
    None,
    /// Block type of `block` / `loop` / `if`.
    Block(BlockType),
    /// A single index immediate (label, local, global, function).
    Idx(u32),
    /// `call_indirect` immediates.
    CallIndirect {
        /// Expected function type index.
        type_idx: u32,
        /// Table index (MVP: 0).
        table: u32,
    },
    /// `br_table` immediates.
    BrTable {
        /// Branch targets.
        targets: Vec<u32>,
        /// Default target.
        default: u32,
    },
    /// Memory access immediates.
    Mem {
        /// log2 of the alignment hint.
        align: u32,
        /// Constant byte offset.
        offset: u32,
    },
    /// Memory index immediate of `memory.size` / `memory.grow` (MVP: 0).
    MemIdx(u32),
    /// `i32.const` payload.
    I32(i32),
    /// `i64.const` payload.
    I64(i64),
    /// `f32.const` payload.
    F32(f32),
    /// `f64.const` payload.
    F64(f64),
}

/// One decoded instruction with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Byte offset of the opcode within the function body.
    pub pc: u32,
    /// The opcode byte.
    pub op: u8,
    /// Decoded immediates.
    pub imm: Imm,
}

/// Error decoding an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrError {
    /// Offset of the offending instruction.
    pub pc: u32,
    /// Human-readable cause.
    pub msg: String,
}

impl core::fmt::Display for InstrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "instruction decode error at pc={}: {}", self.pc, self.msg)
    }
}

impl std::error::Error for InstrError {}

fn err(pc: usize, msg: impl Into<String>) -> InstrError {
    InstrError { pc: pc as u32, msg: msg.into() }
}

fn read_block_type(code: &[u8], pos: usize, at: usize) -> Result<(BlockType, usize), InstrError> {
    let b = *code.get(pos).ok_or_else(|| err(at, "truncated block type"))?;
    if b == 0x40 {
        return Ok((BlockType::Empty, pos + 1));
    }
    match ValType::from_byte(b) {
        Some(t) => Ok((BlockType::Value(t), pos + 1)),
        None => Err(err(at, format!("unsupported block type byte {b:#x}"))),
    }
}

/// Decodes the instruction at byte offset `pc` in `code`.
///
/// Returns the instruction and the offset of the next instruction.
///
/// # Errors
///
/// Returns [`InstrError`] on truncated or invalid encodings, including the
/// engine-reserved probe byte (which is not valid module bytecode).
pub fn decode_at(code: &[u8], pc: usize) -> Result<(Instr, usize), InstrError> {
    let opcode = *code.get(pc).ok_or_else(|| err(pc, "pc out of bounds"))?;
    let kind = op::imm_kind(opcode).ok_or_else(|| match op::unsupported_class(opcode) {
        Some(class) => {
            err(pc, format!("unsupported opcode {opcode:#04x}: {class} is outside the MVP subset"))
        }
        None => err(pc, format!("invalid opcode {opcode:#04x}")),
    })?;
    let mut pos = pc + 1;
    let lerr = |_| err(pc, "truncated immediate");
    let imm = match kind {
        op::ImmKind::None => Imm::None,
        op::ImmKind::BlockType => {
            let (bt, p) = read_block_type(code, pos, pc)?;
            pos = p;
            Imm::Block(bt)
        }
        op::ImmKind::Index => {
            let (v, p) = leb128::read_u32(code, pos).map_err(lerr)?;
            pos = p;
            Imm::Idx(v)
        }
        op::ImmKind::CallIndirect => {
            let (type_idx, p) = leb128::read_u32(code, pos).map_err(lerr)?;
            let (table, p) = leb128::read_u32(code, p).map_err(lerr)?;
            pos = p;
            Imm::CallIndirect { type_idx, table }
        }
        op::ImmKind::BrTable => {
            let (n, p) = leb128::read_u32(code, pos).map_err(lerr)?;
            if n > 65536 {
                return Err(err(pc, "br_table too large"));
            }
            let mut targets = Vec::with_capacity(n as usize);
            let mut p = p;
            for _ in 0..n {
                let (t, np) = leb128::read_u32(code, p).map_err(lerr)?;
                targets.push(t);
                p = np;
            }
            let (default, p) = leb128::read_u32(code, p).map_err(lerr)?;
            pos = p;
            Imm::BrTable { targets, default }
        }
        op::ImmKind::MemArg => {
            let (align, p) = leb128::read_u32(code, pos).map_err(lerr)?;
            let (offset, p) = leb128::read_u32(code, p).map_err(lerr)?;
            pos = p;
            Imm::Mem { align, offset }
        }
        op::ImmKind::MemIndex => {
            let b = *code.get(pos).ok_or_else(|| err(pc, "truncated memory index"))?;
            pos += 1;
            Imm::MemIdx(u32::from(b))
        }
        op::ImmKind::ConstI32 => {
            let (v, p) = leb128::read_i32(code, pos).map_err(lerr)?;
            pos = p;
            Imm::I32(v)
        }
        op::ImmKind::ConstI64 => {
            let (v, p) = leb128::read_i64(code, pos).map_err(lerr)?;
            pos = p;
            Imm::I64(v)
        }
        op::ImmKind::ConstF32 => {
            let bytes: [u8; 4] = code
                .get(pos..pos + 4)
                .ok_or_else(|| err(pc, "truncated f32"))?
                .try_into()
                .expect("slice len 4");
            pos += 4;
            Imm::F32(f32::from_le_bytes(bytes))
        }
        op::ImmKind::ConstF64 => {
            let bytes: [u8; 8] = code
                .get(pos..pos + 8)
                .ok_or_else(|| err(pc, "truncated f64"))?
                .try_into()
                .expect("slice len 8");
            pos += 8;
            Imm::F64(f64::from_le_bytes(bytes))
        }
    };
    Ok((Instr { pc: pc as u32, op: opcode, imm }, pos))
}

/// An iterator over the instructions of a function body.
///
/// Yields `Result` items so that decoding errors surface where they occur.
#[derive(Debug, Clone)]
pub struct InstrIter<'a> {
    code: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> InstrIter<'a> {
    /// Creates an iterator over `code` starting at offset 0.
    pub fn new(code: &'a [u8]) -> InstrIter<'a> {
        InstrIter { code, pos: 0, failed: false }
    }

    /// Current byte offset (the pc of the next instruction yielded).
    pub fn pos(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for InstrIter<'a> {
    type Item = Result<Instr, InstrError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos >= self.code.len() {
            return None;
        }
        match decode_at(self.code, self.pos) {
            Ok((instr, next)) => {
                self.pos = next;
                Some(Ok(instr))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Encodes a single instruction to bytes (the inverse of [`decode_at`]);
/// used by the builder and the bytecode rewriter.
pub fn encode(instr_op: u8, imm: &Imm, out: &mut Vec<u8>) {
    out.push(instr_op);
    match imm {
        Imm::None => {}
        Imm::Block(bt) => match bt {
            BlockType::Empty => out.push(0x40),
            BlockType::Value(t) => out.push(t.byte()),
        },
        Imm::Idx(v) => leb128::write_u32(out, *v),
        Imm::CallIndirect { type_idx, table } => {
            leb128::write_u32(out, *type_idx);
            leb128::write_u32(out, *table);
        }
        Imm::BrTable { targets, default } => {
            leb128::write_u32(out, targets.len() as u32);
            for t in targets {
                leb128::write_u32(out, *t);
            }
            leb128::write_u32(out, *default);
        }
        Imm::Mem { align, offset } => {
            leb128::write_u32(out, *align);
            leb128::write_u32(out, *offset);
        }
        Imm::MemIdx(v) => out.push(*v as u8),
        Imm::I32(v) => leb128::write_i32(out, *v),
        Imm::I64(v) => leb128::write_i64(out, *v),
        Imm::F32(v) => out.extend_from_slice(&v.to_le_bytes()),
        Imm::F64(v) => out.extend_from_slice(&v.to_le_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcodes as op;

    #[test]
    fn decode_simple_sequence() {
        // i32.const 5; i32.const -1; i32.add; end
        let code = [0x41, 0x05, 0x41, 0x7f, 0x6a, 0x0b];
        let instrs: Vec<Instr> = InstrIter::new(&code).collect::<Result<_, _>>().unwrap();
        assert_eq!(instrs.len(), 4);
        assert_eq!(instrs[0].imm, Imm::I32(5));
        assert_eq!(instrs[1].imm, Imm::I32(-1));
        assert_eq!(instrs[2].op, op::I32_ADD);
        assert_eq!(instrs[2].pc, 4);
        assert_eq!(instrs[3].op, op::END);
    }

    #[test]
    fn decode_br_table() {
        let mut code = vec![op::BR_TABLE];
        crate::leb128::write_u32(&mut code, 2);
        crate::leb128::write_u32(&mut code, 0);
        crate::leb128::write_u32(&mut code, 1);
        crate::leb128::write_u32(&mut code, 2);
        let (i, next) = decode_at(&code, 0).unwrap();
        assert_eq!(i.imm, Imm::BrTable { targets: vec![0, 1], default: 2 });
        assert_eq!(next, code.len());
    }

    #[test]
    fn decode_memarg_and_consts() {
        let mut code = vec![op::F64_LOAD, 0x03, 0x10];
        code.push(op::F64_CONST);
        code.extend_from_slice(&2.5f64.to_le_bytes());
        let (i, next) = decode_at(&code, 0).unwrap();
        assert_eq!(i.imm, Imm::Mem { align: 3, offset: 16 });
        let (i2, _) = decode_at(&code, next).unwrap();
        assert_eq!(i2.imm, Imm::F64(2.5));
    }

    #[test]
    fn probe_byte_rejected() {
        assert!(decode_at(&[op::PROBE], 0).is_err());
    }

    #[test]
    fn truncated_immediate_rejected() {
        assert!(decode_at(&[op::I32_CONST], 0).is_err());
        assert!(decode_at(&[op::F32_CONST, 1, 2], 0).is_err());
        assert!(decode_at(&[op::BLOCK], 0).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cases: Vec<(u8, Imm)> = vec![
            (op::NOP, Imm::None),
            (op::BLOCK, Imm::Block(BlockType::Value(ValType::F32))),
            (op::BR, Imm::Idx(3)),
            (op::CALL_INDIRECT, Imm::CallIndirect { type_idx: 7, table: 0 }),
            (op::BR_TABLE, Imm::BrTable { targets: vec![9, 0, 2], default: 1 }),
            (op::I64_STORE, Imm::Mem { align: 3, offset: 1024 }),
            (op::MEMORY_GROW, Imm::MemIdx(0)),
            (op::I32_CONST, Imm::I32(-123456)),
            (op::I64_CONST, Imm::I64(i64::MIN)),
            (op::F32_CONST, Imm::F32(1.5)),
            (op::F64_CONST, Imm::F64(-0.0)),
        ];
        for (opcode, imm) in cases {
            let mut buf = Vec::new();
            encode(opcode, &imm, &mut buf);
            let (got, next) = decode_at(&buf, 0).unwrap();
            assert_eq!(got.op, opcode);
            assert_eq!(next, buf.len());
            // NaN-free payloads compare equal.
            assert_eq!(got.imm, imm);
        }
    }

    #[test]
    fn iterator_stops_after_error() {
        let code = [op::NOP, 0xfe, op::NOP];
        let mut it = InstrIter::new(&code);
        assert!(it.next().unwrap().is_ok());
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }
}
