//! An assembler-style API for constructing WebAssembly modules in Rust.
//!
//! Benchmark suites and tests use this builder instead of a C toolchain:
//! the emitted bytecode is real Wasm, checked by [`crate::validate`].

use crate::instr::{encode, Imm};
use crate::module::{
    ConstExpr, DataSegment, ElemSegment, Export, FuncBody, FuncDecl, FuncIdx, Global, GlobalIdx,
    Import, ImportDesc, LocalIdx, Module, TypeIdx,
};
use crate::opcodes as op;
use crate::types::{
    BlockType, ExternKind, FuncType, GlobalType, Limits, MemoryType, TableType, ValType,
};
use crate::validate::{validate, ModuleMeta, ValidateError};

/// Incrementally builds a [`Module`].
///
/// # Examples
///
/// ```
/// use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
/// use wizard_wasm::types::ValType::I32;
///
/// let mut mb = ModuleBuilder::new();
/// let mut f = FuncBuilder::new(&[I32, I32], &[I32]);
/// f.local_get(0).local_get(1).i32_add();
/// mb.add_func("add", f);
/// let module = mb.build().unwrap();
/// assert!(module.export_func("add").is_some());
/// ```
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
    declared: Vec<bool>,
}

impl ModuleBuilder {
    /// Creates an empty builder.
    pub fn new() -> ModuleBuilder {
        ModuleBuilder::default()
    }

    /// Interns a function signature, deduplicating identical ones.
    pub fn sig(&mut self, params: &[ValType], results: &[ValType]) -> TypeIdx {
        let ty = FuncType::new(params, results);
        if let Some(i) = self.module.types.iter().position(|t| *t == ty) {
            return i as TypeIdx;
        }
        self.module.types.push(ty);
        (self.module.types.len() - 1) as TypeIdx
    }

    /// Imports a function. All imports must be declared before the first
    /// local function is added (Wasm index-space rule).
    ///
    /// # Panics
    ///
    /// Panics if a local function has already been declared.
    pub fn import_func(
        &mut self,
        module: &str,
        name: &str,
        params: &[ValType],
        results: &[ValType],
    ) -> FuncIdx {
        assert!(self.module.funcs.is_empty(), "imports must precede local function declarations");
        let t = self.sig(params, results);
        self.module.imports.push(Import {
            module: module.into(),
            name: name.into(),
            desc: ImportDesc::Func(t),
        });
        let idx = self.module.num_imported_funcs() - 1;
        self.set_name(idx, name);
        idx
    }

    /// Imports a global. Imported globals precede local globals in the
    /// index space, so all global imports must be declared before the
    /// first [`ModuleBuilder::global`] call.
    ///
    /// # Panics
    ///
    /// Panics if a local global has already been declared.
    pub fn import_global(
        &mut self,
        module: &str,
        name: &str,
        value: ValType,
        mutable: bool,
    ) -> GlobalIdx {
        assert!(
            self.module.globals.is_empty(),
            "global imports must precede local global declarations"
        );
        self.module.imports.push(Import {
            module: module.into(),
            name: name.into(),
            desc: ImportDesc::Global(GlobalType { value, mutable }),
        });
        self.module.imports.iter().filter(|i| matches!(i.desc, ImportDesc::Global(_))).count()
            as GlobalIdx
            - 1
    }

    /// Declares a function signature and reserves its index, allowing
    /// forward references (e.g. mutual recursion). The body must later be
    /// supplied with [`ModuleBuilder::define_func`].
    pub fn declare_func(&mut self, name: &str, params: &[ValType], results: &[ValType]) -> FuncIdx {
        let t = self.sig(params, results);
        self.module.funcs.push(FuncDecl { type_idx: t, body: FuncBody::default() });
        self.declared.push(false);
        let idx = self.module.num_imported_funcs() + self.module.funcs.len() as u32 - 1;
        self.set_name(idx, name);
        idx
    }

    /// Supplies the body for a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a declared local function, if it was already
    /// defined, or if the builder's signature disagrees with the declaration.
    pub fn define_func(&mut self, idx: FuncIdx, f: FuncBuilder) {
        let n_imp = self.module.num_imported_funcs();
        assert!(idx >= n_imp, "cannot define an imported function");
        let local = (idx - n_imp) as usize;
        assert!(!self.declared[local], "function {idx} defined twice");
        let decl_ty = &self.module.types[self.module.funcs[local].type_idx as usize];
        assert_eq!(decl_ty.params, f.params, "parameter mismatch for func {idx}");
        assert_eq!(decl_ty.results, f.results, "result mismatch for func {idx}");
        self.module.funcs[local].body = f.into_body();
        self.declared[local] = true;
    }

    /// Declares and defines a function in one step, exporting it by `name`.
    pub fn add_func(&mut self, name: &str, f: FuncBuilder) -> FuncIdx {
        let idx = self.declare_func(name, &f.params.clone(), &f.results.clone());
        self.define_func(idx, f);
        self.export(name, ExternKind::Func, idx);
        idx
    }

    /// Like [`ModuleBuilder::add_func`] but without exporting.
    pub fn add_private_func(&mut self, name: &str, f: FuncBuilder) -> FuncIdx {
        let idx = self.declare_func(name, &f.params.clone(), &f.results.clone());
        self.define_func(idx, f);
        idx
    }

    /// Adds a memory with `min` pages (and no maximum).
    pub fn memory(&mut self, min: u32) -> &mut Self {
        self.module.memories.push(MemoryType { limits: Limits::at_least(min) });
        self
    }

    /// Adds a memory with explicit limits.
    pub fn memory_bounded(&mut self, min: u32, max: u32) -> &mut Self {
        self.module.memories.push(MemoryType { limits: Limits::bounded(min, max) });
        self
    }

    /// Adds a mutable or immutable global and returns its index.
    pub fn global(&mut self, value: ValType, mutable: bool, init: ConstExpr) -> GlobalIdx {
        self.module.globals.push(Global { ty: GlobalType { value, mutable }, init });
        let n_imported =
            self.module.imports.iter().filter(|i| matches!(i.desc, ImportDesc::Global(_))).count()
                as u32;
        n_imported + self.module.globals.len() as u32 - 1
    }

    /// Adds a funcref table with `min` elements.
    pub fn table(&mut self, min: u32) -> &mut Self {
        self.module.tables.push(TableType { limits: Limits::at_least(min) });
        self
    }

    /// Adds an element segment at constant `offset`.
    pub fn elem(&mut self, offset: i32, funcs: &[FuncIdx]) -> &mut Self {
        self.module.elems.push(ElemSegment {
            table: 0,
            offset: ConstExpr::I32(offset),
            funcs: funcs.to_vec(),
        });
        self
    }

    /// Adds a data segment at constant `offset`.
    pub fn data(&mut self, offset: i32, bytes: &[u8]) -> &mut Self {
        self.module.data.push(DataSegment {
            memory: 0,
            offset: ConstExpr::I32(offset),
            bytes: bytes.to_vec(),
        });
        self
    }

    /// Adds an export.
    pub fn export(&mut self, name: &str, kind: ExternKind, index: u32) -> &mut Self {
        self.module.exports.push(Export { name: name.into(), kind, index });
        self
    }

    /// Sets the start function.
    pub fn start(&mut self, idx: FuncIdx) -> &mut Self {
        self.module.start = Some(idx);
        self
    }

    fn set_name(&mut self, idx: FuncIdx, name: &str) {
        let i = idx as usize;
        if self.module.names.len() <= i {
            self.module.names.resize(i + 1, None);
        }
        self.module.names[i] = Some(name.to_string());
    }

    /// Finishes and validates the module.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the module does not type-check.
    ///
    /// # Panics
    ///
    /// Panics if a declared function was never defined.
    pub fn build(self) -> Result<Module, ValidateError> {
        let (m, _) = self.build_with_meta()?;
        Ok(m)
    }

    /// Finishes, validates, and also returns the validation metadata.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the module does not type-check.
    ///
    /// # Panics
    ///
    /// Panics if a declared function was never defined.
    pub fn build_with_meta(self) -> Result<(Module, ModuleMeta), ValidateError> {
        for (i, defined) in self.declared.iter().enumerate() {
            assert!(*defined, "function at local index {i} was declared but never defined");
        }
        let meta = validate(&self.module)?;
        Ok((self.module, meta))
    }

    /// Returns the module without validating (for negative tests).
    pub fn build_unchecked(self) -> Module {
        self.module
    }
}

/// Builds the body of one function, emitting raw bytecode.
///
/// The final `end` is appended automatically by [`FuncBuilder::into_body`].
#[derive(Debug, Clone)]
pub struct FuncBuilder {
    params: Vec<ValType>,
    results: Vec<ValType>,
    locals: Vec<ValType>,
    code: Vec<u8>,
}

macro_rules! simple_ops {
    ($($(#[$doc:meta])* $method:ident => $opcode:expr;)*) => {
        $(
            $(#[$doc])*
            pub fn $method(&mut self) -> &mut Self {
                self.code.push($opcode);
                self
            }
        )*
    };
}

impl FuncBuilder {
    /// Creates a builder for a function with the given signature.
    pub fn new(params: &[ValType], results: &[ValType]) -> FuncBuilder {
        FuncBuilder {
            params: params.to_vec(),
            results: results.to_vec(),
            locals: Vec::new(),
            code: Vec::new(),
        }
    }

    /// Declares one local and returns its index (params come first).
    pub fn local(&mut self, t: ValType) -> LocalIdx {
        self.locals.push(t);
        (self.params.len() + self.locals.len() - 1) as LocalIdx
    }

    /// Declares `n` locals of type `t`, returning the first index.
    pub fn locals(&mut self, n: u32, t: ValType) -> LocalIdx {
        let first = self.local(t);
        for _ in 1..n {
            self.local(t);
        }
        first
    }

    /// Current byte offset (pc of the next emitted instruction).
    pub fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    /// Emits a bare opcode byte (no immediates).
    pub fn op(&mut self, opcode: u8) -> &mut Self {
        self.code.push(opcode);
        self
    }

    /// Emits an arbitrary instruction.
    pub fn instr(&mut self, opcode: u8, imm: &Imm) -> &mut Self {
        encode(opcode, imm, &mut self.code);
        self
    }

    // ---- constants ----

    /// `i32.const`.
    pub fn i32_const(&mut self, v: i32) -> &mut Self {
        self.instr(op::I32_CONST, &Imm::I32(v))
    }

    /// `i64.const`.
    pub fn i64_const(&mut self, v: i64) -> &mut Self {
        self.instr(op::I64_CONST, &Imm::I64(v))
    }

    /// `f32.const`.
    pub fn f32_const(&mut self, v: f32) -> &mut Self {
        self.instr(op::F32_CONST, &Imm::F32(v))
    }

    /// `f64.const`.
    pub fn f64_const(&mut self, v: f64) -> &mut Self {
        self.instr(op::F64_CONST, &Imm::F64(v))
    }

    // ---- variables ----

    /// `local.get`.
    pub fn local_get(&mut self, i: LocalIdx) -> &mut Self {
        self.instr(op::LOCAL_GET, &Imm::Idx(i))
    }

    /// `local.set`.
    pub fn local_set(&mut self, i: LocalIdx) -> &mut Self {
        self.instr(op::LOCAL_SET, &Imm::Idx(i))
    }

    /// `local.tee`.
    pub fn local_tee(&mut self, i: LocalIdx) -> &mut Self {
        self.instr(op::LOCAL_TEE, &Imm::Idx(i))
    }

    /// `global.get`.
    pub fn global_get(&mut self, i: GlobalIdx) -> &mut Self {
        self.instr(op::GLOBAL_GET, &Imm::Idx(i))
    }

    /// `global.set`.
    pub fn global_set(&mut self, i: GlobalIdx) -> &mut Self {
        self.instr(op::GLOBAL_SET, &Imm::Idx(i))
    }

    // ---- control ----

    /// `block` with result type.
    pub fn block(&mut self, bt: BlockType) -> &mut Self {
        self.instr(op::BLOCK, &Imm::Block(bt))
    }

    /// `loop` with result type.
    pub fn loop_(&mut self, bt: BlockType) -> &mut Self {
        self.instr(op::LOOP, &Imm::Block(bt))
    }

    /// `if` with result type.
    pub fn if_(&mut self, bt: BlockType) -> &mut Self {
        self.instr(op::IF, &Imm::Block(bt))
    }

    /// `else`.
    pub fn else_(&mut self) -> &mut Self {
        self.op(op::ELSE)
    }

    /// `end`.
    pub fn end(&mut self) -> &mut Self {
        self.op(op::END)
    }

    /// `br`.
    pub fn br(&mut self, depth: u32) -> &mut Self {
        self.instr(op::BR, &Imm::Idx(depth))
    }

    /// `br_if`.
    pub fn br_if(&mut self, depth: u32) -> &mut Self {
        self.instr(op::BR_IF, &Imm::Idx(depth))
    }

    /// `br_table`.
    pub fn br_table(&mut self, targets: &[u32], default: u32) -> &mut Self {
        self.instr(op::BR_TABLE, &Imm::BrTable { targets: targets.to_vec(), default })
    }

    /// `call`.
    pub fn call(&mut self, f: FuncIdx) -> &mut Self {
        self.instr(op::CALL, &Imm::Idx(f))
    }

    /// `call_indirect` on table 0.
    pub fn call_indirect(&mut self, type_idx: TypeIdx) -> &mut Self {
        self.instr(op::CALL_INDIRECT, &Imm::CallIndirect { type_idx, table: 0 })
    }

    // ---- memory ----

    /// Emits a load instruction with the given memarg.
    pub fn load(&mut self, opcode: u8, align: u32, offset: u32) -> &mut Self {
        debug_assert!(op::is_load(opcode));
        self.instr(opcode, &Imm::Mem { align, offset })
    }

    /// Emits a store instruction with the given memarg.
    pub fn store(&mut self, opcode: u8, align: u32, offset: u32) -> &mut Self {
        debug_assert!(op::is_store(opcode));
        self.instr(opcode, &Imm::Mem { align, offset })
    }

    /// `i32.load` with natural alignment.
    pub fn i32_load(&mut self, offset: u32) -> &mut Self {
        self.load(op::I32_LOAD, 2, offset)
    }

    /// `i32.store` with natural alignment.
    pub fn i32_store(&mut self, offset: u32) -> &mut Self {
        self.store(op::I32_STORE, 2, offset)
    }

    /// `i64.load` with natural alignment.
    pub fn i64_load(&mut self, offset: u32) -> &mut Self {
        self.load(op::I64_LOAD, 3, offset)
    }

    /// `i64.store` with natural alignment.
    pub fn i64_store(&mut self, offset: u32) -> &mut Self {
        self.store(op::I64_STORE, 3, offset)
    }

    /// `f64.load` with natural alignment.
    pub fn f64_load(&mut self, offset: u32) -> &mut Self {
        self.load(op::F64_LOAD, 3, offset)
    }

    /// `f64.store` with natural alignment.
    pub fn f64_store(&mut self, offset: u32) -> &mut Self {
        self.store(op::F64_STORE, 3, offset)
    }

    /// `f32.load` with natural alignment.
    pub fn f32_load(&mut self, offset: u32) -> &mut Self {
        self.load(op::F32_LOAD, 2, offset)
    }

    /// `f32.store` with natural alignment.
    pub fn f32_store(&mut self, offset: u32) -> &mut Self {
        self.store(op::F32_STORE, 2, offset)
    }

    /// `i32.load8_u` with natural alignment.
    pub fn i32_load8_u(&mut self, offset: u32) -> &mut Self {
        self.load(op::I32_LOAD8_U, 0, offset)
    }

    /// `i32.store8`.
    pub fn i32_store8(&mut self, offset: u32) -> &mut Self {
        self.store(op::I32_STORE8, 0, offset)
    }

    /// `memory.size`.
    pub fn memory_size(&mut self) -> &mut Self {
        self.instr(op::MEMORY_SIZE, &Imm::MemIdx(0))
    }

    /// `memory.grow`.
    pub fn memory_grow(&mut self) -> &mut Self {
        self.instr(op::MEMORY_GROW, &Imm::MemIdx(0))
    }

    simple_ops! {
        /// `unreachable`.
        unreachable => op::UNREACHABLE;
        /// `nop`.
        nop => op::NOP;
        /// `return`.
        return_ => op::RETURN;
        /// `drop`.
        drop_ => op::DROP;
        /// `select`.
        select => op::SELECT;
        /// `i32.eqz`.
        i32_eqz => op::I32_EQZ;
        /// `i32.eq`.
        i32_eq => op::I32_EQ;
        /// `i32.ne`.
        i32_ne => op::I32_NE;
        /// `i32.lt_s`.
        i32_lt_s => op::I32_LT_S;
        /// `i32.lt_u`.
        i32_lt_u => op::I32_LT_U;
        /// `i32.gt_s`.
        i32_gt_s => op::I32_GT_S;
        /// `i32.gt_u`.
        i32_gt_u => op::I32_GT_U;
        /// `i32.le_s`.
        i32_le_s => op::I32_LE_S;
        /// `i32.ge_s`.
        i32_ge_s => op::I32_GE_S;
        /// `i32.ge_u`.
        i32_ge_u => op::I32_GE_U;
        /// `i32.add`.
        i32_add => op::I32_ADD;
        /// `i32.sub`.
        i32_sub => op::I32_SUB;
        /// `i32.mul`.
        i32_mul => op::I32_MUL;
        /// `i32.div_s`.
        i32_div_s => op::I32_DIV_S;
        /// `i32.div_u`.
        i32_div_u => op::I32_DIV_U;
        /// `i32.rem_s`.
        i32_rem_s => op::I32_REM_S;
        /// `i32.rem_u`.
        i32_rem_u => op::I32_REM_U;
        /// `i32.and`.
        i32_and => op::I32_AND;
        /// `i32.or`.
        i32_or => op::I32_OR;
        /// `i32.xor`.
        i32_xor => op::I32_XOR;
        /// `i32.shl`.
        i32_shl => op::I32_SHL;
        /// `i32.shr_s`.
        i32_shr_s => op::I32_SHR_S;
        /// `i32.shr_u`.
        i32_shr_u => op::I32_SHR_U;
        /// `i32.rotl`.
        i32_rotl => op::I32_ROTL;
        /// `i64.eqz`.
        i64_eqz => op::I64_EQZ;
        /// `i64.eq`.
        i64_eq => op::I64_EQ;
        /// `i64.ne`.
        i64_ne => op::I64_NE;
        /// `i64.lt_s`.
        i64_lt_s => op::I64_LT_S;
        /// `i64.lt_u`.
        i64_lt_u => op::I64_LT_U;
        /// `i64.gt_s`.
        i64_gt_s => op::I64_GT_S;
        /// `i64.ge_s`.
        i64_ge_s => op::I64_GE_S;
        /// `i64.add`.
        i64_add => op::I64_ADD;
        /// `i64.sub`.
        i64_sub => op::I64_SUB;
        /// `i64.mul`.
        i64_mul => op::I64_MUL;
        /// `i64.div_u`.
        i64_div_u => op::I64_DIV_U;
        /// `i64.rem_u`.
        i64_rem_u => op::I64_REM_U;
        /// `i64.and`.
        i64_and => op::I64_AND;
        /// `i64.or`.
        i64_or => op::I64_OR;
        /// `i64.xor`.
        i64_xor => op::I64_XOR;
        /// `i64.shl`.
        i64_shl => op::I64_SHL;
        /// `i64.shr_u`.
        i64_shr_u => op::I64_SHR_U;
        /// `i64.rotl`.
        i64_rotl => op::I64_ROTL;
        /// `i64.rotr`.
        i64_rotr => op::I64_ROTR;
        /// `f32.add`.
        f32_add => op::F32_ADD;
        /// `f32.sub`.
        f32_sub => op::F32_SUB;
        /// `f32.mul`.
        f32_mul => op::F32_MUL;
        /// `f32.div`.
        f32_div => op::F32_DIV;
        /// `f64.abs`.
        f64_abs => op::F64_ABS;
        /// `f64.neg`.
        f64_neg => op::F64_NEG;
        /// `f64.sqrt`.
        f64_sqrt => op::F64_SQRT;
        /// `f64.add`.
        f64_add => op::F64_ADD;
        /// `f64.sub`.
        f64_sub => op::F64_SUB;
        /// `f64.mul`.
        f64_mul => op::F64_MUL;
        /// `f64.div`.
        f64_div => op::F64_DIV;
        /// `f64.min`.
        f64_min => op::F64_MIN;
        /// `f64.max`.
        f64_max => op::F64_MAX;
        /// `f64.lt`.
        f64_lt => op::F64_LT;
        /// `f64.gt`.
        f64_gt => op::F64_GT;
        /// `f64.le`.
        f64_le => op::F64_LE;
        /// `f64.ge`.
        f64_ge => op::F64_GE;
        /// `f64.eq`.
        f64_eq => op::F64_EQ;
        /// `i32.wrap_i64`.
        i32_wrap_i64 => op::I32_WRAP_I64;
        /// `i64.extend_i32_s`.
        i64_extend_i32_s => op::I64_EXTEND_I32_S;
        /// `i64.extend_i32_u`.
        i64_extend_i32_u => op::I64_EXTEND_I32_U;
        /// `f64.convert_i32_s`.
        f64_convert_i32_s => op::F64_CONVERT_I32_S;
        /// `f64.convert_i32_u`.
        f64_convert_i32_u => op::F64_CONVERT_I32_U;
        /// `f64.convert_i64_s`.
        f64_convert_i64_s => op::F64_CONVERT_I64_S;
        /// `f64.convert_i64_u`.
        f64_convert_i64_u => op::F64_CONVERT_I64_U;
        /// `i64.extend8_s`.
        i64_extend8_s => op::I64_EXTEND8_S;
        /// `i32.trunc_f64_s`.
        i32_trunc_f64_s => op::I32_TRUNC_F64_S;
        /// `f32.convert_i32_s`.
        f32_convert_i32_s => op::F32_CONVERT_I32_S;
        /// `f64.promote_f32`.
        f64_promote_f32 => op::F64_PROMOTE_F32;
        /// `f32.demote_f64`.
        f32_demote_f64 => op::F32_DEMOTE_F64;
        /// `i64.reinterpret_f64`.
        i64_reinterpret_f64 => op::I64_REINTERPRET_F64;
        /// `f64.reinterpret_i64`.
        f64_reinterpret_i64 => op::F64_REINTERPRET_I64;
    }

    // ---- structured helpers ----

    /// Emits `for (i = 0; i < limit_local; i++) { body }` where `i` and
    /// `limit_local` are i32 locals. The body executes inside two extra
    /// nesting levels (an exit `block` and the `loop`).
    pub fn for_range(
        &mut self,
        i: LocalIdx,
        limit_local: LocalIdx,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.i32_const(0).local_set(i);
        self.block(BlockType::Empty);
        self.loop_(BlockType::Empty);
        self.local_get(i).local_get(limit_local).i32_ge_s().br_if(1);
        body(self);
        self.local_get(i).i32_const(1).i32_add().local_set(i);
        self.br(0);
        self.end();
        self.end();
        self
    }

    /// Emits `for (i = 0; i < n; i++) { body }` for a constant bound.
    pub fn for_const(&mut self, i: LocalIdx, n: i32, body: impl FnOnce(&mut Self)) -> &mut Self {
        self.i32_const(0).local_set(i);
        self.block(BlockType::Empty);
        self.loop_(BlockType::Empty);
        self.local_get(i).i32_const(n).i32_ge_s().br_if(1);
        body(self);
        self.local_get(i).i32_const(1).i32_add().local_set(i);
        self.br(0);
        self.end();
        self.end();
        self
    }

    /// Emits `for (i = start_local; i < limit_local; i++) { body }`.
    pub fn for_range_from(
        &mut self,
        i: LocalIdx,
        start_local: LocalIdx,
        limit_local: LocalIdx,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.local_get(start_local).local_set(i);
        self.block(BlockType::Empty);
        self.loop_(BlockType::Empty);
        self.local_get(i).local_get(limit_local).i32_ge_s().br_if(1);
        body(self);
        self.local_get(i).i32_const(1).i32_add().local_set(i);
        self.br(0);
        self.end();
        self.end();
        self
    }

    /// Emits a `while (cond) { body }` loop. `cond` must leave one i32.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self),
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.block(BlockType::Empty);
        self.loop_(BlockType::Empty);
        cond(self);
        self.i32_eqz().br_if(1);
        body(self);
        self.br(0);
        self.end();
        self.end();
        self
    }

    /// Consumes the builder, producing the function body with final `end`.
    pub fn into_body(mut self) -> FuncBody {
        self.code.push(op::END);
        // Run-length encode the locals.
        let mut rle: Vec<(u32, ValType)> = Vec::new();
        for t in &self.locals {
            match rle.last_mut() {
                Some((n, lt)) if lt == t => *n += 1,
                _ => rle.push((1, *t)),
            }
        }
        FuncBody { locals: rle, code: self.code }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValType::{F64, I32};
    use crate::validate::SideEntry;

    #[test]
    fn build_add_function() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32, I32], &[I32]);
        f.local_get(0).local_get(1).i32_add();
        let idx = mb.add_func("add", f);
        let m = mb.build().unwrap();
        assert_eq!(m.export_func("add"), Some(idx));
        assert_eq!(m.func_type(idx).unwrap().results, vec![I32]);
    }

    #[test]
    fn sig_dedup() {
        let mut mb = ModuleBuilder::new();
        let a = mb.sig(&[I32], &[I32]);
        let b = mb.sig(&[I32], &[I32]);
        let c = mb.sig(&[F64], &[]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn for_const_loop_validates_and_has_header() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        f.for_const(i, 10, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
        });
        f.local_get(acc);
        mb.add_func("sum", f);
        let (m, meta) = mb.build_with_meta().unwrap();
        assert_eq!(meta.funcs.len(), 1);
        assert_eq!(meta.funcs[0].loop_headers.len(), 1);
        let _ = m;
    }

    #[test]
    fn forward_declaration_allows_mutual_recursion() {
        let mut mb = ModuleBuilder::new();
        let even = mb.declare_func("even", &[I32], &[I32]);
        let odd = mb.declare_func("odd", &[I32], &[I32]);
        let mut fe = FuncBuilder::new(&[I32], &[I32]);
        fe.local_get(0).i32_eqz().if_(BlockType::Value(I32));
        fe.i32_const(1);
        fe.else_();
        fe.local_get(0).i32_const(1).i32_sub().call(odd);
        fe.end();
        mb.define_func(even, fe);
        let mut fo = FuncBuilder::new(&[I32], &[I32]);
        fo.local_get(0).i32_eqz().if_(BlockType::Value(I32));
        fo.i32_const(0);
        fo.else_();
        fo.local_get(0).i32_const(1).i32_sub().call(even);
        fo.end();
        mb.define_func(odd, fo);
        mb.export("even", ExternKind::Func, even);
        assert!(mb.build().is_ok());
    }

    #[test]
    fn if_else_sidetable_targets() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let if_pc = f.pc();
        f.local_get(0); // pc 0
        let if_pc = if_pc + 2; // after local.get 0
        f.if_(BlockType::Value(I32));
        let else_body = f.pc();
        f.i32_const(1);
        let else_pc = f.pc();
        f.else_();
        f.i32_const(2);
        f.end();
        let after_end = f.pc(); // pc() already includes the `end` byte
        mb.add_func("sel", f);
        let (_m, meta) = mb.build_with_meta().unwrap();
        let side = &meta.funcs[0].side;
        match side.get(&if_pc) {
            Some(SideEntry::IfFalse(t)) => {
                // False edge jumps to the else body start (after `else` byte).
                assert_eq!(t.target_pc, else_pc + 1);
                let _ = else_body;
            }
            other => panic!("expected IfFalse, got {other:?}"),
        }
        match side.get(&else_pc) {
            Some(SideEntry::ElseSkip(t)) => assert_eq!(t.target_pc, after_end),
            other => panic!("expected ElseSkip, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "declared but never defined")]
    fn undefined_declared_func_panics() {
        let mut mb = ModuleBuilder::new();
        mb.declare_func("f", &[], &[]);
        let _ = mb.build();
    }
}
