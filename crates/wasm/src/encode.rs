//! Encoding of a [`Module`] to the WebAssembly binary format.

use crate::leb128::{write_i32, write_i64, write_u32};
use crate::module::{ConstExpr, ImportDesc, Module};
use crate::opcodes as op;
use crate::types::{ExternKind, Limits};

/// Encodes `module` into the `.wasm` binary format.
pub fn encode(module: &Module) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(b"\0asm");
    out.extend_from_slice(&1u32.to_le_bytes());

    // Section 1: types.
    if !module.types.is_empty() {
        section(&mut out, 1, |buf| {
            write_u32(buf, module.types.len() as u32);
            for t in &module.types {
                buf.push(0x60);
                write_u32(buf, t.params.len() as u32);
                for p in &t.params {
                    buf.push(p.byte());
                }
                write_u32(buf, t.results.len() as u32);
                for r in &t.results {
                    buf.push(r.byte());
                }
            }
        });
    }

    // Section 2: imports.
    if !module.imports.is_empty() {
        section(&mut out, 2, |buf| {
            write_u32(buf, module.imports.len() as u32);
            for imp in &module.imports {
                name(buf, &imp.module);
                name(buf, &imp.name);
                match &imp.desc {
                    ImportDesc::Func(t) => {
                        buf.push(0x00);
                        write_u32(buf, *t);
                    }
                    ImportDesc::Table(t) => {
                        buf.push(0x01);
                        buf.push(0x70);
                        limits(buf, t.limits);
                    }
                    ImportDesc::Memory(m) => {
                        buf.push(0x02);
                        limits(buf, m.limits);
                    }
                    ImportDesc::Global(g) => {
                        buf.push(0x03);
                        buf.push(g.value.byte());
                        buf.push(u8::from(g.mutable));
                    }
                }
            }
        });
    }

    // Section 3: function declarations.
    if !module.funcs.is_empty() {
        section(&mut out, 3, |buf| {
            write_u32(buf, module.funcs.len() as u32);
            for f in &module.funcs {
                write_u32(buf, f.type_idx);
            }
        });
    }

    // Section 4: tables.
    if !module.tables.is_empty() {
        section(&mut out, 4, |buf| {
            write_u32(buf, module.tables.len() as u32);
            for t in &module.tables {
                buf.push(0x70);
                limits(buf, t.limits);
            }
        });
    }

    // Section 5: memories.
    if !module.memories.is_empty() {
        section(&mut out, 5, |buf| {
            write_u32(buf, module.memories.len() as u32);
            for m in &module.memories {
                limits(buf, m.limits);
            }
        });
    }

    // Section 6: globals.
    if !module.globals.is_empty() {
        section(&mut out, 6, |buf| {
            write_u32(buf, module.globals.len() as u32);
            for g in &module.globals {
                buf.push(g.ty.value.byte());
                buf.push(u8::from(g.ty.mutable));
                const_expr(buf, &g.init);
            }
        });
    }

    // Section 7: exports.
    if !module.exports.is_empty() {
        section(&mut out, 7, |buf| {
            write_u32(buf, module.exports.len() as u32);
            for e in &module.exports {
                name(buf, &e.name);
                buf.push(match e.kind {
                    ExternKind::Func => 0x00,
                    ExternKind::Table => 0x01,
                    ExternKind::Memory => 0x02,
                    ExternKind::Global => 0x03,
                });
                write_u32(buf, e.index);
            }
        });
    }

    // Section 8: start.
    if let Some(s) = module.start {
        section(&mut out, 8, |buf| {
            write_u32(buf, s);
        });
    }

    // Section 9: element segments.
    if !module.elems.is_empty() {
        section(&mut out, 9, |buf| {
            write_u32(buf, module.elems.len() as u32);
            for e in &module.elems {
                write_u32(buf, e.table);
                const_expr(buf, &e.offset);
                write_u32(buf, e.funcs.len() as u32);
                for f in &e.funcs {
                    write_u32(buf, *f);
                }
            }
        });
    }

    // Section 10: code.
    if !module.funcs.is_empty() {
        section(&mut out, 10, |buf| {
            write_u32(buf, module.funcs.len() as u32);
            for f in &module.funcs {
                let mut body = Vec::new();
                write_u32(&mut body, f.body.locals.len() as u32);
                for (n, t) in &f.body.locals {
                    write_u32(&mut body, *n);
                    body.push(t.byte());
                }
                body.extend_from_slice(&f.body.code);
                write_u32(buf, body.len() as u32);
                buf.extend_from_slice(&body);
            }
        });
    }

    // Section 11: data segments.
    if !module.data.is_empty() {
        section(&mut out, 11, |buf| {
            write_u32(buf, module.data.len() as u32);
            for d in &module.data {
                write_u32(buf, d.memory);
                const_expr(buf, &d.offset);
                write_u32(buf, d.bytes.len() as u32);
                buf.extend_from_slice(&d.bytes);
            }
        });
    }

    // Custom sections, appended at the end.
    for c in &module.customs {
        section(&mut out, 0, |buf| {
            name(buf, &c.name);
            buf.extend_from_slice(&c.bytes);
        });
    }

    out
}

fn section(out: &mut Vec<u8>, id: u8, fill: impl FnOnce(&mut Vec<u8>)) {
    let mut payload = Vec::new();
    fill(&mut payload);
    out.push(id);
    write_u32(out, payload.len() as u32);
    out.extend_from_slice(&payload);
}

fn name(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn limits(out: &mut Vec<u8>, l: Limits) {
    match l.max {
        None => {
            out.push(0x00);
            write_u32(out, l.min);
        }
        Some(max) => {
            out.push(0x01);
            write_u32(out, l.min);
            write_u32(out, max);
        }
    }
}

fn const_expr(out: &mut Vec<u8>, e: &ConstExpr) {
    match e {
        ConstExpr::I32(v) => {
            out.push(op::I32_CONST);
            write_i32(out, *v);
        }
        ConstExpr::I64(v) => {
            out.push(op::I64_CONST);
            write_i64(out, *v);
        }
        ConstExpr::F32(v) => {
            out.push(op::F32_CONST);
            out.extend_from_slice(&v.to_le_bytes());
        }
        ConstExpr::F64(v) => {
            out.push(op::F64_CONST);
            out.extend_from_slice(&v.to_le_bytes());
        }
        ConstExpr::GlobalGet(i) => {
            out.push(op::GLOBAL_GET);
            write_u32(out, *i);
        }
    }
    out.push(op::END);
}
