//! LEB128 variable-length integer encoding/decoding, as used throughout the
//! WebAssembly binary format and in-place interpreted bytecode.
//!
//! # Canonicality
//!
//! Writers always emit the shortest (canonical) encoding. Readers follow
//! the Wasm spec's tolerance rules:
//!
//! * **non-canonical but in-range** encodings (zero-padded continuations,
//!   e.g. `[0x80, 0x00]` for 0, or a redundantly sign-extended final
//!   byte) are accepted and *normalized* to the same value the canonical
//!   form decodes to;
//! * encodings **longer than the type allows** (a 6th byte for `u32`/
//!   `i32`, an 11th for `u64`/`i64`) are rejected;
//! * for the **unsigned** readers, set payload bits beyond the target
//!   width in the final byte are rejected (`read_u32` checks the top 4
//!   bits of byte 5; `read_u64` the top 6 of byte 10);
//! * for the **signed** readers, final-byte bits beyond the target width
//!   are ignored (the value is truncated to the type's width), matching
//!   the two's-complement reinterpretation the in-place interpreter
//!   relies on.

/// Error produced when a LEB128 value is malformed or truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LebError {
    /// Byte offset at which decoding started.
    pub offset: usize,
}

impl core::fmt::Display for LebError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "malformed LEB128 integer at offset {}", self.offset)
    }
}

impl std::error::Error for LebError {}

/// Reads an unsigned LEB128 `u32` through an arbitrary byte source.
///
/// This is the *one* implementation of the `u32` decoding/normalization
/// contract; the slice reader ([`read_u32`]) and the engine's
/// `Cell`-backed in-place bytecode reader both delegate here, so the
/// tolerance rules above cannot drift between the decoder and the
/// interpreter. `byte_at` returns `None` past the end of the source.
///
/// # Errors
///
/// Returns [`LebError`] if the encoding is truncated or exceeds 32 bits.
#[inline]
pub fn read_u32_by(
    mut byte_at: impl FnMut(usize) -> Option<u8>,
    pos: usize,
) -> Result<(u32, usize), LebError> {
    let mut result: u32 = 0;
    let mut shift = 0u32;
    let mut p = pos;
    loop {
        let byte = byte_at(p).ok_or(LebError { offset: pos })?;
        p += 1;
        if shift == 28 && byte & 0xf0 != 0 {
            return Err(LebError { offset: pos });
        }
        result |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((result, p));
        }
        shift += 7;
        if shift > 28 {
            return Err(LebError { offset: pos });
        }
    }
}

/// Reads an unsigned LEB128 `u32` from `buf` at `pos`.
///
/// Returns the value and the position of the first byte after the integer.
///
/// # Errors
///
/// Returns [`LebError`] if the encoding is truncated or exceeds 32 bits.
pub fn read_u32(buf: &[u8], pos: usize) -> Result<(u32, usize), LebError> {
    read_u32_by(|i| buf.get(i).copied(), pos)
}

/// Reads an unsigned LEB128 `u64` from `buf` at `pos`.
///
/// # Errors
///
/// Returns [`LebError`] if the encoding is truncated or exceeds 64 bits.
pub fn read_u64(buf: &[u8], pos: usize) -> Result<(u64, usize), LebError> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    let mut p = pos;
    loop {
        let byte = *buf.get(p).ok_or(LebError { offset: pos })?;
        p += 1;
        if shift == 63 && byte & 0x7e != 0 {
            return Err(LebError { offset: pos });
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((result, p));
        }
        shift += 7;
        if shift > 63 {
            return Err(LebError { offset: pos });
        }
    }
}

/// Reads a signed LEB128 `i32` through an arbitrary byte source (the
/// shared implementation behind [`read_i32`]; see [`read_u32_by`]).
///
/// # Errors
///
/// Returns [`LebError`] if the encoding is truncated or exceeds 32 bits.
#[inline]
pub fn read_i32_by(
    mut byte_at: impl FnMut(usize) -> Option<u8>,
    pos: usize,
) -> Result<(i32, usize), LebError> {
    let mut result: i32 = 0;
    let mut shift = 0u32;
    let mut p = pos;
    loop {
        let byte = byte_at(p).ok_or(LebError { offset: pos })?;
        p += 1;
        result |= (i32::from(byte & 0x7f)) << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            if shift < 32 && byte & 0x40 != 0 {
                result |= -1i32 << shift;
            }
            return Ok((result, p));
        }
        if shift >= 35 {
            return Err(LebError { offset: pos });
        }
    }
}

/// Reads a signed LEB128 `i32` from `buf` at `pos`.
///
/// # Errors
///
/// Returns [`LebError`] if the encoding is truncated or exceeds 32 bits.
pub fn read_i32(buf: &[u8], pos: usize) -> Result<(i32, usize), LebError> {
    read_i32_by(|i| buf.get(i).copied(), pos)
}

/// Reads a signed LEB128 `i64` through an arbitrary byte source (the
/// shared implementation behind [`read_i64`]; see [`read_u32_by`]).
///
/// # Errors
///
/// Returns [`LebError`] if the encoding is truncated or exceeds 64 bits.
#[inline]
pub fn read_i64_by(
    mut byte_at: impl FnMut(usize) -> Option<u8>,
    pos: usize,
) -> Result<(i64, usize), LebError> {
    let mut result: i64 = 0;
    let mut shift = 0u32;
    let mut p = pos;
    loop {
        let byte = byte_at(p).ok_or(LebError { offset: pos })?;
        p += 1;
        result |= (i64::from(byte & 0x7f)) << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            if shift < 64 && byte & 0x40 != 0 {
                result |= -1i64 << shift;
            }
            return Ok((result, p));
        }
        if shift >= 70 {
            return Err(LebError { offset: pos });
        }
    }
}

/// Reads a signed LEB128 `i64` from `buf` at `pos`.
///
/// # Errors
///
/// Returns [`LebError`] if the encoding is truncated or exceeds 64 bits.
pub fn read_i64(buf: &[u8], pos: usize) -> Result<(i64, usize), LebError> {
    read_i64_by(|i| buf.get(i).copied(), pos)
}

/// Appends an unsigned LEB128 `u32` to `out`.
pub fn write_u32(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends an unsigned LEB128 `u64` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a signed LEB128 `i32` to `out`.
pub fn write_i32(out: &mut Vec<u8>, mut v: i32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        let sign = byte & 0x40 != 0;
        if (v == 0 && !sign) || (v == -1 && sign) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a signed LEB128 `i64` to `out`.
pub fn write_i64(out: &mut Vec<u8>, mut v: i64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        let sign = byte & 0x40 != 0;
        if (v == 0 && !sign) || (v == -1 && sign) {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Returns the encoded length in bytes of `v` as unsigned LEB128.
pub fn len_u32(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip_boundaries() {
        for v in [0u32, 1, 0x7f, 0x80, 0x3fff, 0x4000, u32::MAX] {
            let mut buf = Vec::new();
            write_u32(&mut buf, v);
            assert_eq!(buf.len(), len_u32(v));
            let (got, end) = read_u32(&buf, 0).unwrap();
            assert_eq!(got, v);
            assert_eq!(end, buf.len());
        }
    }

    #[test]
    fn i32_roundtrip_boundaries() {
        for v in [0i32, 1, -1, 63, 64, -64, -65, i32::MAX, i32::MIN] {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            let (got, end) = read_i32(&buf, 0).unwrap();
            assert_eq!(got, v);
            assert_eq!(end, buf.len());
        }
    }

    #[test]
    fn i64_roundtrip_boundaries() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let (got, end) = read_i64(&buf, 0).unwrap();
            assert_eq!(got, v);
            assert_eq!(end, buf.len());
        }
    }

    #[test]
    fn u64_roundtrip_boundaries() {
        for v in [0u64, 1, 0x7f, 0x80, u64::MAX, 1 << 63] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let (got, end) = read_u64(&buf, 0).unwrap();
            assert_eq!(got, v);
            assert_eq!(end, buf.len());
        }
    }

    #[test]
    fn truncated_is_error() {
        assert!(read_u32(&[0x80], 0).is_err());
        assert!(read_u32(&[], 0).is_err());
        assert!(read_i32(&[0xff, 0xff], 0).is_err());
        assert!(read_u64(&[0x80; 11], 0).is_err());
    }

    #[test]
    fn overlong_u32_is_error() {
        // 6-byte u32 encoding is invalid.
        assert!(read_u32(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], 0).is_err());
        // High bits set beyond 32 bits.
        assert!(read_u32(&[0xff, 0xff, 0xff, 0xff, 0x7f], 0).is_err());
    }

    #[test]
    fn nonzero_offset() {
        let mut buf = vec![0xaa, 0xbb];
        write_u32(&mut buf, 624485);
        let (got, end) = read_u32(&buf, 2).unwrap();
        assert_eq!(got, 624485);
        assert_eq!(end, buf.len());
    }

    // ---- width boundaries: exact canonical byte shapes ----

    #[test]
    fn u32_boundary_encodings_are_canonical_length() {
        // Every `len_u32` step boundary, plus the extremes.
        let cases: [(u32, usize); 10] = [
            (0, 1),
            (0x7f, 1),
            (0x80, 2),
            (0x3fff, 2),
            (0x4000, 3),
            (0x1f_ffff, 3),
            (0x20_0000, 4),
            (0xfff_ffff, 4),
            (0x1000_0000, 5),
            (u32::MAX, 5),
        ];
        for (v, len) in cases {
            let mut buf = Vec::new();
            write_u32(&mut buf, v);
            assert_eq!(buf.len(), len, "canonical length of {v:#x}");
            assert_eq!(len_u32(v), len);
            assert_eq!(read_u32(&buf, 0).unwrap(), (v, len));
        }
    }

    #[test]
    fn signed_width_boundaries_roundtrip() {
        // The sign-bit fenceposts where the encoding grows a byte.
        for v in [
            0i32,
            63,
            64,
            -64,
            -65,
            8191,
            8192,
            -8192,
            -8193,
            i32::MAX - 1,
            i32::MAX,
            i32::MIN + 1,
            i32::MIN,
        ] {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            assert_eq!(read_i32(&buf, 0).unwrap(), (v, buf.len()), "{v}");
        }
        for v in [
            i64::from(i32::MAX) + 1,
            i64::from(i32::MIN) - 1,
            (1 << 55) - 1,
            1 << 55,
            -(1 << 55),
            i64::MAX,
            i64::MIN,
        ] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(read_i64(&buf, 0).unwrap(), (v, buf.len()), "{v}");
        }
        // i64::MIN/MAX need the full 10 bytes.
        let mut buf = Vec::new();
        write_i64(&mut buf, i64::MIN);
        assert_eq!(buf.len(), 10);
        assert_eq!(buf, [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f]);
    }

    // ---- non-canonical encodings: normalized as documented ----

    #[test]
    fn noncanonical_unsigned_is_normalized() {
        // 0 and 0x3f padded with continuation bytes decode to the same
        // value the canonical form does.
        assert_eq!(read_u32(&[0x80, 0x00], 0).unwrap(), (0, 2));
        assert_eq!(read_u32(&[0xbf, 0x00], 0).unwrap(), (0x3f, 2));
        assert_eq!(read_u32(&[0x80, 0x80, 0x80, 0x80, 0x00], 0).unwrap(), (0, 5));
        assert_eq!(read_u64(&[0xff, 0x00], 0).unwrap(), (0x7f, 2));
    }

    #[test]
    fn noncanonical_signed_is_normalized() {
        // -1 spelled in two bytes instead of one.
        assert_eq!(read_i32(&[0xff, 0x7f], 0).unwrap(), (-1, 2));
        assert_eq!(read_i64(&[0xff, 0x7f], 0).unwrap(), (-1, 2));
        // 63 padded with an explicit zero continuation (canonical [0x3f]).
        assert_eq!(read_i32(&[0xbf, 0x00], 0).unwrap(), (63, 2));
        // A full-width 5-byte i32 whose final byte sets bits beyond bit
        // 31: the excess is truncated to the 32-bit value (-1 here).
        assert_eq!(read_i32(&[0xff, 0xff, 0xff, 0xff, 0x7f], 0).unwrap(), (-1, 5));
    }

    #[test]
    fn out_of_range_encodings_are_rejected() {
        // u32: payload bits above bit 31 in byte 5.
        assert!(read_u32(&[0x80, 0x80, 0x80, 0x80, 0x10], 0).is_err());
        // u32/i32: a 6th byte.
        assert!(read_u32(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x00], 0).is_err());
        assert!(read_i32(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x00], 0).is_err());
        // u64: payload bits above bit 63 in byte 10.
        assert!(read_u64(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02], 0).is_err());
        // u64/i64: an 11th byte.
        assert!(read_u64(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00], 0)
            .is_err());
        assert!(read_i64(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x00], 0)
            .is_err());
    }
}
