//! Core WebAssembly type definitions: value types, function types, limits and
//! the types of module-level entities.

/// A WebAssembly value type (core MVP numeric types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
}

impl ValType {
    /// The binary-format byte for this value type.
    pub fn byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
            ValType::F32 => 0x7d,
            ValType::F64 => 0x7c,
        }
    }

    /// Decodes a value type from its binary-format byte.
    pub fn from_byte(b: u8) -> Option<ValType> {
        match b {
            0x7f => Some(ValType::I32),
            0x7e => Some(ValType::I64),
            0x7d => Some(ValType::F32),
            0x7c => Some(ValType::F64),
            _ => None,
        }
    }
}

impl core::fmt::Display for ValType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// The type of a structured control block: either empty or a single result.
///
/// This crate targets the Wasm MVP, which predates multi-value block types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockType {
    /// `[] -> []`.
    #[default]
    Empty,
    /// `[] -> [t]`.
    Value(ValType),
}

impl BlockType {
    /// Number of result values the block produces.
    pub fn arity(self) -> u32 {
        match self {
            BlockType::Empty => 0,
            BlockType::Value(_) => 1,
        }
    }

    /// The result type, if any.
    pub fn result(self) -> Option<ValType> {
        match self {
            BlockType::Empty => None,
            BlockType::Value(t) => Some(t),
        }
    }
}

/// A function signature: parameter and result types.
///
/// MVP restriction: at most one result.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter types, in order.
    pub params: Vec<ValType>,
    /// Result types (0 or 1 in the MVP).
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Creates a function type from parameter and result slices.
    pub fn new(params: &[ValType], results: &[ValType]) -> FuncType {
        FuncType { params: params.to_vec(), results: results.to_vec() }
    }
}

impl core::fmt::Display for FuncType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "] -> [")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")
    }
}

/// Size limits for memories and tables, in units of pages / elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Limits {
    /// Initial size.
    pub min: u32,
    /// Optional maximum size.
    pub max: Option<u32>,
}

impl Limits {
    /// Creates limits with only a minimum.
    pub fn at_least(min: u32) -> Limits {
        Limits { min, max: None }
    }

    /// Creates limits with a minimum and maximum.
    pub fn bounded(min: u32, max: u32) -> Limits {
        Limits { min, max: Some(max) }
    }
}

/// The type of a global variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalType {
    /// The value type stored in the global.
    pub value: ValType,
    /// Whether the global may be mutated.
    pub mutable: bool,
}

/// The type of a memory (limits in 64 KiB pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryType {
    /// Page limits.
    pub limits: Limits,
}

/// The type of a table (MVP: always `funcref` elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableType {
    /// Element count limits.
    pub limits: Limits,
}

/// WebAssembly page size in bytes (64 KiB).
pub const PAGE_SIZE: usize = 65536;

/// Kind of an import or export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExternKind {
    /// A function.
    Func,
    /// A table.
    Table,
    /// A memory.
    Memory,
    /// A global.
    Global,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_byte_roundtrip() {
        for t in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_byte(t.byte()), Some(t));
        }
        assert_eq!(ValType::from_byte(0x40), None);
    }

    #[test]
    fn blocktype_arity() {
        assert_eq!(BlockType::Empty.arity(), 0);
        assert_eq!(BlockType::Value(ValType::F64).arity(), 1);
        assert_eq!(BlockType::Value(ValType::I32).result(), Some(ValType::I32));
    }

    #[test]
    fn functype_display() {
        let t = FuncType::new(&[ValType::I32, ValType::F64], &[ValType::I64]);
        assert_eq!(t.to_string(), "[i32 f64] -> [i64]");
    }

    #[test]
    fn limits_constructors() {
        assert_eq!(Limits::at_least(3), Limits { min: 3, max: None });
        assert_eq!(Limits::bounded(1, 5), Limits { min: 1, max: Some(5) });
    }
}
