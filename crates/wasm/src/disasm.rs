//! A disassembler for function bodies and whole modules, used by the
//! tracing monitor, the debugger REPL, the Figure-2 code-generation
//! harness, and the script matcher's "nearest candidates" diagnostics.
//!
//! Three levels of API:
//!
//! * [`format_instr`] / [`format_instr_in`] — one instruction as text,
//!   the latter resolving call/global immediates against a [`Module`];
//! * [`listing`] / [`nearest`] — structured `(pc, text)` rows of a body,
//!   either complete or the k instructions nearest a given offset (the
//!   form error messages embed);
//! * [`disassemble`] / [`disassemble_func`] / [`disassemble_module`] —
//!   indented text of a body, a function with its header, or every
//!   locally-defined function.

use crate::instr::{Imm, Instr, InstrIter};
use crate::module::{FuncIdx, Module};
use crate::opcodes as op;

/// Formats one instruction as text, e.g. `i32.const 5` or `br_table [0 1] 2`.
pub fn format_instr(i: &Instr) -> String {
    let mnemonic = op::name(i.op);
    match &i.imm {
        Imm::None => mnemonic.to_string(),
        Imm::Block(bt) => match bt.result() {
            None => mnemonic.to_string(),
            Some(t) => format!("{mnemonic} (result {t})"),
        },
        Imm::Idx(v) => format!("{mnemonic} {v}"),
        Imm::CallIndirect { type_idx, table } => {
            format!("{mnemonic} (type {type_idx}) (table {table})")
        }
        Imm::BrTable { targets, default } => {
            let ts: Vec<String> = targets.iter().map(u32::to_string).collect();
            format!("{mnemonic} [{}] {default}", ts.join(" "))
        }
        Imm::Mem { align, offset } => format!("{mnemonic} align={align} offset={offset}"),
        Imm::MemIdx(_) => mnemonic.to_string(),
        Imm::I32(v) => format!("{mnemonic} {v}"),
        Imm::I64(v) => format!("{mnemonic} {v}"),
        Imm::F32(v) => format!("{mnemonic} {v}"),
        Imm::F64(v) => format!("{mnemonic} {v}"),
    }
}

/// Formats one instruction like [`format_instr`], additionally resolving
/// module-level immediates: `call` targets and `global.get`/`global.set`
/// indices are annotated with the entity's name when the module knows one.
pub fn format_instr_in(module: &Module, i: &Instr) -> String {
    let base = format_instr(i);
    match (i.op, &i.imm) {
        (op::CALL, Imm::Idx(f)) => match module.func_name(*f) {
            Some(name) => format!("{base} ;; {name}"),
            None => base,
        },
        (op::GLOBAL_GET | op::GLOBAL_SET, Imm::Idx(g)) => format!("{base} ;; global[{g}]"),
        _ => base,
    }
}

/// Decodes a body into `(pc, text)` rows, one per instruction. A decode
/// error terminates the listing with a `<decode error …>` row at the
/// offending pc, so the function is total.
pub fn listing(code: &[u8]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for item in InstrIter::new(code) {
        match item {
            Ok(i) => out.push((i.pc, format_instr(&i))),
            Err(e) => {
                out.push((e.pc, format!("<decode error: {}>", e.msg)));
                break;
            }
        }
    }
    out
}

/// The `k` instructions of `code` whose offsets are nearest to `pc`
/// (ties prefer the earlier instruction), in code order — the "nearest
/// candidates" a location-selector error message shows when `pc` is not
/// an instruction boundary.
pub fn nearest(code: &[u8], pc: u32, k: usize) -> Vec<(u32, String)> {
    let mut rows = listing(code);
    rows.sort_by_key(|(p, _)| (p.abs_diff(pc), *p));
    rows.truncate(k);
    rows.sort_by_key(|(p, _)| *p);
    rows
}

fn disassemble_with(code: &[u8], fmt: impl Fn(&Instr) -> String) -> String {
    let mut out = String::new();
    let mut indent = 0usize;
    for item in InstrIter::new(code) {
        let Ok(i) = item else {
            out.push_str("  <decode error>\n");
            break;
        };
        if matches!(i.op, op::END | op::ELSE) {
            indent = indent.saturating_sub(1);
        }
        out.push_str(&format!("{:>5}: {}{}\n", i.pc, "  ".repeat(indent), fmt(&i)));
        if matches!(i.op, op::BLOCK | op::LOOP | op::IF | op::ELSE) {
            indent += 1;
        }
    }
    out
}

/// Disassembles a whole function body, one indented instruction per line.
pub fn disassemble(code: &[u8]) -> String {
    disassemble_with(code, format_instr)
}

/// Disassembles one locally-defined function with a header line
/// (`func[i] <name> (params) -> (results)`) and module-resolved
/// immediates. Returns `None` for imported or out-of-range indices.
pub fn disassemble_func(module: &Module, func: FuncIdx) -> Option<String> {
    let n_imp = module.num_imported_funcs();
    if func < n_imp || func >= module.num_funcs() {
        return None;
    }
    let body = &module.funcs[(func - n_imp) as usize].body;
    let ty = module.func_type(func)?;
    let name = module.func_name(func).unwrap_or("<anonymous>");
    let mut out = format!("func[{func}] {name} {ty}\n");
    out.push_str(&disassemble_with(&body.code, |i| format_instr_in(module, i)));
    Some(out)
}

/// Disassembles every locally-defined function of the module.
pub fn disassemble_module(module: &Module) -> String {
    let mut out = String::new();
    for func in module.num_imported_funcs()..module.num_funcs() {
        out.push_str(&disassemble_func(module, func).expect("local function"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::{BlockType, ValType};

    #[test]
    fn disassembles_structured_code() {
        let mut f = FuncBuilder::new(&[ValType::I32], &[ValType::I32]);
        f.local_get(0).if_(BlockType::Value(ValType::I32));
        f.i32_const(1);
        f.else_();
        f.i32_const(2);
        f.end();
        let body = f.into_body();
        let text = disassemble(&body.code);
        assert!(text.contains("local.get 0"));
        assert!(text.contains("if (result i32)"));
        assert!(text.contains("i32.const 2"));
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn format_br_table() {
        let i = Instr {
            pc: 0,
            op: crate::opcodes::BR_TABLE,
            imm: Imm::BrTable { targets: vec![0, 1], default: 2 },
        };
        assert_eq!(format_instr(&i), "br_table [0 1] 2");
    }

    /// A representative immediate for each immediate kind, so the whole
    /// opcode table can be driven through encode → decode → format.
    fn representative_imm(kind: crate::opcodes::ImmKind) -> Imm {
        use crate::opcodes::ImmKind;
        match kind {
            ImmKind::None => Imm::None,
            ImmKind::BlockType => Imm::Block(BlockType::Value(ValType::I64)),
            ImmKind::Index => Imm::Idx(7),
            ImmKind::CallIndirect => Imm::CallIndirect { type_idx: 2, table: 0 },
            ImmKind::BrTable => Imm::BrTable { targets: vec![1, 0], default: 3 },
            ImmKind::MemArg => Imm::Mem { align: 2, offset: 64 },
            ImmKind::MemIndex => Imm::MemIdx(0),
            ImmKind::ConstI32 => Imm::I32(-7),
            ImmKind::ConstI64 => Imm::I64(1 << 40),
            ImmKind::ConstF32 => Imm::F32(0.5),
            ImmKind::ConstF64 => Imm::F64(-2.25),
        }
    }

    #[test]
    fn every_opcode_formats_with_its_immediates() {
        let mut covered = 0;
        for opcode in 0u8..=0xff {
            let Some(kind) = op::imm_kind(opcode) else { continue };
            let mut buf = Vec::new();
            crate::instr::encode(opcode, &representative_imm(kind), &mut buf);
            let (decoded, _) = crate::instr::decode_at(&buf, 0).unwrap();
            let text = format_instr(&decoded);
            assert!(text.starts_with(op::name(opcode)), "opcode {opcode:#04x} formats as {text:?}");
            assert!(!text.contains("<invalid>"));
            covered += 1;
        }
        assert_eq!(covered, 177, "full supported opcode table");
    }

    fn named_module() -> crate::module::Module {
        use crate::builder::{FuncBuilder, ModuleBuilder};
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[ValType::I32], &[ValType::I32]);
        f.local_get(0);
        mb.add_func("callee", f);
        let mut g = FuncBuilder::new(&[ValType::I32], &[ValType::I32]);
        g.local_get(0).call(0);
        mb.add_func("caller", g);
        mb.build().unwrap()
    }

    #[test]
    fn module_aware_formatting_resolves_call_targets() {
        let m = named_module();
        let text = disassemble_func(&m, 1).unwrap();
        assert!(text.starts_with("func[1] caller"), "header: {text}");
        assert!(text.contains("call 0 ;; callee"), "resolved target: {text}");
        assert!(disassemble_func(&m, 9).is_none());
        let all = disassemble_module(&m);
        assert!(all.contains("func[0] callee"));
        assert!(all.contains("func[1] caller"));
    }

    #[test]
    fn listing_and_nearest_candidates() {
        let m = named_module();
        let code = &m.funcs[1].body.code;
        let rows = listing(code);
        assert!(rows.len() >= 3);
        assert_eq!(rows[0], (0, "local.get 0".to_string()));
        // pc 1 is inside the local.get immediate: nearest candidates
        // bracket it in code order.
        let near = nearest(code, 1, 2);
        assert_eq!(near.len(), 2);
        assert_eq!(near[0].0, 0);
        assert!(near.windows(2).all(|w| w[0].0 < w[1].0), "code order");
        // A decode error terminates but does not panic.
        let broken = listing(&[0x20, 0x00, 0xfe]);
        assert!(broken.last().unwrap().1.contains("<decode error"));
    }
}
