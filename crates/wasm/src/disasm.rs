//! A small disassembler for function bodies, used by the tracing monitor,
//! the debugger REPL, and the Figure-2 code-generation harness.

use crate::instr::{Imm, Instr, InstrIter};
use crate::opcodes as op;

/// Formats one instruction as text, e.g. `i32.const 5` or `br_table [0 1] 2`.
pub fn format_instr(i: &Instr) -> String {
    let mnemonic = op::name(i.op);
    match &i.imm {
        Imm::None => mnemonic.to_string(),
        Imm::Block(bt) => match bt.result() {
            None => mnemonic.to_string(),
            Some(t) => format!("{mnemonic} (result {t})"),
        },
        Imm::Idx(v) => format!("{mnemonic} {v}"),
        Imm::CallIndirect { type_idx, table } => {
            format!("{mnemonic} (type {type_idx}) (table {table})")
        }
        Imm::BrTable { targets, default } => {
            let ts: Vec<String> = targets.iter().map(u32::to_string).collect();
            format!("{mnemonic} [{}] {default}", ts.join(" "))
        }
        Imm::Mem { align, offset } => format!("{mnemonic} align={align} offset={offset}"),
        Imm::MemIdx(_) => mnemonic.to_string(),
        Imm::I32(v) => format!("{mnemonic} {v}"),
        Imm::I64(v) => format!("{mnemonic} {v}"),
        Imm::F32(v) => format!("{mnemonic} {v}"),
        Imm::F64(v) => format!("{mnemonic} {v}"),
    }
}

/// Disassembles a whole function body, one indented instruction per line.
pub fn disassemble(code: &[u8]) -> String {
    let mut out = String::new();
    let mut indent = 0usize;
    for item in InstrIter::new(code) {
        let Ok(i) = item else {
            out.push_str("  <decode error>\n");
            break;
        };
        if matches!(i.op, op::END | op::ELSE) {
            indent = indent.saturating_sub(1);
        }
        out.push_str(&format!("{:>5}: {}{}\n", i.pc, "  ".repeat(indent), format_instr(&i)));
        if matches!(i.op, op::BLOCK | op::LOOP | op::IF | op::ELSE) {
            indent += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::{BlockType, ValType};

    #[test]
    fn disassembles_structured_code() {
        let mut f = FuncBuilder::new(&[ValType::I32], &[ValType::I32]);
        f.local_get(0).if_(BlockType::Value(ValType::I32));
        f.i32_const(1);
        f.else_();
        f.i32_const(2);
        f.end();
        let body = f.into_body();
        let text = disassemble(&body.code);
        assert!(text.contains("local.get 0"));
        assert!(text.contains("if (result i32)"));
        assert!(text.contains("i32.const 2"));
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn format_br_table() {
        let i = Instr {
            pc: 0,
            op: crate::opcodes::BR_TABLE,
            imm: Imm::BrTable { targets: vec![0, 1], default: 2 },
        };
        assert_eq!(format_instr(&i), "br_table [0 1] 2");
    }
}
