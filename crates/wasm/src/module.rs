//! The in-memory representation of a WebAssembly module.
//!
//! Function bodies are kept as raw bytecode (`Vec<u8>`), which is the form
//! the engine interprets *in place* and the form local probes overwrite.

use crate::types::{ExternKind, FuncType, GlobalType, MemoryType, TableType, ValType};

/// Index of a function type within [`Module::types`].
pub type TypeIdx = u32;
/// Index of a function (imports first, then local functions).
pub type FuncIdx = u32;
/// Index of a global.
pub type GlobalIdx = u32;
/// Index of a local variable (params first).
pub type LocalIdx = u32;

/// An import declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// Module namespace, e.g. `"env"`.
    pub module: String,
    /// Item name within the namespace.
    pub name: String,
    /// What is imported.
    pub desc: ImportDesc,
}

/// The descriptor of an imported entity.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportDesc {
    /// A function with the given type index.
    Func(TypeIdx),
    /// A table.
    Table(TableType),
    /// A memory.
    Memory(MemoryType),
    /// A global.
    Global(GlobalType),
}

impl ImportDesc {
    /// The extern kind of this import.
    pub fn kind(&self) -> ExternKind {
        match self {
            ImportDesc::Func(_) => ExternKind::Func,
            ImportDesc::Table(_) => ExternKind::Table,
            ImportDesc::Memory(_) => ExternKind::Memory,
            ImportDesc::Global(_) => ExternKind::Global,
        }
    }
}

/// An export declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Export {
    /// Exported name.
    pub name: String,
    /// Kind of the exported entity.
    pub kind: ExternKind,
    /// Index into the respective index space.
    pub index: u32,
}

/// A constant initializer expression (MVP: single const or `global.get`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstExpr {
    /// `i32.const`.
    I32(i32),
    /// `i64.const`.
    I64(i64),
    /// `f32.const`.
    F32(f32),
    /// `f64.const`.
    F64(f64),
    /// `global.get` of an imported immutable global.
    GlobalGet(GlobalIdx),
}

impl ConstExpr {
    /// The value type this expression evaluates to, given the module's
    /// global types (needed for `global.get`).
    pub fn val_type(&self, global_types: &[GlobalType]) -> Option<ValType> {
        match self {
            ConstExpr::I32(_) => Some(ValType::I32),
            ConstExpr::I64(_) => Some(ValType::I64),
            ConstExpr::F32(_) => Some(ValType::F32),
            ConstExpr::F64(_) => Some(ValType::F64),
            ConstExpr::GlobalGet(i) => global_types.get(*i as usize).map(|g| g.value),
        }
    }
}

/// A module-defined global variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Global {
    /// Its type and mutability.
    pub ty: GlobalType,
    /// Initializer.
    pub init: ConstExpr,
}

/// The body of a locally-defined function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FuncBody {
    /// Run-length encoded local declarations (count, type), excluding params.
    pub locals: Vec<(u32, ValType)>,
    /// Raw bytecode of the function expression, including the final `end`.
    ///
    /// Instruction locations (`pc`) are byte offsets into this vector; this
    /// is the `(module, func, pc)` location space used by local probes.
    pub code: Vec<u8>,
}

impl FuncBody {
    /// Total number of declared locals (excluding params).
    pub fn local_count(&self) -> u32 {
        self.locals.iter().map(|(n, _)| *n).sum()
    }

    /// Expands the run-length encoded locals into a flat type list.
    pub fn flat_locals(&self) -> Vec<ValType> {
        let mut out = Vec::with_capacity(self.local_count() as usize);
        for &(n, t) in &self.locals {
            for _ in 0..n {
                out.push(t);
            }
        }
        out
    }
}

/// A locally-defined function: its type index and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Index into [`Module::types`].
    pub type_idx: TypeIdx,
    /// The function body.
    pub body: FuncBody,
}

/// An element segment initializing a table with function indices.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemSegment {
    /// Table being initialized (MVP: always 0).
    pub table: u32,
    /// Start offset expression.
    pub offset: ConstExpr,
    /// Function indices to place.
    pub funcs: Vec<FuncIdx>,
}

/// A data segment initializing linear memory.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Memory being initialized (MVP: always 0).
    pub memory: u32,
    /// Start offset expression.
    pub offset: ConstExpr,
    /// Bytes to copy.
    pub bytes: Vec<u8>,
}

/// A custom section preserved verbatim through decode/encode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomSection {
    /// Section name.
    pub name: String,
    /// Raw payload.
    pub bytes: Vec<u8>,
}

/// A complete WebAssembly module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Function type table.
    pub types: Vec<FuncType>,
    /// Imports, in declaration order.
    pub imports: Vec<Import>,
    /// Locally-defined functions.
    pub funcs: Vec<FuncDecl>,
    /// Locally-defined tables.
    pub tables: Vec<TableType>,
    /// Locally-defined memories.
    pub memories: Vec<MemoryType>,
    /// Locally-defined globals.
    pub globals: Vec<Global>,
    /// Exports.
    pub exports: Vec<Export>,
    /// Optional start function.
    pub start: Option<FuncIdx>,
    /// Element segments.
    pub elems: Vec<ElemSegment>,
    /// Data segments.
    pub data: Vec<DataSegment>,
    /// Custom sections (preserved, not interpreted).
    pub customs: Vec<CustomSection>,
    /// Optional debug names for functions, indexed by [`FuncIdx`]
    /// (covering both imported and local functions).
    pub names: Vec<Option<String>>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Number of imported functions (they occupy indices `0..n`).
    pub fn num_imported_funcs(&self) -> u32 {
        self.imports.iter().filter(|i| matches!(i.desc, ImportDesc::Func(_))).count() as u32
    }

    /// Total number of functions: imports plus local definitions.
    pub fn num_funcs(&self) -> u32 {
        self.num_imported_funcs() + self.funcs.len() as u32
    }

    /// Type indices of every function in index-space order: imported
    /// functions first, then locally-defined ones.
    pub fn func_type_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.imports
            .iter()
            .filter_map(|i| match i.desc {
                ImportDesc::Func(t) => Some(t),
                _ => None,
            })
            .chain(self.funcs.iter().map(|f| f.type_idx))
    }

    /// The type of function `idx`, spanning imports and local functions.
    pub fn func_type(&self, idx: FuncIdx) -> Option<&FuncType> {
        let n_imp = self.num_imported_funcs();
        let type_idx = if idx < n_imp {
            let mut seen = 0;
            let mut found = None;
            for imp in &self.imports {
                if let ImportDesc::Func(t) = imp.desc {
                    if seen == idx {
                        found = Some(t);
                        break;
                    }
                    seen += 1;
                }
            }
            found?
        } else {
            self.funcs.get((idx - n_imp) as usize)?.type_idx
        };
        self.types.get(type_idx as usize)
    }

    /// The body of locally-defined function `idx` (a global function index).
    ///
    /// Returns `None` for imported functions or out-of-range indices.
    pub fn func_body(&self, idx: FuncIdx) -> Option<&FuncBody> {
        let n_imp = self.num_imported_funcs();
        if idx < n_imp {
            return None;
        }
        self.funcs.get((idx - n_imp) as usize).map(|f| &f.body)
    }

    /// `true` if `idx` refers to an imported function.
    pub fn is_imported_func(&self, idx: FuncIdx) -> bool {
        idx < self.num_imported_funcs()
    }

    /// The debug or export name for function `idx`, if known.
    pub fn func_name(&self, idx: FuncIdx) -> Option<&str> {
        if let Some(Some(n)) = self.names.get(idx as usize) {
            return Some(n);
        }
        self.exports
            .iter()
            .find(|e| e.kind == ExternKind::Func && e.index == idx)
            .map(|e| e.name.as_str())
    }

    /// Looks up an exported function by name.
    pub fn export_func(&self, name: &str) -> Option<FuncIdx> {
        self.exports.iter().find(|e| e.kind == ExternKind::Func && e.name == name).map(|e| e.index)
    }

    /// Types of all globals (imported first, then local), used for constant
    /// expression checking.
    pub fn global_types(&self) -> Vec<GlobalType> {
        let mut out = Vec::new();
        for imp in &self.imports {
            if let ImportDesc::Global(g) = imp.desc {
                out.push(g);
            }
        }
        out.extend(self.globals.iter().map(|g| g.ty));
        out
    }

    /// The memory type at index 0, spanning imports and local definitions.
    pub fn memory0(&self) -> Option<MemoryType> {
        for imp in &self.imports {
            if let ImportDesc::Memory(m) = imp.desc {
                return Some(m);
            }
        }
        self.memories.first().copied()
    }

    /// The table type at index 0, spanning imports and local definitions.
    pub fn table0(&self) -> Option<TableType> {
        for imp in &self.imports {
            if let ImportDesc::Table(t) = imp.desc {
                return Some(t);
            }
        }
        self.tables.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Limits;

    fn module_with_import() -> Module {
        let mut m = Module::new();
        m.types.push(FuncType::new(&[ValType::I32], &[]));
        m.types.push(FuncType::new(&[], &[ValType::I64]));
        m.imports.push(Import {
            module: "env".into(),
            name: "log".into(),
            desc: ImportDesc::Func(0),
        });
        m.funcs.push(FuncDecl {
            type_idx: 1,
            body: FuncBody { locals: vec![(2, ValType::F64)], code: vec![0x0b] },
        });
        m.exports.push(Export { name: "main".into(), kind: ExternKind::Func, index: 1 });
        m
    }

    #[test]
    fn func_index_space_spans_imports() {
        let m = module_with_import();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.num_funcs(), 2);
        assert_eq!(m.func_type(0).unwrap().params, vec![ValType::I32]);
        assert_eq!(m.func_type(1).unwrap().results, vec![ValType::I64]);
        assert!(m.func_type(2).is_none());
        assert!(m.is_imported_func(0));
        assert!(!m.is_imported_func(1));
    }

    #[test]
    fn func_body_only_for_local_funcs() {
        let m = module_with_import();
        assert!(m.func_body(0).is_none());
        assert_eq!(m.func_body(1).unwrap().local_count(), 2);
    }

    #[test]
    fn export_lookup() {
        let m = module_with_import();
        assert_eq!(m.export_func("main"), Some(1));
        assert_eq!(m.export_func("nope"), None);
        assert_eq!(m.func_name(1), Some("main"));
    }

    #[test]
    fn flat_locals_expands_runs() {
        let b = FuncBody { locals: vec![(2, ValType::I32), (1, ValType::F32)], code: vec![0x0b] };
        assert_eq!(b.flat_locals(), vec![ValType::I32, ValType::I32, ValType::F32]);
    }

    #[test]
    fn memory0_prefers_import() {
        let mut m = Module::new();
        m.memories.push(MemoryType { limits: Limits::at_least(2) });
        assert_eq!(m.memory0().unwrap().limits.min, 2);
        m.imports.push(Import {
            module: "env".into(),
            name: "mem".into(),
            desc: ImportDesc::Memory(MemoryType { limits: Limits::at_least(7) }),
        });
        assert_eq!(m.memory0().unwrap().limits.min, 7);
    }

    #[test]
    fn const_expr_types() {
        let globals = vec![GlobalType { value: ValType::F32, mutable: false }];
        assert_eq!(ConstExpr::I32(1).val_type(&globals), Some(ValType::I32));
        assert_eq!(ConstExpr::GlobalGet(0).val_type(&globals), Some(ValType::F32));
        assert_eq!(ConstExpr::GlobalGet(9).val_type(&globals), None);
    }
}
