//! `wizard-wasm`: the WebAssembly substrate for the `wizard-rs` workspace.
//!
//! This crate contains everything needed to *represent* WebAssembly modules:
//!
//! * [`types`] — value, function, memory, table and global types;
//! * [`opcodes`] — MVP (+ sign extension) opcode constants, including the
//!   engine-reserved probe byte used for bytecode overwriting;
//! * [`module`] — the in-memory module IR with raw bytecode bodies;
//! * [`instr`] — a structured instruction cursor over raw bytecode;
//! * [`builder`] — an assembler DSL for writing modules in Rust;
//! * [`encode`] / [`decode`] — the binary format codec;
//! * [`validate`] — the type checker, fused with branch side-table
//!   construction (the metadata that makes in-place interpretation fast);
//! * [`disasm`] — a disassembler for tracing and debugging.
//!
//! The execution engine and instrumentation framework live in
//! `wizard-engine`; this crate is deliberately engine-agnostic so that the
//! static bytecode rewriter and the baseline systems share the same
//! foundation.
//!
//! # Examples
//!
//! Build, encode, decode and validate a module:
//!
//! ```
//! use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
//! use wizard_wasm::types::ValType::I32;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let mut f = FuncBuilder::new(&[I32], &[I32]);
//! f.local_get(0).i32_const(2).i32_mul();
//! mb.add_func("double", f);
//! let module = mb.build()?;
//!
//! let bytes = wizard_wasm::encode::encode(&module);
//! let again = wizard_wasm::decode::decode(&bytes)?;
//! wizard_wasm::validate::validate(&again)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod instr;
pub mod leb128;
pub mod module;
pub mod opcodes;
pub mod types;
pub mod validate;

pub use module::Module;
pub use types::ValType;
