//! Opcode constants for the WebAssembly MVP (plus sign-extension operators)
//! and the engine-reserved probe opcode used for bytecode overwriting.

#![allow(missing_docs)]

// Control instructions.
pub const UNREACHABLE: u8 = 0x00;
pub const NOP: u8 = 0x01;
pub const BLOCK: u8 = 0x02;
pub const LOOP: u8 = 0x03;
pub const IF: u8 = 0x04;
pub const ELSE: u8 = 0x05;
pub const END: u8 = 0x0b;
pub const BR: u8 = 0x0c;
pub const BR_IF: u8 = 0x0d;
pub const BR_TABLE: u8 = 0x0e;
pub const RETURN: u8 = 0x0f;
pub const CALL: u8 = 0x10;
pub const CALL_INDIRECT: u8 = 0x11;

// Parametric instructions.
pub const DROP: u8 = 0x1a;
pub const SELECT: u8 = 0x1b;

// Variable instructions.
pub const LOCAL_GET: u8 = 0x20;
pub const LOCAL_SET: u8 = 0x21;
pub const LOCAL_TEE: u8 = 0x22;
pub const GLOBAL_GET: u8 = 0x23;
pub const GLOBAL_SET: u8 = 0x24;

// Memory instructions.
pub const I32_LOAD: u8 = 0x28;
pub const I64_LOAD: u8 = 0x29;
pub const F32_LOAD: u8 = 0x2a;
pub const F64_LOAD: u8 = 0x2b;
pub const I32_LOAD8_S: u8 = 0x2c;
pub const I32_LOAD8_U: u8 = 0x2d;
pub const I32_LOAD16_S: u8 = 0x2e;
pub const I32_LOAD16_U: u8 = 0x2f;
pub const I64_LOAD8_S: u8 = 0x30;
pub const I64_LOAD8_U: u8 = 0x31;
pub const I64_LOAD16_S: u8 = 0x32;
pub const I64_LOAD16_U: u8 = 0x33;
pub const I64_LOAD32_S: u8 = 0x34;
pub const I64_LOAD32_U: u8 = 0x35;
pub const I32_STORE: u8 = 0x36;
pub const I64_STORE: u8 = 0x37;
pub const F32_STORE: u8 = 0x38;
pub const F64_STORE: u8 = 0x39;
pub const I32_STORE8: u8 = 0x3a;
pub const I32_STORE16: u8 = 0x3b;
pub const I64_STORE8: u8 = 0x3c;
pub const I64_STORE16: u8 = 0x3d;
pub const I64_STORE32: u8 = 0x3e;
pub const MEMORY_SIZE: u8 = 0x3f;
pub const MEMORY_GROW: u8 = 0x40;

// Constants.
pub const I32_CONST: u8 = 0x41;
pub const I64_CONST: u8 = 0x42;
pub const F32_CONST: u8 = 0x43;
pub const F64_CONST: u8 = 0x44;

// i32 comparisons.
pub const I32_EQZ: u8 = 0x45;
pub const I32_EQ: u8 = 0x46;
pub const I32_NE: u8 = 0x47;
pub const I32_LT_S: u8 = 0x48;
pub const I32_LT_U: u8 = 0x49;
pub const I32_GT_S: u8 = 0x4a;
pub const I32_GT_U: u8 = 0x4b;
pub const I32_LE_S: u8 = 0x4c;
pub const I32_LE_U: u8 = 0x4d;
pub const I32_GE_S: u8 = 0x4e;
pub const I32_GE_U: u8 = 0x4f;

// i64 comparisons.
pub const I64_EQZ: u8 = 0x50;
pub const I64_EQ: u8 = 0x51;
pub const I64_NE: u8 = 0x52;
pub const I64_LT_S: u8 = 0x53;
pub const I64_LT_U: u8 = 0x54;
pub const I64_GT_S: u8 = 0x55;
pub const I64_GT_U: u8 = 0x56;
pub const I64_LE_S: u8 = 0x57;
pub const I64_LE_U: u8 = 0x58;
pub const I64_GE_S: u8 = 0x59;
pub const I64_GE_U: u8 = 0x5a;

// f32 comparisons.
pub const F32_EQ: u8 = 0x5b;
pub const F32_NE: u8 = 0x5c;
pub const F32_LT: u8 = 0x5d;
pub const F32_GT: u8 = 0x5e;
pub const F32_LE: u8 = 0x5f;
pub const F32_GE: u8 = 0x60;

// f64 comparisons.
pub const F64_EQ: u8 = 0x61;
pub const F64_NE: u8 = 0x62;
pub const F64_LT: u8 = 0x63;
pub const F64_GT: u8 = 0x64;
pub const F64_LE: u8 = 0x65;
pub const F64_GE: u8 = 0x66;

// i32 arithmetic.
pub const I32_CLZ: u8 = 0x67;
pub const I32_CTZ: u8 = 0x68;
pub const I32_POPCNT: u8 = 0x69;
pub const I32_ADD: u8 = 0x6a;
pub const I32_SUB: u8 = 0x6b;
pub const I32_MUL: u8 = 0x6c;
pub const I32_DIV_S: u8 = 0x6d;
pub const I32_DIV_U: u8 = 0x6e;
pub const I32_REM_S: u8 = 0x6f;
pub const I32_REM_U: u8 = 0x70;
pub const I32_AND: u8 = 0x71;
pub const I32_OR: u8 = 0x72;
pub const I32_XOR: u8 = 0x73;
pub const I32_SHL: u8 = 0x74;
pub const I32_SHR_S: u8 = 0x75;
pub const I32_SHR_U: u8 = 0x76;
pub const I32_ROTL: u8 = 0x77;
pub const I32_ROTR: u8 = 0x78;

// i64 arithmetic.
pub const I64_CLZ: u8 = 0x79;
pub const I64_CTZ: u8 = 0x7a;
pub const I64_POPCNT: u8 = 0x7b;
pub const I64_ADD: u8 = 0x7c;
pub const I64_SUB: u8 = 0x7d;
pub const I64_MUL: u8 = 0x7e;
pub const I64_DIV_S: u8 = 0x7f;
pub const I64_DIV_U: u8 = 0x80;
pub const I64_REM_S: u8 = 0x81;
pub const I64_REM_U: u8 = 0x82;
pub const I64_AND: u8 = 0x83;
pub const I64_OR: u8 = 0x84;
pub const I64_XOR: u8 = 0x85;
pub const I64_SHL: u8 = 0x86;
pub const I64_SHR_S: u8 = 0x87;
pub const I64_SHR_U: u8 = 0x88;
pub const I64_ROTL: u8 = 0x89;
pub const I64_ROTR: u8 = 0x8a;

// f32 arithmetic.
pub const F32_ABS: u8 = 0x8b;
pub const F32_NEG: u8 = 0x8c;
pub const F32_CEIL: u8 = 0x8d;
pub const F32_FLOOR: u8 = 0x8e;
pub const F32_TRUNC: u8 = 0x8f;
pub const F32_NEAREST: u8 = 0x90;
pub const F32_SQRT: u8 = 0x91;
pub const F32_ADD: u8 = 0x92;
pub const F32_SUB: u8 = 0x93;
pub const F32_MUL: u8 = 0x94;
pub const F32_DIV: u8 = 0x95;
pub const F32_MIN: u8 = 0x96;
pub const F32_MAX: u8 = 0x97;
pub const F32_COPYSIGN: u8 = 0x98;

// f64 arithmetic.
pub const F64_ABS: u8 = 0x99;
pub const F64_NEG: u8 = 0x9a;
pub const F64_CEIL: u8 = 0x9b;
pub const F64_FLOOR: u8 = 0x9c;
pub const F64_TRUNC: u8 = 0x9d;
pub const F64_NEAREST: u8 = 0x9e;
pub const F64_SQRT: u8 = 0x9f;
pub const F64_ADD: u8 = 0xa0;
pub const F64_SUB: u8 = 0xa1;
pub const F64_MUL: u8 = 0xa2;
pub const F64_DIV: u8 = 0xa3;
pub const F64_MIN: u8 = 0xa4;
pub const F64_MAX: u8 = 0xa5;
pub const F64_COPYSIGN: u8 = 0xa6;

// Conversions.
pub const I32_WRAP_I64: u8 = 0xa7;
pub const I32_TRUNC_F32_S: u8 = 0xa8;
pub const I32_TRUNC_F32_U: u8 = 0xa9;
pub const I32_TRUNC_F64_S: u8 = 0xaa;
pub const I32_TRUNC_F64_U: u8 = 0xab;
pub const I64_EXTEND_I32_S: u8 = 0xac;
pub const I64_EXTEND_I32_U: u8 = 0xad;
pub const I64_TRUNC_F32_S: u8 = 0xae;
pub const I64_TRUNC_F32_U: u8 = 0xaf;
pub const I64_TRUNC_F64_S: u8 = 0xb0;
pub const I64_TRUNC_F64_U: u8 = 0xb1;
pub const F32_CONVERT_I32_S: u8 = 0xb2;
pub const F32_CONVERT_I32_U: u8 = 0xb3;
pub const F32_CONVERT_I64_S: u8 = 0xb4;
pub const F32_CONVERT_I64_U: u8 = 0xb5;
pub const F32_DEMOTE_F64: u8 = 0xb6;
pub const F64_CONVERT_I32_S: u8 = 0xb7;
pub const F64_CONVERT_I32_U: u8 = 0xb8;
pub const F64_CONVERT_I64_S: u8 = 0xb9;
pub const F64_CONVERT_I64_U: u8 = 0xba;
pub const F64_PROMOTE_F32: u8 = 0xbb;
pub const I32_REINTERPRET_F32: u8 = 0xbc;
pub const I64_REINTERPRET_F64: u8 = 0xbd;
pub const F32_REINTERPRET_I32: u8 = 0xbe;
pub const F64_REINTERPRET_I64: u8 = 0xbf;

// Sign-extension operators.
pub const I32_EXTEND8_S: u8 = 0xc0;
pub const I32_EXTEND16_S: u8 = 0xc1;
pub const I64_EXTEND8_S: u8 = 0xc2;
pub const I64_EXTEND16_S: u8 = 0xc3;
pub const I64_EXTEND32_S: u8 = 0xc4;

/// Engine-reserved probe opcode used for *bytecode overwriting* (see the
/// paper, §4.2). Illegal in valid WebAssembly; the engine overwrites the
/// original opcode of a probed instruction with this byte and keeps the
/// original on the side.
pub const PROBE: u8 = 0xe0;

/// The shape of the immediate operand(s) following an opcode byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImmKind {
    /// No immediates.
    None,
    /// A block type byte (`block`, `loop`, `if`).
    BlockType,
    /// A single LEB128 u32 index (labels, locals, globals, functions).
    Index,
    /// Two LEB128 u32s: type index + table index (`call_indirect`).
    CallIndirect,
    /// A branch table: vector of labels plus a default label.
    BrTable,
    /// align + offset memargs (loads/stores).
    MemArg,
    /// A single zero byte (`memory.size` / `memory.grow`).
    MemIndex,
    /// Signed LEB128 i32.
    ConstI32,
    /// Signed LEB128 i64.
    ConstI64,
    /// 4 little-endian bytes.
    ConstF32,
    /// 8 little-endian bytes.
    ConstF64,
}

/// Classifies the immediates of `op`, or `None` if the opcode is not part of
/// the supported instruction set.
pub fn imm_kind(op: u8) -> Option<ImmKind> {
    use ImmKind::*;
    Some(match op {
        UNREACHABLE | NOP | ELSE | END | RETURN | DROP | SELECT => None,
        BLOCK | LOOP | IF => BlockType,
        BR | BR_IF | CALL | LOCAL_GET | LOCAL_SET | LOCAL_TEE | GLOBAL_GET | GLOBAL_SET => Index,
        BR_TABLE => BrTable,
        CALL_INDIRECT => CallIndirect,
        I32_LOAD..=I64_STORE32 => MemArg,
        MEMORY_SIZE | MEMORY_GROW => MemIndex,
        I32_CONST => ConstI32,
        I64_CONST => ConstI64,
        F32_CONST => ConstF32,
        F64_CONST => ConstF64,
        I32_EQZ..=I64_EXTEND32_S => None,
        _ => return Option::None,
    })
}

/// Returns `true` if `op` is a recognized opcode of the supported set
/// (excluding the engine-reserved [`PROBE`] byte).
pub fn is_valid(op: u8) -> bool {
    imm_kind(op).is_some()
}

/// Classifies a byte that is *not* in the supported set but is a known
/// opcode (or prefix byte) of a post-MVP proposal, so decode/validate
/// errors can say which feature a real-world binary needs rather than
/// just "invalid opcode". Returns `None` for genuinely undefined bytes.
pub fn unsupported_class(op: u8) -> Option<&'static str> {
    Some(match op {
        0x06..=0x0a | 0x18 | 0x19 | 0x1f => "exception handling",
        0x12 | 0x13 => "tail calls",
        0x14 | 0x15 => "typed function references",
        0x1c => "reference types (typed select)",
        0x25 | 0x26 => "reference types (table access)",
        0xd0..=0xd2 => "reference types",
        0xfc => "the 0xfc prefix (saturating truncation / bulk memory)",
        0xfd => "the 0xfd prefix (SIMD)",
        0xfe => "the 0xfe prefix (threads/atomics)",
        _ => return None,
    })
}

/// Returns the mnemonic for `op` (for tracing and disassembly).
pub fn name(op: u8) -> &'static str {
    match op {
        UNREACHABLE => "unreachable",
        NOP => "nop",
        BLOCK => "block",
        LOOP => "loop",
        IF => "if",
        ELSE => "else",
        END => "end",
        BR => "br",
        BR_IF => "br_if",
        BR_TABLE => "br_table",
        RETURN => "return",
        CALL => "call",
        CALL_INDIRECT => "call_indirect",
        DROP => "drop",
        SELECT => "select",
        LOCAL_GET => "local.get",
        LOCAL_SET => "local.set",
        LOCAL_TEE => "local.tee",
        GLOBAL_GET => "global.get",
        GLOBAL_SET => "global.set",
        I32_LOAD => "i32.load",
        I64_LOAD => "i64.load",
        F32_LOAD => "f32.load",
        F64_LOAD => "f64.load",
        I32_LOAD8_S => "i32.load8_s",
        I32_LOAD8_U => "i32.load8_u",
        I32_LOAD16_S => "i32.load16_s",
        I32_LOAD16_U => "i32.load16_u",
        I64_LOAD8_S => "i64.load8_s",
        I64_LOAD8_U => "i64.load8_u",
        I64_LOAD16_S => "i64.load16_s",
        I64_LOAD16_U => "i64.load16_u",
        I64_LOAD32_S => "i64.load32_s",
        I64_LOAD32_U => "i64.load32_u",
        I32_STORE => "i32.store",
        I64_STORE => "i64.store",
        F32_STORE => "f32.store",
        F64_STORE => "f64.store",
        I32_STORE8 => "i32.store8",
        I32_STORE16 => "i32.store16",
        I64_STORE8 => "i64.store8",
        I64_STORE16 => "i64.store16",
        I64_STORE32 => "i64.store32",
        MEMORY_SIZE => "memory.size",
        MEMORY_GROW => "memory.grow",
        I32_CONST => "i32.const",
        I64_CONST => "i64.const",
        F32_CONST => "f32.const",
        F64_CONST => "f64.const",
        I32_EQZ => "i32.eqz",
        I32_EQ => "i32.eq",
        I32_NE => "i32.ne",
        I32_LT_S => "i32.lt_s",
        I32_LT_U => "i32.lt_u",
        I32_GT_S => "i32.gt_s",
        I32_GT_U => "i32.gt_u",
        I32_LE_S => "i32.le_s",
        I32_LE_U => "i32.le_u",
        I32_GE_S => "i32.ge_s",
        I32_GE_U => "i32.ge_u",
        I64_EQZ => "i64.eqz",
        I64_EQ => "i64.eq",
        I64_NE => "i64.ne",
        I64_LT_S => "i64.lt_s",
        I64_LT_U => "i64.lt_u",
        I64_GT_S => "i64.gt_s",
        I64_GT_U => "i64.gt_u",
        I64_LE_S => "i64.le_s",
        I64_LE_U => "i64.le_u",
        I64_GE_S => "i64.ge_s",
        I64_GE_U => "i64.ge_u",
        F32_EQ => "f32.eq",
        F32_NE => "f32.ne",
        F32_LT => "f32.lt",
        F32_GT => "f32.gt",
        F32_LE => "f32.le",
        F32_GE => "f32.ge",
        F64_EQ => "f64.eq",
        F64_NE => "f64.ne",
        F64_LT => "f64.lt",
        F64_GT => "f64.gt",
        F64_LE => "f64.le",
        F64_GE => "f64.ge",
        I32_CLZ => "i32.clz",
        I32_CTZ => "i32.ctz",
        I32_POPCNT => "i32.popcnt",
        I32_ADD => "i32.add",
        I32_SUB => "i32.sub",
        I32_MUL => "i32.mul",
        I32_DIV_S => "i32.div_s",
        I32_DIV_U => "i32.div_u",
        I32_REM_S => "i32.rem_s",
        I32_REM_U => "i32.rem_u",
        I32_AND => "i32.and",
        I32_OR => "i32.or",
        I32_XOR => "i32.xor",
        I32_SHL => "i32.shl",
        I32_SHR_S => "i32.shr_s",
        I32_SHR_U => "i32.shr_u",
        I32_ROTL => "i32.rotl",
        I32_ROTR => "i32.rotr",
        I64_CLZ => "i64.clz",
        I64_CTZ => "i64.ctz",
        I64_POPCNT => "i64.popcnt",
        I64_ADD => "i64.add",
        I64_SUB => "i64.sub",
        I64_MUL => "i64.mul",
        I64_DIV_S => "i64.div_s",
        I64_DIV_U => "i64.div_u",
        I64_REM_S => "i64.rem_s",
        I64_REM_U => "i64.rem_u",
        I64_AND => "i64.and",
        I64_OR => "i64.or",
        I64_XOR => "i64.xor",
        I64_SHL => "i64.shl",
        I64_SHR_S => "i64.shr_s",
        I64_SHR_U => "i64.shr_u",
        I64_ROTL => "i64.rotl",
        I64_ROTR => "i64.rotr",
        F32_ABS => "f32.abs",
        F32_NEG => "f32.neg",
        F32_CEIL => "f32.ceil",
        F32_FLOOR => "f32.floor",
        F32_TRUNC => "f32.trunc",
        F32_NEAREST => "f32.nearest",
        F32_SQRT => "f32.sqrt",
        F32_ADD => "f32.add",
        F32_SUB => "f32.sub",
        F32_MUL => "f32.mul",
        F32_DIV => "f32.div",
        F32_MIN => "f32.min",
        F32_MAX => "f32.max",
        F32_COPYSIGN => "f32.copysign",
        F64_ABS => "f64.abs",
        F64_NEG => "f64.neg",
        F64_CEIL => "f64.ceil",
        F64_FLOOR => "f64.floor",
        F64_TRUNC => "f64.trunc",
        F64_NEAREST => "f64.nearest",
        F64_SQRT => "f64.sqrt",
        F64_ADD => "f64.add",
        F64_SUB => "f64.sub",
        F64_MUL => "f64.mul",
        F64_DIV => "f64.div",
        F64_MIN => "f64.min",
        F64_MAX => "f64.max",
        F64_COPYSIGN => "f64.copysign",
        I32_WRAP_I64 => "i32.wrap_i64",
        I32_TRUNC_F32_S => "i32.trunc_f32_s",
        I32_TRUNC_F32_U => "i32.trunc_f32_u",
        I32_TRUNC_F64_S => "i32.trunc_f64_s",
        I32_TRUNC_F64_U => "i32.trunc_f64_u",
        I64_EXTEND_I32_S => "i64.extend_i32_s",
        I64_EXTEND_I32_U => "i64.extend_i32_u",
        I64_TRUNC_F32_S => "i64.trunc_f32_s",
        I64_TRUNC_F32_U => "i64.trunc_f32_u",
        I64_TRUNC_F64_S => "i64.trunc_f64_s",
        I64_TRUNC_F64_U => "i64.trunc_f64_u",
        F32_CONVERT_I32_S => "f32.convert_i32_s",
        F32_CONVERT_I32_U => "f32.convert_i32_u",
        F32_CONVERT_I64_S => "f32.convert_i64_s",
        F32_CONVERT_I64_U => "f32.convert_i64_u",
        F32_DEMOTE_F64 => "f32.demote_f64",
        F64_CONVERT_I32_S => "f64.convert_i32_s",
        F64_CONVERT_I32_U => "f64.convert_i32_u",
        F64_CONVERT_I64_S => "f64.convert_i64_s",
        F64_CONVERT_I64_U => "f64.convert_i64_u",
        F64_PROMOTE_F32 => "f64.promote_f32",
        I32_REINTERPRET_F32 => "i32.reinterpret_f32",
        I64_REINTERPRET_F64 => "i64.reinterpret_f64",
        F32_REINTERPRET_I32 => "f32.reinterpret_i32",
        F64_REINTERPRET_I64 => "f64.reinterpret_i64",
        I32_EXTEND8_S => "i32.extend8_s",
        I32_EXTEND16_S => "i32.extend16_s",
        I64_EXTEND8_S => "i64.extend8_s",
        I64_EXTEND16_S => "i64.extend16_s",
        I64_EXTEND32_S => "i64.extend32_s",
        PROBE => "<probe>",
        _ => "<invalid>",
    }
}

/// Returns `true` for instructions that transfer control (branch family,
/// `return`, `unreachable`); used by analyses and the rewriter.
pub fn is_branch(op: u8) -> bool {
    matches!(op, BR | BR_IF | BR_TABLE | IF)
}

/// Returns `true` for memory access instructions (loads and stores).
pub fn is_memory_access(op: u8) -> bool {
    (I32_LOAD..=I64_STORE32).contains(&op)
}

/// Returns `true` for load instructions.
pub fn is_load(op: u8) -> bool {
    (I32_LOAD..=I64_LOAD32_U).contains(&op)
}

/// Returns `true` for store instructions.
pub fn is_store(op: u8) -> bool {
    (I32_STORE..=I64_STORE32).contains(&op)
}

/// Returns `true` for direct and indirect call instructions.
pub fn is_call(op: u8) -> bool {
    matches!(op, CALL | CALL_INDIRECT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_valid_opcode_has_a_name() {
        let mut count = 0;
        for op in 0u8..=0xff {
            if is_valid(op) {
                assert_ne!(name(op), "<invalid>", "opcode {op:#x}");
                count += 1;
            }
        }
        // MVP + sign extension: 13 control + 2 parametric + 5 variable
        // + 25 memory + 4 const + 123 numeric/conversion + 5 sign-ext.
        assert_eq!(count, 177);
    }

    #[test]
    fn probe_opcode_is_not_valid_wasm() {
        assert!(!is_valid(PROBE));
        assert_eq!(name(PROBE), "<probe>");
    }

    #[test]
    fn classification_helpers() {
        assert!(is_branch(BR_IF));
        assert!(!is_branch(CALL));
        assert!(is_memory_access(F64_STORE));
        assert!(is_load(I64_LOAD32_U));
        assert!(!is_load(I32_STORE));
        assert!(is_store(I32_STORE8));
        assert!(is_call(CALL_INDIRECT));
    }

    #[test]
    fn imm_kinds() {
        assert_eq!(imm_kind(BLOCK), Some(ImmKind::BlockType));
        assert_eq!(imm_kind(BR_TABLE), Some(ImmKind::BrTable));
        assert_eq!(imm_kind(I32_LOAD), Some(ImmKind::MemArg));
        assert_eq!(imm_kind(I32_ADD), Some(ImmKind::None));
        assert_eq!(imm_kind(0xfe), None);
        assert_eq!(imm_kind(PROBE), None);
    }
}
