//! Decoding of the WebAssembly binary format into a [`Module`].

use crate::leb128;
use crate::module::{
    ConstExpr, CustomSection, DataSegment, ElemSegment, Export, FuncBody, FuncDecl, Global, Import,
    ImportDesc, Module,
};
use crate::opcodes as op;
use crate::types::{ExternKind, FuncType, GlobalType, Limits, MemoryType, TableType, ValType};

/// Error decoding a binary module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset within the binary where the error was detected.
    pub offset: usize,
    /// Human-readable cause.
    pub msg: String,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Name of the section currently being decoded ("" in the preamble).
    /// Every error message names the enclosing section so a failure in a
    /// multi-megabyte binary is attributable without a hex dump.
    section: &'static str,
    /// Index of the entry within the current section, where meaningful.
    entry: Option<u32>,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0, section: "", entry: None }
    }

    fn enter(&mut self, section: &'static str) {
        self.section = section;
        self.entry = None;
    }

    /// Prefixes `msg` with the enclosing section/entry context.
    fn context(&self, msg: String) -> String {
        match (self.section, self.entry) {
            ("", _) => msg,
            (s, None) => format!("in {s} section: {msg}"),
            (s, Some(i)) => format!("in {s} section, entry {i}: {msg}"),
        }
    }

    fn err(&self, msg: impl Into<String>) -> DecodeError {
        DecodeError { offset: self.pos, msg: self.context(msg.into()) }
    }

    fn err_at(&self, offset: usize, msg: impl Into<String>) -> DecodeError {
        DecodeError { offset, msg: self.context(msg.into()) }
    }

    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.err("unexpected end"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let (v, p) = leb128::read_u32(self.buf, self.pos)
            .map_err(|e| self.err_at(e.offset, "bad LEB128 u32"))?;
        self.pos = p;
        Ok(v)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let (v, p) = leb128::read_i32(self.buf, self.pos)
            .map_err(|e| self.err_at(e.offset, "bad LEB128 i32"))?;
        self.pos = p;
        Ok(v)
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let (v, p) = leb128::read_i64(self.buf, self.pos)
            .map_err(|e| self.err_at(e.offset, "bad LEB128 i64"))?;
        self.pos = p;
        Ok(v)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let s = self.buf.get(self.pos..self.pos + n).ok_or_else(|| self.err("unexpected end"))?;
        self.pos += n;
        Ok(s)
    }

    fn name(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("name is not UTF-8"))
    }

    fn val_type(&mut self) -> Result<ValType, DecodeError> {
        let b = self.byte()?;
        ValType::from_byte(b).ok_or_else(|| self.err(format!("bad value type {b:#x}")))
    }

    fn limits(&mut self) -> Result<Limits, DecodeError> {
        match self.byte()? {
            0x00 => Ok(Limits { min: self.u32()?, max: None }),
            0x01 => {
                let min = self.u32()?;
                let max = self.u32()?;
                Ok(Limits { min, max: Some(max) })
            }
            b => Err(self.err(format!("bad limits flag {b:#x}"))),
        }
    }

    fn const_expr(&mut self) -> Result<ConstExpr, DecodeError> {
        let opcode = self.byte()?;
        let e = match opcode {
            op::I32_CONST => ConstExpr::I32(self.i32()?),
            op::I64_CONST => ConstExpr::I64(self.i64()?),
            op::F32_CONST => {
                let b: [u8; 4] = self.bytes(4)?.try_into().expect("len 4");
                ConstExpr::F32(f32::from_le_bytes(b))
            }
            op::F64_CONST => {
                let b: [u8; 8] = self.bytes(8)?.try_into().expect("len 8");
                ConstExpr::F64(f64::from_le_bytes(b))
            }
            op::GLOBAL_GET => ConstExpr::GlobalGet(self.u32()?),
            b => {
                let pos = self.pos - 1; // point at the opcode byte itself
                let detail = match op::unsupported_class(b) {
                    Some(class) => format!("({class} is outside the MVP subset)"),
                    None => {
                        "(const exprs support only i32/i64/f32/f64.const and global.get)".into()
                    }
                };
                return Err(
                    self.err_at(pos, format!("unsupported const-expr opcode {b:#04x} {detail}"))
                );
            }
        };
        let end = self.byte()?;
        if end != op::END {
            return Err(self.err("const expr not terminated by end"));
        }
        Ok(e)
    }
}

/// Decodes a binary WebAssembly module.
///
/// This performs structural decoding only; call [`crate::validate::validate`]
/// on the result to type-check it.
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input.
pub fn decode(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.bytes(4)? != b"\0asm" {
        return Err(r.err("bad magic"));
    }
    if r.bytes(4)? != 1u32.to_le_bytes() {
        return Err(r.err("unsupported version"));
    }
    let mut m = Module::new();
    let mut last_section = 0u8;
    while r.pos < bytes.len() {
        r.enter("");
        let id = r.byte()?;
        let size = r.u32()? as usize;
        let end = r.pos + size;
        if end > bytes.len() {
            return Err(r.err(format!("section {} extends past end of module", section_name(id))));
        }
        if id != 0 {
            if id <= last_section {
                return Err(r.err(format!(
                    "section {} out of order (must follow section {})",
                    section_name(id),
                    section_name(last_section)
                )));
            }
            last_section = id;
        }
        r.enter(section_name(id));
        match id {
            0 => {
                let start = r.pos;
                let name = r.name()?;
                let remaining = end - r.pos;
                let payload = r.bytes(remaining)?.to_vec();
                if name == "name" {
                    decode_name_section(&payload, &mut m);
                }
                m.customs.push(CustomSection { name, bytes: payload });
                debug_assert!(r.pos == end, "custom section fully consumed from {start}");
            }
            1 => {
                let n = r.u32()?;
                for i in 0..n {
                    r.entry = Some(i);
                    if r.byte()? != 0x60 {
                        return Err(r.err("bad functype tag"));
                    }
                    let np = r.u32()?;
                    let mut params = Vec::with_capacity(np as usize);
                    for _ in 0..np {
                        params.push(r.val_type()?);
                    }
                    let nr = r.u32()?;
                    let mut results = Vec::with_capacity(nr as usize);
                    for _ in 0..nr {
                        results.push(r.val_type()?);
                    }
                    m.types.push(FuncType { params, results });
                }
            }
            2 => {
                let n = r.u32()?;
                for i in 0..n {
                    r.entry = Some(i);
                    let module = r.name()?;
                    let name = r.name()?;
                    let desc = match r.byte()? {
                        0x00 => ImportDesc::Func(r.u32()?),
                        0x01 => {
                            if r.byte()? != 0x70 {
                                return Err(r.err("only funcref tables supported"));
                            }
                            ImportDesc::Table(TableType { limits: r.limits()? })
                        }
                        0x02 => ImportDesc::Memory(MemoryType { limits: r.limits()? }),
                        0x03 => {
                            let value = r.val_type()?;
                            let mutable = match r.byte()? {
                                0 => false,
                                1 => true,
                                b => return Err(r.err(format!("bad mutability {b:#x}"))),
                            };
                            ImportDesc::Global(GlobalType { value, mutable })
                        }
                        b => return Err(r.err(format!("bad import kind {b:#x}"))),
                    };
                    m.imports.push(Import { module, name, desc });
                }
            }
            3 => {
                let n = r.u32()?;
                for i in 0..n {
                    r.entry = Some(i);
                    let t = r.u32()?;
                    m.funcs.push(FuncDecl { type_idx: t, body: FuncBody::default() });
                }
            }
            4 => {
                let n = r.u32()?;
                for i in 0..n {
                    r.entry = Some(i);
                    if r.byte()? != 0x70 {
                        return Err(r.err("only funcref tables supported"));
                    }
                    m.tables.push(TableType { limits: r.limits()? });
                }
            }
            5 => {
                let n = r.u32()?;
                for i in 0..n {
                    r.entry = Some(i);
                    m.memories.push(MemoryType { limits: r.limits()? });
                }
            }
            6 => {
                let n = r.u32()?;
                for i in 0..n {
                    r.entry = Some(i);
                    let value = r.val_type()?;
                    let mutable = match r.byte()? {
                        0 => false,
                        1 => true,
                        b => return Err(r.err(format!("bad mutability {b:#x}"))),
                    };
                    let init = r.const_expr()?;
                    m.globals.push(Global { ty: GlobalType { value, mutable }, init });
                }
            }
            7 => {
                let n = r.u32()?;
                for i in 0..n {
                    r.entry = Some(i);
                    let name = r.name()?;
                    let kind = match r.byte()? {
                        0x00 => ExternKind::Func,
                        0x01 => ExternKind::Table,
                        0x02 => ExternKind::Memory,
                        0x03 => ExternKind::Global,
                        b => return Err(r.err(format!("bad export kind {b:#x}"))),
                    };
                    let index = r.u32()?;
                    m.exports.push(Export { name, kind, index });
                }
            }
            8 => {
                m.start = Some(r.u32()?);
            }
            9 => {
                let n = r.u32()?;
                for i in 0..n {
                    r.entry = Some(i);
                    let table = r.u32()?;
                    if table != 0 {
                        return Err(r.err("element segment table index must be 0"));
                    }
                    let offset = r.const_expr()?;
                    let nf = r.u32()?;
                    let mut funcs = Vec::with_capacity(nf as usize);
                    for _ in 0..nf {
                        funcs.push(r.u32()?);
                    }
                    m.elems.push(ElemSegment { table, offset, funcs });
                }
            }
            10 => {
                let n = r.u32()? as usize;
                if n != m.funcs.len() {
                    return Err(r.err("code count does not match function count"));
                }
                for i in 0..n {
                    r.entry = Some(i as u32);
                    let size = r.u32()? as usize;
                    let body_end = r.pos + size;
                    let nl = r.u32()?;
                    let mut locals = Vec::with_capacity(nl as usize);
                    let mut total: u64 = 0;
                    for _ in 0..nl {
                        let count = r.u32()?;
                        let t = r.val_type()?;
                        total += u64::from(count);
                        if total > 100_000 {
                            return Err(r.err("too many locals"));
                        }
                        locals.push((count, t));
                    }
                    if body_end < r.pos || body_end > bytes.len() {
                        return Err(r.err("bad code body size"));
                    }
                    let code = r.bytes(body_end - r.pos)?.to_vec();
                    m.funcs[i].body = FuncBody { locals, code };
                }
            }
            11 => {
                let n = r.u32()?;
                for i in 0..n {
                    r.entry = Some(i);
                    let memory = r.u32()?;
                    if memory != 0 {
                        return Err(r.err("data segment memory index must be 0"));
                    }
                    let offset = r.const_expr()?;
                    let nb = r.u32()? as usize;
                    let bytes = r.bytes(nb)?.to_vec();
                    m.data.push(DataSegment { memory, offset, bytes });
                }
            }
            b => return Err(r.err(format!("unknown section id {b}"))),
        }
        r.entry = None;
        if r.pos != end {
            return Err(r.err("section size mismatch (content does not fill declared size)"));
        }
    }
    Ok(m)
}

/// The spec name of section `id` (for diagnostics).
fn section_name(id: u8) -> &'static str {
    match id {
        0 => "custom",
        1 => "type",
        2 => "import",
        3 => "function",
        4 => "table",
        5 => "memory",
        6 => "global",
        7 => "export",
        8 => "start",
        9 => "element",
        10 => "code",
        11 => "data",
        _ => "unknown",
    }
}

/// Best-effort decoding of the `name` custom section's function-names
/// subsection into [`Module::names`]. Malformed name payloads are ignored
/// (the section is advisory metadata; a bad one must not reject a module
/// that is otherwise valid).
fn decode_name_section(payload: &[u8], m: &mut Module) {
    let mut r = Reader::new(payload);
    while r.pos < payload.len() {
        let Ok(subsection) = r.byte() else { return };
        let Ok(size) = r.u32() else { return };
        let end = r.pos + size as usize;
        if end > payload.len() {
            return;
        }
        if subsection == 1 {
            // Function names: vec of (func index, name) assignments.
            let Ok(n) = r.u32() else { return };
            for _ in 0..n {
                let (Ok(idx), Ok(name)) = (r.u32(), r.name()) else { return };
                let idx = idx as usize;
                if idx >= m.names.len() {
                    m.names.resize(idx + 1, None);
                }
                m.names[idx] = Some(name);
            }
        }
        r.pos = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::encode::encode;
    use crate::types::ValType::{F64, I32, I64};

    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new();
        mb.memory(1);
        mb.table(4);
        let g = mb.global(I64, true, ConstExpr::I64(42));
        let callee = {
            let mut f = FuncBuilder::new(&[I32], &[I32]);
            f.local_get(0).i32_const(1).i32_add();
            mb.add_private_func("inc", f)
        };
        let mut f = FuncBuilder::new(&[I32, F64], &[I32]);
        let tmp = f.local(I32);
        f.local_get(0).call(callee).local_set(tmp);
        f.global_get(g).i64_const(1).i64_add().global_set(g);
        f.local_get(tmp).i32_const(7).i32_store(16);
        f.local_get(tmp);
        let main = mb.add_func("main", f);
        mb.elem(0, &[callee, main]);
        mb.data(8, b"hello");
        mb.build().unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample_module();
        let bytes = encode(&m);
        let m2 = decode(&bytes).unwrap();
        // Names are not preserved (no name section emitted), so compare
        // piecewise.
        assert_eq!(m.types, m2.types);
        assert_eq!(m.imports, m2.imports);
        assert_eq!(m.funcs, m2.funcs);
        assert_eq!(m.tables, m2.tables);
        assert_eq!(m.memories, m2.memories);
        assert_eq!(m.globals, m2.globals);
        assert_eq!(m.exports, m2.exports);
        assert_eq!(m.elems, m2.elems);
        assert_eq!(m.data, m2.data);
        // And the decoded module validates.
        crate::validate::validate(&m2).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(decode(b"\0elf\x01\0\0\0").is_err());
        assert!(decode(b"\0as").is_err());
    }

    #[test]
    fn out_of_order_sections_rejected() {
        let m = sample_module();
        let bytes = encode(&m);
        // Find the memory section (id 5) and type section (id 1) — craft a
        // module with a duplicate section id to trigger the ordering check.
        let mut dup = bytes.clone();
        // Append a second (empty) type section at the end: id 1, size 1, count 0.
        dup.extend_from_slice(&[1, 1, 0]);
        assert!(decode(&dup).is_err());
    }

    #[test]
    fn truncated_module_rejected() {
        let m = sample_module();
        let bytes = encode(&m);
        for cut in [bytes.len() - 1, bytes.len() / 2, 9] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    /// Pins the diagnostic format for an unsupported const-expr opcode:
    /// the error names the enclosing section, the entry index, and the
    /// byte offset of the offending opcode.
    #[test]
    fn unsupported_const_expr_diagnostic_names_section_entry_and_offset() {
        // A module with one global whose init expr is `i32.add` (0x6a).
        let bytes: Vec<u8> = [
            b"\0asm".as_slice(),
            &1u32.to_le_bytes(),
            // global section: id 6, size 5, count 1, i32 mut, then 0x6a.
            &[6, 5, 1, 0x7f, 0x01, 0x6a, 0x0b],
        ]
        .concat();
        let err = decode(&bytes).unwrap_err();
        // The opcode byte sits at offset 13: 8 (preamble) + 2 (id+size) +
        // 3 (count, valtype, mutability).
        assert_eq!(
            err.to_string(),
            "decode error at byte 13: in global section, entry 0: unsupported const-expr \
             opcode 0x6a (const exprs support only i32/i64/f32/f64.const and global.get)"
        );
    }

    /// A post-MVP opcode in a const expr names the feature class instead.
    #[test]
    fn const_expr_ref_null_diagnostic_names_feature() {
        let bytes: Vec<u8> = [
            b"\0asm".as_slice(),
            &1u32.to_le_bytes(),
            // global section with `ref.null funcref` (0xd0 0x70) as init.
            &[6, 6, 1, 0x7f, 0x00, 0xd0, 0x70, 0x0b],
        ]
        .concat();
        let err = decode(&bytes).unwrap_err();
        assert_eq!(
            err.to_string(),
            "decode error at byte 13: in global section, entry 0: unsupported const-expr \
             opcode 0xd0 (reference types is outside the MVP subset)"
        );
    }

    /// Truncation inside a section names the section in the error.
    #[test]
    fn truncated_type_section_error_names_section() {
        // type section claiming 2 entries but containing only a tag byte.
        let bytes: Vec<u8> = [b"\0asm".as_slice(), &1u32.to_le_bytes(), &[1, 2, 2, 0x60]].concat();
        let err = decode(&bytes).unwrap_err();
        assert!(err.msg.starts_with("in type section, entry 0:"), "{err}");
        assert_eq!(err.offset, 12, "{err}");
    }

    #[test]
    fn function_names_decoded_from_name_section() {
        let m = sample_module();
        let bytes = encode(&m);
        // Append a hand-built `name` custom section: subsection 1
        // (function names), assigning "inc" to func 0 and "main" to 1.
        let mut payload = vec![4, b'n', b'a', b'm', b'e'];
        let assignments =
            [vec![0u8, 3, b'i', b'n', b'c'], vec![1u8, 4, b'm', b'a', b'i', b'n']].concat();
        payload.push(1); // subsection id
        payload.push((assignments.len() + 1) as u8); // subsection size
        payload.push(2); // count
        payload.extend_from_slice(&assignments);
        let mut with_names = bytes.clone();
        with_names.push(0); // custom section id
        with_names.push(payload.len() as u8);
        with_names.extend_from_slice(&payload);
        let m2 = decode(&with_names).unwrap();
        assert_eq!(m2.func_name(0), Some("inc"));
        assert_eq!(m2.func_name(1), Some("main"));
        // The raw custom section is preserved verbatim, so re-encoding
        // is byte-identical even though names were also parsed.
        assert_eq!(encode(&m2), with_names);
    }

    #[test]
    fn custom_sections_roundtrip() {
        let mut m = sample_module();
        m.customs.push(CustomSection { name: "producers".into(), bytes: vec![1, 2, 3] });
        let bytes = encode(&m);
        let m2 = decode(&bytes).unwrap();
        assert_eq!(m2.customs.len(), 1);
        assert_eq!(m2.customs[0].name, "producers");
        assert_eq!(m2.customs[0].bytes, vec![1, 2, 3]);
    }
}
