//! Module validation (type checking) fused with *branch side-table*
//! construction.
//!
//! The side table is the metadata that makes in-place interpretation fast
//! (Titzer, OOPSLA'22): for every control-transfer instruction it records the
//! target pc, the number of values carried, and the operand-stack height to
//! truncate to. The engine's interpreter and JIT both consume it, as does the
//! bytecode rewriter (to rebuild structured code).

use std::collections::HashMap;

use crate::instr::{decode_at, Imm};
use crate::module::{ConstExpr, FuncIdx, ImportDesc, Module};
use crate::opcodes as op;
use crate::types::{BlockType, ExternKind, FuncType, GlobalType, ValType};

/// A resolved control-transfer destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Target {
    /// Destination pc (byte offset in the function body).
    pub target_pc: u32,
    /// Number of operand values carried across the branch (0 or 1 in MVP).
    pub arity: u32,
    /// Operand-stack height (above the frame's operand base) to truncate to
    /// before pushing the carried values.
    pub height: u32,
}

/// A side-table entry attached to the pc of a control instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SideEntry {
    /// `br` target, or `br_if` taken-branch target.
    Br(Target),
    /// `br_table`: one target per label, default last.
    Table(Vec<Target>),
    /// `if`: destination when the condition is false (else-body start, or
    /// after `end` when there is no else).
    IfFalse(Target),
    /// `else`: unconditional skip to after the matching `end` (taken when the
    /// then-branch falls through into `else`).
    ElseSkip(Target),
}

/// Per-function metadata produced by validation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuncMeta {
    /// Side table keyed by instruction pc.
    pub side: HashMap<u32, SideEntry>,
    /// pcs of `loop` opcodes (loop headers), in code order.
    pub loop_headers: Vec<u32>,
    /// Maximum operand-stack height reached (conservative).
    pub max_height: u32,
    /// Total slots for params + locals.
    pub num_slots: u32,
}

/// Validation error with location information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Function index, if the error is inside a function body.
    pub func: Option<FuncIdx>,
    /// pc within the function body, if applicable.
    pub pc: Option<u32>,
    /// Human-readable cause.
    pub msg: String,
}

impl core::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match (self.func, self.pc) {
            (Some(fx), Some(pc)) => {
                write!(f, "validation error in func {fx} at pc={pc}: {}", self.msg)
            }
            (Some(fx), None) => write!(f, "validation error in func {fx}: {}", self.msg),
            _ => write!(f, "validation error: {}", self.msg),
        }
    }
}

impl std::error::Error for ValidateError {}

fn merr(msg: impl Into<String>) -> ValidateError {
    ValidateError { func: None, pc: None, msg: msg.into() }
}

/// The result of validating a whole module: per-function metadata for all
/// locally-defined functions, indexed in local-function order.
#[derive(Debug, Clone, Default)]
pub struct ModuleMeta {
    /// Metadata for `module.funcs[i]`.
    pub funcs: Vec<FuncMeta>,
}

/// Validates a module and computes branch side tables.
///
/// # Errors
///
/// Returns the first [`ValidateError`] encountered.
pub fn validate(module: &Module) -> Result<ModuleMeta, ValidateError> {
    validate_module_level(module)?;
    let mut metas = Vec::with_capacity(module.funcs.len());
    let n_imp = module.num_imported_funcs();
    for (i, f) in module.funcs.iter().enumerate() {
        let fidx = n_imp + i as u32;
        let ty = module
            .types
            .get(f.type_idx as usize)
            .ok_or_else(|| merr(format!("func {fidx}: bad type index {}", f.type_idx)))?;
        let meta = FuncValidator::new(module, fidx, ty, f.body.flat_locals())
            .run(&f.body.code)
            .map_err(|mut e| {
                e.func = Some(fidx);
                e
            })?;
        metas.push(meta);
    }
    Ok(ModuleMeta { funcs: metas })
}

fn validate_module_level(m: &Module) -> Result<(), ValidateError> {
    for (i, t) in m.types.iter().enumerate() {
        if t.results.len() > 1 {
            // Name a function using the type, if any, so the error points
            // at actionable code rather than just a type-table slot.
            let user = m
                .func_type_indices()
                .position(|ti| ti as usize == i)
                .map_or(String::new(), |f| format!(", used by func {f}"));
            return Err(merr(format!(
                "type {i}: multi-value results not supported ({} results{user})",
                t.results.len()
            )));
        }
    }
    let mut n_mem = m.memories.len();
    let mut n_table = m.tables.len();
    for imp in &m.imports {
        match &imp.desc {
            ImportDesc::Func(t) => {
                if *t as usize >= m.types.len() {
                    return Err(merr(format!(
                        "import {}.{}: bad type index",
                        imp.module, imp.name
                    )));
                }
            }
            ImportDesc::Memory(_) => n_mem += 1,
            ImportDesc::Table(_) => n_table += 1,
            ImportDesc::Global(_) => {}
        }
    }
    if n_mem > 1 {
        return Err(merr("at most one memory is supported"));
    }
    if n_table > 1 {
        return Err(merr("at most one table is supported"));
    }
    for mem in &m.memories {
        if let Some(max) = mem.limits.max {
            if max < mem.limits.min {
                return Err(merr("memory max < min"));
            }
        }
        if mem.limits.min > 65536 {
            return Err(merr("memory min exceeds 4GiB"));
        }
    }
    for t in &m.tables {
        if let Some(max) = t.limits.max {
            if max < t.limits.min {
                return Err(merr("table max < min"));
            }
        }
    }
    let imported_globals: Vec<GlobalType> = m
        .imports
        .iter()
        .filter_map(|i| match i.desc {
            ImportDesc::Global(g) => Some(g),
            _ => None,
        })
        .collect();
    for (i, g) in m.globals.iter().enumerate() {
        check_const_expr(&g.init, g.ty.value, &imported_globals)
            .map_err(|msg| merr(format!("global {i}: {msg}")))?;
    }
    let mut seen = std::collections::HashSet::new();
    for e in &m.exports {
        if !seen.insert(e.name.as_str()) {
            return Err(merr(format!("duplicate export name {:?}", e.name)));
        }
        let limit = match e.kind {
            ExternKind::Func => m.num_funcs(),
            ExternKind::Table => n_table as u32,
            ExternKind::Memory => n_mem as u32,
            ExternKind::Global => imported_globals.len() as u32 + m.globals.len() as u32,
        };
        if e.index >= limit {
            return Err(merr(format!("export {:?}: index {} out of range", e.name, e.index)));
        }
    }
    if let Some(s) = m.start {
        let ty = m.func_type(s).ok_or_else(|| merr("start: bad function index"))?;
        if !ty.params.is_empty() || !ty.results.is_empty() {
            return Err(merr("start function must have type [] -> []"));
        }
    }
    for (i, e) in m.elems.iter().enumerate() {
        if e.table as usize >= n_table {
            return Err(merr(format!("elem {i}: no table")));
        }
        check_const_expr(&e.offset, ValType::I32, &imported_globals)
            .map_err(|msg| merr(format!("elem {i}: {msg}")))?;
        for f in &e.funcs {
            if *f >= m.num_funcs() {
                return Err(merr(format!("elem {i}: bad func index {f}")));
            }
        }
    }
    for (i, d) in m.data.iter().enumerate() {
        if d.memory as usize >= n_mem {
            return Err(merr(format!("data {i}: no memory")));
        }
        check_const_expr(&d.offset, ValType::I32, &imported_globals)
            .map_err(|msg| merr(format!("data {i}: {msg}")))?;
    }
    Ok(())
}

fn check_const_expr(
    e: &ConstExpr,
    expect: ValType,
    imported_globals: &[GlobalType],
) -> Result<(), String> {
    let got = match e {
        ConstExpr::I32(_) => ValType::I32,
        ConstExpr::I64(_) => ValType::I64,
        ConstExpr::F32(_) => ValType::F32,
        ConstExpr::F64(_) => ValType::F64,
        ConstExpr::GlobalGet(i) => {
            let g = imported_globals
                .get(*i as usize)
                .ok_or_else(|| format!("global.get {i} does not name an imported global"))?;
            if g.mutable {
                return Err("global.get initializer must reference an immutable global".into());
            }
            g.value
        }
    };
    if got != expect {
        return Err(format!("initializer type {got} does not match {expect}"));
    }
    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MaybeType {
    Known(ValType),
    Unknown,
}

impl MaybeType {
    fn matches(self, t: ValType) -> bool {
        match self {
            MaybeType::Known(k) => k == t,
            MaybeType::Unknown => true,
        }
    }
}

#[derive(Debug)]
struct Ctrl {
    opcode: u8,
    bt: BlockType,
    height: u32,
    unreachable: bool,
    /// pcs of side entries whose target must be patched when this label's
    /// `end` is reached: (instr pc, index within a Table entry or 0).
    patches: Vec<(u32, usize)>,
    /// For `if`: pc of the `if` opcode, so the false-edge can be patched at
    /// `else` / `end`.
    pc: u32,
    saw_else: bool,
}

impl Ctrl {
    /// Arity of a branch *to* this label.
    fn br_arity(&self) -> u32 {
        if self.opcode == op::LOOP {
            0
        } else {
            self.bt.arity()
        }
    }

    fn br_type(&self) -> Option<ValType> {
        if self.opcode == op::LOOP {
            None
        } else {
            self.bt.result()
        }
    }
}

struct FuncValidator<'m> {
    module: &'m Module,
    fidx: FuncIdx,
    results: Vec<ValType>,
    locals: Vec<ValType>,
    stack: Vec<MaybeType>,
    ctrls: Vec<Ctrl>,
    meta: FuncMeta,
    pc: u32,
}

impl<'m> FuncValidator<'m> {
    fn new(module: &'m Module, fidx: FuncIdx, ty: &FuncType, extra_locals: Vec<ValType>) -> Self {
        let mut locals = ty.params.clone();
        locals.extend(extra_locals);
        let num_slots = locals.len() as u32;
        FuncValidator {
            module,
            fidx,
            results: ty.results.clone(),
            locals,
            stack: Vec::new(),
            ctrls: Vec::new(),
            meta: FuncMeta { num_slots, ..FuncMeta::default() },
            pc: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ValidateError {
        ValidateError { func: Some(self.fidx), pc: Some(self.pc), msg: msg.into() }
    }

    fn push(&mut self, t: ValType) {
        self.stack.push(MaybeType::Known(t));
        self.meta.max_height = self.meta.max_height.max(self.stack.len() as u32);
    }

    fn cur_height_limit(&self) -> usize {
        self.ctrls.last().map_or(0, |c| c.height as usize)
    }

    fn pop_any(&mut self) -> Result<MaybeType, ValidateError> {
        let limit = self.cur_height_limit();
        if self.stack.len() <= limit {
            if self.ctrls.last().is_some_and(|c| c.unreachable) {
                return Ok(MaybeType::Unknown);
            }
            return Err(self.err("operand stack underflow"));
        }
        Ok(self.stack.pop().expect("non-empty"))
    }

    fn pop_expect(&mut self, t: ValType) -> Result<(), ValidateError> {
        let got = self.pop_any()?;
        if !got.matches(t) {
            return Err(self.err(format!("expected {t}, found {got:?}")));
        }
        Ok(())
    }

    fn label(&self, depth: u32) -> Result<&Ctrl, ValidateError> {
        let n = self.ctrls.len();
        if (depth as usize) >= n {
            return Err(self.err(format!("branch depth {depth} out of range")));
        }
        Ok(&self.ctrls[n - 1 - depth as usize])
    }

    fn mark_unreachable(&mut self) {
        let limit = self.cur_height_limit();
        self.stack.truncate(limit);
        if let Some(c) = self.ctrls.last_mut() {
            c.unreachable = true;
        }
    }

    /// Checks branch operands and returns the (possibly unpatched) target.
    fn branch_target(&mut self, depth: u32) -> Result<(Target, bool), ValidateError> {
        let (arity, ty, height, is_loop, loop_pc) = {
            let l = self.label(depth)?;
            (l.br_arity(), l.br_type(), l.height, l.opcode == op::LOOP, l.pc)
        };
        if let Some(t) = ty {
            self.pop_expect(t)?;
            // Branches peek rather than consume for fall-through paths
            // (br_if, br_table); the caller restores if needed.
            self.stack.push(MaybeType::Known(t));
        }
        let target = if is_loop {
            Target { target_pc: loop_pc, arity, height }
        } else {
            Target { target_pc: u32::MAX, arity, height }
        };
        Ok((target, !is_loop))
    }

    fn record_patch(&mut self, depth: u32, instr_pc: u32, slot: usize) {
        let n = self.ctrls.len();
        self.ctrls[n - 1 - depth as usize].patches.push((instr_pc, slot));
    }

    fn run(mut self, code: &[u8]) -> Result<FuncMeta, ValidateError> {
        if code.is_empty() {
            return Err(self.err("empty function body"));
        }
        // The implicit function-level block.
        let func_bt = match self.results.first() {
            None => BlockType::Empty,
            Some(t) => BlockType::Value(*t),
        };
        self.ctrls.push(Ctrl {
            opcode: op::BLOCK,
            bt: func_bt,
            height: 0,
            unreachable: false,
            patches: Vec::new(),
            pc: 0,
            saw_else: false,
        });
        let mut pos = 0usize;
        let mut done = false;
        while pos < code.len() {
            if done {
                return Err(self.err("trailing bytes after function end"));
            }
            let (instr, next) = decode_at(code, pos).map_err(|e| ValidateError {
                func: Some(self.fidx),
                pc: Some(e.pc),
                msg: e.msg,
            })?;
            self.pc = instr.pc;
            self.step(&instr, next as u32, &mut done)?;
            pos = next;
        }
        if !done {
            return Err(self.err("function body missing final end"));
        }
        if self.stack.len() != self.results.len() {
            return Err(self.err(format!(
                "function leaves {} values, expected {}",
                self.stack.len(),
                self.results.len()
            )));
        }
        Ok(self.meta)
    }

    #[allow(clippy::too_many_lines)]
    fn step(
        &mut self,
        instr: &crate::instr::Instr,
        next_pc: u32,
        done: &mut bool,
    ) -> Result<(), ValidateError> {
        use crate::opcodes::*;
        let o = instr.op;
        match o {
            UNREACHABLE => self.mark_unreachable(),
            NOP => {}
            BLOCK | LOOP => {
                let bt = match instr.imm {
                    Imm::Block(bt) => bt,
                    _ => unreachable!("decoder invariant"),
                };
                if o == LOOP {
                    self.meta.loop_headers.push(instr.pc);
                }
                self.ctrls.push(Ctrl {
                    opcode: o,
                    bt,
                    height: self.stack.len() as u32,
                    unreachable: false,
                    patches: Vec::new(),
                    pc: instr.pc,
                    saw_else: false,
                });
            }
            IF => {
                let bt = match instr.imm {
                    Imm::Block(bt) => bt,
                    _ => unreachable!("decoder invariant"),
                };
                self.pop_expect(ValType::I32)?;
                let height = self.stack.len() as u32;
                self.meta.side.insert(
                    instr.pc,
                    SideEntry::IfFalse(Target { target_pc: u32::MAX, arity: 0, height }),
                );
                self.ctrls.push(Ctrl {
                    opcode: IF,
                    bt,
                    height,
                    unreachable: false,
                    patches: Vec::new(),
                    pc: instr.pc,
                    saw_else: false,
                });
            }
            ELSE => {
                let (bt, height, if_pc) = {
                    let c = self.ctrls.last().ok_or_else(|| self.err("else outside if"))?;
                    if c.opcode != IF || c.saw_else {
                        return Err(self.err("else without matching if"));
                    }
                    (c.bt, c.height, c.pc)
                };
                // Then-branch must produce the block results.
                self.check_block_exit(bt, height)?;
                // Patch the if's false edge to the else-body start.
                if let Some(SideEntry::IfFalse(t)) = self.meta.side.get_mut(&if_pc) {
                    t.target_pc = next_pc;
                }
                // The else arm skips to after `end`; patched at END.
                self.meta.side.insert(
                    instr.pc,
                    SideEntry::ElseSkip(Target { target_pc: u32::MAX, arity: bt.arity(), height }),
                );
                let c = self.ctrls.last_mut().expect("checked above");
                c.saw_else = true;
                c.unreachable = false;
                let h = height as usize;
                self.stack.truncate(h);
                // Register the skip for end patching.
                let pc = instr.pc;
                self.ctrls.last_mut().expect("ctrl").patches.push((pc, 0));
            }
            END => {
                let c = self.ctrls.pop().ok_or_else(|| self.err("unbalanced end"))?;
                self.check_block_exit_with(&c)?;
                if c.opcode == IF && !c.saw_else && c.bt != BlockType::Empty {
                    return Err(self.err("if with result requires else"));
                }
                // Patch forward branches to this label.
                for (pc, slot) in &c.patches {
                    match self.meta.side.get_mut(pc) {
                        Some(SideEntry::Br(t)) if *slot == 0 => t.target_pc = next_pc,
                        Some(SideEntry::Table(ts)) => {
                            if let Some(t) = ts.get_mut(*slot) {
                                t.target_pc = next_pc;
                            }
                        }
                        Some(SideEntry::ElseSkip(t)) => t.target_pc = next_pc,
                        Some(SideEntry::IfFalse(t)) => t.target_pc = next_pc,
                        _ => {}
                    }
                }
                // If with no else: false edge goes after end.
                if c.opcode == IF && !c.saw_else {
                    if let Some(SideEntry::IfFalse(t)) = self.meta.side.get_mut(&c.pc) {
                        if t.target_pc == u32::MAX {
                            t.target_pc = next_pc;
                        }
                    }
                }
                // Push results for the enclosing block.
                self.stack.truncate(c.height as usize);
                if let Some(t) = c.bt.result() {
                    self.push(t);
                }
                if self.ctrls.is_empty() {
                    *done = true;
                }
            }
            BR => {
                let depth = idx(&instr.imm);
                let (target, needs_patch) = self.branch_target(depth)?;
                if let Some(t) = self.label(depth)?.br_type() {
                    self.pop_expect(t)?;
                }
                self.meta.side.insert(instr.pc, SideEntry::Br(target));
                if needs_patch {
                    self.record_patch(depth, instr.pc, 0);
                }
                self.mark_unreachable();
            }
            BR_IF => {
                let depth = idx(&instr.imm);
                self.pop_expect(ValType::I32)?;
                let (target, needs_patch) = self.branch_target(depth)?;
                self.meta.side.insert(instr.pc, SideEntry::Br(target));
                if needs_patch {
                    self.record_patch(depth, instr.pc, 0);
                }
                // Fall-through keeps the (peeked) operand types unchanged.
            }
            BR_TABLE => {
                let (targets, default) = match &instr.imm {
                    Imm::BrTable { targets, default } => (targets.clone(), *default),
                    _ => unreachable!("decoder invariant"),
                };
                self.pop_expect(ValType::I32)?;
                let default_arity = self.label(default)?.br_arity();
                let mut entries = Vec::with_capacity(targets.len() + 1);
                for (slot, depth) in targets.iter().chain(std::iter::once(&default)).enumerate() {
                    let l = self.label(*depth)?;
                    if l.br_arity() != default_arity {
                        return Err(self.err("br_table targets have inconsistent arity"));
                    }
                    let (target, needs_patch) = self.branch_target(*depth)?;
                    entries.push(target);
                    if needs_patch {
                        self.record_patch(*depth, instr.pc, slot);
                    }
                }
                if default_arity == 1 {
                    let t = self.label(default)?.br_type().expect("arity 1");
                    self.pop_expect(t)?;
                }
                self.meta.side.insert(instr.pc, SideEntry::Table(entries));
                self.mark_unreachable();
            }
            RETURN => {
                for t in self.results.clone().iter().rev() {
                    self.pop_expect(*t)?;
                }
                self.mark_unreachable();
            }
            CALL => {
                let f = idx(&instr.imm);
                let ty = self
                    .module
                    .func_type(f)
                    .ok_or_else(|| self.err(format!("call to unknown function {f}")))?
                    .clone();
                for t in ty.params.iter().rev() {
                    self.pop_expect(*t)?;
                }
                for t in &ty.results {
                    self.push(*t);
                }
            }
            CALL_INDIRECT => {
                let (type_idx, table) = match instr.imm {
                    Imm::CallIndirect { type_idx, table } => (type_idx, table),
                    _ => unreachable!("decoder invariant"),
                };
                if table != 0 || self.module.table0().is_none() {
                    return Err(self.err("call_indirect requires table 0"));
                }
                let ty = self
                    .module
                    .types
                    .get(type_idx as usize)
                    .ok_or_else(|| self.err("call_indirect: bad type index"))?
                    .clone();
                self.pop_expect(ValType::I32)?;
                for t in ty.params.iter().rev() {
                    self.pop_expect(*t)?;
                }
                for t in &ty.results {
                    self.push(*t);
                }
            }
            DROP => {
                self.pop_any()?;
            }
            SELECT => {
                self.pop_expect(ValType::I32)?;
                let a = self.pop_any()?;
                let b = self.pop_any()?;
                match (a, b) {
                    (MaybeType::Known(x), MaybeType::Known(y)) if x != y => {
                        return Err(self.err("select operands differ in type"));
                    }
                    (MaybeType::Known(x), _) => self.push(x),
                    (_, MaybeType::Known(y)) => self.push(y),
                    _ => self.stack.push(MaybeType::Unknown),
                }
            }
            LOCAL_GET => {
                let t = self.local_type(idx(&instr.imm))?;
                self.push(t);
            }
            LOCAL_SET => {
                let t = self.local_type(idx(&instr.imm))?;
                self.pop_expect(t)?;
            }
            LOCAL_TEE => {
                let t = self.local_type(idx(&instr.imm))?;
                self.pop_expect(t)?;
                self.push(t);
            }
            GLOBAL_GET => {
                let g = self.global_type(idx(&instr.imm))?;
                self.push(g.value);
            }
            GLOBAL_SET => {
                let g = self.global_type(idx(&instr.imm))?;
                if !g.mutable {
                    return Err(self.err("global.set of immutable global"));
                }
                self.pop_expect(g.value)?;
            }
            MEMORY_SIZE => {
                self.require_memory()?;
                self.push(ValType::I32);
            }
            MEMORY_GROW => {
                self.require_memory()?;
                self.pop_expect(ValType::I32)?;
                self.push(ValType::I32);
            }
            I32_CONST => self.push(ValType::I32),
            I64_CONST => self.push(ValType::I64),
            F32_CONST => self.push(ValType::F32),
            F64_CONST => self.push(ValType::F64),
            _ if op::is_memory_access(o) => {
                self.require_memory()?;
                let (align, _) = match instr.imm {
                    Imm::Mem { align, offset } => (align, offset),
                    _ => unreachable!("decoder invariant"),
                };
                let (addr_ty, val_ty, natural) = mem_access_type(o);
                if align > natural {
                    return Err(self.err("alignment exceeds natural alignment"));
                }
                if op::is_store(o) {
                    self.pop_expect(val_ty)?;
                    self.pop_expect(addr_ty)?;
                } else {
                    self.pop_expect(addr_ty)?;
                    self.push(val_ty);
                }
            }
            _ => {
                // Numeric operations: uniform signature table.
                let (pops, push) = numeric_sig(o).ok_or_else(|| {
                    self.err(match op::unsupported_class(o) {
                        Some(class) => format!(
                            "unsupported opcode {o:#04x}: {class} is outside the MVP subset"
                        ),
                        None => format!(
                            "unsupported opcode {o:#04x} ({}): not in the MVP \
                             numeric/memory/control subset",
                            op::name(o)
                        ),
                    })
                })?;
                for t in pops.iter().rev() {
                    self.pop_expect(*t)?;
                }
                if let Some(t) = push {
                    self.push(t);
                }
            }
        }
        Ok(())
    }

    fn local_type(&self, i: u32) -> Result<ValType, ValidateError> {
        self.locals
            .get(i as usize)
            .copied()
            .ok_or_else(|| self.err(format!("local index {i} out of range")))
    }

    fn global_type(&self, i: u32) -> Result<GlobalType, ValidateError> {
        self.module
            .global_types()
            .get(i as usize)
            .copied()
            .ok_or_else(|| self.err(format!("global index {i} out of range")))
    }

    fn require_memory(&self) -> Result<(), ValidateError> {
        if self.module.memory0().is_none() {
            return Err(self.err("instruction requires a memory"));
        }
        Ok(())
    }

    fn check_block_exit(&mut self, bt: BlockType, height: u32) -> Result<(), ValidateError> {
        if let Some(t) = bt.result() {
            self.pop_expect(t)?;
            self.stack.push(MaybeType::Known(t));
        }
        let unreachable = self.ctrls.last().is_some_and(|c| c.unreachable);
        let expect = height + bt.arity();
        if !unreachable && self.stack.len() as u32 != expect {
            return Err(self.err(format!(
                "block exit stack height {} != expected {}",
                self.stack.len(),
                expect
            )));
        }
        Ok(())
    }

    fn check_block_exit_with(&mut self, c: &Ctrl) -> Result<(), ValidateError> {
        if !c.unreachable {
            if let Some(t) = c.bt.result() {
                let limit = c.height as usize;
                if self.stack.len() <= limit {
                    return Err(self.err("block result missing"));
                }
                let got = self.stack.last().copied().expect("non-empty");
                if !got.matches(t) {
                    return Err(self.err(format!("block result type mismatch: {got:?} vs {t}")));
                }
            }
            let expect = c.height + c.bt.arity();
            if self.stack.len() as u32 != expect {
                return Err(self.err(format!(
                    "end: stack height {} != expected {}",
                    self.stack.len(),
                    expect
                )));
            }
        }
        Ok(())
    }
}

fn idx(imm: &Imm) -> u32 {
    match imm {
        Imm::Idx(v) => *v,
        _ => unreachable!("decoder invariant"),
    }
}

/// Returns `(address type, value type, natural alignment log2)` for a memory
/// access opcode.
///
/// Public because static analyses (`wizard-analysis`) reuse the validator's
/// signature knowledge as their abstract transfer functions.
///
/// # Panics
///
/// Panics if `o` is not a memory-access opcode
/// ([`crate::opcodes::is_memory_access`]).
pub fn mem_access_type(o: u8) -> (ValType, ValType, u32) {
    use crate::opcodes::*;
    let (v, natural) = match o {
        I32_LOAD | I32_STORE => (ValType::I32, 2),
        I64_LOAD | I64_STORE => (ValType::I64, 3),
        F32_LOAD | F32_STORE => (ValType::F32, 2),
        F64_LOAD | F64_STORE => (ValType::F64, 3),
        I32_LOAD8_S | I32_LOAD8_U | I32_STORE8 => (ValType::I32, 0),
        I32_LOAD16_S | I32_LOAD16_U | I32_STORE16 => (ValType::I32, 1),
        I64_LOAD8_S | I64_LOAD8_U | I64_STORE8 => (ValType::I64, 0),
        I64_LOAD16_S | I64_LOAD16_U | I64_STORE16 => (ValType::I64, 1),
        I64_LOAD32_S | I64_LOAD32_U | I64_STORE32 => (ValType::I64, 2),
        _ => unreachable!("not a memory access"),
    };
    (ValType::I32, v, natural)
}

/// Signature table for value-polymorphism-free numeric instructions:
/// returns `(operand types, result type)`, or `None` if `o` is not a
/// numeric instruction. Public for the same reason as
/// [`mem_access_type`]: analyses derive their stack transfer functions
/// from the validator's signatures rather than re-deriving them.
#[allow(clippy::too_many_lines)]
pub fn numeric_sig(o: u8) -> Option<(&'static [ValType], Option<ValType>)> {
    use crate::opcodes::*;
    use ValType::{F32, F64, I32, I64};
    const I32_1: &[ValType] = &[I32];
    const I32_2: &[ValType] = &[I32, I32];
    const I64_1: &[ValType] = &[I64];
    const I64_2: &[ValType] = &[I64, I64];
    const F32_1: &[ValType] = &[F32];
    const F32_2: &[ValType] = &[F32, F32];
    const F64_1: &[ValType] = &[F64];
    const F64_2: &[ValType] = &[F64, F64];
    Some(match o {
        I32_EQZ => (I32_1, Some(I32)),
        I32_EQ..=I32_GE_U => (I32_2, Some(I32)),
        I64_EQZ => (I64_1, Some(I32)),
        I64_EQ..=I64_GE_U => (I64_2, Some(I32)),
        F32_EQ..=F32_GE => (F32_2, Some(I32)),
        F64_EQ..=F64_GE => (F64_2, Some(I32)),
        I32_CLZ | I32_CTZ | I32_POPCNT => (I32_1, Some(I32)),
        I32_ADD..=I32_ROTR => (I32_2, Some(I32)),
        I64_CLZ | I64_CTZ | I64_POPCNT => (I64_1, Some(I64)),
        I64_ADD..=I64_ROTR => (I64_2, Some(I64)),
        F32_ABS..=F32_SQRT => (F32_1, Some(F32)),
        F32_ADD..=F32_COPYSIGN => (F32_2, Some(F32)),
        F64_ABS..=F64_SQRT => (F64_1, Some(F64)),
        F64_ADD..=F64_COPYSIGN => (F64_2, Some(F64)),
        I32_WRAP_I64 => (I64_1, Some(I32)),
        I32_TRUNC_F32_S | I32_TRUNC_F32_U => (F32_1, Some(I32)),
        I32_TRUNC_F64_S | I32_TRUNC_F64_U => (F64_1, Some(I32)),
        I64_EXTEND_I32_S | I64_EXTEND_I32_U => (I32_1, Some(I64)),
        I64_TRUNC_F32_S | I64_TRUNC_F32_U => (F32_1, Some(I64)),
        I64_TRUNC_F64_S | I64_TRUNC_F64_U => (F64_1, Some(I64)),
        F32_CONVERT_I32_S | F32_CONVERT_I32_U => (I32_1, Some(F32)),
        F32_CONVERT_I64_S | F32_CONVERT_I64_U => (I64_1, Some(F32)),
        F32_DEMOTE_F64 => (F64_1, Some(F32)),
        F64_CONVERT_I32_S | F64_CONVERT_I32_U => (I32_1, Some(F64)),
        F64_CONVERT_I64_S | F64_CONVERT_I64_U => (I64_1, Some(F64)),
        F64_PROMOTE_F32 => (F32_1, Some(F64)),
        I32_REINTERPRET_F32 => (F32_1, Some(I32)),
        I64_REINTERPRET_F64 => (F64_1, Some(I64)),
        F32_REINTERPRET_I32 => (I32_1, Some(F32)),
        F64_REINTERPRET_I64 => (I64_1, Some(F64)),
        I32_EXTEND8_S | I32_EXTEND16_S => (I32_1, Some(I32)),
        I64_EXTEND8_S | I64_EXTEND16_S | I64_EXTEND32_S => (I64_1, Some(I64)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{FuncBody, FuncDecl};
    use crate::opcodes as op;
    use crate::types::FuncType;
    use crate::types::ValType::I32;

    #[test]
    fn multi_value_error_names_arity_and_using_function() {
        let mut m = Module::new();
        m.types.push(FuncType::new(&[], &[I32]));
        m.types.push(FuncType::new(&[], &[I32, I32]));
        // func 0 uses the fine type; func 1 uses the multi-value one.
        for type_idx in [0u32, 1] {
            m.funcs.push(FuncDecl {
                type_idx,
                body: FuncBody { locals: vec![], code: vec![op::I32_CONST, 0, op::END] },
            });
        }
        let err = validate(&m).unwrap_err().to_string();
        assert!(err.contains("type 1"), "{err}");
        assert!(err.contains("2 results"), "{err}");
        assert!(err.contains("used by func 1"), "{err}");
    }

    #[test]
    fn unused_multi_value_type_error_still_reports_arity() {
        let mut m = Module::new();
        m.types.push(FuncType::new(&[], &[I32, I32, I32]));
        let err = validate(&m).unwrap_err().to_string();
        assert!(err.contains("3 results"), "{err}");
        assert!(!err.contains("used by"), "{err}");
    }

    /// Builds a module whose single `[] -> []` function has `code` as its
    /// raw body (for feeding the validator bytes the builder cannot emit).
    fn module_with_raw_body(code: Vec<u8>) -> Module {
        let mut m = Module::new();
        m.types.push(FuncType::new(&[], &[]));
        m.funcs.push(FuncDecl { type_idx: 0, body: FuncBody { locals: vec![], code } });
        m
    }

    /// Pins the diagnostic format for known post-MVP opcodes: the error
    /// names the enclosing function, the byte offset (pc), and the feature
    /// class a real-world binary would need.
    #[test]
    fn unsupported_prefix_opcode_error_names_function_offset_and_class() {
        // 0xfc prefix (e.g. memory.copy) at pc=1, after a nop.
        let m = module_with_raw_body(vec![op::NOP, 0xfc, 0x0a, 0x00, 0x00, op::END]);
        let err = validate(&m).unwrap_err();
        assert_eq!(
            err.to_string(),
            "validation error in func 0 at pc=1: unsupported opcode 0xfc: \
             the 0xfc prefix (saturating truncation / bulk memory) is outside the MVP subset"
        );

        // ref.null (reference types) at pc=0.
        let m = module_with_raw_body(vec![0xd0, 0x70, op::END]);
        let err = validate(&m).unwrap_err();
        assert_eq!(
            err.to_string(),
            "validation error in func 0 at pc=0: unsupported opcode 0xd0: \
             reference types is outside the MVP subset"
        );
    }

    /// A genuinely undefined byte is reported as invalid, still with
    /// function and offset context.
    #[test]
    fn undefined_opcode_error_is_distinct_from_unsupported() {
        let m = module_with_raw_body(vec![0xff, op::END]);
        let err = validate(&m).unwrap_err();
        assert_eq!(err.to_string(), "validation error in func 0 at pc=0: invalid opcode 0xff");
    }
}
