//! Adversarial tests for the validator and binary decoder: every rejection
//! path the engine's safety rests on, plus decoder robustness against
//! arbitrary bytes.

use proptest::prelude::*;

use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::decode::decode;
use wizard_wasm::encode::encode;
use wizard_wasm::module::{ConstExpr, FuncBody, FuncDecl, Module};
use wizard_wasm::opcodes as op;
use wizard_wasm::types::ValType::{F64, I32, I64};
use wizard_wasm::types::{BlockType, FuncType};
use wizard_wasm::validate::validate;

/// Wraps raw body bytes in a module with signature `[] -> [results]`.
fn module_with_body(results: &[wizard_wasm::ValType], code: Vec<u8>) -> Module {
    let mut m = Module::new();
    m.types.push(FuncType::new(&[], results));
    m.funcs.push(FuncDecl { type_idx: 0, body: FuncBody { locals: vec![], code } });
    m
}

fn rejects(results: &[wizard_wasm::ValType], code: Vec<u8>, why: &str) {
    let m = module_with_body(results, code);
    assert!(validate(&m).is_err(), "expected rejection: {why}");
}

#[test]
fn stack_underflow_rejected() {
    rejects(&[], vec![op::DROP, op::END], "drop on empty stack");
    rejects(&[], vec![op::I32_ADD, op::END], "add on empty stack");
    rejects(&[], vec![op::I32_CONST, 1, op::I32_ADD, op::END], "add with one operand");
}

#[test]
fn type_mismatches_rejected() {
    // i32.add on an i64 operand.
    let mut f = FuncBuilder::new(&[], &[I32]);
    f.i64_const(1).i64_const(2).op(op::I32_ADD);
    let mut mb = ModuleBuilder::new();
    mb.add_func("bad", f);
    assert!(mb.build().is_err());
    // f64 result where i32 declared.
    let mut f = FuncBuilder::new(&[], &[I32]);
    f.f64_const(1.0);
    let mut mb = ModuleBuilder::new();
    mb.add_func("bad", f);
    assert!(mb.build().is_err());
}

#[test]
fn dangling_results_rejected() {
    rejects(&[], vec![op::I32_CONST, 5, op::END], "value left on stack");
    rejects(&[I32], vec![op::END], "missing result");
}

#[test]
fn branch_depth_out_of_range_rejected() {
    rejects(&[], vec![op::BR, 1, op::END], "br 1 with one label");
    rejects(&[], vec![op::BLOCK, 0x40, op::BR, 5, op::END, op::END], "br 5");
}

#[test]
fn unbalanced_control_rejected() {
    rejects(&[], vec![op::BLOCK, 0x40, op::END], "missing function end");
    rejects(&[], vec![op::ELSE, op::END], "else without if");
    rejects(&[], vec![op::END, op::END], "extra end");
}

#[test]
fn if_with_result_requires_else() {
    let mut f = FuncBuilder::new(&[], &[I32]);
    f.i32_const(1).if_(BlockType::Value(I32));
    f.i32_const(2);
    f.end();
    let mut mb = ModuleBuilder::new();
    mb.add_func("bad", f);
    assert!(mb.build().is_err(), "if with result but no else");
}

#[test]
fn local_and_global_indices_checked() {
    rejects(&[], vec![op::LOCAL_GET, 3, op::DROP, op::END], "no local 3");
    rejects(&[], vec![op::GLOBAL_GET, 0, op::DROP, op::END], "no global 0");
    // Immutable global assignment.
    let mut mb = ModuleBuilder::new();
    let g = mb.global(I64, false, ConstExpr::I64(1));
    let mut f = FuncBuilder::new(&[], &[]);
    f.i64_const(2).global_set(g);
    mb.add_func("bad", f);
    assert!(mb.build().is_err(), "global.set of immutable global");
}

#[test]
fn memory_instructions_require_memory() {
    rejects(
        &[I32],
        vec![op::I32_CONST, 0, op::I32_LOAD, 2, 0, op::END],
        "load without memory",
    );
    rejects(&[I32], vec![op::MEMORY_SIZE, 0, op::END], "memory.size without memory");
}

#[test]
fn alignment_over_natural_rejected() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1);
    let mut f = FuncBuilder::new(&[], &[I32]);
    f.i32_const(0).load(op::I32_LOAD, 3, 0); // 2^3 > natural 2^2
    mb.add_func("bad", f);
    assert!(mb.build().is_err());
}

#[test]
fn call_checks() {
    rejects(&[], vec![op::CALL, 9, op::END], "call to unknown function");
    // call_indirect without a table.
    rejects(
        &[],
        vec![op::I32_CONST, 0, op::CALL_INDIRECT, 0, 0, op::END],
        "call_indirect without table",
    );
}

#[test]
fn select_operand_types_must_match() {
    let mut f = FuncBuilder::new(&[], &[]);
    f.i32_const(1).f64_const(2.0).i32_const(0).select().drop_();
    let mut mb = ModuleBuilder::new();
    mb.add_func("bad", f);
    assert!(mb.build().is_err());
}

#[test]
fn br_table_inconsistent_arity_rejected() {
    // Outer block yields i32, inner yields nothing: br_table mixing them
    // must be rejected.
    let mut f = FuncBuilder::new(&[], &[I32]);
    f.block(BlockType::Value(I32));
    f.block(BlockType::Empty);
    f.i32_const(0).br_table(&[0], 1);
    f.end();
    f.i32_const(1);
    f.end();
    let mut mb = ModuleBuilder::new();
    mb.add_func("bad", f);
    assert!(mb.build().is_err());
}

#[test]
fn module_level_checks() {
    // Duplicate export names.
    let mut m = Module::new();
    m.types.push(FuncType::new(&[], &[]));
    m.funcs.push(FuncDecl { type_idx: 0, body: FuncBody { locals: vec![], code: vec![op::END] } });
    m.exports.push(wizard_wasm::module::Export {
        name: "x".into(),
        kind: wizard_wasm::types::ExternKind::Func,
        index: 0,
    });
    m.exports.push(wizard_wasm::module::Export {
        name: "x".into(),
        kind: wizard_wasm::types::ExternKind::Func,
        index: 0,
    });
    assert!(validate(&m).is_err(), "duplicate export");

    // Start function with parameters.
    let mut m = Module::new();
    m.types.push(FuncType::new(&[I32], &[]));
    m.funcs.push(FuncDecl {
        type_idx: 0,
        body: FuncBody { locals: vec![], code: vec![op::END] },
    });
    m.start = Some(0);
    assert!(validate(&m).is_err(), "start with params");

    // Multi-value result type: the error names the result arity (and the
    // using function, when one exists).
    let mut m = Module::new();
    m.types.push(FuncType::new(&[], &[I32, I32]));
    let err = validate(&m).expect_err("multi-value type").to_string();
    assert!(err.contains("2 results"), "{err}");
    m.funcs.push(FuncDecl {
        type_idx: 0,
        body: FuncBody { locals: vec![], code: vec![op::I32_CONST, 0, op::END] },
    });
    let err = validate(&m).expect_err("multi-value type").to_string();
    assert!(err.contains("used by func 0"), "{err}");
}

#[test]
fn probe_byte_is_invalid_in_source_modules() {
    rejects(&[], vec![op::PROBE, op::END], "reserved probe opcode in input");
}

#[test]
fn unreachable_code_is_validated_structurally() {
    // After `unreachable`, polymorphic stack: this is legal...
    let mut f = FuncBuilder::new(&[], &[I32]);
    f.unreachable();
    f.i32_add(); // operands come from the polymorphic stack
    let mut mb = ModuleBuilder::new();
    mb.add_func("ok", f);
    assert!(mb.build().is_ok(), "polymorphic stack after unreachable");
    // ...but unbalanced control still is not.
    rejects(&[], vec![op::UNREACHABLE, op::BLOCK, 0x40, op::END], "unclosed block");
}

#[test]
fn float_param_flows() {
    // Sanity: a valid f64 pipeline validates (guards against over-strict
    // typing rules).
    let mut f = FuncBuilder::new(&[F64, F64], &[F64]);
    f.local_get(0).local_get(1).f64_mul().f64_sqrt();
    let mut mb = ModuleBuilder::new();
    mb.add_func("ok", f);
    assert!(mb.build().is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
    }

    /// The decoder never panics on mutated valid modules, and if it
    /// succeeds, validation also terminates without panicking.
    #[test]
    fn mutated_modules_never_panic(flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..8)) {
        let mut mb = ModuleBuilder::new();
        mb.memory(1);
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        f.for_range(i, 0, |f| { f.nop(); });
        f.local_get(0);
        mb.add_func("run", f);
        let m = mb.build().unwrap();
        let mut bytes = encode(&m);
        for (pos, val) in flips {
            let len = bytes.len();
            bytes[pos as usize % len] = val;
        }
        if let Ok(m) = decode(&bytes) {
            let _ = validate(&m);
        }
    }
}
