//! Malformed-binary negative suite: every broken input must produce a
//! precise [`wizard_wasm::decode::DecodeError`] — with a byte offset and
//! a message naming the enclosing section (and entry, where applicable)
//! — never a panic and never a silent success.
//!
//! The corrupted binaries are assembled by hand, byte by byte, so the
//! suite does not depend on the encoder under test.

use wizard_wasm::decode::{decode, DecodeError};

/// Wasm magic + version header.
const HEADER: [u8; 8] = [0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00];

/// Assembles `id` + LEB size + payload (payloads here are all < 128 B).
fn sec(id: u8, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() < 128);
    let mut v = vec![id, payload.len() as u8];
    v.extend_from_slice(payload);
    v
}

/// A module from raw section chunks.
fn module(sections: &[Vec<u8>]) -> Vec<u8> {
    let mut v = HEADER.to_vec();
    for s in sections {
        v.extend_from_slice(s);
    }
    v
}

/// A minimal valid type section: one `(i32) -> i32` functype.
fn type_section() -> Vec<u8> {
    sec(1, &[0x01, 0x60, 0x01, 0x7f, 0x01, 0x7f])
}

struct Case {
    name: &'static str,
    bytes: Vec<u8>,
    /// Substring the error message must contain.
    want: &'static str,
    /// Exact byte offset, when pinned.
    offset: Option<usize>,
}

fn cases() -> Vec<Case> {
    let case = |name, bytes, want| Case { name, bytes, want, offset: None };
    let case_at = |name, bytes, want, off| Case { name, bytes, want, offset: Some(off) };
    vec![
        // ---- header ----
        case("empty-input", vec![], "unexpected end"),
        case("truncated-magic", b"\x00as".to_vec(), "unexpected end"),
        case("wrong-magic", b"\x00elf\x01\x00\x00\x00".to_vec(), "bad magic"),
        case("wrong-version", b"\x00asm\x02\x00\x00\x00".to_vec(), "unsupported version"),
        // ---- section framing ----
        case_at("section-size-truncated", module(&[vec![0x01]]), "bad LEB128 u32", 9),
        case(
            "section-extends-past-end",
            module(&[vec![0x01, 0x0a, 0x60]]),
            "section type extends past end of module",
        ),
        case("unknown-section-id", module(&[sec(12, &[])]), "unknown section id 12"),
        case(
            "sections-out-of-order",
            module(&[sec(3, &[0x00]), type_section()]),
            "section type out of order (must follow section function)",
        ),
        case(
            "duplicate-section",
            module(&[type_section(), type_section()]),
            "section type out of order",
        ),
        case(
            "section-size-mismatch",
            // One functype plus a stray trailing byte inside the declared size.
            module(&[sec(1, &[0x01, 0x60, 0x00, 0x00, 0xaa])]),
            "section size mismatch (content does not fill declared size)",
        ),
        // ---- bad LEB128 ----
        case(
            "overlong-leb-count",
            // 6-byte u32 LEB as the type-section count.
            module(&[sec(1, &[0x80, 0x80, 0x80, 0x80, 0x80, 0x01])]),
            "in type section: bad LEB128 u32",
        ),
        case(
            "leb-payload-bits-out-of-range",
            // 5-byte u32 whose final byte sets bits above bit 31.
            module(&[sec(1, &[0xff, 0xff, 0xff, 0xff, 0x7f])]),
            "in type section: bad LEB128 u32",
        ),
        // ---- oversized counts ----
        case(
            "oversized-type-count",
            // Count claims 1000 entries; the section (and module) end first.
            module(&[sec(1, &[0xe8, 0x07])]),
            "in type section, entry 0: unexpected end",
        ),
        case(
            "oversized-local-count",
            // 200_000 i32 locals declared in one run.
            module(&[
                type_section(),
                sec(3, &[0x01, 0x00]),
                sec(10, &[0x01, 0x07, 0x01, 0xc0, 0x9a, 0x0c, 0x7f, 0x00, 0x0b]),
            ]),
            "too many locals",
        ),
        // ---- type section ----
        case(
            "bad-functype-tag",
            module(&[sec(1, &[0x01, 0x61])]),
            "in type section, entry 0: bad functype tag",
        ),
        case(
            "bad-value-type",
            module(&[sec(1, &[0x01, 0x60, 0x01, 0x19, 0x00])]),
            "in type section, entry 0: bad value type 0x19",
        ),
        // ---- imports/exports ----
        case(
            "bad-import-kind",
            module(&[type_section(), sec(2, &[0x01, 0x01, b'e', 0x01, b'f', 0x05, 0x00])]),
            "in import section, entry 0: bad import kind 0x5",
        ),
        case(
            "import-name-not-utf8",
            module(&[type_section(), sec(2, &[0x01, 0x02, 0xff, 0xfe, 0x01, b'f', 0x00, 0x00])]),
            "in import section, entry 0: name is not UTF-8",
        ),
        case(
            "bad-export-kind",
            module(&[sec(7, &[0x01, 0x01, b'e', 0x05, 0x00])]),
            "in export section, entry 0: bad export kind 0x5",
        ),
        // ---- tables/memories/globals ----
        case(
            "non-funcref-table",
            module(&[sec(4, &[0x01, 0x6f, 0x00, 0x01])]),
            "in table section, entry 0: only funcref tables supported",
        ),
        case(
            "bad-limits-flag",
            module(&[sec(5, &[0x01, 0x07])]),
            "in memory section, entry 0: bad limits flag 0x7",
        ),
        case(
            "bad-global-mutability",
            module(&[sec(6, &[0x01, 0x7f, 0x02, 0x41, 0x00, 0x0b])]),
            "in global section, entry 0: bad mutability 0x2",
        ),
        case_at(
            "global-init-runtime-opcode",
            // i32.add (0x6a) inside a const expr.
            module(&[sec(6, &[0x01, 0x7f, 0x01, 0x6a, 0x0b])]),
            "unsupported const-expr opcode 0x6a",
            13,
        ),
        // ---- segments ----
        case(
            "element-table-index-nonzero",
            module(&[sec(9, &[0x01, 0x01, 0x41, 0x00, 0x0b, 0x00])]),
            "in element section, entry 0: element segment table index must be 0",
        ),
        case(
            "data-memory-index-nonzero",
            module(&[sec(11, &[0x01, 0x01, 0x41, 0x00, 0x0b, 0x00])]),
            "in data section, entry 0: data segment memory index must be 0",
        ),
        case(
            "data-bytes-truncated",
            // Data segment claims 16 bytes; only 2 are present.
            module(&[sec(11, &[0x01, 0x00, 0x41, 0x00, 0x0b, 0x10, 0xaa, 0xbb])]),
            "in data section, entry 0: unexpected end",
        ),
        // ---- code section ----
        case(
            "code-count-mismatch",
            module(&[type_section(), sec(3, &[0x01, 0x00]), sec(10, &[0x00])]),
            "in code section: code count does not match function count",
        ),
        case(
            "code-body-size-overruns",
            module(&[
                type_section(),
                sec(3, &[0x01, 0x00]),
                // Body claims 0x7f bytes; the module ends long before that.
                sec(10, &[0x01, 0x7f, 0x00, 0x0b]),
            ]),
            "in code section, entry 0: bad code body size",
        ),
    ]
}

#[test]
fn malformed_binaries_fail_with_precise_errors() {
    for c in cases() {
        let err: DecodeError = match decode(&c.bytes) {
            Err(e) => e,
            Ok(_) => panic!("{}: malformed binary decoded successfully", c.name),
        };
        let display = err.to_string();
        assert!(
            display.contains(c.want),
            "{}: error {display:?} does not contain {:?}",
            c.name,
            c.want
        );
        assert!(
            display.starts_with(&format!("decode error at byte {}", err.offset)),
            "{}: display {display:?} does not lead with the byte offset",
            c.name
        );
        assert!(
            err.offset <= c.bytes.len(),
            "{}: offset {} exceeds input length {}",
            c.name,
            err.offset,
            c.bytes.len()
        );
        if let Some(want_off) = c.offset {
            assert_eq!(err.offset, want_off, "{}: wrong offset in {display:?}", c.name);
        }
    }
}

/// Truncating a valid module at *every* byte boundary errors cleanly —
/// the classic fuzz regression for out-of-bounds reads.
#[test]
fn every_truncation_of_a_valid_module_errors_cleanly() {
    // type + function + memory + global + export + code + data sections.
    let sections = [
        type_section(),
        sec(3, &[0x01, 0x00]),
        sec(5, &[0x01, 0x00, 0x01]),
        sec(6, &[0x01, 0x7f, 0x01, 0x41, 0x2a, 0x0b]),
        sec(7, &[0x01, 0x03, b'r', b'u', b'n', 0x00, 0x00]),
        sec(10, &[0x01, 0x07, 0x00, 0x20, 0x00, 0x41, 0x04, 0x6a, 0x0b]),
        sec(11, &[0x01, 0x00, 0x41, 0x00, 0x0b, 0x02, 0xca, 0xfe]),
    ];
    let full = module(&sections);
    // A cut landing exactly on a section boundary leaves a shorter but
    // well-formed module (cutting after the code section is the
    // exception: declared functions would lack bodies — but this layout
    // puts code second-to-last, so only `full.len()` itself qualifies).
    let mut boundaries = vec![HEADER.len()];
    let mut at = HEADER.len();
    for s in &sections {
        at += s.len();
        boundaries.push(at);
    }
    assert!(decode(&full).is_ok(), "the uncorrupted module must decode");
    for cut in 0..full.len() {
        if boundaries.contains(&cut) {
            continue;
        }
        let err = decode(&full[..cut])
            .expect_err(&format!("truncation at byte {cut} decoded successfully"));
        assert!(err.offset <= cut, "truncation at {cut}: offset {} past input", err.offset);
    }
}

/// Flipping the section id of each section to a smaller id (forcing an
/// order violation) names both sections in the error.
#[test]
fn section_order_errors_name_both_sections() {
    let bytes = module(&[type_section(), sec(3, &[0x01, 0x00]), sec(2, &[0x00])]);
    let err = decode(&bytes).expect_err("import section after function section");
    assert_eq!(
        err.to_string(),
        format!(
            "decode error at byte {}: section import out of order (must follow section function)",
            err.offset
        )
    );
}
