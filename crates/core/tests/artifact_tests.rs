//! Shared-artifact acceptance tests: processes instantiated from one
//! `Arc<ModuleArtifact>` share validated metadata, lowered code and
//! baseline JIT code — pointer-equality included — while instrumentation
//! stays strictly per-process via copy-on-write overlays.

use std::sync::Arc;

use wizard_engine::store::Linker;
use wizard_engine::{
    CountProbe, EngineConfig, EngineStats, ModuleArtifact, ProbeError, Process, Value,
};
use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::Module;
use wizard_wasm::types::ValType::I32;

/// `sum(n) = 0 + 1 + ... + (n-1)` with a loop (so it can tier up), plus a
/// second function so overlays are visibly per-function.
fn sum_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let i = f.local(I32);
    let acc = f.local(I32);
    f.for_range(i, 0, |f| {
        f.local_get(acc).local_get(i).i32_add().local_set(acc);
    });
    f.local_get(acc);
    mb.add_func("sum", f);
    let mut g = FuncBuilder::new(&[I32], &[I32]);
    g.local_get(0).i32_const(1).i32_add();
    mb.add_func("inc", g);
    mb.build().unwrap()
}

fn artifact() -> Arc<ModuleArtifact> {
    Arc::new(ModuleArtifact::new(sum_module()).unwrap())
}

#[test]
fn siblings_share_lowered_code_by_pointer_until_a_probe_lands() {
    let art = artifact();
    let mut p1 =
        Process::instantiate(Arc::clone(&art), EngineConfig::interpreter(), &Linker::new())
            .unwrap();
    let mut p2 =
        Process::instantiate(Arc::clone(&art), EngineConfig::interpreter(), &Linker::new())
            .unwrap();
    assert!(Arc::ptr_eq(p1.artifact(), p2.artifact()));
    let f = p1.module().export_func("sum").unwrap();

    // Both processes run correctly and dispatch from the *same* lowered
    // op stream — pointer equality, not just value equality.
    assert_eq!(p1.invoke(f, &[Value::I32(10)]).unwrap(), vec![Value::I32(45)]);
    assert_eq!(p2.invoke(f, &[Value::I32(10)]).unwrap(), vec![Value::I32(45)]);
    assert_eq!(p1.code_identity(f).unwrap(), p2.code_identity(f).unwrap());
    assert_eq!(p1.resident_overlay_bytes(), 0);
    assert_eq!(p2.resident_overlay_bytes(), 0);

    // A probe on p1 copy-on-writes only p1's copy of only that function.
    let shared_addr = p2.code_identity(f).unwrap();
    let id = p1.add_local_probe_val(f, 0, CountProbe::new()).unwrap();
    assert!(p1.has_overlay(f));
    assert_ne!(p1.code_identity(f).unwrap(), shared_addr);
    assert!(p1.resident_overlay_bytes() > 0);
    assert_eq!(p1.stats().overlay_copies, 1);
    // The sibling still shares, and never sees the probe byte.
    assert!(!p2.has_overlay(f));
    assert_eq!(p2.code_identity(f).unwrap(), shared_addr);
    assert!(p1.has_probe_byte(f, 0));
    assert!(!p2.has_probe_byte(f, 0));

    // Zero-overhead baseline on the uninstrumented sibling: running it
    // fires nothing and copies nothing.
    p2.reset_stats();
    assert_eq!(p2.invoke(f, &[Value::I32(10)]).unwrap(), vec![Value::I32(45)]);
    assert_eq!(p2.stats().probe_fires, 0);
    assert_eq!(p2.stats().overlay_copies, 0);
    assert_eq!(p2.resident_overlay_bytes(), 0);

    // Removing the last probe drops the copy: p1 rejoins the artifact.
    p1.remove_probe(id).unwrap();
    assert!(!p1.has_overlay(f));
    assert_eq!(p1.code_identity(f).unwrap(), shared_addr);
    assert_eq!(p1.resident_overlay_bytes(), 0);
    assert_eq!(p1.invoke(f, &[Value::I32(10)]).unwrap(), vec![Value::I32(45)]);
}

#[test]
fn probed_sibling_observes_only_its_own_execution() {
    let art = artifact();
    let config = EngineConfig::interpreter();
    let mut probed =
        Process::instantiate(Arc::clone(&art), config.clone(), &Linker::new()).unwrap();
    let mut clean = Process::instantiate(Arc::clone(&art), config, &Linker::new()).unwrap();
    let f = probed.module().export_func("sum").unwrap();

    let probe = CountProbe::new();
    let counter = probe.cell();
    probed.add_local_probe_val(f, 0, probe).unwrap();

    // Run the *clean* process: the probed process's counter must not move
    // (per-process non-intrusiveness across a shared artifact).
    clean.invoke(f, &[Value::I32(50)]).unwrap();
    assert_eq!(counter.get(), 0);
    probed.invoke(f, &[Value::I32(50)]).unwrap();
    assert_eq!(counter.get(), 1);
}

#[test]
fn baseline_jit_code_is_shared_until_probed_and_after_rejoin() {
    let art = artifact();
    let config =
        EngineConfig::builder().mode(wizard_engine::ExecMode::Tiered).tierup_threshold(2).build();
    let mut p1 = Process::instantiate(Arc::clone(&art), config.clone(), &Linker::new()).unwrap();
    let mut p2 = Process::instantiate(Arc::clone(&art), config, &Linker::new()).unwrap();
    let f = p1.module().export_func("sum").unwrap();

    // Tier both up.
    for _ in 0..3 {
        p1.invoke(f, &[Value::I32(30)]).unwrap();
        p2.invoke(f, &[Value::I32(30)]).unwrap();
    }
    assert!(p1.is_compiled(f) && p2.is_compiled(f));
    let shared = p1.compiled_identity(f).unwrap();
    assert_eq!(Some(shared), p2.compiled_identity(f), "baseline compiled code is one artifact");
    // Only one of the two processes actually compiled; the other shared.
    assert_eq!(p1.stats().compiles + p2.stats().compiles, 1);

    // Probing p1 invalidates *its* code only; recompiling specializes
    // privately while p2 keeps executing the shared baseline.
    let probe = CountProbe::new();
    let counter = probe.cell();
    let id = p1.add_local_probe_val(f, 0, probe).unwrap();
    assert!(!p1.is_compiled(f));
    assert_eq!(p2.compiled_identity(f), Some(shared));
    for _ in 0..3 {
        p1.invoke(f, &[Value::I32(30)]).unwrap();
    }
    assert!(p1.is_compiled(f));
    assert_ne!(p1.compiled_identity(f), Some(shared));
    assert!(counter.get() > 0);
    assert_eq!(p2.invoke(f, &[Value::I32(30)]).unwrap(), vec![Value::I32(435)]);

    // Detach: p1 rejoins version 0 and the next tier-up reuses the shared
    // baseline without recompiling anything.
    p1.remove_probe(id).unwrap();
    let compiles_before = p1.stats().compiles + p2.stats().compiles;
    for _ in 0..3 {
        p1.invoke(f, &[Value::I32(30)]).unwrap();
    }
    assert_eq!(p1.compiled_identity(f), Some(shared), "rejoined the shared baseline");
    assert_eq!(p1.stats().compiles + p2.stats().compiles, compiles_before);
}

#[test]
fn artifacts_instantiate_across_threads() {
    let art = artifact();
    // Warm the shared pipeline from the main thread.
    art.lower_all();
    let handles: Vec<_> = (0..4)
        .map(|k| {
            let art = Arc::clone(&art);
            std::thread::spawn(move || {
                let mut p =
                    Process::instantiate(art, EngineConfig::default(), &Linker::new()).unwrap();
                let f = p.module().export_func("sum").unwrap();
                let r = p.invoke(f, &[Value::I32(10 + k)]).unwrap();
                // Each worker may instrument its own process freely.
                let probe = CountProbe::new();
                let cell = probe.cell();
                p.add_local_probe_val(f, 0, probe).unwrap();
                p.invoke(f, &[Value::I32(10 + k)]).unwrap();
                assert_eq!(cell.get(), 1);
                (k, r)
            })
        })
        .collect();
    for h in handles {
        let (k, r) = h.join().unwrap();
        let n = i64::from(10 + k);
        assert_eq!(r, vec![Value::I32((n * (n - 1) / 2) as i32)]);
    }
    // Shared lowering happened exactly once per function no matter how
    // many threads instantiated.
    assert!(art.funcs().iter().all(|f| f.is_lowered()));
}

#[test]
fn instantiate_skips_validation_and_per_function_work() {
    let art = artifact();
    // Force all shared work up front.
    art.lower_all();
    let mut p = Process::instantiate(Arc::clone(&art), EngineConfig::interpreter(), &Linker::new())
        .unwrap();
    let f = p.module().export_func("sum").unwrap();
    p.invoke(f, &[Value::I32(10)]).unwrap();
    // The warm process did zero lowering of its own.
    assert_eq!(p.stats().functions_lowered, 0);
    assert!(art.code_size_bytes() > 0);
}

#[test]
fn relower_rebuilds_only_the_process_local_overlay() {
    let art = artifact();
    let mut p1 =
        Process::instantiate(Arc::clone(&art), EngineConfig::interpreter(), &Linker::new())
            .unwrap();
    let mut p2 =
        Process::instantiate(Arc::clone(&art), EngineConfig::interpreter(), &Linker::new())
            .unwrap();
    let f = p1.module().export_func("sum").unwrap();
    let shared = p2.code_identity(f).unwrap();
    p1.add_local_probe_val(f, 0, CountProbe::new()).unwrap();
    p1.relower(f).unwrap();
    assert_eq!(p1.stats().relower_passes, 1);
    let overlay_after = p1.code_identity(f).unwrap();
    assert_ne!(overlay_after, shared, "still overlaid (probe intact)");
    assert!(p1.has_probe_byte(f, 0));
    assert_eq!(p2.code_identity(f).unwrap(), shared, "sibling untouched by relower");
    assert!(matches!(p1.relower(99), Err(ProbeError::NotALocalFunction(99))));
}

#[test]
fn mid_execution_cow_materialization_is_visible_to_the_running_function() {
    use std::cell::Cell;
    use std::rc::Rc;
    use wizard_engine::ClosureProbe;

    // A global probe fires while `sum` executes from the *shared* op
    // stream and installs the function's first local probe — the overlay
    // materializes mid-execution, and the running view must flip to it or
    // the new probe would silently never fire in this invocation.
    let art = artifact();
    let mut p = Process::instantiate(Arc::clone(&art), EngineConfig::interpreter(), &Linker::new())
        .unwrap();
    let f = p.module().export_func("sum").unwrap();
    // Find the loop header: probe it from inside the global probe.
    let meta = wizard_wasm::validate::validate(p.module()).unwrap();
    let loop_pc = meta.funcs[0].loop_headers[0];

    let fires = Rc::new(Cell::new(0u64));
    let inserted = Rc::new(Cell::new(false));
    let (fires2, inserted2) = (Rc::clone(&fires), Rc::clone(&inserted));
    let gid = p
        .add_global_probe(ClosureProbe::shared(move |ctx| {
            if !inserted2.get() {
                inserted2.set(true);
                let fires2 = Rc::clone(&fires2);
                ctx.insert_local_probe(
                    ctx.location().func,
                    loop_pc,
                    ClosureProbe::shared(move |_| fires2.set(fires2.get() + 1)),
                );
            }
        }))
        .unwrap();
    let r = p.invoke(f, &[Value::I32(5)]).unwrap();
    assert_eq!(r, vec![Value::I32(10)]);
    assert!(p.has_overlay(f), "insertion copy-on-wrote mid-execution");
    // Inserted before the first instruction executed; the loop header
    // occurs 6 times for n=5 (entry + 5 backedges).
    assert_eq!(fires.get(), 6, "probe fired in the same invocation that inserted it");
    p.remove_probe(gid).unwrap();
}

#[test]
fn mid_execution_rejoin_when_the_last_probe_removes_itself() {
    use std::cell::Cell;
    use std::rc::Rc;
    use wizard_engine::{ClosureProbe, ProbeId};

    let art = artifact();
    let mut p = Process::instantiate(Arc::clone(&art), EngineConfig::interpreter(), &Linker::new())
        .unwrap();
    let f = p.module().export_func("sum").unwrap();
    let meta = wizard_wasm::validate::validate(p.module()).unwrap();
    let loop_pc = meta.funcs[0].loop_headers[0];

    // A one-shot probe: removes itself on its first fire. It is the
    // function's only probe, so the removal drops the overlay *while the
    // function is executing* — the run must continue correctly on the
    // shared (re-fused) stream.
    let fires = Rc::new(Cell::new(0u64));
    let own_id: Rc<Cell<Option<ProbeId>>> = Rc::new(Cell::new(None));
    let (fires2, own2) = (Rc::clone(&fires), Rc::clone(&own_id));
    let id = p
        .add_local_probe(
            f,
            loop_pc,
            ClosureProbe::shared(move |ctx| {
                fires2.set(fires2.get() + 1);
                if let Some(id) = own2.get() {
                    ctx.remove_probe(id);
                }
            }),
        )
        .unwrap();
    own_id.set(Some(id));
    let r = p.invoke(f, &[Value::I32(5)]).unwrap();
    assert_eq!(r, vec![Value::I32(10)]);
    assert_eq!(fires.get(), 1, "one-shot probe fired exactly once");
    assert!(!p.has_overlay(f), "self-removal rejoined the shared artifact mid-execution");
    assert_eq!(p.resident_overlay_bytes(), 0);
    assert!(!p.has_probe_byte(f, loop_pc));
}

#[test]
fn parked_jit_frames_deopt_across_a_rejoin_and_reprobe_cycle() {
    use std::cell::Cell;
    use std::rc::Rc;
    use wizard_engine::{ClosureProbe, EmptyProbe, ProbeId};

    // Version-ABA regression: a JIT frame of `outer` parks at its call to
    // `helper`; while it is parked, helper's probe removes outer's only
    // probe (overlay rejoin) and installs a different one, and the
    // mutual recursion forces outer to be *recompiled* — with a different
    // op-stream layout — before the parked frame resumes. If the
    // instrumentation version ever recurred across that cycle, the parked
    // frame would pass the staleness check and resume at a misaligned
    // `cip`; monotonic versions force the deopt instead.
    let mut mb = ModuleBuilder::new();
    // outer = func 0, helper = func 1 (added in this order).
    let mut fo = FuncBuilder::new(&[I32], &[I32]);
    let r = fo.local(I32);
    fo.local_get(0);
    fo.if_(wizard_wasm::types::BlockType::Empty);
    fo.local_get(0).call(1).local_set(r);
    fo.end();
    fo.local_get(r);
    mb.add_func("outer", fo);
    let mut fh = FuncBuilder::new(&[I32], &[I32]);
    fh.local_get(0).i32_const(1).i32_sub().call(0).i32_const(1).i32_add();
    mb.add_func("helper", fh);
    let m = mb.build().unwrap();

    let mut p = Process::new(m, EngineConfig::jit(), &Linker::new()).unwrap();
    let outer = p.module().export_func("outer").unwrap();
    let helper = p.module().export_func("helper").unwrap();
    // A later instruction boundary of outer's body, for the replacement
    // probe (so the recompiled op stream has a different layout).
    let body = p.module().func_body(outer).unwrap().code.clone();
    let pcs: Vec<u32> = wizard_wasm::instr::InstrIter::new(&body).map(|x| x.unwrap().pc).collect();
    let later_pc = pcs[pcs.len() - 2];

    let a_id: Rc<Cell<Option<ProbeId>>> = Rc::new(Cell::new(None));
    let id = p.add_local_probe_val(outer, 0, EmptyProbe).unwrap();
    a_id.set(Some(id));
    let swapped = Rc::new(Cell::new(false));
    let (a2, s2) = (Rc::clone(&a_id), Rc::clone(&swapped));
    p.add_local_probe(
        helper,
        0,
        ClosureProbe::shared(move |ctx| {
            if !s2.get() {
                s2.set(true);
                ctx.remove_probe(a2.get().expect("probe A installed"));
                ctx.insert_local_probe(
                    outer,
                    later_pc,
                    std::rc::Rc::new(std::cell::RefCell::new(EmptyProbe)),
                );
            }
        }),
    )
    .unwrap();

    // outer(2) -> helper(2) -> outer(1) -> helper(1) -> outer(0) = 0,
    // +1 per helper level: outer(2) == 2. A misaligned resume of the
    // parked outer(2) frame yields a wrong result or panics.
    let r = p.invoke(outer, &[Value::I32(2)]).unwrap();
    assert_eq!(r, vec![Value::I32(2)]);
    assert!(p.stats().deopts > 0, "the parked frame deoptimized instead of resuming stale code");
}

#[test]
fn engine_stats_merge_covers_artifact_counters() {
    let mut a = EngineStats { overlay_copies: 2, artifact_cache_hits: 3, ..Default::default() };
    let b = EngineStats {
        overlay_copies: 1,
        artifact_cache_hits: 4,
        artifact_cache_misses: 5,
        ..Default::default()
    };
    a.merge(&b);
    assert_eq!(a.overlay_copies, 3);
    assert_eq!(a.artifact_cache_hits, 7);
    assert_eq!(a.artifact_cache_misses, 5);
}
