//! End-to-end engine tests: execution semantics across all tiers, the
//! probe framework, the paper's §2.4 consistency guarantees, FrameAccessor
//! validity, and multi-tier deoptimization.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use wizard_engine::store::Linker;
use wizard_engine::{ClosureProbe, CountProbe, EngineConfig, ProbeError, Process, Trap, Value};
use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::Module;
use wizard_wasm::types::BlockType;
use wizard_wasm::types::ValType::{F64, I32, I64};
use wizard_wasm::validate::ModuleMeta;

fn configs() -> Vec<(&'static str, EngineConfig)> {
    use wizard_engine::{Dispatch, ExecMode};
    vec![
        ("interp", EngineConfig::interpreter()),
        ("interp-bytecode", EngineConfig::interpreter_bytecode()),
        ("jit", EngineConfig::jit()),
        ("jit-no-intrinsics", EngineConfig::jit_no_intrinsics()),
        ("tiered", EngineConfig::builder().tierup_threshold(4).build()),
        (
            "tiered-bytecode",
            EngineConfig::builder()
                .mode(ExecMode::Tiered)
                .dispatch(Dispatch::Bytecode)
                .tierup_threshold(4)
                .build(),
        ),
    ]
}

fn proc_with(module: Module, config: EngineConfig) -> Process {
    Process::new(module, config, &Linker::new()).expect("instantiation succeeds")
}

/// `sum(n)`: loop from 0..n accumulating i. Returns (module, meta).
fn sum_module() -> (Module, ModuleMeta) {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let i = f.local(I32);
    let acc = f.local(I32);
    f.for_range(i, 0, |f| {
        f.local_get(acc).local_get(i).i32_add().local_set(acc);
    });
    f.local_get(acc);
    mb.add_func("sum", f);
    mb.build_with_meta().expect("valid module")
}

fn fib_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let fib = mb.declare_func("fib", &[I32], &[I32]);
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    f.local_get(0).i32_const(2).i32_lt_s().if_(BlockType::Value(I32));
    f.local_get(0);
    f.else_();
    f.local_get(0).i32_const(1).i32_sub().call(fib);
    f.local_get(0).i32_const(2).i32_sub().call(fib);
    f.i32_add();
    f.end();
    mb.define_func(fib, f);
    mb.export("fib", wizard_wasm::types::ExternKind::Func, fib);
    mb.build().expect("valid module")
}

#[test]
fn arithmetic_same_in_all_tiers() {
    for (name, config) in configs() {
        let (m, _) = sum_module();
        let mut p = proc_with(m, config);
        let r = p.invoke_export("sum", &[Value::I32(100)]).unwrap();
        assert_eq!(r, vec![Value::I32(4950)], "config {name}");
    }
}

#[test]
fn recursion_same_in_all_tiers() {
    for (name, config) in configs() {
        let mut p = proc_with(fib_module(), config);
        let r = p.invoke_export("fib", &[Value::I32(15)]).unwrap();
        assert_eq!(r, vec![Value::I32(610)], "config {name}");
    }
}

#[test]
fn tiered_mode_tiers_up_via_osr() {
    let (m, _) = sum_module();
    let mut p = proc_with(m, EngineConfig::builder().tierup_threshold(10).build());
    let r = p.invoke_export("sum", &[Value::I32(10_000)]).unwrap();
    assert_eq!(r, vec![Value::I32(49_995_000)]);
    let stats = p.stats();
    assert!(stats.tier_ups >= 1, "expected OSR tier-up, stats: {stats:?}");
    assert!(stats.compiles >= 1);
    let f = p.module().export_func("sum").unwrap();
    assert!(p.is_compiled(f));
}

#[test]
fn call_indirect_dispatch_and_traps() {
    let mut mb = ModuleBuilder::new();
    mb.table(4);
    let mut dbl = FuncBuilder::new(&[I32], &[I32]);
    dbl.local_get(0).i32_const(2).i32_mul();
    let dbl = mb.add_private_func("dbl", dbl);
    let mut neg = FuncBuilder::new(&[I32], &[I32]);
    neg.i32_const(0).local_get(0).i32_sub();
    let neg = mb.add_private_func("neg", neg);
    // A function with a different signature for the type-mismatch test.
    let mut f64id = FuncBuilder::new(&[F64], &[F64]);
    f64id.local_get(0);
    let f64id = mb.add_private_func("f64id", f64id);
    mb.elem(0, &[dbl, neg, f64id]);
    let sig = mb.sig(&[I32], &[I32]);
    let mut main = FuncBuilder::new(&[I32, I32], &[I32]);
    main.local_get(0).local_get(1).call_indirect(sig);
    mb.add_func("dispatch", main);
    let m = mb.build().unwrap();
    for (name, config) in configs() {
        let mut p = proc_with(m.clone(), config);
        assert_eq!(
            p.invoke_export("dispatch", &[Value::I32(21), Value::I32(0)]).unwrap(),
            vec![Value::I32(42)],
            "config {name}"
        );
        assert_eq!(
            p.invoke_export("dispatch", &[Value::I32(21), Value::I32(1)]).unwrap(),
            vec![Value::I32(-21)]
        );
        // Signature mismatch.
        assert_eq!(
            p.invoke_export("dispatch", &[Value::I32(1), Value::I32(2)]).unwrap_err(),
            Trap::IndirectCallTypeMismatch
        );
        // Uninitialized element.
        assert_eq!(
            p.invoke_export("dispatch", &[Value::I32(1), Value::I32(3)]).unwrap_err(),
            Trap::UndefinedElement
        );
        // Out of bounds.
        assert_eq!(
            p.invoke_export("dispatch", &[Value::I32(1), Value::I32(9)]).unwrap_err(),
            Trap::UndefinedElement
        );
    }
}

#[test]
fn memory_data_globals_and_grow() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1);
    mb.data(16, &[1, 2, 3, 4]);
    let g = mb.global(I64, true, wizard_wasm::module::ConstExpr::I64(5));
    let mut f = FuncBuilder::new(&[], &[I64]);
    // Read the data segment as a LE u32, store doubled, read back, add the
    // global, grow memory by 1 page, add the old page count.
    let tmp = f.local(I32);
    f.i32_const(16).i32_load(0).local_set(tmp);
    f.i32_const(32).local_get(tmp).i32_const(2).i32_mul().i32_store(0);
    f.i32_const(32).i32_load(0).i64_extend_i32_u();
    f.global_get(g).i64_add();
    f.global_get(g).i64_const(1).i64_add().global_set(g);
    f.i32_const(1).memory_grow().i64_extend_i32_s().i64_add();
    mb.add_func("go", f);
    let m = mb.build().unwrap();
    for (name, config) in configs() {
        let mut p = proc_with(m.clone(), config);
        let expected = i64::from(u32::from_le_bytes([1, 2, 3, 4]) * 2) + 5 + 1;
        assert_eq!(
            p.invoke_export("go", &[]).unwrap(),
            vec![Value::I64(expected)],
            "config {name}"
        );
        assert_eq!(p.global(g).unwrap(), Value::I64(6));
        assert_eq!(p.memory().unwrap().len(), 2 * 65536);
    }
}

#[test]
fn traps_unwind_in_all_tiers() {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    f.i32_const(1).local_get(0).i32_div_s();
    mb.add_func("div", f);
    let mut g = FuncBuilder::new(&[], &[]);
    g.unreachable();
    mb.add_func("boom", g);
    let rec = mb.declare_func("rec", &[], &[]);
    let mut h = FuncBuilder::new(&[], &[]);
    h.call(rec);
    mb.define_func(rec, h);
    mb.export("rec", wizard_wasm::types::ExternKind::Func, rec);
    let m = mb.build().unwrap();
    for (name, config) in configs() {
        let mut p = proc_with(m.clone(), config);
        assert_eq!(
            p.invoke_export("div", &[Value::I32(0)]).unwrap_err(),
            Trap::DivisionByZero,
            "config {name}"
        );
        assert_eq!(p.invoke_export("boom", &[]).unwrap_err(), Trap::Unreachable);
        assert_eq!(p.invoke_export("rec", &[]).unwrap_err(), Trap::StackOverflow);
        // The process is still usable after a trap.
        assert_eq!(p.invoke_export("div", &[Value::I32(1)]).unwrap(), vec![Value::I32(1)]);
    }
}

#[test]
fn br_table_selects_targets() {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    f.block(BlockType::Empty); // depth 2 -> returns 30
    f.block(BlockType::Empty); // depth 1 -> returns 20
    f.block(BlockType::Empty); // depth 0 -> returns 10
    f.local_get(0).br_table(&[0, 1], 2);
    f.end();
    f.i32_const(10).return_();
    f.end();
    f.i32_const(20).return_();
    f.end();
    f.i32_const(30);
    mb.add_func("sel", f);
    let m = mb.build().unwrap();
    for (name, config) in configs() {
        let mut p = proc_with(m.clone(), config);
        for (arg, want) in [(0, 10), (1, 20), (2, 30), (77, 30)] {
            assert_eq!(
                p.invoke_export("sel", &[Value::I32(arg)]).unwrap(),
                vec![Value::I32(want)],
                "config {name}, arg {arg}"
            );
        }
    }
}

#[test]
fn host_functions_and_imported_globals() {
    let m = {
        let mut mb = ModuleBuilder::new();
        let add_ten = mb.import_func("env", "add_ten", &[I32], &[I32]);
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).call(add_ten);
        mb.add_func("go", f);
        mb.build().unwrap()
    };
    let calls = Rc::new(Cell::new(0u32));
    let calls2 = Rc::clone(&calls);
    let mut linker = Linker::new();
    linker.func("env", "add_ten", move |_ctx, args| {
        calls2.set(calls2.get() + 1);
        Ok(vec![Value::I32(args[0].as_i32().unwrap() + 10)])
    });
    let mut p = Process::new(m, EngineConfig::default(), &linker).unwrap();
    assert_eq!(p.invoke_export("go", &[Value::I32(5)]).unwrap(), vec![Value::I32(15)]);
    assert_eq!(calls.get(), 1);
}

// ---- instrumentation ----

#[test]
fn local_probe_fires_and_overwrites_bytecode() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    for (name, config) in configs() {
        let mut p = proc_with(m.clone(), config);
        let f = p.module().export_func("sum").unwrap();
        let probe = CountProbe::new();
        let counter = probe.cell();
        let id = p.add_local_probe_val(f, loop_pc, probe).unwrap();
        assert!(p.has_probe_byte(f, loop_pc), "config {name}");
        let r = p.invoke(f, &[Value::I32(10)]).unwrap();
        assert_eq!(r, vec![Value::I32(45)]);
        // Loop header executes once on entry + once per backedge.
        assert_eq!(counter.get(), 11, "config {name}");
        p.remove_probe(id).unwrap();
        assert!(!p.has_probe_byte(f, loop_pc));
        p.invoke(f, &[Value::I32(10)]).unwrap();
        assert_eq!(counter.get(), 11, "removed probe must not fire ({name})");
    }
}

#[test]
fn insertion_order_is_firing_order() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("sum").unwrap();
    let order = Rc::new(RefCell::new(Vec::new()));
    for tag in ["a", "b", "c"] {
        let order = Rc::clone(&order);
        p.add_local_probe(
            f,
            loop_pc,
            ClosureProbe::shared(move |_ctx| {
                order.borrow_mut().push(tag);
            }),
        )
        .unwrap();
    }
    p.invoke(f, &[Value::I32(1)]).unwrap();
    // Two occurrences (entry + one backedge), each firing a, b, c in order.
    assert_eq!(*order.borrow(), vec!["a", "b", "c", "a", "b", "c"]);
}

#[test]
fn deferred_insert_on_same_event() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("sum").unwrap();
    let q_fires = Rc::new(Cell::new(0u32));
    let p_fires = Rc::new(Cell::new(0u32));
    let inserted = Rc::new(Cell::new(false));
    let (qf, pf, ins) = (Rc::clone(&q_fires), Rc::clone(&p_fires), Rc::clone(&inserted));
    p.add_local_probe(
        f,
        loop_pc,
        ClosureProbe::shared(move |ctx| {
            pf.set(pf.get() + 1);
            if !ins.get() {
                ins.set(true);
                let qf = Rc::clone(&qf);
                let loc = ctx.location();
                ctx.insert_local_probe(
                    loc.func,
                    loc.pc,
                    ClosureProbe::shared(move |_| qf.set(qf.get() + 1)),
                );
            }
        }),
    )
    .unwrap();
    // Loop header occurs 6 times for n=5 (entry + 5 backedges).
    p.invoke(f, &[Value::I32(5)]).unwrap();
    assert_eq!(p_fires.get(), 6);
    // q was inserted during the 1st occurrence, so it fires on the
    // remaining 5 — not on the occurrence that inserted it.
    assert_eq!(q_fires.get(), 5);
}

#[test]
fn deferred_removal_on_same_event() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("sum").unwrap();
    // Insert q first so we can capture its id, then insert p before it by
    // ordering: p must fire first to remove q on the same event, so insert
    // p (the remover) first, then q.
    let q_fires = Rc::new(Cell::new(0u32));
    let removed = Rc::new(Cell::new(false));
    let q_id = Rc::new(Cell::new(None));
    let (rm, qid) = (Rc::clone(&removed), Rc::clone(&q_id));
    p.add_local_probe(
        f,
        loop_pc,
        ClosureProbe::shared(move |ctx| {
            if !rm.get() {
                if let Some(id) = qid.get() {
                    rm.set(true);
                    ctx.remove_probe(id);
                }
            }
        }),
    )
    .unwrap();
    let qf = Rc::clone(&q_fires);
    let id =
        p.add_local_probe(f, loop_pc, ClosureProbe::shared(move |_| qf.set(qf.get() + 1))).unwrap();
    q_id.set(Some(id));
    p.invoke(f, &[Value::I32(5)]).unwrap();
    // q is removed by p during the first occurrence, but still fires on
    // that occurrence (deferred removal), and never again.
    assert_eq!(q_fires.get(), 1);
}

#[test]
fn self_removing_probe_fires_once() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    for (name, config) in configs() {
        let mut p = proc_with(m.clone(), config);
        let f = p.module().export_func("sum").unwrap();
        let fires = Rc::new(Cell::new(0u32));
        let id_cell: Rc<Cell<Option<wizard_engine::ProbeId>>> = Rc::new(Cell::new(None));
        let (fi, idc) = (Rc::clone(&fires), Rc::clone(&id_cell));
        let id = p
            .add_local_probe(
                f,
                loop_pc,
                ClosureProbe::shared(move |ctx| {
                    fi.set(fi.get() + 1);
                    if let Some(id) = idc.get() {
                        ctx.remove_probe(id);
                    }
                }),
            )
            .unwrap();
        id_cell.set(Some(id));
        p.invoke(f, &[Value::I32(50)]).unwrap();
        assert_eq!(fires.get(), 1, "config {name}: coverage-style self-removal");
        assert!(!p.has_probe_byte(f, loop_pc), "byte restored after self-removal ({name})");
        // Second run: no firing at all.
        p.invoke(f, &[Value::I32(50)]).unwrap();
        assert_eq!(fires.get(), 1);
    }
}

#[test]
fn global_probe_sees_every_instruction_and_switches_tables() {
    let (m, _) = sum_module();
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("sum").unwrap();
    let count = Rc::new(Cell::new(0u64));
    let c = Rc::clone(&count);
    let id = p.add_global_probe(ClosureProbe::shared(move |_| c.set(c.get() + 1))).unwrap();
    assert!(p.in_global_mode());
    p.invoke(f, &[Value::I32(10)]).unwrap();
    let first = count.get();
    // Each iteration executes >10 instructions; entry/exit add more.
    assert!(first > 100, "expected >100 instruction events, got {first}");
    p.remove_probe(id).unwrap();
    assert!(!p.in_global_mode());
    p.invoke(f, &[Value::I32(10)]).unwrap();
    assert_eq!(count.get(), first, "no fires after removal");
}

#[test]
fn global_probe_mode_suspends_jit_without_discarding_code() {
    let (m, _) = sum_module();
    let mut p = proc_with(m, EngineConfig::builder().tierup_threshold(5).build());
    let f = p.module().export_func("sum").unwrap();
    // Get the function hot and compiled.
    p.invoke(f, &[Value::I32(1000)]).unwrap();
    assert!(p.is_compiled(f));
    let count = Rc::new(Cell::new(0u64));
    let c = Rc::clone(&count);
    let id = p.add_global_probe(ClosureProbe::shared(move |_| c.set(c.get() + 1))).unwrap();
    // Global mode: execution returns to the interpreter, but compiled code
    // is NOT discarded (paper §4.1).
    assert!(p.is_compiled(f), "JIT code must not be discarded by global probes");
    let r = p.invoke(f, &[Value::I32(100)]).unwrap();
    assert_eq!(r, vec![Value::I32(4950)]);
    assert!(count.get() > 500, "global probe must fire per instruction");
    p.remove_probe(id).unwrap();
    // JIT is naturally re-entered without recompiling.
    let fires_after_removal = count.get();
    let before = p.stats();
    p.invoke(f, &[Value::I32(1000)]).unwrap();
    let after = p.stats();
    assert_eq!(count.get(), fires_after_removal, "no fires after removal");
    assert_eq!(after.compiles, before.compiles, "no recompilation needed");
}

#[test]
fn frame_accessor_reads_locals_and_operands() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    for (name, config) in configs() {
        let mut p = proc_with(m.clone(), config);
        let f = p.module().export_func("sum").unwrap();
        let seen: Rc<RefCell<Vec<i32>>> = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        p.add_local_probe(
            f,
            loop_pc,
            ClosureProbe::shared(move |ctx| {
                let view = ctx.frame();
                // local 1 is the loop counter i.
                let i = view.local(1).unwrap().as_i32().unwrap();
                s.borrow_mut().push(i);
            }),
        )
        .unwrap();
        p.invoke(f, &[Value::I32(3)]).unwrap();
        // Loop header reached with i = 0 (entry, pre-init it is 0 too),
        // then after increments 1, 2, 3.
        assert_eq!(*seen.borrow(), vec![0, 1, 2, 3], "config {name}");
    }
}

#[test]
fn frame_accessor_identity_stable_and_invalidated_on_return() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("sum").unwrap();
    let stored: Rc<RefCell<Vec<wizard_engine::FrameAccessor>>> = Rc::new(RefCell::new(Vec::new()));
    let st = Rc::clone(&stored);
    p.add_local_probe(
        f,
        loop_pc,
        ClosureProbe::shared(move |ctx| {
            st.borrow_mut().push(ctx.accessor());
        }),
    )
    .unwrap();
    p.invoke(f, &[Value::I32(5)]).unwrap();
    let accs = stored.borrow();
    assert!(accs.len() >= 2);
    // Same activation: identical accessor object across callbacks.
    assert_eq!(accs[0], accs[1], "accessor identity stable within an activation");
    // After return, the accessor is invalid (dangling protection).
    assert!(!accs[0].is_valid(), "accessor must be invalidated on return");
    assert_eq!(accs[0].depth(), 1);
}

#[test]
fn stack_walking_and_depth() {
    let m = fib_module();
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("fib").unwrap();
    let max_depth = Rc::new(Cell::new(0u32));
    let walked = Rc::new(Cell::new(0u32));
    let (md, wk) = (Rc::clone(&max_depth), Rc::clone(&walked));
    // Probe function entry (pc 0).
    p.add_local_probe(
        f,
        0,
        ClosureProbe::shared(move |ctx| {
            md.set(md.get().max(ctx.depth()));
            // Walk the whole stack via caller links.
            let mut frames = 1;
            let mut acc = ctx.frame().caller();
            while let Some(a) = acc {
                frames += 1;
                acc = ctx.view(&a).expect("live caller").caller();
            }
            wk.set(wk.get().max(frames));
        }),
    )
    .unwrap();
    p.invoke(f, &[Value::I32(8)]).unwrap();
    assert_eq!(max_depth.get(), 8, "fib(8) reaches depth 8");
    assert_eq!(walked.get(), max_depth.get(), "stack walk covers all frames");
}

#[test]
fn frame_modification_is_consistent_and_deopts_jit() {
    // Function: return x after the loop runs; a probe overwrites the local
    // mid-execution, and the modification must be visible immediately.
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    // Tiered with low threshold so the frame is in JIT when the probe fires.
    let mut p = proc_with(m, EngineConfig::builder().tierup_threshold(2).build());
    let f = p.module().export_func("sum").unwrap();
    let did = Rc::new(Cell::new(false));
    let d = Rc::clone(&did);
    p.add_local_probe(
        f,
        loop_pc,
        ClosureProbe::shared(move |ctx| {
            // When i reaches 50, set i = 90 — skipping iterations 50..90.
            let mut view = ctx.frame();
            let i = view.local(1).unwrap().as_i32().unwrap();
            if i == 50 && !d.get() {
                d.set(true);
                view.set_local(1, Value::I32(90)).unwrap();
            }
        }),
    )
    .unwrap();
    let r = p.invoke(f, &[Value::I32(100)]).unwrap();
    // sum(0..100) minus sum(50..90) = 4950 - sum(50..=89).
    let skipped: i32 = (50..90).sum();
    assert_eq!(r, vec![Value::I32(4950 - skipped)]);
    assert!(did.get());
}

#[test]
fn frame_modification_rejected_in_jit_only() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = proc_with(m, EngineConfig::jit());
    let f = p.module().export_func("sum").unwrap();
    let saw_err = Rc::new(Cell::new(false));
    let s = Rc::clone(&saw_err);
    p.add_local_probe(
        f,
        loop_pc,
        ClosureProbe::shared(move |ctx| {
            let mut view = ctx.frame();
            if view.set_local(1, Value::I32(0)).is_err() {
                s.set(true);
            }
        }),
    )
    .unwrap();
    p.invoke(f, &[Value::I32(3)]).unwrap();
    assert!(saw_err.get(), "set_local must fail in JIT-only mode");
}

#[test]
fn global_probes_rejected_in_jit_only() {
    let (m, _) = sum_module();
    let mut p = proc_with(m, EngineConfig::jit());
    let err = p.add_global_probe(ClosureProbe::shared(|_| {})).unwrap_err();
    assert_eq!(err, ProbeError::GlobalProbesNeedInterpreter);
}

#[test]
fn probe_location_validation() {
    let (m, _) = sum_module();
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("sum").unwrap();
    // pc 1 is inside the first instruction's immediate.
    assert!(matches!(
        p.add_local_probe_val(f, 1, CountProbe::new()),
        Err(ProbeError::InvalidPc(_, 1))
    ));
    assert!(matches!(
        p.add_local_probe_val(9999, 0, CountProbe::new()),
        Err(ProbeError::NotALocalFunction(9999))
    ));
    // Removing an already-removed probe reports an error.
    let id = p.add_local_probe_val(f, 0, CountProbe::new()).unwrap();
    p.remove_probe(id).unwrap();
    assert_eq!(p.remove_probe(id).unwrap_err(), ProbeError::UnknownProbe);
}

#[test]
fn count_probe_intrinsified_in_jit_matches_interpreter() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut counts = Vec::new();
    for config in
        [EngineConfig::interpreter(), EngineConfig::jit(), EngineConfig::jit_no_intrinsics()]
    {
        let mut p = proc_with(m.clone(), config);
        let f = p.module().export_func("sum").unwrap();
        let probe = CountProbe::new();
        let cell = probe.cell();
        p.add_local_probe_val(f, loop_pc, probe).unwrap();
        let r = p.invoke(f, &[Value::I32(200)]).unwrap();
        assert_eq!(r, vec![Value::I32(19900)]);
        counts.push(cell.get());
    }
    assert_eq!(counts[0], counts[1], "interp vs intrinsified JIT");
    assert_eq!(counts[0], counts[2], "interp vs generic JIT");
    assert_eq!(counts[0], 201);
}

#[test]
fn mixed_probe_site_fires_all_in_order_in_jit() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = proc_with(m, EngineConfig::jit());
    let f = p.module().export_func("sum").unwrap();
    let order = Rc::new(RefCell::new(Vec::new()));
    let count = CountProbe::new();
    let cell = count.cell();
    p.add_local_probe_val(f, loop_pc, count).unwrap();
    let o = Rc::clone(&order);
    p.add_local_probe(
        f,
        loop_pc,
        ClosureProbe::shared(move |_| {
            o.borrow_mut().push("generic");
        }),
    )
    .unwrap();
    p.invoke(f, &[Value::I32(2)]).unwrap();
    // Mixed site: the generic probe forces the whole site through the
    // runtime path, so both fire, count first.
    assert_eq!(cell.get(), 3);
    assert_eq!(order.borrow().len(), 3);
}

#[test]
fn trap_invalidates_stored_accessors() {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    f.nop();
    f.i32_const(1).local_get(0).i32_div_s();
    mb.add_func("div", f);
    let m = mb.build().unwrap();
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("div").unwrap();
    let stored: Rc<RefCell<Option<wizard_engine::FrameAccessor>>> = Rc::new(RefCell::new(None));
    let st = Rc::clone(&stored);
    p.add_local_probe(
        f,
        0,
        ClosureProbe::shared(move |ctx| {
            *st.borrow_mut() = Some(ctx.accessor());
        }),
    )
    .unwrap();
    assert_eq!(p.invoke(f, &[Value::I32(0)]).unwrap_err(), Trap::DivisionByZero);
    let acc = stored.borrow().clone().unwrap();
    assert!(!acc.is_valid(), "unwind must invalidate accessors");
}

#[test]
fn after_instruction_pattern_via_one_shot_global_probe() {
    // Paper §2.6, strategy 3: to run M-code "after" a br_table, insert a
    // global probe from the br_table's local probe; it fires on the next
    // executed instruction (the branch destination) and removes itself.
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    f.block(BlockType::Empty);
    f.block(BlockType::Empty);
    f.local_get(0);
    let bt_pc = f.pc();
    f.br_table(&[0], 1);
    f.end();
    let taken_pc = f.pc();
    f.i32_const(10).return_();
    f.end();
    let default_pc = f.pc();
    f.i32_const(20);
    mb.add_func("sw", f);
    let m = mb.build().unwrap();
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("sw").unwrap();
    let landed: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    let l = Rc::clone(&landed);
    p.add_local_probe(
        f,
        bt_pc,
        ClosureProbe::shared(move |ctx| {
            let l2 = Rc::clone(&l);
            let gid: Rc<Cell<Option<wizard_engine::ProbeId>>> = Rc::new(Cell::new(None));
            let gid2 = Rc::clone(&gid);
            let id = ctx.insert_global_probe(ClosureProbe::shared(move |gctx| {
                l2.borrow_mut().push(gctx.location().pc);
                if let Some(id) = gid2.get() {
                    gctx.remove_probe(id);
                }
            }));
            gid.set(Some(id));
        }),
    )
    .unwrap();
    assert_eq!(p.invoke(f, &[Value::I32(0)]).unwrap(), vec![Value::I32(10)]);
    assert!(!p.in_global_mode(), "one-shot global probe removed itself");
    assert_eq!(p.invoke(f, &[Value::I32(5)]).unwrap(), vec![Value::I32(20)]);
    // The "after br_table" events landed exactly at the branch destinations.
    assert_eq!(*landed.borrow(), vec![taken_pc, default_pc]);
}

#[test]
fn stats_track_probe_fires() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("sum").unwrap();
    p.add_local_probe_val(f, loop_pc, CountProbe::new()).unwrap();
    p.invoke(f, &[Value::I32(9)]).unwrap();
    assert_eq!(p.stats().probe_fires, 10);
    p.reset_stats();
    assert_eq!(p.stats().probe_fires, 0);
}

#[test]
fn lowering_happens_once_and_is_counted() {
    let (m, _) = sum_module();
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("sum").unwrap();
    assert_eq!(p.stats().functions_lowered, 0, "lowering is lazy");
    p.invoke(f, &[Value::I32(5)]).unwrap();
    assert_eq!(p.stats().functions_lowered, 1);
    p.invoke(f, &[Value::I32(5)]).unwrap();
    assert_eq!(p.stats().functions_lowered, 1, "second run reuses the cache");
    // Probe churn patches lowered slots in place: no re-lowering, ever.
    let id = p.add_local_probe_val(f, 0, CountProbe::new()).unwrap();
    p.invoke(f, &[Value::I32(5)]).unwrap();
    p.remove_probe(id).unwrap();
    assert_eq!(p.stats().functions_lowered, 1);
    assert_eq!(p.stats().relower_passes, 0);
}

#[test]
fn relower_rebuilds_and_is_counted() {
    let (m, _) = sum_module();
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("sum").unwrap();
    let probe = CountProbe::new();
    let counter = probe.cell();
    p.add_local_probe_val(f, 0, probe).unwrap();
    let before = p.invoke(f, &[Value::I32(6)]).unwrap();
    // Force a re-lowering pass: the rebuilt form re-applies probe patches.
    p.relower(f).unwrap();
    assert_eq!(p.stats().relower_passes, 1);
    let after = p.invoke(f, &[Value::I32(6)]).unwrap();
    assert_eq!(before, after);
    assert_eq!(counter.get(), 2, "probe survived the re-lowering");
    assert!(matches!(p.relower(999), Err(ProbeError::NotALocalFunction(999))));

    // Imported functions have no body to re-lower.
    let m = {
        let mut mb = ModuleBuilder::new();
        let host = mb.import_func("env", "id", &[I32], &[I32]);
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).call(host);
        mb.add_func("go", f);
        mb.build().unwrap()
    };
    let mut linker = Linker::new();
    linker.func("env", "id", |_ctx, args| Ok(vec![args[0]]));
    let mut p = Process::new(m, EngineConfig::default(), &linker).unwrap();
    assert!(matches!(p.relower(0), Err(ProbeError::NotALocalFunction(0))));
    assert!(p.relower(1).is_ok(), "the local function re-lowers");
}

#[test]
fn bytecode_dispatch_never_lowers_in_interp_only() {
    let (m, _) = sum_module();
    let mut p = proc_with(m, EngineConfig::interpreter_bytecode());
    let f = p.module().export_func("sum").unwrap();
    let r = p.invoke(f, &[Value::I32(9)]).unwrap();
    assert_eq!(r, vec![Value::I32(36)]);
    assert_eq!(
        p.stats().functions_lowered,
        0,
        "classic byte dispatch in interpreter-only mode executes without the lowered cache"
    );
    // Probe-location validation is the one classic-mode consumer of the
    // pc ↔ slot map: it lowers on demand (documented on Dispatch::Bytecode).
    p.add_local_probe_val(f, 0, CountProbe::new()).unwrap();
    assert_eq!(p.stats().functions_lowered, 1);
}

#[test]
fn probing_the_one_past_the_end_sentinel_is_rejected() {
    // The lowering maps pc == body length to a sentinel slot (frames park
    // the implicit-return pc there), but it is not a probeable location.
    let (m, _) = sum_module();
    let body_len = m.funcs[0].body.code.len() as u32;
    let mut p = proc_with(m, EngineConfig::interpreter());
    let f = p.module().export_func("sum").unwrap();
    assert!(matches!(
        p.add_local_probe_val(f, body_len, CountProbe::new()),
        Err(ProbeError::InvalidPc(_, pc)) if pc == body_len
    ));
    assert!(matches!(
        p.add_local_probe_val(f, body_len + 10, CountProbe::new()),
        Err(ProbeError::InvalidPc(..))
    ));
}

#[test]
fn dispatchers_agree_with_probes_installed() {
    // The classic dispatcher is the semantic reference: both must produce
    // identical results and identical probe-fire counts on a probed loop.
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut fires = Vec::new();
    for config in [EngineConfig::interpreter(), EngineConfig::interpreter_bytecode()] {
        let mut p = proc_with(m.clone(), config);
        let f = p.module().export_func("sum").unwrap();
        let probe = CountProbe::new();
        let counter = probe.cell();
        p.add_local_probe_val(f, loop_pc, probe).unwrap();
        let r = p.invoke(f, &[Value::I32(17)]).unwrap();
        assert_eq!(r, vec![Value::I32(136)]);
        fires.push(counter.get());
    }
    assert_eq!(fires[0], fires[1], "probe fire counts must match across dispatchers");
}
