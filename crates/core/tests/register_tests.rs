//! Register-dispatch edge cases around the byte-offset `Location`
//! contract: fuel suspension and resume under `Dispatch::Register`,
//! probe attach/detach while suspended, demotion of a parked register
//! frame when its function gains an overlay mid-run, and OSR tier-up
//! from the register interpreter into register-shaped compiled code.

use std::cell::Cell;
use std::rc::Rc;

use wizard_engine::store::Linker;
use wizard_engine::{
    ClosureProbe, CountProbe, Dispatch, EngineConfig, ExecMode, Process, RunOutcome, Value,
};
use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::Module;
use wizard_wasm::types::ValType::I32;
use wizard_wasm::validate::ModuleMeta;

/// `sum(n) = 0 + 1 + ... + n-1` via a loop (a tier-up candidate).
fn sum_module() -> (Module, ModuleMeta) {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let i = f.local(I32);
    let acc = f.local(I32);
    f.for_range(i, 0, |f| {
        f.local_get(acc).local_get(i).i32_add().local_set(acc);
    });
    f.local_get(acc);
    mb.add_func("sum", f);
    mb.build_with_meta().unwrap()
}

fn register() -> EngineConfig {
    EngineConfig::interpreter_register()
}

fn tiered_register(threshold: u32) -> EngineConfig {
    EngineConfig::builder()
        .mode(ExecMode::Tiered)
        .dispatch(Dispatch::Register)
        .tierup_threshold(threshold)
        .build()
}

/// Drives a suspended process to completion, returning the results and
/// the number of resume slices it took.
fn drain(p: &mut Process, fuel: u64) -> (Vec<Value>, u64) {
    let mut slices = 0;
    loop {
        slices += 1;
        match p.resume(fuel).expect("no trap") {
            RunOutcome::Done(v) => return (v, slices),
            RunOutcome::OutOfFuel => {}
        }
    }
}

#[test]
fn register_dispatch_computes_and_counts_lowering() {
    let (m, _) = sum_module();
    let mut p = Process::new(m, register(), &Linker::new()).unwrap();
    let r = p.invoke_export("sum", &[Value::I32(50)]).unwrap();
    assert_eq!(r, vec![Value::I32(1225)]);
    let stats = p.stats();
    assert_eq!(stats.functions_reg_lowered, 1, "sum lowered to register form");
    assert_eq!(stats.reg_fallbacks, 0);
    assert_eq!(stats.reg_demotions, 0, "nothing forced the stack tier");
}

/// Fuel exhaustion mid-loop under register dispatch: the bounded run
/// suspends and resumes to the same result, and a probe at the loop
/// header fires exactly as often as in an unbounded run, for every
/// slice size. (Metered slices run on the stack tier by policy; the
/// probe counts prove the switch is invisible.)
#[test]
fn bounded_register_run_keeps_probe_counts_exact() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];

    let expected = {
        let mut p = Process::new(m.clone(), register(), &Linker::new()).unwrap();
        let f = p.module().export_func("sum").unwrap();
        let probe = CountProbe::new();
        let cell = probe.cell();
        p.add_local_probe_val(f, loop_pc, probe).unwrap();
        let r = p.invoke(f, &[Value::I32(40)]).unwrap();
        assert_eq!(r, vec![Value::I32(780)]);
        cell.get()
    };
    assert!(expected > 0);

    for slice in [1u64, 2, 5, 13] {
        let mut p = Process::new(m.clone(), register(), &Linker::new()).unwrap();
        let f = p.module().export_func("sum").unwrap();
        let probe = CountProbe::new();
        let cell = probe.cell();
        p.add_local_probe_val(f, loop_pc, probe).unwrap();
        match p.run_bounded(f, &[Value::I32(40)], slice).unwrap() {
            RunOutcome::Done(r) => assert_eq!(r, vec![Value::I32(780)]),
            RunOutcome::OutOfFuel => {
                let (r, slices) = drain(&mut p, slice);
                assert_eq!(r, vec![Value::I32(780)]);
                assert!(slices > 1, "slice {slice} should preempt repeatedly");
            }
        }
        assert_eq!(cell.get(), expected, "slice {slice} changed probe fires");
    }
}

/// Probe attach and detach while a register-dispatch process is
/// suspended mid-loop: the probe fires on the resumed slices, stops at
/// detach, and the run still completes correctly. A subsequent
/// unbounded invocation goes back to the register tier.
#[test]
fn probe_attach_detach_while_suspended() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = Process::new(m, register(), &Linker::new()).unwrap();
    let f = p.module().export_func("sum").unwrap();

    let out = p.run_bounded(f, &[Value::I32(60)], 25).unwrap();
    assert_eq!(out, RunOutcome::OutOfFuel);
    assert!(p.is_suspended());

    // Attach at the loop header while parked mid-loop.
    let probe = CountProbe::new();
    let cell = probe.cell();
    let id = p.add_local_probe_val(f, loop_pc, probe).unwrap();
    assert_eq!(p.resume(25).unwrap(), RunOutcome::OutOfFuel);
    assert_eq!(p.resume(25).unwrap(), RunOutcome::OutOfFuel);
    let fired_while_attached = cell.get();
    assert!(fired_while_attached > 0, "probe fired on resumed slices");

    // Detach while still suspended: no further fires.
    p.remove_probe(id).unwrap();
    let (r, _) = drain(&mut p, 25);
    assert_eq!(r, vec![Value::I32(1770)]);
    assert_eq!(cell.get(), fired_while_attached, "no fires after detach");

    // Back to the register tier for the next unbounded run.
    let r = p.invoke(f, &[Value::I32(10)]).unwrap();
    assert_eq!(r, vec![Value::I32(45)]);
    assert_eq!(p.stats().reg_demotions, 0, "suspended slices never held register frames");
}

/// Deopt at a probed site: a register-tier frame parks at a call; the
/// callee's probe instruments the *caller's* loop header; on return the
/// parked register frame demotes to the stack tier (counted), resumes
/// at its byte pc, and the freshly inserted probe fires for the rest of
/// the loop — behavior identical to the lowered-dispatch run.
#[test]
fn parked_register_frame_demotes_when_probed_mid_run() {
    let build = || {
        let mut mb = ModuleBuilder::new();
        // outer = func 0: acc += helper(i) over i in 0..n.
        let mut fo = FuncBuilder::new(&[I32], &[I32]);
        let i = fo.local(I32);
        let acc = fo.local(I32);
        fo.for_range(i, 0, |f| {
            f.local_get(acc);
            f.local_get(i).call(1);
            f.i32_add().local_set(acc);
        });
        fo.local_get(acc);
        mb.add_func("outer", fo);
        // helper = func 1: i + 1.
        let mut fh = FuncBuilder::new(&[I32], &[I32]);
        fh.local_get(0).i32_const(1).i32_add();
        mb.add_func("helper", fh);
        mb.build_with_meta().unwrap()
    };

    let run = |config: EngineConfig| {
        let (m, meta) = build();
        let loop_pc = meta.funcs[0].loop_headers[0];
        let mut p = Process::new(m, config, &Linker::new()).unwrap();
        let outer = p.module().export_func("outer").unwrap();
        let helper = p.module().export_func("helper").unwrap();

        let loop_fires = Rc::new(Cell::new(0u64));
        let inserted = Rc::new(Cell::new(false));
        let (lf2, ins2) = (Rc::clone(&loop_fires), Rc::clone(&inserted));
        p.add_local_probe(
            helper,
            0,
            ClosureProbe::shared(move |ctx| {
                if !ins2.get() {
                    ins2.set(true);
                    let lf3 = Rc::clone(&lf2);
                    ctx.insert_local_probe(
                        outer,
                        loop_pc,
                        ClosureProbe::shared(move |_| lf3.set(lf3.get() + 1)),
                    );
                }
            }),
        )
        .unwrap();

        let r = p.invoke(outer, &[Value::I32(10)]).unwrap();
        assert_eq!(r, vec![Value::I32(55)]);
        assert!(p.has_overlay(outer), "insertion copy-on-wrote outer mid-run");
        (loop_fires.get(), p.stats())
    };

    let (ref_fires, ref_stats) = run(EngineConfig::interpreter());
    assert!(ref_fires > 0);
    assert_eq!(ref_stats.reg_demotions, 0);

    let (fires, stats) = run(register());
    assert_eq!(fires, ref_fires, "mid-run instrumentation fires identically");
    assert!(stats.reg_demotions > 0, "the parked register frame demoted");
    assert_eq!(stats.functions_reg_lowered, 2);
}

/// OSR under tiered register dispatch: the loop gets hot inside the
/// register interpreter, tiers up at the loop header into
/// register-shaped compiled code, and finishes with the same result —
/// across plain and fuel-sliced runs.
#[test]
fn tiered_register_osr_tier_up() {
    let (m, _) = sum_module();
    let mut p = Process::new(m.clone(), tiered_register(3), &Linker::new()).unwrap();
    let f = p.module().export_func("sum").unwrap();
    let r = p.invoke(f, &[Value::I32(200)]).unwrap();
    assert_eq!(r, vec![Value::I32(19_900)]);
    assert!(p.is_compiled(f), "hot loop tiered up");
    assert!(p.stats().tier_ups > 0);
    assert_eq!(p.stats().functions_reg_lowered, 1);

    // Fuel-sliced on the same config: metered slices stay on the stack
    // tiers by policy, same result, and suspension really happened.
    let mut p = Process::new(m, tiered_register(3), &Linker::new()).unwrap();
    let out = p.run_export_bounded("sum", &[Value::I32(200)], 97).unwrap();
    assert_eq!(out, RunOutcome::OutOfFuel);
    let (r, slices) = drain(&mut p, 97);
    assert_eq!(r, vec![Value::I32(19_900)]);
    assert!(slices > 1);
}

/// A global probe forces global mode: every frame runs the classic
/// instrumented interpreter even under register dispatch, and removing
/// the probe hands execution back to the register tier.
#[test]
fn global_probe_suppresses_register_tier_then_releases_it() {
    let (m, _) = sum_module();
    let mut p = Process::new(m, register(), &Linker::new()).unwrap();
    let count = Rc::new(Cell::new(0u64));
    let c = Rc::clone(&count);
    let id = p.add_global_probe(ClosureProbe::shared(move |_| c.set(c.get() + 1))).unwrap();
    let r = p.invoke_export("sum", &[Value::I32(30)]).unwrap();
    assert_eq!(r, vec![Value::I32(435)]);
    assert!(count.get() > 100, "global probe fired per instruction");
    p.remove_probe(id).unwrap();
    let fired = count.get();
    let r = p.invoke_export("sum", &[Value::I32(30)]).unwrap();
    assert_eq!(r, vec![Value::I32(435)]);
    assert_eq!(count.get(), fired, "register-tier rerun fires no global probes");
}
