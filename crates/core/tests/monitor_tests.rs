//! Tests of the monitor lifecycle API: attach/detach round-trips that
//! restore the zero-overhead baseline, batched probe insertion costing a
//! single invalidation pass, transactional attach, and structured reports.

use std::cell::Cell;
use std::rc::Rc;

use wizard_engine::store::Linker;
use wizard_engine::{
    CountProbe, EngineConfig, InstrumentationCtx, Monitor, ProbeBatch, ProbeError, Process, Report,
    Value,
};
use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::instr::InstrIter;
use wizard_wasm::types::ValType::I32;

/// `sum(0..n)` with a loop — enough instructions for meaningful probing.
fn sum_process(config: EngineConfig) -> Process {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let i = f.local(I32);
    let acc = f.local(I32);
    f.for_range(i, 0, |f| {
        f.local_get(acc).local_get(i).i32_add().local_set(acc);
    });
    f.local_get(acc);
    mb.add_func("sum", f);
    Process::new(mb.build().unwrap(), config, &Linker::new()).unwrap()
}

/// All instruction pcs of function 0.
fn pcs(p: &Process) -> Vec<u32> {
    InstrIter::new(&p.module().funcs[0].body.code).map(|i| i.unwrap().pc).collect()
}

/// A test monitor: one counter probe per instruction, batched, plus one
/// global probe.
#[derive(Default)]
struct EverythingMonitor {
    fires: Vec<Rc<Cell<u64>>>,
    global_fires: Rc<Cell<u64>>,
}

impl Monitor for EverythingMonitor {
    fn name(&self) -> &'static str {
        "everything"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let sites: Vec<(u32, u32)> = {
            let module = ctx.module();
            let n_imp = module.num_imported_funcs();
            let mut v = Vec::new();
            for (i, f) in module.funcs.iter().enumerate() {
                for item in InstrIter::new(&f.body.code) {
                    v.push((n_imp + i as u32, item.unwrap().pc));
                }
            }
            v
        };
        let mut batch = ProbeBatch::new();
        for (func, pc) in sites {
            let probe = CountProbe::new();
            self.fires.push(probe.cell());
            batch.add_local_val(func, pc, probe);
        }
        if ctx.config().mode != wizard_engine::ExecMode::JitOnly {
            let g = Rc::clone(&self.global_fires);
            batch.add_global_val(wizard_engine::ClosureProbe::new(move |_| {
                g.set(g.get() + 1);
            }));
        }
        ctx.apply_batch(batch)?;
        Ok(())
    }

    fn report(&self) -> Report {
        let mut r = Report::new(self.name());
        r.section("summary")
            .count("local fires", self.fires.iter().map(|c| c.get()).sum())
            .count("global fires", self.global_fires.get());
        r
    }
}

#[test]
fn detach_restores_zero_overhead_baseline_interp_and_jit() {
    for config in [EngineConfig::interpreter(), EngineConfig::jit(), EngineConfig::tiered()] {
        let mut p = sum_process(config);
        let m = p.attach_monitor(EverythingMonitor::default()).unwrap();
        assert!(p.probed_location_count() > 10);
        assert_eq!(p.monitor_count(), 1);

        let r1 = p.invoke_export("sum", &[Value::I32(10)]).unwrap();
        assert_eq!(r1, vec![Value::I32(45)]);
        let fires: u64 = m.borrow().fires.iter().map(|c| c.get()).sum();
        assert!(fires > 0, "monitor observed the run");
        let global_fires = m.borrow().global_fires.get();

        p.detach_monitor(m.handle()).unwrap();
        assert_eq!(p.probed_location_count(), 0, "no probed locations after detach");
        assert!(!p.in_global_mode(), "not in global mode after detach");
        assert_eq!(p.monitor_count(), 0);

        // The uninstrumented re-run computes the same thing and fires
        // nothing.
        let r2 = p.invoke_export("sum", &[Value::I32(10)]).unwrap();
        assert_eq!(r2, vec![Value::I32(45)]);
        let after: u64 = m.borrow().fires.iter().map(|c| c.get()).sum();
        assert_eq!(after, fires, "no fires after detach");
        assert_eq!(m.borrow().global_fires.get(), global_fires, "global probe gone too");
    }
}

#[test]
fn probe_byte_restored_after_detach() {
    let mut p = sum_process(EngineConfig::interpreter());
    let m = p.attach_monitor(EverythingMonitor::default()).unwrap();
    assert!(p.has_probe_byte(0, 0), "bytecode overwritten while attached");
    p.detach_monitor(m.handle()).unwrap();
    for pc in pcs(&p) {
        assert!(!p.has_probe_byte(0, pc), "original opcode restored at pc {pc}");
    }
}

#[test]
fn batch_of_k_probes_is_one_invalidation_pass() {
    let mut p = sum_process(EngineConfig::jit());
    let sites = pcs(&p);
    let k = sites.len();
    assert!(k > 10);

    // Individually: k passes.
    for pc in &sites {
        p.add_local_probe_val(0, *pc, CountProbe::new()).unwrap();
    }
    assert_eq!(p.stats().invalidation_passes, k as u64, "one pass per probe");

    // Batched: exactly one pass for all k insertions.
    let mut p = sum_process(EngineConfig::jit());
    let mut batch = ProbeBatch::new();
    for pc in &sites {
        batch.add_local_val(0, *pc, CountProbe::new());
    }
    assert_eq!(batch.len(), k);
    let ids = p.apply_batch(batch).unwrap();
    assert_eq!(ids.len(), k);
    assert_eq!(p.stats().invalidation_passes, 1, "k probes, one invalidation pass");
    assert_eq!(p.probed_location_count(), k);

    // Batched removal: also one pass, and back to baseline.
    let mut removal = ProbeBatch::new();
    for id in ids {
        removal.remove(id);
    }
    p.apply_batch(removal).unwrap();
    assert_eq!(p.stats().invalidation_passes, 2);
    assert_eq!(p.probed_location_count(), 0);
}

#[test]
fn batch_validation_is_atomic() {
    let mut p = sum_process(EngineConfig::interpreter());
    let mut batch = ProbeBatch::new();
    batch.add_local_val(0, 0, CountProbe::new());
    batch.add_local_val(0, 1_000_000, CountProbe::new()); // invalid pc
    let err = p.apply_batch(batch).unwrap_err();
    assert_eq!(err, ProbeError::InvalidPc(0, 1_000_000));
    assert_eq!(p.probed_location_count(), 0, "nothing applied from a bad batch");
    assert_eq!(p.stats().invalidation_passes, 0);
}

#[test]
fn failed_attach_rolls_back_inserted_probes() {
    struct FailsHalfway;
    impl Monitor for FailsHalfway {
        fn name(&self) -> &'static str {
            "fails-halfway"
        }
        fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
            ctx.add_local_probe_val(0, 0, CountProbe::new())?;
            ctx.add_local_probe_val(0, 1_000_000, CountProbe::new())?; // fails
            Ok(())
        }
        fn report(&self) -> Report {
            Report::new(self.name())
        }
    }

    let mut p = sum_process(EngineConfig::interpreter());
    let err = p.attach_monitor(FailsHalfway).unwrap_err();
    assert_eq!(err, ProbeError::InvalidPc(0, 1_000_000));
    assert_eq!(p.probed_location_count(), 0, "partial attach rolled back");
    assert_eq!(p.monitor_count(), 0);
    assert!(!p.has_probe_byte(0, 0));
}

#[test]
fn reattaching_same_instance_fails() {
    use std::cell::RefCell;
    let mut p = sum_process(EngineConfig::interpreter());
    let mon: Rc<RefCell<dyn Monitor>> = Rc::new(RefCell::new(EverythingMonitor::default()));
    let h = p.attach_monitor_dyn(Rc::clone(&mon)).unwrap();
    let sites = p.probed_location_count();
    assert_eq!(
        p.attach_monitor_dyn(Rc::clone(&mon)).unwrap_err(),
        ProbeError::MonitorAlreadyAttached
    );
    assert_eq!(p.probed_location_count(), sites, "no duplicate probes registered");
    // After detach, the same instance may be attached again.
    p.detach_monitor(h).unwrap();
    p.attach_monitor_dyn(mon).unwrap();
}

#[test]
fn detach_unknown_handle_fails() {
    let mut p = sum_process(EngineConfig::interpreter());
    let m = p.attach_monitor(EverythingMonitor::default()).unwrap();
    p.detach_monitor(m.handle()).unwrap();
    assert_eq!(p.detach_monitor(m.handle()).unwrap_err(), ProbeError::UnknownMonitor);
}

#[test]
fn monitors_detach_independently() {
    let mut p = sum_process(EngineConfig::interpreter());
    let a = p.attach_monitor(EverythingMonitor::default()).unwrap();
    let b = p.attach_monitor(EverythingMonitor::default()).unwrap();
    assert_eq!(p.monitor_count(), 2);
    let sites = p.probed_location_count();

    p.detach_monitor(a.handle()).unwrap();
    assert_eq!(p.monitor_count(), 1);
    // b's probes are still installed: every site had probes from both.
    assert_eq!(p.probed_location_count(), sites);
    assert!(p.in_global_mode(), "b's global probe still active");

    p.invoke_export("sum", &[Value::I32(5)]).unwrap();
    let a_fires: u64 = a.borrow().fires.iter().map(|c| c.get()).sum();
    let b_fires: u64 = b.borrow().fires.iter().map(|c| c.get()).sum();
    assert_eq!(a_fires, 0, "detached monitor sees nothing");
    assert!(b_fires > 0, "remaining monitor still observes");

    p.detach_monitor(b.handle()).unwrap();
    assert_eq!(p.probed_location_count(), 0);
    assert!(!p.in_global_mode());
}

#[test]
fn dyn_attach_and_reports() {
    use std::cell::RefCell;
    let mut p = sum_process(EngineConfig::interpreter());
    let mon: Rc<RefCell<dyn Monitor>> = Rc::new(RefCell::new(EverythingMonitor::default()));
    let h = p.attach_monitor_dyn(Rc::clone(&mon)).unwrap();
    p.invoke_export("sum", &[Value::I32(5)]).unwrap();

    let reports = p.monitor_reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].title, "everything");
    let summary = reports[0].get("summary").unwrap();
    assert!(summary.count_of("local fires").unwrap() > 0);
    assert!(summary.count_of("global fires").unwrap() > 0);
    assert_eq!(p.monitor_handles(), vec![h]);

    p.detach_monitor(h).unwrap();
    assert_eq!(p.monitor_reports().len(), 0);
}

#[test]
fn report_display_is_structured() {
    let mut p = sum_process(EngineConfig::interpreter());
    let m = p.attach_monitor(EverythingMonitor::default()).unwrap();
    p.invoke_export("sum", &[Value::I32(3)]).unwrap();
    let text = m.report().to_string();
    assert!(text.starts_with("=== everything ==="));
    assert!(text.contains("[summary]"));
    assert!(text.contains("local fires: "));
}
