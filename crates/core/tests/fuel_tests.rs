//! Fuel-metered (preemptible) execution: suspension/resume semantics and
//! the probe-consistency guarantee — a bounded run fires exactly the
//! probes of an unbounded run, for any slice size, in every tier, across
//! instrumentation changes while suspended.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use wizard_engine::store::Linker;
use wizard_engine::{
    CountProbe, EngineConfig, ExecMode, InstrumentationCtx, Monitor, ProbeBatch, ProbeError,
    Process, Report, RunOutcome, Value,
};
use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::Module;
use wizard_wasm::types::ValType::I32;
use wizard_wasm::validate::ModuleMeta;

/// `sum(n) = 0 + 1 + ... + n-1` via a loop (a tier-up candidate).
fn sum_module() -> (Module, ModuleMeta) {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let i = f.local(I32);
    let acc = f.local(I32);
    f.for_range(i, 0, |f| {
        f.local_get(acc).local_get(i).i32_add().local_set(acc);
    });
    f.local_get(acc);
    mb.add_func("sum", f);
    mb.build_with_meta().unwrap()
}

fn interp() -> EngineConfig {
    EngineConfig::interpreter()
}

fn tiered(threshold: u32) -> EngineConfig {
    EngineConfig::builder().mode(ExecMode::Tiered).tierup_threshold(threshold).build()
}

/// Drives a suspended process to completion, returning the results and the
/// number of resume slices it took.
fn drain(p: &mut Process, fuel: u64) -> (Vec<Value>, u64) {
    let mut slices = 0;
    loop {
        slices += 1;
        match p.resume(fuel).expect("no trap") {
            RunOutcome::Done(v) => return (v, slices),
            RunOutcome::OutOfFuel => {}
        }
    }
}

#[test]
fn bounded_run_completes_within_slice() {
    let (m, _) = sum_module();
    let mut p = Process::new(m, interp(), &Linker::new()).unwrap();
    let outcome = p.run_export_bounded("sum", &[Value::I32(3)], 1_000_000).unwrap();
    assert_eq!(outcome, RunOutcome::Done(vec![Value::I32(3)]));
    assert!(!p.is_suspended());
    assert_eq!(p.stats().suspensions, 0);
    assert!(p.stats().fuel_consumed > 0);
}

#[test]
fn bounded_run_suspends_and_resumes_with_same_result() {
    let (m, _) = sum_module();
    for slice in [1u64, 3, 7, 64] {
        let mut p = Process::new(m.clone(), interp(), &Linker::new()).unwrap();
        let first = p.run_export_bounded("sum", &[Value::I32(50)], slice).unwrap();
        assert_eq!(first, RunOutcome::OutOfFuel, "slice {slice} should preempt");
        assert!(p.is_suspended());
        let (r, slices) = drain(&mut p, slice);
        assert_eq!(r, vec![Value::I32(1225)]);
        assert!(slices > 1);
        assert_eq!(p.stats().suspensions, slices, "one suspension per non-final slice + start");
    }
}

/// §2.4 consistency under preemption: fuel exhaustion inside a
/// probe-instrumented loop neither skips nor double-fires probes — the
/// total count matches an unbounded run exactly, for every slice size.
#[test]
fn fuel_exhaustion_inside_probed_loop_keeps_probe_counts_exact() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];

    // Reference: unbounded run.
    let expected = {
        let mut p = Process::new(m.clone(), interp(), &Linker::new()).unwrap();
        let f = p.module().export_func("sum").unwrap();
        let probe = CountProbe::new();
        let cell = probe.cell();
        p.add_local_probe_val(f, loop_pc, probe).unwrap();
        p.invoke(f, &[Value::I32(40)]).unwrap();
        cell.get()
    };
    assert!(expected > 0);

    for slice in [1u64, 2, 5, 13] {
        let mut p = Process::new(m.clone(), interp(), &Linker::new()).unwrap();
        let f = p.module().export_func("sum").unwrap();
        let probe = CountProbe::new();
        let cell = probe.cell();
        p.add_local_probe_val(f, loop_pc, probe).unwrap();
        match p.run_bounded(f, &[Value::I32(40)], slice).unwrap() {
            RunOutcome::Done(_) => {}
            RunOutcome::OutOfFuel => {
                drain(&mut p, slice);
            }
        }
        assert_eq!(cell.get(), expected, "slice {slice} changed probe fires");
    }
}

/// A minimal lifecycle monitor counting loop-header executions.
struct LoopCounter {
    cell: Rc<Cell<u64>>,
    loop_pc: u32,
}

impl Monitor for LoopCounter {
    fn name(&self) -> &'static str {
        "loop-counter"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let func = ctx.module().export_func("sum").unwrap();
        let probe = CountProbe::new();
        self.cell = probe.cell();
        let mut batch = ProbeBatch::new();
        batch.add_local_val(func, self.loop_pc, probe);
        ctx.apply_batch(batch)?;
        Ok(())
    }

    fn report(&self) -> Report {
        let mut r = Report::new(self.name());
        r.section("summary").count("loop headers", self.cell.get());
        r
    }
}

/// Detaching a monitor while a bounded run is suspended: the resumed run
/// completes correctly, the monitor's probes stop firing at the detach
/// point, and the process is back at the zero-overhead baseline.
#[test]
fn resume_across_detach_monitor() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = Process::new(m, interp(), &Linker::new()).unwrap();
    let mon = p.attach_monitor(LoopCounter { cell: Rc::new(Cell::new(0)), loop_pc }).unwrap();

    let out = p.run_export_bounded("sum", &[Value::I32(60)], 25).unwrap();
    assert_eq!(out, RunOutcome::OutOfFuel);
    let fired_before_detach = mon.borrow().cell.get();
    assert!(fired_before_detach > 0, "the loop ran before preemption");

    // Detach mid-suspension: probes are removed in one batched pass.
    p.detach_monitor(mon.handle()).unwrap();
    assert_eq!(p.probed_location_count(), 0);

    let (r, _) = drain(&mut p, 25);
    assert_eq!(r, vec![Value::I32(1770)]);
    assert_eq!(
        mon.borrow().cell.get(),
        fired_before_detach,
        "no probe fires after detach, even though the run continued"
    );
}

/// Suspend while interpreting, tier up during the resumed slices: the
/// function gets hot mid-run, compiles, and the bounded run finishes in
/// the JIT with the same result and probe counts as an unbounded run.
#[test]
fn resume_tiers_up_from_interp_to_jit() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];

    let expected_fires = {
        let mut p = Process::new(m.clone(), tiered(10), &Linker::new()).unwrap();
        let f = p.module().export_func("sum").unwrap();
        let probe = CountProbe::new();
        let cell = probe.cell();
        p.add_local_probe_val(f, loop_pc, probe).unwrap();
        let r = p.invoke(f, &[Value::I32(200)]).unwrap();
        assert_eq!(r, vec![Value::I32(19_900)]);
        assert!(p.is_compiled(f), "reference run tiered up");
        cell.get()
    };

    let mut p = Process::new(m, tiered(10), &Linker::new()).unwrap();
    let f = p.module().export_func("sum").unwrap();
    let probe = CountProbe::new();
    let cell = probe.cell();
    p.add_local_probe_val(f, loop_pc, probe).unwrap();

    let out = p.run_bounded(f, &[Value::I32(200)], 5).unwrap();
    assert_eq!(out, RunOutcome::OutOfFuel);
    assert!(!p.is_compiled(f), "still cold at first suspension");
    let (r, _) = drain(&mut p, 50);
    assert_eq!(r, vec![Value::I32(19_900)]);
    assert!(p.is_compiled(f), "tiered up across suspensions");
    assert!(p.stats().tier_ups > 0);
    assert_eq!(cell.get(), expected_fires);
}

/// Suspend while a JIT frame is parked, invalidate its code by inserting a
/// probe, resume: the frame deoptimizes to the interpreter and the run
/// completes with consistent probe counts (JIT → interp resume).
#[test]
fn resume_deopts_suspended_jit_frame_after_instrumentation_change() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = Process::new(m, tiered(5), &Linker::new()).unwrap();
    let f = p.module().export_func("sum").unwrap();

    // Warm up so the bounded run starts straight in compiled code.
    p.invoke(f, &[Value::I32(100)]).unwrap();
    assert!(p.is_compiled(f));

    let out = p.run_bounded(f, &[Value::I32(300)], 40).unwrap();
    assert_eq!(out, RunOutcome::OutOfFuel);

    // Instrumentation change while suspended invalidates the parked
    // frame's compiled code.
    let probe = CountProbe::new();
    let cell = probe.cell();
    p.add_local_probe_val(f, loop_pc, probe).unwrap();
    assert!(!p.is_compiled(f));
    let deopts_before = p.stats().deopts;

    let (r, _) = drain(&mut p, 40);
    assert_eq!(r, vec![Value::I32(44_850)]);
    assert!(p.stats().deopts > deopts_before, "suspended JIT frame deoptimized");
    assert!(cell.get() > 0, "probe inserted mid-suspension fires on the remainder");
}

#[test]
fn trap_during_resumed_slice_clears_suspension() {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let i = f.local(I32);
    f.for_range(i, 0, |f| {
        f.nop();
    });
    // Loop, then trap.
    f.i32_const(1).i32_const(0).i32_div_s();
    mb.add_func("spin_then_trap", f);
    let m = mb.build().unwrap();

    let mut p = Process::new(m, interp(), &Linker::new()).unwrap();
    let out = p.run_export_bounded("spin_then_trap", &[Value::I32(50)], 10).unwrap();
    assert_eq!(out, RunOutcome::OutOfFuel);
    let err = loop {
        match p.resume(10) {
            Ok(RunOutcome::OutOfFuel) => {}
            Ok(RunOutcome::Done(_)) => panic!("must trap"),
            Err(t) => break t,
        }
    };
    assert_eq!(err, wizard_engine::Trap::DivisionByZero);
    assert!(!p.is_suspended(), "trap clears the suspension");

    // The trapping slice's own fuel counts as consumed: trap within the
    // *first* slice of a fresh run, whose fuel would otherwise be lost.
    let before = p.stats().fuel_consumed;
    let err = p.run_export_bounded("spin_then_trap", &[Value::I32(5)], 1_000_000).unwrap_err();
    assert_eq!(err, wizard_engine::Trap::DivisionByZero);
    assert!(p.stats().fuel_consumed > before, "trapping slice fuel was dropped");
    // The process is reusable after the trap.
    let out = p.run_export_bounded("spin_then_trap", &[Value::I32(0)], 2).unwrap();
    assert_eq!(out, RunOutcome::OutOfFuel);
    p.cancel_suspended();
}

/// Discarding a suspended run — by cancel or by dropping the process —
/// invalidates the parked frames' accessors (the FrameAccessor contract
/// survives preemption).
#[test]
fn discarded_suspension_invalidates_parked_accessors() {
    use wizard_engine::{ClosureProbe, FrameAccessor};

    let grab = |p: &mut Process, loop_pc: u32| {
        let f = p.module().export_func("sum").unwrap();
        let slot: Rc<RefCell<Option<FrameAccessor>>> = Rc::new(RefCell::new(None));
        let s = Rc::clone(&slot);
        p.add_local_probe(
            f,
            loop_pc,
            ClosureProbe::shared(move |ctx| {
                *s.borrow_mut() = Some(ctx.accessor());
            }),
        )
        .unwrap();
        assert_eq!(p.run_bounded(f, &[Value::I32(50)], 20).unwrap(), RunOutcome::OutOfFuel);
        let acc = slot.borrow().clone().expect("probe captured an accessor");
        assert!(acc.is_valid(), "frame is parked but alive");
        acc
    };

    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];

    // Cancelled explicitly.
    let mut p = Process::new(m.clone(), interp(), &Linker::new()).unwrap();
    let acc = grab(&mut p, loop_pc);
    p.cancel_suspended();
    assert!(!acc.is_valid(), "cancel invalidates parked accessors");

    // Process dropped while suspended.
    let mut p = Process::new(m, interp(), &Linker::new()).unwrap();
    let acc = grab(&mut p, loop_pc);
    drop(p);
    assert!(!acc.is_valid(), "drop invalidates parked accessors");
}

#[test]
fn cancel_discards_suspended_run() {
    let (m, _) = sum_module();
    let mut p = Process::new(m, interp(), &Linker::new()).unwrap();
    assert!(!p.cancel_suspended(), "nothing to cancel");
    let out = p.run_export_bounded("sum", &[Value::I32(100)], 7).unwrap();
    assert_eq!(out, RunOutcome::OutOfFuel);
    assert!(p.cancel_suspended());
    assert!(!p.is_suspended());
    // A fresh (unbounded) invocation works after cancelling.
    let r = p.invoke_export("sum", &[Value::I32(4)]).unwrap();
    assert_eq!(r, vec![Value::I32(6)]);
}

#[test]
#[should_panic(expected = "bounded run is suspended")]
fn invoke_while_suspended_panics() {
    let (m, _) = sum_module();
    let mut p = Process::new(m, interp(), &Linker::new()).unwrap();
    p.run_export_bounded("sum", &[Value::I32(100)], 3).unwrap();
    let _ = p.invoke_export("sum", &[Value::I32(1)]);
}

#[test]
fn zero_fuel_resume_makes_no_progress_but_is_safe() {
    let (m, _) = sum_module();
    let mut p = Process::new(m, interp(), &Linker::new()).unwrap();
    let out = p.run_export_bounded("sum", &[Value::I32(10)], 0).unwrap();
    assert_eq!(out, RunOutcome::OutOfFuel);
    assert_eq!(p.resume(0).unwrap(), RunOutcome::OutOfFuel);
    let (r, _) = drain(&mut p, 1000);
    assert_eq!(r, vec![Value::I32(45)]);
}

/// Fuel metering in a JIT-only configuration: suspension points land at
/// instruction boundaries in compiled code, and resume re-enters compiled
/// code directly (cip-based resume, no deopt when nothing changed).
#[test]
fn jit_only_bounded_run_resumes_in_compiled_code() {
    let (m, _) = sum_module();
    let mut p = Process::new(m, EngineConfig::jit(), &Linker::new()).unwrap();
    let out = p.run_export_bounded("sum", &[Value::I32(100)], 17).unwrap();
    assert_eq!(out, RunOutcome::OutOfFuel);
    let deopts_at_suspend = p.stats().deopts;
    let (r, _) = drain(&mut p, 17);
    assert_eq!(r, vec![Value::I32(4950)]);
    assert_eq!(p.stats().deopts, deopts_at_suspend, "pure JIT resume needs no deopt");
}
