//! Tiering and deoptimization edge cases: recompilation after probe
//! churn, deopt of suspended frames, global probes inserted from inside
//! JIT code, and the Coverage-style "asymptotically zero overhead" claim.

use std::cell::Cell;
use std::rc::Rc;

use wizard_engine::store::Linker;
use wizard_engine::{ClosureProbe, CountProbe, EngineConfig, ExecMode, Process, Value};
use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::Module;
use wizard_wasm::types::ValType::I32;
use wizard_wasm::validate::ModuleMeta;

fn sum_module() -> (Module, ModuleMeta) {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let i = f.local(I32);
    let acc = f.local(I32);
    f.for_range(i, 0, |f| {
        f.local_get(acc).local_get(i).i32_add().local_set(acc);
    });
    f.local_get(acc);
    mb.add_func("sum", f);
    mb.build_with_meta().unwrap()
}

fn tiered(threshold: u32) -> EngineConfig {
    EngineConfig::builder().mode(ExecMode::Tiered).tierup_threshold(threshold).build()
}

/// Probe insertion invalidates compiled code; the hot function is then
/// *recompiled* (with the probe baked in) rather than stuck interpreting.
#[test]
fn hot_function_recompiles_after_probe_insertion() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = Process::new(m, tiered(5), &Linker::new()).unwrap();
    let f = p.module().export_func("sum").unwrap();
    p.invoke(f, &[Value::I32(1000)]).unwrap();
    assert!(p.is_compiled(f));
    let compiles_before = p.stats().compiles;

    let probe = CountProbe::new();
    let cell = probe.cell();
    p.add_local_probe_val(f, loop_pc, probe).unwrap();
    assert!(!p.is_compiled(f), "insertion invalidates compiled code");

    let r = p.invoke(f, &[Value::I32(1000)]).unwrap();
    assert_eq!(r, vec![Value::I32(499_500)]);
    assert!(p.is_compiled(f), "hot function recompiled with the probe");
    assert!(p.stats().compiles > compiles_before);
    assert_eq!(cell.get(), 1001);
}

/// The Coverage claim (§3): after self-removing probes fire, the function
/// recompiles probe-free — execution asymptotically approaches zero
/// overhead (same compiled shape as never-instrumented code).
#[test]
fn self_removing_probes_leave_clean_compiled_code() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = Process::new(m.clone(), tiered(5), &Linker::new()).unwrap();
    let f = p.module().export_func("sum").unwrap();
    let id_cell: Rc<Cell<Option<wizard_engine::ProbeId>>> = Rc::new(Cell::new(None));
    let idc = Rc::clone(&id_cell);
    let id = p
        .add_local_probe(
            f,
            loop_pc,
            ClosureProbe::shared(move |ctx| {
                if let Some(id) = idc.get() {
                    ctx.remove_probe(id);
                }
            }),
        )
        .unwrap();
    id_cell.set(Some(id));
    p.invoke(f, &[Value::I32(1000)]).unwrap();
    assert!(!p.has_probe_byte(f, loop_pc));
    p.invoke(f, &[Value::I32(1000)]).unwrap();
    let listing = p.compiled_listing(f).unwrap();
    assert!(!listing.contains("probe"), "recompiled code carries no probe ops:\n{listing}");

    // And it matches the listing of a never-instrumented process.
    let mut clean = Process::new(m, tiered(5), &Linker::new()).unwrap();
    clean.invoke(f, &[Value::I32(1000)]).unwrap();
    assert_eq!(listing, clean.compiled_listing(f).unwrap(), "asymptotically zero overhead");
}

/// A global probe inserted from inside a JIT-executing local probe pulls
/// the frame back to the interpreter mid-loop, and removal resumes JIT.
#[test]
fn global_probe_inserted_from_jit_probe_deopts_current_frame() {
    let (m, meta) = sum_module();
    let loop_pc = meta.funcs[0].loop_headers[0];
    let mut p = Process::new(m, tiered(2), &Linker::new()).unwrap();
    let f = p.module().export_func("sum").unwrap();
    let global_fires = Rc::new(Cell::new(0u64));
    let inserted = Rc::new(Cell::new(false));
    let (gf, ins) = (Rc::clone(&global_fires), Rc::clone(&inserted));
    p.add_local_probe(
        f,
        loop_pc,
        ClosureProbe::shared(move |ctx| {
            // After 100 loop iterations (well into JIT execution), switch on a
            // global probe that runs for 50 instructions then removes itself.
            if !ins.get() && ctx.frame().local(1).unwrap().as_i32().unwrap() == 100 {
                ins.set(true);
                let gf2 = Rc::clone(&gf);
                let gid: Rc<Cell<Option<wizard_engine::ProbeId>>> = Rc::new(Cell::new(None));
                let gid2 = Rc::clone(&gid);
                let id = ctx.insert_global_probe(ClosureProbe::shared(move |gctx| {
                    gf2.set(gf2.get() + 1);
                    if gf2.get() >= 50 {
                        if let Some(id) = gid2.get() {
                            gctx.remove_probe(id);
                        }
                    }
                }));
                gid.set(Some(id));
            }
        }),
    )
    .unwrap();
    let r = p.invoke(f, &[Value::I32(1000)]).unwrap();
    assert_eq!(r, vec![Value::I32(499_500)], "mode transitions preserve semantics");
    assert_eq!(global_fires.get(), 50, "one-shot window fired exactly 50 times");
    assert!(!p.in_global_mode());
    assert!(p.stats().deopts >= 1, "the JIT frame deoptimized: {:?}", p.stats());
}

/// Suspended JIT frames (callers deeper in the stack) deoptimize when
/// resumed after instrumentation changed beneath them.
#[test]
fn suspended_caller_frames_deopt_on_return() {
    // outer(n) calls inner(n) in a loop; a probe inside inner instruments
    // OUTER mid-run, so outer's suspended JIT frame is stale on resume.
    let mut mb = ModuleBuilder::new();
    let inner = mb.declare_func("inner", &[I32], &[I32]);
    let mut fi = FuncBuilder::new(&[I32], &[I32]);
    let j = fi.local(I32);
    let acc = fi.local(I32);
    fi.for_range(j, 0, |f| {
        f.local_get(acc).i32_const(1).i32_add().local_set(acc);
    });
    fi.local_get(acc);
    mb.define_func(inner, fi);
    let mut fo = FuncBuilder::new(&[I32], &[I32]);
    let i = fo.local(I32);
    let total = fo.local(I32);
    fo.for_range(i, 0, |f| {
        f.local_get(total).i32_const(50).call(inner).i32_add().local_set(total);
    });
    fo.local_get(total);
    mb.add_func("outer", fo);
    mb.export("inner", wizard_wasm::types::ExternKind::Func, inner);
    let m = mb.build().unwrap();

    let mut p = Process::new(m, tiered(2), &Linker::new()).unwrap();
    let outer = p.module().export_func("outer").unwrap();
    let inner = p.module().export_func("inner").unwrap();
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    p.add_local_probe(
        inner,
        0,
        ClosureProbe::shared(move |ctx| {
            if !d.get() {
                d.set(true);
                // Instrument the CALLER's entry: outer's compiled code is now
                // stale while its frame sits suspended below us.
                let caller = ctx.frame().caller().map(|a| a.func()).unwrap_or(0);
                ctx.insert_local_probe(caller, 0, ClosureProbe::shared(|_| {}));
            }
        }),
    )
    .unwrap();
    let r = p.invoke(outer, &[Value::I32(100)]).unwrap();
    assert_eq!(r, vec![Value::I32(5000)]);
    assert!(p.stats().deopts >= 1, "stale caller deopted: {:?}", p.stats());
}

/// JIT-only mode compiles on first call and never interprets (except when
/// explicitly deoptimized by instrumentation churn), and OSR stats stay
/// zero.
#[test]
fn jit_only_mode_has_no_tier_ups() {
    let (m, _) = sum_module();
    let mut p = Process::new(m, EngineConfig::jit(), &Linker::new()).unwrap();
    let f = p.module().export_func("sum").unwrap();
    p.invoke(f, &[Value::I32(100)]).unwrap();
    let stats = p.stats();
    assert!(p.is_compiled(f));
    assert_eq!(stats.tier_ups, 0, "no OSR in JIT-only mode");
    assert_eq!(stats.deopts, 0);
    assert!(stats.compiles >= 1);
}

/// Interp-only mode never compiles, no matter how hot the code gets.
#[test]
fn interp_only_mode_never_compiles() {
    let (m, _) = sum_module();
    let mut p = Process::new(m, EngineConfig::interpreter(), &Linker::new()).unwrap();
    let f = p.module().export_func("sum").unwrap();
    p.invoke(f, &[Value::I32(100_000)]).unwrap();
    assert!(!p.is_compiled(f));
    assert_eq!(p.stats().compiles, 0);
}

/// Frame modification during deep recursion only deoptimizes the modified
/// frame; other activations of the same function keep running compiled
/// code (§4.6, footnote 15).
#[test]
fn frame_modification_deopts_only_target_frame() {
    let mut mb = ModuleBuilder::new();
    let fib = mb.declare_func("fib", &[I32], &[I32]);
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    f.local_get(0).i32_const(2).i32_lt_s().if_(wizard_wasm::types::BlockType::Value(I32));
    f.local_get(0);
    f.else_();
    f.local_get(0).i32_const(1).i32_sub().call(fib);
    f.local_get(0).i32_const(2).i32_sub().call(fib);
    f.i32_add();
    f.end();
    mb.define_func(fib, f);
    mb.export("fib", wizard_wasm::types::ExternKind::Func, fib);
    let m = mb.build().unwrap();
    let mut p = Process::new(m, tiered(2), &Linker::new()).unwrap();
    let f = p.module().export_func("fib").unwrap();
    let modified = Rc::new(Cell::new(0u32));
    let md = Rc::clone(&modified);
    p.add_local_probe(
        f,
        0,
        ClosureProbe::shared(move |ctx| {
            // Rewrite the argument of exactly one deep activation: 13 -> 1.
            let mut view = ctx.frame();
            if view.local(0).unwrap().as_i32().unwrap() == 13 && md.get() == 0 {
                md.set(1);
                view.set_local(0, Value::I32(1)).unwrap();
            }
        }),
    )
    .unwrap();
    let r = p.invoke(f, &[Value::I32(15)]).unwrap();
    // fib(15) with one fib(13) activation replaced by fib(1)=1:
    // fib(15) = fib(14) + fib(13); the first-reached 13-activation is the
    // fib(14)->fib(13) one, so result = (fib(13)+1) + fib(13) where the
    // remaining computation is unmodified: 233+1+233 = ... compute:
    // unperturbed fib: 13->233, 14->377, 15->610. Modified:
    // fib(14) = fib(13_mod=1) + fib(12)=144 => 145; fib(15) = 145 + 233 = 378.
    assert_eq!(r, vec![Value::I32(378)]);
    assert_eq!(modified.get(), 1);
}
