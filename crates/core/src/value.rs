//! Runtime value representation.
//!
//! Like a real engine, execution state is *virtualized*: the unified
//! locals+operand stack holds untagged 64-bit slots (validation guarantees
//! type soundness), and typed [`Value`]s appear only at API boundaries —
//! host calls, invocation arguments/results, and the FrameAccessor.

use wizard_wasm::types::ValType;

/// A typed WebAssembly value, used at API boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Value {
    /// The type of this value.
    pub fn ty(&self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
        }
    }

    /// Encodes this value into an untagged stack slot.
    pub fn to_slot(self) -> Slot {
        match self {
            Value::I32(v) => Slot(v as u32 as u64),
            Value::I64(v) => Slot(v as u64),
            Value::F32(v) => Slot(u64::from(v.to_bits())),
            Value::F64(v) => Slot(v.to_bits()),
        }
    }

    /// Decodes a slot with a known type.
    pub fn from_slot(slot: Slot, ty: ValType) -> Value {
        match ty {
            ValType::I32 => Value::I32(slot.i32()),
            ValType::I64 => Value::I64(slot.i64()),
            ValType::F32 => Value::F32(slot.f32()),
            ValType::F64 => Value::F64(slot.f64()),
        }
    }

    /// The zero value of type `ty`.
    pub fn zero(ty: ValType) -> Value {
        match ty {
            ValType::I32 => Value::I32(0),
            ValType::I64 => Value::I64(0),
            ValType::F32 => Value::F32(0.0),
            ValType::F64 => Value::F64(0.0),
        }
    }

    /// Extracts an `i32`, if that is the payload type.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::I32(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an `i64`, if that is the payload type.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an `f32`, if that is the payload type.
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Value::F32(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an `f64`, if that is the payload type.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }
}

impl core::fmt::Display for Value {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}:i32"),
            Value::I64(v) => write!(f, "{v}:i64"),
            Value::F32(v) => write!(f, "{v}:f32"),
            Value::F64(v) => write!(f, "{v}:f64"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

/// An untagged 64-bit stack slot — the engine's internal value currency.
///
/// Operand-stack entries observed through the FrameAccessor are returned as
/// slots because the engine does not track operand types at runtime; the
/// observing monitor knows the type from the instruction context (exactly as
/// in the paper's branch and memory monitors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Slot(pub u64);

impl Slot {
    /// Reads the slot as `i32`.
    pub fn i32(self) -> i32 {
        self.0 as u32 as i32
    }

    /// Reads the slot as `u32`.
    pub fn u32(self) -> u32 {
        self.0 as u32
    }

    /// Reads the slot as `i64`.
    pub fn i64(self) -> i64 {
        self.0 as i64
    }

    /// Reads the slot as `u64`.
    pub fn u64(self) -> u64 {
        self.0
    }

    /// Reads the slot as `f32`.
    pub fn f32(self) -> f32 {
        f32::from_bits(self.0 as u32)
    }

    /// Reads the slot as `f64`.
    pub fn f64(self) -> f64 {
        f64::from_bits(self.0)
    }

    /// Creates a slot from an `i32`.
    pub fn from_i32(v: i32) -> Slot {
        Slot(v as u32 as u64)
    }

    /// Creates a slot from an `i64`.
    pub fn from_i64(v: i64) -> Slot {
        Slot(v as u64)
    }

    /// Creates a slot from a `u32`.
    pub fn from_u32(v: u32) -> Slot {
        Slot(u64::from(v))
    }

    /// Creates a slot from a `u64`.
    pub fn from_u64(v: u64) -> Slot {
        Slot(v)
    }

    /// Creates a slot from an `f32`.
    pub fn from_f32(v: f32) -> Slot {
        Slot(u64::from(v.to_bits()))
    }

    /// Creates a slot from an `f64`.
    pub fn from_f64(v: f64) -> Slot {
        Slot(v.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_slot_roundtrip() {
        let cases = [Value::I32(-5), Value::I64(i64::MIN), Value::F32(3.5), Value::F64(-0.0)];
        for v in cases {
            let s = v.to_slot();
            assert_eq!(Value::from_slot(s, v.ty()), v);
        }
    }

    #[test]
    fn i32_slot_is_zero_extended() {
        let s = Value::I32(-1).to_slot();
        assert_eq!(s.0, 0xffff_ffff);
        assert_eq!(s.i32(), -1);
        assert_eq!(s.u32(), u32::MAX);
    }

    #[test]
    fn nan_bits_preserved() {
        let bits = 0x7ff8_0000_0000_0001u64;
        let s = Slot(bits);
        assert!(s.f64().is_nan());
        assert_eq!(Slot::from_f64(s.f64()).0, bits);
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero(ValType::I32), Value::I32(0));
        assert_eq!(Value::zero(ValType::F64), Value::F64(0.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::I32(7).to_string(), "7:i32");
        assert_eq!(Value::F64(1.5).to_string(), "1.5:f64");
    }
}
