//! Shared module artifacts: validate and lower **once**, instantiate many
//! times.
//!
//! A [`ModuleArtifact`] is everything about a module that is independent of
//! any particular process: the validated [`Module`], its validation
//! metadata, and the per-function lowered code
//! ([`Lowered`]) plus the probe-free baseline JIT
//! code, both built lazily exactly once. The whole structure is immutable
//! and `Send + Sync`, so a fleet runner holds it in an `Arc` and every
//! worker thread instantiates processes from the same artifact —
//! [`Process::instantiate`](crate::Process::instantiate) skips
//! re-validation, re-lowering, and re-compilation entirely.
//!
//! The paper's non-intrusiveness guarantee is preserved per process by the
//! **copy-on-write instrumentation overlay**
//! ([`FuncOverlay`](crate::code::FuncOverlay)): uninstrumented processes
//! execute directly from the artifact's shared lowered slots, and the
//! first probe a process installs in a function copies just that
//! function's bytes and lowered slots into process-local storage. Sibling
//! processes of the same artifact never observe the probe.
//!
//! ```
//! use std::sync::Arc;
//! use wizard_engine::store::Linker;
//! use wizard_engine::{EngineConfig, ModuleArtifact, Process, Value};
//! use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
//! use wizard_wasm::types::ValType::I32;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let mut f = FuncBuilder::new(&[I32], &[I32]);
//! f.local_get(0).i32_const(1).i32_add();
//! mb.add_func("inc", f);
//!
//! // Validate + lower once...
//! let artifact = Arc::new(ModuleArtifact::new(mb.build()?)?);
//! // ...instantiate twice: both processes share the artifact's code.
//! let mut p1 = Process::instantiate(Arc::clone(&artifact), EngineConfig::default(), &Linker::new())?;
//! let mut p2 = Process::instantiate(Arc::clone(&artifact), EngineConfig::default(), &Linker::new())?;
//! assert_eq!(p1.invoke_export("inc", &[Value::I32(1)])?, vec![Value::I32(2)]);
//! assert_eq!(p2.invoke_export("inc", &[Value::I32(41)])?, vec![Value::I32(42)]);
//! # Ok(())
//! # }
//! ```

use std::sync::{Arc, OnceLock};

use wizard_wasm::module::{FuncIdx, Module};
use wizard_wasm::types::{FuncType, ValType};
use wizard_wasm::validate::{validate, FuncMeta, ValidateError};

use crate::jit::CompiledCode;
use crate::lowered::Lowered;
use crate::regir::RegModule;

/// The immutable, shared per-function half of the code pipeline: pristine
/// bytecode, validation metadata, and the lazily-built-once lowered form
/// and probe-free baseline JIT code.
///
/// Everything mutable about a function at runtime — probe bytes, the
/// copy-on-write op stream, compiled-code slots, hotness — lives in the
/// per-process [`FuncOverlay`](crate::code::FuncOverlay) instead.
#[derive(Debug)]
pub struct FuncArtifact {
    /// Global function index.
    pub func: FuncIdx,
    /// Pristine bytecode (never mutated; probe bytes land on the overlay).
    pub bytes: Arc<[u8]>,
    /// Branch side table and other validation metadata.
    pub meta: Arc<FuncMeta>,
    /// Types of params followed by declared locals.
    pub local_types: Arc<[ValType]>,
    /// Number of parameters.
    pub num_params: u32,
    /// Number of results (0 or 1).
    pub num_results: u32,
    /// The shared lowered form, built on first demand by whichever process
    /// needs it first and then shared by all.
    lowered: OnceLock<Arc<Lowered>>,
    /// Probe-free (instrumentation version 0) compiled code, shareable
    /// across processes until a probe lands; see
    /// [`FuncArtifact::baseline_compiled`].
    baseline: OnceLock<Arc<CompiledCode>>,
    /// Probe-free compiled code built from the **register form** (see
    /// [`crate::regir`]); used instead of `baseline` when the engine runs
    /// with the register dispatch selector.
    baseline_reg: OnceLock<Arc<CompiledCode>>,
}

impl FuncArtifact {
    /// The shared lowered form, lowering now if no process has demanded it
    /// yet.
    pub fn lowered(&self) -> &Arc<Lowered> {
        self.lowered_init().0
    }

    /// As [`FuncArtifact::lowered`], additionally reporting whether *this*
    /// call performed the lowering — the hook
    /// [`EngineStats::functions_lowered`](crate::EngineStats) counting runs
    /// through.
    pub(crate) fn lowered_init(&self) -> (&Arc<Lowered>, bool) {
        let mut lowered_now = false;
        let low = self.lowered.get_or_init(|| {
            lowered_now = true;
            Arc::new(Lowered::lower(&self.bytes, &self.meta))
        });
        (low, lowered_now)
    }

    /// The probe-free baseline JIT code (compiled at instrumentation
    /// version 0), compiling now if no process has demanded it yet; the
    /// flag reports whether *this* call performed the compilation.
    ///
    /// Baseline code contains no probe sites, so it is identical for every
    /// process and every engine configuration — one compilation serves the
    /// whole fleet until a process instruments the function, at which
    /// point that process compiles privately against its own probe list.
    pub(crate) fn baseline_compiled(&self) -> (&Arc<CompiledCode>, bool) {
        let mut compiled_now = false;
        let code = self.baseline.get_or_init(|| {
            compiled_now = true;
            Arc::new(crate::jit::compile_baseline(self.func, self.lowered()))
        });
        (code, compiled_now)
    }

    /// As [`FuncArtifact::baseline_compiled`], but compiling from the
    /// function's register form; probe-free, so equally shareable. The
    /// caller supplies the register form (it lives on the module-level
    /// [`RegModule`], not on this per-function artifact).
    pub(crate) fn baseline_reg_compiled(
        &self,
        rf: &Arc<crate::regir::RegFunc>,
    ) -> (&Arc<CompiledCode>, bool) {
        let mut compiled_now = false;
        let code = self.baseline_reg.get_or_init(|| {
            compiled_now = true;
            Arc::new(crate::jit::compile_baseline_reg(self.func, Arc::clone(rf)))
        });
        (code, compiled_now)
    }

    /// `true` once the shared lowered form has been built.
    pub fn is_lowered(&self) -> bool {
        self.lowered.get().is_some()
    }

    /// Total local slots (params + declared locals).
    pub fn num_slots(&self) -> u32 {
        self.local_types.len() as u32
    }

    /// Bytes of shared code this artifact holds for the function (pristine
    /// bytecode plus the lowered form, if built).
    pub fn code_size_bytes(&self) -> usize {
        self.bytes.len() + self.lowered.get().map_or(0, |l| l.size_bytes())
    }
}

/// A validated module plus its shared, immutable code pipeline — build it
/// once, `Arc`-share it, and instantiate any number of [`Process`]es from
/// it on any thread ([`Process::instantiate`]).
///
/// [`Process`]: crate::Process
/// [`Process::instantiate`]: crate::Process::instantiate
#[derive(Debug)]
pub struct ModuleArtifact {
    module: Arc<Module>,
    /// Per-local-function artifacts, indexed by local function index.
    funcs: Vec<Arc<FuncArtifact>>,
    /// Function types across the whole index space (imports first).
    func_types: Arc<[FuncType]>,
    /// The module's register form ([`crate::regir`]), built on first
    /// demand by a register-dispatch process and then shared by all.
    reg: OnceLock<Arc<RegModule>>,
}

impl ModuleArtifact {
    /// Validates `module` and builds its shared artifact. This is the
    /// *only* place validation happens — instantiation from an artifact
    /// never re-validates.
    ///
    /// # Errors
    ///
    /// Returns the [`ValidateError`] if the module is invalid.
    pub fn new(module: Module) -> Result<ModuleArtifact, ValidateError> {
        let meta = validate(&module)?;
        let n_imp = module.num_imported_funcs();
        let mut func_types = Vec::with_capacity(module.num_funcs() as usize);
        for i in 0..module.num_funcs() {
            func_types.push(module.func_type(i).expect("validated").clone());
        }
        let mut funcs = Vec::with_capacity(module.funcs.len());
        for (i, (f, m)) in module.funcs.iter().zip(meta.funcs.iter()).enumerate() {
            let ty = &module.types[f.type_idx as usize];
            let mut local_types: Vec<ValType> = ty.params.clone();
            local_types.extend(f.body.flat_locals());
            funcs.push(Arc::new(FuncArtifact {
                func: n_imp + i as u32,
                bytes: Arc::from(f.body.code.as_slice()),
                meta: Arc::new(m.clone()),
                local_types: Arc::from(local_types.into_boxed_slice()),
                num_params: ty.params.len() as u32,
                num_results: ty.results.len() as u32,
                lowered: OnceLock::new(),
                baseline: OnceLock::new(),
                baseline_reg: OnceLock::new(),
            }));
        }
        Ok(ModuleArtifact {
            module: Arc::new(module),
            funcs,
            func_types: func_types.into(),
            reg: OnceLock::new(),
        })
    }

    /// The validated module.
    pub fn module(&self) -> &Arc<Module> {
        &self.module
    }

    /// Function types across the whole index space (imports first).
    pub fn func_types(&self) -> &Arc<[FuncType]> {
        &self.func_types
    }

    /// The per-function artifacts, indexed by *local* function index.
    pub fn funcs(&self) -> &[Arc<FuncArtifact>] {
        &self.funcs
    }

    /// Number of locally-defined functions.
    pub fn num_local_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// The module's register form, lowering every function now if no
    /// register-dispatch process has demanded it yet.
    pub fn reg_module(&self) -> &Arc<RegModule> {
        self.reg_module_init().0
    }

    /// As [`ModuleArtifact::reg_module`], additionally reporting whether
    /// *this* call performed the lowering (for the engine's stats).
    pub(crate) fn reg_module_init(&self) -> (&Arc<RegModule>, bool) {
        let mut built_now = false;
        let reg = self.reg.get_or_init(|| {
            built_now = true;
            Arc::new(crate::regir::build_module(self))
        });
        (reg, built_now)
    }

    /// The register form if some process already demanded it, without
    /// building it — lets validators and stats stay free for engines that
    /// never select register dispatch.
    pub fn reg_module_built(&self) -> Option<&Arc<RegModule>> {
        self.reg.get()
    }

    /// Forces every function's lowered form to be built now. Optional —
    /// lowering is lazy and shared either way — but a fleet runner can
    /// call this once to take the whole decode tax off the serving path.
    pub fn lower_all(&self) {
        for f in &self.funcs {
            let _ = f.lowered();
        }
    }

    /// Bytes of shared code the artifact currently holds (pristine
    /// bytecode plus every lowered form built so far) — the per-process
    /// memory each additional sibling instantiation does *not* pay.
    pub fn code_size_bytes(&self) -> usize {
        self.funcs.iter().map(|f| f.code_size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn artifact() -> ModuleArtifact {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(1).i32_add();
        mb.add_func("inc", f);
        ModuleArtifact::new(mb.build().unwrap()).unwrap()
    }

    #[test]
    fn artifact_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModuleArtifact>();
        assert_send_sync::<FuncArtifact>();
    }

    #[test]
    fn lowering_is_lazy_shared_and_counted_once() {
        let a = artifact();
        assert!(!a.funcs()[0].is_lowered());
        let (_, first) = a.funcs()[0].lowered_init();
        assert!(first, "first demand lowers");
        let (low1, again) = a.funcs()[0].lowered_init();
        assert!(!again, "second demand shares");
        let low2 = a.funcs()[0].lowered();
        assert_eq!(low1.ops_addr(), low2.ops_addr());
        assert!(a.funcs()[0].code_size_bytes() > a.funcs()[0].bytes.len());
    }

    #[test]
    fn invalid_module_fails_at_artifact_build() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0);
        mb.add_func("id", f);
        let mut m = mb.build().unwrap();
        // Corrupt the body behind the builder's back: i32.add underflows.
        m.funcs[0].body.code = vec![wizard_wasm::opcodes::I32_ADD, wizard_wasm::opcodes::END];
        assert!(ModuleArtifact::new(m).is_err());
    }

    #[test]
    fn lower_all_prewarms_every_function() {
        let a = artifact();
        a.lower_all();
        assert!(a.funcs().iter().all(|f| f.is_lowered()));
    }

    #[test]
    fn baseline_code_compiles_once_and_is_shared() {
        let a = artifact();
        let (_, first) = a.funcs()[0].baseline_compiled();
        assert!(first);
        let (c1, again) = a.funcs()[0].baseline_compiled();
        assert!(!again);
        assert_eq!(c1.version, 0);
    }
}
