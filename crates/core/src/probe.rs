//! The probe framework: the paper's core instrumentation primitive.
//!
//! A [`Probe`] is M-code — monitor logic executed by the engine when an
//! event fires. *Global probes* fire before every instruction; *local
//! probes* fire before a specific `(func, pc)` location. The (internal)
//! probe registry maintains probe lists with the paper's §2.4.1
//! consistency guarantees:
//!
//! * **insertion order is firing order** — lists are ordered;
//! * **deferred inserts on same event** — the list for a firing event is
//!   snapshotted before dispatch (lists are copy-on-write);
//! * **deferred removal on same event** — removals requested while firing
//!   are queued and applied when the event's dispatch completes.

use std::cell::Cell;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use wizard_wasm::module::FuncIdx;

use crate::exec::ProbeCtx;
use crate::value::Slot;

/// A code location: function index and byte offset within the body.
///
/// Together with the module (one per process) this is the paper's
/// `(module, funcdecl, pc)` location triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Location {
    /// Function index.
    pub func: FuncIdx,
    /// Byte offset of the instruction within the function body.
    pub pc: u32,
}

impl core::fmt::Display for Location {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "func[{}]+{}", self.func, self.pc)
    }
}

/// Classifies a probe for JIT intrinsification (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// Arbitrary M-code: requires a full state checkpoint and a runtime
    /// call when compiled.
    Generic,
    /// A pure counter: the JIT inlines the increment, no call at all.
    Count,
    /// M-code that only needs the top-of-stack operand: the JIT passes the
    /// value directly, skipping FrameAccessor reification.
    Operand,
}

/// M-code attached to an execution event.
///
/// Implementations are free-form; the engine calls [`Probe::fire`] with a
/// [`ProbeCtx`] granting access to the program location, the
/// [`FrameAccessor`](crate::frame::FrameAccessor) machinery, and dynamic
/// probe insertion/removal.
pub trait Probe: 'static {
    /// Fires the probe before the instruction at `ctx.location()` executes.
    fn fire(&mut self, ctx: &mut ProbeCtx<'_, '_>);

    /// The intrinsification class of this probe. Defaults to
    /// [`ProbeKind::Generic`]; probes overriding this must uphold the
    /// corresponding contract ([`Probe::count_cell`] / [`Probe::fire_operand`]).
    fn kind(&self) -> ProbeKind {
        ProbeKind::Generic
    }

    /// For [`ProbeKind::Count`] probes: the counter cell the JIT increments
    /// inline.
    fn count_cell(&self) -> Option<Rc<Cell<u64>>> {
        None
    }

    /// For [`ProbeKind::Operand`] probes: fired with the top-of-stack slot
    /// directly from compiled code.
    fn fire_operand(&mut self, loc: Location, top: Slot) {
        let _ = (loc, top);
    }
}

/// Shared handle to a probe.
pub type ProbeRef = Rc<RefCell<dyn Probe>>;

/// Identifier of an inserted probe, used for removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProbeId(pub(crate) u64);

/// A counter probe: increments a shared counter each time its location is
/// reached. Fully inlined by the JIT when count intrinsification is on
/// (paper Figure 2, right column).
#[derive(Debug, Clone, Default)]
pub struct CountProbe {
    cell: Rc<Cell<u64>>,
}

impl CountProbe {
    /// Creates a counter probe with a fresh counter.
    pub fn new() -> CountProbe {
        CountProbe::default()
    }

    /// The current count.
    pub fn count(&self) -> u64 {
        self.cell.get()
    }

    /// A shared handle to the counter (e.g. for reports).
    pub fn cell(&self) -> Rc<Cell<u64>> {
        Rc::clone(&self.cell)
    }
}

impl Probe for CountProbe {
    fn fire(&mut self, _ctx: &mut ProbeCtx<'_, '_>) {
        self.cell.set(self.cell.get() + 1);
    }

    fn kind(&self) -> ProbeKind {
        ProbeKind::Count
    }

    fn count_cell(&self) -> Option<Rc<Cell<u64>>> {
        Some(Rc::clone(&self.cell))
    }
}

/// A probe with an empty `fire` body. Used to measure pure probe-dispatch
/// overhead (T_PD) in the paper's Figure-5 decomposition.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyProbe;

impl Probe for EmptyProbe {
    fn fire(&mut self, _ctx: &mut ProbeCtx<'_, '_>) {}
}

/// An empty probe that *claims* operand intrinsifiability — the intrinsified
/// analogue of [`EmptyProbe`] for decomposition experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyOperandProbe;

impl Probe for EmptyOperandProbe {
    fn fire(&mut self, _ctx: &mut ProbeCtx<'_, '_>) {}

    fn kind(&self) -> ProbeKind {
        ProbeKind::Operand
    }

    fn fire_operand(&mut self, _loc: Location, _top: Slot) {}
}

/// Wraps a closure as a generic probe.
pub struct ClosureProbe<F: FnMut(&mut ProbeCtx<'_, '_>) + 'static> {
    f: F,
}

impl<F: FnMut(&mut ProbeCtx<'_, '_>) + 'static> ClosureProbe<F> {
    /// Creates a probe from a closure.
    pub fn new(f: F) -> ClosureProbe<F> {
        ClosureProbe { f }
    }

    /// Boxes a closure into a [`ProbeRef`].
    pub fn shared(f: F) -> ProbeRef {
        Rc::new(RefCell::new(ClosureProbe { f }))
    }
}

impl<F: FnMut(&mut ProbeCtx<'_, '_>) + 'static> Probe for ClosureProbe<F> {
    fn fire(&mut self, ctx: &mut ProbeCtx<'_, '_>) {
        (self.f)(ctx);
    }
}

impl<F: FnMut(&mut ProbeCtx<'_, '_>) + 'static> core::fmt::Debug for ClosureProbe<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("ClosureProbe")
    }
}

/// A set of probe insertions and removals applied in a single
/// invalidation/deoptimization pass.
///
/// Inserting N probes one at a time pays N code-invalidation passes
/// (compiled code is specialized to the probe list, paper §4.5). Monitors
/// instrumenting many sites — hotness and coverage probe *every*
/// instruction — batch their insertions instead and commit them through
/// [`Process::apply_batch`](crate::Process::apply_batch), which touches
/// each affected function's code exactly once and counts as one
/// invalidation pass in
/// [`EngineStats::invalidation_passes`](crate::EngineStats).
///
/// Batches are validated atomically: if any operation names an invalid
/// location, nothing is applied. Removals of already-removed probe ids are
/// skipped silently, which makes detach-style cleanup idempotent.
#[derive(Default)]
pub struct ProbeBatch {
    pub(crate) ops: Vec<BatchOp>,
}

pub(crate) enum BatchOp {
    Local(FuncIdx, u32, ProbeRef),
    Global(ProbeRef),
    Remove(ProbeId),
}

impl ProbeBatch {
    /// Creates an empty batch.
    pub fn new() -> ProbeBatch {
        ProbeBatch::default()
    }

    /// Queues insertion of a local probe at `(func, pc)`.
    pub fn add_local(&mut self, func: FuncIdx, pc: u32, probe: ProbeRef) -> &mut ProbeBatch {
        self.ops.push(BatchOp::Local(func, pc, probe));
        self
    }

    /// Queues insertion of an owned local probe value.
    pub fn add_local_val(&mut self, func: FuncIdx, pc: u32, probe: impl Probe) -> &mut ProbeBatch {
        self.add_local(func, pc, Rc::new(RefCell::new(probe)))
    }

    /// Queues insertion of a global probe.
    pub fn add_global(&mut self, probe: ProbeRef) -> &mut ProbeBatch {
        self.ops.push(BatchOp::Global(probe));
        self
    }

    /// Queues insertion of an owned global probe value.
    pub fn add_global_val(&mut self, probe: impl Probe) -> &mut ProbeBatch {
        self.add_global(Rc::new(RefCell::new(probe)))
    }

    /// Queues removal of a probe. Removing an id that is no longer
    /// installed is a no-op.
    pub fn remove(&mut self, id: ProbeId) -> &mut ProbeBatch {
        self.ops.push(BatchOp::Remove(id));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl core::fmt::Debug for ProbeBatch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ProbeBatch").field("ops", &self.ops.len()).finish()
    }
}

/// An ordered probe list entry.
pub(crate) type Entry = (ProbeId, ProbeRef);

/// Where a probe is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Site {
    Global,
    Local(FuncIdx, u32),
}

/// A deferred instrumentation request, queued while an event is firing.
pub(crate) enum Pending {
    InsertGlobal(ProbeId, ProbeRef),
    InsertLocal(ProbeId, FuncIdx, u32, ProbeRef),
    Remove(ProbeId),
}

/// Maintains global and local probe lists with consistent snapshots.
#[derive(Default)]
pub(crate) struct ProbeRegistry {
    next_id: u64,
    global: Rc<Vec<Entry>>,
    local: HashMap<(FuncIdx, u32), Rc<Vec<Entry>>>,
    sites: HashMap<ProbeId, Site>,
    pub(crate) pending: Vec<Pending>,
    /// Nonzero while an event's probe list is being dispatched.
    pub(crate) firing: u32,
}

impl ProbeRegistry {
    pub fn fresh_id(&mut self) -> ProbeId {
        self.next_id += 1;
        ProbeId(self.next_id)
    }

    pub fn has_global(&self) -> bool {
        !self.global.is_empty()
    }

    /// Snapshot of the global probe list (cheap Rc clone).
    pub fn globals(&self) -> Rc<Vec<Entry>> {
        Rc::clone(&self.global)
    }

    /// Snapshot of the local probe list at a location.
    pub fn locals_at(&self, func: FuncIdx, pc: u32) -> Option<Rc<Vec<Entry>>> {
        self.local.get(&(func, pc)).map(Rc::clone)
    }

    /// Inserts a global probe (immediate; callers must be outside firing or
    /// have routed through the pending queue).
    pub fn insert_global(&mut self, id: ProbeId, probe: ProbeRef) {
        let mut list = (*self.global).clone();
        list.push((id, probe));
        self.global = Rc::new(list);
        self.sites.insert(id, Site::Global);
    }

    /// Inserts a local probe; returns `true` if this created the site (the
    /// caller must then install the probe byte).
    pub fn insert_local(&mut self, id: ProbeId, func: FuncIdx, pc: u32, probe: ProbeRef) -> bool {
        let entry = self.local.entry((func, pc));
        let created = matches!(entry, std::collections::hash_map::Entry::Vacant(_));
        let list = entry.or_insert_with(|| Rc::new(Vec::new()));
        let mut new_list = (**list).clone();
        new_list.push((id, probe));
        *list = Rc::new(new_list);
        self.sites.insert(id, Site::Local(func, pc));
        created
    }

    /// Removes a probe by id; returns its site and whether the site became
    /// empty (the caller must then restore the probe byte).
    pub fn remove(&mut self, id: ProbeId) -> Option<(Site, bool)> {
        let site = self.sites.remove(&id)?;
        match site {
            Site::Global => {
                let mut list = (*self.global).clone();
                list.retain(|(pid, _)| *pid != id);
                let emptied = list.is_empty();
                self.global = Rc::new(list);
                Some((site, emptied))
            }
            Site::Local(f, pc) => {
                let Some(list) = self.local.get_mut(&(f, pc)) else {
                    return Some((site, false));
                };
                let mut new_list = (**list).clone();
                new_list.retain(|(pid, _)| *pid != id);
                let emptied = new_list.is_empty();
                if emptied {
                    self.local.remove(&(f, pc));
                } else {
                    *list = Rc::new(new_list);
                }
                Some((site, emptied))
            }
        }
    }

    /// Number of distinct probed local sites (for diagnostics).
    pub fn local_site_count(&self) -> usize {
        self.local.len()
    }

    /// `true` if a probe with this id is installed.
    pub fn contains(&self, id: ProbeId) -> bool {
        self.sites.contains_key(&id)
    }
}

impl core::fmt::Debug for ProbeRegistry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ProbeRegistry")
            .field("global_probes", &self.global.len())
            .field("local_sites", &self.local.len())
            .field("firing", &self.firing)
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_ref() -> ProbeRef {
        Rc::new(RefCell::new(EmptyProbe))
    }

    #[test]
    fn insertion_order_is_list_order() {
        let mut r = ProbeRegistry::default();
        let a = r.fresh_id();
        let b = r.fresh_id();
        r.insert_local(a, 0, 4, empty_ref());
        r.insert_local(b, 0, 4, empty_ref());
        let list = r.locals_at(0, 4).unwrap();
        assert_eq!(list[0].0, a);
        assert_eq!(list[1].0, b);
    }

    #[test]
    fn snapshot_is_isolated_from_mutation() {
        let mut r = ProbeRegistry::default();
        let a = r.fresh_id();
        r.insert_local(a, 0, 4, empty_ref());
        let snap = r.locals_at(0, 4).unwrap();
        let b = r.fresh_id();
        r.insert_local(b, 0, 4, empty_ref());
        // The earlier snapshot still has one entry (copy-on-write).
        assert_eq!(snap.len(), 1);
        assert_eq!(r.locals_at(0, 4).unwrap().len(), 2);
    }

    #[test]
    fn remove_reports_emptied_site() {
        let mut r = ProbeRegistry::default();
        let a = r.fresh_id();
        let b = r.fresh_id();
        r.insert_local(a, 1, 2, empty_ref());
        r.insert_local(b, 1, 2, empty_ref());
        let (site, emptied) = r.remove(a).unwrap();
        assert_eq!(site, Site::Local(1, 2));
        assert!(!emptied);
        let (_, emptied) = r.remove(b).unwrap();
        assert!(emptied);
        assert!(r.locals_at(1, 2).is_none());
        assert!(r.remove(b).is_none());
    }

    #[test]
    fn global_list_lifecycle() {
        let mut r = ProbeRegistry::default();
        assert!(!r.has_global());
        let a = r.fresh_id();
        r.insert_global(a, empty_ref());
        assert!(r.has_global());
        let (site, emptied) = r.remove(a).unwrap();
        assert_eq!(site, Site::Global);
        assert!(emptied);
        assert!(!r.has_global());
    }

    #[test]
    fn count_probe_kind_and_cell() {
        let p = CountProbe::new();
        assert_eq!(p.kind(), ProbeKind::Count);
        let cell = p.count_cell().unwrap();
        cell.set(5);
        assert_eq!(p.count(), 5);
    }
}
