//! The engine facade: configuration, instantiation, invocation, and the
//! public dynamic-instrumentation API.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use wizard_wasm::module::{ConstExpr, FuncIdx, ImportDesc, Module};
use wizard_wasm::opcodes as op;
use wizard_wasm::types::{FuncType, GlobalType, ValType};
use wizard_wasm::validate::ValidateError;

use crate::artifact::ModuleArtifact;
use crate::classic;
use crate::code::FuncOverlay;
use crate::exec::{Exec, ExecState, Exit};
use crate::frame::Tier;
use crate::interp;
use crate::jit;
use crate::lowered::LoweredView;
use crate::monitor::MonitorRegistry;
use crate::probe::{BatchOp, Pending, Probe, ProbeBatch, ProbeId, ProbeRef, ProbeRegistry, Site};
use crate::regint;
use crate::store::{HostFn, Linker, Memory, Table};
use crate::trap::Trap;
use crate::value::{Slot, Value};

/// Which execution tiers the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Interpreter only (the paper's "Wizard (Interpreter)" configuration).
    InterpOnly,
    /// JIT only: functions are compiled on first call; frame modifications
    /// and global probes are rejected (paper §4.6).
    JitOnly,
    /// Dynamic tiering: start interpreting, tier up hot functions with
    /// on-stack replacement at loop headers.
    #[default]
    Tiered,
}

/// How the interpreter tier dispatches instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dispatch {
    /// Dispatch over the lowered code cache: fixed-width instructions with
    /// pre-decoded immediates and pre-resolved branch targets, produced by
    /// a one-time lowering pass per function (see [`crate::lowered`]).
    #[default]
    Lowered,
    /// Classic byte-walking dispatch: LEB128 immediates decoded and branch
    /// side-table hashed on every execution. Kept as the measurable
    /// pre-lowering baseline (`dispatch_speed` bench) and as the semantic
    /// reference for differential testing. Execution in this mode never
    /// lowers; probe-*location validation* still lowers the targeted
    /// function on demand (the `pc ↔ slot` map is the shared boundary
    /// oracle, and it is what keeps the tandem slot patching sound).
    Bytecode,
    /// Register-machine dispatch: function bodies are lowered past the
    /// fixed-width stack form into a register IR ([`crate::regir`]) whose
    /// instructions name their operands directly — `local.get`/`local.set`
    /// and operand push/pop traffic are allocated away, so the hot
    /// dispatch loop never moves values it does not have to. Probes, fuel
    /// suspension, OSR and deoptimization keep the byte-offset location
    /// contract through a bidirectional byte-pc ↔ register-instruction
    /// map. Instrumented (overlaid) functions, global-probe mode and
    /// fuel-metered slices demote to the lowered stack interpreter, which
    /// remains the instrumentation-capable tier; the rare function the
    /// register allocator cannot lower falls back the same way
    /// ([`EngineStats::reg_fallbacks`]).
    Register,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Tier policy.
    pub mode: ExecMode,
    /// Interpreter dispatch strategy (lowered fast path by default).
    pub dispatch: Dispatch,
    /// Call/backedge count at which a function tiers up (Tiered mode).
    pub tierup_threshold: u32,
    /// Intrinsify [`CountProbe`](crate::probe::CountProbe)s in compiled
    /// code (the paper's `intrinsifyCountProbe` flag).
    pub intrinsify_count: bool,
    /// Intrinsify top-of-stack operand probes (`intrinsifyOperandProbe`).
    pub intrinsify_operand: bool,
    /// Maximum Wasm call depth.
    pub max_call_depth: usize,
    /// Maximum unified value-stack slots.
    pub max_value_stack: usize,
    /// Default fuel slice for preemptible execution, advisory: the engine
    /// itself never reads it — [`Process::invoke`] is always unbounded,
    /// and [`Process::run_bounded`] / [`Process::resume`] take their
    /// budget explicitly. Schedulers like `wizard-pool` read this as the
    /// per-turn budget to pass to the bounded API.
    pub fuel_slice: Option<u64>,
    /// Run the translation validator over every function's lowered form
    /// at instantiation (debug builds and CI). Requires a validator to be
    /// registered via [`register_lowering_validator`] — the engine crate
    /// is dependency-free, so the analysis crate (`wizard-analysis`)
    /// injects its `validate_lowering` through that hook (call its
    /// `install_engine_validator()`).
    pub validate_lowering: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            mode: ExecMode::Tiered,
            dispatch: Dispatch::Lowered,
            tierup_threshold: 50,
            intrinsify_count: true,
            intrinsify_operand: true,
            max_call_depth: 10_000,
            max_value_stack: 1 << 22,
            fuel_slice: None,
            validate_lowering: false,
        }
    }
}

impl EngineConfig {
    /// Interpreter-only configuration.
    pub fn interpreter() -> EngineConfig {
        EngineConfig { mode: ExecMode::InterpOnly, ..EngineConfig::default() }
    }

    /// JIT-only configuration with intrinsification enabled
    /// (the artifact's `fast-count` binary).
    pub fn jit() -> EngineConfig {
        EngineConfig { mode: ExecMode::JitOnly, ..EngineConfig::default() }
    }

    /// JIT-only configuration with intrinsification disabled
    /// (the artifact's `base` binary running JIT).
    pub fn jit_no_intrinsics() -> EngineConfig {
        EngineConfig {
            mode: ExecMode::JitOnly,
            intrinsify_count: false,
            intrinsify_operand: false,
            ..EngineConfig::default()
        }
    }

    /// Default dynamic-tiering configuration.
    pub fn tiered() -> EngineConfig {
        EngineConfig::default()
    }

    /// Interpreter-only configuration with classic byte-walking dispatch —
    /// the pre-lowering engine, kept as a measurable baseline.
    pub fn interpreter_bytecode() -> EngineConfig {
        EngineConfig {
            mode: ExecMode::InterpOnly,
            dispatch: Dispatch::Bytecode,
            ..EngineConfig::default()
        }
    }

    /// Interpreter-only configuration with register-machine dispatch
    /// ([`Dispatch::Register`]): the stack-traffic-free interpreter tier.
    pub fn interpreter_register() -> EngineConfig {
        EngineConfig {
            mode: ExecMode::InterpOnly,
            dispatch: Dispatch::Register,
            ..EngineConfig::default()
        }
    }

    /// Starts a builder from the default configuration.
    ///
    /// ```
    /// use wizard_engine::{EngineConfig, ExecMode};
    ///
    /// let config = EngineConfig::builder()
    ///     .mode(ExecMode::Tiered)
    ///     .tierup_threshold(5)
    ///     .intrinsify(false)
    ///     .build();
    /// assert_eq!(config.tierup_threshold, 5);
    /// assert!(!config.intrinsify_count);
    /// ```
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }
}

/// Builder for [`EngineConfig`], replacing hand-rolled struct literals in
/// binaries and tests. Obtain one via [`EngineConfig::builder`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets the tier policy.
    pub fn mode(mut self, mode: ExecMode) -> EngineConfigBuilder {
        self.config.mode = mode;
        self
    }

    /// Sets the interpreter dispatch strategy.
    pub fn dispatch(mut self, dispatch: Dispatch) -> EngineConfigBuilder {
        self.config.dispatch = dispatch;
        self
    }

    /// Sets the call/backedge count at which a function tiers up.
    pub fn tierup_threshold(mut self, n: u32) -> EngineConfigBuilder {
        self.config.tierup_threshold = n;
        self
    }

    /// Enables/disables count-probe intrinsification in compiled code.
    pub fn intrinsify_count(mut self, on: bool) -> EngineConfigBuilder {
        self.config.intrinsify_count = on;
        self
    }

    /// Enables/disables operand-probe intrinsification in compiled code.
    pub fn intrinsify_operand(mut self, on: bool) -> EngineConfigBuilder {
        self.config.intrinsify_operand = on;
        self
    }

    /// Enables/disables both intrinsification flags at once.
    pub fn intrinsify(self, on: bool) -> EngineConfigBuilder {
        self.intrinsify_count(on).intrinsify_operand(on)
    }

    /// Sets the maximum Wasm call depth.
    pub fn max_call_depth(mut self, n: usize) -> EngineConfigBuilder {
        self.config.max_call_depth = n;
        self
    }

    /// Sets the maximum unified value-stack slots.
    pub fn max_value_stack(mut self, n: usize) -> EngineConfigBuilder {
        self.config.max_value_stack = n;
        self
    }

    /// Sets the default fuel slice (instructions per turn) for preemptible
    /// execution; see [`EngineConfig::fuel_slice`].
    pub fn fuel_slice(mut self, n: u64) -> EngineConfigBuilder {
        self.config.fuel_slice = Some(n);
        self
    }

    /// Enables/disables translation validation of the lowered form at
    /// instantiation; see [`EngineConfig::validate_lowering`].
    pub fn validate_lowering(mut self, on: bool) -> EngineConfigBuilder {
        self.config.validate_lowering = on;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// Counters the engine maintains about instrumentation and tiering
/// activity (the paper's figures annotate probe-fire counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Probe fires dispatched through the runtime (generic local probes and
    /// global probes; intrinsified fires are not runtime-dispatched and are
    /// counted by the monitors themselves).
    pub probe_fires: u64,
    /// Global-probe fires (subset of `probe_fires`).
    pub global_fires: u64,
    /// Functions compiled to the JIT tier.
    pub compiles: u64,
    /// Tier-up transitions (OSR entries).
    pub tier_ups: u64,
    /// Deoptimizations (frame transfers back to the interpreter, including
    /// frame-modification deopts).
    pub deopts: u64,
    /// Invalidation passes over compiled code caused by instrumentation
    /// changes. Inserting/removing a probe individually costs one pass
    /// each; a whole [`ProbeBatch`] committed via
    /// [`Process::apply_batch`] costs exactly one.
    pub invalidation_passes: u64,
    /// Fuel units consumed by bounded runs ([`Process::run_bounded`] /
    /// [`Process::resume`]); one unit per bytecode instruction.
    pub fuel_consumed: u64,
    /// Out-of-fuel suspensions of bounded runs.
    pub suspensions: u64,
    /// Functions lowered to the fixed-width internal form (each function
    /// is lowered at most once; probe traffic patches slots in place).
    pub functions_lowered: u64,
    /// Forced re-lowering passes ([`Process::relower`]). Probe insertion
    /// and removal — batched or not — never re-lower, so under normal
    /// instrumentation traffic this stays 0.
    pub relower_passes: u64,
    /// Instantiations served from an already-built shared
    /// [`ModuleArtifact`] by an artifact cache (e.g. `wizard-pool`'s):
    /// validation, lowering and baseline compilation were all skipped.
    /// Caches contribute this counter when fleet stats are merged;
    /// processes themselves never increment it.
    pub artifact_cache_hits: u64,
    /// Artifact-cache lookups that had to build (validate) the artifact.
    /// Contributed by caches, like [`EngineStats::artifact_cache_hits`].
    pub artifact_cache_misses: u64,
    /// Copy-on-write overlay materializations: the first probe this
    /// process installed in each function copied that function's bytes
    /// and lowered slots into process-local storage. Detaching the last
    /// probe drops the copy again (rejoining the shared artifact), so
    /// this counts copies *made*, not copies currently resident.
    pub overlay_copies: u64,
    /// Successful translation-validation passes over a module's lowered
    /// form ([`EngineConfig::validate_lowering`]); one per instantiation
    /// that ran the registered validator.
    pub lowering_validations: u64,
    /// Functions lowered to the register form ([`crate::regir`]) when a
    /// register-dispatch process built the shared register module. Like
    /// [`EngineStats::functions_lowered`], the work happens once per
    /// artifact: warm instantiations report 0.
    pub functions_reg_lowered: u64,
    /// Functions the register allocator declined to lower (they execute
    /// in the stack-form tiers under [`Dispatch::Register`]). Counted
    /// with [`EngineStats::functions_reg_lowered`] by whichever process
    /// built the register module.
    pub reg_fallbacks: u64,
    /// Register-tier frames demoted to the stack interpreter because the
    /// function acquired a probe overlay or the process entered
    /// global-probe mode while they were live.
    pub reg_demotions: u64,
    /// Trace events captured by streaming trace monitors attached to this
    /// process. Contributed at detach time via [`Process::record_trace`]
    /// (intrinsified operand fires bypass the runtime, so the engine
    /// cannot count them itself).
    pub trace_events: u64,
    /// Encoded trace bytes emitted to trace sinks, including stream
    /// header and block framing. Contributed like
    /// [`EngineStats::trace_events`].
    pub trace_bytes: u64,
    /// Tasks a scheduler worker stole from another worker's deque.
    /// Contributed by multi-worker schedulers (`wizard-pool`'s serving
    /// engine) when fleet stats are merged; processes themselves never
    /// increment it.
    pub steals: u64,
    /// High-water mark of a scheduler's admission queue depth. Merged
    /// with `max` (a high-water mark, not a volume), contributed by
    /// schedulers like [`EngineStats::steals`].
    pub queue_depth_max: u64,
    /// Fuel slices a scheduler executed across its fleet (every
    /// `run_export_bounded`/`resume` turn, whether it suspended or
    /// finished). Contributed by schedulers like [`EngineStats::steals`].
    pub slices_executed: u64,
    /// Times a scheduler parked a runnable task because its tenant's
    /// fuel budget for the current round was exhausted. Contributed by
    /// schedulers like [`EngineStats::steals`].
    pub budget_throttles: u64,
}

impl EngineStats {
    /// Accumulates another process's counters into this one — the
    /// aggregation primitive used by multi-process schedulers
    /// (`wizard-pool`) to report fleet-wide engine activity.
    pub fn merge(&mut self, other: &EngineStats) {
        // Exhaustive destructuring: adding a counter field without
        // aggregating it here is a compile error, not a silent zero.
        let EngineStats {
            probe_fires,
            global_fires,
            compiles,
            tier_ups,
            deopts,
            invalidation_passes,
            fuel_consumed,
            suspensions,
            functions_lowered,
            relower_passes,
            artifact_cache_hits,
            artifact_cache_misses,
            overlay_copies,
            lowering_validations,
            functions_reg_lowered,
            reg_fallbacks,
            reg_demotions,
            trace_events,
            trace_bytes,
            steals,
            queue_depth_max,
            slices_executed,
            budget_throttles,
        } = *other;
        self.probe_fires += probe_fires;
        self.global_fires += global_fires;
        self.compiles += compiles;
        self.tier_ups += tier_ups;
        self.deopts += deopts;
        self.invalidation_passes += invalidation_passes;
        self.fuel_consumed += fuel_consumed;
        self.suspensions += suspensions;
        self.functions_lowered += functions_lowered;
        self.relower_passes += relower_passes;
        self.artifact_cache_hits += artifact_cache_hits;
        self.artifact_cache_misses += artifact_cache_misses;
        self.overlay_copies += overlay_copies;
        self.lowering_validations += lowering_validations;
        self.functions_reg_lowered += functions_reg_lowered;
        self.reg_fallbacks += reg_fallbacks;
        self.reg_demotions += reg_demotions;
        self.trace_events += trace_events;
        self.trace_bytes += trace_bytes;
        self.steals += steals;
        // A high-water mark: the fleet-wide maximum, not a sum.
        self.queue_depth_max = self.queue_depth_max.max(queue_depth_max);
        self.slices_executed += slices_executed;
        self.budget_throttles += budget_throttles;
    }
}

/// Result of one fuel slice of a bounded run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The invocation ran to completion with these results.
    Done(Vec<Value>),
    /// The fuel slice was exhausted; the run is suspended at a bytecode
    /// instruction boundary inside the process and can be continued with
    /// [`Process::resume`] (or discarded with
    /// [`Process::cancel_suspended`]).
    OutOfFuel,
}

impl RunOutcome {
    /// `true` when the run completed.
    pub fn is_done(&self) -> bool {
        matches!(self, RunOutcome::Done(_))
    }

    /// The results, if the run completed.
    pub fn done(self) -> Option<Vec<Value>> {
        match self {
            RunOutcome::Done(v) => Some(v),
            RunOutcome::OutOfFuel => None,
        }
    }
}

/// Error instantiating a module.
#[derive(Debug)]
pub enum LinkError {
    /// The module failed validation.
    Validate(ValidateError),
    /// An import could not be resolved.
    UnresolvedImport(String, String),
    /// An import kind is not supported by this engine.
    UnsupportedImport(String, String, &'static str),
    /// An imported global's provided value has the wrong type.
    GlobalTypeMismatch(String, String),
    /// A data or element segment was out of bounds.
    SegmentOutOfBounds(&'static str),
    /// The start function trapped.
    StartTrapped(Trap),
    /// Translation validation of the lowered form was requested
    /// ([`EngineConfig::validate_lowering`]) and the registered validator
    /// rejected the module — or no validator was registered at all.
    LoweringInvalid(String),
}

impl core::fmt::Display for LinkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinkError::Validate(e) => write!(f, "{e}"),
            LinkError::UnresolvedImport(m, n) => write!(f, "unresolved import {m}.{n}"),
            LinkError::UnsupportedImport(m, n, k) => {
                write!(f, "unsupported import kind {k} for {m}.{n}")
            }
            LinkError::GlobalTypeMismatch(m, n) => {
                write!(f, "imported global {m}.{n} has mismatched type")
            }
            LinkError::SegmentOutOfBounds(k) => write!(f, "{k} segment out of bounds"),
            LinkError::StartTrapped(t) => write!(f, "start function trapped: {t}"),
            LinkError::LoweringInvalid(msg) => write!(f, "lowering validation failed: {msg}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<ValidateError> for LinkError {
    fn from(e: ValidateError) -> LinkError {
        LinkError::Validate(e)
    }
}

/// The shape of an injectable byte→lowered translation validator.
pub type LoweringValidator = fn(&ModuleArtifact) -> Result<(), String>;

/// The registered byte→lowered translation validator, if any. The engine
/// crate is dependency-free by design, so the validator itself lives in
/// `wizard-analysis` and is injected here at startup.
static LOWERING_VALIDATOR: std::sync::OnceLock<LoweringValidator> = std::sync::OnceLock::new();

/// Registers the translation validator consulted when a process is
/// instantiated with [`EngineConfig::validate_lowering`] set. First
/// registration wins; later calls are no-ops (the hook is set once per
/// process lifetime). `wizard_analysis::install_engine_validator()` is
/// the canonical caller.
pub fn register_lowering_validator(f: LoweringValidator) {
    let _ = LOWERING_VALIDATOR.set(f);
}

/// Error from the dynamic instrumentation API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeError {
    /// The function index does not name a locally-defined function.
    NotALocalFunction(FuncIdx),
    /// The pc does not fall on an instruction boundary.
    InvalidPc(FuncIdx, u32),
    /// Global probes require the interpreter, unavailable in JIT-only mode.
    GlobalProbesNeedInterpreter,
    /// No probe with this id is installed.
    UnknownProbe,
    /// No monitor with this handle is attached.
    UnknownMonitor,
    /// This monitor instance is *currently* attached; attaching it again
    /// would double-register its probes. (After a detach the instance may
    /// be attached again; see `Monitor::on_attach` for what that implies.)
    MonitorAlreadyAttached,
    /// The monitor itself rejected the attach — e.g. a compiled
    /// instrumentation script whose rules match nothing in this module.
    /// The message is monitor-specific and human-readable; the engine
    /// rolls back any probes the failed attach had already inserted.
    MonitorRejected(String),
}

impl core::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProbeError::NotALocalFunction(i) => {
                write!(f, "function {i} is imported or out of range")
            }
            ProbeError::InvalidPc(func, pc) => {
                write!(f, "pc {pc} is not an instruction boundary in function {func}")
            }
            ProbeError::GlobalProbesNeedInterpreter => {
                f.write_str("global probes require an interpreter tier (not JIT-only)")
            }
            ProbeError::UnknownProbe => f.write_str("unknown probe id"),
            ProbeError::UnknownMonitor => f.write_str("unknown monitor handle"),
            ProbeError::MonitorAlreadyAttached => {
                f.write_str("monitor instance is already attached")
            }
            ProbeError::MonitorRejected(msg) => write!(f, "monitor rejected attach: {msg}"),
        }
    }
}

impl std::error::Error for ProbeError {}

/// An instantiated module together with its execution and instrumentation
/// state — the engine's top-level object.
///
/// # Examples
///
/// ```
/// use wizard_engine::{EngineConfig, Process};
/// use wizard_engine::store::Linker;
/// use wizard_engine::value::Value;
/// use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
/// use wizard_wasm::types::ValType::I32;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mb = ModuleBuilder::new();
/// let mut f = FuncBuilder::new(&[I32], &[I32]);
/// f.local_get(0).i32_const(1).i32_add();
/// mb.add_func("inc", f);
/// let module = mb.build()?;
///
/// let mut process = Process::new(module, EngineConfig::default(), &Linker::new())?;
/// let r = process.invoke_export("inc", &[Value::I32(41)])?;
/// assert_eq!(r, vec![Value::I32(42)]);
/// # Ok(())
/// # }
/// ```
pub struct Process {
    pub(crate) artifact: Arc<ModuleArtifact>,
    pub(crate) module: Arc<Module>,
    pub(crate) config: EngineConfig,
    pub(crate) code: Vec<Rc<FuncOverlay>>,
    pub(crate) host: Vec<HostFn>,
    pub(crate) memory: Option<Memory>,
    pub(crate) table: Table,
    pub(crate) globals: Vec<u64>,
    pub(crate) global_types: Vec<GlobalType>,
    pub(crate) func_types: Arc<[FuncType]>,
    pub(crate) probes: ProbeRegistry,
    pub(crate) monitors: MonitorRegistry,
    pub(crate) global_mode: bool,
    pub(crate) stats: EngineStats,
    /// The suspended bounded run, if any (see [`Process::run_bounded`]).
    suspended: Option<Suspended>,
}

/// A bounded run parked at an out-of-fuel suspension point.
struct Suspended {
    state: ExecState,
    /// Result types of the entry function, for extraction on completion.
    results: Vec<ValType>,
}

impl Process {
    /// Validates, links and instantiates `module`, running data/element
    /// segment initialization and the start function.
    ///
    /// This is the *owned-module* path: it builds a private
    /// [`ModuleArtifact`] and instantiates from it. Fleets running many
    /// instances of the same module should build the artifact once and use
    /// [`Process::instantiate`] instead, paying validation, lowering and
    /// baseline compilation a single time for all of them.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] on validation failure, unresolved imports,
    /// out-of-bounds segments, or a trapping start function.
    pub fn new(
        module: Module,
        config: EngineConfig,
        linker: &Linker,
    ) -> Result<Process, LinkError> {
        let artifact = Arc::new(ModuleArtifact::new(module)?);
        Process::instantiate(artifact, config, linker)
    }

    /// Links and instantiates a process from a pre-built, possibly shared
    /// [`ModuleArtifact`] — running data/element segment initialization
    /// and the start function, but **skipping validation** (the artifact
    /// is validated by construction) and sharing the artifact's lowered
    /// and baseline-compiled code.
    ///
    /// Processes instantiated from the same artifact execute from the
    /// same shared code until they instrument it: instrumentation is
    /// per-process — the first probe on a function copy-on-writes just
    /// that function into the probing process
    /// ([`EngineStats::overlay_copies`]), and sibling processes never
    /// observe it.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] on unresolved imports, out-of-bounds
    /// segments, or a trapping start function.
    pub fn instantiate(
        artifact: Arc<ModuleArtifact>,
        config: EngineConfig,
        linker: &Linker,
    ) -> Result<Process, LinkError> {
        let module = Arc::clone(artifact.module());

        // Resolve imports.
        let mut host: Vec<HostFn> = Vec::new();
        let mut imported_globals: Vec<(GlobalType, Value)> = Vec::new();
        for imp in &module.imports {
            match &imp.desc {
                ImportDesc::Func(_) => {
                    let f = linker.resolve_func(&imp.module, &imp.name).ok_or_else(|| {
                        LinkError::UnresolvedImport(imp.module.clone(), imp.name.clone())
                    })?;
                    host.push(f);
                }
                ImportDesc::Global(g) => {
                    let v = linker.resolve_global(&imp.module, &imp.name).ok_or_else(|| {
                        LinkError::UnresolvedImport(imp.module.clone(), imp.name.clone())
                    })?;
                    if v.ty() != g.value {
                        return Err(LinkError::GlobalTypeMismatch(
                            imp.module.clone(),
                            imp.name.clone(),
                        ));
                    }
                    imported_globals.push((*g, v));
                }
                ImportDesc::Memory(_) => {
                    return Err(LinkError::UnsupportedImport(
                        imp.module.clone(),
                        imp.name.clone(),
                        "memory",
                    ));
                }
                ImportDesc::Table(_) => {
                    return Err(LinkError::UnsupportedImport(
                        imp.module.clone(),
                        imp.name.clone(),
                        "table",
                    ));
                }
            }
        }

        // Function types across the whole index space (shared, precomputed
        // by the artifact — warm instantiation clones one Arc).
        let func_types = Arc::clone(artifact.func_types());

        // Globals: imported first, then module-defined.
        let mut global_types: Vec<GlobalType> = Vec::new();
        let mut globals: Vec<u64> = Vec::new();
        for (g, v) in &imported_globals {
            global_types.push(*g);
            globals.push(v.to_slot().0);
        }
        for g in &module.globals {
            global_types.push(g.ty);
            let v = eval_const(&g.init, &globals, &global_types);
            globals.push(v);
        }

        // Code objects: fresh (empty) per-process overlays over the
        // artifact's shared per-function code.
        let code: Vec<Rc<FuncOverlay>> =
            artifact.funcs().iter().map(|fa| Rc::new(FuncOverlay::new(Arc::clone(fa)))).collect();

        // Memory + data segments.
        let mut memory = module.memory0().map(|m| Memory::new(m.limits));
        for d in &module.data {
            let off = eval_const(&d.offset, &globals, &global_types) as u32;
            memory
                .as_mut()
                .expect("validated: data requires memory")
                .init(off, &d.bytes)
                .map_err(|_| LinkError::SegmentOutOfBounds("data"))?;
        }

        // Table + element segments.
        let mut table = module.table0().map_or_else(Table::default, |t| Table::new(t.limits));
        for e in &module.elems {
            let off = eval_const(&e.offset, &globals, &global_types) as u32;
            table.init(off, &e.funcs).map_err(|_| LinkError::SegmentOutOfBounds("element"))?;
        }

        let mut p = Process {
            artifact,
            module,
            config,
            code,
            host,
            memory,
            table,
            globals,
            global_types,
            func_types,
            probes: ProbeRegistry::default(),
            monitors: MonitorRegistry::default(),
            global_mode: false,
            stats: EngineStats::default(),
            suspended: None,
        };
        if p.config.dispatch == Dispatch::Register {
            // Build the shared register module eagerly: instantiation is
            // the natural cold point, and a fleet instantiating from the
            // same artifact pays the register lowering exactly once.
            let (reg, built_now) = p.artifact.reg_module_init();
            if built_now {
                p.stats.functions_reg_lowered += reg.lowered_count;
                p.stats.reg_fallbacks += reg.fallback_count;
            }
        }
        if p.config.validate_lowering {
            let Some(validator) = LOWERING_VALIDATOR.get() else {
                return Err(LinkError::LoweringInvalid(
                    "no validator registered; call wizard_analysis::install_engine_validator()"
                        .into(),
                ));
            };
            p.artifact.lower_all();
            validator(&p.artifact).map_err(LinkError::LoweringInvalid)?;
            p.stats.lowering_validations += 1;
        }
        if let Some(s) = p.module.start {
            p.invoke(s, &[]).map_err(LinkError::StartTrapped)?;
        }
        Ok(p)
    }

    /// The module under execution.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Engine activity counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Resets the activity counters.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Credits trace capture activity to this process's counters
    /// ([`EngineStats::trace_events`] / [`EngineStats::trace_bytes`]).
    /// Called by streaming trace monitors from `on_detach`, because
    /// intrinsified operand fires never cross the runtime and so cannot
    /// be counted engine-side.
    pub fn record_trace(&mut self, events: u64, bytes: u64) {
        self.stats.trace_events += events;
        self.stats.trace_bytes += bytes;
    }

    /// Read-only view of linear memory (if the module has one).
    pub fn memory(&self) -> Option<&[u8]> {
        self.memory.as_ref().map(Memory::data)
    }

    /// Reads a global by index.
    pub fn global(&self, idx: u32) -> Option<Value> {
        let ty = self.global_types.get(idx as usize)?;
        Some(Value::from_slot(Slot(self.globals[idx as usize]), ty.value))
    }

    /// Invokes an exported function by name.
    ///
    /// # Errors
    ///
    /// Traps as [`Process::invoke`]; unknown exports trap with
    /// [`Trap::Host`].
    pub fn invoke_export(&mut self, name: &str, args: &[Value]) -> Result<Vec<Value>, Trap> {
        let idx = self
            .module
            .export_func(name)
            .ok_or_else(|| Trap::Host(format!("no exported function {name:?}")))?;
        self.invoke(idx, args)
    }

    /// Invokes function `func` with `args`.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] if execution traps; all frames are unwound and
    /// their accessors invalidated.
    ///
    /// # Panics
    ///
    /// Panics if `args` do not match the function's parameter types, or if
    /// a bounded run is currently suspended (finish it with
    /// [`Process::resume`] or discard it with
    /// [`Process::cancel_suspended`] first).
    pub fn invoke(&mut self, func: FuncIdx, args: &[Value]) -> Result<Vec<Value>, Trap> {
        assert!(
            self.suspended.is_none(),
            "cannot invoke while a bounded run is suspended; resume or cancel it first"
        );
        let ty = self.func_types[func as usize].clone();
        let mut ex = start_call(self, func, &ty, args)?;
        match drive(&mut ex) {
            Ok(Exit::Done) => {}
            Ok(Exit::OutOfFuel | Exit::Redispatch) => {
                unreachable!("unbounded run cannot suspend")
            }
            Err(t) => {
                ex.unwind();
                return Err(t);
            }
        }
        Ok(extract_results(&ex, &ty.results))
    }

    // ---- preemptible (fuel-bounded) execution ----

    /// Starts a *bounded* invocation of `func`: executes at most `fuel`
    /// bytecode instructions, then suspends.
    ///
    /// Fuel is charged per bytecode instruction *executed in the current
    /// tier*: the interpreter charges every instruction, while compiled
    /// code charges per instruction that survives compilation —
    /// structural instructions (`nop`/`block`/`loop`/`end`) compile away
    /// and cost nothing there. Fuel bounds *work* (a slice is a hard
    /// preemption budget in either tier); it is not an exact cross-tier
    /// instruction count.
    ///
    /// Returns [`RunOutcome::Done`] with the results if the invocation
    /// finished within the slice, or [`RunOutcome::OutOfFuel`] if it was
    /// preempted — the run is parked inside the process at a bytecode
    /// instruction boundary and continues with [`Process::resume`].
    /// Suspension is transparent to instrumentation: a bounded run fires
    /// exactly the probes, in exactly the order, of an unbounded
    /// [`Process::invoke`] of the same call. Instrumentation may change
    /// *while* the run is suspended (attach/detach, probe insertion);
    /// affected compiled code is invalidated and suspended JIT frames
    /// deoptimize on resume.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] if execution traps (in any slice); all frames
    /// are unwound and the suspension is cleared.
    ///
    /// # Panics
    ///
    /// Panics if `args` do not match the function's parameter types or if
    /// another bounded run is already suspended.
    pub fn run_bounded(
        &mut self,
        func: FuncIdx,
        args: &[Value],
        fuel: u64,
    ) -> Result<RunOutcome, Trap> {
        assert!(
            self.suspended.is_none(),
            "a bounded run is already suspended; resume or cancel it first"
        );
        let ty = self.func_types[func as usize].clone();
        let ex = start_call_metered(self, func, &ty, args, fuel)?;
        match drive_bounded(ex, fuel, &ty.results)? {
            BoundedExit::Done(v) => Ok(RunOutcome::Done(v)),
            BoundedExit::Suspended(state) => {
                self.suspended = Some(Suspended { state, results: ty.results });
                Ok(RunOutcome::OutOfFuel)
            }
        }
    }

    /// Bounded invocation of an exported function by name; see
    /// [`Process::run_bounded`].
    ///
    /// # Errors
    ///
    /// As [`Process::run_bounded`]; unknown exports trap with
    /// [`Trap::Host`].
    pub fn run_export_bounded(
        &mut self,
        name: &str,
        args: &[Value],
        fuel: u64,
    ) -> Result<RunOutcome, Trap> {
        let idx = self
            .module
            .export_func(name)
            .ok_or_else(|| Trap::Host(format!("no exported function {name:?}")))?;
        self.run_bounded(idx, args, fuel)
    }

    /// Continues the suspended bounded run with a fresh fuel slice.
    ///
    /// # Errors
    ///
    /// As [`Process::run_bounded`].
    ///
    /// # Panics
    ///
    /// Panics if no bounded run is suspended.
    pub fn resume(&mut self, fuel: u64) -> Result<RunOutcome, Trap> {
        let s = self.suspended.take().expect("no suspended bounded run to resume");
        let ex = Exec::from_state(self, s.state, fuel);
        match drive_bounded(ex, fuel, &s.results)? {
            BoundedExit::Done(v) => Ok(RunOutcome::Done(v)),
            BoundedExit::Suspended(state) => {
                self.suspended = Some(Suspended { state, results: s.results });
                Ok(RunOutcome::OutOfFuel)
            }
        }
    }

    /// `true` while a bounded run is parked at a suspension point.
    pub fn is_suspended(&self) -> bool {
        self.suspended.is_some()
    }

    /// Discards the suspended bounded run, if any, invalidating the
    /// accessors of its parked frames (which also happens if the process
    /// is simply dropped while suspended). Returns `true` if a run was
    /// discarded.
    pub fn cancel_suspended(&mut self) -> bool {
        self.suspended.take().is_some()
    }

    // ---- instrumentation API ----

    /// Inserts a probe at `(func, pc)`, overwriting the instruction's opcode
    /// byte and invalidating compiled code for the function.
    ///
    /// # Errors
    ///
    /// Fails if `func` is imported/unknown or `pc` is not an instruction
    /// boundary.
    pub fn add_local_probe(
        &mut self,
        func: FuncIdx,
        pc: u32,
        probe: ProbeRef,
    ) -> Result<ProbeId, ProbeError> {
        self.check_location(func, pc)?;
        let id = self.probes.fresh_id();
        self.apply_instrumentation(Pending::InsertLocal(id, func, pc, probe));
        Ok(id)
    }

    /// Convenience: inserts an owned probe value.
    ///
    /// # Errors
    ///
    /// As [`Process::add_local_probe`].
    pub fn add_local_probe_val(
        &mut self,
        func: FuncIdx,
        pc: u32,
        probe: impl Probe,
    ) -> Result<ProbeId, ProbeError> {
        self.add_local_probe(func, pc, Rc::new(RefCell::new(probe)))
    }

    /// Inserts a global probe, switching the interpreter to the
    /// instrumented dispatch table. JIT code is *not* discarded; execution
    /// returns to the interpreter until the probe is removed (paper §4.1).
    ///
    /// # Errors
    ///
    /// Fails in JIT-only mode, which has no interpreter to run global
    /// probes in.
    pub fn add_global_probe(&mut self, probe: ProbeRef) -> Result<ProbeId, ProbeError> {
        self.check_global_allowed()?;
        let id = self.probes.fresh_id();
        self.apply_instrumentation(Pending::InsertGlobal(id, probe));
        Ok(id)
    }

    /// Convenience: inserts an owned global probe value.
    ///
    /// # Errors
    ///
    /// As [`Process::add_global_probe`].
    pub fn add_global_probe_val(&mut self, probe: impl Probe) -> Result<ProbeId, ProbeError> {
        self.add_global_probe(Rc::new(RefCell::new(probe)))
    }

    /// Removes a probe by id. Removing the last probe at a location
    /// restores the original opcode byte; removing the last global probe
    /// switches the dispatch table back.
    ///
    /// # Errors
    ///
    /// Fails if the id is unknown.
    pub fn remove_probe(&mut self, id: ProbeId) -> Result<(), ProbeError> {
        if !self.probes_contains(id) {
            return Err(ProbeError::UnknownProbe);
        }
        self.apply_instrumentation(Pending::Remove(id));
        Ok(())
    }

    fn probes_contains(&self, id: ProbeId) -> bool {
        self.probes.contains(id)
    }

    /// Applies a whole [`ProbeBatch`] — N insertions/removals — in a
    /// *single* invalidation/deoptimization pass, returning the ids of the
    /// inserted probes in queue order.
    ///
    /// The batch is validated atomically up front: if any queued location
    /// is invalid nothing is applied. Each function whose probe list
    /// changed is invalidated exactly once, and
    /// [`EngineStats::invalidation_passes`] increases by at most one —
    /// versus once per probe when inserting individually.
    ///
    /// # Errors
    ///
    /// Fails as [`Process::add_local_probe`] / [`Process::add_global_probe`]
    /// for any queued insertion; queued removals never fail (removing an
    /// unknown id is a no-op, making detach-style cleanup idempotent).
    pub fn apply_batch(&mut self, batch: ProbeBatch) -> Result<Vec<ProbeId>, ProbeError> {
        for op in &batch.ops {
            match op {
                BatchOp::Local(func, pc, _) => self.check_location(*func, *pc)?,
                BatchOp::Global(_) => self.check_global_allowed()?,
                BatchOp::Remove(_) => {}
            }
        }
        let mut inserted = Vec::new();
        let mut touched: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for op in batch.ops {
            match op {
                BatchOp::Local(func, pc, probe) => {
                    let id = self.probes.fresh_id();
                    touched.insert(self.do_insert_local(id, func, pc, probe));
                    inserted.push(id);
                }
                BatchOp::Global(probe) => {
                    let id = self.probes.fresh_id();
                    self.do_insert_global(id, probe);
                    inserted.push(id);
                }
                BatchOp::Remove(id) => {
                    if let Some(lf) = self.do_remove(id) {
                        touched.insert(lf);
                    }
                }
            }
        }
        if !touched.is_empty() {
            for lf in touched {
                self.code[lf].invalidate();
            }
            self.stats.invalidation_passes += 1;
        }
        Ok(inserted)
    }

    /// Registers a local probe and installs its probe byte; returns the
    /// index of the touched local function. The caller decides when to
    /// invalidate its compiled code (immediately, or once per batch).
    fn do_insert_local(&mut self, id: ProbeId, func: FuncIdx, pc: u32, probe: ProbeRef) -> usize {
        let n_imp = self.module.num_imported_funcs();
        assert!(
            func >= n_imp && func < self.module.num_funcs(),
            "local probe target must be a locally-defined function"
        );
        let created = self.probes.insert_local(id, func, pc, probe);
        let lf = (func - n_imp) as usize;
        if created && self.code[lf].install_probe_byte(pc) {
            // First probe in this function: its bytes and lowered slots
            // were just copy-on-wrote into the process-local overlay.
            self.stats.overlay_copies += 1;
        }
        lf
    }

    /// Registers a global probe and switches the dispatch table.
    fn do_insert_global(&mut self, id: ProbeId, probe: ProbeRef) {
        self.probes.insert_global(id, probe);
        self.global_mode = true;
    }

    /// Unregisters a probe, restoring the probe byte / dispatch table as
    /// needed; returns the touched local function index for local probes.
    /// The caller decides when to invalidate compiled code.
    fn do_remove(&mut self, id: ProbeId) -> Option<usize> {
        let (site, emptied) = self.probes.remove(id)?;
        match site {
            Site::Global => {
                if !self.probes.has_global() {
                    self.global_mode = false;
                }
                None
            }
            Site::Local(func, pc) => {
                let lf = (func - self.module.num_imported_funcs()) as usize;
                if emptied {
                    // Restoring the function's last probed location drops
                    // the copy-on-write overlay: the process rejoins the
                    // shared artifact's code.
                    self.code[lf].restore_byte(pc);
                }
                Some(lf)
            }
        }
    }

    /// `true` while at least one global probe is installed.
    pub fn in_global_mode(&self) -> bool {
        self.global_mode
    }

    /// Number of distinct locations with local probes.
    pub fn probed_location_count(&self) -> usize {
        self.probes.local_site_count()
    }

    /// The [`ProbeKind`](crate::probe::ProbeKind)s of the probes
    /// installed at `(func, pc)`, in firing order. Empty if the location
    /// has no probes.
    ///
    /// This is the engine's own intrinsification view: a site whose kinds
    /// are all `Count` / `Operand` compiles to
    /// inlined bumps / direct operand calls (when the corresponding
    /// `intrinsify_*` config flags are on) instead of a generic
    /// checkpointed probe op. Used by tests and by the script compiler to
    /// *prove* that a lowering hit the fast path.
    pub fn probe_kinds_at(&self, func: FuncIdx, pc: u32) -> Vec<crate::probe::ProbeKind> {
        self.probes
            .locals_at(func, pc)
            .map_or_else(Vec::new, |list| list.iter().map(|(_, p)| p.borrow().kind()).collect())
    }

    /// Validates that the current tier policy can run global probes
    /// (JIT-only mode has no interpreter to run them in).
    fn check_global_allowed(&self) -> Result<(), ProbeError> {
        if self.config.mode == ExecMode::JitOnly {
            return Err(ProbeError::GlobalProbesNeedInterpreter);
        }
        Ok(())
    }

    /// Validates that `(func, pc)` names an instruction boundary of a local
    /// function. Boundaries come from the lowered form's `pc ↔ slot` map
    /// (lowering the function on first demand), so the instrumentation API
    /// and the execution tiers share one decoding of the body.
    pub(crate) fn check_location(&mut self, func: FuncIdx, pc: u32) -> Result<(), ProbeError> {
        let n_imp = self.module.num_imported_funcs();
        if func < n_imp || func >= self.module.num_funcs() {
            return Err(ProbeError::NotALocalFunction(func));
        }
        let lf = (func - n_imp) as usize;
        let low = self.lowered_view_for(lf);
        match low.slot_of(pc) {
            // The one-past-the-end sentinel maps to a slot (frames park the
            // implicit-return pc there) but is not a probeable instruction.
            Some(slot) if (slot as usize) < low.len() => Ok(()),
            _ => Err(ProbeError::InvalidPc(func, pc)),
        }
    }

    /// The lowered view of local function `lf`. The *shared* lowered form
    /// is built inside the artifact on the first demand from any sibling
    /// process; if this call is the one that builds it, it is counted in
    /// this process's [`EngineStats::functions_lowered`] (instantiating
    /// from a warm artifact therefore reports 0 lowering work).
    pub(crate) fn lowered_view_for(&mut self, lf: usize) -> LoweredView {
        let (_, lowered_now) = self.code[lf].artifact().lowered_init();
        if lowered_now {
            self.stats.functions_lowered += 1;
        }
        self.code[lf].lowered_view()
    }

    /// The register form of local function `lf`, if the allocator could
    /// lower it. Builds the shared register module on first demand (cold
    /// only when the process was not instantiated with
    /// [`Dispatch::Register`], which builds it eagerly), attributing the
    /// build to this process's counters like
    /// [`Process::lowered_view_for`] does for the stack form.
    pub(crate) fn reg_func_for(&mut self, lf: usize) -> Option<Arc<crate::regir::RegFunc>> {
        let (reg, built_now) = self.artifact.reg_module_init();
        let reg = Arc::clone(reg);
        if built_now {
            self.stats.functions_reg_lowered += reg.lowered_count;
            self.stats.reg_fallbacks += reg.fallback_count;
        }
        reg.func(lf).cloned()
    }

    /// Rebuilds `func`'s process-local overlay from the shared artifact,
    /// re-applying the currently-installed probe patches, and invalidates
    /// its compiled code. Counted in [`EngineStats::relower_passes`]. A
    /// function this process never instrumented has no overlay to rebuild;
    /// the call still invalidates (and recounts).
    ///
    /// Instrumentation never takes this path — probe insertion/removal
    /// patches overlay slots in place (batched invalidation passes
    /// re-patch, they never re-lower). The API exists for tooling and
    /// tests that need a function's process-local caches provably rebuilt.
    /// The shared artifact itself is immutable and is never re-lowered.
    ///
    /// # Errors
    ///
    /// Fails if `func` is imported or out of range.
    pub fn relower(&mut self, func: FuncIdx) -> Result<(), ProbeError> {
        let n_imp = self.module.num_imported_funcs();
        if func < n_imp || func >= self.module.num_funcs() {
            return Err(ProbeError::NotALocalFunction(func));
        }
        let lf = (func - n_imp) as usize;
        self.code[lf].rebuild_overlay();
        self.code[lf].invalidate();
        self.stats.relower_passes += 1;
        Ok(())
    }

    /// Ensures `lf` has valid compiled code.
    ///
    /// While the function is probe-free (never instrumented, or all
    /// probes detached) its code is identical across the whole fleet: the
    /// artifact's shared baseline ([`CompiledCode`](crate::jit) is plain
    /// data) is compiled once and wrapped for this process with empty
    /// probe bindings, stamped with the process's *current* version (the
    /// version stream stays monotonic for live-frame staleness checks).
    /// Instrumented functions compile privately against this process's
    /// probe list.
    pub(crate) fn ensure_compiled(&mut self, lf: usize) {
        if self.code[lf].compiled.borrow().is_some() {
            return;
        }
        if !self.code[lf].has_overlay() {
            if self.config.dispatch == Dispatch::Register {
                if let Some(rf) = self.reg_func_for(lf) {
                    // Register dispatch compiles probe-free functions to
                    // the register form: the "compiled code" is the
                    // register stream itself plus the loop-header OSR
                    // entry map, shared fleet-wide like the stack
                    // baseline.
                    let (code, compiled_now) = self.code[lf].artifact().baseline_reg_compiled(&rf);
                    if compiled_now {
                        self.stats.compiles += 1;
                    }
                    let compiled = jit::Compiled {
                        code: Arc::clone(code),
                        version: self.code[lf].version.get(),
                        cells: Vec::new(),
                        operands: Vec::new(),
                    };
                    *self.code[lf].compiled.borrow_mut() = Some(Rc::new(compiled));
                    return;
                }
            }
            // Route through lowered_view_for so the (possible) first
            // lowering is stat-attributed in exactly one place.
            let _ = self.lowered_view_for(lf);
            let (code, compiled_now) = self.code[lf].artifact().baseline_compiled();
            if compiled_now {
                self.stats.compiles += 1;
            }
            let compiled = jit::Compiled {
                code: Arc::clone(code),
                version: self.code[lf].version.get(),
                cells: Vec::new(),
                operands: Vec::new(),
            };
            *self.code[lf].compiled.borrow_mut() = Some(Rc::new(compiled));
            return;
        }
        let low = self.lowered_view_for(lf);
        let compiled = jit::compile(&self.code[lf], &low, &self.probes, &self.config);
        self.stats.compiles += 1;
        *self.code[lf].compiled.borrow_mut() = Some(Rc::new(compiled));
    }

    /// Applies one instrumentation change (immediately; deferral during
    /// probe dispatch is handled by the pending queue in `exec`).
    pub(crate) fn apply_instrumentation(&mut self, p: Pending) {
        // Compiled code is specialized to the probe list at compile time,
        // so any local change invalidates it immediately (paper §4.6);
        // batches route through apply_batch to pay one pass instead.
        match p {
            Pending::InsertGlobal(id, probe) => self.do_insert_global(id, probe),
            Pending::InsertLocal(id, func, pc, probe) => {
                let lf = self.do_insert_local(id, func, pc, probe);
                self.code[lf].invalidate();
                self.stats.invalidation_passes += 1;
            }
            Pending::Remove(id) => {
                if let Some(lf) = self.do_remove(id) {
                    self.code[lf].invalidate();
                    self.stats.invalidation_passes += 1;
                }
            }
        }
    }

    /// The probe opcode currently at `(func, pc)`? Used by tests to verify
    /// bytecode overwriting behavior.
    pub fn has_probe_byte(&self, func: FuncIdx, pc: u32) -> bool {
        let n_imp = self.module.num_imported_funcs();
        if func < n_imp {
            return false;
        }
        let fc = &self.code[(func - n_imp) as usize];
        (pc as usize) < fc.len() && fc.byte_at(pc as usize) == op::PROBE
    }

    /// `true` if the function currently has valid compiled (JIT-tier) code.
    pub fn is_compiled(&self, func: FuncIdx) -> bool {
        let n_imp = self.module.num_imported_funcs();
        if func < n_imp {
            return false;
        }
        self.code[(func - n_imp) as usize].compiled.borrow().is_some()
    }

    /// Returns a textual listing of the compiled micro-ops of `func`,
    /// compiling it if needed — the Figure-2 "generated code" view.
    ///
    /// # Errors
    ///
    /// Fails if `func` is not a local function.
    pub fn compiled_listing(&mut self, func: FuncIdx) -> Result<String, ProbeError> {
        let n_imp = self.module.num_imported_funcs();
        if func < n_imp || func >= self.module.num_funcs() {
            return Err(ProbeError::NotALocalFunction(func));
        }
        let lf = (func - n_imp) as usize;
        self.ensure_compiled(lf);
        let compiled = self.code[lf].compiled.borrow().clone().expect("just compiled");
        let mut out = String::new();
        for (ip, o) in compiled.code.ops.iter().enumerate() {
            let pc = compiled.code.ip_to_pc[ip];
            out.push_str(&format!("{ip:>4} (pc {pc:>4}): {o:?}\n"));
        }
        Ok(out)
    }

    // ---- shared-artifact introspection ----

    /// The shared [`ModuleArtifact`] this process executes from. Two
    /// processes with `Arc::ptr_eq` artifacts share validated metadata,
    /// lowered code and baseline compiled code.
    pub fn artifact(&self) -> &Arc<ModuleArtifact> {
        &self.artifact
    }

    /// `true` while this process holds a copy-on-write instrumented copy
    /// of `func` (i.e. at least one of its own probes is installed there).
    /// Imported functions report `false`.
    pub fn has_overlay(&self, func: FuncIdx) -> bool {
        let n_imp = self.module.num_imported_funcs();
        if func < n_imp || func >= self.module.num_funcs() {
            return false;
        }
        self.code[(func - n_imp) as usize].has_overlay()
    }

    /// Identity (address) of the lowered op stream this process would
    /// dispatch `func` from — the artifact's shared stream until a probe
    /// lands, the process-local overlay copy after. Two uninstrumented
    /// sibling processes report the *same* address: they literally share
    /// the code. Lowers the function if it never ran.
    ///
    /// # Errors
    ///
    /// Fails if `func` is imported or out of range.
    pub fn code_identity(&mut self, func: FuncIdx) -> Result<usize, ProbeError> {
        let n_imp = self.module.num_imported_funcs();
        if func < n_imp || func >= self.module.num_funcs() {
            return Err(ProbeError::NotALocalFunction(func));
        }
        Ok(self.lowered_view_for((func - n_imp) as usize).ops_addr())
    }

    /// Identity (address) of the compiled op stream of `func`, if it has
    /// valid JIT code. Sibling processes running un-instrumented code
    /// report the same address (the artifact's shared baseline).
    pub fn compiled_identity(&self, func: FuncIdx) -> Option<usize> {
        let n_imp = self.module.num_imported_funcs();
        if func < n_imp || func >= self.module.num_funcs() {
            return None;
        }
        self.code[(func - n_imp) as usize].compiled.borrow().as_ref().map(|c| c.code_addr())
    }

    /// Bytes of process-private code this process currently holds in
    /// copy-on-write overlays — 0 for an uninstrumented process, which
    /// executes entirely from the shared artifact. (The paper's detach
    /// guarantee, extended to memory: removing the last probe returns
    /// this to 0.)
    pub fn resident_overlay_bytes(&self) -> usize {
        self.code.iter().map(|c| c.overlay_size_bytes()).sum()
    }
}

impl core::fmt::Debug for Process {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Process")
            .field("funcs", &self.module.num_funcs())
            .field("global_mode", &self.global_mode)
            .field("probes", &self.probes)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Builds an execution for calling `func` with `args` pushed and the entry
/// frame set up (type-checked against `ty`).
///
/// # Panics
///
/// Panics if `args` do not match `ty.params`.
fn start_call<'p>(
    proc: &'p mut Process,
    func: FuncIdx,
    ty: &FuncType,
    args: &[Value],
) -> Result<Exec<'p>, Trap> {
    start_call_inner(proc, func, ty, args, false, 0)
}

/// As [`start_call`] for a bounded run: metering is set *before* the
/// entry call so its tier decision already sees a metered execution
/// (register dispatch pins bounded runs to the stack interpreter).
fn start_call_metered<'p>(
    proc: &'p mut Process,
    func: FuncIdx,
    ty: &FuncType,
    args: &[Value],
    fuel: u64,
) -> Result<Exec<'p>, Trap> {
    start_call_inner(proc, func, ty, args, true, fuel)
}

fn start_call_inner<'p>(
    proc: &'p mut Process,
    func: FuncIdx,
    ty: &FuncType,
    args: &[Value],
    metered: bool,
    fuel: u64,
) -> Result<Exec<'p>, Trap> {
    assert_eq!(
        args.iter().map(Value::ty).collect::<Vec<_>>(),
        ty.params,
        "argument types must match the function signature"
    );
    let mut ex = Exec::new(proc);
    ex.metered = metered;
    ex.fuel = fuel;
    for a in args {
        ex.values.push(a.to_slot().0);
    }
    match ex.do_call(func, Tier::Interp) {
        Ok(()) | Err(crate::exec::Sig::Switch) => Ok(ex),
        Err(crate::exec::Sig::Trap(t)) => Err(t),
        Err(crate::exec::Sig::Done) => unreachable!("entry call cannot signal done"),
    }
}

/// The tier dispatcher: runs frames in their current tier until the
/// invocation completes, traps, or (metered runs) exhausts its fuel slice.
fn drive(ex: &mut Exec<'_>) -> Result<Exit, Trap> {
    while !ex.frames.is_empty() {
        let tier = ex.frames.last().expect("non-empty").tier;
        let r = match tier {
            Tier::Interp if ex.classic => classic::run_frame(ex),
            Tier::Interp => interp::run_frame(ex),
            Tier::Reg => regint::run_frame(ex),
            Tier::Jit => jit::run_frame(ex),
        };
        match r? {
            Exit::Done => return Ok(Exit::Done),
            Exit::OutOfFuel => return Ok(Exit::OutOfFuel),
            Exit::Redispatch => {}
        }
    }
    Ok(Exit::Done)
}

/// How a bounded slice ended (internal; surfaced as [`RunOutcome`]).
enum BoundedExit {
    Done(Vec<Value>),
    Suspended(ExecState),
}

/// Runs a metered `ex` until completion or suspension, doing the fuel
/// accounting; the caller parks the returned state.
fn drive_bounded(mut ex: Exec<'_>, fuel: u64, results_ty: &[ValType]) -> Result<BoundedExit, Trap> {
    match drive(&mut ex) {
        Ok(Exit::Done) => {
            ex.proc.stats.fuel_consumed += fuel - ex.fuel;
            let results = extract_results(&ex, results_ty);
            Ok(BoundedExit::Done(results))
        }
        Ok(Exit::OutOfFuel) => {
            ex.proc.stats.fuel_consumed += fuel - ex.fuel;
            ex.proc.stats.suspensions += 1;
            Ok(BoundedExit::Suspended(ex.into_state()))
        }
        Ok(Exit::Redispatch) => unreachable!("drive loops on redispatch"),
        Err(t) => {
            // The trapping slice's fuel still counts as consumed.
            ex.proc.stats.fuel_consumed += fuel - ex.fuel;
            ex.unwind();
            Err(t)
        }
    }
}

/// Reads the entry function's results off the (now quiescent) value stack.
fn extract_results(ex: &Exec<'_>, results_ty: &[ValType]) -> Vec<Value> {
    results_ty.iter().enumerate().map(|(i, t)| Value::from_slot(Slot(ex.values[i]), *t)).collect()
}

fn eval_const(e: &ConstExpr, globals: &[u64], _types: &[GlobalType]) -> u64 {
    match e {
        ConstExpr::I32(v) => Slot::from_i32(*v).0,
        ConstExpr::I64(v) => Slot::from_i64(*v).0,
        ConstExpr::F32(v) => Slot::from_f32(*v).0,
        ConstExpr::F64(v) => Slot::from_f64(*v).0,
        ConstExpr::GlobalGet(i) => globals[*i as usize],
    }
}
