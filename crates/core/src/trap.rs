//! Traps: WebAssembly's fault model.

/// A runtime trap. Execution of the current invocation is aborted and all
/// Wasm frames are unwound (invalidating their FrameAccessors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// `unreachable` was executed.
    Unreachable,
    /// A memory access was out of bounds.
    MemoryOutOfBounds,
    /// Integer division by zero.
    DivisionByZero,
    /// Integer overflow (e.g. `i32::MIN / -1`).
    IntegerOverflow,
    /// Float-to-int conversion of NaN or an out-of-range value.
    InvalidConversion,
    /// `call_indirect` through a null or out-of-bounds table entry.
    UndefinedElement,
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// The call stack exceeded the configured limit.
    StackOverflow,
    /// The operand/locals value stack exceeded the configured limit.
    ValueStackOverflow,
    /// An imported host function reported an error.
    Host(String),
}

impl core::fmt::Display for Trap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Trap::Unreachable => f.write_str("unreachable executed"),
            Trap::MemoryOutOfBounds => f.write_str("out of bounds memory access"),
            Trap::DivisionByZero => f.write_str("integer divide by zero"),
            Trap::IntegerOverflow => f.write_str("integer overflow"),
            Trap::InvalidConversion => f.write_str("invalid conversion to integer"),
            Trap::UndefinedElement => f.write_str("undefined table element"),
            Trap::IndirectCallTypeMismatch => f.write_str("indirect call type mismatch"),
            Trap::StackOverflow => f.write_str("call stack exhausted"),
            Trap::ValueStackOverflow => f.write_str("value stack exhausted"),
            Trap::Host(msg) => write!(f, "host error: {msg}"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let all = [
            Trap::Unreachable,
            Trap::MemoryOutOfBounds,
            Trap::DivisionByZero,
            Trap::IntegerOverflow,
            Trap::InvalidConversion,
            Trap::UndefinedElement,
            Trap::IndirectCallTypeMismatch,
            Trap::StackOverflow,
            Trap::ValueStackOverflow,
            Trap::Host("x".into()),
        ];
        for t in all {
            let s = t.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
