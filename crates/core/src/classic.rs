//! The classic byte-walking interpreter: the pre-lowering dispatch loop,
//! kept as a selectable engine configuration
//! ([`Dispatch::Bytecode`](crate::Dispatch)).
//!
//! This is the in-place dispatch the engine shipped with before the
//! lowered code cache ([`crate::lowered`]): it walks raw bytecode,
//! LEB128-decodes immediates on every execution, and resolves branches
//! through the validator's per-pc side-table `HashMap`. It is retained for
//! two reasons:
//!
//! * the `dispatch_speed` benchmark measures the lowered pipeline *against*
//!   this loop, so the decode-tax win stays measurable instead of becoming
//!   folklore;
//! * the differential test suite runs programs under both dispatchers and
//!   requires identical results, traps, and probe behavior — byte-walking
//!   is the semantic reference for the lowered fast path.
//!
//! Structure is identical to [`crate::interp`]: a 256-entry handler table,
//! with a second all-stub table switched in for global-probe mode
//! (paper §4.1), and bytecode overwriting for local probes (§4.2).

use std::sync::LazyLock;

use wizard_wasm::opcodes as op;
use wizard_wasm::validate::SideEntry;

use crate::exec::{Exec, Exit, Sig};
use crate::frame::Tier;
use crate::numeric;
use crate::probe::Location;
use crate::trap::Trap;
use crate::value::Slot;
use crate::ExecMode;

/// A classic interpreter handler: executes one instruction from raw bytes
/// (including advancing the byte pc) or raises a [`Sig`].
pub(crate) type Handler = fn(&mut Exec, u8) -> Result<(), Sig>;

static NORMAL: LazyLock<[Handler; 256]> = LazyLock::new(build_normal);
static INSTRUMENTED: LazyLock<[Handler; 256]> = LazyLock::new(|| [op_global_stub as Handler; 256]);

/// The dispatch table used when no global probes are active.
pub(crate) fn normal_table() -> &'static [Handler; 256] {
    &NORMAL
}

/// The dispatch table used in global-probe mode.
pub(crate) fn instrumented_table() -> &'static [Handler; 256] {
    &INSTRUMENTED
}

fn build_normal() -> [Handler; 256] {
    let mut t: [Handler; 256] = [op_invalid; 256];
    t[op::UNREACHABLE as usize] = op_unreachable;
    t[op::NOP as usize] = op_nop;
    t[op::BLOCK as usize] = op_block;
    t[op::LOOP as usize] = op_loop;
    t[op::IF as usize] = op_if;
    t[op::ELSE as usize] = op_else;
    t[op::END as usize] = op_end;
    t[op::BR as usize] = op_br;
    t[op::BR_IF as usize] = op_br_if;
    t[op::BR_TABLE as usize] = op_br_table;
    t[op::RETURN as usize] = op_return;
    t[op::CALL as usize] = op_call;
    t[op::CALL_INDIRECT as usize] = op_call_indirect;
    t[op::DROP as usize] = op_drop;
    t[op::SELECT as usize] = op_select;
    t[op::LOCAL_GET as usize] = op_local_get;
    t[op::LOCAL_SET as usize] = op_local_set;
    t[op::LOCAL_TEE as usize] = op_local_tee;
    t[op::GLOBAL_GET as usize] = op_global_get;
    t[op::GLOBAL_SET as usize] = op_global_set;
    t[op::MEMORY_SIZE as usize] = op_memory_size;
    t[op::MEMORY_GROW as usize] = op_memory_grow;
    t[op::I32_CONST as usize] = op_i32_const;
    t[op::I64_CONST as usize] = op_i64_const;
    t[op::F32_CONST as usize] = op_f32_const;
    t[op::F64_CONST as usize] = op_f64_const;
    let mut b = 0usize;
    while b < 256 {
        let byte = b as u8;
        if numeric::is_binop(byte) {
            t[b] = op_bin;
        } else if numeric::is_unop(byte) {
            t[b] = op_un;
        } else if op::is_load(byte) {
            t[b] = op_load;
        } else if op::is_store(byte) {
            t[b] = op_store;
        }
        b += 1;
    }
    t[op::PROBE as usize] = op_probe;
    t
}

/// Runs the current (interpreter-tier) frame until the invocation finishes,
/// the current frame changes tier, or a trap unwinds. `ex.pc` holds a
/// *byte* pc throughout.
pub(crate) fn run_frame(ex: &mut Exec) -> Result<Exit, Trap> {
    debug_assert_eq!(ex.frames.last().map(|f| f.tier), Some(Tier::Interp));
    loop {
        // Fuel metering (bounded runs only): one unit per bytecode
        // instruction, checked *before* dispatch so a suspension lands
        // before the instruction — and before its probes — execute.
        if ex.metered {
            if ex.fuel == 0 {
                ex.sync_pc();
                return Ok(Exit::OutOfFuel);
            }
            ex.fuel -= 1;
        }
        if ex.pc >= ex.code.len() {
            // Fell off the end of the function body: implicit return.
            match ex.do_return(Tier::Interp) {
                Ok(()) => continue,
                Err(Sig::Done) => return Ok(Exit::Done),
                Err(Sig::Switch) => return Ok(Exit::Redispatch),
                Err(Sig::Trap(t)) => return Err(t),
            }
        }
        let b = ex.code.byte(ex.pc);
        match ex.ctable[b as usize](ex, b) {
            Ok(()) => {}
            Err(Sig::Done) => return Ok(Exit::Done),
            Err(Sig::Switch) => return Ok(Exit::Redispatch),
            Err(Sig::Trap(t)) => return Err(t),
        }
    }
}

// ---- control ----

fn op_invalid(ex: &mut Exec, b: u8) -> Result<(), Sig> {
    unreachable!("invalid opcode {b:#04x} at pc={} in validated code", ex.pc)
}

fn op_unreachable(_ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    Err(Trap::Unreachable.into())
}

fn op_nop(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    ex.pc += 1;
    Ok(())
}

fn op_end(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    ex.pc += 1;
    Ok(())
}

fn op_block(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    ex.pc += 2; // opcode + block type byte
    Ok(())
}

fn op_loop(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    // Loop headers drive hotness-based tier-up with on-stack replacement
    // into compiled code — unless global-probe mode pins us to the
    // interpreter (paper §4.1).
    if ex.proc.config.mode == ExecMode::Tiered && !ex.proc.global_mode {
        let fc = &ex.proc.code[ex.lf];
        let h = fc.hotness.get() + 1;
        fc.hotness.set(h);
        if h >= ex.proc.config.tierup_threshold {
            ex.proc.ensure_compiled(ex.lf);
            let compiled = ex.proc.code[ex.lf].compiled.borrow().clone().expect("just compiled");
            if let Some(&ip) = compiled.code.osr_entry.get(&(ex.pc as u32)) {
                let f = ex.frames.last_mut().expect("frame");
                f.tier = Tier::Jit;
                f.cip = ip as usize;
                f.pc = ex.pc + 2; // unused while in JIT, kept sane
                f.code_version = compiled.version();
                ex.proc.stats.tier_ups += 1;
                return Err(Sig::Switch);
            }
        }
    }
    ex.pc += 2;
    Ok(())
}

fn side_target(ex: &Exec, pc: u32) -> wizard_wasm::validate::Target {
    match ex.meta.side.get(&pc) {
        Some(SideEntry::Br(t) | SideEntry::IfFalse(t) | SideEntry::ElseSkip(t)) => *t,
        other => unreachable!("missing side entry at pc={pc}: {other:?}"),
    }
}

fn op_if(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let cond = ex.pop().i32();
    if cond != 0 {
        ex.pc += 2;
    } else {
        let t = side_target(ex, ex.pc as u32);
        ex.do_branch(t);
    }
    Ok(())
}

fn op_else(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    // Reached only by falling out of the then-branch: skip to after `end`.
    let t = side_target(ex, ex.pc as u32);
    ex.do_branch(t);
    Ok(())
}

fn op_br(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let t = side_target(ex, ex.pc as u32);
    ex.do_branch(t);
    Ok(())
}

fn op_br_if(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let cond = ex.pop().i32();
    if cond != 0 {
        let t = side_target(ex, ex.pc as u32);
        ex.do_branch(t);
    } else {
        let (_, next) = ex.code.read_u32(ex.pc + 1);
        ex.pc = next;
    }
    Ok(())
}

fn op_br_table(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let idx = ex.pop().u32() as usize;
    let pc = ex.pc as u32;
    let t = match ex.meta.side.get(&pc) {
        Some(SideEntry::Table(entries)) => {
            let i = idx.min(entries.len() - 1);
            entries[i]
        }
        other => unreachable!("missing br_table side entry at pc={pc}: {other:?}"),
    };
    ex.do_branch(t);
    Ok(())
}

fn op_return(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    ex.do_return(Tier::Interp)
}

fn op_call(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let (callee, next) = ex.code.read_u32(ex.pc + 1);
    ex.pc = next;
    ex.sync_pc();
    ex.do_call(callee, Tier::Interp)
}

fn op_call_indirect(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let (type_idx, p) = ex.code.read_u32(ex.pc + 1);
    let (_table, next) = ex.code.read_u32(p);
    ex.pc = next;
    ex.sync_pc();
    ex.do_call_indirect(type_idx, Tier::Interp)
}

// ---- parametric ----

fn op_drop(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    ex.pop();
    ex.pc += 1;
    Ok(())
}

fn op_select(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let c = ex.pop().i32();
    let v2 = ex.pop();
    let v1 = ex.pop();
    ex.push(if c != 0 { v1 } else { v2 });
    ex.pc += 1;
    Ok(())
}

// ---- variables ----

fn op_local_get(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let (i, next) = ex.code.read_u32(ex.pc + 1);
    let v = ex.values[ex.base + i as usize];
    ex.values.push(v);
    ex.pc = next;
    Ok(())
}

fn op_local_set(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let (i, next) = ex.code.read_u32(ex.pc + 1);
    let v = ex.pop();
    ex.values[ex.base + i as usize] = v.0;
    ex.pc = next;
    Ok(())
}

fn op_local_tee(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let (i, next) = ex.code.read_u32(ex.pc + 1);
    let v = ex.peek();
    ex.values[ex.base + i as usize] = v.0;
    ex.pc = next;
    Ok(())
}

fn op_global_get(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let (i, next) = ex.code.read_u32(ex.pc + 1);
    let v = ex.proc.globals[i as usize];
    ex.values.push(v);
    ex.pc = next;
    Ok(())
}

fn op_global_set(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let (i, next) = ex.code.read_u32(ex.pc + 1);
    let v = ex.pop();
    ex.proc.globals[i as usize] = v.0;
    ex.pc = next;
    Ok(())
}

// ---- memory ----

fn op_load(ex: &mut Exec, b: u8) -> Result<(), Sig> {
    let (_align, p) = ex.code.read_u32(ex.pc + 1);
    let (offset, next) = ex.code.read_u32(p);
    let addr = ex.pop().u32();
    let mem = ex.proc.memory.as_ref().expect("validated: memory exists");
    let v = numeric::do_load(mem, b, addr, offset)?;
    ex.push(v);
    ex.pc = next;
    Ok(())
}

fn op_store(ex: &mut Exec, b: u8) -> Result<(), Sig> {
    let (_align, p) = ex.code.read_u32(ex.pc + 1);
    let (offset, next) = ex.code.read_u32(p);
    let val = ex.pop();
    let addr = ex.pop().u32();
    let mem = ex.proc.memory.as_mut().expect("validated: memory exists");
    numeric::do_store(mem, b, addr, offset, val)?;
    ex.pc = next;
    Ok(())
}

fn op_memory_size(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let pages = ex.proc.memory.as_ref().expect("validated").pages();
    ex.push(Slot::from_u32(pages));
    ex.pc += 2;
    Ok(())
}

fn op_memory_grow(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let delta = ex.pop().u32();
    let r = ex.proc.memory.as_mut().expect("validated").grow(delta);
    ex.push(Slot::from_i32(r));
    ex.pc += 2;
    Ok(())
}

// ---- constants ----

fn op_i32_const(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let (v, next) = ex.code.read_i32(ex.pc + 1);
    ex.push(Slot::from_i32(v));
    ex.pc = next;
    Ok(())
}

fn op_i64_const(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let (v, next) = ex.code.read_i64(ex.pc + 1);
    ex.push(Slot::from_i64(v));
    ex.pc = next;
    Ok(())
}

fn op_f32_const(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let (bits, next) = ex.code.read_f32_bits(ex.pc + 1);
    ex.push(Slot::from_u32(bits));
    ex.pc = next;
    Ok(())
}

fn op_f64_const(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let (bits, next) = ex.code.read_f64_bits(ex.pc + 1);
    ex.push(Slot::from_u64(bits));
    ex.pc = next;
    Ok(())
}

// ---- numeric ----

fn op_bin(ex: &mut Exec, b: u8) -> Result<(), Sig> {
    let rhs = ex.pop();
    let lhs = ex.pop();
    let r = numeric::binop(b, lhs, rhs)?;
    ex.push(r);
    ex.pc += 1;
    Ok(())
}

fn op_un(ex: &mut Exec, b: u8) -> Result<(), Sig> {
    let a = ex.pop();
    let r = numeric::unop(b, a)?;
    ex.push(r);
    ex.pc += 1;
    Ok(())
}

// ---- instrumentation ----

/// Handler for the probe opcode installed by bytecode overwriting: fires
/// local probes, then executes the original instruction (paper §4.2).
fn op_probe(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    let pc = ex.pc as u32;
    let loc = Location { func: ex.func, pc };
    if ex.skip_probe == Some(loc) {
        // The probes at this location already fired (in the JIT tier,
        // immediately before deoptimizing here). Execute the original
        // instruction without re-firing.
        ex.skip_probe = None;
    } else {
        ex.fire_local_probes(pc);
    }
    // The firing probes may have removed themselves (restoring the byte);
    // re-read and dispatch the original opcode either way. Immediates are
    // untouched by overwriting, so handlers decode them normally.
    let b = ex.code.byte(ex.pc);
    let orig = if b == op::PROBE { ex.proc.code[ex.lf].orig_opcode(pc) } else { b };
    normal_table()[orig as usize](ex, orig)
}

/// Every entry of the instrumented dispatch table: fire global probes for
/// this instruction, then dispatch its real handler through the normal
/// table (paper §4.1).
fn op_global_stub(ex: &mut Exec, _b: u8) -> Result<(), Sig> {
    ex.fire_global_probes(ex.pc as u32);
    // Global probes may themselves have mutated instrumentation; re-read.
    let b = ex.code.byte(ex.pc);
    normal_table()[b as usize](ex, b)
}
