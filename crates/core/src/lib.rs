//! `wizard-engine`: a multi-tier WebAssembly engine with flexible,
//! non-intrusive dynamic instrumentation — the primary contribution of
//! Titzer et al., *Flexible Non-intrusive Dynamic Instrumentation for
//! WebAssembly* (ASPLOS 2024), reproduced in Rust.
//!
//! # Architecture
//!
//! * **In-place interpreter** ([`interp`](crate)): executes original
//!   bytecode through a 256-entry dispatch table of handler function
//!   pointers, with a precomputed branch side table. Global probes are
//!   implemented by *switching the dispatch table pointer* — zero overhead
//!   when disabled.
//! * **Local probes** are implemented by *bytecode overwriting*: the probed
//!   instruction's opcode byte is replaced by a reserved probe opcode, and
//!   the original is kept on the side — zero overhead for uninstrumented
//!   instructions, O(1) insertion/removal, and offsets stay valid.
//! * **JIT tier** ([`jit`]): functions are compiled to pre-decoded
//!   micro-ops; local probes are compiled into the code. `CountProbe`s and
//!   top-of-stack operand probes can be *intrinsified* — inlined or called
//!   directly without reifying a FrameAccessor.
//! * **Consistency** ([`probe`], [`exec`]): insertion order is firing
//!   order; inserts/removals during an event are deferred to its end; frame
//!   modifications deoptimize exactly the modified frame back to the
//!   interpreter (strategy 4 of §4.6); probe changes invalidate compiled
//!   code and existing frames deoptimize at the next safe point.
//! * **FrameAccessor** ([`frame`], [`exec::ProbeCtx`]): probes receive
//!   program state through a façade over the live frame, with validity
//!   protection against dangling access.
//!
//! # Quick start
//!
//! ```
//! use wizard_engine::{CountProbe, EngineConfig, Process};
//! use wizard_engine::store::Linker;
//! use wizard_engine::value::Value;
//! use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
//! use wizard_wasm::types::ValType::I32;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a module with a loop.
//! let mut mb = ModuleBuilder::new();
//! let mut f = FuncBuilder::new(&[I32], &[I32]);
//! let i = f.local(I32);
//! let acc = f.local(I32);
//! f.for_range(i, 0, |f| {
//!     f.local_get(acc).local_get(i).i32_add().local_set(acc);
//! });
//! f.local_get(acc);
//! mb.add_func("sum", f);
//! let module = mb.build()?;
//!
//! // Instantiate and attach a counter probe at pc 0 of the function.
//! let mut process = Process::new(module, EngineConfig::default(), &Linker::new())?;
//! let func = process.module().export_func("sum").unwrap();
//! let probe = CountProbe::new();
//! let counter = probe.cell();
//! process.add_local_probe_val(func, 0, probe)?;
//!
//! let r = process.invoke(func, &[Value::I32(10)])?;
//! assert_eq!(r, vec![Value::I32(45)]);
//! assert_eq!(counter.get(), 1); // entry instruction executed once
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod code;
mod engine;
pub mod exec;
pub mod frame;
mod interp;
pub mod jit;
pub mod numeric;
pub mod probe;
pub mod store;
pub mod trap;
pub mod value;

pub use engine::{EngineConfig, EngineStats, ExecMode, LinkError, ProbeError, Process};
pub use exec::{FrameModError, FrameView, ProbeCtx};
pub use frame::{FrameAccessor, Tier};
pub use probe::{
    ClosureProbe, CountProbe, EmptyOperandProbe, EmptyProbe, Location, Probe, ProbeId, ProbeKind,
    ProbeRef,
};
pub use trap::Trap;
pub use value::{Slot, Value};
