//! `wizard-engine`: a multi-tier WebAssembly engine with flexible,
//! non-intrusive dynamic instrumentation — the primary contribution of
//! Titzer et al., *Flexible Non-intrusive Dynamic Instrumentation for
//! WebAssembly* (ASPLOS 2024), reproduced in Rust.
//!
//! # Architecture
//!
//! * **Shared artifacts & copy-on-write overlays** ([`artifact`],
//!   [`code`]): a [`ModuleArtifact`] holds everything process-independent
//!   — the validated module, side-table metadata, per-function lowered
//!   code and probe-free baseline JIT code — built once, `Arc`-shared and
//!   `Send + Sync`. [`Process::instantiate`] links against it without
//!   re-validating; uninstrumented processes execute *the same* shared
//!   code (pointer-equal), and the first probe a process installs in a
//!   function copy-on-writes just that function into its private overlay
//!   — invisible to siblings, dropped again when the last probe detaches.
//! * **Lowered interpreter** ([`lowered`]): each function body is lowered
//!   *once* into fixed-width internal instructions — immediates
//!   pre-decoded, branch side table fused into pre-resolved targets — and
//!   the interpreter dispatches over lowered slots through a 256-entry
//!   handler table. A bidirectional `pc ↔ slot` map keeps the paper's
//!   byte-offset location space as the public contract. Global probes are
//!   implemented by *switching the dispatch table pointer* — zero overhead
//!   when disabled. The classic byte-walking dispatch survives as
//!   [`Dispatch::Bytecode`], the measured baseline for the lowering win.
//! * **Local probes** are implemented by *bytecode overwriting*: the probed
//!   instruction's opcode byte is replaced by a reserved probe opcode, and
//!   the original is kept on the side — zero overhead for uninstrumented
//!   instructions, O(1) insertion/removal, and offsets stay valid.
//! * **JIT tier** ([`jit`]): functions are compiled to pre-decoded
//!   micro-ops; local probes are compiled into the code. `CountProbe`s and
//!   top-of-stack operand probes can be *intrinsified* — inlined or called
//!   directly without reifying a FrameAccessor.
//! * **Consistency** ([`probe`], [`exec`]): insertion order is firing
//!   order; inserts/removals during an event are deferred to its end; frame
//!   modifications deoptimize exactly the modified frame back to the
//!   interpreter (strategy 4 of §4.6); probe changes invalidate compiled
//!   code and existing frames deoptimize at the next safe point.
//! * **FrameAccessor** ([`frame`], [`exec::ProbeCtx`]): probes receive
//!   program state through a façade over the live frame, with validity
//!   protection against dangling access.
//! * **Preemptible execution** ([`Process::run_bounded`],
//!   [`Process::resume`]): invocations can be fuel-metered — one unit per
//!   bytecode instruction — and suspend with [`RunOutcome::OutOfFuel`] at a
//!   bytecode-valid resume point when the slice runs out. Suspension is
//!   transparent to instrumentation (a bounded run fires exactly the
//!   probes of an unbounded run) and tolerant of instrumentation changes
//!   while parked, which is what lets `wizard-pool` multiplex many
//!   instrumented processes over one engine thread.
//! * **Monitor lifecycle** ([`monitor`]): analyses implement the
//!   [`Monitor`] trait and are attached/detached as sessions —
//!   [`Process::attach_monitor`] records every probe a monitor inserts
//!   (batched via [`ProbeBatch`], one invalidation pass for N probes) and
//!   [`Process::detach_monitor`] removes them all, provably restoring the
//!   zero-overhead baseline. Reports are structured ([`Report`]): named
//!   sections of typed key/value rows.
//!
//! # Quick start: raw probes
//!
//! ```
//! use wizard_engine::{CountProbe, EngineConfig, Process};
//! use wizard_engine::store::Linker;
//! use wizard_engine::value::Value;
//! use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
//! use wizard_wasm::types::ValType::I32;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a module with a loop.
//! let mut mb = ModuleBuilder::new();
//! let mut f = FuncBuilder::new(&[I32], &[I32]);
//! let i = f.local(I32);
//! let acc = f.local(I32);
//! f.for_range(i, 0, |f| {
//!     f.local_get(acc).local_get(i).i32_add().local_set(acc);
//! });
//! f.local_get(acc);
//! mb.add_func("sum", f);
//! let module = mb.build()?;
//!
//! // Instantiate and attach a counter probe at pc 0 of the function.
//! let mut process = Process::new(module, EngineConfig::default(), &Linker::new())?;
//! let func = process.module().export_func("sum").unwrap();
//! let probe = CountProbe::new();
//! let counter = probe.cell();
//! process.add_local_probe_val(func, 0, probe)?;
//!
//! let r = process.invoke(func, &[Value::I32(10)])?;
//! assert_eq!(r, vec![Value::I32(45)]);
//! assert_eq!(counter.get(), 1); // entry instruction executed once
//! # Ok(())
//! # }
//! ```
//!
//! # Quick start: a lifecycle monitor
//!
//! ```
//! use wizard_engine::store::Linker;
//! use wizard_engine::{
//!     CountProbe, EngineConfig, InstrumentationCtx, Monitor, ProbeBatch, ProbeError,
//!     Process, Report, Value,
//! };
//! use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
//! use wizard_wasm::types::ValType::I32;
//!
//! /// Counts entries of every exported function.
//! #[derive(Default)]
//! struct EntryCounter {
//!     cells: Vec<std::rc::Rc<std::cell::Cell<u64>>>,
//! }
//!
//! impl Monitor for EntryCounter {
//!     fn name(&self) -> &'static str {
//!         "entry-counter"
//!     }
//!
//!     fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
//!         let funcs: Vec<u32> = (ctx.module().num_imported_funcs()
//!             ..ctx.module().num_funcs())
//!             .collect();
//!         let mut batch = ProbeBatch::new(); // N probes, 1 invalidation pass
//!         for func in funcs {
//!             let probe = CountProbe::new();
//!             self.cells.push(probe.cell());
//!             batch.add_local_val(func, 0, probe);
//!         }
//!         ctx.apply_batch(batch)?;
//!         Ok(())
//!     }
//!
//!     fn report(&self) -> Report {
//!         let mut r = Report::new(self.name());
//!         r.section("summary")
//!             .count("entries", self.cells.iter().map(|c| c.get()).sum());
//!         r
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let mut f = FuncBuilder::new(&[I32], &[I32]);
//! f.local_get(0).i32_const(1).i32_add();
//! mb.add_func("inc", f);
//!
//! let config = EngineConfig::builder().tierup_threshold(10).build();
//! let mut process = Process::new(mb.build()?, config, &Linker::new())?;
//!
//! let counter = process.attach_monitor(EntryCounter::default())?;
//! process.invoke_export("inc", &[Value::I32(41)])?;
//! assert_eq!(counter.report().get("summary").unwrap().count_of("entries"), Some(1));
//!
//! // Detach removes all recorded probes: back to the zero-overhead baseline.
//! process.detach_monitor(counter.handle())?;
//! assert_eq!(process.probed_location_count(), 0);
//! assert!(!process.in_global_mode());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod artifact;
mod classic;
pub mod code;
mod engine;
pub mod exec;
pub mod frame;
pub mod handoff;
mod interp;
pub mod jit;
pub mod lowered;
pub mod monitor;
pub mod numeric;
pub mod probe;
mod regint;
pub mod regir;
pub mod shims;
pub mod store;
pub mod trap;
pub mod value;

pub use artifact::{FuncArtifact, ModuleArtifact};
pub use engine::{
    register_lowering_validator, Dispatch, EngineConfig, EngineConfigBuilder, EngineStats,
    ExecMode, LinkError, ProbeError, Process, RunOutcome,
};
pub use exec::{FrameModError, FrameView, ProbeCtx};
pub use frame::{FrameAccessor, Tier};
pub use handoff::Handoff;
pub use monitor::{
    InstrumentationCtx, MetricValue, Monitor, MonitorHandle, MonitorRef, Report, Row, Section,
};
pub use probe::{
    ClosureProbe, CountProbe, EmptyOperandProbe, EmptyProbe, Location, Probe, ProbeBatch, ProbeId,
    ProbeKind, ProbeRef,
};
pub use shims::{ShimError, Shims};
pub use trap::Trap;
pub use value::{Slot, Value};
