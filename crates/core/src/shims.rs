//! Host-shim registry: canonical, deterministic host implementations for
//! the import namespaces real-world binaries expect (`env`,
//! `wasi_snapshot_preview1`, `spectest`).
//!
//! The engine links imports through a [`Linker`], which maps
//! `(module, name)` pairs to host closures but knows nothing about what a
//! *typical* binary needs. [`Shims`] sits one level above: it is a typed
//! registry of well-known host functions and globals, can build a
//! [`Linker`] for any module whose imports it covers, and reports a
//! precise [`ShimError`] — naming the import, its kind, the expected and
//! actual signatures, and what *is* registered in that namespace — when a
//! module needs something it does not provide.
//!
//! Every shim is deterministic: instead of performing I/O, observable
//! effects (logged values, written buffers, issued timestamps) are folded
//! into a [digest](Shims::digest) and per-shim call counters. That makes
//! host calls *differentially testable*: two runs of the same program on
//! different dispatchers must produce identical digests, so the
//! conformance harness can assert that instrumentation and tiering never
//! perturb the host boundary.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use wizard_wasm::module::{ImportDesc, Module};
use wizard_wasm::types::{FuncType, ValType};

use crate::store::{HostCtx, Linker};
use crate::trap::Trap;
use crate::value::Value;

/// Error building a [`Linker`] for a module from a shim registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShimError {
    /// No shim is registered under the import's `(module, name)` pair.
    /// Carries the names registered in that namespace for the message.
    UnknownImport {
        /// Import module namespace.
        module: String,
        /// Import name.
        name: String,
        /// Import kind ("function" or "global").
        kind: &'static str,
        /// Shims registered under the same namespace and kind.
        known: Vec<String>,
    },
    /// A function shim exists but its signature differs from the type the
    /// module declares for the import.
    SignatureMismatch {
        /// Import module namespace.
        module: String,
        /// Import name.
        name: String,
        /// The registered shim's signature.
        want: String,
        /// The module's declared signature.
        got: String,
    },
    /// A global shim exists but its value type differs.
    GlobalTypeMismatch {
        /// Import module namespace.
        module: String,
        /// Import name.
        name: String,
        /// The registered global's type.
        want: ValType,
        /// The module's declared type.
        got: ValType,
    },
    /// The import kind itself (memory or table) is not instantiable by
    /// this engine; the module must define it locally.
    UnsupportedKind {
        /// Import module namespace.
        module: String,
        /// Import name.
        name: String,
        /// Import kind ("memory" or "table").
        kind: &'static str,
    },
}

impl core::fmt::Display for ShimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShimError::UnknownImport { module, name, kind, known } => {
                write!(f, "no host shim registered for {kind} import {module}.{name}")?;
                if known.is_empty() {
                    write!(f, " (namespace {module:?} has no registered {kind} shims)")
                } else {
                    write!(f, " (registered {kind} shims in {module:?}: {})", known.join(", "))
                }
            }
            ShimError::SignatureMismatch { module, name, want, got } => write!(
                f,
                "host shim {module}.{name} has signature {want}, but the module imports it \
                 as {got}"
            ),
            ShimError::GlobalTypeMismatch { module, name, want, got } => write!(
                f,
                "host global {module}.{name} has type {want:?}, but the module imports it \
                 as {got:?}"
            ),
            ShimError::UnsupportedKind { module, name, kind } => write!(
                f,
                "imported {kind} {module}.{name} is not supported by this engine; the module \
                 must define its {kind} locally"
            ),
        }
    }
}

impl std::error::Error for ShimError {}

/// Shared mutable state behind every shim closure: call counters and the
/// deterministic digest of everything the host observed.
#[derive(Debug, Default)]
struct ShimState {
    calls: RefCell<BTreeMap<String, u64>>,
    digest: Cell<u64>,
    ticks: Cell<i64>,
    rand: Cell<u64>,
}

impl ShimState {
    fn record(&self, key: &str) {
        *self.calls.borrow_mut().entry(key.to_string()).or_insert(0) += 1;
    }

    /// Folds an observed value into the digest (xor-rotate-multiply; the
    /// same mixer as the suites' checksums).
    fn mix(&self, v: u64) {
        let d = (self.digest.get() ^ v).rotate_left(13).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.digest.set(d);
    }
}

/// Formats a function type like `(i32, i64) -> (i32)` for error messages.
fn fmt_sig(params: &[ValType], results: &[ValType]) -> String {
    fn list(ts: &[ValType]) -> String {
        ts.iter()
            .map(|t| match t {
                ValType::I32 => "i32",
                ValType::I64 => "i64",
                ValType::F32 => "f32",
                ValType::F64 => "f64",
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
    format!("({}) -> ({})", list(params), list(results))
}

/// A typed host-shim registry. See the module docs for the contract.
///
/// # Examples
///
/// ```
/// use wizard_engine::shims::Shims;
/// use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
/// use wizard_wasm::types::ValType::I32;
///
/// let mut mb = ModuleBuilder::new();
/// let log = mb.import_func("env", "log_i32", &[I32], &[]);
/// let mut f = FuncBuilder::new(&[I32], &[]);
/// f.local_get(0).call(log);
/// mb.add_func("run", f);
/// let module = mb.build().unwrap();
///
/// let shims = Shims::standard();
/// let linker = shims.linker_for(&module).unwrap();
/// # let _ = linker;
/// ```
#[derive(Debug)]
pub struct Shims {
    linker: Linker,
    func_sigs: BTreeMap<(String, String), FuncType>,
    global_types: BTreeMap<(String, String), ValType>,
    state: Rc<ShimState>,
}

impl Shims {
    /// Creates an empty registry (no shims). Use [`Shims::standard`] for
    /// the canonical set.
    pub fn new() -> Shims {
        Shims {
            linker: Linker::new(),
            func_sigs: BTreeMap::new(),
            global_types: BTreeMap::new(),
            state: Rc::new(ShimState::default()),
        }
    }

    /// Registers a typed host function shim. The closure receives the
    /// shared [`HostCtx`] and arguments like a raw [`Linker`] closure.
    pub fn func(
        &mut self,
        module: &str,
        name: &str,
        params: &[ValType],
        results: &[ValType],
        f: impl Fn(&mut HostCtx<'_>, &[Value]) -> Result<Vec<Value>, Trap> + 'static,
    ) -> &mut Self {
        self.func_sigs
            .insert((module.to_string(), name.to_string()), FuncType::new(params, results));
        let state = Rc::clone(&self.state);
        let key = format!("{module}.{name}");
        self.linker.func(module, name, move |ctx, args| {
            state.record(&key);
            f(ctx, args)
        });
        self
    }

    /// Registers an imported-global shim.
    pub fn global(&mut self, module: &str, name: &str, v: Value) -> &mut Self {
        self.global_types.insert((module.to_string(), name.to_string()), v.ty());
        self.linker.global(module, name, v);
        self
    }

    /// The canonical registry: deterministic logging, tracing, abort and
    /// clock shims under `env`, a WASI-preview1 subset, and the spectest
    /// printing shims. Every observable effect folds into the digest.
    pub fn standard() -> Shims {
        let mut s = Shims::new();
        use ValType::{F64, I32, I64};

        let st = Rc::clone(&s.state);
        s.func("env", "log_i32", &[I32], &[], move |_, args| {
            if let Value::I32(v) = args[0] {
                st.mix(v as u32 as u64);
            }
            Ok(vec![])
        });
        let st = Rc::clone(&s.state);
        s.func("env", "log_i64", &[I64], &[], move |_, args| {
            if let Value::I64(v) = args[0] {
                st.mix(v as u64);
            }
            Ok(vec![])
        });
        let st = Rc::clone(&s.state);
        s.func("env", "log_f64", &[F64], &[], move |_, args| {
            if let Value::F64(v) = args[0] {
                st.mix(v.to_bits());
            }
            Ok(vec![])
        });
        // AssemblyScript-style abort(msg, file, line, col): traps with the
        // location so the failure is attributable.
        s.func("env", "abort", &[I32, I32, I32, I32], &[], |_, args| {
            Err(Trap::Host(format!(
                "abort(msg={:?}, file={:?}, line={:?}, col={:?})",
                args[0], args[1], args[2], args[3]
            )))
        });
        // A deterministic monotonic clock: each call returns the next tick,
        // so identical call sequences observe identical times everywhere.
        let st = Rc::clone(&s.state);
        s.func("env", "ticks", &[], &[I64], move |_, _| {
            let t = st.ticks.get();
            st.ticks.set(t + 1);
            st.mix(t as u64);
            Ok(vec![Value::I64(t)])
        });
        // trace(ptr, len): folds a guest byte range into the digest.
        let st = Rc::clone(&s.state);
        s.func("env", "trace", &[I32, I32], &[], move |ctx, args| {
            let (Value::I32(ptr), Value::I32(len)) = (args[0], args[1]) else {
                return Err(Trap::Host("trace: bad argument types".into()));
            };
            let mem = ctx.memory.as_ref().ok_or_else(|| Trap::Host("trace: no memory".into()))?;
            let (start, end) = (ptr as u32 as usize, ptr as u32 as usize + len as u32 as usize);
            let bytes = mem
                .data()
                .get(start..end)
                .ok_or_else(|| Trap::Host("trace: out of bounds".into()))?;
            for &b in bytes {
                st.mix(u64::from(b));
            }
            Ok(vec![])
        });

        let st = Rc::clone(&s.state);
        s.func("spectest", "print_i32", &[I32], &[], move |_, args| {
            if let Value::I32(v) = args[0] {
                st.mix(v as u32 as u64);
            }
            Ok(vec![])
        });

        // WASI preview1 subset. fd_write consumes iovecs from guest memory,
        // digests the bytes, reports the total written, and returns errno 0.
        let st = Rc::clone(&s.state);
        s.func("wasi_snapshot_preview1", "fd_write", &[I32, I32, I32, I32], &[I32], move |ctx, args| {
            let (Value::I32(_fd), Value::I32(iovs), Value::I32(iovs_len), Value::I32(nwritten)) =
                (args[0], args[1], args[2], args[3])
            else {
                return Err(Trap::Host("fd_write: bad argument types".into()));
            };
            let mem =
                ctx.memory.as_mut().ok_or_else(|| Trap::Host("fd_write: no memory".into()))?;
            let mut total: u32 = 0;
            for k in 0..iovs_len as u32 {
                let base = iovs as u32 + k * 8;
                let ptr = u32::from_le_bytes(mem.read::<4>(base, 0).map_err(wasi_oob)?);
                let len = u32::from_le_bytes(mem.read::<4>(base, 4).map_err(wasi_oob)?);
                let (s0, s1) = (ptr as usize, ptr as usize + len as usize);
                let bytes =
                    mem.data().get(s0..s1).ok_or_else(|| wasi_oob(Trap::MemoryOutOfBounds))?;
                for &b in bytes {
                    st.mix(u64::from(b));
                }
                total = total.wrapping_add(len);
            }
            mem.write::<4>(nwritten as u32, 0, total.to_le_bytes()).map_err(wasi_oob)?;
            Ok(vec![Value::I32(0)])
        });
        // random_get: a deterministic xorshift64* stream, so "randomness"
        // is identical across dispatchers and runs.
        let st = Rc::clone(&s.state);
        s.func("wasi_snapshot_preview1", "random_get", &[I32, I32], &[I32], move |ctx, args| {
            let (Value::I32(buf), Value::I32(len)) = (args[0], args[1]) else {
                return Err(Trap::Host("random_get: bad argument types".into()));
            };
            let mem =
                ctx.memory.as_mut().ok_or_else(|| Trap::Host("random_get: no memory".into()))?;
            for k in 0..len as u32 {
                let mut x = st.rand.get() | 1;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                st.rand.set(x);
                let byte = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8;
                mem.write::<1>(buf as u32 + k, 0, [byte]).map_err(wasi_oob)?;
                st.mix(u64::from(byte));
            }
            Ok(vec![Value::I32(0)])
        });
        s.func("wasi_snapshot_preview1", "proc_exit", &[I32], &[], |_, args| {
            Err(Trap::Host(format!("proc_exit({:?})", args[0])))
        });

        // Well-known globals: emscripten-style layout bases plus a gas
        // budget the corpus contracts consult.
        s.global("env", "__memory_base", Value::I32(1024));
        s.global("env", "__table_base", Value::I32(0));
        s.global("env", "gas_limit", Value::I64(1_000_000));
        s.global("spectest", "global_i32", Value::I32(666));
        s
    }

    /// Builds a [`Linker`] covering `module`'s imports, or a precise
    /// [`ShimError`] naming the first import this registry cannot satisfy.
    ///
    /// The returned linker shares this registry's counters and digest, so
    /// several processes linked from one `Shims` accumulate into the same
    /// observation state.
    ///
    /// # Errors
    ///
    /// [`ShimError::UnknownImport`] for an unregistered `(module, name)`,
    /// [`ShimError::SignatureMismatch`] / [`ShimError::GlobalTypeMismatch`]
    /// for a type conflict, and [`ShimError::UnsupportedKind`] for memory
    /// or table imports (an engine-level restriction).
    pub fn linker_for(&self, module: &Module) -> Result<Linker, ShimError> {
        for imp in &module.imports {
            let key = (imp.module.clone(), imp.name.clone());
            match &imp.desc {
                ImportDesc::Func(type_idx) => {
                    let Some(want) = self.func_sigs.get(&key) else {
                        return Err(self.unknown(imp, "function"));
                    };
                    let got = module.types.get(*type_idx as usize);
                    if got != Some(want) {
                        return Err(ShimError::SignatureMismatch {
                            module: imp.module.clone(),
                            name: imp.name.clone(),
                            want: fmt_sig(&want.params, &want.results),
                            got: got.map_or_else(
                                || format!("bad type index {type_idx}"),
                                |t| fmt_sig(&t.params, &t.results),
                            ),
                        });
                    }
                }
                ImportDesc::Global(g) => {
                    let Some(want) = self.global_types.get(&key) else {
                        return Err(self.unknown(imp, "global"));
                    };
                    if *want != g.value {
                        return Err(ShimError::GlobalTypeMismatch {
                            module: imp.module.clone(),
                            name: imp.name.clone(),
                            want: *want,
                            got: g.value,
                        });
                    }
                }
                ImportDesc::Memory(_) => {
                    return Err(ShimError::UnsupportedKind {
                        module: imp.module.clone(),
                        name: imp.name.clone(),
                        kind: "memory",
                    });
                }
                ImportDesc::Table(_) => {
                    return Err(ShimError::UnsupportedKind {
                        module: imp.module.clone(),
                        name: imp.name.clone(),
                        kind: "table",
                    });
                }
            }
        }
        Ok(self.linker.clone())
    }

    fn unknown(&self, imp: &wizard_wasm::module::Import, kind: &'static str) -> ShimError {
        let keys: Vec<&(String, String)> = match kind {
            "function" => self.func_sigs.keys().collect(),
            _ => self.global_types.keys().collect(),
        };
        let known =
            keys.into_iter().filter(|(m, _)| *m == imp.module).map(|(_, n)| n.clone()).collect();
        ShimError::UnknownImport { module: imp.module.clone(), name: imp.name.clone(), kind, known }
    }

    /// Times a shim has been called, by `"module.name"` key.
    pub fn calls(&self, key: &str) -> u64 {
        self.state.calls.borrow().get(key).copied().unwrap_or(0)
    }

    /// Total host calls observed through this registry.
    pub fn total_calls(&self) -> u64 {
        self.state.calls.borrow().values().sum()
    }

    /// Per-shim call counts in deterministic (sorted) order.
    pub fn call_counts(&self) -> Vec<(String, u64)> {
        self.state.calls.borrow().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// The deterministic digest of everything shims observed: logged
    /// values, traced/written guest bytes, issued ticks. Two runs of the
    /// same program must produce the same digest regardless of dispatcher,
    /// tier, or instrumentation.
    pub fn digest(&self) -> u64 {
        self.state.digest.get()
    }

    /// Resets counters, digest, and deterministic clock/rng streams.
    pub fn reset(&self) {
        self.state.calls.borrow_mut().clear();
        self.state.digest.set(0);
        self.state.ticks.set(0);
        self.state.rand.set(0);
    }
}

impl Default for Shims {
    fn default() -> Shims {
        Shims::standard()
    }
}

/// Maps a guest-memory trap inside a WASI shim to a host trap that names
/// the shim boundary (the guest handed us a bad pointer).
fn wasi_oob(_: Trap) -> Trap {
    Trap::Host("wasi: guest buffer out of bounds".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Process};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::module::ConstExpr;
    use wizard_wasm::types::ValType::{I32, I64};

    #[test]
    fn resolves_known_imports_and_runs() {
        let mut mb = ModuleBuilder::new();
        let log = mb.import_func("env", "log_i32", &[I32], &[]);
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).call(log);
        f.local_get(0).i32_const(2).i32_mul();
        mb.add_func("run", f);
        let m = mb.build().unwrap();

        let shims = Shims::standard();
        let linker = shims.linker_for(&m).unwrap();
        let mut p = Process::new(m, EngineConfig::default(), &linker).unwrap();
        let r = p.invoke_export("run", &[Value::I32(21)]).unwrap();
        assert_eq!(r, vec![Value::I32(42)]);
        assert_eq!(shims.calls("env.log_i32"), 1);
        assert_ne!(shims.digest(), 0);
    }

    #[test]
    fn unknown_import_error_lists_namespace() {
        let mut mb = ModuleBuilder::new();
        mb.import_func("env", "nonexistent", &[I32], &[]);
        let m = mb.build_unchecked();
        let err = Shims::standard().linker_for(&m).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("no host shim registered for function import env.nonexistent"),
            "{msg}"
        );
        assert!(msg.contains("log_i32"), "{msg}");
    }

    #[test]
    fn signature_mismatch_error_names_both_signatures() {
        let mut mb = ModuleBuilder::new();
        // log_i32 imported with the wrong signature (i64 -> i64).
        mb.import_func("env", "log_i32", &[I64], &[I64]);
        let m = mb.build_unchecked();
        let err = Shims::standard().linker_for(&m).unwrap_err();
        assert_eq!(
            err.to_string(),
            "host shim env.log_i32 has signature (i32) -> (), but the module imports it \
             as (i64) -> (i64)"
        );
    }

    #[test]
    fn imported_global_resolves_and_mismatch_is_precise() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[], &[I64]);
        f.global_get(0);
        mb.add_func("get", f);
        let mut m = mb.build_unchecked();
        m.imports.push(wizard_wasm::module::Import {
            module: "env".into(),
            name: "gas_limit".into(),
            desc: ImportDesc::Global(wizard_wasm::types::GlobalType { value: I64, mutable: false }),
        });
        let shims = Shims::standard();
        let linker = shims.linker_for(&m).unwrap();
        let mut p = Process::new(m.clone(), EngineConfig::default(), &linker).unwrap();
        assert_eq!(p.invoke_export("get", &[]).unwrap(), vec![Value::I64(1_000_000)]);

        // Same import demanded as i32: precise type error.
        m.imports[0].desc =
            ImportDesc::Global(wizard_wasm::types::GlobalType { value: I32, mutable: false });
        let err = shims.linker_for(&m).unwrap_err();
        assert!(matches!(err, ShimError::GlobalTypeMismatch { got: I32, want: I64, .. }), "{err}");
    }

    #[test]
    fn digest_is_deterministic_across_processes() {
        let mut mb = ModuleBuilder::new();
        let log = mb.import_func("env", "log_i64", &[I64], &[]);
        let g = mb.global(I64, true, ConstExpr::I64(3));
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        f.for_range(i, 0, |f| {
            f.global_get(g).i64_const(7).i64_mul().global_set(g);
            f.global_get(g).call(log);
        });
        f.i32_const(0);
        mb.add_func("run", f);
        let m = mb.build().unwrap();

        let mut digests = Vec::new();
        for _ in 0..2 {
            let shims = Shims::standard();
            let linker = shims.linker_for(&m).unwrap();
            let mut p = Process::new(m.clone(), EngineConfig::default(), &linker).unwrap();
            p.invoke_export("run", &[Value::I32(5)]).unwrap();
            assert_eq!(shims.calls("env.log_i64"), 5);
            digests.push(shims.digest());
        }
        assert_eq!(digests[0], digests[1]);
    }
}
