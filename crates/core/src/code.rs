//! Per-function **instrumentation overlays**: the process-local, mutable
//! half of the code pipeline.
//!
//! The immutable half — pristine bytecode, validation metadata, the shared
//! lowered form — lives in the `Arc`-shared
//! [`FuncArtifact`]. A [`FuncOverlay`] owns
//! everything one process may mutate about one function:
//!
//! * the **copy-on-write instrumented code**: the first probe installed in
//!   a function copies its bytes and lowered op stream into process-local
//!   storage ([`FuncOverlay::install_probe_byte`]), and removing the last
//!   probe drops the copy again so the process *rejoins* the shared
//!   artifact ([`FuncOverlay::restore_byte`]) — sibling processes of the
//!   same artifact never observe either transition;
//! * the saved original opcodes of probe-overwritten locations;
//! * the instrumentation version and the compiled-code slot (probe-free
//!   code is shared from the artifact; instrumented code is private);
//! * the hotness counter driving tier-up.
//!
//! Local probes still work by *bytecode overwriting* (paper §4.2): the
//! probed instruction's opcode byte is replaced by [`op::PROBE`] on the
//! overlay copy; immediates are never touched, so all other offsets remain
//! valid — the property that makes overwriting vastly simpler than
//! bytecode injection.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use wizard_wasm::leb128;
use wizard_wasm::module::FuncIdx;
use wizard_wasm::opcodes as op;
use wizard_wasm::types::ValType;
use wizard_wasm::validate::FuncMeta;

use crate::artifact::FuncArtifact;
use crate::jit::Compiled;
use crate::lowered::{Lowered, LoweredView, OverlayOps};

/// A process-local copy-on-write byte stream (mirrors
/// [`OverlayOps`] one level down).
pub type OverlayBytes = Rc<[Cell<u8>]>;

/// A function's bytecode as the execution tiers read it: the artifact's
/// shared pristine bytes, overlaid by the process-local copy-on-write
/// cells once the function is instrumented.
///
/// Uninstrumented processes read (and share) the pristine bytes directly;
/// a probe materializes the overlay and flips every reader of this view to
/// the instrumented copy. The view itself is read-only — writes go through
/// [`FuncOverlay`], which owns the overlay cells.
#[derive(Debug, Clone)]
pub struct CodeBytes {
    shared: Arc<[u8]>,
    local: Option<OverlayBytes>,
}

impl CodeBytes {
    /// Wraps a byte slice as a (pristine, shared) code view. Used by tests
    /// and as the empty placeholder; real processes get their views from
    /// [`FuncOverlay::bytes_view`].
    pub fn new(bytes: &[u8]) -> CodeBytes {
        CodeBytes { shared: Arc::from(bytes), local: None }
    }

    pub(crate) fn with_overlay(shared: Arc<[u8]>, local: Option<OverlayBytes>) -> CodeBytes {
        CodeBytes { shared, local }
    }

    /// Code length in bytes.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// `true` if the body is empty.
    pub fn is_empty(&self) -> bool {
        self.shared.is_empty()
    }

    /// `true` while this view reads a process-local copy-on-write byte
    /// stream instead of the artifact's.
    pub fn is_overlaid(&self) -> bool {
        self.local.is_some()
    }

    /// Reads the byte at `pc`.
    #[inline]
    pub fn byte(&self, pc: usize) -> u8 {
        match &self.local {
            Some(cells) => cells[pc].get(),
            None => self.shared[pc],
        }
    }

    /// Reads the byte at `pc`, if in range.
    #[inline]
    fn get(&self, pc: usize) -> Option<u8> {
        match &self.local {
            Some(cells) => cells.get(pc).map(Cell::get),
            None => self.shared.get(pc).copied(),
        }
    }

    /// Reads an unsigned LEB128 u32 at `pos`, returning `(value, next pos)`.
    ///
    /// Delegates to the shared [`leb128`] reader so the normalization
    /// contract (see that module's docs) lives in exactly one place.
    ///
    /// # Panics
    ///
    /// Panics on malformed encodings — impossible for validated code.
    #[inline]
    pub fn read_u32(&self, pos: usize) -> (u32, usize) {
        leb128::read_u32_by(|i| self.get(i), pos).expect("validated code has well-formed LEB128")
    }

    /// Reads a signed LEB128 i32 at `pos` (shared [`leb128`] contract).
    #[inline]
    pub fn read_i32(&self, pos: usize) -> (i32, usize) {
        leb128::read_i32_by(|i| self.get(i), pos).expect("validated code has well-formed LEB128")
    }

    /// Reads a signed LEB128 i64 at `pos` (shared [`leb128`] contract).
    #[inline]
    pub fn read_i64(&self, pos: usize) -> (i64, usize) {
        leb128::read_i64_by(|i| self.get(i), pos).expect("validated code has well-formed LEB128")
    }

    /// Reads 4 little-endian bytes at `pos`.
    #[inline]
    pub fn read_f32_bits(&self, pos: usize) -> (u32, usize) {
        let mut v = 0u32;
        for i in 0..4 {
            v |= u32::from(self.byte(pos + i)) << (8 * i);
        }
        (v, pos + 4)
    }

    /// Reads 8 little-endian bytes at `pos`.
    #[inline]
    pub fn read_f64_bits(&self, pos: usize) -> (u64, usize) {
        let mut v = 0u64;
        for i in 0..8 {
            v |= u64::from(self.byte(pos + i)) << (8 * i);
        }
        (v, pos + 8)
    }
}

/// The engine's per-process, per-function code object: a shared
/// [`FuncArtifact`] plus this process's instrumentation overlay and tier
/// state.
#[derive(Debug)]
pub struct FuncOverlay {
    /// The shared, immutable half.
    art: Arc<FuncArtifact>,
    /// Copy-on-write instrumented bytecode; `None` while uninstrumented.
    bytes: RefCell<Option<OverlayBytes>>,
    /// Copy-on-write lowered op stream, patched in tandem with `bytes`;
    /// `None` while uninstrumented.
    ops: RefCell<Option<OverlayOps>>,
    /// Original opcodes of probe-overwritten locations.
    pub orig: RefCell<HashMap<u32, u8>>,
    /// Instrumentation version; bumped (strictly monotonically — see
    /// [`FuncOverlay::invalidate`]) whenever probes are inserted or
    /// removed in this function, invalidating compiled code (paper §4.5).
    pub version: Cell<u32>,
    /// Compiled (JIT-tier) code, if any and still valid. While the
    /// function is probe-free this wraps the artifact's shared baseline
    /// op stream; otherwise it is private.
    pub compiled: RefCell<Option<Rc<Compiled>>>,
    /// Hotness counter driving tier-up.
    pub hotness: Cell<u32>,
}

impl FuncOverlay {
    /// A fresh (uninstrumented) overlay over `art`.
    pub fn new(art: Arc<FuncArtifact>) -> FuncOverlay {
        FuncOverlay {
            art,
            bytes: RefCell::new(None),
            ops: RefCell::new(None),
            orig: RefCell::new(HashMap::new()),
            version: Cell::new(0),
            compiled: RefCell::new(None),
            hotness: Cell::new(0),
        }
    }

    /// The shared half.
    pub fn artifact(&self) -> &Arc<FuncArtifact> {
        &self.art
    }

    /// Global function index.
    pub fn func(&self) -> FuncIdx {
        self.art.func
    }

    /// Validation metadata.
    pub fn meta(&self) -> &Arc<FuncMeta> {
        &self.art.meta
    }

    /// Types of params followed by declared locals.
    pub fn local_types(&self) -> &Arc<[ValType]> {
        &self.art.local_types
    }

    /// Number of parameters.
    pub fn num_params(&self) -> u32 {
        self.art.num_params
    }

    /// Number of results (0 or 1).
    pub fn num_results(&self) -> u32 {
        self.art.num_results
    }

    /// Total local slots (params + declared locals).
    pub fn num_slots(&self) -> u32 {
        self.art.num_slots()
    }

    /// `true` while this process holds a copy-on-write instrumented copy
    /// of the function (i.e. at least one probe byte is installed).
    pub fn has_overlay(&self) -> bool {
        self.bytes.borrow().is_some()
    }

    /// The byte view the execution tiers read: pristine shared bytes, or
    /// the instrumented overlay copy.
    pub fn bytes_view(&self) -> CodeBytes {
        CodeBytes::with_overlay(Arc::clone(&self.art.bytes), self.bytes.borrow().clone())
    }

    /// The lowered view the execution tiers dispatch through (lowering the
    /// shared form on first demand): shared pristine slots, or the
    /// patched overlay copy.
    pub fn lowered_view(&self) -> LoweredView {
        let low = (**self.art.lowered()).clone();
        match &*self.ops.borrow() {
            Some(ops) => LoweredView::overlaid(low, Rc::clone(ops)),
            None => LoweredView::shared(low),
        }
    }

    /// The byte at `pc` as this process sees it.
    pub fn byte_at(&self, pc: usize) -> u8 {
        match &*self.bytes.borrow() {
            Some(cells) => cells[pc].get(),
            None => self.art.bytes[pc],
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.art.bytes.len()
    }

    /// `true` if the body is empty.
    pub fn is_empty(&self) -> bool {
        self.art.bytes.is_empty()
    }

    /// Bytes of process-private code this overlay currently holds (the
    /// copy-on-write copies; 0 while uninstrumented) — the "resident code
    /// size" a process pays only for the functions it instruments.
    pub fn overlay_size_bytes(&self) -> usize {
        let bytes = self.bytes.borrow().as_ref().map_or(0, |b| b.len());
        let ops = self
            .ops
            .borrow()
            .as_ref()
            .map_or(0, |o| o.len() * core::mem::size_of::<crate::lowered::LInstr>());
        bytes + ops
    }

    /// Copies the shared bytes and lowered op stream into process-local
    /// storage — the copy-on-write step. Returns the overlay handles;
    /// idempotent after the first call.
    fn materialize(&self) -> (OverlayBytes, OverlayOps, &Arc<Lowered>) {
        let low = self.art.lowered();
        let bytes = self
            .bytes
            .borrow_mut()
            .get_or_insert_with(|| self.art.bytes.iter().map(|&b| Cell::new(b)).collect())
            .clone();
        let ops = self.ops.borrow_mut().get_or_insert_with(|| low.cow_ops()).clone();
        (bytes, ops, low)
    }

    /// Drops the copy-on-write copies: the process rejoins the shared
    /// artifact (including its fused superinstructions — an overlay head
    /// unfused by probe traffic re-fuses for free here, and probe-freeness
    /// makes the shared baseline JIT code eligible again).
    fn rejoin(&self) {
        debug_assert!(self.orig.borrow().is_empty(), "rejoin requires no live probe bytes");
        *self.bytes.borrow_mut() = None;
        *self.ops.borrow_mut() = None;
    }

    /// Installs the probe opcode at `pc` on the overlay copy
    /// (materializing it if this is the function's first probe), saving
    /// the original byte and patching the lowered slot in tandem.
    /// Idempotent: installing twice keeps the original original.
    ///
    /// Returns `true` if this call materialized the overlay (the caller
    /// counts it in [`EngineStats::overlay_copies`](crate::EngineStats)).
    pub fn install_probe_byte(&self, pc: u32) -> bool {
        let copied = !self.has_overlay();
        let (bytes, ops, low) = self.materialize();
        let cur = bytes[pc as usize].get();
        if cur == op::PROBE {
            return copied;
        }
        self.orig.borrow_mut().insert(pc, cur);
        bytes[pc as usize].set(op::PROBE);
        let slot = low.slot_of(pc).expect("probe pc is an instruction boundary");
        low.patch_probe(&ops, slot);
        copied
    }

    /// Restores the original opcode at `pc` (when the last probe at the
    /// location is removed), unpatching the lowered slot in tandem. When
    /// the last probed location in the *function* is restored, the overlay
    /// copies are dropped and the process rejoins the shared artifact.
    ///
    /// Returns `true` if this call dropped the overlay (rejoined).
    pub fn restore_byte(&self, pc: u32) -> bool {
        let Some(orig) = self.orig.borrow_mut().remove(&pc) else {
            return false;
        };
        let (bytes, ops, low) = self.materialize();
        bytes[pc as usize].set(orig);
        let slot = low.slot_of(pc).expect("probe pc is an instruction boundary");
        low.restore_op(&ops, slot, orig);
        if self.orig.borrow().is_empty() {
            self.rejoin();
            return true;
        }
        false
    }

    /// Rebuilds the overlay copies from the shared artifact, re-applying
    /// the currently-installed probe patches. Used by
    /// [`Process::relower`](crate::Process::relower); probe traffic never
    /// takes this path. A function with no overlay is left sharing the
    /// artifact (nothing to rebuild).
    pub fn rebuild_overlay(&self) {
        if !self.has_overlay() {
            return;
        }
        *self.bytes.borrow_mut() = None;
        *self.ops.borrow_mut() = None;
        let (bytes, ops, low) = self.materialize();
        for &pc in self.orig.borrow().keys() {
            bytes[pc as usize].set(op::PROBE);
            let slot = low.slot_of(pc).expect("probe pc is an instruction boundary");
            low.patch_probe(&ops, slot);
        }
    }

    /// The original opcode at `pc`: the saved byte if overwritten, else the
    /// current byte.
    #[inline]
    pub fn orig_opcode(&self, pc: u32) -> u8 {
        let cur = self.byte_at(pc as usize);
        if cur != op::PROBE {
            return cur;
        }
        *self.orig.borrow().get(&pc).expect("probe byte present implies saved original")
    }

    /// Invalidates compiled code and bumps the instrumentation version.
    ///
    /// The version is strictly monotonic — never reused — because live
    /// JIT frames detect staleness by comparing their recorded version
    /// against the current compile's; a recurring version would let a
    /// parked frame resume at a saved `cip` inside a differently-laid-out
    /// op stream. Baseline-code sharing does not need version 0: it is
    /// keyed on probe-freeness ([`FuncOverlay::has_overlay`]), and the
    /// per-process [`Compiled`] wrapper stamps the shared op stream with
    /// the process's current version.
    pub fn invalidate(&self) {
        *self.compiled.borrow_mut() = None;
        self.version.set(self.version.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ModuleArtifact;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    /// Builds an overlay over a real validated single-function module:
    /// `inc(x) = x + k` with enough body to probe.
    fn overlay() -> FuncOverlay {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.nop().local_get(0).i32_const(5).i32_add();
        mb.add_func("inc", f);
        let art = ModuleArtifact::new(mb.build().unwrap()).unwrap();
        FuncOverlay::new(Arc::clone(&art.funcs()[0]))
    }

    #[test]
    fn overwrite_and_restore_round_trip_rejoins() {
        let c = overlay();
        assert!(!c.has_overlay());
        let copied = c.install_probe_byte(0);
        assert!(copied, "first probe copies");
        assert!(c.has_overlay());
        assert_eq!(c.byte_at(0), op::PROBE);
        assert_eq!(c.orig_opcode(0), op::NOP);
        // Pristine shared bytes untouched.
        assert_eq!(c.artifact().bytes[0], op::NOP);
        // Second probe in the same function: no new copy.
        let pc1 = 1; // local.get 0
        assert!(!c.install_probe_byte(pc1));
        assert_eq!(c.orig_opcode(pc1), op::LOCAL_GET);
        // Restores: the last one drops the overlay entirely.
        assert!(!c.restore_byte(pc1));
        assert!(c.has_overlay());
        assert!(c.restore_byte(0), "last restore rejoins the artifact");
        assert!(!c.has_overlay());
        assert_eq!(c.byte_at(0), op::NOP);
        assert_eq!(c.overlay_size_bytes(), 0);
    }

    #[test]
    fn double_install_keeps_original() {
        let c = overlay();
        c.install_probe_byte(0);
        c.install_probe_byte(0);
        assert_eq!(c.orig_opcode(0), op::NOP);
        c.restore_byte(0);
        assert_eq!(c.byte_at(0), op::NOP);
    }

    #[test]
    fn invalidate_versions_are_strictly_monotonic() {
        let c = overlay();
        assert_eq!(c.version.get(), 0);
        c.install_probe_byte(0);
        c.invalidate();
        assert_eq!(c.version.get(), 1);
        assert!(c.compiled.borrow().is_none());
        c.restore_byte(0);
        c.invalidate();
        // Rejoin does NOT reset the version: a recurring version would be
        // an ABA hazard for the JIT's stale-frame check. Baseline sharing
        // is keyed on probe-freeness, not on version 0.
        assert_eq!(c.version.get(), 2);
        assert!(!c.has_overlay());
    }

    #[test]
    fn probe_patches_apply_to_lowered_in_tandem() {
        let c = overlay();
        // The shared lowered form fuses `const;add`; probing the const
        // (pc 3, after nop + local.get) patches the overlay copy only.
        let low_shared = c.artifact().lowered().clone();
        let pc_const = 3; // nop; local.get 0; i32.const 5 starts at byte 3
        c.install_probe_byte(pc_const);
        let view = c.lowered_view();
        assert!(view.is_overlaid());
        let slot = view.slot_of(pc_const).unwrap() as usize;
        assert_eq!(view.get(slot).op, op::PROBE);
        assert_eq!(crate::value::Slot(view.get(slot).z).i32(), 5, "immediates survive");
        assert_ne!(low_shared.get(slot).op, op::PROBE, "shared form untouched");
        // Restore rejoins: the view reads shared (re-fused) slots again.
        c.restore_byte(pc_const);
        let view = c.lowered_view();
        assert!(!view.is_overlaid());
        assert_eq!(view.ops_addr(), low_shared.ops_addr());
    }

    #[test]
    fn rebuild_overlay_preserves_probe_patches() {
        let c = overlay();
        c.install_probe_byte(1);
        let before = c.lowered_view();
        c.rebuild_overlay();
        let after = c.lowered_view();
        assert_ne!(before.ops_addr(), after.ops_addr(), "fresh copy");
        let slot = after.slot_of(1).unwrap() as usize;
        assert_eq!(after.get(slot).op, op::PROBE, "probe patch re-applied");
        assert_eq!(c.byte_at(1), op::PROBE);
    }

    #[test]
    fn leb_readers_match_encoder() {
        let mut buf = vec![0u8];
        wizard_wasm::leb128::write_u32(&mut buf, 624485);
        wizard_wasm::leb128::write_i32(&mut buf, -99999);
        wizard_wasm::leb128::write_i64(&mut buf, -(1i64 << 40));
        let c = CodeBytes::new(&buf);
        let (a, p) = c.read_u32(1);
        assert_eq!(a, 624485);
        let (b, p) = c.read_i32(p);
        assert_eq!(b, -99999);
        let (d, p) = c.read_i64(p);
        assert_eq!(d, -(1i64 << 40));
        assert_eq!(p, buf.len());
    }

    #[test]
    fn float_bit_readers() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        buf.extend_from_slice(&(-2.25f64).to_le_bytes());
        let c = CodeBytes::new(&buf);
        let (f32_bits, p) = c.read_f32_bits(0);
        assert_eq!(f32::from_bits(f32_bits), 1.5);
        let (f64_bits, p2) = c.read_f64_bits(p);
        assert_eq!(f64::from_bits(f64_bits), -2.25);
        assert_eq!(p2, 12);
    }
}
