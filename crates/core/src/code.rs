//! Per-function code objects: in-place mutable bytecode (the substrate for
//! *bytecode overwriting*), validation metadata, and the compiled-code slot.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use wizard_wasm::module::FuncIdx;
use wizard_wasm::opcodes as op;
use wizard_wasm::types::ValType;
use wizard_wasm::validate::FuncMeta;

use crate::jit::Compiled;

/// A function's bytecode as shared, in-place mutable bytes.
///
/// Local probes overwrite a single opcode byte with [`op::PROBE`]; immediates
/// are never touched, so all other offsets remain valid — the property that
/// makes overwriting vastly simpler than bytecode injection (paper §4.2).
#[derive(Debug, Clone)]
pub struct CodeBytes {
    cells: Rc<[Cell<u8>]>,
}

impl CodeBytes {
    /// Wraps a bytecode vector.
    pub fn new(bytes: &[u8]) -> CodeBytes {
        CodeBytes { cells: bytes.iter().map(|b| Cell::new(*b)).collect() }
    }

    /// Code length in bytes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the body is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads the byte at `pc`.
    #[inline]
    pub fn byte(&self, pc: usize) -> u8 {
        self.cells[pc].get()
    }

    /// Overwrites the byte at `pc`.
    #[inline]
    pub fn set(&self, pc: usize, b: u8) {
        self.cells[pc].set(b);
    }

    /// Copies the current bytes out (used by the JIT compiler and tests).
    pub fn snapshot(&self) -> Vec<u8> {
        self.cells.iter().map(Cell::get).collect()
    }

    /// Reads an unsigned LEB128 u32 at `pos`, returning `(value, next pos)`.
    ///
    /// # Panics
    ///
    /// Panics on malformed encodings — impossible for validated code.
    #[inline]
    pub fn read_u32(&self, pos: usize) -> (u32, usize) {
        let mut result: u32 = 0;
        let mut shift = 0u32;
        let mut p = pos;
        loop {
            let byte = self.cells[p].get();
            p += 1;
            result |= u32::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return (result, p);
            }
            shift += 7;
        }
    }

    /// Reads a signed LEB128 i32 at `pos`.
    #[inline]
    pub fn read_i32(&self, pos: usize) -> (i32, usize) {
        let mut result: i32 = 0;
        let mut shift = 0u32;
        let mut p = pos;
        loop {
            let byte = self.cells[p].get();
            p += 1;
            result |= i32::from(byte & 0x7f) << shift;
            shift += 7;
            if byte & 0x80 == 0 {
                if shift < 32 && byte & 0x40 != 0 {
                    result |= -1i32 << shift;
                }
                return (result, p);
            }
        }
    }

    /// Reads a signed LEB128 i64 at `pos`.
    #[inline]
    pub fn read_i64(&self, pos: usize) -> (i64, usize) {
        let mut result: i64 = 0;
        let mut shift = 0u32;
        let mut p = pos;
        loop {
            let byte = self.cells[p].get();
            p += 1;
            result |= i64::from(byte & 0x7f) << shift;
            shift += 7;
            if byte & 0x80 == 0 {
                if shift < 64 && byte & 0x40 != 0 {
                    result |= -1i64 << shift;
                }
                return (result, p);
            }
        }
    }

    /// Reads 4 little-endian bytes at `pos`.
    #[inline]
    pub fn read_f32_bits(&self, pos: usize) -> (u32, usize) {
        let mut v = 0u32;
        for i in 0..4 {
            v |= u32::from(self.cells[pos + i].get()) << (8 * i);
        }
        (v, pos + 4)
    }

    /// Reads 8 little-endian bytes at `pos`.
    #[inline]
    pub fn read_f64_bits(&self, pos: usize) -> (u64, usize) {
        let mut v = 0u64;
        for i in 0..8 {
            v |= u64::from(self.cells[pos + i].get()) << (8 * i);
        }
        (v, pos + 8)
    }
}

/// The engine's per-function code object.
#[derive(Debug)]
pub struct FuncCode {
    /// Global function index.
    pub func: FuncIdx,
    /// In-place mutable bytecode.
    pub bytes: CodeBytes,
    /// Original opcodes of probe-overwritten locations.
    pub orig: RefCell<HashMap<u32, u8>>,
    /// Branch side table and other validation metadata.
    pub meta: Rc<FuncMeta>,
    /// Types of params followed by declared locals.
    pub local_types: Rc<[ValType]>,
    /// Number of parameters.
    pub num_params: u32,
    /// Number of results (0 or 1).
    pub num_results: u32,
    /// Instrumentation version; bumped whenever probes are inserted or
    /// removed in this function, invalidating compiled code (paper §4.5).
    pub version: Cell<u32>,
    /// Compiled (JIT-tier) code, if any and still valid.
    pub compiled: RefCell<Option<Rc<Compiled>>>,
    /// Hotness counter driving tier-up.
    pub hotness: Cell<u32>,
}

impl FuncCode {
    /// Installs the probe opcode at `pc`, saving the original byte.
    /// Idempotent: installing twice keeps the original original.
    pub fn install_probe_byte(&self, pc: u32) {
        let cur = self.bytes.byte(pc as usize);
        if cur == op::PROBE {
            return;
        }
        self.orig.borrow_mut().insert(pc, cur);
        self.bytes.set(pc as usize, op::PROBE);
    }

    /// Restores the original opcode at `pc` (when the last probe at the
    /// location is removed).
    pub fn restore_byte(&self, pc: u32) {
        if let Some(orig) = self.orig.borrow_mut().remove(&pc) {
            self.bytes.set(pc as usize, orig);
        }
    }

    /// The original opcode at `pc`: the saved byte if overwritten, else the
    /// current byte.
    #[inline]
    pub fn orig_opcode(&self, pc: u32) -> u8 {
        let cur = self.bytes.byte(pc as usize);
        if cur != op::PROBE {
            return cur;
        }
        *self.orig.borrow().get(&pc).expect("probe byte present implies saved original")
    }

    /// Invalidates compiled code and bumps the instrumentation version.
    pub fn invalidate(&self) {
        self.version.set(self.version.get() + 1);
        *self.compiled.borrow_mut() = None;
    }

    /// Total local slots (params + declared locals).
    pub fn num_slots(&self) -> u32 {
        self.local_types.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::validate::FuncMeta;

    fn code(bytes: &[u8]) -> FuncCode {
        FuncCode {
            func: 0,
            bytes: CodeBytes::new(bytes),
            orig: RefCell::new(HashMap::new()),
            meta: Rc::new(FuncMeta::default()),
            local_types: Rc::from(vec![].into_boxed_slice()),
            num_params: 0,
            num_results: 0,
            version: Cell::new(0),
            compiled: RefCell::new(None),
            hotness: Cell::new(0),
        }
    }

    #[test]
    fn overwrite_and_restore() {
        let c = code(&[op::NOP, op::I32_CONST, 5, op::END]);
        c.install_probe_byte(1);
        assert_eq!(c.bytes.byte(1), op::PROBE);
        assert_eq!(c.orig_opcode(1), op::I32_CONST);
        // Immediate untouched.
        assert_eq!(c.bytes.byte(2), 5);
        c.restore_byte(1);
        assert_eq!(c.bytes.byte(1), op::I32_CONST);
        assert_eq!(c.orig_opcode(1), op::I32_CONST);
    }

    #[test]
    fn double_install_keeps_original() {
        let c = code(&[op::NOP, op::END]);
        c.install_probe_byte(0);
        c.install_probe_byte(0);
        assert_eq!(c.orig_opcode(0), op::NOP);
        c.restore_byte(0);
        assert_eq!(c.bytes.byte(0), op::NOP);
    }

    #[test]
    fn invalidate_bumps_version_and_drops_compiled() {
        let c = code(&[op::END]);
        assert_eq!(c.version.get(), 0);
        c.invalidate();
        assert_eq!(c.version.get(), 1);
        assert!(c.compiled.borrow().is_none());
    }

    #[test]
    fn leb_readers_match_encoder() {
        let mut buf = vec![0u8];
        wizard_wasm::leb128::write_u32(&mut buf, 624485);
        wizard_wasm::leb128::write_i32(&mut buf, -99999);
        wizard_wasm::leb128::write_i64(&mut buf, -(1i64 << 40));
        let c = CodeBytes::new(&buf);
        let (a, p) = c.read_u32(1);
        assert_eq!(a, 624485);
        let (b, p) = c.read_i32(p);
        assert_eq!(b, -99999);
        let (d, p) = c.read_i64(p);
        assert_eq!(d, -(1i64 << 40));
        assert_eq!(p, buf.len());
    }

    #[test]
    fn float_bit_readers() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        buf.extend_from_slice(&(-2.25f64).to_le_bytes());
        let c = CodeBytes::new(&buf);
        let (f32_bits, p) = c.read_f32_bits(0);
        assert_eq!(f32::from_bits(f32_bits), 1.5);
        let (f64_bits, p2) = c.read_f64_bits(p);
        assert_eq!(f64::from_bits(f64_bits), -2.25);
        assert_eq!(p2, 12);
    }
}
