//! Per-function code objects: in-place mutable bytecode (the substrate for
//! *bytecode overwriting*), the lowered code cache, validation metadata,
//! and the compiled-code slot.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use wizard_wasm::leb128;
use wizard_wasm::module::FuncIdx;
use wizard_wasm::opcodes as op;
use wizard_wasm::types::ValType;
use wizard_wasm::validate::FuncMeta;

use crate::jit::Compiled;
use crate::lowered::Lowered;

/// A function's bytecode as shared, in-place mutable bytes.
///
/// Local probes overwrite a single opcode byte with [`op::PROBE`]; immediates
/// are never touched, so all other offsets remain valid — the property that
/// makes overwriting vastly simpler than bytecode injection (paper §4.2).
#[derive(Debug, Clone)]
pub struct CodeBytes {
    cells: Rc<[Cell<u8>]>,
}

impl CodeBytes {
    /// Wraps a bytecode vector.
    pub fn new(bytes: &[u8]) -> CodeBytes {
        CodeBytes { cells: bytes.iter().map(|b| Cell::new(*b)).collect() }
    }

    /// Code length in bytes.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the body is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads the byte at `pc`.
    #[inline]
    pub fn byte(&self, pc: usize) -> u8 {
        self.cells[pc].get()
    }

    /// Overwrites the byte at `pc`.
    #[inline]
    pub fn set(&self, pc: usize, b: u8) {
        self.cells[pc].set(b);
    }

    /// Copies the current bytes out (used by the JIT compiler and tests).
    pub fn snapshot(&self) -> Vec<u8> {
        self.cells.iter().map(Cell::get).collect()
    }

    /// Reads an unsigned LEB128 u32 at `pos`, returning `(value, next pos)`.
    ///
    /// Delegates to the shared [`leb128`] reader so the normalization
    /// contract (see that module's docs) lives in exactly one place.
    ///
    /// # Panics
    ///
    /// Panics on malformed encodings — impossible for validated code.
    #[inline]
    pub fn read_u32(&self, pos: usize) -> (u32, usize) {
        leb128::read_u32_by(|i| self.cells.get(i).map(Cell::get), pos)
            .expect("validated code has well-formed LEB128")
    }

    /// Reads a signed LEB128 i32 at `pos` (shared [`leb128`] contract).
    #[inline]
    pub fn read_i32(&self, pos: usize) -> (i32, usize) {
        leb128::read_i32_by(|i| self.cells.get(i).map(Cell::get), pos)
            .expect("validated code has well-formed LEB128")
    }

    /// Reads a signed LEB128 i64 at `pos` (shared [`leb128`] contract).
    #[inline]
    pub fn read_i64(&self, pos: usize) -> (i64, usize) {
        leb128::read_i64_by(|i| self.cells.get(i).map(Cell::get), pos)
            .expect("validated code has well-formed LEB128")
    }

    /// Reads 4 little-endian bytes at `pos`.
    #[inline]
    pub fn read_f32_bits(&self, pos: usize) -> (u32, usize) {
        let mut v = 0u32;
        for i in 0..4 {
            v |= u32::from(self.cells[pos + i].get()) << (8 * i);
        }
        (v, pos + 4)
    }

    /// Reads 8 little-endian bytes at `pos`.
    #[inline]
    pub fn read_f64_bits(&self, pos: usize) -> (u64, usize) {
        let mut v = 0u64;
        for i in 0..8 {
            v |= u64::from(self.cells[pos + i].get()) << (8 * i);
        }
        (v, pos + 8)
    }
}

/// The engine's per-function code object.
#[derive(Debug)]
pub struct FuncCode {
    /// Global function index.
    pub func: FuncIdx,
    /// In-place mutable bytecode.
    pub bytes: CodeBytes,
    /// Original opcodes of probe-overwritten locations.
    pub orig: RefCell<HashMap<u32, u8>>,
    /// Branch side table and other validation metadata.
    pub meta: Rc<FuncMeta>,
    /// Types of params followed by declared locals.
    pub local_types: Rc<[ValType]>,
    /// Number of parameters.
    pub num_params: u32,
    /// Number of results (0 or 1).
    pub num_results: u32,
    /// Instrumentation version; bumped whenever probes are inserted or
    /// removed in this function, invalidating compiled code (paper §4.5).
    pub version: Cell<u32>,
    /// Compiled (JIT-tier) code, if any and still valid.
    pub compiled: RefCell<Option<Rc<Compiled>>>,
    /// Hotness counter driving tier-up.
    pub hotness: Cell<u32>,
    /// The lowered code cache: built once on first demand (interpreter
    /// entry, JIT compile, or location validation) and then only *patched*
    /// by probe insertion/removal — never re-lowered by instrumentation.
    pub lowered: RefCell<Option<Rc<Lowered>>>,
}

impl FuncCode {
    /// Installs the probe opcode at `pc`, saving the original byte. The
    /// lowered slot (if the function is lowered) is patched in tandem.
    /// Idempotent: installing twice keeps the original original.
    pub fn install_probe_byte(&self, pc: u32) {
        let cur = self.bytes.byte(pc as usize);
        if cur == op::PROBE {
            return;
        }
        self.orig.borrow_mut().insert(pc, cur);
        self.bytes.set(pc as usize, op::PROBE);
        if let Some(low) = &*self.lowered.borrow() {
            let slot = low.slot_of(pc).expect("probe pc is an instruction boundary");
            low.patch_probe(slot);
        }
    }

    /// Restores the original opcode at `pc` (when the last probe at the
    /// location is removed), unpatching the lowered slot in tandem.
    pub fn restore_byte(&self, pc: u32) {
        if let Some(orig) = self.orig.borrow_mut().remove(&pc) {
            self.bytes.set(pc as usize, orig);
            if let Some(low) = &*self.lowered.borrow() {
                let slot = low.slot_of(pc).expect("probe pc is an instruction boundary");
                low.restore_op(slot, orig);
            }
        }
    }

    /// The lowered form of this function, lowering now if not yet cached.
    ///
    /// Lowering decodes from a *clean* snapshot (probe bytes replaced by
    /// their saved originals) and then re-applies the currently-installed
    /// probe patches, so the result is identical whether probes were
    /// inserted before or after the function was first lowered.
    pub fn ensure_lowered(&self) -> Rc<Lowered> {
        if let Some(low) = &*self.lowered.borrow() {
            return Rc::clone(low);
        }
        let mut clean = self.bytes.snapshot();
        for (pc, orig) in self.orig.borrow().iter() {
            clean[*pc as usize] = *orig;
        }
        let low = Rc::new(Lowered::lower(&clean, &self.meta));
        for pc in self.orig.borrow().keys() {
            let slot = low.slot_of(*pc).expect("probe pc is an instruction boundary");
            low.patch_probe(slot);
        }
        *self.lowered.borrow_mut() = Some(Rc::clone(&low));
        low
    }

    /// Discards the cached lowered form (the next demand re-lowers). Used
    /// by [`Process::relower`](crate::Process::relower); probe traffic
    /// never takes this path.
    pub fn drop_lowered(&self) {
        *self.lowered.borrow_mut() = None;
    }

    /// The original opcode at `pc`: the saved byte if overwritten, else the
    /// current byte.
    #[inline]
    pub fn orig_opcode(&self, pc: u32) -> u8 {
        let cur = self.bytes.byte(pc as usize);
        if cur != op::PROBE {
            return cur;
        }
        *self.orig.borrow().get(&pc).expect("probe byte present implies saved original")
    }

    /// Invalidates compiled code and bumps the instrumentation version.
    pub fn invalidate(&self) {
        self.version.set(self.version.get() + 1);
        *self.compiled.borrow_mut() = None;
    }

    /// Total local slots (params + declared locals).
    pub fn num_slots(&self) -> u32 {
        self.local_types.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::validate::FuncMeta;

    fn code(bytes: &[u8]) -> FuncCode {
        FuncCode {
            func: 0,
            bytes: CodeBytes::new(bytes),
            orig: RefCell::new(HashMap::new()),
            meta: Rc::new(FuncMeta::default()),
            local_types: Rc::from(vec![].into_boxed_slice()),
            num_params: 0,
            num_results: 0,
            version: Cell::new(0),
            compiled: RefCell::new(None),
            hotness: Cell::new(0),
            lowered: RefCell::new(None),
        }
    }

    #[test]
    fn overwrite_and_restore() {
        let c = code(&[op::NOP, op::I32_CONST, 5, op::END]);
        c.install_probe_byte(1);
        assert_eq!(c.bytes.byte(1), op::PROBE);
        assert_eq!(c.orig_opcode(1), op::I32_CONST);
        // Immediate untouched.
        assert_eq!(c.bytes.byte(2), 5);
        c.restore_byte(1);
        assert_eq!(c.bytes.byte(1), op::I32_CONST);
        assert_eq!(c.orig_opcode(1), op::I32_CONST);
    }

    #[test]
    fn double_install_keeps_original() {
        let c = code(&[op::NOP, op::END]);
        c.install_probe_byte(0);
        c.install_probe_byte(0);
        assert_eq!(c.orig_opcode(0), op::NOP);
        c.restore_byte(0);
        assert_eq!(c.bytes.byte(0), op::NOP);
    }

    #[test]
    fn invalidate_bumps_version_and_drops_compiled() {
        let c = code(&[op::END]);
        assert_eq!(c.version.get(), 0);
        c.invalidate();
        assert_eq!(c.version.get(), 1);
        assert!(c.compiled.borrow().is_none());
    }

    #[test]
    fn probe_patches_apply_to_lowered_in_tandem() {
        let c = code(&[op::NOP, op::I32_CONST, 5, op::END]);
        // Probe installed *before* lowering: the lowering re-applies it.
        c.install_probe_byte(1);
        let low = c.ensure_lowered();
        assert_eq!(low.get(1).op, op::PROBE);
        assert_eq!(crate::value::Slot(low.get(1).z).i32(), 5);
        // Probe installed *after* lowering: patched in tandem.
        c.install_probe_byte(0);
        assert_eq!(low.get(0).op, op::PROBE);
        c.restore_byte(0);
        c.restore_byte(1);
        assert_eq!(low.get(0).op, op::NOP);
        assert_eq!(low.get(1).op, op::I32_CONST);
        // The cache is stable: same Rc until explicitly dropped.
        assert!(Rc::ptr_eq(&low, &c.ensure_lowered()));
        c.drop_lowered();
        assert!(!Rc::ptr_eq(&low, &c.ensure_lowered()));
    }

    #[test]
    fn leb_readers_match_encoder() {
        let mut buf = vec![0u8];
        wizard_wasm::leb128::write_u32(&mut buf, 624485);
        wizard_wasm::leb128::write_i32(&mut buf, -99999);
        wizard_wasm::leb128::write_i64(&mut buf, -(1i64 << 40));
        let c = CodeBytes::new(&buf);
        let (a, p) = c.read_u32(1);
        assert_eq!(a, 624485);
        let (b, p) = c.read_i32(p);
        assert_eq!(b, -99999);
        let (d, p) = c.read_i64(p);
        assert_eq!(d, -(1i64 << 40));
        assert_eq!(p, buf.len());
    }

    #[test]
    fn float_bit_readers() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1.5f32.to_le_bytes());
        buf.extend_from_slice(&(-2.25f64).to_le_bytes());
        let c = CodeBytes::new(&buf);
        let (f32_bits, p) = c.read_f32_bits(0);
        assert_eq!(f32::from_bits(f32_bits), 1.5);
        let (f64_bits, p2) = c.read_f64_bits(p);
        assert_eq!(f64::from_bits(f64_bits), -2.25);
        assert_eq!(p2, 12);
    }
}
