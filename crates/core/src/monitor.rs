//! The monitor lifecycle API: attachable/detachable instrumentation
//! sessions over a [`Process`].
//!
//! A [`Monitor`] is a self-contained dynamic analysis. Its lifecycle is
//! driven by the engine:
//!
//! 1. [`Process::attach_monitor`] calls [`Monitor::on_attach`] with an
//!    [`InstrumentationCtx`] — a facade over the process that *records
//!    every probe the monitor inserts* and lets it commit a whole
//!    [`ProbeBatch`] in one invalidation pass;
//! 2. the application runs; the monitor observes it through its probes;
//! 3. [`Process::detach_monitor`] calls [`Monitor::on_detach`], then
//!    removes all of the monitor's recorded probes in a single batched
//!    pass — provably restoring the zero-overhead baseline
//!    (`probed_location_count() == 0`, `!in_global_mode()` once the last
//!    monitor is gone);
//! 4. [`Monitor::report`] renders a structured [`Report`] at any point —
//!    named sections of typed key/value rows with a `Display` impl.
//!
//! Attachment is transactional: if `on_attach` fails midway, every probe
//! it already inserted is rolled back and the process is left unchanged.

use std::cell::{Ref, RefCell};
use std::rc::Rc;
use std::time::Duration;

use wizard_wasm::module::{FuncIdx, Module};

use crate::engine::{EngineConfig, ProbeError, Process};
use crate::probe::{Probe, ProbeBatch, ProbeId, ProbeRef};

// ---- structured reports ----

/// A typed report value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// An event count.
    Count(u64),
    /// A signed integer.
    Int(i64),
    /// A floating-point metric.
    Float(f64),
    /// A `covered / total` pair, displayed with a percentage.
    Fraction(u64, u64),
    /// A wall-clock duration.
    Duration(Duration),
    /// Free-form text.
    Text(String),
}

impl MetricValue {
    /// Accumulates `other` into this value — the row-level primitive of
    /// [`Report::merge`]. Counts, ints, floats, durations, and fractions
    /// (componentwise) add; text keeps the first value seen. Mismatched
    /// kinds keep `self` unchanged.
    pub fn combine(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Count(a), MetricValue::Count(b)) => *a += b,
            (MetricValue::Int(a), MetricValue::Int(b)) => *a += b,
            (MetricValue::Float(a), MetricValue::Float(b)) => *a += b,
            (MetricValue::Fraction(c, t), MetricValue::Fraction(oc, ot)) => {
                *c += oc;
                *t += ot;
            }
            (MetricValue::Duration(a), MetricValue::Duration(b)) => *a += *b,
            _ => {}
        }
    }
}

impl core::fmt::Display for MetricValue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MetricValue::Count(n) => write!(f, "{n}"),
            MetricValue::Int(n) => write!(f, "{n}"),
            MetricValue::Float(v) => write!(f, "{v:.2}"),
            MetricValue::Fraction(c, t) => {
                let pct = 100.0 * *c as f64 / (*t).max(1) as f64;
                write!(f, "{c}/{t} ({pct:.1}%)")
            }
            MetricValue::Duration(d) => write!(f, "{d:?}"),
            MetricValue::Text(s) => f.write_str(s),
        }
    }
}

/// One labelled row of a report section.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (a location, function name, or metric name).
    pub label: String,
    /// The typed value.
    pub value: MetricValue,
}

/// A named group of rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Section {
    /// Section name.
    pub name: String,
    /// Rows in insertion order.
    pub rows: Vec<Row>,
}

impl Section {
    /// Creates an empty section.
    pub fn new(name: impl Into<String>) -> Section {
        Section { name: name.into(), rows: Vec::new() }
    }

    /// Appends a row.
    pub fn row(&mut self, label: impl Into<String>, value: MetricValue) -> &mut Section {
        self.rows.push(Row { label: label.into(), value });
        self
    }

    /// Appends a [`MetricValue::Count`] row.
    pub fn count(&mut self, label: impl Into<String>, n: u64) -> &mut Section {
        self.row(label, MetricValue::Count(n))
    }

    /// Appends a [`MetricValue::Float`] row.
    pub fn float(&mut self, label: impl Into<String>, v: f64) -> &mut Section {
        self.row(label, MetricValue::Float(v))
    }

    /// Appends a [`MetricValue::Fraction`] row.
    pub fn fraction(&mut self, label: impl Into<String>, covered: u64, total: u64) -> &mut Section {
        self.row(label, MetricValue::Fraction(covered, total))
    }

    /// Appends a [`MetricValue::Duration`] row.
    pub fn duration(&mut self, label: impl Into<String>, d: Duration) -> &mut Section {
        self.row(label, MetricValue::Duration(d))
    }

    /// Appends a [`MetricValue::Text`] row.
    pub fn text(&mut self, label: impl Into<String>, s: impl Into<String>) -> &mut Section {
        self.row(label, MetricValue::Text(s.into()))
    }

    /// The value of the first row with this label, if any.
    pub fn get(&self, label: &str) -> Option<&MetricValue> {
        self.rows.iter().find(|r| r.label == label).map(|r| &r.value)
    }

    /// The count value of the first row with this label, if it is a
    /// [`MetricValue::Count`].
    pub fn count_of(&self, label: &str) -> Option<u64> {
        match self.get(label) {
            Some(MetricValue::Count(n)) => Some(*n),
            _ => None,
        }
    }

    /// Accumulates `other` into this section: rows are matched by label
    /// (first occurrence) and their values combined with
    /// [`MetricValue::combine`]; unmatched rows are appended.
    pub fn merge(&mut self, other: &Section) {
        for row in &other.rows {
            match self.rows.iter_mut().find(|r| r.label == row.label) {
                Some(mine) => mine.value.combine(&row.value),
                None => self.rows.push(row.clone()),
            }
        }
    }
}

/// A structured post-execution report: named sections of typed rows.
///
/// ```
/// use wizard_engine::{MetricValue, Report};
///
/// let mut r = Report::new("hotness");
/// r.section("summary").count("total instruction executions", 42);
/// assert_eq!(
///     r.get("summary").unwrap().count_of("total instruction executions"),
///     Some(42)
/// );
/// assert!(r.to_string().contains("total instruction executions: 42"));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Report title (conventionally the monitor's [`Monitor::name`]).
    pub title: String,
    /// Sections in insertion order.
    pub sections: Vec<Section>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Report {
        Report { title: title.into(), sections: Vec::new() }
    }

    /// Appends an empty section and returns it for row insertion.
    pub fn section(&mut self, name: impl Into<String>) -> &mut Section {
        self.sections.push(Section::new(name));
        self.sections.last_mut().expect("just pushed")
    }

    /// The first section with this name, if any.
    pub fn get(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Accumulates `other` into this report: sections are matched by name
    /// and merged ([`Section::merge`]); unmatched sections are appended.
    ///
    /// This is how a multi-process scheduler (`wizard-pool`) folds the
    /// per-process reports of the *same* monitor across a fleet into one
    /// aggregate — e.g. summing the hotness counts of N instrumented
    /// processes running the same analysis.
    ///
    /// ```
    /// use wizard_engine::Report;
    ///
    /// let mut a = Report::new("hotness");
    /// a.section("summary").count("events", 2);
    /// let mut b = Report::new("hotness");
    /// b.section("summary").count("events", 3);
    /// a.merge(&b);
    /// assert_eq!(a.get("summary").unwrap().count_of("events"), Some(5));
    /// ```
    pub fn merge(&mut self, other: &Report) {
        for section in &other.sections {
            match self.sections.iter_mut().find(|s| s.name == section.name) {
                Some(mine) => mine.merge(section),
                None => self.sections.push(section.clone()),
            }
        }
    }
}

impl core::fmt::Display for Report {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "=== {} ===", self.title)?;
        for s in &self.sections {
            writeln!(f, "[{}]", s.name)?;
            for r in &s.rows {
                writeln!(f, "  {}: {}", r.label, r.value)?;
            }
        }
        Ok(())
    }
}

// ---- the lifecycle trait ----

/// A self-contained dynamic analysis with an attach/detach lifecycle.
///
/// Implementations observe the application purely through probes inserted
/// via the [`InstrumentationCtx`] they receive in [`Monitor::on_attach`];
/// the engine tracks those probes and removes them on detach.
pub trait Monitor {
    /// A short, stable identifier (used as the default report title).
    fn name(&self) -> &'static str;

    /// Installs this monitor's probes.
    ///
    /// Insertions of many probes should go through a [`ProbeBatch`]
    /// committed with [`InstrumentationCtx::apply_batch`] so the whole set
    /// costs one invalidation pass.
    ///
    /// Called at most once per attachment: attaching an instance that is
    /// currently attached is rejected
    /// ([`ProbeError::MonitorAlreadyAttached`]). An instance *may* be
    /// attached again after being detached; implementations that keep
    /// per-attachment state (site lists, counters) and want fresh numbers
    /// per session should reset it here — otherwise observations
    /// accumulate across sessions.
    ///
    /// # Errors
    ///
    /// Propagates [`ProbeError`]s; the engine rolls back any probes
    /// already inserted by the failed attach.
    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError>;

    /// Called by [`Process::detach_monitor`] *before* the monitor's probes
    /// are removed — the place to take final samples or drain shadow
    /// state. The default does nothing.
    fn on_detach(&mut self, process: &mut Process) {
        let _ = process;
    }

    /// Renders the structured post-execution report.
    fn report(&self) -> Report;
}

// ---- the attach-time facade ----

/// The facade a [`Monitor`] instruments through during
/// [`Monitor::on_attach`].
///
/// Every probe inserted through the context is recorded against the
/// monitor's handle, so [`Process::detach_monitor`] can later remove all
/// of them in one batched pass.
pub struct InstrumentationCtx<'a> {
    process: &'a mut Process,
    recorded: Vec<ProbeId>,
}

impl<'a> InstrumentationCtx<'a> {
    pub(crate) fn new(process: &'a mut Process) -> InstrumentationCtx<'a> {
        InstrumentationCtx { process, recorded: Vec::new() }
    }

    /// The module under instrumentation.
    pub fn module(&self) -> &Module {
        self.process.module()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.process.config()
    }

    /// Inserts one local probe immediately (one invalidation pass). Prefer
    /// [`InstrumentationCtx::apply_batch`] when inserting many.
    ///
    /// # Errors
    ///
    /// As [`Process::add_local_probe`].
    pub fn add_local_probe(
        &mut self,
        func: FuncIdx,
        pc: u32,
        probe: ProbeRef,
    ) -> Result<ProbeId, ProbeError> {
        let id = self.process.add_local_probe(func, pc, probe)?;
        self.recorded.push(id);
        Ok(id)
    }

    /// Inserts one owned local probe value immediately.
    ///
    /// # Errors
    ///
    /// As [`Process::add_local_probe`].
    pub fn add_local_probe_val(
        &mut self,
        func: FuncIdx,
        pc: u32,
        probe: impl Probe,
    ) -> Result<ProbeId, ProbeError> {
        let id = self.process.add_local_probe_val(func, pc, probe)?;
        self.recorded.push(id);
        Ok(id)
    }

    /// Inserts a global probe.
    ///
    /// # Errors
    ///
    /// As [`Process::add_global_probe`].
    pub fn add_global_probe(&mut self, probe: ProbeRef) -> Result<ProbeId, ProbeError> {
        let id = self.process.add_global_probe(probe)?;
        self.recorded.push(id);
        Ok(id)
    }

    /// Inserts an owned global probe value.
    ///
    /// # Errors
    ///
    /// As [`Process::add_global_probe`].
    pub fn add_global_probe_val(&mut self, probe: impl Probe) -> Result<ProbeId, ProbeError> {
        let id = self.process.add_global_probe_val(probe)?;
        self.recorded.push(id);
        Ok(id)
    }

    /// Commits a [`ProbeBatch`] in a single invalidation pass, returning
    /// the ids of the inserted probes in queue order. All ids are recorded
    /// for removal at detach.
    ///
    /// # Errors
    ///
    /// As [`Process::apply_batch`]; a failed batch changes nothing.
    pub fn apply_batch(&mut self, batch: ProbeBatch) -> Result<Vec<ProbeId>, ProbeError> {
        let ids = self.process.apply_batch(batch)?;
        self.recorded.extend(ids.iter().copied());
        Ok(ids)
    }

    /// The probe ids recorded so far during this attach.
    pub fn recorded(&self) -> &[ProbeId] {
        &self.recorded
    }

    pub(crate) fn finish(self) -> Vec<ProbeId> {
        self.recorded
    }
}

// ---- handles and the registry ----

/// Identifier of an attached monitor, used for detaching. `Copy`, so it
/// can be kept alongside the typed [`MonitorRef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MonitorHandle(pub(crate) u64);

/// A typed, shared reference to an attached (or detached) monitor.
///
/// The engine and the caller share ownership of the monitor: the caller
/// keeps the `MonitorRef` for typed queries and final reporting; the
/// engine drops its half at [`Process::detach_monitor`].
pub struct MonitorRef<M: Monitor + ?Sized> {
    pub(crate) handle: MonitorHandle,
    pub(crate) monitor: Rc<RefCell<M>>,
}

impl<M: Monitor + ?Sized> MonitorRef<M> {
    /// The handle to pass to [`Process::detach_monitor`].
    pub fn handle(&self) -> MonitorHandle {
        self.handle
    }

    /// Borrows the monitor for typed queries.
    ///
    /// # Panics
    ///
    /// Panics if called while the monitor is borrowed mutably (i.e. from
    /// inside one of its own probes).
    pub fn borrow(&self) -> Ref<'_, M> {
        self.monitor.borrow()
    }

    /// Renders the monitor's report.
    pub fn report(&self) -> Report {
        self.monitor.borrow().report()
    }
}

impl<M: Monitor + ?Sized> Clone for MonitorRef<M> {
    fn clone(&self) -> MonitorRef<M> {
        MonitorRef { handle: self.handle, monitor: Rc::clone(&self.monitor) }
    }
}

impl<M: Monitor + ?Sized> core::fmt::Debug for MonitorRef<M> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MonitorRef")
            .field("handle", &self.handle)
            .field("name", &self.monitor.borrow().name())
            .finish()
    }
}

pub(crate) struct MonitorEntry {
    pub(crate) monitor: Rc<RefCell<dyn Monitor>>,
    pub(crate) probes: Vec<ProbeId>,
}

/// Per-process monitor bookkeeping.
#[derive(Default)]
pub(crate) struct MonitorRegistry {
    next: u64,
    pub(crate) entries: Vec<(MonitorHandle, MonitorEntry)>,
}

impl MonitorRegistry {
    pub(crate) fn fresh(&mut self) -> MonitorHandle {
        self.next += 1;
        MonitorHandle(self.next)
    }
}

impl Process {
    /// An *ad-hoc* instrumentation context, not tied to any monitor.
    ///
    /// Useful for one-off tooling and for libraries (like entry/exit
    /// instrumentation) that are layered above probes but below monitors.
    /// Probes inserted through an ad-hoc context are not registered for
    /// automatic removal — the caller keeps the returned [`ProbeId`]s.
    pub fn instrumentation(&mut self) -> InstrumentationCtx<'_> {
        InstrumentationCtx::new(self)
    }

    /// Attaches `monitor`: runs [`Monitor::on_attach`] and registers every
    /// probe it inserts under a fresh [`MonitorHandle`]. Returns a typed
    /// [`MonitorRef`] sharing ownership of the monitor with the engine.
    ///
    /// # Errors
    ///
    /// Propagates the monitor's [`ProbeError`], after rolling back any
    /// probes the failed attach had already inserted.
    pub fn attach_monitor<M: Monitor + 'static>(
        &mut self,
        monitor: M,
    ) -> Result<MonitorRef<M>, ProbeError> {
        let rc = Rc::new(RefCell::new(monitor));
        let dynamic: Rc<RefCell<dyn Monitor>> = Rc::clone(&rc) as Rc<RefCell<dyn Monitor>>;
        let handle = self.attach_monitor_dyn(dynamic)?;
        Ok(MonitorRef { handle, monitor: rc })
    }

    /// Type-erased [`Process::attach_monitor`], for callers selecting
    /// monitors dynamically (e.g. a `--monitors=` flag).
    ///
    /// # Errors
    ///
    /// As [`Process::attach_monitor`]; additionally fails with
    /// [`ProbeError::MonitorAlreadyAttached`] if this exact instance is
    /// already attached (`on_attach` is not required to be idempotent).
    pub fn attach_monitor_dyn(
        &mut self,
        monitor: Rc<RefCell<dyn Monitor>>,
    ) -> Result<MonitorHandle, ProbeError> {
        if self.monitors.entries.iter().any(|(_, e)| Rc::ptr_eq(&e.monitor, &monitor)) {
            return Err(ProbeError::MonitorAlreadyAttached);
        }
        let mut ctx = InstrumentationCtx::new(self);
        let result = monitor.borrow_mut().on_attach(&mut ctx);
        let recorded = ctx.finish();
        if let Err(e) = result {
            let mut rollback = ProbeBatch::new();
            for id in recorded {
                rollback.remove(id);
            }
            self.apply_batch(rollback).expect("removals cannot fail");
            return Err(e);
        }
        let handle = self.monitors.fresh();
        self.monitors.entries.push((handle, MonitorEntry { monitor, probes: recorded }));
        Ok(handle)
    }

    /// Detaches a monitor: calls [`Monitor::on_detach`], then removes all
    /// of its recorded probes in one batched invalidation pass. Once the
    /// last monitor is detached the process is back at the zero-overhead
    /// baseline: no probed locations, not in global mode, and original
    /// bytecode restored everywhere.
    ///
    /// Probes the monitor already removed itself (e.g. self-removing
    /// coverage probes) are skipped silently.
    ///
    /// # Errors
    ///
    /// Fails with [`ProbeError::UnknownMonitor`] if the handle was never
    /// attached or is already detached.
    pub fn detach_monitor(&mut self, handle: MonitorHandle) -> Result<(), ProbeError> {
        let pos = self
            .monitors
            .entries
            .iter()
            .position(|(h, _)| *h == handle)
            .ok_or(ProbeError::UnknownMonitor)?;
        let (_, entry) = self.monitors.entries.remove(pos);
        entry.monitor.borrow_mut().on_detach(self);
        let mut batch = ProbeBatch::new();
        for id in entry.probes {
            batch.remove(id);
        }
        self.apply_batch(batch).expect("removals cannot fail");
        Ok(())
    }

    /// Number of currently attached monitors.
    pub fn monitor_count(&self) -> usize {
        self.monitors.entries.len()
    }

    /// Handles of all currently attached monitors, in attach order.
    pub fn monitor_handles(&self) -> Vec<MonitorHandle> {
        self.monitors.entries.iter().map(|(h, _)| *h).collect()
    }

    /// Reports from all currently attached monitors, in attach order.
    pub fn monitor_reports(&self) -> Vec<Report> {
        self.monitors.entries.iter().map(|(_, e)| e.monitor.borrow().report()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_and_lookup() {
        let mut r = Report::new("demo");
        r.section("summary").count("events", 7).fraction("coverage", 3, 4).text("note", "hello");
        let s = r.to_string();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("[summary]"));
        assert!(s.contains("events: 7"));
        assert!(s.contains("coverage: 3/4 (75.0%)"));
        assert!(s.contains("note: hello"));
        assert_eq!(r.get("summary").unwrap().count_of("events"), Some(7));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.get("summary").unwrap().count_of("note"), None);
    }

    #[test]
    fn metric_value_display() {
        assert_eq!(MetricValue::Count(5).to_string(), "5");
        assert_eq!(MetricValue::Int(-3).to_string(), "-3");
        assert_eq!(MetricValue::Float(1.234).to_string(), "1.23");
        assert_eq!(MetricValue::Fraction(0, 0).to_string(), "0/0 (0.0%)");
    }
}
