//! The execution core: the unified value stack, frame management, the
//! tier dispatcher, probe firing with the paper's consistency guarantees,
//! and the [`ProbeCtx`] / [`FrameView`] APIs that M-code programs against.

use std::rc::Rc;
use std::sync::Arc;

use wizard_wasm::module::FuncIdx;
use wizard_wasm::opcodes as op;
use wizard_wasm::validate::{FuncMeta, Target};

use crate::classic;
use crate::code::CodeBytes;
use crate::engine::{Dispatch, Process};
use crate::frame::{Frame, FrameAccessor, Tier};
use crate::interp;
use crate::lowered::{LTarget, LoweredView};
use crate::probe::{Location, Pending, ProbeId, ProbeRef};
use crate::store::HostCtx;
use crate::trap::Trap;
use crate::value::{Slot, Value};
use crate::ExecMode;

/// Control signal raised by interpreter handlers.
#[derive(Debug)]
pub(crate) enum Sig {
    /// A trap occurred; unwind.
    Trap(Trap),
    /// The outermost invocation frame returned.
    Done,
    /// The current frame changed tier (or frames changed in a way the
    /// running loop cannot continue from); re-dispatch.
    Switch,
}

impl From<Trap> for Sig {
    fn from(t: Trap) -> Sig {
        Sig::Trap(t)
    }
}

/// Why a tier loop returned to the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Exit {
    Done,
    Redispatch,
    /// The metered fuel slice is exhausted. The current frame's `pc` (and
    /// `cip` in the JIT tier) is a valid resume point *before* an
    /// instruction whose probes have not fired yet, so resuming — in either
    /// tier — fires exactly the probes an unbounded run would.
    OutOfFuel,
}

/// Error from a frame modification that the engine configuration forbids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameModError {
    /// Frame state modification requires the interpreter; the engine is in
    /// JIT-only mode (paper §4.6: "Wizard will not allow modifications in
    /// the JIT-only configuration").
    JitOnly,
    /// The value's type does not match the local's declared type.
    TypeMismatch,
    /// The referenced local or operand index is out of range.
    OutOfRange,
    /// The accessor no longer refers to a live frame.
    InvalidFrame,
}

impl core::fmt::Display for FrameModError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameModError::JitOnly => {
                f.write_str("frame modification requires the interpreter tier")
            }
            FrameModError::TypeMismatch => f.write_str("value type does not match slot type"),
            FrameModError::OutOfRange => f.write_str("local or operand index out of range"),
            FrameModError::InvalidFrame => f.write_str("accessor does not refer to a live frame"),
        }
    }
}

impl std::error::Error for FrameModError {}

/// Execution state for one invocation.
pub(crate) struct Exec<'p> {
    pub proc: &'p mut Process,
    /// Unified locals+operand stack.
    pub values: Vec<u64>,
    /// Call stack; `frames.last()` is the current frame (its `pc`/`cip`
    /// are authoritative only at sync points).
    pub frames: Vec<Frame>,
    /// Live cursor of the current frame. In the lowered interpreter this
    /// is a *slot index*; in the classic (byte-walking) interpreter and in
    /// the JIT tier's sync writes it is a byte pc. Frames always receive
    /// byte pcs ([`Exec::sync_pc`] converts), keeping the paper's
    /// byte-offset location space the contract everywhere outside the
    /// lowered hot loop.
    pub pc: usize,
    /// Current function (global index).
    pub func: FuncIdx,
    /// Current local-function index.
    pub lf: usize,
    /// Locals base of the current frame.
    pub base: usize,
    /// Operand base of the current frame.
    pub opbase: usize,
    /// Result arity of the current function.
    pub results: u32,
    /// Current function's bytecode view (shared pristine bytes, or the
    /// process-local instrumented overlay).
    pub code: CodeBytes,
    /// Current function's lowered view (lowered dispatch only). Held by
    /// value — a small bundle of shared pointers, like [`CodeBytes`] — so
    /// the dispatch loop reaches the op stream in one indirection. Reads
    /// the artifact's shared op stream until this process instruments the
    /// function, then its copy-on-write overlay.
    pub low: LoweredView,
    /// Current function's register form ([`Dispatch::Register`] only,
    /// while the top frame runs in [`Tier::Reg`] or register-form JIT).
    /// Held by value like [`Exec::low`]; shared module-wide.
    pub reg: Arc<crate::regir::RegFunc>,
    /// Current function's metadata.
    pub meta: Arc<FuncMeta>,
    /// `true` when the engine is configured for classic byte dispatch
    /// ([`Dispatch::Bytecode`]).
    pub classic: bool,
    /// Active lowered dispatch table (normal or global-probe-instrumented).
    pub table: &'static [interp::Handler; 256],
    /// Active classic dispatch table (kept in lockstep with `table`).
    pub ctable: &'static [classic::Handler; 256],
    /// Source of activation ids.
    pub activations: u64,
    /// One-shot suppression of probe firing at a location, used when
    /// deoptimizing at a probe site whose probes already fired in the JIT.
    pub skip_probe: Option<Location>,
    /// `true` when this run is fuel-metered (bounded).
    pub metered: bool,
    /// Remaining fuel units (one unit per bytecode instruction). Only
    /// meaningful when `metered`.
    pub fuel: u64,
}

/// The owned, suspendable portion of an execution: everything a bounded
/// run needs to carry across an [`Exit::OutOfFuel`] suspension. The rest
/// of [`Exec`] is a cache rebuilt from the process and the top frame.
pub(crate) struct ExecState {
    values: Vec<u64>,
    frames: Vec<Frame>,
    activations: u64,
    skip_probe: Option<Location>,
}

impl Drop for ExecState {
    /// A suspended run that is discarded rather than resumed — explicit
    /// cancellation, a trap elsewhere, or the process being dropped —
    /// still upholds the FrameAccessor contract: accessors of its parked
    /// frames are invalidated, never left dangling-but-"valid".
    fn drop(&mut self) {
        for f in &mut self.frames {
            f.invalidate_accessor();
        }
    }
}

thread_local! {
    /// Shared placeholder for `Exec::low` before the first frame loads —
    /// built once per thread so every invocation (and every bounded-run
    /// resume slice) starts with a few refcount bumps instead of fresh
    /// allocations. Classic-dispatch runs never replace it.
    static EMPTY_LOWERED: LoweredView = LoweredView::empty();
    /// Shared placeholder for `Exec::reg`, by the same logic.
    static EMPTY_REG: Arc<crate::regir::RegFunc> = Arc::new(crate::regir::RegFunc::empty());
}

impl<'p> Exec<'p> {
    pub fn new(proc: &'p mut Process) -> Exec<'p> {
        let global = proc.global_mode;
        let table = if global { interp::instrumented_table() } else { interp::normal_table() };
        let ctable = if global { classic::instrumented_table() } else { classic::normal_table() };
        let classic = proc.config.dispatch == Dispatch::Bytecode;
        Exec {
            proc,
            values: Vec::with_capacity(1024),
            frames: Vec::with_capacity(64),
            pc: 0,
            func: 0,
            lf: 0,
            base: 0,
            opbase: 0,
            results: 0,
            code: CodeBytes::new(&[]),
            low: EMPTY_LOWERED.with(Clone::clone),
            reg: EMPTY_REG.with(Arc::clone),
            meta: Arc::new(FuncMeta::default()),
            classic,
            table,
            ctable,
            activations: 0,
            skip_probe: None,
            metered: false,
            fuel: 0,
        }
    }

    /// Rebuilds an execution from a suspended state with a fresh fuel
    /// slice. The dispatch table is re-derived from the process (global
    /// mode may have changed while suspended) and the cached current-frame
    /// fields are reloaded; stale JIT frames are caught by the version
    /// checks on redispatch.
    pub fn from_state(proc: &'p mut Process, mut state: ExecState, fuel: u64) -> Exec<'p> {
        let mut ex = Exec::new(proc);
        // Fields are taken (not moved) because ExecState's Drop handles
        // accessor invalidation for *discarded* suspensions; the emptied
        // state dropped here has nothing left to invalidate.
        ex.values = std::mem::take(&mut state.values);
        ex.frames = std::mem::take(&mut state.frames);
        ex.activations = state.activations;
        ex.skip_probe = state.skip_probe.take();
        ex.metered = true;
        ex.fuel = fuel;
        if !ex.frames.is_empty() {
            ex.load_cur();
        }
        ex
    }

    /// Tears the execution down to its suspendable state (at an
    /// [`Exit::OutOfFuel`] sync point).
    pub fn into_state(self) -> ExecState {
        ExecState {
            values: self.values,
            frames: self.frames,
            activations: self.activations,
            skip_probe: self.skip_probe,
        }
    }

    // ---- value stack ----

    #[inline]
    pub fn push(&mut self, s: Slot) {
        self.values.push(s.0);
    }

    #[inline]
    pub fn pop(&mut self) -> Slot {
        Slot(self.values.pop().expect("validated code cannot underflow"))
    }

    #[inline]
    pub fn peek(&self) -> Slot {
        Slot(*self.values.last().expect("validated code cannot underflow"))
    }

    // ---- frame sync ----

    /// `true` while `self.pc` holds a lowered slot index (the lowered
    /// interpreter is the running tier) rather than a byte pc.
    #[inline]
    fn pc_is_slot(&self) -> bool {
        !self.classic && self.frames.last().is_some_and(|f| f.tier == Tier::Interp)
    }

    /// `true` while `self.pc` holds a register-instruction index (the
    /// register interpreter is the running tier).
    #[inline]
    fn pc_is_reg_idx(&self) -> bool {
        !self.classic && self.frames.last().is_some_and(|f| f.tier == Tier::Reg)
    }

    /// Writes the live pc back into the current frame — converted to a
    /// *byte* pc if the cursor is currently a lowered slot or a register
    /// instruction index — before probes fire or state is otherwise
    /// observed.
    #[inline]
    pub fn sync_pc(&mut self) {
        if self.frames.is_empty() {
            return;
        }
        let pc = if self.pc_is_slot() {
            self.low.pc_of(self.pc) as usize
        } else if self.pc_is_reg_idx() {
            self.reg.pc_of(self.pc) as usize
        } else {
            self.pc
        };
        self.frames.last_mut().expect("non-empty").pc = pc;
    }

    /// Refreshes the cached current-frame fields from `frames.last()`,
    /// lowering the function on first touch (lowered dispatch only) and
    /// converting the parked byte pc back to a slot index.
    pub fn load_cur(&mut self) {
        let (pc, mut tier, lf) = {
            let f = self.frames.last().expect("at least one frame");
            self.func = f.func;
            self.lf = f.lf;
            self.base = f.base;
            self.opbase = f.opbase;
            self.results = f.results;
            let fc = &self.proc.code[f.lf];
            self.code = fc.bytes_view();
            self.meta = Arc::clone(fc.meta());
            (f.pc, f.tier, f.lf)
        };
        if self.classic {
            self.pc = pc;
            return;
        }
        if tier == Tier::Reg && (self.proc.global_mode || self.proc.code[lf].has_overlay()) {
            // The function can no longer run in register form: global
            // probes need the instrumented stack dispatch table, and probe
            // overlays exist only in the stack representations. Demote the
            // frame — register frames park at byte pcs with every deferred
            // operand flushed to its canonical stack position, so the
            // stack interpreter resumes them exactly.
            self.frames.last_mut().expect("at least one frame").tier = Tier::Interp;
            self.proc.stats.reg_demotions += 1;
            tier = Tier::Interp;
        }
        match tier {
            Tier::Reg => {
                self.reg = self.proc.reg_func_for(lf).expect("register frames have register code");
                self.pc = self.reg.idx_of(pc);
            }
            Tier::Interp => {
                self.low = self.proc.lowered_view_for(lf);
                self.pc = self.low.slot_of(pc as u32).expect("frame pc is an instruction boundary")
                    as usize;
            }
            Tier::Jit => {
                self.low = self.proc.lowered_view_for(lf);
                self.pc = pc;
            }
        }
    }

    /// Grows the value stack to the current register frame's full window
    /// (`opbase + num_temps`), so every temp register is addressable.
    /// Slots beyond the live operand height are dead until written; the
    /// register tiers truncate back to exact heights at every park point
    /// (calls, returns), which is what keeps parked frames observable at
    /// their canonical stack shape.
    #[inline]
    pub(crate) fn reg_extend(&mut self) {
        let need = self.opbase + self.reg.num_temps() as usize;
        if self.values.len() < need {
            self.values.resize(need, 0);
        }
    }

    // ---- branching ----

    /// The branch value shuffle shared by all tiers: truncate the operand
    /// stack to the label height, carrying the top `keep` values.
    #[inline]
    pub fn branch_values(&mut self, keep: u32, height: u32) {
        let keep = keep as usize;
        let dest = self.opbase + height as usize;
        let src = self.values.len() - keep;
        if src != dest {
            for k in 0..keep {
                self.values[dest + k] = self.values[src + k];
            }
            self.values.truncate(dest + keep);
        }
    }

    /// Executes a side-table branch (classic byte dispatch).
    #[inline]
    pub fn do_branch(&mut self, t: Target) {
        self.branch_values(t.arity, t.height);
        self.pc = t.target_pc as usize;
    }

    /// Executes a pre-resolved lowered branch (slot destination).
    #[inline]
    pub fn do_branch_lowered(&mut self, t: LTarget) {
        self.branch_values(t.keep, t.height);
        self.pc = t.slot as usize;
    }

    // ---- calls and returns ----

    /// `true` when a new activation of `lf` may run in the register tier:
    /// the process dispatches registers, the function is uninstrumented
    /// (no probe overlay) and the allocator lowered it.
    fn reg_eligible(&mut self, lf: usize) -> bool {
        !self.proc.code[lf].has_overlay() && self.proc.reg_func_for(lf).is_some()
    }

    /// Decides which tier a new activation of `lf` should start in, compiling
    /// if warranted. Never returns `Jit` in global-probe mode (paper §4.1).
    fn tier_for_call(&mut self, lf: usize) -> Tier {
        if self.proc.global_mode {
            return Tier::Interp;
        }
        let register = self.proc.config.dispatch == Dispatch::Register;
        if register && self.metered {
            // Bounded runs charge fuel per bytecode instruction in the
            // stack interpreters. The register tier has no metered loop —
            // its whole point is not touching per-instruction state — so
            // fuel-bounded slices run entirely in stack form, keeping the
            // one-unit-per-instruction suspension contract exact.
            return Tier::Interp;
        }
        match self.proc.config.mode {
            ExecMode::InterpOnly => {
                if register && self.reg_eligible(lf) {
                    return Tier::Reg;
                }
                Tier::Interp
            }
            ExecMode::JitOnly => {
                self.proc.ensure_compiled(lf);
                Tier::Jit
            }
            ExecMode::Tiered => {
                let fc = &self.proc.code[lf];
                if fc.compiled.borrow().is_some() {
                    return Tier::Jit;
                }
                let h = fc.hotness.get() + 1;
                fc.hotness.set(h);
                if h >= self.proc.config.tierup_threshold {
                    self.proc.ensure_compiled(lf);
                    self.proc.stats.tier_ups += 1;
                    Tier::Jit
                } else if register && self.reg_eligible(lf) {
                    Tier::Reg
                } else {
                    Tier::Interp
                }
            }
        }
    }

    /// Calls function `callee` (host or Wasm). Arguments must already be on
    /// the operand stack. On Wasm calls, pushes a frame and loads it as the
    /// current frame. `my_tier` is the tier of the running loop; returns
    /// `Err(Sig::Switch)` when the new frame runs in a different tier.
    pub fn do_call(&mut self, callee: FuncIdx, my_tier: Tier) -> Result<(), Sig> {
        let n_imp = self.proc.module.num_imported_funcs();
        if callee < n_imp {
            return self.do_host_call(callee);
        }
        let lf = (callee - n_imp) as usize;
        if self.frames.len() >= self.proc.config.max_call_depth {
            return Err(Trap::StackOverflow.into());
        }
        let tier = self.tier_for_call(lf);
        let (num_params, num_slots, results, max_height, code_version) = {
            let fc = &self.proc.code[lf];
            let code_version = if tier == Tier::Jit {
                fc.compiled.borrow().as_ref().map_or(0, |c| c.version())
            } else {
                0
            };
            (
                fc.num_params() as usize,
                fc.num_slots() as usize,
                fc.num_results(),
                fc.meta().max_height as usize,
                code_version,
            )
        };
        if self.values.len() + (num_slots - num_params) + max_height
            > self.proc.config.max_value_stack
        {
            return Err(Trap::ValueStackOverflow.into());
        }
        let base = self.values.len() - num_params;
        // Zero the declared (non-param) locals.
        self.values.resize(base + num_slots, 0);
        self.activations += 1;
        self.frames.push(Frame {
            func: callee,
            lf,
            base,
            opbase: base + num_slots,
            results,
            pc: 0,
            cip: 0,
            tier,
            code_version,
            activation: self.activations,
            accessor: None,
            deopt_requested: false,
        });
        self.load_cur();
        if tier == my_tier {
            Ok(())
        } else {
            Err(Sig::Switch)
        }
    }

    /// Calls an imported host function inline (no Wasm frame is pushed).
    fn do_host_call(&mut self, callee: FuncIdx) -> Result<(), Sig> {
        let ty = self.proc.func_types[callee as usize].clone();
        let n = ty.params.len();
        let split = self.values.len() - n;
        let mut args = Vec::with_capacity(n);
        for (i, t) in ty.params.iter().enumerate() {
            args.push(Value::from_slot(Slot(self.values[split + i]), *t));
        }
        self.values.truncate(split);
        let f = Rc::clone(&self.proc.host[callee as usize]);
        let mut ctx = HostCtx { memory: self.proc.memory.as_mut() };
        let rets = f(&mut ctx, &args).map_err(Sig::Trap)?;
        if rets.len() != ty.results.len() {
            return Err(Sig::Trap(Trap::Host(format!(
                "host function returned {} values, expected {}",
                rets.len(),
                ty.results.len()
            ))));
        }
        for (v, t) in rets.iter().zip(&ty.results) {
            if v.ty() != *t {
                return Err(Sig::Trap(Trap::Host("host function result type mismatch".into())));
            }
            self.values.push(v.to_slot().0);
        }
        Ok(())
    }

    /// Returns from the current frame: moves results down, pops the frame,
    /// invalidates its accessor, and resumes the caller. Returns
    /// `Err(Sig::Done)` when the entry frame returns and `Err(Sig::Switch)`
    /// when the resumed frame runs in a different tier than `my_tier`.
    pub fn do_return(&mut self, my_tier: Tier) -> Result<(), Sig> {
        let mut frame = self.frames.pop().expect("return with no frame");
        frame.invalidate_accessor();
        let nres = frame.results as usize;
        let src = self.values.len() - nres;
        let dst = frame.base;
        for k in 0..nres {
            self.values[dst + k] = self.values[src + k];
        }
        self.values.truncate(dst + nres);
        if self.frames.is_empty() {
            return Err(Sig::Done);
        }
        // Stale-frame check: if the caller was running JIT code that has
        // since been invalidated (probe insertion/removal), or the engine
        // entered global-probe mode, deoptimize it to the interpreter.
        {
            let caller = self.frames.last_mut().expect("non-empty");
            if caller.tier == Tier::Jit {
                let fc = &self.proc.code[caller.lf];
                let stale = fc
                    .compiled
                    .borrow()
                    .as_ref()
                    .is_none_or(|c| c.version() != caller.code_version);
                if stale || self.proc.global_mode || caller.deopt_requested {
                    caller.tier = Tier::Interp;
                    caller.deopt_requested = false;
                    self.proc.stats.deopts += 1;
                }
            }
        }
        self.load_cur();
        if self.frames.last().expect("non-empty").tier == my_tier {
            Ok(())
        } else {
            Err(Sig::Switch)
        }
    }

    /// Resolves and calls through the funcref table (`call_indirect`).
    pub fn do_call_indirect(&mut self, type_idx: u32, my_tier: Tier) -> Result<(), Sig> {
        let index = self.pop().u32();
        let callee = self.proc.table.get(index).map_err(Sig::Trap)?;
        let expected = &self.proc.module.types[type_idx as usize];
        let actual = &self.proc.func_types[callee as usize];
        if expected != actual {
            return Err(Sig::Trap(Trap::IndirectCallTypeMismatch));
        }
        self.do_call(callee, my_tier)
    }

    // ---- probes ----

    /// Fires all local probes at `(self.func, pc)` in insertion order over a
    /// consistent snapshot, then applies deferred instrumentation requests.
    pub fn fire_local_probes(&mut self, pc: u32) {
        let Some(list) = self.proc.probes.locals_at(self.func, pc) else {
            return;
        };
        self.sync_pc();
        let loc = Location { func: self.func, pc };
        self.proc.probes.firing += 1;
        for (_, probe) in list.iter() {
            self.proc.stats.probe_fires += 1;
            let p = Rc::clone(probe);
            let mut ctx = ProbeCtx { ex: self, loc };
            p.borrow_mut().fire(&mut ctx);
        }
        self.proc.probes.firing -= 1;
        if self.proc.probes.firing == 0 {
            self.apply_pending();
        }
    }

    /// Fires all global probes for the instruction at `pc`.
    pub fn fire_global_probes(&mut self, pc: u32) {
        let list = self.proc.probes.globals();
        if list.is_empty() {
            return;
        }
        self.sync_pc();
        let loc = Location { func: self.func, pc };
        self.proc.probes.firing += 1;
        for (_, probe) in list.iter() {
            self.proc.stats.probe_fires += 1;
            self.proc.stats.global_fires += 1;
            let p = Rc::clone(probe);
            let mut ctx = ProbeCtx { ex: self, loc };
            p.borrow_mut().fire(&mut ctx);
        }
        self.proc.probes.firing -= 1;
        if self.proc.probes.firing == 0 {
            self.apply_pending();
        }
    }

    /// Applies queued instrumentation changes (end of an event's dispatch).
    pub fn apply_pending(&mut self) {
        let had_ops = !self.proc.probes.pending.is_empty();
        let ops = std::mem::take(&mut self.proc.probes.pending);
        for p in ops {
            self.proc.apply_instrumentation(p);
        }
        // The dispatch tables may have changed (global-probe mode).
        let global = self.proc.global_mode;
        self.table = if global { interp::instrumented_table() } else { interp::normal_table() };
        self.ctable = if global { classic::instrumented_table() } else { classic::normal_table() };
        // Instrumenting the current function may have copy-on-wrote (or
        // rejoined) its code: the cached byte/lowered views would keep
        // reading the stale stream. Reload them from the frame — the pc
        // was synced before the probes fired, so this is view-identity
        // for the cursor and only swaps the op/byte sources.
        if had_ops && !self.frames.is_empty() {
            self.load_cur();
        }
    }

    /// Unwinds all frames of this invocation after a trap, invalidating
    /// their accessors (paper §2.3, mechanism 3).
    pub fn unwind(&mut self) {
        while let Some(mut f) = self.frames.pop() {
            f.invalidate_accessor();
        }
        self.values.clear();
    }

    // ---- accessors ----

    /// Materializes (or retrieves) the accessor for frame `index`.
    pub fn accessor_for(&mut self, index: usize) -> FrameAccessor {
        if let Some(acc) = &self.frames[index].accessor {
            return acc.clone();
        }
        let f = &self.frames[index];
        let acc = FrameAccessor::new(f.activation, f.func, index as u32 + 1, index);
        self.frames[index].accessor = Some(acc.clone());
        acc
    }

    /// Resolves an accessor back to a live frame index, enforcing validity
    /// (paper mechanism 5: the frame must still point at this activation).
    pub fn resolve_accessor(&self, acc: &FrameAccessor) -> Option<usize> {
        if !acc.is_valid() {
            return None;
        }
        let idx = acc.inner.frame_index.get();
        let f = self.frames.get(idx)?;
        if f.activation != acc.inner.activation {
            acc.inner.valid.set(false);
            return None;
        }
        Some(idx)
    }

    /// End of frame `index`'s operand segment in the value stack.
    fn operand_end(&self, index: usize) -> usize {
        if index + 1 == self.frames.len() {
            self.values.len()
        } else {
            self.frames[index + 1].base
        }
    }
}

/// The context passed to a firing probe: the program location, frame
/// access, read-only views of memory and globals, and dynamic probe
/// insertion/removal (deferred per the consistency guarantees).
pub struct ProbeCtx<'a, 'p> {
    pub(crate) ex: &'a mut Exec<'p>,
    pub(crate) loc: Location,
}

impl<'a, 'p> ProbeCtx<'a, 'p> {
    /// The location whose event is firing.
    pub fn location(&self) -> Location {
        self.loc
    }

    /// The opcode about to execute at the probed location (the original
    /// opcode, not the overwritten probe byte).
    pub fn opcode(&self) -> u8 {
        if self.loc.func == self.ex.func {
            self.ex.proc.code[self.ex.lf].orig_opcode(self.loc.pc)
        } else {
            op::NOP
        }
    }

    /// Call-stack depth (number of live Wasm frames).
    pub fn depth(&self) -> u32 {
        self.ex.frames.len() as u32
    }

    /// Materializes the FrameAccessor of the current (topmost) frame.
    ///
    /// The accessor is cached in the frame's accessor slot, so repeated
    /// requests return the *same* identity (paper §2.3).
    pub fn accessor(&mut self) -> FrameAccessor {
        let idx = self.ex.frames.len() - 1;
        self.ex.accessor_for(idx)
    }

    /// A view of the current frame.
    pub fn frame(&mut self) -> FrameView<'_, 'p> {
        let idx = self.ex.frames.len() - 1;
        FrameView { ex: self.ex, index: idx }
    }

    /// Resolves a stored accessor to a live frame view, if still valid.
    pub fn view(&mut self, acc: &FrameAccessor) -> Option<FrameView<'_, 'p>> {
        let idx = self.ex.resolve_accessor(acc)?;
        Some(FrameView { ex: self.ex, index: idx })
    }

    /// Top-of-stack operand of the current frame (convenience used by
    /// branch-style monitors).
    pub fn top_of_stack(&self) -> Option<Slot> {
        let end = self.ex.values.len();
        if end > self.ex.opbase {
            Some(Slot(self.ex.values[end - 1]))
        } else {
            None
        }
    }

    /// Read-only view of linear memory.
    pub fn memory(&self) -> Option<&[u8]> {
        self.ex.proc.memory.as_ref().map(|m| m.data())
    }

    /// Reads a global variable.
    pub fn global(&self, idx: u32) -> Option<Value> {
        let ty = self.ex.proc.global_types.get(idx as usize)?;
        let raw = self.ex.proc.globals.get(idx as usize)?;
        Some(Value::from_slot(Slot(*raw), ty.value))
    }

    /// Resolves a funcref table slot to a function index (used by monitors
    /// that profile `call_indirect` targets).
    pub fn resolve_table(&self, index: u32) -> Option<FuncIdx> {
        self.ex.proc.table.get(index).ok()
    }

    /// The module under execution.
    pub fn module(&self) -> &wizard_wasm::Module {
        &self.ex.proc.module
    }

    /// Inserts a local probe at `(func, pc)`. Takes effect when the current
    /// event's dispatch completes; if inserted on the *same* event that is
    /// firing, it does not fire until the next occurrence (paper §2.4.1).
    pub fn insert_local_probe(&mut self, func: FuncIdx, pc: u32, probe: ProbeRef) -> ProbeId {
        let id = self.ex.proc.probes.fresh_id();
        self.ex.proc.probes.pending.push(Pending::InsertLocal(id, func, pc, probe));
        id
    }

    /// Inserts a global probe (deferred like local insertion).
    pub fn insert_global_probe(&mut self, probe: ProbeRef) -> ProbeId {
        let id = self.ex.proc.probes.fresh_id();
        self.ex.proc.probes.pending.push(Pending::InsertGlobal(id, probe));
        id
    }

    /// Removes a probe. If removed on the same event that is firing, the
    /// removed probe still fires on this occurrence but not on subsequent
    /// ones (paper §2.4.1).
    pub fn remove_probe(&mut self, id: ProbeId) {
        self.ex.proc.probes.pending.push(Pending::Remove(id));
    }
}

impl core::fmt::Debug for ProbeCtx<'_, '_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ProbeCtx").field("loc", &self.loc).finish()
    }
}

/// A borrow-scoped view of one live frame: read locals and operands, walk
/// to the caller, and (consistently) modify frame state.
pub struct FrameView<'a, 'p> {
    ex: &'a mut Exec<'p>,
    index: usize,
}

impl<'a, 'p> FrameView<'a, 'p> {
    /// The function this frame executes.
    pub fn func(&self) -> FuncIdx {
        self.ex.frames[self.index].func
    }

    /// The frame's current bytecode pc (synced before probes fire).
    pub fn pc(&self) -> u32 {
        self.ex.frames[self.index].pc as u32
    }

    /// Call depth of this frame (1 = bottom of the invocation).
    pub fn depth(&self) -> u32 {
        self.index as u32 + 1
    }

    /// The tier this frame currently executes in.
    pub fn tier(&self) -> Tier {
        self.ex.frames[self.index].tier
    }

    /// Number of locals (params + declared).
    pub fn num_locals(&self) -> u32 {
        let lf = self.ex.frames[self.index].lf;
        self.ex.proc.code[lf].num_slots()
    }

    /// Reads local `i` as a typed value.
    pub fn local(&self, i: u32) -> Option<Value> {
        let f = &self.ex.frames[self.index];
        let lf = f.lf;
        let ty = *self.ex.proc.code[lf].local_types().get(i as usize)?;
        let raw = self.ex.values[f.base + i as usize];
        Some(Value::from_slot(Slot(raw), ty))
    }

    /// Writes local `i` — a *frame modification* with the paper's
    /// consistency guarantee: the change is applied immediately, and if the
    /// frame is executing JIT code it is deoptimized to the interpreter
    /// before execution resumes (§4.6, strategy 4).
    ///
    /// # Errors
    ///
    /// Fails in JIT-only mode, on type mismatch, or if `i` is out of range.
    pub fn set_local(&mut self, i: u32, v: Value) -> Result<(), FrameModError> {
        if self.ex.proc.config.mode == ExecMode::JitOnly {
            return Err(FrameModError::JitOnly);
        }
        let f = &self.ex.frames[self.index];
        let lf = f.lf;
        let base = f.base;
        let ty = *self.ex.proc.code[lf]
            .local_types()
            .get(i as usize)
            .ok_or(FrameModError::OutOfRange)?;
        if v.ty() != ty {
            return Err(FrameModError::TypeMismatch);
        }
        self.ex.values[base + i as usize] = v.to_slot().0;
        self.mark_modified();
        Ok(())
    }

    /// Number of operand-stack slots currently live in this frame.
    pub fn operand_count(&self) -> usize {
        let end = self.ex.operand_end(self.index);
        end - self.ex.frames[self.index].opbase
    }

    /// Reads operand `i` counting from the top (0 = top of stack).
    ///
    /// Operands are untyped slots: the engine does not track operand types
    /// at runtime; the observing monitor knows the type from context.
    pub fn operand(&self, i: usize) -> Option<Slot> {
        let end = self.ex.operand_end(self.index);
        let opbase = self.ex.frames[self.index].opbase;
        if i < end - opbase {
            Some(Slot(self.ex.values[end - 1 - i]))
        } else {
            None
        }
    }

    /// Writes operand `i` from the top — a frame modification (see
    /// [`FrameView::set_local`]).
    ///
    /// # Errors
    ///
    /// Fails in JIT-only mode or if `i` is out of range.
    pub fn set_operand(&mut self, i: usize, v: Slot) -> Result<(), FrameModError> {
        if self.ex.proc.config.mode == ExecMode::JitOnly {
            return Err(FrameModError::JitOnly);
        }
        let end = self.ex.operand_end(self.index);
        let opbase = self.ex.frames[self.index].opbase;
        if i >= end - opbase {
            return Err(FrameModError::OutOfRange);
        }
        self.ex.values[end - 1 - i] = v.0;
        self.mark_modified();
        Ok(())
    }

    /// Materializes the accessor for this frame.
    pub fn accessor(&mut self) -> FrameAccessor {
        self.ex.accessor_for(self.index)
    }

    /// Walks to the caller frame, materializing its accessor — the paper's
    /// stackwalking support for context-sensitive analyses.
    pub fn caller(&mut self) -> Option<FrameAccessor> {
        if self.index == 0 {
            return None;
        }
        Some(self.ex.accessor_for(self.index - 1))
    }

    fn mark_modified(&mut self) {
        let f = &mut self.ex.frames[self.index];
        if f.tier == Tier::Jit {
            f.deopt_requested = true;
            self.ex.proc.stats.deopts += 1;
        }
    }
}

impl core::fmt::Debug for FrameView<'_, '_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FrameView")
            .field("func", &self.func())
            .field("pc", &self.pc())
            .field("depth", &self.depth())
            .finish()
    }
}
