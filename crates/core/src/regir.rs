//! The register IR: stack-free lowering for the hot dispatch path.
//!
//! [`Lowered`](crate::lowered) still models the operand stack — every
//! `local.get`/`local.set` is a dispatched push or pop. This module lowers
//! a validated function one step further, to an **infinite-virtual-register,
//! fixed-width form** ([`RInstr`]) in which locals *and* operand-stack
//! slots are numbered registers of the frame:
//!
//! * register `r < num_slots` is local `r`;
//! * register `num_slots + i` is the operand-stack slot at height `i`
//!   (its *canonical position*).
//!
//! Both live at `values[base + r]`, so the interpreter addresses every
//! operand with one indexed load and the operand stack never moves while a
//! register frame runs. An abstract-stack allocator walks the bytecode
//! once: `local.get` and `*.const` push *symbolic* entries and emit
//! nothing; consumers fold those entries into inline operands
//! ([`R_BIN_RI`], call argument slices, …), so most stack traffic
//! disappears at lowering time. Call/`br_table` argument lists go through
//! a module-level **deduplicated operand-slice arena** and **const pool**
//! (the wasmi register-IR design).
//!
//! The paper's byte-offset `Location` contract survives translation:
//! every register instruction carries its source byte pc
//! ([`RegFunc::pc_of`]) and every byte pc forward-maps to the first
//! register instruction at-or-after it ([`RegFunc::idx_of`]) — eliminated
//! instructions (`local.get`, consts) have no runtime effect, so resuming
//! a frame parked at their pc correctly lands on the consumer. At every
//! **park point** (calls, returns, loop headers for OSR, taken branches)
//! the allocator has flushed the abstract stack to canonical registers,
//! so a register frame is indistinguishable from a stack-machine frame:
//! probes walking the frame, fuel suspension, OSR, and deopt all keep
//! working at byte granularity.
//!
//! Lowering is total-or-nothing per function: any shape the allocator
//! does not model (register ids beyond `u16`, inconsistent label heights)
//! returns `None` and that function simply keeps running on the lowered
//! stack tier.

use std::collections::HashMap;
use std::sync::Arc;

use wizard_wasm::instr::{decode_at, Imm};
use wizard_wasm::opcodes as op;
use wizard_wasm::types::FuncType;
use wizard_wasm::validate::{FuncMeta, SideEntry, Target};

use crate::artifact::{FuncArtifact, ModuleArtifact};
use crate::numeric;
use crate::value::Slot;

// ---- register opcodes ----
//
// A fresh, dense opcode space (unrelated to wasm opcode bytes). `y` holds
// the original numeric/memory opcode byte where one is needed.

/// `r[dst] = z` (immediate constant).
pub const R_CONST: u8 = 1;
/// `r[dst] = r[a]`.
pub const R_COPY: u8 = 2;
/// `r[dst] = binop<y>(r[a], r[b])`.
pub const R_BIN: u8 = 3;
/// `r[dst] = binop<y>(r[a], z)` — right operand folded to an immediate.
pub const R_BIN_RI: u8 = 4;
/// `r[dst] = binop<y>(z, r[b])` — left operand folded to an immediate.
pub const R_BIN_IR: u8 = 5;
/// `r[dst] = unop<y>(r[a])`.
pub const R_UN: u8 = 6;
/// `r[dst] = load<y>(r[a] + x)`.
pub const R_LOAD: u8 = 7;
/// `store<y>(r[a] + x, r[b])`.
pub const R_STORE: u8 = 8;
/// `r[dst] = r[x] != 0 ? r[a] : r[b]`.
pub const R_SELECT: u8 = 9;
/// `r[dst] = globals[x]`.
pub const R_GLOBAL_GET: u8 = 10;
/// `globals[x] = r[a]`.
pub const R_GLOBAL_SET: u8 = 11;
/// `r[dst] = memory.size`.
pub const R_MEM_SIZE: u8 = 12;
/// `r[dst] = memory.grow(r[a])`.
pub const R_MEM_GROW: u8 = 13;
/// Unconditional jump to instruction `x`, carrying `y` (0 or 1) values:
/// `r[b] = r[a]` when `y == 1`.
pub const R_BR: u8 = 14;
/// As [`R_BR`] if `r[dst] != 0`, else fall through.
pub const R_BR_IF: u8 = 15;
/// As [`R_BR`] if `r[dst] == 0`, else fall through (the `if` false edge).
pub const R_BR_IF_Z: u8 = 16;
/// Indexed jump through table `x` on `r[dst]`; each entry carries its own
/// destination register, the common source register is `a`.
pub const R_BR_TABLE: u8 = 17;
/// Return `y` (0 or 1) results, the value read from `r[a]`.
pub const R_RETURN: u8 = 18;
/// Call function `x`; `a` = stack height below the arguments, `b` = arg
/// count, `z` = argument-slice index | return byte pc << 32.
pub const R_CALL: u8 = 19;
/// As [`R_CALL`] through the table: `x` = expected type index, `r[dst]` =
/// table element index.
pub const R_CALL_INDIRECT: u8 = 20;
/// Trap: unreachable.
pub const R_UNREACHABLE: u8 = 21;
/// Loop header (OSR + hotness site): `dst` = entry height, `x` = the
/// `loop` byte pc (the OSR-entry key), `z` = the byte pc after the `loop`.
pub const R_LOOP: u8 = 22;
/// Fused `binop<y>; br_if` (branch arity 0): taken when
/// `binop<y>(r[a], r[b]) != 0`.
pub const R_CMP_BR: u8 = 23;
/// As [`R_CMP_BR`] with the right operand folded: `binop<y>(r[a], z)`.
pub const R_CMP_BR_RI: u8 = 24;

/// Tag bit marking a call-argument source as a const-pool index rather
/// than a register id.
pub const ARG_POOL_BIT: u32 = 1 << 31;

/// One fixed-width register instruction. 24 bytes, immediates pre-decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RInstr {
    /// Wide immediate payload: inline constant bits, or
    /// `slice_idx | ret_pc << 32` for calls.
    pub z: u64,
    /// Branch-target instruction index / callee / global index / memory
    /// offset / table index, depending on `op`.
    pub x: u32,
    /// Destination register (also: condition register for branches, index
    /// register for `br_table`/`call_indirect`, entry height for loops).
    pub dst: u16,
    /// First source register.
    pub a: u16,
    /// Second source register.
    pub b: u16,
    /// Register opcode (`R_*`).
    pub op: u8,
    /// Sub-opcode: the original numeric/memory wasm opcode byte, or the
    /// carried-value count for branches/returns.
    pub y: u8,
}

impl RInstr {
    const NOP: RInstr = RInstr { z: 0, x: 0, dst: 0, a: 0, b: 0, op: 0, y: 0 };

    fn new(op: u8) -> RInstr {
        RInstr { op, ..RInstr::NOP }
    }
}

/// One `br_table` entry: pre-resolved target instruction index plus the
/// per-target shuffle (the source register is shared by all entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RTableEntry {
    /// Target instruction index.
    pub idx: u32,
    /// Destination register for the carried value.
    pub dst: u16,
    /// Number of carried values (0 or 1).
    pub keep: u8,
}

/// The register form of one function: the instruction stream, the
/// bidirectional byte-pc ↔ instruction-index maps, and shared handles on
/// the module-level const pool and operand-slice arena.
#[derive(Debug)]
pub struct RegFunc {
    ops: Box<[RInstr]>,
    /// Source byte pc of each instruction (non-decreasing).
    idx_to_pc: Box<[u32]>,
    /// Forward map: byte pc → first instruction at-or-after it
    /// (`len = body_len + 1`; the sentinel maps to the final return).
    pc_to_idx: Box<[u32]>,
    /// `br_table` jump tables, deduplicated within the function.
    tables: Box<[Box<[RTableEntry]>]>,
    /// Module-level const pool (deduplicated u64 slot bits).
    pool: Arc<[u64]>,
    /// Module-level flattened argument-source stream.
    args: Arc<[u32]>,
    /// Module-level `(start, len)` argument slices into `args`.
    slices: Arc<[(u32, u32)]>,
    /// Registers above the locals: exactly the function's max operand
    /// height, so `num_slots + num_temps` registers address the frame.
    num_temps: u16,
    num_slots: u16,
}

impl RegFunc {
    /// Number of register instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` for the empty placeholder form.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The instruction at `idx`.
    #[inline(always)]
    pub fn get(&self, idx: usize) -> RInstr {
        self.ops[idx]
    }

    /// The full instruction stream.
    pub fn ops(&self) -> &[RInstr] {
        &self.ops
    }

    /// Source byte pc of instruction `idx`.
    #[inline]
    pub fn pc_of(&self, idx: usize) -> u32 {
        self.idx_to_pc[idx]
    }

    /// First instruction at-or-after byte pc `pc`. Total over
    /// `0..=body_len`: pcs of eliminated instructions forward-map to their
    /// consumer, which is exactly where a parked frame must resume.
    #[inline]
    pub fn idx_of(&self, pc: usize) -> usize {
        self.pc_to_idx[pc] as usize
    }

    /// Registers above the locals (== the function's max operand height).
    pub fn num_temps(&self) -> u16 {
        self.num_temps
    }

    /// Local-slot count (register ids below this are locals).
    pub fn num_slots(&self) -> u16 {
        self.num_slots
    }

    /// The `br_table` jump table at `idx`.
    #[inline]
    pub fn table(&self, idx: u32) -> &[RTableEntry] {
        &self.tables[idx as usize]
    }

    /// The argument-source slice at `idx` (see [`ARG_POOL_BIT`]).
    #[inline]
    pub fn arg_slice(&self, idx: u32) -> &[u32] {
        let (start, len) = self.slices[idx as usize];
        &self.args[start as usize..(start + len) as usize]
    }

    /// The const-pool value at `idx`.
    #[inline]
    pub fn pool(&self, idx: u32) -> u64 {
        self.pool[idx as usize]
    }

    /// An empty placeholder (used as the interpreter's "no register form
    /// loaded" view).
    pub fn empty() -> RegFunc {
        RegFunc {
            ops: Box::new([]),
            idx_to_pc: Box::new([]),
            pc_to_idx: Box::new([]),
            tables: Box::new([]),
            pool: Arc::from([] as [u64; 0]),
            args: Arc::from([] as [u32; 0]),
            slices: Arc::from([] as [(u32, u32); 0]),
            num_temps: 0,
            num_slots: 0,
        }
    }

    /// Bytes this register form occupies (for code-size accounting).
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of;
        self.ops.len() * size_of::<RInstr>()
            + self.idx_to_pc.len() * 4
            + self.pc_to_idx.len() * 4
            + self.tables.iter().map(|t| t.len() * size_of::<RTableEntry>()).sum::<usize>()
    }
}

/// The register form of a whole module: one optional [`RegFunc`] per local
/// function (a `None` marks a per-function allocator fallback — the
/// function keeps running on the lowered stack tier), plus build counters.
#[derive(Debug)]
pub struct RegModule {
    funcs: Vec<Option<Arc<RegFunc>>>,
    /// Functions successfully lowered to register form.
    pub lowered_count: u64,
    /// Functions the allocator declined (stack-tier fallback).
    pub fallback_count: u64,
}

impl RegModule {
    /// The register form of local function `lf`, if it lowered.
    #[inline]
    pub fn func(&self, lf: usize) -> Option<&Arc<RegFunc>> {
        self.funcs.get(lf)?.as_ref()
    }

    /// Bytes the whole register form occupies.
    pub fn size_bytes(&self) -> usize {
        self.funcs.iter().flatten().map(|f| f.size_bytes()).sum()
    }
}

/// Lowers every function of `artifact` to register form in one pass,
/// sharing one const pool and one operand-slice arena across the module.
pub(crate) fn build_module(artifact: &ModuleArtifact) -> RegModule {
    let mut shared = Shared::default();
    let func_types: &[FuncType] = artifact.func_types();
    let types: &[FuncType] = &artifact.module().types;
    let parts: Vec<Option<Parts>> =
        artifact.funcs().iter().map(|fa| lower_func(fa, func_types, types, &mut shared)).collect();
    let pool: Arc<[u64]> = shared.pool.into();
    let args: Arc<[u32]> = shared.args.into();
    let slices: Arc<[(u32, u32)]> = shared.slices.into();
    let mut lowered_count = 0;
    let mut fallback_count = 0;
    let funcs = parts
        .into_iter()
        .map(|p| match p {
            Some(p) => {
                lowered_count += 1;
                Some(Arc::new(RegFunc {
                    ops: p.ops.into(),
                    idx_to_pc: p.idx_to_pc.into(),
                    pc_to_idx: p.pc_to_idx.into(),
                    tables: p.tables.into(),
                    pool: Arc::clone(&pool),
                    args: Arc::clone(&args),
                    slices: Arc::clone(&slices),
                    num_temps: p.num_temps,
                    num_slots: p.num_slots,
                }))
            }
            None => {
                fallback_count += 1;
                None
            }
        })
        .collect();
    RegModule { funcs, lowered_count, fallback_count }
}

// ---- the allocator ----

/// Module-level shared arenas under construction.
#[derive(Default)]
struct Shared {
    pool: Vec<u64>,
    pool_map: HashMap<u64, u32>,
    args: Vec<u32>,
    slices: Vec<(u32, u32)>,
    slice_map: HashMap<Vec<u32>, u32>,
}

impl Shared {
    fn pool_idx(&mut self, bits: u64) -> Option<u32> {
        if let Some(&i) = self.pool_map.get(&bits) {
            return Some(i);
        }
        let i = u32::try_from(self.pool.len()).ok()?;
        if i & ARG_POOL_BIT != 0 {
            return None;
        }
        self.pool.push(bits);
        self.pool_map.insert(bits, i);
        Some(i)
    }

    fn slice_idx(&mut self, slice: Vec<u32>) -> Option<u32> {
        if let Some(&i) = self.slice_map.get(&slice) {
            return Some(i);
        }
        let i = u32::try_from(self.slices.len()).ok()?;
        let start = u32::try_from(self.args.len()).ok()?;
        self.slices.push((start, slice.len() as u32));
        self.args.extend_from_slice(&slice);
        self.slice_map.insert(slice, i);
        Some(i)
    }
}

struct Parts {
    ops: Vec<RInstr>,
    idx_to_pc: Vec<u32>,
    pc_to_idx: Vec<u32>,
    tables: Vec<Box<[RTableEntry]>>,
    num_temps: u16,
    num_slots: u16,
}

/// An abstract operand-stack entry. A `Temp` at stack position `i` always
/// lives in its canonical register `num_slots + i`; `Local`/`Const`
/// entries are deferred — they emitted nothing yet and fold into the
/// consumer's operands (or materialize at a flush point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Av {
    Temp,
    Local(u32),
    Const(u64),
}

struct FnBuilder<'m> {
    ops: Vec<RInstr>,
    idx_to_pc: Vec<u32>,
    tables: Vec<Box<[RTableEntry]>>,
    table_map: HashMap<Vec<RTableEntry>, u32>,
    stack: Vec<Av>,
    /// Branch-target pcs → required entry height.
    labels: HashMap<u32, u32>,
    num_slots: u16,
    shared: &'m mut Shared,
}

impl FnBuilder<'_> {
    /// Canonical register of operand-stack position `pos`.
    fn temp(&self, pos: usize) -> u16 {
        self.num_slots + pos as u16
    }

    fn emit(&mut self, pc: u32, ri: RInstr) {
        self.ops.push(ri);
        self.idx_to_pc.push(pc);
    }

    /// Materializes the abstract entry at stack position `pos` into its
    /// canonical register (no-op for `Temp`).
    fn materialize(&mut self, pc: u32, pos: usize) {
        let dst = self.temp(pos);
        match self.stack[pos] {
            Av::Temp => return,
            Av::Local(x) => {
                self.emit(pc, RInstr { dst, a: x as u16, ..RInstr::new(R_COPY) });
            }
            Av::Const(z) => {
                self.emit(pc, RInstr { dst, z, ..RInstr::new(R_CONST) });
            }
        }
        self.stack[pos] = Av::Temp;
    }

    /// Flushes every abstract entry below `upto` to canonical registers —
    /// the park-point discipline: after a flush the register frame is
    /// indistinguishable from a stack-machine frame at the same height.
    fn flush(&mut self, pc: u32, upto: usize) {
        for p in 0..upto {
            self.materialize(pc, p);
        }
    }

    /// Register holding a *popped* value whose former stack position was
    /// `pos`; `Const` entries materialize into that (now-scratch) slot.
    fn reg_of_at(&mut self, pc: u32, av: Av, pos: usize) -> u16 {
        match av {
            Av::Temp => self.temp(pos),
            Av::Local(x) => x as u16,
            Av::Const(z) => {
                let dst = self.temp(pos);
                self.emit(pc, RInstr { dst, z, ..RInstr::new(R_CONST) });
                dst
            }
        }
    }

    /// Before writing local `x`, materialize every deferred read of it.
    fn hazard(&mut self, pc: u32, x: u32, upto: usize) {
        for p in 0..upto {
            if self.stack[p] == Av::Local(x) {
                self.materialize(pc, p);
            }
        }
    }

    /// Emits a branch-shaped instruction toward `t`; the target pc goes in
    /// `x` temporarily and is patched to an instruction index later. The
    /// shuffle moves `t.arity` carried values from the current canonical
    /// top to the target's canonical positions on the taken edge.
    fn branch(&mut self, pc: u32, opb: u8, cond: u16, t: &Target) -> Option<()> {
        let keep = u8::try_from(t.arity).ok()?;
        if keep > 1 {
            return None; // MVP block arity is 0 or 1; anything else falls back.
        }
        let h = self.stack.len();
        let src = self.temp(h - keep as usize);
        let dstr = self.temp(t.height as usize);
        self.emit(
            pc,
            RInstr { x: t.target_pc, dst: cond, a: src, b: dstr, y: keep, ..RInstr::new(opb) },
        );
        Some(())
    }
}

/// `true` for the comparison binops (result is an i32 truth value) —
/// eligible heads for the fused compare-and-branch forms.
fn is_cmp(o: u8) -> bool {
    matches!(o,
        op::I32_EQ..=op::I32_GE_U
        | op::I64_EQ..=op::I64_GE_U
        | op::F32_EQ..=op::F32_GE
        | op::F64_EQ..=op::F64_GE)
}

/// Collects every branch-target pc with its required entry height
/// (`height + arity`). Returns `None` on conflicting heights.
fn collect_labels(meta: &FuncMeta) -> Option<HashMap<u32, u32>> {
    let mut labels = HashMap::new();
    let mut add = |t: &Target| -> Option<()> {
        let entry = t.height + t.arity;
        match labels.insert(t.target_pc, entry) {
            Some(prev) if prev != entry => None,
            _ => Some(()),
        }
    };
    for e in meta.side.values() {
        match e {
            SideEntry::Br(t) | SideEntry::IfFalse(t) | SideEntry::ElseSkip(t) => add(t)?,
            SideEntry::Table(ts) => {
                for t in ts {
                    add(t)?;
                }
            }
        }
    }
    Some(labels)
}

/// Lowers one function to register form, or `None` if any shape falls
/// outside the allocator's model (the stack tier then serves it).
fn lower_func(
    fa: &FuncArtifact,
    func_types: &[FuncType],
    types: &[FuncType],
    shared: &mut Shared,
) -> Option<Parts> {
    let meta: &FuncMeta = &fa.meta;
    let bytes: &[u8] = &fa.bytes;
    let num_slots = u16::try_from(meta.num_slots).ok()?;
    let num_temps = u16::try_from(meta.max_height).ok()?;
    num_slots.checked_add(num_temps)?;
    let nres = fa.num_results as usize;
    let labels = collect_labels(meta)?;

    let mut b = FnBuilder {
        ops: Vec::with_capacity(bytes.len() / 2),
        idx_to_pc: Vec::with_capacity(bytes.len() / 2),
        tables: Vec::new(),
        table_map: HashMap::new(),
        stack: Vec::with_capacity(meta.max_height as usize),
        labels,
        num_slots,
        shared,
    };

    let mut pos = 0usize;
    let mut dead = false;
    let mut last_pc = 0u32;
    let mut end_pc = 0u32; // pc of the body's final `end`.
    while pos < bytes.len() {
        let (instr, next) = decode_at(bytes, pos).ok()?;
        let pc = instr.pc;
        end_pc = pc;
        // Label entry: flush on the fall-through edge (attributed to the
        // *previous* pc so jumps land past the copies), or resurrect dead
        // code at the label's canonical entry state.
        if let Some(&entry) = b.labels.get(&pc) {
            if dead {
                b.stack.clear();
                b.stack.resize(entry as usize, Av::Temp);
                dead = false;
            } else {
                b.flush(last_pc, b.stack.len());
                if b.stack.len() != entry as usize {
                    return None;
                }
            }
        }
        if dead {
            pos = next;
            last_pc = pc;
            continue;
        }
        match instr.op {
            op::NOP | op::BLOCK | op::END => {}
            op::UNREACHABLE => {
                b.emit(pc, RInstr::new(R_UNREACHABLE));
                dead = true;
            }
            op::LOOP => {
                // Loop heads are OSR park points: fully canonical entry.
                b.flush(pc, b.stack.len());
                let h = b.stack.len() as u16;
                b.emit(pc, RInstr { dst: h, x: pc, z: next as u64, ..RInstr::new(R_LOOP) });
            }
            op::IF => {
                let t = match meta.side.get(&pc)? {
                    SideEntry::IfFalse(t) => *t,
                    _ => return None,
                };
                let cond = b.stack.pop()?;
                let h = b.stack.len();
                let creg = b.reg_of_at(pc, cond, h);
                b.flush(pc, h);
                b.branch(pc, R_BR_IF_Z, creg, &t)?;
            }
            op::ELSE => {
                let t = match meta.side.get(&pc)? {
                    SideEntry::ElseSkip(t) => *t,
                    _ => return None,
                };
                b.flush(pc, b.stack.len());
                b.branch(pc, R_BR, 0, &t)?;
                dead = true;
            }
            op::BR => {
                let t = match meta.side.get(&pc)? {
                    SideEntry::Br(t) => *t,
                    _ => return None,
                };
                b.flush(pc, b.stack.len());
                b.branch(pc, R_BR, 0, &t)?;
                dead = true;
            }
            op::BR_IF => {
                let t = match meta.side.get(&pc)? {
                    SideEntry::Br(t) => *t,
                    _ => return None,
                };
                let cond = b.stack.pop()?;
                let h = b.stack.len();
                let creg = b.reg_of_at(pc, cond, h);
                b.flush(pc, h);
                b.branch(pc, R_BR_IF, creg, &t)?;
            }
            op::BR_TABLE => {
                let ts = match meta.side.get(&pc)? {
                    SideEntry::Table(ts) => ts.clone(),
                    _ => return None,
                };
                let idx = b.stack.pop()?;
                let h = b.stack.len();
                let ireg = b.reg_of_at(pc, idx, h);
                b.flush(pc, h);
                let keep = u8::try_from(ts.first()?.arity).ok()?;
                if keep > 1 {
                    return None;
                }
                let src = b.temp(h - keep as usize);
                let entries: Vec<RTableEntry> = ts
                    .iter()
                    .map(|t| RTableEntry {
                        idx: t.target_pc, // patched to an instruction index below
                        dst: b.temp(t.height as usize),
                        keep,
                    })
                    .collect();
                let ti = match b.table_map.get(&entries) {
                    Some(&i) => i,
                    None => {
                        let i = b.tables.len() as u32;
                        b.tables.push(entries.clone().into_boxed_slice());
                        b.table_map.insert(entries, i);
                        i
                    }
                };
                b.emit(pc, RInstr { dst: ireg, a: src, x: ti, ..RInstr::new(R_BR_TABLE) });
                dead = true;
            }
            op::RETURN => {
                let mut a = 0;
                if nres > 0 {
                    let v = b.stack.pop()?;
                    a = b.reg_of_at(pc, v, b.stack.len());
                }
                b.emit(pc, RInstr { y: nres as u8, a, ..RInstr::new(R_RETURN) });
                dead = true;
            }
            op::CALL | op::CALL_INDIRECT => {
                let (callee_x, ireg, ty): (u32, u16, &FuncType) = match (instr.op, &instr.imm) {
                    (op::CALL, &Imm::Idx(f)) => (f, 0, func_types.get(f as usize)?),
                    (op::CALL_INDIRECT, &Imm::CallIndirect { type_idx, .. }) => {
                        let idx = b.stack.pop()?;
                        let ireg = b.reg_of_at(pc, idx, b.stack.len());
                        // The expected signature lives in the module's
                        // type section; every callee through the table
                        // type-checks against it at run time.
                        (type_idx, ireg, types.get(type_idx as usize)?)
                    }
                    _ => return None,
                };
                let (nargs, nret) = (ty.params.len(), ty.results.len());
                let h = b.stack.len();
                let hb = h.checked_sub(nargs)?;
                b.flush(pc, hb);
                // Gather the argument sources *before* popping: deferred
                // locals/consts skip materialization entirely and are
                // written straight into the callee frame at call time.
                let mut slice = Vec::with_capacity(nargs);
                for (i, &av) in b.stack[hb..].iter().enumerate() {
                    slice.push(match av {
                        Av::Temp => u32::from(b.temp(hb + i)),
                        Av::Local(x) => x,
                        Av::Const(c) => ARG_POOL_BIT | b.shared.pool_idx(c)?,
                    });
                }
                let si = b.shared.slice_idx(slice)?;
                b.stack.truncate(hb);
                let z = u64::from(si) | (next as u64) << 32;
                let ri = RInstr {
                    x: callee_x,
                    dst: ireg,
                    a: hb as u16,
                    b: nargs as u16,
                    z,
                    ..RInstr::new(if instr.op == op::CALL { R_CALL } else { R_CALL_INDIRECT })
                };
                b.emit(pc, ri);
                b.stack.resize(hb + nret, Av::Temp);
            }
            op::DROP => {
                b.stack.pop()?;
            }
            op::SELECT => {
                let c = b.stack.pop()?;
                let v2 = b.stack.pop()?;
                let v1 = b.stack.pop()?;
                let h = b.stack.len();
                let r1 = b.reg_of_at(pc, v1, h);
                let r2 = b.reg_of_at(pc, v2, h + 1);
                let rc = b.reg_of_at(pc, c, h + 2);
                let dst = b.temp(h);
                b.emit(pc, RInstr { dst, a: r1, b: r2, x: u32::from(rc), ..RInstr::new(R_SELECT) });
                b.stack.push(Av::Temp);
            }
            op::LOCAL_GET => {
                let Imm::Idx(x) = instr.imm else { return None };
                b.stack.push(Av::Local(x));
            }
            op::LOCAL_SET | op::LOCAL_TEE => {
                let Imm::Idx(x) = instr.imm else { return None };
                let top = b.stack.len().checked_sub(1)?;
                b.hazard(pc, x, top);
                let v = b.stack[top];
                let dst = x as u16;
                match v {
                    Av::Local(y) if y == x => {} // `local.get x; local.set x`: no-op.
                    Av::Local(y) => {
                        b.emit(pc, RInstr { dst, a: y as u16, ..RInstr::new(R_COPY) });
                    }
                    Av::Const(z) => b.emit(pc, RInstr { dst, z, ..RInstr::new(R_CONST) }),
                    Av::Temp => {
                        b.emit(pc, RInstr { dst, a: b.temp(top), ..RInstr::new(R_COPY) });
                    }
                }
                if instr.op == op::LOCAL_SET {
                    b.stack.pop();
                }
                // tee keeps the entry; `Local(y)`/`Const` stay valid —
                // the hazard pass re-materializes on a later write.
            }
            op::GLOBAL_GET => {
                let Imm::Idx(g) = instr.imm else { return None };
                let dst = b.temp(b.stack.len());
                b.emit(pc, RInstr { dst, x: g, ..RInstr::new(R_GLOBAL_GET) });
                b.stack.push(Av::Temp);
            }
            op::GLOBAL_SET => {
                let Imm::Idx(g) = instr.imm else { return None };
                let v = b.stack.pop()?;
                let a = b.reg_of_at(pc, v, b.stack.len());
                b.emit(pc, RInstr { a, x: g, ..RInstr::new(R_GLOBAL_SET) });
            }
            op::MEMORY_SIZE => {
                let dst = b.temp(b.stack.len());
                b.emit(pc, RInstr { dst, ..RInstr::new(R_MEM_SIZE) });
                b.stack.push(Av::Temp);
            }
            op::MEMORY_GROW => {
                let v = b.stack.pop()?;
                let h = b.stack.len();
                let a = b.reg_of_at(pc, v, h);
                b.emit(pc, RInstr { dst: b.temp(h), a, ..RInstr::new(R_MEM_GROW) });
                b.stack.push(Av::Temp);
            }
            op::I32_CONST | op::I64_CONST | op::F32_CONST | op::F64_CONST => {
                let bits = match instr.imm {
                    Imm::I32(v) => Slot::from_i32(v).0,
                    Imm::I64(v) => Slot::from_i64(v).0,
                    Imm::F32(v) => Slot::from_f32(v).0,
                    Imm::F64(v) => Slot::from_f64(v).0,
                    _ => return None,
                };
                b.stack.push(Av::Const(bits));
            }
            o if numeric::is_binop(o) => {
                let rhs = b.stack.pop()?;
                let lhs = b.stack.pop()?;
                let h = b.stack.len();
                let dst = b.temp(h);
                // Compare-and-branch fusion: a comparison immediately
                // consumed by an arity-0 `br_if` (and the `br_if` pc is
                // not itself a branch target) becomes one instruction —
                // the loop-backedge pattern.
                let fused = if is_cmp(o) && !matches!(lhs, Av::Const(_)) {
                    match decode_at(bytes, next) {
                        Ok((nx, after)) if nx.op == op::BR_IF && !b.labels.contains_key(&nx.pc) => {
                            match meta.side.get(&nx.pc) {
                                Some(SideEntry::Br(t)) if t.arity == 0 => Some((*t, after)),
                                _ => None,
                            }
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some((t, after)) = fused {
                    let ra = b.reg_of_at(pc, lhs, h);
                    b.flush(pc, h);
                    let (opb, rb, z) = match rhs {
                        Av::Const(z) => (R_CMP_BR_RI, 0, z),
                        _ => (R_CMP_BR, b.reg_of_at(pc, rhs, h + 1), 0),
                    };
                    b.emit(
                        pc,
                        RInstr { y: o, a: ra, b: rb, z, x: t.target_pc, ..RInstr::new(opb) },
                    );
                    last_pc = next as u32; // the fused-over br_if's pc
                    pos = after;
                    continue;
                }
                let ri = match (lhs, rhs) {
                    (Av::Const(zl), Av::Const(zr)) => {
                        // Two consts: no folding (binops can trap) —
                        // materialize the left, fold the right.
                        let a = b.reg_of_at(pc, Av::Const(zl), h);
                        RInstr { y: o, dst, a, z: zr, ..RInstr::new(R_BIN_RI) }
                    }
                    (l, Av::Const(z)) => {
                        let a = b.reg_of_at(pc, l, h);
                        RInstr { y: o, dst, a, z, ..RInstr::new(R_BIN_RI) }
                    }
                    (Av::Const(z), r) => {
                        let rb = b.reg_of_at(pc, r, h + 1);
                        RInstr { y: o, dst, b: rb, z, ..RInstr::new(R_BIN_IR) }
                    }
                    (l, r) => {
                        let a = b.reg_of_at(pc, l, h);
                        let rb = b.reg_of_at(pc, r, h + 1);
                        RInstr { y: o, dst, a, b: rb, ..RInstr::new(R_BIN) }
                    }
                };
                b.emit(pc, ri);
                b.stack.push(Av::Temp);
            }
            o if numeric::is_unop(o) => {
                let v = b.stack.pop()?;
                let h = b.stack.len();
                let a = b.reg_of_at(pc, v, h);
                b.emit(pc, RInstr { y: o, dst: b.temp(h), a, ..RInstr::new(R_UN) });
                b.stack.push(Av::Temp);
            }
            o if op::is_load(o) => {
                let Imm::Mem { offset, .. } = instr.imm else { return None };
                let v = b.stack.pop()?;
                let h = b.stack.len();
                let a = b.reg_of_at(pc, v, h);
                b.emit(pc, RInstr { y: o, dst: b.temp(h), a, x: offset, ..RInstr::new(R_LOAD) });
                b.stack.push(Av::Temp);
            }
            o if op::is_store(o) => {
                let Imm::Mem { offset, .. } = instr.imm else { return None };
                let val = b.stack.pop()?;
                let addr = b.stack.pop()?;
                let h = b.stack.len();
                let a = b.reg_of_at(pc, addr, h);
                let rb = b.reg_of_at(pc, val, h + 1);
                b.emit(pc, RInstr { y: o, a, b: rb, x: offset, ..RInstr::new(R_STORE) });
            }
            _ => return None,
        }
        last_pc = pc;
        pos = next;
    }

    // The implicit return. A branch targeting the function's end lands at
    // the sentinel pc (`body_len`), which must map to the return itself —
    // the fall-through flush copies (attributed to the final `end`) sit
    // before it.
    let body_len = bytes.len() as u32;
    if let Some(&entry) = b.labels.get(&body_len) {
        if dead {
            b.stack.clear();
            b.stack.resize(entry as usize, Av::Temp);
            dead = false;
        }
    }
    if !dead {
        b.flush(end_pc, b.stack.len());
        if b.stack.len() != nres {
            return None;
        }
    }
    b.emit(body_len, RInstr { y: nres as u8, a: b.temp(0), ..RInstr::new(R_RETURN) });

    // Forward byte-pc → instruction-index map (total over 0..=body_len).
    let mut pc_to_idx = vec![0u32; bytes.len() + 1];
    let mut idx = 0usize;
    for (pc, slot) in pc_to_idx.iter_mut().enumerate() {
        while idx < b.idx_to_pc.len() && (b.idx_to_pc[idx] as usize) < pc {
            idx += 1;
        }
        *slot = idx as u32;
    }

    // Patch branch targets from byte pcs to instruction indexes.
    let resolve = |tpc: u32| pc_to_idx[tpc as usize];
    for ri in &mut b.ops {
        match ri.op {
            R_BR | R_BR_IF | R_BR_IF_Z | R_CMP_BR | R_CMP_BR_RI => ri.x = resolve(ri.x),
            _ => {}
        }
    }
    for t in &mut b.tables {
        for e in t.iter_mut() {
            e.idx = resolve(e.idx);
        }
    }

    Some(Parts {
        ops: b.ops,
        idx_to_pc: b.idx_to_pc,
        pc_to_idx,
        tables: b.tables,
        num_temps,
        num_slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn lower(mb: ModuleBuilder) -> RegModule {
        let art = ModuleArtifact::new(mb.build().unwrap()).unwrap();
        build_module(&art)
    }

    /// `inc(x) = x + 1`: the deferred local and const fold into one
    /// `R_BIN_RI` — zero stack traffic, two instructions total.
    #[test]
    fn straight_line_add_is_one_bin_ri() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(1).i32_add();
        mb.add_func("inc", f);
        let rm = lower(mb);
        assert_eq!((rm.lowered_count, rm.fallback_count), (1, 0));
        let rf = rm.func(0).unwrap();
        assert_eq!(rf.num_slots(), 1);
        let ops = rf.ops();
        assert_eq!(ops.len(), 2, "bin + return, nothing else: {ops:?}");
        assert_eq!(ops[0].op, R_BIN_RI);
        assert_eq!(ops[0].y, op::I32_ADD);
        assert_eq!(ops[0].a, 0, "lhs reads local 0 directly");
        assert_eq!(ops[0].z, Slot::from_i32(1).0, "rhs folded inline");
        assert_eq!(ops[0].dst, rf.num_slots(), "dst is stack slot 0");
        assert_eq!(ops[1].op, R_RETURN);
        assert_eq!((ops[1].y, ops[1].a), (1, rf.num_slots()));
    }

    /// `local.get x; local.set x` emits nothing; a deferred local
    /// reaching the implicit return materializes via one flush copy.
    #[test]
    fn get_set_same_local_is_erased() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).local_set(0).local_get(0);
        mb.add_func("id", f);
        let rf = lower(mb).func(0).unwrap().clone();
        let ops = rf.ops();
        assert_eq!(ops.len(), 2, "flush copy + return: {ops:?}");
        assert_eq!((ops[0].op, ops[0].dst, ops[0].a), (R_COPY, rf.num_slots(), 0));
        assert_eq!(ops[1].op, R_RETURN);
    }

    /// The loop-backedge compare + `br_if` pair fuses into one
    /// `R_CMP_BR`, and the loop header emits an `R_LOOP` park point.
    #[test]
    fn loop_backedge_fuses_compare_and_branch() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        f.for_range(i, 0, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
        });
        f.local_get(acc);
        mb.add_func("sum", f);
        let rf = lower(mb).func(0).unwrap().clone();
        let ops = rf.ops();
        assert!(ops.iter().any(|ri| ri.op == R_LOOP));
        let fused: Vec<_> =
            ops.iter().filter(|ri| ri.op == R_CMP_BR || ri.op == R_CMP_BR_RI).collect();
        assert!(!fused.is_empty(), "backedge did not fuse: {ops:?}");
        assert!(numeric::is_binop(fused[0].y) && is_cmp(fused[0].y));
        // The backedge targets the loop header: some branch's patched
        // target index resolves to an instruction at the header's pc.
        let loop_ri = ops.iter().find(|ri| ri.op == R_LOOP).unwrap();
        let back = ops
            .iter()
            .filter(|ri| matches!(ri.op, R_BR | R_CMP_BR | R_CMP_BR_RI))
            .find(|ri| rf.pc_of(ri.x as usize) == loop_ri.x);
        assert!(back.is_some(), "no branch targets the loop header: {ops:?}");
    }

    /// Byte-pc ↔ instruction-index maps: `idx_to_pc` is monotone,
    /// `idx_of` is total over `0..=body_len` and returns the first
    /// instruction at-or-after the pc, and the stream ends in the
    /// implicit `R_RETURN` at the `body_len` sentinel.
    #[test]
    fn pc_maps_round_trip() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        f.for_range(i, 0, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
        });
        f.local_get(acc);
        mb.add_func("sum", f);
        let art = ModuleArtifact::new(mb.build().unwrap()).unwrap();
        let body_len = art.funcs()[0].bytes.len();
        let rf = build_module(&art).func(0).unwrap().clone();

        for w in (0..rf.len()).collect::<Vec<_>>().windows(2) {
            assert!(rf.pc_of(w[0]) <= rf.pc_of(w[1]), "idx_to_pc not monotone");
        }
        for pc in 0..=body_len {
            let idx = rf.idx_of(pc);
            assert!(idx < rf.len());
            assert!(rf.pc_of(idx) as usize >= pc, "instr before pc {pc}");
            if idx > 0 {
                assert!((rf.pc_of(idx - 1) as usize) < pc, "not the first at-or-after {pc}");
            }
        }
        let last = rf.get(rf.len() - 1);
        assert_eq!(last.op, R_RETURN);
        assert_eq!(rf.pc_of(rf.len() - 1) as usize, body_len);
    }

    /// Two callers passing the same const arguments share one slice in
    /// the module-level operand arena, and the const pool holds each
    /// value once — addressed through `ARG_POOL_BIT`.
    #[test]
    fn call_arg_slices_and_const_pool_dedup() {
        let mut mb = ModuleBuilder::new();
        let mut h = FuncBuilder::new(&[I32, I32], &[I32]);
        h.local_get(0).local_get(1).i32_add();
        mb.add_func("helper", h);
        for name in ["f", "g"] {
            let mut f = FuncBuilder::new(&[], &[I32]);
            f.i32_const(7).i32_const(9).call(0);
            mb.add_func(name, f);
        }
        let rm = lower(mb);
        assert_eq!(rm.lowered_count, 3);
        let find_call = |lf: usize| {
            let rf = rm.func(lf).unwrap();
            *rf.ops().iter().find(|ri| ri.op == R_CALL).unwrap()
        };
        let (cf, cg) = (find_call(1), find_call(2));
        let (sf, sg) = (cf.z as u32, cg.z as u32);
        assert_eq!(sf, sg, "identical arg lists share one slice");
        let rf = rm.func(1).unwrap();
        let slice = rf.arg_slice(sf);
        assert_eq!(slice.len(), 2);
        assert!(slice.iter().all(|&a| a & ARG_POOL_BIT != 0), "consts via pool");
        assert_eq!(rf.pool(slice[0] & !ARG_POOL_BIT), Slot::from_i32(7).0);
        assert_eq!(rf.pool(slice[1] & !ARG_POOL_BIT), Slot::from_i32(9).0);
        assert_eq!((cf.a, cf.b), (0, 2), "args written from height 0, two of them");
    }

    /// `RegModule` indexing: every local function lowers (the MVP op set
    /// is fully modeled), out-of-range lookups return `None`, and the
    /// size accounting is non-trivial.
    #[test]
    fn module_indexing_and_totals() {
        let mut mb = ModuleBuilder::new();
        for n in 0..3 {
            let mut f = FuncBuilder::new(&[I32], &[I32]);
            f.local_get(0).i32_const(n).i32_add();
            mb.add_func(&format!("f{n}"), f);
        }
        let rm = lower(mb);
        assert_eq!((rm.lowered_count, rm.fallback_count), (3, 0));
        for lf in 0..3 {
            assert!(rm.func(lf).is_some());
        }
        assert!(rm.func(3).is_none());
        assert!(rm.size_bytes() > 0);
    }
}
