//! The JIT tier: a pre-decoded micro-op compiler and executor.
//!
//! This stands in for Wizard's baseline JIT (which emits x86-64). The
//! function's *lowered* form ([`crate::lowered`] — immediates pre-decoded,
//! side table fused) is compiled into a dense array of micro-ops executed
//! by a tight dispatch loop — the same structural role machine code plays
//! in the paper. The JIT shares the lowering with the interpreter instead
//! of re-walking raw bytes:
//!
//! * local probes are *compiled into* the code at their sites;
//! * a generic probe site requires a state checkpoint and a runtime call
//!   (paper Figure 2, second column);
//! * intrinsified `CountProbe`s compile to an inline counter increment and
//!   intrinsified operand probes to a direct top-of-stack call (Figure 2,
//!   third and fourth columns) — no FrameAccessor reification;
//! * inserting/removing probes bumps the function's instrumentation
//!   version, invalidating compiled code; executing frames deoptimize back
//!   to the interpreter in place (paper §4.5–4.6, strategy 4).
//!
//! Compiled code is split in two layers so probe-free code can be shared:
//!
//! * [`CompiledCode`] is plain data (`Send + Sync`): the op stream, pc
//!   metadata and OSR entries. Probe sites reference their M-code through
//!   *indices* into the binding tables, never through pointers.
//! * [`Compiled`] binds a `CompiledCode` to one process: the counter cells
//!   and probe references the indices resolve against. Code compiled at
//!   instrumentation version 0 has empty bindings, so the artifact caches
//!   one `Arc<CompiledCode>` and every uninstrumented process of the
//!   module executes the very same compiled ops
//!   ([`FuncArtifact::baseline_compiled`](crate::artifact::FuncArtifact)).
//!   The first probe invalidates only that process's binding; siblings
//!   keep running the shared code.

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use wizard_wasm::module::FuncIdx;
use wizard_wasm::opcodes as op;

use crate::code::FuncOverlay;
use crate::exec::{Exec, Exit, Sig};
use crate::frame::Tier;
use crate::lowered::{LTarget, Lowered, LoweredView};
use crate::numeric;
use crate::probe::{Location, ProbeKind, ProbeRef, ProbeRegistry};
use crate::trap::Trap;
use crate::value::Slot;
use crate::EngineConfig;

/// A resolved branch target in compiled code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JTarget {
    /// Destination op index.
    pub ip: u32,
    /// Values carried across the branch.
    pub keep: u32,
    /// Operand height (above the frame's operand base) to truncate to.
    pub height: u32,
}

/// One compiled micro-op. Plain data — probe sites carry indices into the
/// owning [`Compiled`]'s binding tables, keeping the op stream shareable.
#[derive(Clone)]
pub enum Op {
    /// Push a constant slot.
    Const(u64),
    /// Push local `n`.
    LocalGet(u32),
    /// Pop into local `n`.
    LocalSet(u32),
    /// Copy top of stack into local `n`.
    LocalTee(u32),
    /// Push global `n`.
    GlobalGet(u32),
    /// Pop into global `n`.
    GlobalSet(u32),
    /// Pop and discard.
    Drop,
    /// Ternary select.
    Select,
    /// Binary numeric op (shared semantics with the interpreter).
    Bin(u8),
    /// Unary numeric op.
    Un(u8),
    /// Memory load with constant offset.
    Load {
        /// Original opcode (selects width/signedness).
        op: u8,
        /// Constant offset.
        offset: u32,
    },
    /// Memory store with constant offset.
    Store {
        /// Original opcode.
        op: u8,
        /// Constant offset.
        offset: u32,
    },
    /// `memory.size`.
    MemorySize,
    /// `memory.grow`.
    MemoryGrow,
    /// Unconditional branch.
    Br(JTarget),
    /// Branch if popped i32 is non-zero (`br_if`).
    BrIf(JTarget),
    /// Branch if popped i32 is zero (`if` false edge).
    BrIfZero(JTarget),
    /// `br_table`: targets then default (last).
    BrTable(Box<[JTarget]>),
    /// Explicit return.
    Return,
    /// Direct call.
    Call {
        /// Callee function index.
        callee: u32,
        /// Bytecode pc of the instruction after the call (frame resume point).
        ret_pc: u32,
    },
    /// Indirect call through the table.
    CallIndirect {
        /// Expected type index.
        type_idx: u32,
        /// Bytecode resume pc.
        ret_pc: u32,
    },
    /// `unreachable`.
    Unreachable,
    /// Generic probe site: checkpoint state and fire through the runtime
    /// (Figure 2, "generic probe").
    Probe {
        /// Bytecode pc of the probed instruction.
        pc: u32,
    },
    /// Intrinsified counter probe: inline increment, no call (Figure 2,
    /// "counter probe").
    CountBump {
        /// Index into [`Compiled::cells`].
        cell: u32,
    },
    /// Intrinsified top-of-stack operand probe: direct call with the
    /// operand value, no FrameAccessor (Figure 2, "operand probe").
    OperandProbe {
        /// Index into [`Compiled::operands`].
        probe: u32,
        /// Bytecode pc of the probed instruction.
        pc: u32,
    },
}

impl core::fmt::Debug for Op {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Op::Const(v) => write!(f, "const {v:#x}"),
            Op::LocalGet(i) => write!(f, "local.get {i}"),
            Op::LocalSet(i) => write!(f, "local.set {i}"),
            Op::LocalTee(i) => write!(f, "local.tee {i}"),
            Op::GlobalGet(i) => write!(f, "global.get {i}"),
            Op::GlobalSet(i) => write!(f, "global.set {i}"),
            Op::Drop => f.write_str("drop"),
            Op::Select => f.write_str("select"),
            Op::Bin(b) => f.write_str(op::name(*b)),
            Op::Un(b) => f.write_str(op::name(*b)),
            Op::Load { op: b, offset } => write!(f, "{} +{offset}", op::name(*b)),
            Op::Store { op: b, offset } => write!(f, "{} +{offset}", op::name(*b)),
            Op::MemorySize => f.write_str("memory.size"),
            Op::MemoryGrow => f.write_str("memory.grow"),
            Op::Br(t) => write!(f, "br -> ip {} (keep {}, h {})", t.ip, t.keep, t.height),
            Op::BrIf(t) => write!(f, "br_if -> ip {} (keep {}, h {})", t.ip, t.keep, t.height),
            Op::BrIfZero(t) => {
                write!(f, "br_if_zero -> ip {} (keep {}, h {})", t.ip, t.keep, t.height)
            }
            Op::BrTable(ts) => {
                write!(f, "br_table [")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{}", t.ip)?;
                }
                write!(f, "]")
            }
            Op::Return => f.write_str("return"),
            Op::Call { callee, .. } => write!(f, "call {callee}"),
            Op::CallIndirect { type_idx, .. } => write!(f, "call_indirect (type {type_idx})"),
            Op::Unreachable => f.write_str("unreachable"),
            Op::Probe { pc } => write!(
                f,
                "probe.generic pc={pc}  ; checkpoint state, runtime call, FrameAccessor available"
            ),
            Op::CountBump { .. } => {
                f.write_str("count.bump          ; intrinsified: inline counter increment")
            }
            Op::OperandProbe { pc, .. } => {
                write!(f, "probe.operand pc={pc} ; intrinsified: direct call with top-of-stack")
            }
        }
    }
}

/// A function compiled to micro-ops: the shareable, process-independent
/// layer (plain data, `Send + Sync`).
#[derive(Debug)]
pub struct CompiledCode {
    /// Instrumentation version this code was specialized against (0 for
    /// the shared probe-free baseline).
    pub version: u32,
    /// The op stream.
    pub ops: Vec<Op>,
    /// Bytecode pc for each op (deoptimization metadata).
    pub ip_to_pc: Vec<u32>,
    /// OSR entry points: loop-header pc → op index *after* that pc's probe
    /// ops (so tier-up does not re-fire probes the interpreter already ran).
    pub osr_entry: HashMap<u32, u32>,
    /// When set, this "compiled" code is the function's **register form**
    /// ([`crate::regir`]) and `ops`/`ip_to_pc` are empty: the JIT tier
    /// executes register instructions directly (the micro-op compiler's
    /// structural role — pre-decoded, pre-resolved, fixed-width — is
    /// already fulfilled by the register lowering, so recompiling it to
    /// stack-shaped micro-ops would only reintroduce the stack traffic
    /// the register tier exists to eliminate). Probed functions always
    /// compile the stack-shaped form instead, so probe sites keep their
    /// Figure-2 compilation strategies.
    pub reg: Option<Arc<crate::regir::RegFunc>>,
}

/// Compiled code bound to one process: the shareable op stream plus the
/// probe bindings its probe-site indices resolve against. Version-0 code
/// has empty bindings and wraps the artifact's shared `Arc<CompiledCode>`.
pub struct Compiled {
    /// The (possibly shared) op stream.
    pub code: Arc<CompiledCode>,
    /// The owning process's instrumentation version this binding is valid
    /// for. For privately-compiled code this equals `code.version`; for
    /// the shared baseline it is the process's version at wrap time
    /// (`code.version` stays 0 there). Stamped per process so versions
    /// observed by live frames stay strictly monotonic even though the
    /// baseline op stream is reused across probe/detach cycles.
    pub version: u32,
    /// Counter cells referenced by [`Op::CountBump`].
    pub cells: Vec<Rc<Cell<u64>>>,
    /// Operand probes referenced by [`Op::OperandProbe`].
    pub operands: Vec<ProbeRef>,
}

impl core::fmt::Debug for Compiled {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Compiled")
            .field("code", &self.code)
            .field("cells", &self.cells.len())
            .field("operands", &self.operands.len())
            .finish()
    }
}

impl Compiled {
    /// The instrumentation version this process-bound code is valid for.
    #[inline]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Address of the op stream, for sharing assertions.
    pub fn code_addr(&self) -> usize {
        Arc::as_ptr(&self.code) as usize
    }
}

/// Compiles the probe-free baseline (instrumentation version 0) of `func`
/// from the shared lowered form. The result references no process state
/// and is cached on the [`FuncArtifact`](crate::artifact::FuncArtifact),
/// shared by every process until it instruments the function.
pub(crate) fn compile_baseline(func: FuncIdx, low: &Arc<Lowered>) -> CompiledCode {
    let view = LoweredView::shared((**low).clone());
    let (code, cells, operands) = compile_inner(func, &view, None, 0);
    debug_assert!(cells.is_empty() && operands.is_empty(), "baseline has no probe sites");
    code
}

/// Compiles `fc` from its *lowered* view to micro-ops, baking in the
/// currently-installed probes.
///
/// The lowering pass already pre-decoded every immediate and fused the
/// side table, so compilation is a single walk over fixed-width slots.
pub(crate) fn compile(
    fc: &FuncOverlay,
    low: &LoweredView,
    probes: &ProbeRegistry,
    config: &EngineConfig,
) -> Compiled {
    let version = fc.version.get();
    let (code, cells, operands) =
        compile_inner(fc.func(), low, Some((fc, probes, config)), version);
    Compiled { code: Arc::new(code), version, cells, operands }
}

/// The shared compilation walk. `instr` carries the probe context for
/// instrumented compiles; `None` compiles the pristine baseline.
#[allow(clippy::type_complexity)]
fn compile_inner(
    func: FuncIdx,
    low: &LoweredView,
    instr: Option<(&FuncOverlay, &ProbeRegistry, &EngineConfig)>,
    version: u32,
) -> (CompiledCode, Vec<Rc<Cell<u64>>>, Vec<ProbeRef>) {
    let nslots = low.len();
    let mut ops: Vec<Op> = Vec::with_capacity(nslots);
    let mut ip_to_pc: Vec<u32> = Vec::with_capacity(nslots);
    let mut slot_to_ip: Vec<u32> = Vec::with_capacity(nslots + 1);
    let mut osr_entry: HashMap<u32, u32> = HashMap::new();
    let mut cells: Vec<Rc<Cell<u64>>> = Vec::new();
    let mut operands: Vec<ProbeRef> = Vec::new();

    // Branch targets are emitted with `ip` temporarily holding the lowered
    // *slot*; a second pass resolves slots to op indices.
    let jt = |t: LTarget| JTarget { ip: t.slot, keep: t.keep, height: t.height };

    for slot in 0..nslots {
        // The unfused view: exactly one bytecode instruction per slot
        // (fused superinstructions are an interpreter-dispatch concern).
        // Probe-patched slots compile from the saved original instruction
        // — `original` also recovers pre-fusion immediates if the patched
        // slot was a fused head; the site's probes are compiled in (or
        // intrinsified) below.
        let pc = low.pc_of(slot);
        let mut li = low.unfused(slot);
        if li.op == op::PROBE {
            let fc = instr.expect("probe opcodes only occur on instrumented overlays").0;
            li = low.original(slot, fc.orig_opcode(pc));
        }
        slot_to_ip.push(ops.len() as u32);
        let opb = li.op;
        // Probe site: intrinsify if every probe at the site supports it,
        // otherwise fall back to a single generic probe op that dispatches
        // the whole site list through the runtime.
        if let Some((_, probes, config)) = instr {
            if let Some(list) = probes.locals_at(func, pc) {
                let all_intrinsic = list.iter().all(|(_, p)| match p.borrow().kind() {
                    ProbeKind::Count => config.intrinsify_count,
                    ProbeKind::Operand => config.intrinsify_operand,
                    ProbeKind::Generic => false,
                });
                if all_intrinsic {
                    for (_, p) in list.iter() {
                        let kind = p.borrow().kind();
                        match kind {
                            ProbeKind::Count => {
                                let cell = p.borrow().count_cell().expect("count probe has cell");
                                cells.push(cell);
                                ops.push(Op::CountBump { cell: cells.len() as u32 - 1 });
                            }
                            ProbeKind::Operand => {
                                operands.push(Rc::clone(p));
                                ops.push(Op::OperandProbe { probe: operands.len() as u32 - 1, pc });
                            }
                            ProbeKind::Generic => unreachable!("checked all_intrinsic"),
                        }
                        ip_to_pc.push(pc);
                    }
                } else {
                    ops.push(Op::Probe { pc });
                    ip_to_pc.push(pc);
                }
            }
        }
        if opb == op::LOOP {
            osr_entry.insert(pc, ops.len() as u32);
        }
        let emitted: Option<Op> = match opb {
            op::NOP | op::BLOCK | op::LOOP | op::END => None,
            op::UNREACHABLE => Some(Op::Unreachable),
            op::BR | op::ELSE => Some(Op::Br(jt(low.target(li.x)))),
            op::BR_IF => Some(Op::BrIf(jt(low.target(li.x)))),
            op::IF => Some(Op::BrIfZero(jt(low.target(li.x)))),
            op::BR_TABLE => Some(Op::BrTable(low.table(li.x).iter().map(|t| jt(*t)).collect())),
            op::RETURN => Some(Op::Return),
            op::CALL => Some(Op::Call { callee: li.x, ret_pc: low.pc_of(slot + 1) }),
            op::CALL_INDIRECT => {
                Some(Op::CallIndirect { type_idx: li.x, ret_pc: low.pc_of(slot + 1) })
            }
            op::DROP => Some(Op::Drop),
            op::SELECT => Some(Op::Select),
            op::LOCAL_GET => Some(Op::LocalGet(li.x)),
            op::LOCAL_SET => Some(Op::LocalSet(li.x)),
            op::LOCAL_TEE => Some(Op::LocalTee(li.x)),
            op::GLOBAL_GET => Some(Op::GlobalGet(li.x)),
            op::GLOBAL_SET => Some(Op::GlobalSet(li.x)),
            op::MEMORY_SIZE => Some(Op::MemorySize),
            op::MEMORY_GROW => Some(Op::MemoryGrow),
            // The lowering already holds const payloads as slot bits.
            op::I32_CONST | op::I64_CONST | op::F32_CONST | op::F64_CONST => Some(Op::Const(li.z)),
            b if op::is_load(b) => Some(Op::Load { op: b, offset: li.x }),
            b if op::is_store(b) => Some(Op::Store { op: b, offset: li.x }),
            b if numeric::is_binop(b) => Some(Op::Bin(b)),
            b if numeric::is_unop(b) => Some(Op::Un(b)),
            b => unreachable!("unhandled opcode {b:#04x} in validated code"),
        };
        if let Some(o) = emitted {
            ops.push(o);
            ip_to_pc.push(pc);
        }
    }
    // Sentinel: branches to one-past-the-end resolve to the return path.
    slot_to_ip.push(ops.len() as u32);

    // Resolve branch targets: JTarget.ip currently holds a lowered slot.
    let map = |t: &mut JTarget| {
        t.ip = slot_to_ip[t.ip as usize];
    };
    for o in &mut ops {
        match o {
            Op::Br(t) | Op::BrIf(t) | Op::BrIfZero(t) => map(t),
            Op::BrTable(ts) => {
                for t in ts.iter_mut() {
                    map(t);
                }
            }
            _ => {}
        }
    }

    (CompiledCode { version, ops, ip_to_pc, osr_entry, reg: None }, cells, operands)
}

/// Compiles the probe-free baseline of `func` from its **register form**:
/// the register instructions are executed directly by the JIT tier, so
/// "compilation" is only the OSR-entry metadata (loop-header byte pc →
/// register instruction index, for tier-up from the interpreters).
pub(crate) fn compile_baseline_reg(func: FuncIdx, rf: Arc<crate::regir::RegFunc>) -> CompiledCode {
    let _ = func;
    let mut osr_entry: HashMap<u32, u32> = HashMap::new();
    for (idx, ri) in rf.ops().iter().enumerate() {
        if ri.op == crate::regir::R_LOOP {
            osr_entry.insert(ri.x, idx as u32);
        }
    }
    CompiledCode { version: 0, ops: Vec::new(), ip_to_pc: Vec::new(), osr_entry, reg: Some(rf) }
}

/// Runs the current (JIT-tier) frame until the invocation finishes, the
/// frame deoptimizes, or a trap unwinds.
#[allow(clippy::too_many_lines)]
pub(crate) fn run_frame(ex: &mut Exec) -> Result<Exit, Trap> {
    'frames: loop {
        let (lf, start_ip, expect_version) = {
            let f = ex.frames.last().expect("frame");
            debug_assert_eq!(f.tier, Tier::Jit);
            (f.lf, f.cip, f.code_version)
        };
        let Some(compiled) = ex.proc.code[lf].compiled.borrow().clone() else {
            // Code was invalidated while this frame was suspended: deopt.
            deopt_here(ex);
            return Ok(Exit::Redispatch);
        };
        if compiled.version() != expect_version {
            deopt_here(ex);
            return Ok(Exit::Redispatch);
        }
        // Register-form code: the register executor runs it directly.
        // Frame-stack changes (calls/returns) surface as `Redispatch`, so
        // the drive loop re-resolves the new top frame's code.
        if compiled.code.reg.is_some() {
            return crate::regint::run_jit(ex, &compiled);
        }
        let func = ex.func;
        let code = &compiled.code;
        let mut ip = start_ip;
        loop {
            if ip >= code.ops.len() {
                // Fell off the end: return.
                ex.frames.last_mut().expect("frame").cip = ip;
                match ex.do_return(Tier::Jit) {
                    Ok(()) => continue 'frames,
                    Err(Sig::Done) => return Ok(Exit::Done),
                    Err(Sig::Switch) => return Ok(Exit::Redispatch),
                    Err(Sig::Trap(t)) => return Err(t),
                }
            }
            // Fuel metering (bounded runs only): charge one unit at the
            // first micro-op of each bytecode instruction. Probe ops are
            // emitted *before* their instruction's ops and share its pc, so
            // a suspension here is always before an instruction whose
            // probes have not fired yet — `cip` resumes compiled code
            // exactly here, and `pc` is a valid interpreter resume point if
            // the code is invalidated while suspended.
            if ex.metered && (ip == 0 || code.ip_to_pc[ip] != code.ip_to_pc[ip - 1]) {
                if ex.fuel == 0 {
                    let pc = code.ip_to_pc[ip] as usize;
                    ex.pc = pc;
                    let f = ex.frames.last_mut().expect("frame");
                    f.cip = ip;
                    f.pc = pc;
                    return Ok(Exit::OutOfFuel);
                }
                ex.fuel -= 1;
            }
            match &code.ops[ip] {
                Op::Const(v) => ex.values.push(*v),
                Op::LocalGet(i) => {
                    let v = ex.values[ex.base + *i as usize];
                    ex.values.push(v);
                }
                Op::LocalSet(i) => {
                    let v = ex.pop();
                    ex.values[ex.base + *i as usize] = v.0;
                }
                Op::LocalTee(i) => {
                    let v = ex.peek();
                    ex.values[ex.base + *i as usize] = v.0;
                }
                Op::GlobalGet(i) => {
                    let v = ex.proc.globals[*i as usize];
                    ex.values.push(v);
                }
                Op::GlobalSet(i) => {
                    let v = ex.pop();
                    ex.proc.globals[*i as usize] = v.0;
                }
                Op::Drop => {
                    ex.pop();
                }
                Op::Select => {
                    let c = ex.pop().i32();
                    let v2 = ex.pop();
                    let v1 = ex.pop();
                    ex.push(if c != 0 { v1 } else { v2 });
                }
                Op::Bin(b) => {
                    let rhs = ex.pop();
                    let lhs = ex.pop();
                    match numeric::binop(*b, lhs, rhs) {
                        Ok(v) => ex.push(v),
                        Err(t) => return trap(ex, t),
                    }
                }
                Op::Un(b) => {
                    let a = ex.pop();
                    match numeric::unop(*b, a) {
                        Ok(v) => ex.push(v),
                        Err(t) => return trap(ex, t),
                    }
                }
                Op::Load { op: b, offset } => {
                    let addr = ex.pop().u32();
                    let mem = ex.proc.memory.as_ref().expect("validated");
                    match numeric::do_load(mem, *b, addr, *offset) {
                        Ok(v) => ex.push(v),
                        Err(t) => return trap(ex, t),
                    }
                }
                Op::Store { op: b, offset } => {
                    let val = ex.pop();
                    let addr = ex.pop().u32();
                    let mem = ex.proc.memory.as_mut().expect("validated");
                    if let Err(t) = numeric::do_store(mem, *b, addr, *offset, val) {
                        return trap(ex, t);
                    }
                }
                Op::MemorySize => {
                    let pages = ex.proc.memory.as_ref().expect("validated").pages();
                    ex.push(Slot::from_u32(pages));
                }
                Op::MemoryGrow => {
                    let delta = ex.pop().u32();
                    let r = ex.proc.memory.as_mut().expect("validated").grow(delta);
                    ex.push(Slot::from_i32(r));
                }
                Op::Br(t) => {
                    ex.branch_values(t.keep, t.height);
                    ip = t.ip as usize;
                    continue;
                }
                Op::BrIf(t) => {
                    let c = ex.pop().i32();
                    if c != 0 {
                        ex.branch_values(t.keep, t.height);
                        ip = t.ip as usize;
                        continue;
                    }
                }
                Op::BrIfZero(t) => {
                    let c = ex.pop().i32();
                    if c == 0 {
                        ex.branch_values(t.keep, t.height);
                        ip = t.ip as usize;
                        continue;
                    }
                }
                Op::BrTable(ts) => {
                    let i = ex.pop().u32() as usize;
                    let t = ts[i.min(ts.len() - 1)];
                    ex.branch_values(t.keep, t.height);
                    ip = t.ip as usize;
                    continue;
                }
                Op::Return => {
                    ex.frames.last_mut().expect("frame").cip = ip + 1;
                    match ex.do_return(Tier::Jit) {
                        Ok(()) => continue 'frames,
                        Err(Sig::Done) => return Ok(Exit::Done),
                        Err(Sig::Switch) => return Ok(Exit::Redispatch),
                        Err(Sig::Trap(t)) => return Err(t),
                    }
                }
                Op::Call { callee, ret_pc } => {
                    ex.pc = *ret_pc as usize;
                    {
                        let f = ex.frames.last_mut().expect("frame");
                        f.cip = ip + 1;
                        f.pc = *ret_pc as usize;
                    }
                    match ex.do_call(*callee, Tier::Jit) {
                        Ok(()) => continue 'frames,
                        Err(Sig::Switch) => return Ok(Exit::Redispatch),
                        Err(Sig::Trap(t)) => return trap(ex, t),
                        Err(Sig::Done) => unreachable!("call cannot finish invocation"),
                    }
                }
                Op::CallIndirect { type_idx, ret_pc } => {
                    ex.pc = *ret_pc as usize;
                    {
                        let f = ex.frames.last_mut().expect("frame");
                        f.cip = ip + 1;
                        f.pc = *ret_pc as usize;
                    }
                    match ex.do_call_indirect(*type_idx, Tier::Jit) {
                        Ok(()) => continue 'frames,
                        Err(Sig::Switch) => return Ok(Exit::Redispatch),
                        Err(Sig::Trap(t)) => return trap(ex, t),
                        Err(Sig::Done) => unreachable!("call cannot finish invocation"),
                    }
                }
                Op::Unreachable => return trap(ex, Trap::Unreachable),
                Op::CountBump { cell } => {
                    // Fully-inlined counter: the intrinsified fast path.
                    let cell = &compiled.cells[*cell as usize];
                    cell.set(cell.get() + 1);
                }
                Op::OperandProbe { probe, pc } => {
                    // Direct call with the top-of-stack value; no runtime
                    // dispatch, no FrameAccessor.
                    let top = ex.peek();
                    compiled.operands[*probe as usize]
                        .borrow_mut()
                        .fire_operand(Location { func, pc: *pc }, top);
                }
                Op::Probe { pc } => {
                    // Generic probe site: checkpoint (sync pc/cip), then fire
                    // through the same runtime path as the interpreter.
                    let pcv = *pc;
                    ex.pc = pcv as usize;
                    {
                        let f = ex.frames.last_mut().expect("frame");
                        f.cip = ip + 1;
                        f.pc = pcv as usize;
                    }
                    ex.fire_local_probes(pcv);
                    // Consistency checks: instrumentation changes or frame
                    // modification force deoptimization of this frame only
                    // (paper §4.6, strategy 4).
                    let deopt_needed = {
                        let f = ex.frames.last().expect("frame");
                        ex.proc.code[lf].version.get() != compiled.version()
                            || f.deopt_requested
                            || ex.proc.global_mode
                    };
                    if deopt_needed {
                        // The interpreter will re-charge fuel for this pc on
                        // re-entry; refund the unit this tier already charged
                        // so the instruction costs one unit, not two.
                        if ex.metered {
                            ex.fuel += 1;
                        }
                        let f = ex.frames.last_mut().expect("frame");
                        f.tier = Tier::Interp;
                        f.pc = pcv as usize;
                        f.deopt_requested = false;
                        // The probes at this pc already fired; suppress the
                        // interpreter's re-fire if the probe byte remains.
                        if ex.proc.code[lf].byte_at(pcv as usize) == op::PROBE {
                            ex.skip_probe = Some(Location { func, pc: pcv });
                        }
                        ex.proc.stats.deopts += 1;
                        ex.load_cur();
                        return Ok(Exit::Redispatch);
                    }
                }
            }
            ip += 1;
        }
    }
}

/// Deoptimizes the current frame in place to the interpreter (its `pc` is
/// already a valid bytecode resume point — frames suspend only at sync
/// points).
fn deopt_here(ex: &mut Exec) {
    let f = ex.frames.last_mut().expect("frame");
    f.tier = Tier::Interp;
    f.deopt_requested = false;
    ex.proc.stats.deopts += 1;
    ex.load_cur();
}

fn trap(ex: &mut Exec, t: Trap) -> Result<Exit, Trap> {
    let _ = ex;
    Err(t)
}
