//! The register-form interpreter — the engine's stack-traffic-free hot
//! dispatch path ([`Dispatch::Register`](crate::Dispatch)).
//!
//! Executes the function's register form ([`crate::regir`]): `ex.pc`
//! holds a **register-instruction index** while this loop runs, and the
//! value stack is widened once per frame to the function's full register
//! window (`opbase + num_temps`, see [`Exec::reg_extend`]) so every
//! instruction addresses its operands with plain indexed loads — no
//! pushes, no pops, no stack-pointer motion between instructions.
//!
//! The same `step` body also serves as the **register-form JIT runner**
//! ([`run_jit`], reached from [`crate::jit::run_frame`] when a function's
//! compiled code is register-shaped): the `JIT` const generic selects the
//! frame-parking discipline (`cip` register-index resume points, and
//! re-resolution of compiled code on every wasm frame change) and turns
//! the loop-header OSR site into a plain fall-through.
//!
//! Two invariants keep the byte-offset `Location` contract intact:
//!
//! * register frames only *park* at calls and returns — points where the
//!   allocator has flushed every deferred operand to its canonical stack
//!   position and the runtime has truncated the value stack to the exact
//!   operand height, so a parked register frame is indistinguishable
//!   from a stack-tier frame at the same byte pc;
//! * fuel-metered (bounded) runs never enter this loop at all
//!   (`tier_for_call` pins them to the stack interpreter), so there is no
//!   mid-function suspension to account for.

use std::sync::Arc;

use crate::exec::{Exec, Exit, Sig};
use crate::frame::Tier;
use crate::numeric;
use crate::regir::{
    RInstr, ARG_POOL_BIT, R_BIN, R_BIN_IR, R_BIN_RI, R_BR, R_BR_IF, R_BR_IF_Z, R_BR_TABLE, R_CALL,
    R_CALL_INDIRECT, R_CMP_BR, R_CMP_BR_RI, R_CONST, R_COPY, R_GLOBAL_GET, R_GLOBAL_SET, R_LOAD,
    R_LOOP, R_MEM_GROW, R_MEM_SIZE, R_RETURN, R_SELECT, R_STORE, R_UN, R_UNREACHABLE,
};
use crate::trap::Trap;
use crate::value::Slot;
use crate::ExecMode;

/// Runs the current [`Tier::Reg`] frame until the invocation finishes,
/// the current frame changes tier, or a trap unwinds.
pub(crate) fn run_frame(ex: &mut Exec) -> Result<Exit, Trap> {
    debug_assert_eq!(ex.frames.last().map(|f| f.tier), Some(Tier::Reg));
    if ex.metered {
        // Bounded slices charge fuel in the stack interpreters (see
        // `tier_for_call`); a register frame reaching a metered drive
        // loop demotes rather than running unaccounted.
        ex.frames.last_mut().expect("frame").tier = Tier::Interp;
        ex.proc.stats.reg_demotions += 1;
        ex.load_cur();
        return Ok(Exit::Redispatch);
    }
    ex.reg_extend();
    loop {
        let ri = ex.reg.get(ex.pc);
        match step::<false>(ex, ri) {
            Ok(()) => {}
            Err(Sig::Done) => return Ok(Exit::Done),
            Err(Sig::Switch) => return Ok(Exit::Redispatch),
            Err(Sig::Trap(t)) => return Err(t),
        }
    }
}

/// Runs the current JIT-tier frame over register-shaped compiled code,
/// starting from the frame's parked `cip`. Called by
/// [`crate::jit::run_frame`] after its version check.
pub(crate) fn run_jit(ex: &mut Exec, compiled: &crate::jit::Compiled) -> Result<Exit, Trap> {
    debug_assert!(!ex.metered, "metered runs never reach register-form compiled code");
    ex.reg = Arc::clone(compiled.code.reg.as_ref().expect("register-shaped compiled code"));
    ex.pc = ex.frames.last().expect("frame").cip;
    ex.reg_extend();
    loop {
        let ri = ex.reg.get(ex.pc);
        match step::<true>(ex, ri) {
            Ok(()) => {}
            Err(Sig::Done) => return Ok(Exit::Done),
            Err(Sig::Switch) => return Ok(Exit::Redispatch),
            Err(Sig::Trap(t)) => return Err(t),
        }
    }
}

/// One register-instruction dispatch step. Like the stack interpreter's
/// `step`, every pattern is a constant so the match compiles to a jump
/// table with the handler bodies inlined; unlike it, operands are indexed
/// register reads — the value stack does not move.
#[inline(always)]
fn step<const JIT: bool>(ex: &mut Exec, ri: RInstr) -> Result<(), Sig> {
    match ri.op {
        R_CONST => {
            ex.values[ex.base + ri.dst as usize] = ri.z;
            ex.pc += 1;
            Ok(())
        }
        R_COPY => {
            ex.values[ex.base + ri.dst as usize] = ex.values[ex.base + ri.a as usize];
            ex.pc += 1;
            Ok(())
        }
        R_BIN => {
            let a = Slot(ex.values[ex.base + ri.a as usize]);
            let b = Slot(ex.values[ex.base + ri.b as usize]);
            ex.values[ex.base + ri.dst as usize] = numeric::binop(ri.y, a, b)?.0;
            ex.pc += 1;
            Ok(())
        }
        R_BIN_RI => {
            let a = Slot(ex.values[ex.base + ri.a as usize]);
            ex.values[ex.base + ri.dst as usize] = numeric::binop(ri.y, a, Slot(ri.z))?.0;
            ex.pc += 1;
            Ok(())
        }
        R_BIN_IR => {
            let b = Slot(ex.values[ex.base + ri.b as usize]);
            ex.values[ex.base + ri.dst as usize] = numeric::binop(ri.y, Slot(ri.z), b)?.0;
            ex.pc += 1;
            Ok(())
        }
        R_UN => {
            let a = Slot(ex.values[ex.base + ri.a as usize]);
            ex.values[ex.base + ri.dst as usize] = numeric::unop(ri.y, a)?.0;
            ex.pc += 1;
            Ok(())
        }
        R_LOAD => {
            let addr = Slot(ex.values[ex.base + ri.a as usize]).u32();
            let mem = ex.proc.memory.as_ref().expect("validated: memory exists");
            ex.values[ex.base + ri.dst as usize] = numeric::do_load(mem, ri.y, addr, ri.x)?.0;
            ex.pc += 1;
            Ok(())
        }
        R_STORE => {
            let addr = Slot(ex.values[ex.base + ri.a as usize]).u32();
            let val = Slot(ex.values[ex.base + ri.b as usize]);
            let mem = ex.proc.memory.as_mut().expect("validated: memory exists");
            numeric::do_store(mem, ri.y, addr, ri.x, val)?;
            ex.pc += 1;
            Ok(())
        }
        R_SELECT => {
            let c = Slot(ex.values[ex.base + ri.x as usize]).i32();
            let src = if c != 0 { ri.a } else { ri.b };
            ex.values[ex.base + ri.dst as usize] = ex.values[ex.base + src as usize];
            ex.pc += 1;
            Ok(())
        }
        R_GLOBAL_GET => {
            ex.values[ex.base + ri.dst as usize] = ex.proc.globals[ri.x as usize];
            ex.pc += 1;
            Ok(())
        }
        R_GLOBAL_SET => {
            ex.proc.globals[ri.x as usize] = ex.values[ex.base + ri.a as usize];
            ex.pc += 1;
            Ok(())
        }
        R_MEM_SIZE => {
            let pages = ex.proc.memory.as_ref().expect("validated").pages();
            ex.values[ex.base + ri.dst as usize] = Slot::from_u32(pages).0;
            ex.pc += 1;
            Ok(())
        }
        R_MEM_GROW => {
            let delta = Slot(ex.values[ex.base + ri.a as usize]).u32();
            let r = ex.proc.memory.as_mut().expect("validated").grow(delta);
            ex.values[ex.base + ri.dst as usize] = Slot::from_i32(r).0;
            ex.pc += 1;
            Ok(())
        }
        R_BR => {
            if ri.y == 1 {
                ex.values[ex.base + ri.b as usize] = ex.values[ex.base + ri.a as usize];
            }
            ex.pc = ri.x as usize;
            Ok(())
        }
        R_BR_IF => {
            if Slot(ex.values[ex.base + ri.dst as usize]).i32() != 0 {
                if ri.y == 1 {
                    ex.values[ex.base + ri.b as usize] = ex.values[ex.base + ri.a as usize];
                }
                ex.pc = ri.x as usize;
            } else {
                ex.pc += 1;
            }
            Ok(())
        }
        R_BR_IF_Z => {
            if Slot(ex.values[ex.base + ri.dst as usize]).i32() == 0 {
                if ri.y == 1 {
                    ex.values[ex.base + ri.b as usize] = ex.values[ex.base + ri.a as usize];
                }
                ex.pc = ri.x as usize;
            } else {
                ex.pc += 1;
            }
            Ok(())
        }
        R_CMP_BR => {
            let a = Slot(ex.values[ex.base + ri.a as usize]);
            let b = Slot(ex.values[ex.base + ri.b as usize]);
            if numeric::binop(ri.y, a, b)?.i32() != 0 {
                ex.pc = ri.x as usize;
            } else {
                ex.pc += 1;
            }
            Ok(())
        }
        R_CMP_BR_RI => {
            let a = Slot(ex.values[ex.base + ri.a as usize]);
            if numeric::binop(ri.y, a, Slot(ri.z))?.i32() != 0 {
                ex.pc = ri.x as usize;
            } else {
                ex.pc += 1;
            }
            Ok(())
        }
        R_BR_TABLE => {
            let i = Slot(ex.values[ex.base + ri.dst as usize]).u32() as usize;
            let e = {
                let entries = ex.reg.table(ri.x);
                entries[i.min(entries.len() - 1)]
            };
            if e.keep == 1 {
                ex.values[ex.base + e.dst as usize] = ex.values[ex.base + ri.a as usize];
            }
            ex.pc = e.idx as usize;
            Ok(())
        }
        R_LOOP => op_loop::<JIT>(ex, ri),
        R_RETURN => {
            let v = ex.values[ex.base + ri.a as usize];
            ex.values.truncate(ex.opbase);
            if ri.y == 1 {
                ex.values.push(v);
            }
            match ex.do_return(if JIT { Tier::Jit } else { Tier::Reg }) {
                Ok(()) if JIT => {
                    // Same-tier caller, but its compiled code may be
                    // stack-shaped: bounce out so the driver re-resolves.
                    Err(Sig::Switch)
                }
                Ok(()) => {
                    ex.reg_extend();
                    Ok(())
                }
                Err(s) => Err(s),
            }
        }
        R_CALL => {
            let callee = ri.x;
            do_reg_call::<JIT>(ex, callee, ri)
        }
        R_CALL_INDIRECT => {
            // `do_call_indirect` pops the index from the value stack; the
            // register form reads it from `r[dst]` and inlines the table
            // lookup and signature check instead.
            let index = Slot(ex.values[ex.base + ri.dst as usize]).u32();
            let callee = ex.proc.table.get(index).map_err(Sig::Trap)?;
            let expected = &ex.proc.module.types[ri.x as usize];
            let actual = &ex.proc.func_types[callee as usize];
            if expected != actual {
                return Err(Sig::Trap(Trap::IndirectCallTypeMismatch));
            }
            do_reg_call::<JIT>(ex, callee, ri)
        }
        R_UNREACHABLE => Err(Trap::Unreachable.into()),
        _ => unreachable!("invalid register opcode {} at idx={}", ri.op, ex.pc),
    }
}

/// Loop header: the hotness/OSR site in interpreter mode, a fall-through
/// in JIT mode. Mirrors the stack interpreter's `op_loop`, except the OSR
/// entry key (`ri.x`, the `loop` byte pc) and the parked continuation pc
/// (`ri.z`) are carried inline instead of being derived from maps.
fn op_loop<const JIT: bool>(ex: &mut Exec, ri: RInstr) -> Result<(), Sig> {
    if !JIT && ex.proc.config.mode == ExecMode::Tiered {
        let fc = &ex.proc.code[ex.lf];
        let h = fc.hotness.get() + 1;
        fc.hotness.set(h);
        if h >= ex.proc.config.tierup_threshold {
            ex.proc.ensure_compiled(ex.lf);
            let compiled = ex.proc.code[ex.lf].compiled.borrow().clone().expect("just compiled");
            if let Some(&ip) = compiled.code.osr_entry.get(&ri.x) {
                // The loop head is a park point: every live operand is in
                // its canonical register, so truncating to the entry
                // height yields an exact stack-shaped frame to transfer.
                ex.values.truncate(ex.opbase + ri.dst as usize);
                let f = ex.frames.last_mut().expect("frame");
                f.tier = Tier::Jit;
                f.cip = ip as usize;
                f.pc = ri.z as usize; // unused while in JIT, kept sane
                f.code_version = compiled.version();
                ex.proc.stats.tier_ups += 1;
                return Err(Sig::Switch);
            }
        }
    }
    ex.pc += 1;
    Ok(())
}

/// The shared call tail: writes the argument slice into the callee's
/// frame-to-be, truncates to the exact call height (parking the caller in
/// canonical stack shape), and hands off to `do_call`.
fn do_reg_call<const JIT: bool>(ex: &mut Exec, callee: u32, ri: RInstr) -> Result<(), Sig> {
    let hb = ri.a as usize;
    let nargs = ri.b as usize;
    let slice_idx = ri.z as u32;
    let ret_pc = (ri.z >> 32) as usize;
    let rf = Arc::clone(&ex.reg);
    let slice = rf.arg_slice(slice_idx);
    debug_assert_eq!(slice.len(), nargs);
    for (i, &src) in slice.iter().enumerate() {
        let v = if src & ARG_POOL_BIT != 0 {
            rf.pool(src & !ARG_POOL_BIT)
        } else {
            ex.values[ex.base + src as usize]
        };
        ex.values[ex.opbase + hb + i] = v;
    }
    ex.values.truncate(ex.opbase + hb + nargs);
    {
        let f = ex.frames.last_mut().expect("frame");
        f.pc = ret_pc;
        if JIT {
            f.cip = ex.pc + 1;
        }
    }
    let depth = ex.frames.len();
    match ex.do_call(callee, if JIT { Tier::Jit } else { Tier::Reg }) {
        Ok(()) if ex.frames.len() == depth => {
            // Host call, executed inline: continue in this frame.
            ex.reg_extend();
            ex.pc += 1;
            Ok(())
        }
        Ok(()) if JIT => {
            // Same-tier wasm callee; bounce out so the JIT driver
            // re-resolves the callee's compiled code (it may be
            // stack-shaped).
            Err(Sig::Switch)
        }
        Ok(()) => {
            // Same-tier wasm callee: `load_cur` switched `ex.reg`/`ex.pc`
            // to the callee; widen its register window and keep going.
            ex.reg_extend();
            Ok(())
        }
        Err(s) => Err(s),
    }
}
