//! Shared evaluation of numeric instructions, keyed by opcode byte.
//!
//! Both execution tiers call into this module, which guarantees that the
//! interpreter and the JIT have identical numeric semantics (and lets the
//! differential property tests compare tiers meaningfully).

use wizard_wasm::opcodes::*;

use crate::store::Memory;
use crate::trap::Trap;
use crate::value::Slot;

/// `true` if `op` is a binary numeric instruction (pop 2, push 1).
pub fn is_binop(op: u8) -> bool {
    matches!(op,
        I32_EQ..=I32_GE_U
        | I64_EQ..=I64_GE_U
        | F32_EQ..=F32_GE
        | F64_EQ..=F64_GE
        | I32_ADD..=I32_ROTR
        | I64_ADD..=I64_ROTR
        | F32_ADD..=F32_COPYSIGN
        | F64_ADD..=F64_COPYSIGN)
}

/// `true` if `op` is a unary numeric instruction (pop 1, push 1).
pub fn is_unop(op: u8) -> bool {
    matches!(op,
        I32_EQZ
        | I64_EQZ
        | I32_CLZ | I32_CTZ | I32_POPCNT
        | I64_CLZ | I64_CTZ | I64_POPCNT
        | F32_ABS..=F32_SQRT
        | F64_ABS..=F64_SQRT
        | I32_WRAP_I64..=F64_REINTERPRET_I64
        | I32_EXTEND8_S..=I64_EXTEND32_S)
}

#[inline]
fn b32(v: bool) -> Slot {
    Slot::from_i32(i32::from(v))
}

/// Float minimum with WebAssembly NaN semantics.
#[inline]
fn fmin64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_negative() || b.is_sign_negative() {
            -0.0
        } else {
            0.0_f64.copysign(a)
        }
    } else if a < b {
        a
    } else {
        b
    }
}

#[inline]
fn fmax64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_positive() || b.is_sign_positive() {
            0.0
        } else {
            -0.0
        }
    } else if a > b {
        a
    } else {
        b
    }
}

#[inline]
fn fmin32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_negative() || b.is_sign_negative() {
            -0.0
        } else {
            0.0_f32.copysign(a)
        }
    } else if a < b {
        a
    } else {
        b
    }
}

#[inline]
fn fmax32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        if a.is_sign_positive() || b.is_sign_positive() {
            0.0
        } else {
            -0.0
        }
    } else if a > b {
        a
    } else {
        b
    }
}

/// Evaluates a binary numeric instruction.
///
/// # Errors
///
/// Traps on division by zero and on `MIN / -1` overflow.
///
/// # Panics
///
/// Panics if `op` is not a binary instruction (validated code never does).
#[inline]
#[allow(clippy::too_many_lines)]
pub fn binop(op: u8, a: Slot, b: Slot) -> Result<Slot, Trap> {
    Ok(match op {
        // i32 comparisons.
        I32_EQ => b32(a.i32() == b.i32()),
        I32_NE => b32(a.i32() != b.i32()),
        I32_LT_S => b32(a.i32() < b.i32()),
        I32_LT_U => b32(a.u32() < b.u32()),
        I32_GT_S => b32(a.i32() > b.i32()),
        I32_GT_U => b32(a.u32() > b.u32()),
        I32_LE_S => b32(a.i32() <= b.i32()),
        I32_LE_U => b32(a.u32() <= b.u32()),
        I32_GE_S => b32(a.i32() >= b.i32()),
        I32_GE_U => b32(a.u32() >= b.u32()),
        // i64 comparisons.
        I64_EQ => b32(a.i64() == b.i64()),
        I64_NE => b32(a.i64() != b.i64()),
        I64_LT_S => b32(a.i64() < b.i64()),
        I64_LT_U => b32(a.u64() < b.u64()),
        I64_GT_S => b32(a.i64() > b.i64()),
        I64_GT_U => b32(a.u64() > b.u64()),
        I64_LE_S => b32(a.i64() <= b.i64()),
        I64_LE_U => b32(a.u64() <= b.u64()),
        I64_GE_S => b32(a.i64() >= b.i64()),
        I64_GE_U => b32(a.u64() >= b.u64()),
        // f32 comparisons.
        F32_EQ => b32(a.f32() == b.f32()),
        F32_NE => b32(a.f32() != b.f32()),
        F32_LT => b32(a.f32() < b.f32()),
        F32_GT => b32(a.f32() > b.f32()),
        F32_LE => b32(a.f32() <= b.f32()),
        F32_GE => b32(a.f32() >= b.f32()),
        // f64 comparisons.
        F64_EQ => b32(a.f64() == b.f64()),
        F64_NE => b32(a.f64() != b.f64()),
        F64_LT => b32(a.f64() < b.f64()),
        F64_GT => b32(a.f64() > b.f64()),
        F64_LE => b32(a.f64() <= b.f64()),
        F64_GE => b32(a.f64() >= b.f64()),
        // i32 arithmetic.
        I32_ADD => Slot::from_i32(a.i32().wrapping_add(b.i32())),
        I32_SUB => Slot::from_i32(a.i32().wrapping_sub(b.i32())),
        I32_MUL => Slot::from_i32(a.i32().wrapping_mul(b.i32())),
        I32_DIV_S => {
            let (x, y) = (a.i32(), b.i32());
            if y == 0 {
                return Err(Trap::DivisionByZero);
            }
            if x == i32::MIN && y == -1 {
                return Err(Trap::IntegerOverflow);
            }
            Slot::from_i32(x.wrapping_div(y))
        }
        I32_DIV_U => {
            let (x, y) = (a.u32(), b.u32());
            if y == 0 {
                return Err(Trap::DivisionByZero);
            }
            Slot::from_u32(x / y)
        }
        I32_REM_S => {
            let (x, y) = (a.i32(), b.i32());
            if y == 0 {
                return Err(Trap::DivisionByZero);
            }
            Slot::from_i32(x.wrapping_rem(y))
        }
        I32_REM_U => {
            let (x, y) = (a.u32(), b.u32());
            if y == 0 {
                return Err(Trap::DivisionByZero);
            }
            Slot::from_u32(x % y)
        }
        I32_AND => Slot::from_u32(a.u32() & b.u32()),
        I32_OR => Slot::from_u32(a.u32() | b.u32()),
        I32_XOR => Slot::from_u32(a.u32() ^ b.u32()),
        I32_SHL => Slot::from_i32(a.i32().wrapping_shl(b.u32())),
        I32_SHR_S => Slot::from_i32(a.i32().wrapping_shr(b.u32())),
        I32_SHR_U => Slot::from_u32(a.u32().wrapping_shr(b.u32())),
        I32_ROTL => Slot::from_u32(a.u32().rotate_left(b.u32() & 31)),
        I32_ROTR => Slot::from_u32(a.u32().rotate_right(b.u32() & 31)),
        // i64 arithmetic.
        I64_ADD => Slot::from_i64(a.i64().wrapping_add(b.i64())),
        I64_SUB => Slot::from_i64(a.i64().wrapping_sub(b.i64())),
        I64_MUL => Slot::from_i64(a.i64().wrapping_mul(b.i64())),
        I64_DIV_S => {
            let (x, y) = (a.i64(), b.i64());
            if y == 0 {
                return Err(Trap::DivisionByZero);
            }
            if x == i64::MIN && y == -1 {
                return Err(Trap::IntegerOverflow);
            }
            Slot::from_i64(x.wrapping_div(y))
        }
        I64_DIV_U => {
            let (x, y) = (a.u64(), b.u64());
            if y == 0 {
                return Err(Trap::DivisionByZero);
            }
            Slot::from_u64(x / y)
        }
        I64_REM_S => {
            let (x, y) = (a.i64(), b.i64());
            if y == 0 {
                return Err(Trap::DivisionByZero);
            }
            Slot::from_i64(x.wrapping_rem(y))
        }
        I64_REM_U => {
            let (x, y) = (a.u64(), b.u64());
            if y == 0 {
                return Err(Trap::DivisionByZero);
            }
            Slot::from_u64(x % y)
        }
        I64_AND => Slot::from_u64(a.u64() & b.u64()),
        I64_OR => Slot::from_u64(a.u64() | b.u64()),
        I64_XOR => Slot::from_u64(a.u64() ^ b.u64()),
        I64_SHL => Slot::from_i64(a.i64().wrapping_shl(b.u32())),
        I64_SHR_S => Slot::from_i64(a.i64().wrapping_shr(b.u32())),
        I64_SHR_U => Slot::from_u64(a.u64().wrapping_shr(b.u32())),
        I64_ROTL => Slot::from_u64(a.u64().rotate_left(b.u32() & 63)),
        I64_ROTR => Slot::from_u64(a.u64().rotate_right(b.u32() & 63)),
        // f32 arithmetic.
        F32_ADD => Slot::from_f32(a.f32() + b.f32()),
        F32_SUB => Slot::from_f32(a.f32() - b.f32()),
        F32_MUL => Slot::from_f32(a.f32() * b.f32()),
        F32_DIV => Slot::from_f32(a.f32() / b.f32()),
        F32_MIN => Slot::from_f32(fmin32(a.f32(), b.f32())),
        F32_MAX => Slot::from_f32(fmax32(a.f32(), b.f32())),
        F32_COPYSIGN => Slot::from_f32(a.f32().copysign(b.f32())),
        // f64 arithmetic.
        F64_ADD => Slot::from_f64(a.f64() + b.f64()),
        F64_SUB => Slot::from_f64(a.f64() - b.f64()),
        F64_MUL => Slot::from_f64(a.f64() * b.f64()),
        F64_DIV => Slot::from_f64(a.f64() / b.f64()),
        F64_MIN => Slot::from_f64(fmin64(a.f64(), b.f64())),
        F64_MAX => Slot::from_f64(fmax64(a.f64(), b.f64())),
        F64_COPYSIGN => Slot::from_f64(a.f64().copysign(b.f64())),
        _ => unreachable!("not a binop: {op:#04x}"),
    })
}

#[inline]
fn trunc_to_i32(v: f64) -> Result<i32, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = v.trunc();
    if !(-2147483648.0..=2147483647.0).contains(&t) {
        return Err(Trap::InvalidConversion);
    }
    Ok(t as i32)
}

#[inline]
fn trunc_to_u32(v: f64) -> Result<u32, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = v.trunc();
    if !(0.0..=4294967295.0).contains(&t) {
        return Err(Trap::InvalidConversion);
    }
    Ok(t as u32)
}

#[inline]
fn trunc_to_i64(v: f64) -> Result<i64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = v.trunc();
    if !(-9223372036854775808.0..9223372036854775808.0).contains(&t) {
        return Err(Trap::InvalidConversion);
    }
    Ok(t as i64)
}

#[inline]
fn trunc_to_u64(v: f64) -> Result<u64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = v.trunc();
    if !(0.0..18446744073709551616.0).contains(&t) {
        return Err(Trap::InvalidConversion);
    }
    Ok(t as u64)
}

/// Evaluates a unary numeric instruction.
///
/// # Errors
///
/// Traps on invalid float-to-int conversions.
///
/// # Panics
///
/// Panics if `op` is not a unary instruction (validated code never does).
#[inline]
#[allow(clippy::too_many_lines)]
pub fn unop(op: u8, a: Slot) -> Result<Slot, Trap> {
    Ok(match op {
        I32_EQZ => b32(a.i32() == 0),
        I64_EQZ => b32(a.i64() == 0),
        I32_CLZ => Slot::from_u32(a.u32().leading_zeros()),
        I32_CTZ => Slot::from_u32(a.u32().trailing_zeros()),
        I32_POPCNT => Slot::from_u32(a.u32().count_ones()),
        I64_CLZ => Slot::from_u64(u64::from(a.u64().leading_zeros())),
        I64_CTZ => Slot::from_u64(u64::from(a.u64().trailing_zeros())),
        I64_POPCNT => Slot::from_u64(u64::from(a.u64().count_ones())),
        F32_ABS => Slot::from_f32(a.f32().abs()),
        F32_NEG => Slot::from_f32(-a.f32()),
        F32_CEIL => Slot::from_f32(a.f32().ceil()),
        F32_FLOOR => Slot::from_f32(a.f32().floor()),
        F32_TRUNC => Slot::from_f32(a.f32().trunc()),
        F32_NEAREST => Slot::from_f32(a.f32().round_ties_even()),
        F32_SQRT => Slot::from_f32(a.f32().sqrt()),
        F64_ABS => Slot::from_f64(a.f64().abs()),
        F64_NEG => Slot::from_f64(-a.f64()),
        F64_CEIL => Slot::from_f64(a.f64().ceil()),
        F64_FLOOR => Slot::from_f64(a.f64().floor()),
        F64_TRUNC => Slot::from_f64(a.f64().trunc()),
        F64_NEAREST => Slot::from_f64(a.f64().round_ties_even()),
        F64_SQRT => Slot::from_f64(a.f64().sqrt()),
        I32_WRAP_I64 => Slot::from_i32(a.i64() as i32),
        I32_TRUNC_F32_S => Slot::from_i32(trunc_to_i32(f64::from(a.f32()))?),
        I32_TRUNC_F32_U => Slot::from_u32(trunc_to_u32(f64::from(a.f32()))?),
        I32_TRUNC_F64_S => Slot::from_i32(trunc_to_i32(a.f64())?),
        I32_TRUNC_F64_U => Slot::from_u32(trunc_to_u32(a.f64())?),
        I64_EXTEND_I32_S => Slot::from_i64(i64::from(a.i32())),
        I64_EXTEND_I32_U => Slot::from_u64(u64::from(a.u32())),
        I64_TRUNC_F32_S => Slot::from_i64(trunc_to_i64(f64::from(a.f32()))?),
        I64_TRUNC_F32_U => Slot::from_u64(trunc_to_u64(f64::from(a.f32()))?),
        I64_TRUNC_F64_S => Slot::from_i64(trunc_to_i64(a.f64())?),
        I64_TRUNC_F64_U => Slot::from_u64(trunc_to_u64(a.f64())?),
        F32_CONVERT_I32_S => Slot::from_f32(a.i32() as f32),
        F32_CONVERT_I32_U => Slot::from_f32(a.u32() as f32),
        F32_CONVERT_I64_S => Slot::from_f32(a.i64() as f32),
        F32_CONVERT_I64_U => Slot::from_f32(a.u64() as f32),
        F32_DEMOTE_F64 => Slot::from_f32(a.f64() as f32),
        F64_CONVERT_I32_S => Slot::from_f64(f64::from(a.i32())),
        F64_CONVERT_I32_U => Slot::from_f64(f64::from(a.u32())),
        F64_CONVERT_I64_S => Slot::from_f64(a.i64() as f64),
        F64_CONVERT_I64_U => Slot::from_f64(a.u64() as f64),
        F64_PROMOTE_F32 => Slot::from_f64(f64::from(a.f32())),
        I32_REINTERPRET_F32 => Slot::from_u32(a.u32()),
        I64_REINTERPRET_F64 => Slot::from_u64(a.u64()),
        F32_REINTERPRET_I32 => Slot::from_u32(a.u32()),
        F64_REINTERPRET_I64 => Slot::from_u64(a.u64()),
        I32_EXTEND8_S => Slot::from_i32(i32::from(a.i32() as i8)),
        I32_EXTEND16_S => Slot::from_i32(i32::from(a.i32() as i16)),
        I64_EXTEND8_S => Slot::from_i64(i64::from(a.i64() as i8)),
        I64_EXTEND16_S => Slot::from_i64(i64::from(a.i64() as i16)),
        I64_EXTEND32_S => Slot::from_i64(i64::from(a.i64() as i32)),
        _ => unreachable!("not a unop: {op:#04x}"),
    })
}

/// Executes a load instruction against `mem`.
///
/// # Errors
///
/// Traps on out-of-bounds access.
#[inline]
pub fn do_load(mem: &Memory, op: u8, addr: u32, offset: u32) -> Result<Slot, Trap> {
    Ok(match op {
        I32_LOAD => Slot::from_i32(i32::from_le_bytes(mem.read::<4>(addr, offset)?)),
        I64_LOAD => Slot::from_i64(i64::from_le_bytes(mem.read::<8>(addr, offset)?)),
        F32_LOAD => Slot::from_u32(u32::from_le_bytes(mem.read::<4>(addr, offset)?)),
        F64_LOAD => Slot::from_u64(u64::from_le_bytes(mem.read::<8>(addr, offset)?)),
        I32_LOAD8_S => Slot::from_i32(i32::from(i8::from_le_bytes(mem.read::<1>(addr, offset)?))),
        I32_LOAD8_U => Slot::from_u32(u32::from(mem.read::<1>(addr, offset)?[0])),
        I32_LOAD16_S => Slot::from_i32(i32::from(i16::from_le_bytes(mem.read::<2>(addr, offset)?))),
        I32_LOAD16_U => Slot::from_u32(u32::from(u16::from_le_bytes(mem.read::<2>(addr, offset)?))),
        I64_LOAD8_S => Slot::from_i64(i64::from(i8::from_le_bytes(mem.read::<1>(addr, offset)?))),
        I64_LOAD8_U => Slot::from_u64(u64::from(mem.read::<1>(addr, offset)?[0])),
        I64_LOAD16_S => Slot::from_i64(i64::from(i16::from_le_bytes(mem.read::<2>(addr, offset)?))),
        I64_LOAD16_U => Slot::from_u64(u64::from(u16::from_le_bytes(mem.read::<2>(addr, offset)?))),
        I64_LOAD32_S => Slot::from_i64(i64::from(i32::from_le_bytes(mem.read::<4>(addr, offset)?))),
        I64_LOAD32_U => Slot::from_u64(u64::from(u32::from_le_bytes(mem.read::<4>(addr, offset)?))),
        _ => unreachable!("not a load: {op:#04x}"),
    })
}

/// Executes a store instruction against `mem`.
///
/// # Errors
///
/// Traps on out-of-bounds access.
#[inline]
pub fn do_store(mem: &mut Memory, op: u8, addr: u32, offset: u32, val: Slot) -> Result<(), Trap> {
    match op {
        I32_STORE => mem.write::<4>(addr, offset, val.i32().to_le_bytes()),
        I64_STORE => mem.write::<8>(addr, offset, val.i64().to_le_bytes()),
        F32_STORE => mem.write::<4>(addr, offset, val.u32().to_le_bytes()),
        F64_STORE => mem.write::<8>(addr, offset, val.u64().to_le_bytes()),
        I32_STORE8 => mem.write::<1>(addr, offset, [val.u32() as u8]),
        I32_STORE16 => mem.write::<2>(addr, offset, (val.u32() as u16).to_le_bytes()),
        I64_STORE8 => mem.write::<1>(addr, offset, [val.u64() as u8]),
        I64_STORE16 => mem.write::<2>(addr, offset, (val.u64() as u16).to_le_bytes()),
        I64_STORE32 => mem.write::<4>(addr, offset, (val.u64() as u32).to_le_bytes()),
        _ => unreachable!("not a store: {op:#04x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::types::Limits;

    #[test]
    fn i32_div_rem_edges() {
        let min = Slot::from_i32(i32::MIN);
        let neg1 = Slot::from_i32(-1);
        let zero = Slot::from_i32(0);
        assert_eq!(binop(I32_DIV_S, min, neg1), Err(Trap::IntegerOverflow));
        assert_eq!(binop(I32_DIV_S, min, zero), Err(Trap::DivisionByZero));
        assert_eq!(binop(I32_REM_S, min, neg1).unwrap().i32(), 0);
        assert_eq!(binop(I32_DIV_U, Slot::from_u32(7), Slot::from_u32(2)).unwrap().u32(), 3);
    }

    #[test]
    fn i64_div_rem_edges() {
        let min = Slot::from_i64(i64::MIN);
        let neg1 = Slot::from_i64(-1);
        assert_eq!(binop(I64_DIV_S, min, neg1), Err(Trap::IntegerOverflow));
        assert_eq!(binop(I64_REM_S, min, neg1).unwrap().i64(), 0);
    }

    #[test]
    fn shifts_mask_their_count() {
        assert_eq!(binop(I32_SHL, Slot::from_i32(1), Slot::from_i32(33)).unwrap().i32(), 2);
        assert_eq!(binop(I64_SHL, Slot::from_i64(1), Slot::from_i64(65)).unwrap().i64(), 2);
        assert_eq!(binop(I32_SHR_S, Slot::from_i32(-8), Slot::from_i32(1)).unwrap().i32(), -4);
        assert_eq!(
            binop(I32_SHR_U, Slot::from_i32(-8), Slot::from_i32(1)).unwrap().u32(),
            0x7fff_fffc
        );
    }

    #[test]
    fn float_min_max_nan_and_zero_semantics() {
        let nan = Slot::from_f64(f64::NAN);
        let one = Slot::from_f64(1.0);
        assert!(binop(F64_MIN, nan, one).unwrap().f64().is_nan());
        assert!(binop(F64_MAX, one, nan).unwrap().f64().is_nan());
        let nz = Slot::from_f64(-0.0);
        let pz = Slot::from_f64(0.0);
        assert!(binop(F64_MIN, pz, nz).unwrap().f64().is_sign_negative());
        assert!(binop(F64_MAX, pz, nz).unwrap().f64().is_sign_positive());
    }

    #[test]
    fn trunc_traps_on_nan_and_overflow() {
        assert_eq!(unop(I32_TRUNC_F64_S, Slot::from_f64(f64::NAN)), Err(Trap::InvalidConversion));
        assert_eq!(unop(I32_TRUNC_F64_S, Slot::from_f64(3e9)), Err(Trap::InvalidConversion));
        assert_eq!(unop(I32_TRUNC_F64_S, Slot::from_f64(-3e9)), Err(Trap::InvalidConversion));
        assert_eq!(unop(I32_TRUNC_F64_S, Slot::from_f64(2147483647.9)).unwrap().i32(), i32::MAX);
        assert_eq!(unop(I32_TRUNC_F64_U, Slot::from_f64(-0.9)).unwrap().u32(), 0);
        assert_eq!(unop(I64_TRUNC_F64_U, Slot::from_f64(-1.0)), Err(Trap::InvalidConversion));
    }

    #[test]
    fn sign_extension_ops() {
        assert_eq!(unop(I32_EXTEND8_S, Slot::from_i32(0x80)).unwrap().i32(), -128);
        assert_eq!(unop(I32_EXTEND16_S, Slot::from_i32(0x8000)).unwrap().i32(), -32768);
        assert_eq!(unop(I64_EXTEND32_S, Slot::from_i64(0x8000_0000)).unwrap().i64(), -2147483648);
    }

    #[test]
    fn nearest_is_ties_even() {
        assert_eq!(unop(F64_NEAREST, Slot::from_f64(2.5)).unwrap().f64(), 2.0);
        assert_eq!(unop(F64_NEAREST, Slot::from_f64(3.5)).unwrap().f64(), 4.0);
        assert_eq!(unop(F64_NEAREST, Slot::from_f64(-2.5)).unwrap().f64(), -2.0);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut mem = Memory::new(Limits::at_least(1));
        do_store(&mut mem, I64_STORE, 8, 0, Slot::from_i64(-2)).unwrap();
        assert_eq!(do_load(&mem, I64_LOAD, 8, 0).unwrap().i64(), -2);
        do_store(&mut mem, I32_STORE16, 0, 2, Slot::from_i32(0xBEEF)).unwrap();
        assert_eq!(do_load(&mem, I32_LOAD16_U, 0, 2).unwrap().u32(), 0xBEEF);
        assert_eq!(do_load(&mem, I32_LOAD16_S, 0, 2).unwrap().i32(), 0xBEEF - 0x10000);
        do_store(&mut mem, F64_STORE, 16, 0, Slot::from_f64(2.5)).unwrap();
        assert_eq!(do_load(&mem, F64_LOAD, 16, 0).unwrap().f64(), 2.5);
        assert!(do_load(&mem, I32_LOAD, u32::MAX, 0).is_err());
    }

    #[test]
    fn classification_covers_expected_sets() {
        let mut bin = 0;
        let mut un = 0;
        for op in 0u8..=0xff {
            if is_binop(op) {
                bin += 1;
            }
            if is_unop(op) {
                un += 1;
            }
            assert!(!(is_binop(op) && is_unop(op)), "op {op:#x} double-classified");
        }
        // 2×10 int cmps (eqz excluded) + 2×6 float cmps + 2×15 int arith
        // + 2×7 float arith = 76 binops; 2 eqz + 6 bit-counts + 14 float
        // unaries + 25 conversions + 5 sign-extensions = 52 unops.
        assert_eq!(bin, 76);
        assert_eq!(un, 52);
    }
}
