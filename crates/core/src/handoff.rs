//! Cross-thread *hand-off* of single-threaded engine state.
//!
//! The engine is deliberately single-threaded: probes, monitors, host
//! functions and the FrameAccessor machinery are `Rc`/`RefCell`-based, as
//! in the paper, so [`Process`](crate::Process) is `!Send`. That is the
//! right default — it makes data races unrepresentable *within* a running
//! process — but it also forbids a perfectly sound pattern that
//! multi-worker schedulers need: a process that is **parked** (suspended
//! at a fuel-slice boundary, with no borrows live and no aliases outside
//! the object graph rooted at the process itself) being *handed off* to a
//! different worker thread, which becomes its new single owner.
//!
//! [`Handoff`] is the narrow, explicitly-unsafe gate for that pattern. It
//! wraps a value and unconditionally implements `Send`; the safety
//! argument lives at construction ([`Handoff::new`] is `unsafe`) and rests
//! on the **confined object graph** invariant:
//!
//! 1. every non-`Send` ingredient reachable from the value (`Rc`s,
//!    `RefCell`s, raw pointers) was created on the thread currently owning
//!    the wrapper, *from `Send` ingredients* (e.g. a `Send + Sync` monitor
//!    factory whose product never leaves the worker), and
//! 2. no clone or borrow of any of those ingredients exists outside the
//!    wrapped value — the graph is *confined*: moving the wrapper moves
//!    every reference to every `Rc` cell in it, and
//! 3. the wrapper only changes threads through a synchronizing hand-off
//!    (a `Mutex`-protected queue, a channel, a joined thread…), so the
//!    receiving thread *happens-after* the sender's last use.
//!
//! Under (1)–(3) the usual `Rc` hazard — two threads mutating one
//! non-atomic refcount — cannot occur: at any instant exactly one thread
//! can reach the graph, and every transfer is an ownership transfer with a
//! happens-before edge. This is the same argument that makes `Box<T>`
//! of a `!Sync` type sound to send; `Rc` only loses `Send` because the
//! *type system* cannot see confinement, not because confined hand-off is
//! unsound.
//!
//! `wizard-pool`'s serving engine uses this to migrate jobs between
//! workers: a process parks on
//! [`RunOutcome::OutOfFuel`](crate::RunOutcome), its task (process +
//! worker-built monitor) is wrapped and pushed onto a `Mutex`-guarded
//! deque, and whichever worker pops (or steals) it resumes the suspended
//! [`exec::ExecState`](crate::exec) as the new owner.

/// A `Send` wrapper for a *confined* single-threaded object graph being
/// handed off between threads. See the [module docs](self) for the
/// invariant that makes this sound.
#[derive(Debug)]
pub struct Handoff<T> {
    value: T,
}

// SAFETY: deferred to `Handoff::new`'s contract — the wrapped graph is
// confined (exactly one thread can reach it at a time) and only changes
// threads through synchronizing hand-offs, so non-atomic refcounts inside
// it are never touched concurrently.
unsafe impl<T> Send for Handoff<T> {}

impl<T> Handoff<T> {
    /// Wraps `value` for cross-thread hand-off.
    ///
    /// # Safety
    ///
    /// The caller asserts the confined-object-graph invariant for
    /// `value`, for the wrapper's whole lifetime:
    ///
    /// * all non-`Send` state reachable from `value` was created on the
    ///   current thread and is reachable *only* through `value` (no
    ///   outside `Rc` clones, no leaked raw pointers, no thread-local
    ///   registration that outlives the hand-off);
    /// * the wrapper is only moved between threads via operations that
    ///   establish happens-before (mutexes, channels, `thread::spawn`/
    ///   `join`);
    /// * after [`Handoff::into_inner`], the unwrapped value is treated as
    ///   `!Send` again — it stays on the thread that unwrapped it.
    pub unsafe fn new(value: T) -> Handoff<T> {
        Handoff { value }
    }

    /// Shared access on the currently-owning thread.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Exclusive access on the currently-owning thread.
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.value
    }

    /// Unwraps the value on the currently-owning thread, which becomes
    /// its final owner (the value is `!Send` again from here on).
    pub fn into_inner(self) -> T {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::{Arc, Mutex};

    #[test]
    fn confined_rc_graph_survives_a_mutex_handoff() {
        // A little Rc/RefCell graph, entirely confined: both `shared`
        // handles live inside the struct we wrap.
        struct Graph {
            a: Rc<RefCell<u64>>,
            b: Rc<RefCell<u64>>,
        }
        let cell = Rc::new(RefCell::new(1u64));
        let graph = Graph { a: Rc::clone(&cell), b: cell };

        // SAFETY: `graph` owns the only handles to its Rc cells, created
        // on this thread; transfer goes through a Mutex.
        let slot = Arc::new(Mutex::new(Some(unsafe { Handoff::new(graph) })));
        let slot2 = Arc::clone(&slot);
        let t = std::thread::spawn(move || {
            let h = slot2.lock().unwrap().take().expect("handed off");
            let g = h.into_inner();
            *g.a.borrow_mut() += 41;
            assert_eq!(Rc::strong_count(&g.a), 2);
            let v = *g.b.borrow();
            v
        });
        assert_eq!(t.join().unwrap(), 42);
    }
}
