//! The lowered-code interpreter.
//!
//! Executes the function's *lowered* form ([`crate::lowered`]): one
//! fixed-width [`LInstr`] per bytecode instruction, with immediates
//! pre-decoded and branch targets pre-resolved at lowering time. The hot
//! loop therefore pays no LEB128 decoding and no side-table `HashMap`
//! lookups — the decode tax is paid once per function, not once per
//! executed instruction.
//!
//! The paper's two instrumentation mechanisms carry over structurally
//! unchanged, operating on lowered *slots* instead of opcode bytes:
//!
//! * the **normal** 256-entry dispatch table — zero overhead when no
//!   global probes are active; local probes cost only at slots whose
//!   opcode field was overwritten with the probe opcode (§4.2);
//! * the **instrumented** table — every entry a stub that fires global
//!   probes and re-dispatches; inserting a global probe *switches the
//!   table pointer* (§4.1).
//!
//! `ex.pc` holds a **slot index** while this loop runs; frames always park
//! byte pcs at sync points ([`Exec::sync_pc`] converts), so the paper's
//! byte-offset `Location` space remains the contract everywhere outside
//! this loop.

use std::sync::LazyLock;

use wizard_wasm::opcodes as op;

use crate::exec::{Exec, Exit, Sig};
use crate::frame::Tier;
use crate::lowered::{
    LInstr, FUSED_CMP_BR, FUSED_CONST_BIN, FUSED_GET_BIN, FUSED_GET_GET, FUSED_GET_GET_BIN,
    FUSED_GET_SET, FUSED_GG_CMP_BR, FUSED_UPD,
};
use crate::numeric;
use crate::probe::Location;
use crate::trap::Trap;
use crate::value::Slot;
use crate::ExecMode;

/// A lowered-code handler: executes one instruction (including advancing
/// the slot cursor) or raises a [`Sig`].
pub(crate) type Handler = fn(&mut Exec, LInstr) -> Result<(), Sig>;

static NORMAL: LazyLock<[Handler; 256]> = LazyLock::new(build_normal);
static INSTRUMENTED: LazyLock<[Handler; 256]> = LazyLock::new(|| [op_global_stub as Handler; 256]);

/// The dispatch table used when no global probes are active.
pub(crate) fn normal_table() -> &'static [Handler; 256] {
    &NORMAL
}

/// The dispatch table used in global-probe mode: all 256 entries point to a
/// stub that fires global probes, then dispatches the original handler.
pub(crate) fn instrumented_table() -> &'static [Handler; 256] {
    &INSTRUMENTED
}

fn build_normal() -> [Handler; 256] {
    let mut t: [Handler; 256] = [op_invalid; 256];
    t[op::UNREACHABLE as usize] = op_unreachable;
    t[op::NOP as usize] = op_skip;
    t[op::BLOCK as usize] = op_skip;
    t[op::LOOP as usize] = op_loop;
    t[op::IF as usize] = op_if;
    t[op::ELSE as usize] = op_else;
    t[op::END as usize] = op_skip;
    t[op::BR as usize] = op_br;
    t[op::BR_IF as usize] = op_br_if;
    t[op::BR_TABLE as usize] = op_br_table;
    t[op::RETURN as usize] = op_return;
    t[op::CALL as usize] = op_call;
    t[op::CALL_INDIRECT as usize] = op_call_indirect;
    t[op::DROP as usize] = op_drop;
    t[op::SELECT as usize] = op_select;
    t[op::LOCAL_GET as usize] = op_local_get;
    t[op::LOCAL_SET as usize] = op_local_set;
    t[op::LOCAL_TEE as usize] = op_local_tee;
    t[op::GLOBAL_GET as usize] = op_global_get;
    t[op::GLOBAL_SET as usize] = op_global_set;
    t[op::MEMORY_SIZE as usize] = op_memory_size;
    t[op::MEMORY_GROW as usize] = op_memory_grow;
    // All four const opcodes lowered their payload to slot bits in `z`.
    t[op::I32_CONST as usize] = op_const;
    t[op::I64_CONST as usize] = op_const;
    t[op::F32_CONST as usize] = op_const;
    t[op::F64_CONST as usize] = op_const;
    let mut b = 0usize;
    while b < 256 {
        let byte = b as u8;
        if numeric::is_binop(byte) {
            t[b] = op_bin;
        } else if numeric::is_unop(byte) {
            t[b] = op_un;
        } else if op::is_load(byte) {
            t[b] = op_load;
        } else if op::is_store(byte) {
            t[b] = op_store;
        }
        b += 1;
    }
    t[op::PROBE as usize] = op_probe;
    t[FUSED_GET_GET as usize] = op_fused_get_get;
    t[FUSED_GET_BIN as usize] = op_fused_get_bin;
    t[FUSED_CONST_BIN as usize] = op_fused_const_bin;
    t[FUSED_GET_SET as usize] = op_fused_get_set;
    t[FUSED_CMP_BR as usize] = op_fused_cmp_br;
    t[FUSED_GET_GET_BIN as usize] = op_fused_get_get_bin;
    t[FUSED_GG_CMP_BR as usize] = op_fused_gg_cmp_br;
    t[FUSED_UPD as usize] = op_fused_upd;
    t
}

/// Runs the current (interpreter-tier) frame until the invocation finishes,
/// the current frame changes tier, or a trap unwinds. `ex.pc` holds a
/// *slot index* throughout.
pub(crate) fn run_frame(ex: &mut Exec) -> Result<Exit, Trap> {
    debug_assert_eq!(ex.frames.last().map(|f| f.tier), Some(Tier::Interp));
    // Metering is fixed for the whole run; monomorphize the loop so the
    // unmetered hot path carries no fuel checks at all.
    if ex.metered {
        run_loop::<true>(ex)
    } else {
        run_loop::<false>(ex)
    }
}

fn run_loop<const METERED: bool>(ex: &mut Exec) -> Result<Exit, Trap> {
    loop {
        // Fuel metering (bounded runs only): one unit per bytecode
        // instruction, checked *before* dispatch so a suspension lands
        // before the instruction — and before its probes — execute.
        if METERED {
            if ex.fuel == 0 {
                ex.sync_pc();
                return Ok(Exit::OutOfFuel);
            }
            ex.fuel -= 1;
        }
        if ex.pc >= ex.low.len() {
            // Fell off the end of the function body: implicit return.
            match ex.do_return(Tier::Interp) {
                Ok(()) => continue,
                Err(Sig::Done) => return Ok(Exit::Done),
                Err(Sig::Switch) => return Ok(Exit::Redispatch),
                Err(Sig::Trap(t)) => return Err(t),
            }
        }
        // Metered runs read through the unfused view so fuel stays exactly
        // one unit per bytecode instruction and suspensions land only on
        // instruction boundaries; unmetered runs take the fused stream.
        let li = if METERED { ex.low.unfused(ex.pc) } else { ex.low.get(ex.pc) };
        // Global-probe mode dispatches everything through the (stub-filled)
        // instrumented table; normal mode takes the inlined fast path.
        let r = if ex.proc.global_mode { ex.table[li.op as usize](ex, li) } else { step(ex, li) };
        match r {
            Ok(()) => {}
            Err(Sig::Done) => return Ok(Exit::Done),
            Err(Sig::Switch) => return Ok(Exit::Redispatch),
            Err(Sig::Trap(t)) => return Err(t),
        }
    }
}

/// One normal-mode dispatch step. Every opcode pattern is a *constant*
/// (ranges included), so the match compiles to a single jump table with
/// the handler bodies inlined into the arms — threaded dispatch, no
/// indirect call, loop state kept in registers across handlers. Anything
/// not matched (the probe opcode, invalid bytes) falls back to the normal
/// handler table.
#[inline(always)]
fn step(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    match li.op {
        FUSED_GET_GET => op_fused_get_get(ex, li),
        FUSED_GET_BIN => op_fused_get_bin(ex, li),
        FUSED_CONST_BIN => op_fused_const_bin(ex, li),
        FUSED_GET_SET => op_fused_get_set(ex, li),
        FUSED_CMP_BR => op_fused_cmp_br(ex, li),
        FUSED_GET_GET_BIN => op_fused_get_get_bin(ex, li),
        FUSED_GG_CMP_BR => op_fused_gg_cmp_br(ex, li),
        FUSED_UPD => op_fused_upd(ex, li),
        op::LOCAL_GET => op_local_get(ex, li),
        op::LOCAL_SET => op_local_set(ex, li),
        op::LOCAL_TEE => op_local_tee(ex, li),
        op::GLOBAL_GET => op_global_get(ex, li),
        op::GLOBAL_SET => op_global_set(ex, li),
        op::I32_CONST | op::I64_CONST | op::F32_CONST | op::F64_CONST => op_const(ex, li),
        op::NOP | op::BLOCK | op::END => op_skip(ex, li),
        op::LOOP => op_loop(ex, li),
        op::IF => op_if(ex, li),
        op::BR => op_br(ex, li),
        op::BR_IF => op_br_if(ex, li),
        op::BR_TABLE => op_br_table(ex, li),
        op::RETURN => op_return(ex, li),
        op::CALL => op_call(ex, li),
        op::CALL_INDIRECT => op_call_indirect(ex, li),
        op::DROP => op_drop(ex, li),
        op::SELECT => op_select(ex, li),
        op::MEMORY_SIZE => op_memory_size(ex, li),
        op::MEMORY_GROW => op_memory_grow(ex, li),
        op::UNREACHABLE => op_unreachable(ex, li),
        // Binops (constant ranges mirroring `numeric::is_binop`).
        op::I32_EQ..=op::I32_GE_U
        | op::I64_EQ..=op::I64_GE_U
        | op::F32_EQ..=op::F32_GE
        | op::F64_EQ..=op::F64_GE
        | op::I32_ADD..=op::I32_ROTR
        | op::I64_ADD..=op::I64_ROTR
        | op::F32_ADD..=op::F32_COPYSIGN
        | op::F64_ADD..=op::F64_COPYSIGN => op_bin(ex, li),
        // Unops (mirroring `numeric::is_unop`).
        op::I32_EQZ
        | op::I64_EQZ
        | op::I32_CLZ
        | op::I32_CTZ
        | op::I32_POPCNT
        | op::I64_CLZ
        | op::I64_CTZ
        | op::I64_POPCNT
        | op::F32_ABS..=op::F32_SQRT
        | op::F64_ABS..=op::F64_SQRT
        | op::I32_WRAP_I64..=op::F64_REINTERPRET_I64
        | op::I32_EXTEND8_S..=op::I64_EXTEND32_S => op_un(ex, li),
        // Memory accesses (mirroring `op::is_load` / `op::is_store`).
        op::I32_LOAD..=op::I64_LOAD32_U => op_load(ex, li),
        op::I32_STORE..=op::I64_STORE32 => op_store(ex, li),
        _ => normal_table()[li.op as usize](ex, li),
    }
}

// ---- control ----

fn op_invalid(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    unreachable!("invalid lowered opcode {:#04x} at slot={} in validated code", li.op, ex.pc)
}

fn op_unreachable(_ex: &mut Exec, _li: LInstr) -> Result<(), Sig> {
    Err(Trap::Unreachable.into())
}

/// `nop` / `block` / `end`: structural, one slot each.
fn op_skip(ex: &mut Exec, _li: LInstr) -> Result<(), Sig> {
    ex.pc += 1;
    Ok(())
}

fn op_loop(ex: &mut Exec, _li: LInstr) -> Result<(), Sig> {
    // Loop headers drive hotness-based tier-up with on-stack replacement
    // into compiled code — unless global-probe mode pins us to the
    // interpreter (paper §4.1), or this is a fuel-metered slice under
    // register dispatch (whose compiled code is register-shaped and does
    // no fuel accounting; bounded runs stay in stack form end to end).
    if ex.proc.config.mode == ExecMode::Tiered
        && !ex.proc.global_mode
        && !(ex.metered && ex.proc.config.dispatch == crate::Dispatch::Register)
    {
        let fc = &ex.proc.code[ex.lf];
        let h = fc.hotness.get() + 1;
        fc.hotness.set(h);
        if h >= ex.proc.config.tierup_threshold {
            ex.proc.ensure_compiled(ex.lf);
            let compiled = ex.proc.code[ex.lf].compiled.borrow().clone().expect("just compiled");
            let pc_b = ex.low.pc_of(ex.pc);
            if let Some(&ip) = compiled.code.osr_entry.get(&pc_b) {
                let next_pc_b = ex.low.pc_of(ex.pc + 1);
                let f = ex.frames.last_mut().expect("frame");
                f.tier = Tier::Jit;
                f.cip = ip as usize;
                f.pc = next_pc_b as usize; // unused while in JIT, kept sane
                f.code_version = compiled.version();
                ex.proc.stats.tier_ups += 1;
                return Err(Sig::Switch);
            }
        }
    }
    ex.pc += 1;
    Ok(())
}

fn op_if(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let cond = ex.pop().i32();
    if cond != 0 {
        ex.pc += 1;
    } else {
        let t = ex.low.target(li.x);
        ex.do_branch_lowered(t);
    }
    Ok(())
}

fn op_else(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    // Reached only by falling out of the then-branch: skip to after `end`.
    let t = ex.low.target(li.x);
    ex.do_branch_lowered(t);
    Ok(())
}

fn op_br(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let t = ex.low.target(li.x);
    ex.do_branch_lowered(t);
    Ok(())
}

fn op_br_if(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let cond = ex.pop().i32();
    if cond != 0 {
        let t = ex.low.target(li.x);
        ex.do_branch_lowered(t);
    } else {
        ex.pc += 1;
    }
    Ok(())
}

fn op_br_table(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let idx = ex.pop().u32() as usize;
    let t = {
        let entries = ex.low.table(li.x);
        entries[idx.min(entries.len() - 1)]
    };
    ex.do_branch_lowered(t);
    Ok(())
}

fn op_return(ex: &mut Exec, _li: LInstr) -> Result<(), Sig> {
    ex.do_return(Tier::Interp)
}

fn op_call(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    ex.pc += 1;
    ex.sync_pc();
    ex.do_call(li.x, Tier::Interp)
}

fn op_call_indirect(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    ex.pc += 1;
    ex.sync_pc();
    ex.do_call_indirect(li.x, Tier::Interp)
}

// ---- parametric ----

fn op_drop(ex: &mut Exec, _li: LInstr) -> Result<(), Sig> {
    ex.pop();
    ex.pc += 1;
    Ok(())
}

fn op_select(ex: &mut Exec, _li: LInstr) -> Result<(), Sig> {
    let c = ex.pop().i32();
    let v2 = ex.pop();
    let v1 = ex.pop();
    ex.push(if c != 0 { v1 } else { v2 });
    ex.pc += 1;
    Ok(())
}

// ---- variables ----

fn op_local_get(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let v = ex.values[ex.base + li.x as usize];
    ex.values.push(v);
    ex.pc += 1;
    Ok(())
}

fn op_local_set(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let v = ex.pop();
    ex.values[ex.base + li.x as usize] = v.0;
    ex.pc += 1;
    Ok(())
}

fn op_local_tee(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let v = ex.peek();
    ex.values[ex.base + li.x as usize] = v.0;
    ex.pc += 1;
    Ok(())
}

fn op_global_get(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let v = ex.proc.globals[li.x as usize];
    ex.values.push(v);
    ex.pc += 1;
    Ok(())
}

fn op_global_set(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let v = ex.pop();
    ex.proc.globals[li.x as usize] = v.0;
    ex.pc += 1;
    Ok(())
}

// ---- memory ----

fn op_load(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let addr = ex.pop().u32();
    let mem = ex.proc.memory.as_ref().expect("validated: memory exists");
    let v = numeric::do_load(mem, li.op, addr, li.x)?;
    ex.push(v);
    ex.pc += 1;
    Ok(())
}

fn op_store(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let val = ex.pop();
    let addr = ex.pop().u32();
    let mem = ex.proc.memory.as_mut().expect("validated: memory exists");
    numeric::do_store(mem, li.op, addr, li.x, val)?;
    ex.pc += 1;
    Ok(())
}

fn op_memory_size(ex: &mut Exec, _li: LInstr) -> Result<(), Sig> {
    let pages = ex.proc.memory.as_ref().expect("validated").pages();
    ex.push(Slot::from_u32(pages));
    ex.pc += 1;
    Ok(())
}

fn op_memory_grow(ex: &mut Exec, _li: LInstr) -> Result<(), Sig> {
    let delta = ex.pop().u32();
    let r = ex.proc.memory.as_mut().expect("validated").grow(delta);
    ex.push(Slot::from_i32(r));
    ex.pc += 1;
    Ok(())
}

// ---- constants ----

/// All four `*.const` forms: the payload was lowered to slot bits.
fn op_const(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    ex.values.push(li.z);
    ex.pc += 1;
    Ok(())
}

// ---- numeric ----

fn op_bin(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let rhs = ex.pop();
    let lhs = ex.pop();
    let r = numeric::binop(li.op, lhs, rhs)?;
    ex.push(r);
    ex.pc += 1;
    Ok(())
}

fn op_un(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let a = ex.pop();
    let r = numeric::unop(li.op, a)?;
    ex.push(r);
    ex.pc += 1;
    Ok(())
}

// ---- fused superinstructions ----
//
// Each executes two bytecode instructions in one dispatch; the covered
// (second) slot is skipped by advancing the cursor two slots. Metered and
// global-probe execution never reach these (they read the unfused view).

/// `local.get x; local.get z`.
fn op_fused_get_get(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let a = ex.values[ex.base + li.x as usize];
    let b = ex.values[ex.base + li.z as usize];
    ex.values.push(a);
    ex.values.push(b);
    ex.pc += 2;
    Ok(())
}

/// `local.get x; <binop y>`.
fn op_fused_get_bin(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let rhs = Slot(ex.values[ex.base + li.x as usize]);
    let lhs = ex.pop();
    let r = numeric::binop(li.y, lhs, rhs)?;
    ex.push(r);
    ex.pc += 2;
    Ok(())
}

/// `<const z>; <binop y>`.
fn op_fused_const_bin(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let lhs = ex.pop();
    let r = numeric::binop(li.y, lhs, Slot(li.z))?;
    ex.push(r);
    ex.pc += 2;
    Ok(())
}

/// `local.get x; local.set z` (register-style copy, no stack traffic).
fn op_fused_get_set(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let v = ex.values[ex.base + li.x as usize];
    ex.values[ex.base + li.z as usize] = v;
    ex.pc += 2;
    Ok(())
}

/// `<comparison y>; br_if` — the loop-backedge pattern.
fn op_fused_cmp_br(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let rhs = ex.pop();
    let lhs = ex.pop();
    let c = numeric::binop(li.y, lhs, rhs)?.i32();
    if c != 0 {
        let t = ex.low.target(li.x);
        ex.do_branch_lowered(t);
    } else {
        ex.pc += 2;
    }
    Ok(())
}

/// `local.get x; local.get z; <binop y>` — operand fetch + ALU in one
/// dispatch, touching the operand stack once.
fn op_fused_get_get_bin(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let lhs = Slot(ex.values[ex.base + li.x as usize]);
    let rhs = Slot(ex.values[ex.base + li.z as usize]);
    let r = numeric::binop(li.y, lhs, rhs)?;
    ex.push(r);
    ex.pc += 3;
    Ok(())
}

/// `local.get a; local.get b; <comparison y>; br_if` — the full loop
/// bound check, zero operand-stack traffic.
fn op_fused_gg_cmp_br(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let lhs = Slot(ex.values[ex.base + (li.z & 0xffff_ffff) as usize]);
    let rhs = Slot(ex.values[ex.base + (li.z >> 32) as usize]);
    let c = numeric::binop(li.y, lhs, rhs)?.i32();
    if c != 0 {
        let t = ex.low.target(li.x);
        ex.do_branch_lowered(t);
    } else {
        ex.pc += 4;
    }
    Ok(())
}

/// `local.get x; <const z>; <binop y>; local.set x` — the in-place
/// induction update, zero operand-stack traffic.
fn op_fused_upd(ex: &mut Exec, li: LInstr) -> Result<(), Sig> {
    let cur = Slot(ex.values[ex.base + li.x as usize]);
    let r = numeric::binop(li.y, cur, Slot(li.z))?;
    ex.values[ex.base + li.x as usize] = r.0;
    ex.pc += 4;
    Ok(())
}

// ---- instrumentation ----

/// Handler for a probe-patched slot: fires local probes, then executes the
/// original instruction (paper §4.2, on the lowered form). The slot's
/// immediates are untouched by patching, so the original handler receives
/// them pre-decoded as usual.
fn op_probe(ex: &mut Exec, _li: LInstr) -> Result<(), Sig> {
    let slot = ex.pc;
    let pc = ex.low.pc_of(slot);
    let loc = Location { func: ex.func, pc };
    if ex.skip_probe == Some(loc) {
        // The probes at this location already fired (in the JIT tier,
        // immediately before deoptimizing here). Execute the original
        // instruction without re-firing.
        ex.skip_probe = None;
    } else {
        ex.fire_local_probes(pc);
    }
    // The firing probes may have removed themselves (restoring the slot —
    // and, if that was the function's last probe, rejoining the shared
    // *re-fused* op stream); re-read and dispatch the original opcode
    // either way. The read must be `unfused`: exactly one bytecode
    // instruction executes for the fuel unit already charged, and in
    // global-probe mode the covered instructions must still get their own
    // fires. For a slot that was a fused head, `original` recovers the
    // true pre-fusion immediates — the patched slot may carry the fused
    // encoding.
    let cur = ex.low.unfused(slot);
    let orig = if cur.op == op::PROBE {
        let byte = ex.proc.code[ex.lf].orig_opcode(pc);
        ex.low.original(slot, byte)
    } else {
        cur
    };
    normal_table()[orig.op as usize](ex, orig)
}

/// Every entry of the instrumented dispatch table: fire global probes for
/// this instruction, then dispatch its real handler through the normal
/// table. Installed by switching the table pointer when a global probe is
/// inserted (paper §4.1).
fn op_global_stub(ex: &mut Exec, _li: LInstr) -> Result<(), Sig> {
    let pc = ex.low.pc_of(ex.pc);
    ex.fire_global_probes(pc);
    // Global probes may themselves have mutated instrumentation; re-read.
    // The *unfused* view guarantees one instruction per dispatch, so the
    // next global fire lands on the covered instruction too.
    let li = ex.low.unfused(ex.pc);
    normal_table()[li.op as usize](ex, li)
}
