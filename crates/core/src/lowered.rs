//! The lowered code pipeline: one-time translation of validated bytecode
//! into fixed-width internal instructions with pre-decoded immediates and
//! pre-resolved branch targets.
//!
//! The in-place interpreter pays a *decode tax* when it dispatches over raw
//! bytes: every immediate is LEB128-decoded on every execution, and every
//! branch resolves its destination through a per-pc side-table `HashMap`
//! lookup. Lowering pays that tax **once per function**: a single pass over
//! the body produces one [`LInstr`] per bytecode instruction, with the
//! side table fused into a dense target array, and the interpreter then
//! dispatches over *slots* — no LEB, no hashing in the hot loop.
//!
//! Since the shared-artifact refactor the lowered form is split in two:
//!
//! * [`Lowered`] is the **immutable, thread-safe shared form** — all
//!   `Arc`-backed, `Send + Sync`, built once per function inside a
//!   [`ModuleArtifact`](crate::artifact::ModuleArtifact) and shared by
//!   every process instantiated from it. Nothing ever mutates it.
//! * [`LoweredView`] is the **per-process read view** the execution tiers
//!   dispatch through: normally it reads straight from the shared op
//!   stream (zero copies, pointer-shared across processes); once the
//!   process installs a probe in the function, the view reads from the
//!   process-local **copy-on-write op stream** owned by that function's
//!   [`FuncOverlay`](crate::code::FuncOverlay).
//!
//! Two properties make this compatible with the paper's instrumentation
//! design:
//!
//! * **The byte-offset `Location` space stays the public contract.** The
//!   lowering keeps a bidirectional `pc ↔ slot` map ([`Lowered::pc_of`],
//!   [`Lowered::slot_of`]), and frames always park byte pcs at sync points,
//!   so probes, monitors, script matching, disassembly, fuel suspension and
//!   deoptimization all keep speaking byte offsets.
//! * **Probe patching works exactly like bytecode overwriting** — on the
//!   overlay's copy. A slot is one instruction; installing a probe
//!   overwrites the copied slot's *opcode field* with the probe opcode
//!   (immediates untouched), and removal restores it — the same O(1)
//!   patch/restore the paper performs on the opcode byte (§4.2). The
//!   shared form is never touched, which is what makes instrumentation
//!   invisible to sibling processes of the same artifact.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

use wizard_wasm::instr::{Imm, InstrIter};
use wizard_wasm::opcodes as op;
use wizard_wasm::validate::{FuncMeta, SideEntry, Target};

use crate::numeric;
use crate::value::Slot;

/// Fused superinstruction: `local.get a; local.get b` (`x` = a, `z` = b).
pub const FUSED_GET_GET: u8 = 0xe8;
/// Fused superinstruction: `local.get a; <binop>` (`x` = a, `y` = binop).
pub const FUSED_GET_BIN: u8 = 0xe9;
/// Fused superinstruction: `<const>; <binop>` (`z` = const bits, `y` = binop).
pub const FUSED_CONST_BIN: u8 = 0xea;
/// Fused superinstruction: `local.get a; local.set b` (`x` = a, `z` = b).
pub const FUSED_GET_SET: u8 = 0xeb;
/// Fused superinstruction: `<comparison>; br_if` (`y` = cmp, `x` = target).
pub const FUSED_CMP_BR: u8 = 0xec;
/// Fused superinstruction: `local.get a; local.get b; <binop>`
/// (`x` = a, `z` = b, `y` = binop).
pub const FUSED_GET_GET_BIN: u8 = 0xed;
/// Fused superinstruction: `local.get a; local.get b; <comparison>;
/// br_if` — the loop-backedge test (`z` = a | b<<32, `y` = cmp,
/// `x` = target).
pub const FUSED_GG_CMP_BR: u8 = 0xee;
/// Fused superinstruction: `local.get a; <const>; <binop>; local.set a` —
/// the in-place induction update (`x` = a, `z` = const bits, `y` = binop).
pub const FUSED_UPD: u8 = 0xef;

/// `true` for the lowering-internal fused superinstruction opcodes. These
/// bytes are never valid module bytecode; they exist only in lowered op
/// streams.
#[inline]
pub fn is_fused(opcode: u8) -> bool {
    (FUSED_GET_GET..=FUSED_UPD).contains(&opcode)
}

/// Number of bytecode instructions a fused superinstruction executes
/// (equivalently: 1 + the covered slots after its head).
#[inline]
pub fn fused_len(opcode: u8) -> usize {
    match opcode {
        FUSED_GET_GET_BIN => 3,
        FUSED_GG_CMP_BR | FUSED_UPD => 4,
        _ => 2,
    }
}

/// `true` for binops that produce an `i32` condition and cannot trap —
/// the fusable heads of `FUSED_CMP_BR`.
fn is_cmp(opcode: u8) -> bool {
    matches!(opcode,
        op::I32_EQ..=op::I32_GE_U
        | op::I64_EQ..=op::I64_GE_U
        | op::F32_EQ..=op::F32_GE
        | op::F64_EQ..=op::F64_GE)
}

/// A pre-resolved control-transfer destination in lowered code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LTarget {
    /// Destination slot index.
    pub slot: u32,
    /// Number of operand values carried across the branch.
    pub keep: u32,
    /// Operand-stack height (above the frame's operand base) to truncate to.
    pub height: u32,
}

/// One fixed-width lowered instruction.
///
/// `op` reuses the Wasm opcode byte space (including the reserved probe
/// opcode when an overlay slot is patched), so the interpreter's 256-entry
/// dispatch tables — normal and global-probe-instrumented — carry over
/// unchanged in shape. The immediate fields are interpreted per opcode:
///
/// | opcode                      | `x`                       | `z`             |
/// |-----------------------------|---------------------------|-----------------|
/// | `local.*` / `global.*`      | index                     | —               |
/// | `*.const`                   | —                         | value as slot bits |
/// | loads / stores              | constant offset           | —               |
/// | `br` / `br_if` / `if` / `else` | index into [`Lowered::targets`] | —    |
/// | `br_table`                  | index into [`Lowered::tables`] | —          |
/// | `call`                      | callee function index     | —               |
/// | `call_indirect`             | expected type index       | —               |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LInstr {
    /// Lowered opcode (Wasm opcode byte space, a fused superinstruction
    /// opcode, or `op::PROBE` when an overlay slot is patched).
    pub op: u8,
    /// Secondary opcode of a fused superinstruction (the second
    /// instruction's binop byte); 0 otherwise. Lives in what would be
    /// padding, so fusion costs no slot width.
    pub y: u8,
    /// Primary pre-decoded immediate (see table above).
    pub x: u32,
    /// Wide pre-decoded immediate: constant payloads as value-slot bits.
    pub z: u64,
}

impl LInstr {
    fn plain(opcode: u8) -> LInstr {
        LInstr { op: opcode, y: 0, x: 0, z: 0 }
    }

    fn with_x(opcode: u8, x: u32) -> LInstr {
        LInstr { op: opcode, y: 0, x, z: 0 }
    }

    fn with_z(opcode: u8, z: u64) -> LInstr {
        LInstr { op: opcode, y: 0, x: 0, z }
    }
}

/// A process-local copy-on-write op stream: the mutable half of the
/// overlay, materialized from [`Lowered::cow_ops`] when the first probe
/// lands in a function and dropped again when the last probe leaves.
pub type OverlayOps = Rc<[Cell<LInstr>]>;

/// A function body lowered to fixed-width instructions — the **immutable,
/// shared form**.
///
/// Every field is `Arc`-backed plain data: the whole structure is
/// `Send + Sync` and is shared by reference between every process
/// instantiated from the same
/// [`ModuleArtifact`](crate::artifact::ModuleArtifact). Instrumentation
/// never mutates it; probe patching operates on a per-process
/// [`OverlayOps`] copy read through a [`LoweredView`].
#[derive(Debug, Clone)]
pub struct Lowered {
    /// One slot per bytecode instruction, in code order (pristine:
    /// superinstructions fused, no probe opcodes).
    ops: Arc<[LInstr]>,
    /// Pre-resolved branch targets (side table fused in), referenced by
    /// `x` of `br`/`br_if`/`if`/`else` slots.
    pub targets: Arc<[LTarget]>,
    /// `br_table` target lists (targets then default, matching the side
    /// table), referenced by `x` of `br_table` slots.
    pub tables: Arc<[Box<[LTarget]>]>,
    /// slot → byte pc of the instruction; one extra sentinel entry mapping
    /// `slot == len()` to the body's byte length (one-past-the-end).
    slot_to_pc: Arc<[u32]>,
    /// byte pc → slot; `u32::MAX` for offsets that are not instruction
    /// boundaries; one extra sentinel entry for `pc == body len`.
    pc_to_slot: Arc<[u32]>,
    /// Original (unfused) head instructions of fused superinstruction
    /// slots, keyed by head slot — consulted to unfuse when a probe lands
    /// on a covered overlay slot, and by consumers that need the strict
    /// one-instruction-per-slot view ([`LoweredView::unfused`]).
    fused: Arc<HashMap<u32, LInstr>>,
}

impl Lowered {
    /// Lowers a *clean* body (no probe bytes) using its validation metadata.
    ///
    /// # Panics
    ///
    /// Panics on undecodable bytes or missing side entries — impossible for
    /// validated code.
    pub fn lower(clean: &[u8], meta: &FuncMeta) -> Lowered {
        let mut ops: Vec<LInstr> = Vec::with_capacity(clean.len() / 2 + 1);
        let mut targets: Vec<LTarget> = Vec::new();
        let mut tables: Vec<Box<[LTarget]>> = Vec::new();
        let mut slot_to_pc: Vec<u32> = Vec::with_capacity(ops.capacity() + 1);
        let mut pc_to_slot: Vec<u32> = vec![u32::MAX; clean.len() + 1];

        // Targets are collected with `slot` temporarily holding the
        // destination *byte pc*; a second pass resolves them to slots once
        // the pc → slot map is complete.
        let unresolved = |t: Target| LTarget { slot: t.target_pc, keep: t.arity, height: t.height };
        let side_br = |pc: u32| -> Target {
            match meta.side.get(&pc) {
                Some(SideEntry::Br(t) | SideEntry::IfFalse(t) | SideEntry::ElseSkip(t)) => *t,
                other => unreachable!("missing side entry at pc={pc}: {other:?}"),
            }
        };

        for item in InstrIter::new(clean) {
            let instr = item.expect("validated code decodes");
            let pc = instr.pc;
            pc_to_slot[pc as usize] = ops.len() as u32;
            slot_to_pc.push(pc);
            let lowered = match instr.op {
                op::BR | op::BR_IF | op::IF | op::ELSE => {
                    targets.push(unresolved(side_br(pc)));
                    LInstr::with_x(instr.op, targets.len() as u32 - 1)
                }
                op::BR_TABLE => match meta.side.get(&pc) {
                    Some(SideEntry::Table(entries)) => {
                        tables.push(entries.iter().map(|t| unresolved(*t)).collect());
                        LInstr::with_x(instr.op, tables.len() as u32 - 1)
                    }
                    other => unreachable!("missing br_table side entry at pc={pc}: {other:?}"),
                },
                op::I32_CONST => match instr.imm {
                    Imm::I32(v) => LInstr::with_z(instr.op, Slot::from_i32(v).0),
                    _ => unreachable!("decoder invariant"),
                },
                op::I64_CONST => match instr.imm {
                    Imm::I64(v) => LInstr::with_z(instr.op, Slot::from_i64(v).0),
                    _ => unreachable!("decoder invariant"),
                },
                op::F32_CONST => match instr.imm {
                    Imm::F32(v) => LInstr::with_z(instr.op, Slot::from_f32(v).0),
                    _ => unreachable!("decoder invariant"),
                },
                op::F64_CONST => match instr.imm {
                    Imm::F64(v) => LInstr::with_z(instr.op, Slot::from_f64(v).0),
                    _ => unreachable!("decoder invariant"),
                },
                _ => match instr.imm {
                    Imm::None | Imm::Block(_) | Imm::MemIdx(_) => LInstr::plain(instr.op),
                    Imm::Idx(i) => LInstr::with_x(instr.op, i),
                    Imm::CallIndirect { type_idx, .. } => LInstr::with_x(instr.op, type_idx),
                    Imm::Mem { offset, .. } => LInstr::with_x(instr.op, offset),
                    _ => unreachable!("immediate shape handled above"),
                },
            };
            ops.push(lowered);
        }

        // Sentinels: one-past-the-end maps both ways, so branches to the
        // body end and the implicit-return pc stay representable.
        let end_slot = ops.len() as u32;
        slot_to_pc.push(clean.len() as u32);
        pc_to_slot[clean.len()] = end_slot;

        let resolve = |t: &mut LTarget| {
            let slot = pc_to_slot[t.slot as usize];
            debug_assert_ne!(slot, u32::MAX, "branch target {t:?} is not an instruction boundary");
            t.slot = slot;
        };
        for t in &mut targets {
            resolve(t);
        }
        for table in &mut tables {
            for t in table.iter_mut() {
                resolve(t);
            }
        }

        let fused = fuse(&mut ops, &targets, &tables);

        Lowered {
            ops: ops.into(),
            targets: targets.into(),
            tables: tables.into(),
            slot_to_pc: slot_to_pc.into(),
            pc_to_slot: pc_to_slot.into(),
            fused: Arc::new(fused),
        }
    }

    /// An empty lowering (placeholder before the first frame loads).
    pub fn empty() -> Lowered {
        Lowered::lower(&[], &FuncMeta::default())
    }

    /// Number of instruction slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the body lowered to no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Reads the pristine (shared-form) instruction at `slot`.
    #[inline]
    pub fn get(&self, slot: usize) -> LInstr {
        self.ops[slot]
    }

    /// Byte pc of the instruction at `slot` (`slot == len()` maps to the
    /// body's byte length).
    #[inline]
    pub fn pc_of(&self, slot: usize) -> u32 {
        self.slot_to_pc[slot]
    }

    /// Slot of the instruction starting at byte `pc`, or `None` if `pc` is
    /// not an instruction boundary.
    #[inline]
    pub fn slot_of(&self, pc: u32) -> Option<u32> {
        match self.pc_to_slot.get(pc as usize) {
            Some(&s) if s != u32::MAX => Some(s),
            _ => None,
        }
    }

    /// Resolves a target index of a `br`/`br_if`/`if`/`else` slot.
    #[inline]
    pub fn target(&self, idx: u32) -> LTarget {
        self.targets[idx as usize]
    }

    /// Resolves a `br_table` slot's target list.
    #[inline]
    pub fn table(&self, idx: u32) -> &[LTarget] {
        &self.tables[idx as usize]
    }

    /// Address of the shared op stream — the identity tests and benches
    /// use to assert that two processes really dispatch from the same
    /// memory until a probe lands.
    pub fn ops_addr(&self) -> usize {
        self.ops.as_ptr() as usize
    }

    /// Size of the lowered form in bytes (op stream + targets + maps) —
    /// the per-process memory a shared artifact saves its siblings.
    pub fn size_bytes(&self) -> usize {
        self.ops.len() * core::mem::size_of::<LInstr>()
            + self.targets.len() * core::mem::size_of::<LTarget>()
            + self.tables.iter().map(|t| t.len() * core::mem::size_of::<LTarget>()).sum::<usize>()
            + (self.slot_to_pc.len() + self.pc_to_slot.len()) * core::mem::size_of::<u32>()
    }

    /// Materializes a process-local copy of the op stream — the
    /// copy-on-write step, taken by a
    /// [`FuncOverlay`](crate::code::FuncOverlay) when the first probe
    /// lands in the function.
    pub fn cow_ops(&self) -> OverlayOps {
        self.ops.iter().map(|&o| Cell::new(o)).collect()
    }

    /// Overwrites the opcode field of overlay slot `slot` with the probe
    /// opcode, returning the previous opcode — the lowered-form analogue
    /// of overwriting the opcode byte, applied to the process-local copy.
    /// Immediates are untouched, so the original handler decodes nothing
    /// when the probe re-dispatches it.
    ///
    /// If the slot is covered by a fused superinstruction, the fused head
    /// is restored to its original single instruction first — sequential
    /// flow must reach the probed slot, never skip over it. (A probe on a
    /// fused *head* needs no unfusing: the probe handler re-dispatches the
    /// saved original opcode, whose immediates the patched slot retains.)
    pub fn patch_probe(&self, ops: &[Cell<LInstr>], slot: u32) -> u8 {
        // Scan back over the longest possible fused region for a head that
        // covers this slot (fusions never overlap, so at most one does).
        for d in 1..=3u32 {
            let Some(head) = slot.checked_sub(d) else { break };
            let cell = &ops[head as usize];
            let opcode = cell.get().op;
            if is_fused(opcode) && fused_len(opcode) as u32 > d {
                cell.set(self.fused[&head]);
                break;
            }
        }
        let cell = &ops[slot as usize];
        let mut li = cell.get();
        let prev = li.op;
        li.op = op::PROBE;
        cell.set(li);
        prev
    }

    /// Restores the opcode field of overlay slot `slot` (when the last
    /// probe at the location is removed). A slot that was a fused head is
    /// restored to its full *original* instruction (not re-fused) — its
    /// immediate fields held the fused encoding, and a head that probe
    /// traffic touched stays unfused in the overlay: degradation, never
    /// incorrectness. (When the *last* probe leaves the whole function the
    /// overlay copy is dropped entirely and the process rejoins the
    /// shared, still-fused op stream.)
    pub fn restore_op(&self, ops: &[Cell<LInstr>], slot: u32, orig: u8) {
        if let Some(o) = self.fused.get(&slot) {
            debug_assert_eq!(o.op, orig, "saved byte opcode matches the fused head's original");
            ops[slot as usize].set(*o);
            return;
        }
        let cell = &ops[slot as usize];
        let mut li = cell.get();
        li.op = orig;
        cell.set(li);
    }

    /// The original single instruction behind a (possibly fused or
    /// probe-patched) slot whose current encoding is `li`: `orig_byte`
    /// supplies the overwritten opcode (saved on the bytecode side), and
    /// if the slot was a fused head its original immediates come from the
    /// fusion map — the patched slot itself may carry the fused encoding.
    #[inline]
    fn original_of(&self, slot: usize, mut li: LInstr, orig_byte: u8) -> LInstr {
        if let Some(o) = self.fused.get(&(slot as u32)) {
            return *o;
        }
        li.op = orig_byte;
        li
    }
}

/// The per-process read view of a function's lowered code: shared pristine
/// ops by default, the process-local [`OverlayOps`] copy once the function
/// is instrumented. Cheap to clone (a bundle of shared pointers); the
/// execution tiers hold one by value per live frame.
#[derive(Debug, Clone)]
pub struct LoweredView {
    shared: Lowered,
    local: Option<OverlayOps>,
}

impl LoweredView {
    /// A view reading straight from the shared form (uninstrumented).
    pub fn shared(low: Lowered) -> LoweredView {
        LoweredView { shared: low, local: None }
    }

    /// A view reading through a process-local overlay op stream.
    pub fn overlaid(low: Lowered, ops: OverlayOps) -> LoweredView {
        LoweredView { shared: low, local: Some(ops) }
    }

    /// An empty view (placeholder before the first frame loads).
    pub fn empty() -> LoweredView {
        LoweredView::shared(Lowered::empty())
    }

    /// `true` while this view reads a process-local copy-on-write op
    /// stream instead of the shared artifact's.
    pub fn is_overlaid(&self) -> bool {
        self.local.is_some()
    }

    /// Address of the op stream this view dispatches from (overlay copy
    /// if present, shared otherwise) — the pointer identity used by
    /// sharing assertions.
    pub fn ops_addr(&self) -> usize {
        match &self.local {
            Some(ops) => ops.as_ptr() as usize,
            None => self.shared.ops_addr(),
        }
    }

    /// Reads the instruction at `slot` (overlay copy if present).
    #[inline]
    pub fn get(&self, slot: usize) -> LInstr {
        match &self.local {
            Some(ops) => ops[slot].get(),
            None => self.shared.get(slot),
        }
    }

    /// The slot's instruction with fusion undone: a fused head reports its
    /// original first instruction (the covered slot always holds its
    /// original second instruction). Consumers that need the strict
    /// one-instruction-per-slot view — the JIT compiler, fuel-metered
    /// execution (exactly one fuel unit per bytecode instruction), and
    /// global-probe dispatch (a probe fires before *every* instruction) —
    /// read through this instead of [`LoweredView::get`].
    #[inline]
    pub fn unfused(&self, slot: usize) -> LInstr {
        let li = self.get(slot);
        if is_fused(li.op) {
            self.shared.fused[&(slot as u32)]
        } else {
            li
        }
    }

    /// The original single instruction behind a probe-patched `slot`:
    /// `orig_byte` supplies the overwritten opcode (saved on the bytecode
    /// side), and a slot that was a fused head recovers its pre-fusion
    /// immediates from the fusion map.
    #[inline]
    pub fn original(&self, slot: usize, orig_byte: u8) -> LInstr {
        self.shared.original_of(slot, self.get(slot), orig_byte)
    }

    /// Number of instruction slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// `true` if the body lowered to no instructions.
    pub fn is_empty(&self) -> bool {
        self.shared.is_empty()
    }

    /// Byte pc of the instruction at `slot`; see [`Lowered::pc_of`].
    #[inline]
    pub fn pc_of(&self, slot: usize) -> u32 {
        self.shared.pc_of(slot)
    }

    /// Slot of the instruction at byte `pc`; see [`Lowered::slot_of`].
    #[inline]
    pub fn slot_of(&self, pc: u32) -> Option<u32> {
        self.shared.slot_of(pc)
    }

    /// Resolves a target index of a `br`/`br_if`/`if`/`else` slot.
    #[inline]
    pub fn target(&self, idx: u32) -> LTarget {
        self.shared.target(idx)
    }

    /// Resolves a `br_table` slot's target list.
    #[inline]
    pub fn table(&self, idx: u32) -> &[LTarget] {
        self.shared.table(idx)
    }

    /// Number of fused superinstruction heads currently visible to this
    /// view (diagnostics/tests).
    pub fn fused_count(&self) -> usize {
        (0..self.len()).filter(|&s| is_fused(self.get(s).op)).count()
    }
}

/// The pair-fusion pass: replaces common two-instruction sequences with one
/// fixed-width superinstruction, halving dispatch overhead on the hottest
/// patterns (operand fetch + ALU, induction updates, compare-and-branch
/// loop backedges).
///
/// Fusion never changes the slot count — the covered (second) slot keeps
/// its original instruction and is simply skipped by sequential flow — so
/// the `pc ↔ slot` bijection, branch targets, and probe locations are
/// untouched. A pair is fusable only when the covered slot is not a branch
/// target; probes landing on covered slots unfuse the head of the overlay
/// copy at patch time ([`Lowered::patch_probe`]).
fn fuse(
    ops: &mut [LInstr],
    targets: &[LTarget],
    tables: &[Box<[LTarget]>],
) -> HashMap<u32, LInstr> {
    let mut branch_targets: HashSet<u32> = targets.iter().map(|t| t.slot).collect();
    for table in tables {
        branch_targets.extend(table.iter().map(|t| t.slot));
    }
    let is_const =
        |o: u8| matches!(o, op::I32_CONST | op::I64_CONST | op::F32_CONST | op::F64_CONST);
    // The covered slots `s+1 .. s+len-1` must not be branch targets:
    // control may only enter a fused region at its head.
    let coverable =
        |s: usize, len: usize| (s + 1..s + len).all(|c| !branch_targets.contains(&(c as u32)));

    let mut fused: HashMap<u32, LInstr> = HashMap::new();
    let mut s = 0;
    while s + 1 < ops.len() {
        let a = ops[s];
        let b = ops[s + 1];
        let c = ops.get(s + 2).copied();
        let d = ops.get(s + 3).copied();
        // Longest pattern first; every fusion is strictly non-overlapping
        // (the cursor skips the whole fused region).
        let f: Option<(LInstr, usize)> = match (a.op, b.op, c.map(|i| i.op), d.map(|i| i.op)) {
            // local.get a; local.get b; <cmp>; br_if — the loop backedge.
            (op::LOCAL_GET, op::LOCAL_GET, Some(cc), Some(op::BR_IF))
                if is_cmp(cc) && coverable(s, 4) =>
            {
                let d = d.expect("matched");
                let z = u64::from(a.x) | (u64::from(b.x) << 32);
                Some((LInstr { op: FUSED_GG_CMP_BR, y: cc, x: d.x, z }, 4))
            }
            // local.get a; <const>; <binop>; local.set a — induction update.
            (op::LOCAL_GET, bc, Some(cc), Some(op::LOCAL_SET))
                if is_const(bc)
                    && numeric::is_binop(cc)
                    && d.expect("matched").x == a.x
                    && coverable(s, 4) =>
            {
                Some((LInstr { op: FUSED_UPD, y: cc, x: a.x, z: b.z }, 4))
            }
            // local.get a; local.get b; <binop>.
            (op::LOCAL_GET, op::LOCAL_GET, Some(cc), _)
                if numeric::is_binop(cc) && coverable(s, 3) =>
            {
                Some((LInstr { op: FUSED_GET_GET_BIN, y: cc, x: a.x, z: u64::from(b.x) }, 3))
            }
            (op::LOCAL_GET, op::LOCAL_GET, _, _) if coverable(s, 2) => {
                Some((LInstr { op: FUSED_GET_GET, y: 0, x: a.x, z: u64::from(b.x) }, 2))
            }
            (op::LOCAL_GET, op::LOCAL_SET, _, _) if coverable(s, 2) => {
                Some((LInstr { op: FUSED_GET_SET, y: 0, x: a.x, z: u64::from(b.x) }, 2))
            }
            (op::LOCAL_GET, bb, _, _) if numeric::is_binop(bb) && coverable(s, 2) => {
                Some((LInstr { op: FUSED_GET_BIN, y: bb, x: a.x, z: 0 }, 2))
            }
            (ac, bb, _, _) if is_const(ac) && numeric::is_binop(bb) && coverable(s, 2) => {
                Some((LInstr { op: FUSED_CONST_BIN, y: bb, x: 0, z: a.z }, 2))
            }
            (aa, op::BR_IF, _, _) if is_cmp(aa) && coverable(s, 2) => {
                Some((LInstr { op: FUSED_CMP_BR, y: aa, x: b.x, z: 0 }, 2))
            }
            _ => None,
        };
        if let Some((fi, len)) = f {
            fused.insert(s as u32, a);
            ops[s] = fi;
            s += len;
        } else {
            s += 1;
        }
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;
    use wizard_wasm::validate::validate;

    fn lowered_for(f: FuncBuilder) -> (Vec<u8>, Lowered) {
        let mut mb = ModuleBuilder::new();
        mb.add_func("f", f);
        let m = mb.build().expect("validates");
        let meta = validate(&m).expect("validates");
        let body = m.funcs[0].body.code.clone();
        let low = Lowered::lower(&body, &meta.funcs[0]);
        (body, low)
    }

    #[test]
    fn lowered_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Lowered>();
    }

    #[test]
    fn slots_map_bijectively_to_instruction_boundaries() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(624_485).i32_add();
        let (body, low) = lowered_for(f);
        // local.get 0; i32.const (3-byte LEB); i32.add; end
        assert_eq!(low.len(), 4);
        for slot in 0..low.len() {
            let pc = low.pc_of(slot);
            assert_eq!(low.slot_of(pc), Some(slot as u32));
        }
        // Sentinels: one-past-the-end maps both ways.
        assert_eq!(low.pc_of(low.len()) as usize, body.len());
        assert_eq!(low.slot_of(body.len() as u32), Some(low.len() as u32));
        // Mid-immediate offsets are not boundaries.
        assert_eq!(low.slot_of(low.pc_of(1) + 1), None);
    }

    #[test]
    fn immediates_are_predecoded() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(-99_999).i32_add();
        let (_, low) = lowered_for(f);
        let view = LoweredView::shared(low);
        assert_eq!(view.get(0).op, wizard_wasm::opcodes::LOCAL_GET);
        assert_eq!(view.get(0).x, 0);
        // `i32.const; i32.add` fuses; the head keeps the const payload and
        // the covered slot keeps the original add.
        assert_eq!(view.get(1).op, FUSED_CONST_BIN);
        assert_eq!(view.get(1).y, wizard_wasm::opcodes::I32_ADD);
        assert_eq!(Slot(view.get(1).z).i32(), -99_999);
        assert_eq!(view.unfused(1).op, wizard_wasm::opcodes::I32_CONST);
        assert_eq!(view.get(2).op, wizard_wasm::opcodes::I32_ADD);
    }

    #[test]
    fn fusion_pairs_and_probe_unfusing_on_the_overlay() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).local_get(0).i32_add();
        let (_, low) = lowered_for(f);
        // `local.get; local.get; i32.add` fuses into one three-wide
        // superinstruction; the covered slots keep their originals.
        let shared = LoweredView::shared(low.clone());
        assert_eq!(shared.get(0).op, FUSED_GET_GET_BIN);
        assert_eq!(shared.get(0).y, wizard_wasm::opcodes::I32_ADD);
        assert_eq!(shared.fused_count(), 1);
        assert_eq!(shared.unfused(0).op, wizard_wasm::opcodes::LOCAL_GET);
        assert_eq!(shared.get(1).op, wizard_wasm::opcodes::LOCAL_GET);
        assert_eq!(shared.get(2).op, wizard_wasm::opcodes::I32_ADD);
        // A probe on a covered slot patches the *overlay copy* and
        // restores the head there: sequential flow must reach the probed
        // instruction. The shared form stays fused and untouched.
        let ops = low.cow_ops();
        low.patch_probe(&ops, 2);
        let view = LoweredView::overlaid(low.clone(), Rc::clone(&ops));
        assert_eq!(view.get(0).op, wizard_wasm::opcodes::LOCAL_GET);
        assert_eq!(view.get(2).op, wizard_wasm::opcodes::PROBE);
        assert_eq!(view.fused_count(), 0);
        assert_eq!(shared.get(0).op, FUSED_GET_GET_BIN, "shared form untouched");
        assert_eq!(shared.fused_count(), 1);
        assert_ne!(view.ops_addr(), shared.ops_addr());
    }

    #[test]
    fn backedge_and_induction_fuse_four_wide() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        f.for_range(i, 0, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
        });
        f.local_get(acc);
        let (_, low) = lowered_for(f);
        let ops: Vec<u8> = (0..low.len()).map(|s| low.get(s).op).collect();
        assert!(
            ops.contains(&FUSED_GG_CMP_BR),
            "loop bound check fuses to get;get;cmp;br_if: {ops:02x?}"
        );
        assert!(
            ops.contains(&FUSED_UPD),
            "induction update fuses to get;const;add;set: {ops:02x?}"
        );
    }

    #[test]
    fn branch_targets_resolve_to_slots() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        f.for_range(i, 0, |f| {
            f.nop();
        });
        f.local_get(i);
        let (_, low) = lowered_for(f);
        let mut saw_branch = false;
        for slot in 0..low.len() {
            let li = low.get(slot);
            if matches!(
                li.op,
                wizard_wasm::opcodes::BR
                    | wizard_wasm::opcodes::BR_IF
                    | wizard_wasm::opcodes::IF
                    | FUSED_CMP_BR
            ) {
                let t = low.target(li.x);
                assert!((t.slot as usize) <= low.len(), "target slot in range");
                saw_branch = true;
            }
        }
        assert!(saw_branch, "loop lowering produced branches");
    }

    #[test]
    fn probe_patch_roundtrip_preserves_immediates() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(7).i32_add();
        let (_, low) = lowered_for(f);
        let ops = low.cow_ops();
        // Slot 1 is a fused `const;add` head; patching it installs the
        // probe over the *fused* op while the immediates stay intact, and
        // the probe handler re-dispatches via the saved byte opcode.
        let prev = low.patch_probe(&ops, 1);
        assert_eq!(prev, FUSED_CONST_BIN);
        let view = LoweredView::overlaid(low.clone(), Rc::clone(&ops));
        assert_eq!(view.get(1).op, wizard_wasm::opcodes::PROBE);
        assert_eq!(Slot(view.get(1).z).i32(), 7, "immediate untouched by patching");
        // Restoring with the *byte* opcode (what the overlay saved) leaves
        // a correct, merely-unfused instruction.
        low.restore_op(&ops, 1, wizard_wasm::opcodes::I32_CONST);
        assert_eq!(view.get(1).op, wizard_wasm::opcodes::I32_CONST);
        assert_eq!(Slot(view.get(1).z).i32(), 7);
        // The shared form never saw any of it.
        assert_eq!(low.get(1).op, FUSED_CONST_BIN);
    }

    #[test]
    fn empty_lowering_is_consistent() {
        let low = Lowered::empty();
        assert!(low.is_empty());
        assert_eq!(low.pc_of(0), 0);
        assert_eq!(low.slot_of(0), Some(0));
        let view = LoweredView::empty();
        assert!(view.is_empty());
        assert!(!view.is_overlaid());
    }
}
