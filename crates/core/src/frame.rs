//! Execution frames and the FrameAccessor handle machinery.
//!
//! The paper's `FrameAccessor` is an engine-heap object representing one
//! live stack frame, with observable identity and validity protection
//! against dangling access (paper §2.3). In Rust we split it in two:
//!
//! * [`FrameAccessor`] — a cloneable, storable handle with stable identity
//!   (Rc pointer equality), materialized lazily and cached in the frame's
//!   *accessor slot*; invalidated on return and unwind;
//! * `FrameView` (in [`crate::exec`]) — a borrow-scoped view used to read
//!   and write the frame's state through a [`ProbeCtx`](crate::exec::ProbeCtx).

use std::cell::Cell;
use std::rc::Rc;

use wizard_wasm::module::FuncIdx;

/// Which execution tier a frame is currently running in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The in-place interpreter.
    Interp,
    /// The register-form interpreter ([`crate::regir`]): stack traffic
    /// eliminated, but frames still park byte pcs at every sync point.
    Reg,
    /// The JIT (micro-op) tier.
    Jit,
}

/// One Wasm activation record.
#[derive(Debug)]
pub(crate) struct Frame {
    /// Global function index.
    pub func: FuncIdx,
    /// Index into the process's local-function code table.
    pub lf: usize,
    /// Base of locals in the unified value stack.
    pub base: usize,
    /// Base of the operand stack (== `base + num_slots`).
    pub opbase: usize,
    /// Result arity of the function.
    pub results: u32,
    /// Resume/current bytecode pc (authoritative at sync points).
    ///
    /// Always a *byte offset* — the paper's location space — even though
    /// the lowered interpreter's live cursor is a slot index: `Exec`
    /// converts through the function's `pc ↔ slot` map when parking or
    /// loading a frame. That keeps every consumer of parked frames
    /// (FrameAccessors, fuel suspension/resume, deoptimization, OSR
    /// entries, probe locations) dispatch-representation-agnostic.
    pub pc: usize,
    /// Resume/current compiled-op index when `tier == Jit`.
    pub cip: usize,
    /// Execution tier.
    pub tier: Tier,
    /// Version of the compiled code this frame was executing (to detect
    /// stale frames after instrumentation changes).
    pub code_version: u32,
    /// Unique id of this activation (for accessor validity).
    pub activation: u64,
    /// The accessor slot: cleared on entry, filled lazily on first request
    /// (paper mechanism 1).
    pub accessor: Option<FrameAccessor>,
    /// Set when a probe modified this frame's state while it was running in
    /// the JIT tier; forces deoptimization before execution continues
    /// (paper §4.6, strategy 4).
    pub deopt_requested: bool,
}

impl Frame {
    /// Invalidate the accessor (on return/unwind — paper mechanisms 2/3).
    pub fn invalidate_accessor(&mut self) {
        if let Some(acc) = self.accessor.take() {
            acc.inner.valid.set(false);
        }
    }
}

#[derive(Debug)]
pub(crate) struct AccessorInner {
    pub activation: u64,
    pub func: FuncIdx,
    /// Depth of the frame when materialized (1 = bottom frame).
    pub depth: u32,
    /// Cached index into the frame stack (revalidated on each use).
    pub frame_index: Cell<usize>,
    pub valid: Cell<bool>,
}

/// A storable handle to a live stack frame.
///
/// Identity is observable: two handles compare equal iff they refer to the
/// same activation's accessor object, so monitors can correlate callbacks
/// across events (paper §2.3). Once the frame returns, unwinds, or the
/// process traps, the handle becomes invalid and all accesses through it
/// fail gracefully.
#[derive(Debug, Clone)]
pub struct FrameAccessor {
    pub(crate) inner: Rc<AccessorInner>,
}

impl FrameAccessor {
    pub(crate) fn new(activation: u64, func: FuncIdx, depth: u32, frame_index: usize) -> Self {
        FrameAccessor {
            inner: Rc::new(AccessorInner {
                activation,
                func,
                depth,
                frame_index: Cell::new(frame_index),
                valid: Cell::new(true),
            }),
        }
    }

    /// `true` while the underlying frame is still live.
    pub fn is_valid(&self) -> bool {
        self.inner.valid.get()
    }

    /// The function this frame executes.
    pub fn func(&self) -> FuncIdx {
        self.inner.func
    }

    /// Call-stack depth of the frame (1 = bottom).
    ///
    /// This is the paper's `depth()` — cheap to answer without walking.
    pub fn depth(&self) -> u32 {
        self.inner.depth
    }

    /// The activation's unique id.
    pub fn activation(&self) -> u64 {
        self.inner.activation
    }
}

impl PartialEq for FrameAccessor {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for FrameAccessor {}

impl std::hash::Hash for FrameAccessor {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (Rc::as_ptr(&self.inner) as usize).hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_pointer_identity() {
        let a = FrameAccessor::new(1, 0, 1, 0);
        let b = a.clone();
        let c = FrameAccessor::new(1, 0, 1, 0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn invalidation_visible_through_clones() {
        let mut frame = Frame {
            func: 0,
            lf: 0,
            base: 0,
            opbase: 0,
            results: 0,
            pc: 0,
            cip: 0,
            tier: Tier::Interp,
            code_version: 0,
            activation: 7,
            accessor: None,
            deopt_requested: false,
        };
        let acc = FrameAccessor::new(7, 0, 1, 0);
        frame.accessor = Some(acc.clone());
        assert!(acc.is_valid());
        frame.invalidate_accessor();
        assert!(!acc.is_valid());
        assert!(frame.accessor.is_none());
    }

    #[test]
    fn metadata_accessors() {
        let a = FrameAccessor::new(42, 3, 5, 4);
        assert_eq!(a.activation(), 42);
        assert_eq!(a.func(), 3);
        assert_eq!(a.depth(), 5);
    }
}
