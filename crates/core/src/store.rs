//! Runtime state owned by a process: linear memory, the function table,
//! globals, and host (imported) functions.

use std::collections::HashMap;
use std::rc::Rc;

use wizard_wasm::module::FuncIdx;
use wizard_wasm::types::{Limits, PAGE_SIZE};

use crate::trap::Trap;
use crate::value::Value;

/// Hard cap on memory size (pages) when a module declares no maximum.
pub const DEFAULT_MAX_PAGES: u32 = 4096; // 256 MiB

/// A linear memory instance.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    bytes: Vec<u8>,
    max_pages: u32,
}

impl Memory {
    /// Creates a memory from its declared limits.
    pub fn new(limits: Limits) -> Memory {
        let max_pages = limits.max.unwrap_or(DEFAULT_MAX_PAGES).min(65536);
        Memory { bytes: vec![0; limits.min as usize * PAGE_SIZE], max_pages }
    }

    /// Current size in pages.
    pub fn pages(&self) -> u32 {
        (self.bytes.len() / PAGE_SIZE) as u32
    }

    /// Current size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` if the memory has zero pages.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Grows by `delta` pages; returns the previous page count, or `-1` if
    /// the request exceeds the maximum.
    pub fn grow(&mut self, delta: u32) -> i32 {
        let old = self.pages();
        let new = u64::from(old) + u64::from(delta);
        if new > u64::from(self.max_pages) {
            return -1;
        }
        self.bytes.resize(new as usize * PAGE_SIZE, 0);
        old as i32
    }

    /// Raw byte view (for monitors and host functions).
    pub fn data(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw byte view.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Reads `N` bytes at `addr + offset` with bounds checking.
    #[inline]
    pub fn read<const N: usize>(&self, addr: u32, offset: u32) -> Result<[u8; N], Trap> {
        let ea = u64::from(addr) + u64::from(offset);
        let end = ea + N as u64;
        if end > self.bytes.len() as u64 {
            return Err(Trap::MemoryOutOfBounds);
        }
        let start = ea as usize;
        Ok(self.bytes[start..start + N].try_into().expect("length checked"))
    }

    /// Writes `N` bytes at `addr + offset` with bounds checking.
    #[inline]
    pub fn write<const N: usize>(
        &mut self,
        addr: u32,
        offset: u32,
        data: [u8; N],
    ) -> Result<(), Trap> {
        let ea = u64::from(addr) + u64::from(offset);
        let end = ea + N as u64;
        if end > self.bytes.len() as u64 {
            return Err(Trap::MemoryOutOfBounds);
        }
        let start = ea as usize;
        self.bytes[start..start + N].copy_from_slice(&data);
        Ok(())
    }

    /// Copies a data segment during instantiation.
    pub fn init(&mut self, offset: u32, data: &[u8]) -> Result<(), Trap> {
        let end = u64::from(offset) + data.len() as u64;
        if end > self.bytes.len() as u64 {
            return Err(Trap::MemoryOutOfBounds);
        }
        self.bytes[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }
}

/// The funcref table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    elems: Vec<Option<FuncIdx>>,
}

impl Table {
    /// Creates a table from its limits.
    pub fn new(limits: Limits) -> Table {
        Table { elems: vec![None; limits.min as usize] }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// The function at `index`, if in range and initialized.
    pub fn get(&self, index: u32) -> Result<FuncIdx, Trap> {
        match self.elems.get(index as usize) {
            Some(Some(f)) => Ok(*f),
            Some(None) => Err(Trap::UndefinedElement),
            None => Err(Trap::UndefinedElement),
        }
    }

    /// Installs an element segment during instantiation.
    pub fn init(&mut self, offset: u32, funcs: &[FuncIdx]) -> Result<(), Trap> {
        let end = u64::from(offset) + funcs.len() as u64;
        if end > self.elems.len() as u64 {
            return Err(Trap::UndefinedElement);
        }
        for (i, f) in funcs.iter().enumerate() {
            self.elems[offset as usize + i] = Some(*f);
        }
        Ok(())
    }
}

/// The state handed to host functions: access to the guest's memory.
#[derive(Debug)]
pub struct HostCtx<'a> {
    /// The guest memory, if the module has one.
    pub memory: Option<&'a mut Memory>,
}

/// A host (imported) function.
pub type HostFn = Rc<dyn Fn(&mut HostCtx<'_>, &[Value]) -> Result<Vec<Value>, Trap>>;

/// Resolves module imports to host implementations at instantiation time.
///
/// # Examples
///
/// ```
/// use wizard_engine::store::Linker;
/// use wizard_engine::value::Value;
///
/// let mut linker = Linker::new();
/// linker.func("env", "print_i32", |_ctx, args| {
///     println!("{:?}", args);
///     Ok(vec![])
/// });
/// ```
#[derive(Clone, Default)]
pub struct Linker {
    funcs: HashMap<(String, String), HostFn>,
    globals: HashMap<(String, String), Value>,
}

impl Linker {
    /// Creates an empty linker.
    pub fn new() -> Linker {
        Linker::default()
    }

    /// Registers a host function under `(module, name)`.
    pub fn func(
        &mut self,
        module: &str,
        name: &str,
        f: impl Fn(&mut HostCtx<'_>, &[Value]) -> Result<Vec<Value>, Trap> + 'static,
    ) -> &mut Self {
        self.funcs.insert((module.into(), name.into()), Rc::new(f));
        self
    }

    /// Registers an imported global's value.
    pub fn global(&mut self, module: &str, name: &str, v: Value) -> &mut Self {
        self.globals.insert((module.into(), name.into()), v);
        self
    }

    /// Looks up a host function.
    pub fn resolve_func(&self, module: &str, name: &str) -> Option<HostFn> {
        self.funcs.get(&(module.to_string(), name.to_string())).cloned()
    }

    /// Looks up an imported global value.
    pub fn resolve_global(&self, module: &str, name: &str) -> Option<Value> {
        self.globals.get(&(module.to_string(), name.to_string())).copied()
    }
}

impl core::fmt::Debug for Linker {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Linker")
            .field("funcs", &self.funcs.keys().collect::<Vec<_>>())
            .field("globals", &self.globals.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_grow_respects_max() {
        let mut m = Memory::new(Limits::bounded(1, 2));
        assert_eq!(m.pages(), 1);
        assert_eq!(m.grow(1), 1);
        assert_eq!(m.pages(), 2);
        assert_eq!(m.grow(1), -1);
        assert_eq!(m.pages(), 2);
    }

    #[test]
    fn memory_bounds_checked_reads_writes() {
        let mut m = Memory::new(Limits::at_least(1));
        m.write::<4>(0, 0, 42u32.to_le_bytes()).unwrap();
        assert_eq!(u32::from_le_bytes(m.read::<4>(0, 0).unwrap()), 42);
        // Last valid 4-byte slot.
        let last = (PAGE_SIZE - 4) as u32;
        assert!(m.write::<4>(last, 0, [0; 4]).is_ok());
        assert_eq!(m.read::<4>(last, 1).unwrap_err(), Trap::MemoryOutOfBounds);
        // addr+offset overflow does not wrap.
        assert_eq!(m.read::<8>(u32::MAX, u32::MAX).unwrap_err(), Trap::MemoryOutOfBounds);
    }

    #[test]
    fn memory_init_bounds() {
        let mut m = Memory::new(Limits::at_least(1));
        assert!(m.init(10, b"abc").is_ok());
        assert_eq!(&m.data()[10..13], b"abc");
        assert!(m.init(PAGE_SIZE as u32 - 1, b"xy").is_err());
    }

    #[test]
    fn table_get_and_init() {
        let mut t = Table::new(Limits::at_least(3));
        assert_eq!(t.get(0).unwrap_err(), Trap::UndefinedElement);
        t.init(1, &[7, 8]).unwrap();
        assert_eq!(t.get(1).unwrap(), 7);
        assert_eq!(t.get(2).unwrap(), 8);
        assert_eq!(t.get(3).unwrap_err(), Trap::UndefinedElement);
        assert!(t.init(2, &[1, 2]).is_err());
    }

    #[test]
    fn linker_resolution() {
        let mut l = Linker::new();
        l.func("env", "f", |_, _| Ok(vec![Value::I32(1)]));
        l.global("env", "g", Value::I64(9));
        assert!(l.resolve_func("env", "f").is_some());
        assert!(l.resolve_func("env", "missing").is_none());
        assert_eq!(l.resolve_global("env", "g"), Some(Value::I64(9)));
    }
}
