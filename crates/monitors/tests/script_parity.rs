//! Report-for-report parity between wizard-script programs and the
//! hand-written zoo monitors, on the Richards benchmark: the scripted
//! hotness / branch / coverage analyses must produce *identical* reports
//! (same title, same sections, same rows, same values, same order) —
//! the acceptance gate for "instrumentation as data".

use wizard_engine::store::Linker;
use wizard_engine::{EngineConfig, Monitor, ProbeKind, Process, Report, Value};
use wizard_monitors::{BranchMonitor, CoverageMonitor, HotnessMonitor};
use wizard_pool::{Job, Pool, PoolConfig};
use wizard_script::ScriptMonitor;

const RICHARDS_LOOPS: i32 = 30;

const HOTNESS: &str = r#"
monitor "hotness"
match * do inc exec[site]
report "top locations" top 20 exec
report "summary" total "total instruction executions" exec
"#;

const BRANCH: &str = r#"
monitor "branch"
match branch when op == br_table || tos != 0 do inc taken[site]
match branch when op != br_table && tos == 0 do inc fall[site]
report "branch profile" ratio "taken" taken / fall
report "summary" total "total branches" taken + fall
"#;

const COVERAGE: &str = r#"
monitor "coverage"
match * once do inc hit[site]
report "per-function" perfunc hit
report "summary" percent "overall %" hit
"#;

/// Runs richards under a monitor, returning its final report.
fn run_with<M: Monitor + 'static>(config: EngineConfig, monitor: M) -> Report {
    let b = wizard_suites::richards_benchmark(RICHARDS_LOOPS);
    let mut p = Process::new(b.module, config, &Linker::new()).expect("richards instantiates");
    let m = p.attach_monitor(monitor).expect("attach");
    p.invoke_export("run", &[Value::I32(b.n)]).expect("runs");
    m.report()
}

fn assert_row_for_row(scripted: &Report, handwritten: &Report) {
    assert_eq!(scripted.title, handwritten.title);
    assert_eq!(
        scripted.sections.len(),
        handwritten.sections.len(),
        "section count: {scripted} vs {handwritten}"
    );
    for (s, h) in scripted.sections.iter().zip(&handwritten.sections) {
        assert_eq!(s.name, h.name);
        assert_eq!(s.rows.len(), h.rows.len(), "row count in [{}]", s.name);
        for (sr, hr) in s.rows.iter().zip(&h.rows) {
            assert_eq!(sr, hr, "row mismatch in [{}]", s.name);
        }
    }
    // Belt and braces: the whole structure compares equal.
    assert_eq!(scripted, handwritten);
}

#[test]
fn scripted_hotness_matches_the_zoo_row_for_row() {
    for config in [EngineConfig::interpreter(), EngineConfig::tiered()] {
        let scripted =
            run_with(config.clone(), ScriptMonitor::from_source(HOTNESS).expect("parses"));
        let handwritten = run_with(config, HotnessMonitor::new());
        assert_row_for_row(&scripted, &handwritten);
    }
}

#[test]
fn scripted_branch_matches_the_zoo_row_for_row() {
    for config in [EngineConfig::interpreter(), EngineConfig::tiered()] {
        let scripted =
            run_with(config.clone(), ScriptMonitor::from_source(BRANCH).expect("parses"));
        let handwritten = run_with(config, BranchMonitor::new());
        assert_row_for_row(&scripted, &handwritten);
    }
}

#[test]
fn scripted_coverage_matches_the_zoo_row_for_row() {
    for config in [EngineConfig::interpreter(), EngineConfig::tiered()] {
        let scripted =
            run_with(config.clone(), ScriptMonitor::from_source(COVERAGE).expect("parses"));
        let handwritten = run_with(config, CoverageMonitor::new());
        assert_row_for_row(&scripted, &handwritten);
    }
}

#[test]
fn counter_only_script_lowers_to_intrinsified_count_probes() {
    let b = wizard_suites::richards_benchmark(RICHARDS_LOOPS);
    let mut p = Process::new(b.module, EngineConfig::jit(), &Linker::new()).expect("instantiates");
    let m = p.attach_monitor(ScriptMonitor::from_source(HOTNESS).expect("parses")).expect("attach");
    let mon = m.borrow();
    let (count, operand, generic) = mon.kind_counts();
    assert!(count > 100, "richards has many instructions");
    assert_eq!((operand, generic), (0, 0), "pure counter script must not need slow paths");
    // The engine's own view agrees at every probed location.
    for l in mon.lowering() {
        assert!(
            p.probe_kinds_at(l.loc.func, l.loc.pc).iter().all(|k| *k == ProbeKind::Count),
            "site {} not intrinsifiable",
            l.loc
        );
    }
}

#[test]
fn branch_script_classification_splits_by_opcode() {
    let b = wizard_suites::richards_benchmark(RICHARDS_LOOPS);
    let mut p = Process::new(b.module, EngineConfig::jit(), &Linker::new()).expect("instantiates");
    let m = p.attach_monitor(ScriptMonitor::from_source(BRANCH).expect("parses")).expect("attach");
    let mon = m.borrow();
    let (_, operand, generic) = mon.kind_counts();
    assert!(operand > 0, "if/br_if sites become operand probes");
    assert_eq!(generic, 0, "the branch rules never need a generic probe");
}

#[test]
fn br_table_sites_fold_to_pure_counters() {
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::{BlockType, ValType::I32};

    // switch (x) { 0, 1, default } — one br_table, no other branches.
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    f.block(BlockType::Empty);
    f.block(BlockType::Empty);
    f.block(BlockType::Empty);
    f.local_get(0).br_table(&[0, 1], 2);
    f.end();
    f.end();
    f.end();
    f.i32_const(7);
    mb.add_func("switch", f);
    let mut p = Process::new(mb.build().unwrap(), EngineConfig::jit(), &Linker::new()).unwrap();

    let m = p.attach_monitor(ScriptMonitor::from_source(BRANCH).expect("parses")).expect("attach");
    {
        let mon = m.borrow();
        // Rule 1 folded to a pure counter at the br_table site; rule 2
        // folded to false there — the only branch site needs no dynamic
        // predicate at all.
        let (count, operand, generic) = mon.kind_counts();
        assert_eq!((count, operand, generic), (1, 0, 0));
        assert_eq!(mon.dropped_sites(), 1, "`op != br_table && tos == 0` proven dead");
        assert!(mon.lowering()[0].residual.is_none());
        assert!(p
            .probe_kinds_at(mon.lowering()[0].loc.func, mon.lowering()[0].loc.pc)
            .iter()
            .all(|k| *k == ProbeKind::Count));
    }
    p.invoke_export("switch", &[Value::I32(1)]).unwrap();
    let r = m.report();
    assert_eq!(r.get("summary").unwrap().count_of("total branches"), Some(1));
}

#[test]
fn script_fleet_merges_like_handwritten_fleet() {
    let b = wizard_suites::richards_benchmark(RICHARDS_LOOPS);
    let factory = wizard_script::monitor_factory(HOTNESS).expect("compiles");

    let run_fleet = |scripted: bool| -> Report {
        let mut pool = Pool::new(PoolConfig {
            shards: 2,
            engine: EngineConfig::builder().fuel_slice(500).build(),
        });
        for k in 0..4 {
            let job = Job::new(format!("r-{k}"), b.module.clone(), "run", vec![Value::I32(b.n)]);
            let job = if scripted {
                job.with_monitor_factory(factory.clone())
            } else {
                job.with_monitor(HotnessMonitor::new)
            };
            pool.submit(job);
        }
        let outcome = pool.run();
        assert!(outcome.all_ok());
        assert!(outcome.stats.suspensions > 0, "fleet really was fuel-sliced");
        outcome.merged_report("hotness").expect("merged report").clone()
    };

    assert_row_for_row(&run_fleet(true), &run_fleet(false));
}
