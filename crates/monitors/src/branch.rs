//! The **Branch** monitor: profiles the direction of all branches
//! (paper §3) — `if`, `br_if` and `br_table` — by observing the
//! top-of-stack condition/index *before* the instruction executes.
//!
//! Its probes are [`ProbeKind::Operand`]: they only need the top-of-stack
//! value, so the JIT can intrinsify them into a direct call without
//! reifying a FrameAccessor (paper §4.4).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use wizard_engine::{
    ClosureProbe, InstrumentationCtx, Location, Monitor, Probe, ProbeBatch, ProbeCtx, ProbeError,
    ProbeKind, Report, Slot,
};
use wizard_wasm::opcodes as op;

use crate::util::{func_label, sites};
use crate::ProbeMode;

/// Per-site branch statistics.
#[derive(Debug, Default)]
pub struct SiteStats {
    /// Times the branch was taken (condition non-zero), or for `br_table`,
    /// total executions.
    pub taken: Cell<u64>,
    /// Times the branch fell through (condition zero).
    pub not_taken: Cell<u64>,
    /// For `br_table`: histogram of selected indices.
    pub targets: RefCell<HashMap<u32, u64>>,
}

/// The operand probe attached at each branch site.
#[derive(Debug)]
struct BranchProbe {
    opcode: u8,
    stats: Rc<SiteStats>,
}

impl BranchProbe {
    fn record(&self, top: Slot) {
        if self.opcode == op::BR_TABLE {
            self.stats.taken.set(self.stats.taken.get() + 1);
            *self.stats.targets.borrow_mut().entry(top.u32()).or_insert(0) += 1;
        } else if top.i32() != 0 {
            self.stats.taken.set(self.stats.taken.get() + 1);
        } else {
            self.stats.not_taken.set(self.stats.not_taken.get() + 1);
        }
    }
}

impl Probe for BranchProbe {
    fn fire(&mut self, ctx: &mut ProbeCtx<'_, '_>) {
        let top = ctx.top_of_stack().expect("branch has a condition operand");
        self.record(top);
    }

    fn kind(&self) -> ProbeKind {
        ProbeKind::Operand
    }

    fn fire_operand(&mut self, _loc: Location, top: Slot) {
        self.record(top);
    }
}

/// Profiles branch directions across the whole module.
#[derive(Debug, Default)]
pub struct BranchMonitor {
    mode: ProbeMode,
    stats: Vec<(Location, u8, Rc<SiteStats>)>,
    global_stats: Rc<RefCell<HashMap<Location, (u64, u64)>>>,
    global_fires: Rc<Cell<u64>>,
    labels: HashMap<u32, String>,
}

impl BranchMonitor {
    /// Creates the local-probe variant.
    pub fn new() -> BranchMonitor {
        BranchMonitor::default()
    }

    /// Creates a variant with an explicit probe mode.
    pub fn with_mode(mode: ProbeMode) -> BranchMonitor {
        BranchMonitor { mode, ..BranchMonitor::default() }
    }

    /// Total branch executions observed.
    pub fn total_branches(&self) -> u64 {
        match self.mode {
            ProbeMode::Local => {
                self.stats.iter().map(|(_, _, s)| s.taken.get() + s.not_taken.get()).sum()
            }
            ProbeMode::Global => self.global_stats.borrow().values().map(|(t, n)| t + n).sum(),
        }
    }

    /// Total probe fires (for the global variant this counts every
    /// instruction executed, matching the paper's fire annotations).
    pub fn total_fires(&self) -> u64 {
        match self.mode {
            ProbeMode::Local => self.total_branches(),
            ProbeMode::Global => self.global_fires.get(),
        }
    }

    /// `(taken, not_taken)` per site, in site order.
    pub fn site_stats(&self) -> Vec<(Location, u64, u64)> {
        match self.mode {
            ProbeMode::Local => {
                self.stats.iter().map(|(l, _, s)| (*l, s.taken.get(), s.not_taken.get())).collect()
            }
            ProbeMode::Global => {
                let mut v: Vec<(Location, u64, u64)> =
                    self.global_stats.borrow().iter().map(|(l, (t, n))| (*l, *t, *n)).collect();
                v.sort_by_key(|(l, _, _)| *l);
                v
            }
        }
    }
}

impl Monitor for BranchMonitor {
    fn name(&self) -> &'static str {
        "branch"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let branch_sites =
            sites(ctx.module(), |i| matches!(i.op, op::IF | op::BR_IF | op::BR_TABLE));
        for (f, _) in &branch_sites {
            self.labels.entry(*f).or_insert_with(|| func_label(ctx.module(), *f));
        }
        match self.mode {
            ProbeMode::Local => {
                let mut batch = ProbeBatch::new();
                for (func, instr) in &branch_sites {
                    let stats = Rc::new(SiteStats::default());
                    let probe = BranchProbe { opcode: instr.op, stats: Rc::clone(&stats) };
                    batch.add_local_val(*func, instr.pc, probe);
                    self.stats.push((Location { func: *func, pc: instr.pc }, instr.op, stats));
                }
                ctx.apply_batch(batch)?;
            }
            ProbeMode::Global => {
                let stats = Rc::clone(&self.global_stats);
                let fires = Rc::clone(&self.global_fires);
                ctx.add_global_probe(ClosureProbe::shared(move |ctx| {
                    fires.set(fires.get() + 1);
                    let opcode = ctx.opcode();
                    if matches!(opcode, op::IF | op::BR_IF | op::BR_TABLE) {
                        let top = ctx.top_of_stack().expect("branch condition");
                        let taken = opcode == op::BR_TABLE || top.i32() != 0;
                        let mut map = stats.borrow_mut();
                        let e = map.entry(ctx.location()).or_insert((0, 0));
                        if taken {
                            e.0 += 1;
                        } else {
                            e.1 += 1;
                        }
                    }
                }))?;
            }
        }
        Ok(())
    }

    fn report(&self) -> Report {
        let mut r = Report::new(self.name());
        let profile = r.section("branch profile");
        for (loc, taken, not_taken) in self.site_stats() {
            if taken + not_taken == 0 {
                continue;
            }
            let label = self
                .labels
                .get(&loc.func)
                .map_or_else(|| format!("func[{}]", loc.func), Clone::clone);
            profile.fraction(format!("{label}+{} taken", loc.pc), taken, taken + not_taken);
        }
        r.section("summary").count("total branches", self.total_branches());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn loop_process(config: EngineConfig) -> Process {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        f.for_range(i, 0, |f| {
            f.nop();
        });
        f.local_get(0);
        mb.add_func("go", f);
        Process::new(mb.build().unwrap(), config, &Linker::new()).unwrap()
    }

    #[test]
    fn counts_taken_and_not_taken() {
        let mut p = loop_process(EngineConfig::interpreter());
        let m = p.attach_monitor(BranchMonitor::new()).unwrap();
        p.invoke_export("go", &[Value::I32(10)]).unwrap();
        // for_range: `br_if 1` (exit check) fires 11 times — taken once.
        let stats = m.borrow().site_stats();
        assert_eq!(stats.len(), 1);
        let (_, taken, not_taken) = stats[0];
        assert_eq!(taken, 1);
        assert_eq!(not_taken, 10);
        assert_eq!(m.borrow().total_branches(), 11);
    }

    #[test]
    fn tiers_and_modes_agree() {
        let mut results = Vec::new();
        for (mode, config) in [
            (ProbeMode::Local, EngineConfig::interpreter()),
            (ProbeMode::Local, EngineConfig::jit()),
            (ProbeMode::Local, EngineConfig::jit_no_intrinsics()),
            (ProbeMode::Global, EngineConfig::interpreter()),
        ] {
            let mut p = loop_process(config);
            let m = p.attach_monitor(BranchMonitor::with_mode(mode)).unwrap();
            p.invoke_export("go", &[Value::I32(7)]).unwrap();
            results.push(m.borrow().site_stats());
        }
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
    }

    #[test]
    fn global_mode_counts_all_instructions_as_fires() {
        let mut p = loop_process(EngineConfig::interpreter());
        let m = p.attach_monitor(BranchMonitor::with_mode(ProbeMode::Global)).unwrap();
        p.invoke_export("go", &[Value::I32(5)]).unwrap();
        let mon = m.borrow();
        assert!(
            mon.total_fires() > mon.total_branches() * 3,
            "global probe fires on every instruction, not only branches"
        );
    }

    #[test]
    fn report_shows_ratios() {
        let mut p = loop_process(EngineConfig::interpreter());
        let m = p.attach_monitor(BranchMonitor::new()).unwrap();
        p.invoke_export("go", &[Value::I32(3)]).unwrap();
        let r = m.report().to_string();
        assert!(r.contains("taken"));
        assert!(r.contains("total branches: 4"));
    }
}
