//! The **Calls** monitor (paper §3): instruments callsites and records
//! statistics on direct calls and the targets of indirect calls. Its
//! output can be used to build a dynamic call graph.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use wizard_engine::{
    ClosureProbe, CountProbe, InstrumentationCtx, Location, Monitor, ProbeBatch, ProbeError, Report,
};
use wizard_wasm::instr::Imm;
use wizard_wasm::opcodes as op;

use crate::util::{func_label, sites};

/// Statistics about one indirect callsite.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndirectSite {
    /// Resolved target histogram: function index → count.
    pub targets: BTreeMap<u32, u64>,
    /// Calls whose table index could not be resolved (about to trap).
    pub unresolved: u64,
}

/// Records direct-call counts per callsite and indirect-call target
/// distributions.
#[derive(Debug, Default)]
pub struct CallsMonitor {
    direct: Vec<(Location, u32, Rc<Cell<u64>>)>,
    indirect: Vec<(Location, Rc<std::cell::RefCell<IndirectSite>>)>,
    labels: HashMap<u32, String>,
}

impl CallsMonitor {
    /// Creates the monitor.
    pub fn new() -> CallsMonitor {
        CallsMonitor::default()
    }

    /// Total calls observed (direct + indirect).
    pub fn total_calls(&self) -> u64 {
        let d: u64 = self.direct.iter().map(|(_, _, c)| c.get()).sum();
        let i: u64 = self
            .indirect
            .iter()
            .map(|(_, s)| {
                let s = s.borrow();
                s.targets.values().sum::<u64>() + s.unresolved
            })
            .sum();
        d + i
    }

    /// Dynamic call-graph edges `(caller, callee, count)` from both direct
    /// and resolved indirect calls.
    pub fn edges(&self) -> Vec<(u32, u32, u64)> {
        let mut acc: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for (loc, callee, c) in &self.direct {
            if c.get() > 0 {
                *acc.entry((loc.func, *callee)).or_insert(0) += c.get();
            }
        }
        for (loc, site) in &self.indirect {
            for (callee, n) in &site.borrow().targets {
                *acc.entry((loc.func, *callee)).or_insert(0) += n;
            }
        }
        acc.into_iter().map(|((a, b), n)| (a, b, n)).collect()
    }

    /// The indirect-call sites and their target histograms.
    pub fn indirect_sites(&self) -> Vec<(Location, IndirectSite)> {
        self.indirect.iter().map(|(l, s)| (*l, s.borrow().clone())).collect()
    }
}

impl Monitor for CallsMonitor {
    fn name(&self) -> &'static str {
        "calls"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let call_sites = sites(ctx.module(), |i| op::is_call(i.op));
        let mut batch = ProbeBatch::new();
        for (func, instr) in &call_sites {
            self.labels.entry(*func).or_insert_with(|| func_label(ctx.module(), *func));
            let loc = Location { func: *func, pc: instr.pc };
            match instr.imm {
                Imm::Idx(callee) => {
                    // Direct call: a plain counter (intrinsifiable).
                    let probe = CountProbe::new();
                    let cell = probe.cell();
                    batch.add_local_val(*func, instr.pc, probe);
                    self.labels.entry(callee).or_insert_with(|| func_label(ctx.module(), callee));
                    self.direct.push((loc, callee, cell));
                }
                Imm::CallIndirect { .. } => {
                    // Indirect call: resolve the table index (top of stack)
                    // to the actual target.
                    let site = Rc::new(std::cell::RefCell::new(IndirectSite::default()));
                    let s = Rc::clone(&site);
                    batch.add_local(
                        *func,
                        instr.pc,
                        ClosureProbe::shared(move |ctx| {
                            let idx = ctx.top_of_stack().expect("table index").u32();
                            let mut st = s.borrow_mut();
                            match ctx.resolve_table(idx) {
                                Some(target) => {
                                    *st.targets.entry(target).or_insert(0) += 1;
                                }
                                None => st.unresolved += 1,
                            }
                        }),
                    );
                    self.indirect.push((loc, site));
                }
                _ => unreachable!("call instruction immediates"),
            }
        }
        ctx.apply_batch(batch)?;
        Ok(())
    }

    fn report(&self) -> Report {
        let mut r = Report::new(self.name());
        let direct = r.section("direct calls");
        for (loc, callee, c) in &self.direct {
            if c.get() == 0 {
                continue;
            }
            let from = &self.labels[&loc.func];
            let to =
                self.labels.get(callee).map_or_else(|| format!("func[{callee}]"), Clone::clone);
            direct.count(format!("{from}+{} -> {to}", loc.pc), c.get());
        }
        let indirect = r.section("indirect callsites");
        for (loc, site) in &self.indirect {
            let from = &self.labels[&loc.func];
            let site = site.borrow();
            let total: u64 = site.targets.values().sum();
            indirect.count(format!("{from}+{} ({} targets)", loc.pc, site.targets.len()), total);
            for (t, n) in &site.targets {
                let to = self.labels.get(t).map_or_else(|| format!("func[{t}]"), Clone::clone);
                indirect.count(format!("    -> {to}"), *n);
            }
        }
        r.section("summary").count("total calls", self.total_calls());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    #[test]
    fn direct_and_indirect_call_statistics() {
        let mut mb = ModuleBuilder::new();
        mb.table(2);
        let mut a = FuncBuilder::new(&[I32], &[I32]);
        a.local_get(0).i32_const(1).i32_add();
        let a = mb.add_private_func("a", a);
        let mut b = FuncBuilder::new(&[I32], &[I32]);
        b.local_get(0).i32_const(2).i32_mul();
        let b = mb.add_private_func("b", b);
        mb.elem(0, &[a, b]);
        let sig = mb.sig(&[I32], &[I32]);
        let mut main = FuncBuilder::new(&[I32], &[I32]);
        let i = main.local(I32);
        let acc = main.local(I32);
        main.for_range(i, 0, |f| {
            // Direct call to a, then indirect alternating between a and b.
            f.local_get(acc).call(a).local_set(acc);
            f.local_get(acc)
                .local_get(i)
                .i32_const(2)
                .i32_rem_u()
                .call_indirect(sig)
                .local_set(acc);
        });
        main.local_get(acc);
        mb.add_func("main", main);
        let m = mb.build().unwrap();
        for config in [EngineConfig::interpreter(), EngineConfig::jit()] {
            let mut p = Process::new(m.clone(), config, &Linker::new()).unwrap();
            let mon = p.attach_monitor(CallsMonitor::new()).unwrap();
            p.invoke_export("main", &[Value::I32(10)]).unwrap();
            assert_eq!(mon.borrow().total_calls(), 20);
            let sites = mon.borrow().indirect_sites();
            assert_eq!(sites.len(), 1);
            // Alternating indices 0,1: five calls each to a and b.
            assert_eq!(sites[0].1.targets[&a], 5);
            assert_eq!(sites[0].1.targets[&b], 5);
            let edges = mon.borrow().edges();
            let main_idx = p.module().export_func("main").unwrap();
            assert!(edges.contains(&(main_idx, a, 15)));
            assert!(edges.contains(&(main_idx, b, 5)));
            assert!(mon.report().to_string().contains("indirect callsites"));
        }
    }
}
