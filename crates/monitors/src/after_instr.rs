//! The **after-instruction** utility (paper §2.6): run M-code *after* an
//! instruction executes, even though the engine only offers fire-before
//! probes — built, like function entry/exit, purely above the probe
//! hierarchy.
//!
//! This implements the paper's third strategy: from within the
//! before-probe, insert a one-shot *global* probe; it fires on the next
//! executed instruction — wherever control went, including through
//! `call_indirect` with its unbounded target set — and removes itself.
//! The paper notes this is only viable because enabling global probes
//! does not deoptimize JIT code (§4.1), which this engine guarantees.

use std::cell::Cell;
use std::rc::Rc;

use wizard_engine::{ClosureProbe, Location, ProbeCtx, ProbeId};

/// From within a firing probe, schedules `callback` to run immediately
/// after the current instruction executes. The callback receives the
/// location *reached* (the instruction about to execute next).
///
/// One-shot: the underlying global probe removes itself after firing.
pub fn run_after_instruction(
    ctx: &mut ProbeCtx<'_, '_>,
    callback: impl FnOnce(&mut ProbeCtx<'_, '_>, Location) + 'static,
) {
    let id_cell: Rc<Cell<Option<ProbeId>>> = Rc::new(Cell::new(None));
    let idc = Rc::clone(&id_cell);
    let mut cb = Some(callback);
    let id = ctx.insert_global_probe(ClosureProbe::shared(move |gctx| {
        if let Some(id) = idc.get() {
            gctx.remove_probe(id);
        }
        if let Some(cb) = cb.take() {
            let loc = gctx.location();
            cb(gctx, loc);
        }
    }));
    id_cell.set(Some(id));
}

#[cfg(test)]
mod tests {
    use std::cell::RefCell;
    use std::rc::Rc;

    use wizard_engine::store::Linker;
    use wizard_engine::{ClosureProbe, EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    use super::*;

    /// Profile the dynamic targets of a `call_indirect` — the paper's
    /// motivating case for after-instruction, since the target set is
    /// unbounded (cannot pre-instrument all destinations).
    #[test]
    fn observes_call_indirect_targets() {
        let mut mb = ModuleBuilder::new();
        mb.table(2);
        let mut a = FuncBuilder::new(&[I32], &[I32]);
        a.local_get(0).i32_const(1).i32_add();
        let a = mb.add_private_func("a", a);
        let mut b = FuncBuilder::new(&[I32], &[I32]);
        b.local_get(0).i32_const(2).i32_mul();
        let b = mb.add_private_func("b", b);
        mb.elem(0, &[a, b]);
        let sig = mb.sig(&[I32], &[I32]);
        let mut main = FuncBuilder::new(&[I32, I32], &[I32]);
        main.local_get(0).local_get(1);
        let ci_pc = main.pc();
        main.call_indirect(sig);
        mb.add_func("dispatch", main);
        let m = mb.build().unwrap();

        let mut p = Process::new(m, EngineConfig::interpreter(), &Linker::new()).unwrap();
        let f = p.module().export_func("dispatch").unwrap();
        let entered: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let e = Rc::clone(&entered);
        p.add_local_probe(
            f,
            ci_pc,
            ClosureProbe::shared(move |ctx| {
                let e2 = Rc::clone(&e);
                run_after_instruction(ctx, move |_gctx, loc| {
                    // The instruction after call_indirect executes inside the
                    // callee: loc.func IS the dynamic target.
                    e2.borrow_mut().push(loc.func);
                });
            }),
        )
        .unwrap();

        assert_eq!(p.invoke(f, &[Value::I32(5), Value::I32(0)]).unwrap(), vec![Value::I32(6)]);
        assert_eq!(p.invoke(f, &[Value::I32(5), Value::I32(1)]).unwrap(), vec![Value::I32(10)]);
        assert_eq!(*entered.borrow(), vec![a, b], "dynamic targets observed");
        assert!(!p.in_global_mode(), "one-shot probes removed themselves");
    }

    /// After-instruction nests: a callback can schedule another one.
    #[test]
    fn after_instruction_chains() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[], &[I32]);
        f.i32_const(1).i32_const(2).i32_add().i32_const(3).i32_add();
        mb.add_func("run", f);
        let m = mb.build().unwrap();
        let mut p = Process::new(m, EngineConfig::interpreter(), &Linker::new()).unwrap();
        let f = p.module().export_func("run").unwrap();
        let pcs: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        let pc2 = Rc::clone(&pcs);
        p.add_local_probe(
            f,
            0,
            ClosureProbe::shared(move |ctx| {
                let pc3 = Rc::clone(&pc2);
                run_after_instruction(ctx, move |gctx, loc| {
                    pc3.borrow_mut().push(loc.pc);
                    let pc4 = Rc::clone(&pc3);
                    run_after_instruction(gctx, move |_g, loc2| {
                        pc4.borrow_mut().push(loc2.pc);
                    });
                });
            }),
        )
        .unwrap();
        assert_eq!(p.invoke(f, &[]).unwrap(), vec![Value::I32(6)]);
        // i32.const 1 is at pc 0 (2 bytes), i32.const 2 at 2, i32.add at 4.
        assert_eq!(*pcs.borrow(), vec![2, 4]);
    }
}
