//! Shared helpers for monitors: enumerating instrumentation sites.

use wizard_wasm::instr::{Instr, InstrIter};
use wizard_wasm::module::{FuncIdx, Module};

/// All instructions of all locally-defined functions matching `pred`,
/// as `(func index, decoded instruction)` pairs in code order.
pub fn sites(module: &Module, pred: impl Fn(&Instr) -> bool) -> Vec<(FuncIdx, Instr)> {
    let n_imp = module.num_imported_funcs();
    let mut out = Vec::new();
    for (i, f) in module.funcs.iter().enumerate() {
        let fidx = n_imp + i as u32;
        for item in InstrIter::new(&f.body.code) {
            let instr = item.expect("module was validated");
            if pred(&instr) {
                out.push((fidx, instr.clone()));
            }
        }
    }
    out
}

/// Every instruction site (the hotness/coverage instrumentation set).
pub fn all_sites(module: &Module) -> Vec<(FuncIdx, Instr)> {
    sites(module, |_| true)
}

/// A human-readable function label: its name if known, else `func[i]`.
pub fn func_label(module: &Module, func: FuncIdx) -> String {
    module.func_name(func).map_or_else(|| format!("func[{func}]"), ToString::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::opcodes as op;
    use wizard_wasm::types::ValType::I32;

    fn module() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        f.for_range(i, 0, |f| {
            f.nop();
        });
        f.local_get(0);
        mb.add_func("m", f);
        mb.build().unwrap()
    }

    #[test]
    fn site_enumeration_and_filtering() {
        let m = module();
        let all = all_sites(&m);
        assert!(all.len() > 10);
        let branches = sites(&m, |i| wizard_wasm::opcodes::is_branch(i.op));
        assert!(!branches.is_empty());
        assert!(branches.iter().all(|(_, i)| op::is_branch(i.op)));
        let loops = sites(&m, |i| i.op == op::LOOP);
        assert_eq!(loops.len(), 1);
    }

    #[test]
    fn func_labels() {
        let m = module();
        assert_eq!(func_label(&m, 0), "m");
        assert_eq!(func_label(&m, 42), "func[42]");
    }
}
