//! `wizard-monitors`: the Monitor Zoo (paper §3).
//!
//! A *monitor* is a self-contained analysis that observes an application's
//! execution through probes. Every monitor here is built purely from the
//! engine's public instrumentation API — global probes, local probes, and
//! the FrameAccessor — demonstrating the paper's thesis that a small, fully
//! programmable primitive supports a wide range of analyses:
//!
//! | Monitor | Mechanism |
//! |---|---|
//! | [`TraceMonitor`] | one global probe |
//! | [`CoverageMonitor`] | self-removing local probe per instruction |
//! | [`LoopMonitor`] | `CountProbe` per loop header |
//! | [`HotnessMonitor`] | `CountProbe` per instruction (or one global probe) |
//! | [`BranchMonitor`] | operand probe per branch (or one global probe) |
//! | [`MemoryMonitor`] | local probe per load/store, FrameAccessor operands |
//! | [`CallsMonitor`] | local probe per callsite, table resolution |
//! | [`CallTreeMonitor`] | the [`entry_exit`] library + wall-clock time |
//! | [`Debugger`] | breakpoints, stepping, frame modification |
//!
//! All monitors implement the engine's lifecycle [`Monitor`] trait:
//! [`Monitor::on_attach`] installs probes through an
//! [`InstrumentationCtx`] (batched, so N insertions cost one invalidation
//! pass), [`Monitor::on_detach`] finalizes shadow state, and
//! [`Monitor::report`] renders a structured [`Report`]. Attach and detach
//! through the process:
//!
//! ```
//! use wizard_engine::store::Linker;
//! use wizard_engine::{EngineConfig, Process, Value};
//! use wizard_monitors::LoopMonitor;
//! use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
//! use wizard_wasm::types::ValType::I32;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let mut f = FuncBuilder::new(&[I32], &[I32]);
//! let i = f.local(I32);
//! f.for_range(i, 0, |f| {
//!     f.nop();
//! });
//! f.local_get(0);
//! mb.add_func("spin", f);
//!
//! let mut p = Process::new(mb.build()?, EngineConfig::tiered(), &Linker::new())?;
//! let loops = p.attach_monitor(LoopMonitor::new())?;
//! p.invoke_export("spin", &[Value::I32(10)])?;
//! assert_eq!(loops.borrow().total(), 11); // entry + 10 backedges
//!
//! // Detach restores the zero-overhead baseline.
//! p.detach_monitor(loops.handle())?;
//! assert_eq!(p.probed_location_count(), 0);
//! assert!(!p.in_global_mode());
//! println!("{}", loops.report());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod after_instr;
pub mod branch;
pub mod calls;
pub mod calltree;
pub mod coverage;
pub mod debugger;
pub mod entry_exit;
pub mod hotness;
pub mod loops;
pub mod memory;
pub mod trace;
pub mod util;

pub use after_instr::run_after_instruction;
pub use branch::BranchMonitor;
pub use calls::CallsMonitor;
pub use calltree::CallTreeMonitor;
pub use coverage::CoverageMonitor;
pub use debugger::Debugger;
pub use hotness::HotnessMonitor;
pub use loops::LoopMonitor;
pub use memory::MemoryMonitor;
pub use trace::TraceMonitor;

// The lifecycle API lives in the engine (monitors are registered on the
// `Process`); re-exported here so analyses depend on one crate.
pub use wizard_engine::{
    InstrumentationCtx, MetricValue, Monitor, MonitorHandle, MonitorRef, ProbeBatch, Report,
};

/// Whether a monitor implements its instrumentation with per-location
/// local probes or a single global probe (the paper's Figure-3 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeMode {
    /// Sparse local probes at the locations of interest.
    #[default]
    Local,
    /// One global probe filtering every executed instruction.
    Global,
}
