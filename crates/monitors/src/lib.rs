//! `wizard-monitors`: the Monitor Zoo (paper §3).
//!
//! A *monitor* is a self-contained analysis that observes an application's
//! execution through probes. Every monitor here is built purely from the
//! engine's public instrumentation API — global probes, local probes, and
//! the FrameAccessor — demonstrating the paper's thesis that a small, fully
//! programmable primitive supports a wide range of analyses:
//!
//! | Monitor | Mechanism |
//! |---|---|
//! | [`TraceMonitor`] | one global probe |
//! | [`CoverageMonitor`] | self-removing local probe per instruction |
//! | [`LoopMonitor`] | `CountProbe` per loop header |
//! | [`HotnessMonitor`] | `CountProbe` per instruction (or one global probe) |
//! | [`BranchMonitor`] | operand probe per branch (or one global probe) |
//! | [`MemoryMonitor`] | local probe per load/store, FrameAccessor operands |
//! | [`CallsMonitor`] | local probe per callsite, table resolution |
//! | [`CallTreeMonitor`] | the [`entry_exit`] library + wall-clock time |
//! | [`Debugger`] | breakpoints, stepping, frame modification |
//!
//! All monitors implement [`Monitor`]: `attach` installs the probes,
//! `report` renders a post-execution report.

#![warn(missing_docs)]

pub mod after_instr;
pub mod branch;
pub mod calls;
pub mod calltree;
pub mod coverage;
pub mod debugger;
pub mod entry_exit;
pub mod hotness;
pub mod loops;
pub mod memory;
pub mod trace;
pub mod util;

pub use after_instr::run_after_instruction;
pub use branch::BranchMonitor;
pub use calls::CallsMonitor;
pub use calltree::CallTreeMonitor;
pub use coverage::CoverageMonitor;
pub use debugger::Debugger;
pub use hotness::HotnessMonitor;
pub use loops::LoopMonitor;
pub use memory::MemoryMonitor;
pub use trace::TraceMonitor;

use wizard_engine::{ProbeError, Process};

/// Whether a monitor implements its instrumentation with per-location
/// local probes or a single global probe (the paper's Figure-3 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeMode {
    /// Sparse local probes at the locations of interest.
    #[default]
    Local,
    /// One global probe filtering every executed instruction.
    Global,
}

/// A self-contained dynamic analysis attachable to a process.
pub trait Monitor {
    /// Installs this monitor's probes into `process`.
    ///
    /// # Errors
    ///
    /// Propagates [`ProbeError`]s from the instrumentation API.
    fn attach(&mut self, process: &mut Process) -> Result<(), ProbeError>;

    /// Renders the post-execution report.
    fn report(&self) -> String;
}

/// Attaches a monitor (convenience free function mirroring Wizard's
/// `--monitors=` flag handling).
///
/// # Errors
///
/// Propagates [`ProbeError`]s from the monitor.
pub fn attach(monitor: &mut dyn Monitor, process: &mut Process) -> Result<(), ProbeError> {
    monitor.attach(process)
}
