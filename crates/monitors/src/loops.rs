//! The **Loop** monitor: counts loop iterations (paper §3) by inserting a
//! [`CountProbe`] at every loop header — "a good example of a
//! counter-heavy analysis".

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

use wizard_engine::{
    CountProbe, InstrumentationCtx, Location, Monitor, ProbeBatch, ProbeError, Report,
};
use wizard_wasm::opcodes as op;

use crate::util::{func_label, sites};

/// Counts executions of every loop header.
#[derive(Debug, Default)]
pub struct LoopMonitor {
    counters: Vec<(Location, Rc<Cell<u64>>)>,
    labels: HashMap<u32, String>,
}

impl LoopMonitor {
    /// Creates the monitor.
    pub fn new() -> LoopMonitor {
        LoopMonitor::default()
    }

    /// Per-loop-header counts, in code order. A header's count is one entry
    /// plus one per backedge, so iterations = count − entries.
    pub fn counts(&self) -> Vec<(Location, u64)> {
        self.counters.iter().map(|(l, c)| (*l, c.get())).collect()
    }

    /// Total loop-header executions.
    pub fn total(&self) -> u64 {
        self.counters.iter().map(|(_, c)| c.get()).sum()
    }
}

impl Monitor for LoopMonitor {
    fn name(&self) -> &'static str {
        "loops"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let loop_sites = sites(ctx.module(), |i| i.op == op::LOOP);
        for (func, _) in &loop_sites {
            self.labels.entry(*func).or_insert_with(|| func_label(ctx.module(), *func));
        }
        let mut batch = ProbeBatch::new();
        for (func, instr) in &loop_sites {
            let probe = CountProbe::new();
            self.counters.push((Location { func: *func, pc: instr.pc }, probe.cell()));
            batch.add_local_val(*func, instr.pc, probe);
        }
        ctx.apply_batch(batch)?;
        Ok(())
    }

    fn report(&self) -> Report {
        let mut r = Report::new(self.name());
        let headers = r.section("loop headers");
        let mut rows = self.counts();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        for (loc, n) in rows {
            let label = self
                .labels
                .get(&loc.func)
                .map_or_else(|| format!("func[{}]", loc.func), Clone::clone);
            headers.count(format!("{label}+{}", loc.pc), n);
        }
        r.section("summary").count("total loop-header executions", self.total());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    #[test]
    fn counts_nested_loops() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let j = f.local(I32);
        f.for_range(i, 0, |f| {
            f.for_range(j, 0, |f| {
                f.nop();
            });
        });
        f.local_get(0);
        mb.add_func("nest", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let m = p.attach_monitor(LoopMonitor::new()).unwrap();
        p.invoke_export("nest", &[Value::I32(4)]).unwrap();
        let counts = m.borrow().counts();
        assert_eq!(counts.len(), 2);
        // Outer loop: entry + 4 backedges = 5. Inner: 4 entries + 16
        // backedges = 20.
        let (outer, inner) = (counts[0].1, counts[1].1);
        assert_eq!(outer.min(inner), 5);
        assert_eq!(outer.max(inner), 20);
        assert!(m.report().to_string().contains("nest+"));
    }
}
