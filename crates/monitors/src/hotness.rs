//! The **Hotness** monitor: counts every instruction executed (paper §3).
//!
//! The local-probe variant inserts a [`CountProbe`] at every instruction —
//! the paper's representative "many simple probes" workload, and the one
//! the JIT fully intrinsifies. The global-probe variant demonstrates
//! emulating local probes with a single global probe (paper §2.1/§5.2) at
//! the cost of an M-state lookup per instruction.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use wizard_engine::{
    ClosureProbe, CountProbe, InstrumentationCtx, Location, Monitor, ProbeBatch, ProbeError, Report,
};

use crate::util::{all_sites, func_label};
use crate::ProbeMode;

/// Counts executions of every instruction.
#[derive(Debug, Default)]
pub struct HotnessMonitor {
    mode: ProbeMode,
    counters: Vec<(Location, Rc<Cell<u64>>)>,
    global_counts: Rc<RefCell<HashMap<Location, u64>>>,
    labels: HashMap<u32, String>,
}

impl HotnessMonitor {
    /// Creates the local-probe variant.
    pub fn new() -> HotnessMonitor {
        HotnessMonitor::default()
    }

    /// Creates a variant with an explicit probe mode.
    pub fn with_mode(mode: ProbeMode) -> HotnessMonitor {
        HotnessMonitor { mode, ..HotnessMonitor::default() }
    }

    /// Total instruction executions observed.
    pub fn total(&self) -> u64 {
        match self.mode {
            ProbeMode::Local => self.counters.iter().map(|(_, c)| c.get()).sum(),
            ProbeMode::Global => self.global_counts.borrow().values().sum(),
        }
    }

    /// Per-location counts, hottest first.
    pub fn counts(&self) -> Vec<(Location, u64)> {
        let mut v: Vec<(Location, u64)> = match self.mode {
            ProbeMode::Local => self.counters.iter().map(|(l, c)| (*l, c.get())).collect(),
            ProbeMode::Global => {
                self.global_counts.borrow().iter().map(|(l, c)| (*l, *c)).collect()
            }
        };
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

impl Monitor for HotnessMonitor {
    fn name(&self) -> &'static str {
        "hotness"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let sites = all_sites(ctx.module());
        for (f, _) in &sites {
            self.labels.entry(*f).or_insert_with(|| func_label(ctx.module(), *f));
        }
        match self.mode {
            ProbeMode::Local => {
                let mut batch = ProbeBatch::new();
                for (func, instr) in &sites {
                    let probe = CountProbe::new();
                    self.counters.push((Location { func: *func, pc: instr.pc }, probe.cell()));
                    batch.add_local_val(*func, instr.pc, probe);
                }
                ctx.apply_batch(batch)?;
            }
            ProbeMode::Global => {
                let counts = Rc::clone(&self.global_counts);
                ctx.add_global_probe(ClosureProbe::shared(move |ctx| {
                    *counts.borrow_mut().entry(ctx.location()).or_insert(0) += 1;
                }))?;
            }
        }
        Ok(())
    }

    fn report(&self) -> Report {
        let mut r = Report::new(self.name());
        let top = r.section("top locations");
        for (loc, n) in self.counts().into_iter().take(20) {
            let label = self
                .labels
                .get(&loc.func)
                .map_or_else(|| format!("func[{}]", loc.func), Clone::clone);
            top.count(format!("{label}+{}", loc.pc), n);
        }
        r.section("summary").count("total instruction executions", self.total());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn sum_process(config: EngineConfig) -> Process {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        f.for_range(i, 0, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
        });
        f.local_get(acc);
        mb.add_func("sum", f);
        Process::new(mb.build().unwrap(), config, &Linker::new()).unwrap()
    }

    #[test]
    fn local_and_global_variants_agree() {
        let mut totals = Vec::new();
        for mode in [ProbeMode::Local, ProbeMode::Global] {
            let mut p = sum_process(EngineConfig::interpreter());
            let m = p.attach_monitor(HotnessMonitor::with_mode(mode)).unwrap();
            p.invoke_export("sum", &[Value::I32(25)]).unwrap();
            totals.push(m.borrow().total());
        }
        assert_eq!(totals[0], totals[1], "local and global hotness must agree");
        assert!(totals[0] > 100);
    }

    #[test]
    fn intrinsified_jit_matches_interpreter() {
        let mut totals = Vec::new();
        for config in
            [EngineConfig::interpreter(), EngineConfig::jit(), EngineConfig::jit_no_intrinsics()]
        {
            let mut p = sum_process(config);
            let m = p.attach_monitor(HotnessMonitor::new()).unwrap();
            p.invoke_export("sum", &[Value::I32(25)]).unwrap();
            totals.push(m.borrow().total());
        }
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[0], totals[2]);
    }

    #[test]
    fn report_lists_hot_locations() {
        let mut p = sum_process(EngineConfig::interpreter());
        let m = p.attach_monitor(HotnessMonitor::new()).unwrap();
        p.invoke_export("sum", &[Value::I32(5)]).unwrap();
        let r = m.report().to_string();
        assert!(r.contains("sum+"));
        assert!(r.contains("total instruction executions"));
        let counts = m.borrow().counts();
        assert!(counts[0].1 >= counts.last().unwrap().1, "sorted descending");
    }

    #[test]
    fn detach_and_reattach_round_trip() {
        let mut p = sum_process(EngineConfig::interpreter());
        let m1 = p.attach_monitor(HotnessMonitor::new()).unwrap();
        p.invoke_export("sum", &[Value::I32(10)]).unwrap();
        let first = m1.borrow().total();
        assert!(first > 0);
        p.detach_monitor(m1.handle()).unwrap();
        assert_eq!(p.probed_location_count(), 0, "zero-overhead baseline restored");
        p.invoke_export("sum", &[Value::I32(10)]).unwrap();
        assert_eq!(m1.borrow().total(), first, "detached monitor observes nothing");

        // A fresh monitor can be attached to the same process afterwards.
        let m2 = p.attach_monitor(HotnessMonitor::new()).unwrap();
        p.invoke_export("sum", &[Value::I32(10)]).unwrap();
        assert_eq!(m2.borrow().total(), first, "same workload, same counts");
    }
}
