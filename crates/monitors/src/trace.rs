//! The **Trace** monitor (paper §3): prints each instruction as it
//! executes. "Wizard already offers the perfect mechanism: the global
//! probe" — this is one global probe using the standard probe context,
//! nothing engine-special.

use std::cell::RefCell;
use std::rc::Rc;

use wizard_engine::{ClosureProbe, InstrumentationCtx, Monitor, ProbeError, Report};
use wizard_wasm::opcodes as op;

/// Records (and optionally prints) every executed instruction.
#[derive(Debug)]
pub struct TraceMonitor {
    lines: Rc<RefCell<Vec<String>>>,
    count: Rc<RefCell<u64>>,
    max_lines: usize,
}

impl Default for TraceMonitor {
    fn default() -> TraceMonitor {
        TraceMonitor::new(100_000)
    }
}

impl TraceMonitor {
    /// Creates a trace monitor retaining at most `max_lines` lines (the
    /// event *count* is always exact).
    pub fn new(max_lines: usize) -> TraceMonitor {
        TraceMonitor {
            lines: Rc::new(RefCell::new(Vec::new())),
            count: Rc::new(RefCell::new(0)),
            max_lines,
        }
    }

    /// The retained trace lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines.borrow().clone()
    }

    /// Total instructions traced.
    pub fn count(&self) -> u64 {
        *self.count.borrow()
    }
}

impl Monitor for TraceMonitor {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let lines = Rc::clone(&self.lines);
        let count = Rc::clone(&self.count);
        let max = self.max_lines;
        ctx.add_global_probe(ClosureProbe::shared(move |ctx| {
            *count.borrow_mut() += 1;
            let mut lines = lines.borrow_mut();
            if lines.len() < max {
                let loc = ctx.location();
                let opcode = ctx.opcode();
                let depth = ctx.depth();
                lines.push(format!(
                    "{:indent$}func[{}]+{}: {}",
                    "",
                    loc.func,
                    loc.pc,
                    op::name(opcode),
                    indent = (depth as usize - 1) * 2,
                ));
            }
        }))?;
        Ok(())
    }

    fn report(&self) -> Report {
        let mut r = Report::new(self.name());
        let trace = r.section("trace");
        for (i, line) in self.lines.borrow().iter().enumerate() {
            trace.text(format!("{i:>6}"), line.clone());
        }
        r.section("summary").count("instructions traced", self.count());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    #[test]
    fn traces_instructions_with_call_indentation() {
        let mut mb = ModuleBuilder::new();
        let mut callee = FuncBuilder::new(&[I32], &[I32]);
        callee.local_get(0).i32_const(1).i32_add();
        let callee = mb.add_private_func("inc", callee);
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).call(callee);
        mb.add_func("main", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let t = p.attach_monitor(TraceMonitor::default()).unwrap();
        p.invoke_export("main", &[Value::I32(1)]).unwrap();
        let lines = t.borrow().lines();
        assert!(t.borrow().count() >= 6);
        assert!(lines.iter().any(|l| l.contains("call")));
        assert!(lines.iter().any(|l| l.starts_with("  ")), "callee lines indented");
        assert!(t.report().to_string().contains("instructions traced"));
    }

    #[test]
    fn line_cap_respected_but_count_exact() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[]);
        let i = f.local(I32);
        f.for_range(i, 0, |f| {
            f.nop();
        });
        mb.add_func("spin", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let t = p.attach_monitor(TraceMonitor::new(10)).unwrap();
        p.invoke_export("spin", &[Value::I32(100)]).unwrap();
        assert_eq!(t.borrow().lines().len(), 10);
        assert!(t.borrow().count() > 500);
    }

    #[test]
    fn detach_leaves_global_mode() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[], &[]);
        f.nop();
        mb.add_func("noop", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let t = p.attach_monitor(TraceMonitor::default()).unwrap();
        assert!(p.in_global_mode());
        p.invoke_export("noop", &[]).unwrap();
        p.detach_monitor(t.handle()).unwrap();
        assert!(!p.in_global_mode(), "detach switches the dispatch table back");
        let before = t.borrow().count();
        p.invoke_export("noop", &[]).unwrap();
        assert_eq!(t.borrow().count(), before, "no events after detach");
    }
}
