//! The **Trace** monitor (paper §3): prints each instruction as it
//! executes. "Wizard already offers the perfect mechanism: the global
//! probe" — this is one global probe using the standard probe context,
//! nothing engine-special.
//!
//! The full line stream goes to a [`TraceSink`] (in-memory by default;
//! file or channel via [`TraceMonitor::with_sink`]), so traces are no
//! longer truncated at a line cap — only the in-memory *preview* window
//! used by [`TraceMonitor::lines`] and the report is bounded.

use std::cell::RefCell;
use std::io;
use std::rc::Rc;

use wizard_engine::{ClosureProbe, InstrumentationCtx, Monitor, ProbeError, Process, Report};
use wizard_trace::{MemorySink, TraceSink};
use wizard_wasm::opcodes as op;

/// Records (and optionally prints) every executed instruction.
pub struct TraceMonitor {
    lines: Rc<RefCell<Vec<String>>>,
    count: Rc<RefCell<u64>>,
    preview: usize,
    sink: Rc<RefCell<Box<dyn TraceSink>>>,
    memory: Option<MemorySink>,
    sink_error: Rc<RefCell<Option<io::Error>>>,
}

impl Default for TraceMonitor {
    fn default() -> TraceMonitor {
        TraceMonitor::new(100_000)
    }
}

impl TraceMonitor {
    /// Creates a trace monitor retaining at most `preview` lines in
    /// memory for [`TraceMonitor::lines`] / the report. The *complete*
    /// stream — every line, uncapped — goes to the sink (an in-memory
    /// one here; see [`TraceMonitor::with_sink`]), and the event count
    /// is always exact.
    pub fn new(preview: usize) -> TraceMonitor {
        let memory = MemorySink::new();
        TraceMonitor {
            lines: Rc::new(RefCell::new(Vec::new())),
            count: Rc::new(RefCell::new(0)),
            preview,
            sink: Rc::new(RefCell::new(Box::new(memory.clone()) as Box<dyn TraceSink>)),
            memory: Some(memory),
            sink_error: Rc::new(RefCell::new(None)),
        }
    }

    /// As [`TraceMonitor::new`], but streaming the full trace to `sink`
    /// (e.g. a `FileSink` for traces too big for memory).
    pub fn with_sink(preview: usize, sink: Box<dyn TraceSink>) -> TraceMonitor {
        TraceMonitor {
            lines: Rc::new(RefCell::new(Vec::new())),
            count: Rc::new(RefCell::new(0)),
            preview,
            sink: Rc::new(RefCell::new(sink)),
            memory: None,
            sink_error: Rc::new(RefCell::new(None)),
        }
    }

    /// The retained preview lines (at most the `preview` budget).
    pub fn lines(&self) -> Vec<String> {
        self.lines.borrow().clone()
    }

    /// Total instructions traced (always exact, independent of the
    /// preview budget).
    pub fn count(&self) -> u64 {
        *self.count.borrow()
    }

    /// The complete streamed trace text, for monitors built with
    /// [`TraceMonitor::new`] (external sinks return `None`).
    pub fn streamed_text(&self) -> Option<String> {
        self.memory.as_ref().map(|m| String::from_utf8_lossy(&m.data()).into_owned())
    }

    /// The first sink write error, if the stream failed mid-trace.
    pub fn sink_error(&self) -> Option<String> {
        self.sink_error.borrow().as_ref().map(io::Error::to_string)
    }
}

impl Monitor for TraceMonitor {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let lines = Rc::clone(&self.lines);
        let count = Rc::clone(&self.count);
        let preview = self.preview;
        let sink = Rc::clone(&self.sink);
        let sink_error = Rc::clone(&self.sink_error);
        ctx.add_global_probe(ClosureProbe::shared(move |ctx| {
            *count.borrow_mut() += 1;
            let loc = ctx.location();
            let opcode = ctx.opcode();
            let depth = ctx.depth();
            let line = format!(
                "{:indent$}func[{}]+{}: {}",
                "",
                loc.func,
                loc.pc,
                op::name(opcode),
                indent = (depth as usize - 1) * 2,
            );
            let mut err = sink_error.borrow_mut();
            if err.is_none() {
                let mut sink = sink.borrow_mut();
                if let Err(e) = sink.write(line.as_bytes()).and_then(|()| sink.write(b"\n")) {
                    *err = Some(e);
                }
            }
            let mut lines = lines.borrow_mut();
            if lines.len() < preview {
                lines.push(line);
            }
        }))?;
        Ok(())
    }

    fn on_detach(&mut self, _process: &mut Process) {
        let mut err = self.sink_error.borrow_mut();
        if err.is_none() {
            if let Err(e) = self.sink.borrow_mut().flush() {
                *err = Some(e);
            }
        }
    }

    fn report(&self) -> Report {
        let mut r = Report::new(self.name());
        let trace = r.section("trace");
        for (i, line) in self.lines.borrow().iter().enumerate() {
            trace.text(format!("{i:>6}"), line.clone());
        }
        let summary = r.section("summary");
        summary.count("instructions traced", self.count());
        if let Some(e) = self.sink_error() {
            summary.text("sink error", e);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    #[test]
    fn traces_instructions_with_call_indentation() {
        let mut mb = ModuleBuilder::new();
        let mut callee = FuncBuilder::new(&[I32], &[I32]);
        callee.local_get(0).i32_const(1).i32_add();
        let callee = mb.add_private_func("inc", callee);
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).call(callee);
        mb.add_func("main", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let t = p.attach_monitor(TraceMonitor::default()).unwrap();
        p.invoke_export("main", &[Value::I32(1)]).unwrap();
        let lines = t.borrow().lines();
        assert!(t.borrow().count() >= 6);
        assert!(lines.iter().any(|l| l.contains("call")));
        assert!(lines.iter().any(|l| l.starts_with("  ")), "callee lines indented");
        assert!(t.report().to_string().contains("instructions traced"));
    }

    #[test]
    fn preview_capped_but_stream_and_count_complete() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[]);
        let i = f.local(I32);
        f.for_range(i, 0, |f| {
            f.nop();
        });
        mb.add_func("spin", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let t = p.attach_monitor(TraceMonitor::new(10)).unwrap();
        p.invoke_export("spin", &[Value::I32(100)]).unwrap();
        let mon = t.borrow();
        assert_eq!(mon.lines().len(), 10, "preview window is bounded");
        assert!(mon.count() > 500);
        // The sink got every line — nothing was truncated.
        let text = mon.streamed_text().expect("default sink is in-memory");
        assert_eq!(text.lines().count() as u64, mon.count());
        assert_eq!(text.lines().take(10).map(str::to_owned).collect::<Vec<_>>(), mon.lines());
        assert!(mon.sink_error().is_none());
    }

    #[test]
    fn external_sink_receives_full_stream() {
        let sink = MemorySink::new();
        let handle = sink.handle();
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[], &[]);
        f.nop();
        mb.add_func("noop", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let t = p.attach_monitor(TraceMonitor::with_sink(1, Box::new(sink))).unwrap();
        p.invoke_export("noop", &[]).unwrap();
        p.detach_monitor(t.handle()).unwrap();
        let mon = t.borrow();
        assert_eq!(mon.lines().len(), 1, "preview keeps one line");
        assert!(mon.streamed_text().is_none(), "external sinks are not readable here");
        let text = String::from_utf8(handle.borrow().clone()).unwrap();
        assert_eq!(text.lines().count() as u64, mon.count());
        assert!(text.contains("nop"));
    }

    #[test]
    fn detach_leaves_global_mode() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[], &[]);
        f.nop();
        mb.add_func("noop", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let t = p.attach_monitor(TraceMonitor::default()).unwrap();
        assert!(p.in_global_mode());
        p.invoke_export("noop", &[]).unwrap();
        p.detach_monitor(t.handle()).unwrap();
        assert!(!p.in_global_mode(), "detach switches the dispatch table back");
        let before = t.borrow().count();
        p.invoke_export("noop", &[]).unwrap();
        assert_eq!(t.borrow().count(), before, "no events after detach");
    }
}
