//! The **Coverage** monitor (paper §3): inserts a local probe at every
//! instruction which, when fired, records coverage and *removes itself* —
//! so executed paths become probe-free and JIT code quality asymptotically
//! approaches zero overhead. The canonical user of dynamic probe removal.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;

use wizard_engine::{
    ClosureProbe, InstrumentationCtx, Location, Monitor, ProbeBatch, ProbeError, ProbeId, Report,
};

use crate::util::{all_sites, func_label};

/// Records which instructions executed at least once.
#[derive(Debug, Default)]
pub struct CoverageMonitor {
    covered: Rc<RefCell<HashSet<Location>>>,
    total_per_func: BTreeMap<u32, usize>,
    labels: BTreeMap<u32, String>,
}

impl CoverageMonitor {
    /// Creates the monitor.
    pub fn new() -> CoverageMonitor {
        CoverageMonitor::default()
    }

    /// The set of covered locations.
    pub fn covered(&self) -> HashSet<Location> {
        self.covered.borrow().clone()
    }

    /// `(covered, total)` instruction counts per function.
    pub fn per_function(&self) -> BTreeMap<u32, (usize, usize)> {
        let covered = self.covered.borrow();
        let mut out = BTreeMap::new();
        for (func, total) in &self.total_per_func {
            let c = covered.iter().filter(|l| l.func == *func).count();
            out.insert(*func, (c, *total));
        }
        out
    }

    /// Overall coverage ratio in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        let total: usize = self.total_per_func.values().sum();
        if total == 0 {
            return 1.0;
        }
        self.covered.borrow().len() as f64 / total as f64
    }
}

impl Monitor for CoverageMonitor {
    fn name(&self) -> &'static str {
        "coverage"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let sites = all_sites(ctx.module());
        for (func, _) in &sites {
            *self.total_per_func.entry(*func).or_insert(0) += 1;
            self.labels.entry(*func).or_insert_with(|| func_label(ctx.module(), *func));
        }
        // One probe per instruction: batched, so the whole set costs a
        // single invalidation pass. Ids come back in queue order and are
        // fed to the self-removal cells afterwards.
        let mut batch = ProbeBatch::new();
        let mut id_cells: Vec<Rc<Cell<Option<ProbeId>>>> = Vec::with_capacity(sites.len());
        for (func, instr) in &sites {
            let covered = Rc::clone(&self.covered);
            let id_cell: Rc<Cell<Option<ProbeId>>> = Rc::new(Cell::new(None));
            let idc = Rc::clone(&id_cell);
            batch.add_local(
                *func,
                instr.pc,
                ClosureProbe::shared(move |ctx| {
                    covered.borrow_mut().insert(ctx.location());
                    // Fire once, then remove ourselves: no further
                    // overhead at this location (paper §3, Coverage).
                    if let Some(id) = idc.get() {
                        ctx.remove_probe(id);
                    }
                }),
            );
            id_cells.push(id_cell);
        }
        let ids = ctx.apply_batch(batch)?;
        for (cell, id) in id_cells.iter().zip(ids) {
            cell.set(Some(id));
        }
        Ok(())
    }

    fn report(&self) -> Report {
        let mut r = Report::new(self.name());
        let per_func = r.section("per-function");
        for (func, (covered, total)) in self.per_function() {
            per_func.fraction(&self.labels[&func], covered as u64, total as u64);
        }
        r.section("summary").float("overall %", 100.0 * self.ratio());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::{BlockType, ValType::I32};

    fn process(config: EngineConfig) -> Process {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).if_(BlockType::Value(I32));
        f.i32_const(1);
        f.else_();
        f.i32_const(2);
        f.end();
        mb.add_func("cond", f);
        let mut g = FuncBuilder::new(&[], &[]);
        g.nop();
        mb.add_func("never_called", g);
        Process::new(mb.build().unwrap(), config, &Linker::new()).unwrap()
    }

    #[test]
    fn partial_coverage_and_probe_removal() {
        let mut p = process(EngineConfig::interpreter());
        let m = p.attach_monitor(CoverageMonitor::new()).unwrap();
        let sites_before = p.probed_location_count();
        assert!(sites_before > 5);
        p.invoke_export("cond", &[Value::I32(1)]).unwrap();
        // Only the then-branch is covered; else-branch and never_called
        // remain uncovered.
        let r1 = m.borrow().ratio();
        assert!(r1 > 0.0 && r1 < 1.0);
        // Fired probes removed themselves.
        assert!(p.probed_location_count() < sites_before);
        // Taking the other path increases coverage.
        p.invoke_export("cond", &[Value::I32(0)]).unwrap();
        assert!(m.borrow().ratio() > r1);
        let per = m.borrow().per_function();
        assert_eq!(per[&1].0, 0, "never_called has zero coverage");
        assert!(m.report().to_string().contains("never_called"));
    }

    #[test]
    fn full_coverage_in_jit_mode() {
        let mut p = process(EngineConfig::jit());
        let m = p.attach_monitor(CoverageMonitor::new()).unwrap();
        p.invoke_export("cond", &[Value::I32(1)]).unwrap();
        p.invoke_export("cond", &[Value::I32(0)]).unwrap();
        p.invoke_export("never_called", &[]).unwrap();
        assert!((m.borrow().ratio() - 1.0).abs() < f64::EPSILON, "all paths covered");
        assert_eq!(p.probed_location_count(), 0, "all probes removed themselves");
    }

    #[test]
    fn batched_attach_costs_one_invalidation_pass() {
        let mut p = process(EngineConfig::interpreter());
        assert_eq!(p.stats().invalidation_passes, 0);
        let m = p.attach_monitor(CoverageMonitor::new()).unwrap();
        assert!(p.probed_location_count() > 5, "many probes installed");
        assert_eq!(p.stats().invalidation_passes, 1, "but one invalidation pass");
        p.detach_monitor(m.handle()).unwrap();
        assert_eq!(p.probed_location_count(), 0);
    }
}
