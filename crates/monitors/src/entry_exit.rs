//! Function entry/exit instrumentation built *above* probes (paper §2.5).
//!
//! The engine offers no entry/exit hooks; this library derives them from
//! local probes, handling the paper's tricky cases:
//!
//! * a function beginning with a `loop`: backedges re-reach pc 0, so the
//!   entry probe distinguishes re-entry from backedge using *FrameAccessor
//!   identity* (strategy 1 in the paper);
//! * exits via `return`, via the final `end`, and via branches that target
//!   the function-level label (checking the condition/index operand to
//!   know whether a conditional branch actually exits);
//! * frames unwound by traps: stale shadow-stack entries are detected by
//!   accessor invalidation and drained lazily.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use wizard_engine::{ClosureProbe, FrameAccessor, InstrumentationCtx, ProbeBatch, ProbeError};
use wizard_wasm::instr::InstrIter;
use wizard_wasm::module::FuncIdx;
use wizard_wasm::opcodes as op;
use wizard_wasm::validate::{validate, SideEntry};

/// Callbacks invoked on function entry and exit with `(func, depth)`.
pub struct Callbacks {
    /// Called when a new activation of a function begins.
    pub on_entry: Box<dyn FnMut(FuncIdx, u32)>,
    /// Called when an activation ends (including trap unwinds, drained
    /// lazily at the next entry event or an explicit [`EntryExit::drain`]).
    pub on_exit: Box<dyn FnMut(FuncIdx, u32)>,
}

#[derive(Default)]
struct Shadow {
    stack: Vec<(FrameAccessor, FuncIdx)>,
}

/// Handle to installed entry/exit instrumentation.
pub struct EntryExit {
    shadow: Rc<RefCell<Shadow>>,
    callbacks: Rc<RefCell<Callbacks>>,
}

impl EntryExit {
    /// Installs entry/exit instrumentation on every locally-defined
    /// function of the process behind `ctx`. All probes — one entry probe
    /// per function plus one per exit point — are committed as a single
    /// [`ProbeBatch`] (one invalidation pass), and are recorded against
    /// the attaching monitor's handle for removal at detach.
    ///
    /// # Errors
    ///
    /// Propagates [`ProbeError`]s from probe insertion.
    pub fn attach(
        ctx: &mut InstrumentationCtx<'_>,
        on_entry: impl FnMut(FuncIdx, u32) + 'static,
        on_exit: impl FnMut(FuncIdx, u32) + 'static,
    ) -> Result<EntryExit, ProbeError> {
        let shadow = Rc::new(RefCell::new(Shadow::default()));
        let callbacks = Rc::new(RefCell::new(Callbacks {
            on_entry: Box::new(on_entry),
            on_exit: Box::new(on_exit),
        }));
        // Re-validate to get branch side tables (cheap, and keeps this
        // library independent of engine internals).
        let meta = validate(ctx.module()).expect("process module is valid");
        let n_imp = ctx.module().num_imported_funcs();
        let mut plans: Vec<(FuncIdx, u32, ExitKind)> = Vec::new();
        let mut entries: Vec<FuncIdx> = Vec::new();
        for (i, f) in ctx.module().funcs.iter().enumerate() {
            let func = n_imp + i as u32;
            let code_len = f.body.code.len() as u32;
            let fmeta = &meta.funcs[i];
            entries.push(func);
            let mut last_pc = 0;
            for item in InstrIter::new(&f.body.code) {
                let instr = item.expect("validated");
                last_pc = instr.pc;
                match instr.op {
                    op::RETURN => plans.push((func, instr.pc, ExitKind::Always)),
                    op::BR => {
                        if let Some(SideEntry::Br(t)) = fmeta.side.get(&instr.pc) {
                            if t.target_pc == code_len {
                                plans.push((func, instr.pc, ExitKind::Always));
                            }
                        }
                    }
                    op::BR_IF => {
                        if let Some(SideEntry::Br(t)) = fmeta.side.get(&instr.pc) {
                            if t.target_pc == code_len {
                                plans.push((func, instr.pc, ExitKind::IfNonZero));
                            }
                        }
                    }
                    op::BR_TABLE => {
                        if let Some(SideEntry::Table(ts)) = fmeta.side.get(&instr.pc) {
                            let exits: Vec<bool> =
                                ts.iter().map(|t| t.target_pc == code_len).collect();
                            if exits.iter().any(|e| *e) {
                                plans.push((func, instr.pc, ExitKind::TableIndex(exits)));
                            }
                        }
                    }
                    _ => {}
                }
            }
            // The final `end` is the implicit return point.
            plans.push((func, last_pc, ExitKind::Always));
        }
        let ee = EntryExit { shadow, callbacks };
        let mut batch = ProbeBatch::new();
        for func in entries {
            let shadow = Rc::clone(&ee.shadow);
            let callbacks = Rc::clone(&ee.callbacks);
            batch.add_local(
                func,
                0,
                ClosureProbe::shared(move |ctx| {
                    let acc = ctx.accessor();
                    let mut sh = shadow.borrow_mut();
                    drain_invalid(&mut sh, &callbacks);
                    if sh.stack.last().is_some_and(|(top, _)| *top == acc) {
                        // Backedge of a loop starting at pc 0, or a probe
                        // re-fire: not a new activation.
                        return;
                    }
                    sh.stack.push((acc, func));
                    let depth = sh.stack.len() as u32;
                    drop(sh);
                    (callbacks.borrow_mut().on_entry)(func, depth);
                }),
            );
        }
        for (func, pc, kind) in plans {
            let shadow = Rc::clone(&ee.shadow);
            let callbacks = Rc::clone(&ee.callbacks);
            batch.add_local(
                func,
                pc,
                ClosureProbe::shared(move |ctx| {
                    let exits = match &kind {
                        ExitKind::Always => true,
                        ExitKind::IfNonZero => ctx.top_of_stack().is_some_and(|s| s.i32() != 0),
                        ExitKind::TableIndex(exits) => {
                            let idx = ctx.top_of_stack().map_or(0, |s| s.u32()) as usize;
                            exits[idx.min(exits.len() - 1)]
                        }
                    };
                    if !exits {
                        return;
                    }
                    let acc = ctx.accessor();
                    let mut sh = shadow.borrow_mut();
                    if sh.stack.last().is_some_and(|(top, _)| *top == acc) {
                        let (_, f) = sh.stack.pop().expect("non-empty");
                        let depth = sh.stack.len() as u32 + 1;
                        drop(sh);
                        (callbacks.borrow_mut().on_exit)(f, depth);
                    }
                }),
            );
        }
        ctx.apply_batch(batch)?;
        Ok(ee)
    }

    /// Drains shadow-stack entries whose frames were unwound by a trap,
    /// firing their exit callbacks. Call after an invocation that trapped.
    pub fn drain(&self) {
        let mut sh = self.shadow.borrow_mut();
        drain_invalid(&mut sh, &self.callbacks);
    }

    /// Current shadow-stack depth (0 between invocations).
    pub fn depth(&self) -> usize {
        self.shadow.borrow().stack.len()
    }
}

enum ExitKind {
    Always,
    IfNonZero,
    TableIndex(Vec<bool>),
}

fn drain_invalid(sh: &mut Shadow, callbacks: &Rc<RefCell<Callbacks>>) {
    while sh.stack.last().is_some_and(|(acc, _)| !acc.is_valid()) {
        let (_, f) = sh.stack.pop().expect("non-empty");
        let depth = sh.stack.len() as u32 + 1;
        (callbacks.borrow_mut().on_exit)(f, depth);
    }
}

/// Convenience: counts entries/exits per function.
#[derive(Debug, Clone, Default)]
pub struct EntryExitCounts {
    /// Entry counts per function.
    pub entries: HashMap<FuncIdx, u64>,
    /// Exit counts per function.
    pub exits: HashMap<FuncIdx, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Trap, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::BlockType;
    use wizard_wasm::types::ValType::I32;

    fn counted(process: &mut Process) -> (Rc<RefCell<EntryExitCounts>>, EntryExit) {
        let counts = Rc::new(RefCell::new(EntryExitCounts::default()));
        let (c1, c2) = (Rc::clone(&counts), Rc::clone(&counts));
        let mut ctx = process.instrumentation();
        let ee = EntryExit::attach(
            &mut ctx,
            move |f, _| *c1.borrow_mut().entries.entry(f).or_insert(0) += 1,
            move |f, _| *c2.borrow_mut().exits.entry(f).or_insert(0) += 1,
        )
        .unwrap();
        (counts, ee)
    }

    #[test]
    fn balanced_entries_and_exits_for_recursion() {
        let mut mb = ModuleBuilder::new();
        let fib = mb.declare_func("fib", &[I32], &[I32]);
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(2).i32_lt_s().if_(BlockType::Value(I32));
        f.local_get(0);
        f.else_();
        f.local_get(0).i32_const(1).i32_sub().call(fib);
        f.local_get(0).i32_const(2).i32_sub().call(fib);
        f.i32_add();
        f.end();
        mb.define_func(fib, f);
        mb.export("fib", wizard_wasm::types::ExternKind::Func, fib);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let (counts, ee) = counted(&mut p);
        p.invoke_export("fib", &[Value::I32(10)]).unwrap();
        ee.drain();
        let c = counts.borrow();
        // fib(10) makes 177 activations.
        assert_eq!(c.entries[&fib], 177);
        assert_eq!(c.exits[&fib], 177);
        assert_eq!(ee.depth(), 0);
    }

    #[test]
    fn function_starting_with_loop_counts_one_entry() {
        // The paper's tricky case: entry probe at pc 0 where pc 0 is a
        // loop header reached by every backedge.
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        // Loop at pc 0: decrement arg until zero.
        f.loop_(BlockType::Empty);
        f.local_get(0).i32_const(1).i32_sub().local_set(0);
        f.local_get(i).i32_const(1).i32_add().local_set(i);
        f.local_get(0).i32_const(0).i32_gt_s().br_if(0);
        f.end();
        f.local_get(i);
        mb.add_func("spin", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let (counts, ee) = counted(&mut p);
        let r = p.invoke_export("spin", &[Value::I32(50)]).unwrap();
        assert_eq!(r, vec![Value::I32(50)]);
        ee.drain();
        let c = counts.borrow();
        let func = p.module().export_func("spin").unwrap();
        assert_eq!(c.entries[&func], 1, "50 backedges must not count as entries");
        assert_eq!(c.exits[&func], 1);
    }

    #[test]
    fn exit_via_conditional_branch_to_function_end() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[]);
        // br_if 0 at function level: exits when arg non-zero.
        f.local_get(0).br_if(0);
        f.nop();
        mb.add_func("maybe_exit", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let (counts, ee) = counted(&mut p);
        p.invoke_export("maybe_exit", &[Value::I32(1)]).unwrap();
        p.invoke_export("maybe_exit", &[Value::I32(0)]).unwrap();
        ee.drain();
        let c = counts.borrow();
        let func = p.module().export_func("maybe_exit").unwrap();
        assert_eq!(c.entries[&func], 2);
        assert_eq!(c.exits[&func], 2, "both the branch exit and the fall-through exit");
    }

    #[test]
    fn trap_unwind_drained_lazily() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[], &[]);
        f.unreachable();
        mb.add_func("boom", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let (counts, ee) = counted(&mut p);
        assert_eq!(p.invoke_export("boom", &[]).unwrap_err(), Trap::Unreachable);
        assert_eq!(counts.borrow().exits.get(&0), None, "exit not yet observed");
        ee.drain();
        assert_eq!(counts.borrow().exits[&0], 1, "drain fires the unwound exit");
        assert_eq!(ee.depth(), 0);
    }
}
