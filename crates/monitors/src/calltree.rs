//! The **Call tree** profiler (paper §3): measures wall-clock execution
//! time of function calls and prints self and nested time over the full
//! calling-context tree; can also emit flame-graph lines. Built entirely
//! on the [`crate::entry_exit`] library — a monitor measuring
//! *non-virtualized* metrics like real time.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use wizard_engine::{InstrumentationCtx, Monitor, ProbeError, Process, Report};
use wizard_wasm::module::FuncIdx;

use crate::entry_exit::EntryExit;
use crate::util::func_label;

#[derive(Debug)]
struct Node {
    func: FuncIdx,
    calls: u64,
    total: Duration,
    self_time: Duration,
    children: BTreeMap<FuncIdx, usize>,
}

#[derive(Debug, Default)]
struct TreeState {
    nodes: Vec<Node>,
    roots: BTreeMap<FuncIdx, usize>,
    /// Stack of `(node id, start, accumulated child time)`.
    path: Vec<(usize, Instant, Duration)>,
}

impl TreeState {
    fn child_of(&mut self, parent: Option<usize>, func: FuncIdx) -> usize {
        let map = match parent {
            Some(p) => &mut self.nodes[p].children,
            None => &mut self.roots,
        };
        if let Some(id) = map.get(&func) {
            return *id;
        }
        let id = self.nodes.len();
        match parent {
            Some(p) => {
                self.nodes[p].children.insert(func, id);
            }
            None => {
                self.roots.insert(func, id);
            }
        }
        self.nodes.push(Node {
            func,
            calls: 0,
            total: Duration::ZERO,
            self_time: Duration::ZERO,
            children: BTreeMap::new(),
        });
        id
    }
}

/// Profiles self/total wall-clock time over the calling-context tree.
pub struct CallTreeMonitor {
    state: Rc<RefCell<TreeState>>,
    entry_exit: Option<EntryExit>,
    labels: Rc<RefCell<BTreeMap<FuncIdx, String>>>,
}

impl Default for CallTreeMonitor {
    fn default() -> CallTreeMonitor {
        CallTreeMonitor::new()
    }
}

impl CallTreeMonitor {
    /// Creates the profiler.
    pub fn new() -> CallTreeMonitor {
        CallTreeMonitor {
            state: Rc::new(RefCell::new(TreeState::default())),
            entry_exit: None,
            labels: Rc::new(RefCell::new(BTreeMap::new())),
        }
    }

    /// Drains any trap-unwound frames (call after a trapping invocation).
    pub fn drain(&self) {
        if let Some(ee) = &self.entry_exit {
            ee.drain();
        }
    }

    /// Flame-graph lines: `path;to;func <self time in µs>`.
    pub fn flame_lines(&self) -> Vec<String> {
        let st = self.state.borrow();
        let labels = self.labels.borrow();
        let mut out = Vec::new();
        let mut stack: Vec<(usize, String)> = Vec::new();
        for id in st.roots.values() {
            stack.push((*id, labels[&st.nodes[*id].func].clone()));
        }
        while let Some((id, path)) = stack.pop() {
            let n = &st.nodes[id];
            out.push(format!("{path} {}", n.self_time.as_micros()));
            for cid in n.children.values() {
                let c = &st.nodes[*cid];
                stack.push((*cid, format!("{path};{}", labels[&c.func])));
            }
        }
        out.sort();
        out
    }

    /// `(func, calls, total, self)` rows, flattened depth-first.
    pub fn rows(&self) -> Vec<(FuncIdx, u64, Duration, Duration)> {
        let st = self.state.borrow();
        let mut out = Vec::new();
        let mut stack: Vec<usize> = st.roots.values().copied().collect();
        while let Some(id) = stack.pop() {
            let n = &st.nodes[id];
            out.push((n.func, n.calls, n.total, n.self_time));
            stack.extend(n.children.values().copied());
        }
        out
    }
}

impl Monitor for CallTreeMonitor {
    fn name(&self) -> &'static str {
        "calltree"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        {
            let mut labels = self.labels.borrow_mut();
            for func in 0..ctx.module().num_funcs() {
                labels.insert(func, func_label(ctx.module(), func));
            }
        }
        let st_in = Rc::clone(&self.state);
        let st_out = Rc::clone(&self.state);
        let ee = EntryExit::attach(
            ctx,
            move |func, _| {
                let mut st = st_in.borrow_mut();
                let parent = st.path.last().map(|(id, _, _)| *id);
                let id = st.child_of(parent, func);
                st.path.push((id, Instant::now(), Duration::ZERO));
            },
            move |_func, _| {
                let mut st = st_out.borrow_mut();
                let Some((id, start, child)) = st.path.pop() else {
                    return;
                };
                let elapsed = start.elapsed();
                let n = &mut st.nodes[id];
                n.calls += 1;
                n.total += elapsed;
                n.self_time += elapsed.saturating_sub(child);
                if let Some((_, _, parent_child)) = st.path.last_mut() {
                    *parent_child += elapsed;
                }
            },
        )?;
        self.entry_exit = Some(ee);
        Ok(())
    }

    fn on_detach(&mut self, _process: &mut Process) {
        // Fire exit callbacks for any frames unwound by traps, so the
        // final report is balanced.
        self.drain();
    }

    fn report(&self) -> Report {
        let st = self.state.borrow();
        let labels = self.labels.borrow();
        let mut r = Report::new(self.name());
        let tree = r.section("calling-context tree (self / total)");
        fn render(
            st: &TreeState,
            labels: &BTreeMap<FuncIdx, String>,
            id: usize,
            depth: usize,
            out: &mut wizard_engine::Section,
        ) {
            let n = &st.nodes[id];
            out.text(
                format!("{:indent$}{}", "", labels[&n.func], indent = depth * 2),
                format!("calls={} self={:?} total={:?}", n.calls, n.self_time, n.total),
            );
            for cid in n.children.values() {
                render(st, labels, *cid, depth + 1, out);
            }
        }
        for id in st.roots.values() {
            render(&st, &labels, *id, 1, tree);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    #[test]
    fn builds_calling_context_tree_with_times() {
        let mut mb = ModuleBuilder::new();
        let mut leaf = FuncBuilder::new(&[I32], &[I32]);
        let i = leaf.local(I32);
        let acc = leaf.local(I32);
        leaf.for_range(i, 0, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
        });
        leaf.local_get(acc);
        let leaf = mb.add_private_func("leaf", leaf);
        let mut mid = FuncBuilder::new(&[I32], &[I32]);
        mid.local_get(0).call(leaf).local_get(0).call(leaf).i32_add();
        let mid = mb.add_private_func("mid", mid);
        let mut main = FuncBuilder::new(&[I32], &[I32]);
        main.local_get(0).call(mid);
        mb.add_func("main", main);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let mon = p.attach_monitor(CallTreeMonitor::new()).unwrap();
        p.invoke_export("main", &[Value::I32(200)]).unwrap();
        mon.borrow().drain();
        let rows = mon.borrow().rows();
        // main (1 call), mid (1), leaf-under-mid (2 calls).
        let leaf_row = *rows.iter().find(|(f, _, _, _)| *f == leaf).unwrap();
        assert_eq!(leaf_row.1, 2);
        let mid_row = *rows.iter().find(|(f, _, _, _)| *f == mid).unwrap();
        assert_eq!(mid_row.1, 1);
        // Nested time: mid's total covers leaf's total.
        assert!(mid_row.2 >= leaf_row.2);
        let report = mon.report().to_string();
        assert!(report.contains("main"));
        assert!(report.contains("leaf"));
        let flames = mon.borrow().flame_lines();
        assert!(flames.iter().any(|l| l.starts_with("main;mid;leaf ")));
    }
}
