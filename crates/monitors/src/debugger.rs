//! The **Debugger REPL** (paper §3): interactive debugging at the Wasm
//! bytecode level — breakpoints, single-step, backtraces, inspection, and
//! *state modification* (the only monitor that modifies frames).
//!
//! Breakpoints are local probes; `step` is a one-shot global probe
//! (dynamic insertion and removal); `set` uses the FrameAccessor's frame
//! modification, which transparently deoptimizes JIT frames.
//!
//! The command stream is a script (a `VecDeque<String>`), which makes the
//! debugger fully testable; an interactive front-end would feed it from
//! stdin.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use wizard_engine::{
    ClosureProbe, InstrumentationCtx, Monitor, ProbeBatch, ProbeCtx, ProbeError, ProbeId, Report,
    Value,
};
use wizard_wasm::module::FuncIdx;
use wizard_wasm::types::ValType;

#[derive(Debug, Default)]
struct DebugShared {
    commands: RefCell<VecDeque<String>>,
    output: RefCell<String>,
}

impl DebugShared {
    fn println(&self, line: impl AsRef<str>) {
        let mut out = self.output.borrow_mut();
        out.push_str(line.as_ref());
        out.push('\n');
    }
}

/// A scripted bytecode-level debugger.
///
/// Supported commands: `where`, `locals`, `stack`, `bt`, `depth`,
/// `set <local> <value>`, `step`, `continue`.
#[derive(Debug, Default)]
pub struct Debugger {
    shared: Rc<DebugShared>,
    breakpoints: Vec<(FuncIdx, u32)>,
}

impl Debugger {
    /// Creates a debugger with a command script.
    pub fn new<S: Into<String>>(script: impl IntoIterator<Item = S>) -> Debugger {
        let d = Debugger::default();
        d.shared.commands.borrow_mut().extend(script.into_iter().map(Into::into));
        d
    }

    /// Schedules a breakpoint to be installed by [`Monitor::on_attach`].
    pub fn breakpoint(&mut self, func: FuncIdx, pc: u32) -> &mut Self {
        self.breakpoints.push((func, pc));
        self
    }

    /// Appends more commands to the script.
    pub fn push_commands<S: Into<String>>(&self, script: impl IntoIterator<Item = S>) {
        self.shared.commands.borrow_mut().extend(script.into_iter().map(Into::into));
    }

    /// The session transcript so far.
    pub fn output(&self) -> String {
        self.shared.output.borrow().clone()
    }
}

impl Monitor for Debugger {
    fn name(&self) -> &'static str {
        "debugger"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let mut batch = ProbeBatch::new();
        for (func, pc) in self.breakpoints.clone() {
            let shared = Rc::clone(&self.shared);
            batch.add_local(
                func,
                pc,
                ClosureProbe::shared(move |ctx| {
                    shared.println(format!("breakpoint hit at {}", ctx.location()));
                    command_loop(&shared, ctx);
                }),
            );
        }
        ctx.apply_batch(batch)?;
        Ok(())
    }

    fn report(&self) -> Report {
        let mut r = Report::new(self.name());
        let transcript = r.section("transcript");
        for (i, line) in self.output().lines().enumerate() {
            transcript.text(format!("{i:>4}"), line);
        }
        r
    }
}

/// Processes script commands until `continue`, `step` (which re-enters at
/// the next instruction), or script exhaustion (implicit `continue`).
fn command_loop(shared: &Rc<DebugShared>, ctx: &mut ProbeCtx<'_, '_>) {
    loop {
        let Some(cmd) = shared.commands.borrow_mut().pop_front() else {
            return; // script exhausted: continue
        };
        let parts: Vec<&str> = cmd.split_whitespace().collect();
        match parts.as_slice() {
            ["continue" | "c"] => return,
            ["where" | "w"] => {
                shared.println(format!("at {}", ctx.location()));
            }
            ["depth"] => {
                shared.println(format!("call depth: {}", ctx.depth()));
            }
            ["locals" | "l"] => {
                let view = ctx.frame();
                let n = view.num_locals();
                for i in 0..n {
                    if let Some(v) = view.local(i) {
                        shared.println(format!("  local[{i}] = {v}"));
                    }
                }
            }
            ["stack" | "s"] => {
                let view = ctx.frame();
                let n = view.operand_count();
                if n == 0 {
                    shared.println("  <operand stack empty>");
                }
                for i in 0..n {
                    let slot = view.operand(i).expect("in range");
                    shared.println(format!("  stack[{i}] = {:#x}", slot.0));
                }
            }
            ["bt"] => {
                let depth = ctx.depth();
                shared.println(format!("#0 {} (depth {depth})", ctx.location()));
                let mut acc = ctx.frame().caller();
                let mut n = 1;
                while let Some(a) = acc {
                    let (func, pc, next) = {
                        let mut view = ctx.view(&a).expect("live frame");
                        (view.func(), view.pc(), view.caller())
                    };
                    shared.println(format!("#{n} func[{func}]+{pc}"));
                    acc = next;
                    n += 1;
                }
            }
            ["set", idx, val] => {
                let (Ok(i), Ok(v)) = (idx.parse::<u32>(), val.parse::<i64>()) else {
                    shared.println(format!("parse error in: {cmd}"));
                    continue;
                };
                let mut view = ctx.frame();
                let Some(old) = view.local(i) else {
                    shared.println(format!("no local {i}"));
                    continue;
                };
                let new = match old.ty() {
                    ValType::I32 => Value::I32(v as i32),
                    ValType::I64 => Value::I64(v),
                    ValType::F32 => Value::F32(v as f32),
                    ValType::F64 => Value::F64(v as f64),
                };
                match view.set_local(i, new) {
                    Ok(()) => shared.println(format!("local[{i}] {old} -> {new}")),
                    Err(e) => shared.println(format!("set failed: {e}")),
                }
            }
            ["step"] => {
                // One-shot global probe: fires at the next executed
                // instruction, re-enters the command loop, removes itself.
                let shared2 = Rc::clone(shared);
                let id_cell: Rc<std::cell::Cell<Option<ProbeId>>> =
                    Rc::new(std::cell::Cell::new(None));
                let idc = Rc::clone(&id_cell);
                let id = ctx.insert_global_probe(ClosureProbe::shared(move |step_ctx| {
                    if let Some(id) = idc.get() {
                        step_ctx.remove_probe(id);
                    }
                    step_ctx_enter(&shared2, step_ctx);
                }));
                id_cell.set(Some(id));
                return;
            }
            [] => {}
            other => {
                shared.println(format!("unknown command: {}", other.join(" ")));
            }
        }
    }
}

fn step_ctx_enter(shared: &Rc<DebugShared>, ctx: &mut ProbeCtx<'_, '_>) {
    shared.println(format!("stepped to {}", ctx.location()));
    command_loop(shared, ctx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn process() -> Process {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let t = f.local(I32);
        f.local_get(0).i32_const(10).i32_add().local_set(t);
        f.local_get(t).i32_const(2).i32_mul();
        mb.add_func("calc", f);
        Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap()
    }

    #[test]
    fn breakpoint_inspection_and_stepping() {
        let mut p = process();
        let f = p.module().export_func("calc").unwrap();
        let mut d =
            Debugger::new(["where", "locals", "stack", "depth", "step", "step", "continue"]);
        d.breakpoint(f, 0);
        let d = p.attach_monitor(d).unwrap();
        let r = p.invoke_export("calc", &[Value::I32(5)]).unwrap();
        assert_eq!(r, vec![Value::I32(30)]);
        let out = d.borrow().output();
        assert!(out.contains("breakpoint hit at func[0]+0"), "{out}");
        assert!(out.contains("local[0] = 5:i32"), "{out}");
        assert!(out.contains("<operand stack empty>"), "{out}");
        assert!(out.contains("call depth: 1"), "{out}");
        assert!(out.contains("stepped to func[0]+2"), "{out}");
        assert!(!p.in_global_mode(), "step probes removed themselves");
    }

    #[test]
    fn set_local_changes_program_result() {
        let mut p = process();
        let f = p.module().export_func("calc").unwrap();
        let mut d = Debugger::new(["set 0 100", "continue"]);
        d.breakpoint(f, 0);
        let d = p.attach_monitor(d).unwrap();
        let r = p.invoke_export("calc", &[Value::I32(5)]).unwrap();
        assert_eq!(r, vec![Value::I32(220)], "fix-and-continue changed the result");
        assert!(d.borrow().output().contains("local[0] 5:i32 -> 100:i32"));
    }
}
