//! The **Memory** monitor (paper §3): traces all memory accesses —
//! loaded/stored addresses and values — "a good example of non-trivial
//! FrameAccessor usage": the probe reads the address and value operands
//! off the frame's operand stack before the instruction executes.

use std::cell::RefCell;
use std::rc::Rc;

use wizard_engine::{ClosureProbe, InstrumentationCtx, Monitor, ProbeBatch, ProbeError, Report};
use wizard_wasm::instr::Imm;
use wizard_wasm::opcodes as op;

use crate::util::sites;

/// One observed memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemEvent {
    /// Function containing the access.
    pub func: u32,
    /// pc of the access.
    pub pc: u32,
    /// The access opcode.
    pub opcode: u8,
    /// Effective address (base operand + constant offset).
    pub addr: u32,
    /// For stores, the raw value slot being stored.
    pub value: Option<u64>,
}

#[derive(Debug, Default)]
struct MemState {
    loads: u64,
    stores: u64,
    events: Vec<MemEvent>,
}

/// Traces loads and stores with effective addresses and stored values.
#[derive(Debug)]
pub struct MemoryMonitor {
    state: Rc<RefCell<MemState>>,
    max_events: usize,
}

impl Default for MemoryMonitor {
    fn default() -> MemoryMonitor {
        MemoryMonitor::new(100_000)
    }
}

impl MemoryMonitor {
    /// Creates a monitor retaining at most `max_events` detailed events
    /// (counts are always exact).
    pub fn new(max_events: usize) -> MemoryMonitor {
        MemoryMonitor { state: Rc::new(RefCell::new(MemState::default())), max_events }
    }

    /// Number of loads observed.
    pub fn loads(&self) -> u64 {
        self.state.borrow().loads
    }

    /// Number of stores observed.
    pub fn stores(&self) -> u64 {
        self.state.borrow().stores
    }

    /// The retained events.
    pub fn events(&self) -> Vec<MemEvent> {
        self.state.borrow().events.clone()
    }
}

impl Monitor for MemoryMonitor {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let mem_sites = sites(ctx.module(), |i| op::is_memory_access(i.op));
        let mut batch = ProbeBatch::new();
        for (func, instr) in &mem_sites {
            let Imm::Mem { offset, .. } = instr.imm else {
                unreachable!("memory access has a memarg");
            };
            let opcode = instr.op;
            let state = Rc::clone(&self.state);
            let max = self.max_events;
            batch.add_local(
                *func,
                instr.pc,
                ClosureProbe::shared(move |ctx| {
                    let is_store = op::is_store(opcode);
                    let view = ctx.frame();
                    let (addr_slot, value) = if is_store {
                        (view.operand(1).expect("store addr"), view.operand(0).map(|s| s.0))
                    } else {
                        (view.operand(0).expect("load addr"), None)
                    };
                    let loc = ctx.location();
                    let mut st = state.borrow_mut();
                    if is_store {
                        st.stores += 1;
                    } else {
                        st.loads += 1;
                    }
                    if st.events.len() < max {
                        st.events.push(MemEvent {
                            func: loc.func,
                            pc: loc.pc,
                            opcode,
                            addr: addr_slot.u32().wrapping_add(offset),
                            value,
                        });
                    }
                }),
            );
        }
        ctx.apply_batch(batch)?;
        Ok(())
    }

    fn report(&self) -> Report {
        let st = self.state.borrow();
        let mut r = Report::new(self.name());
        let trace = r.section("accesses");
        for e in st.events.iter().take(50) {
            let label = format!("func[{}]+{} {}", e.func, e.pc, op::name(e.opcode));
            match e.value {
                Some(v) => trace.text(label, format!("addr={:#x} value={v:#x}", e.addr)),
                None => trace.text(label, format!("addr={:#x}", e.addr)),
            };
        }
        r.section("summary").count("loads", st.loads).count("stores", st.stores);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    #[test]
    fn observes_addresses_and_values() {
        let mut mb = ModuleBuilder::new();
        mb.memory(1);
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.i32_const(8).local_get(0).i32_store(4); // addr 8 + offset 4 = 12
        f.i32_const(8).i32_load(4);
        mb.add_func("rw", f);
        let module = mb.build().unwrap();
        for config in [EngineConfig::interpreter(), EngineConfig::jit()] {
            let mut p = Process::new(module.clone(), config, &Linker::new()).unwrap();
            let m = p.attach_monitor(MemoryMonitor::default()).unwrap();
            let r = p.invoke_export("rw", &[Value::I32(77)]).unwrap();
            assert_eq!(r, vec![Value::I32(77)]);
            assert_eq!(m.borrow().loads(), 1);
            assert_eq!(m.borrow().stores(), 1);
            let ev = m.borrow().events();
            assert_eq!(ev[0].addr, 12);
            assert_eq!(ev[0].value, Some(77));
            assert_eq!(ev[1].addr, 12);
            assert_eq!(ev[1].value, None);
            assert!(m.report().to_string().contains("loads: 1"));
        }
    }
}
