//! A Richards-style OS-scheduler benchmark: the famously indirect-call-
//! heavy workload used for the paper's JVMTI comparison (§6.4).
//!
//! Four task kinds (idle, worker, handler, device) are dispatched through
//! a funcref table via `call_indirect`; tasks exchange "packets" through a
//! ring queue in linear memory and call shared queue helpers directly.
//! This preserves the original benchmark's call structure (dense indirect
//! calls + short direct helper calls per scheduling step) in a compact
//! form; see DESIGN.md for the substitution note.

use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::Module;
use wizard_wasm::types::BlockType;
use wizard_wasm::types::ValType::I32;

const QUEUE: i32 = 0x100; // ring buffer of 64 i32 packets
const QMASK: i32 = 63;
const STATE: i32 = 0x400; // per-task i32 state words (4 tasks)

/// The built module, memoized: construction is deterministic, so fleets
/// spawning many Richards jobs clone the cached module instead of
/// re-assembling it per job.
static MODULE: std::sync::LazyLock<Module> = std::sync::LazyLock::new(build_clean);

/// Builds the Richards-style module (cached). `run(loops) -> i32` returns
/// the scheduler checksum after `loops` scheduling steps.
pub fn module() -> Module {
    MODULE.clone()
}

fn build_clean() -> Module {
    let mut mb = ModuleBuilder::new();
    mb.memory(1);
    mb.table(4);

    // qpkt(v) -> old_head: enqueue a packet word.
    let qpkt = {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let h = f.local(I32);
        f.i32_const(STATE + 16).i32_load(0).local_set(h);
        f.local_get(h).i32_const(QMASK).i32_and().i32_const(4).i32_mul().i32_const(QUEUE).i32_add();
        f.local_get(0);
        f.i32_store(0);
        f.i32_const(STATE + 16);
        f.local_get(h).i32_const(1).i32_add();
        f.i32_store(0);
        f.local_get(h);
        mb.add_private_func("qpkt", f)
    };

    // takepkt() -> packet word (0 if queue empty).
    let takepkt = {
        let mut f = FuncBuilder::new(&[], &[I32]);
        let t = f.local(I32);
        f.i32_const(STATE + 20).i32_load(0).local_set(t);
        // if tail >= head: return 0
        f.local_get(t).i32_const(STATE + 16).i32_load(0).i32_ge_s().if_(BlockType::Empty);
        f.i32_const(0).return_();
        f.end();
        f.i32_const(STATE + 20);
        f.local_get(t).i32_const(1).i32_add();
        f.i32_store(0);
        f.local_get(t).i32_const(QMASK).i32_and().i32_const(4).i32_mul().i32_const(QUEUE).i32_add();
        f.i32_load(0);
        mb.add_private_func("takepkt", f)
    };

    // Task functions: (step) -> work_units. All share type [i32]->[i32].
    // idle: occasionally enqueues a packet.
    let idle = {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(3).i32_and().i32_eqz().if_(BlockType::Empty);
        f.local_get(0).i32_const(1).i32_or().call(qpkt).drop_();
        f.end();
        f.i32_const(1);
        mb.add_private_func("task_idle", f)
    };
    // worker: takes a packet, mixes its bits, re-enqueues.
    let worker = {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let p = f.local(I32);
        f.call(takepkt).local_set(p);
        f.local_get(p).i32_eqz().if_(BlockType::Empty);
        f.i32_const(0).return_();
        f.end();
        f.local_get(p)
            .i32_const(26)
            .i32_rotl()
            .local_get(0)
            .i32_xor()
            .i32_const(0x0123_4567)
            .i32_add()
            .call(qpkt)
            .drop_();
        f.i32_const(2);
        mb.add_private_func("task_worker", f)
    };
    // handler: takes two packets, combines, enqueues one.
    let handler = {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let a = f.local(I32);
        let b = f.local(I32);
        f.call(takepkt).local_set(a);
        f.call(takepkt).local_set(b);
        f.local_get(a).local_get(b).i32_or().i32_eqz().if_(BlockType::Empty);
        f.i32_const(0).return_();
        f.end();
        f.local_get(a).local_get(b).i32_xor().i32_const(7).i32_rotl().call(qpkt).drop_();
        f.i32_const(3);
        mb.add_private_func("task_handler", f)
    };
    // device: accumulates into the device register at STATE+24.
    let device = {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let p = f.local(I32);
        f.call(takepkt).local_set(p);
        f.i32_const(STATE + 24);
        f.i32_const(STATE + 24).i32_load(0);
        f.local_get(p).i32_add().i32_const(13).i32_rotl();
        f.i32_store(0);
        f.local_get(p).i32_const(0).i32_ne();
        mb.add_private_func("task_device", f)
    };
    mb.elem(0, &[idle, worker, handler, device]);

    let sig = mb.sig(&[I32], &[I32]);
    let mut run = FuncBuilder::new(&[I32], &[I32]);
    let step = run.local(I32);
    let sum = run.local(I32);
    let task = run.local(I32);
    // Seed the queue.
    run.i32_const(0xbeef).call(qpkt).drop_();
    run.i32_const(0xcafe).call(qpkt).drop_();
    run.for_range(step, 0, |f| {
        // Pick the task: a mix of step and the device register, mod 4 —
        // data-dependent indirect dispatch like the original scheduler.
        f.local_get(step)
            .i32_const(STATE + 24)
            .i32_load(0)
            .i32_add()
            .i32_const(3)
            .i32_and()
            .local_set(task);
        f.local_get(sum);
        f.local_get(step);
        f.local_get(task);
        f.call_indirect(sig);
        f.i32_add().local_set(sum);
    });
    run.local_get(sum).i32_const(STATE + 24).i32_load(0).i32_add();
    mb.add_func("run", run);
    mb.build().expect("richards validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};

    #[test]
    fn richards_runs_and_tiers_agree() {
        let m = build_clean();
        let mut interp =
            Process::new(m.clone(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let mut jit = Process::new(m, EngineConfig::jit(), &Linker::new()).unwrap();
        let r1 = interp.invoke_export("run", &[Value::I32(10_000)]).unwrap();
        let r2 = jit.invoke_export("run", &[Value::I32(10_000)]).unwrap();
        assert_eq!(r1, r2);
        assert_ne!(r1[0], Value::I32(0));
    }
}
