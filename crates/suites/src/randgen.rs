//! Deterministic random-module generation, shared by the differential
//! harness (`tests/differential.rs`), the conformance suite's round-trip
//! property, and the proptest strategies.
//!
//! A seeded xorshift64* PRNG drives a small program generator over the
//! builder DSL: arithmetic, locals, `if`/`else`, nested constant loops,
//! and trapping division. Every generated module validates and exports
//! `run(i32) -> i32` whose outer loop is bounded by the parameter, so
//! generated programs always terminate.

use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::Module;
use wizard_wasm::types::BlockType;
use wizard_wasm::types::ValType::I32;

/// xorshift64* — deterministic, dependency-free.
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator (any seed, including 0, is fine).
    pub fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    /// Next raw 64-bit value. (Deliberately named like an RNG, not an
    /// `Iterator` — the stream is infinite and never yields `None`.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emits a random i32 expression of bounded depth; every path leaves
/// exactly one i32 on the stack. `locals` is the number of readable
/// locals (params + declared).
fn emit_expr(f: &mut FuncBuilder, rng: &mut Rng, locals: u32, depth: u32) {
    if depth == 0 || rng.below(4) == 0 {
        if rng.below(2) == 0 {
            f.i32_const(rng.next() as i32);
        } else {
            f.local_get(rng.below(u64::from(locals)) as u32);
        }
        return;
    }
    match rng.below(12) {
        0..=5 => {
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            match rng.below(6) {
                0 => f.i32_add(),
                1 => f.i32_sub(),
                2 => f.i32_mul(),
                3 => f.i32_and(),
                4 => f.i32_xor(),
                _ => f.i32_or(),
            };
        }
        6 => {
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            // Trapping operations: division by zero and overflow must
            // unwind identically everywhere.
            if rng.below(2) == 0 {
                f.i32_div_s();
            } else {
                f.i32_rem_s();
            }
        }
        7 => {
            emit_expr(f, rng, locals, depth - 1);
            f.i32_eqz();
        }
        8 => {
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            f.i32_lt_s();
        }
        9 => {
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            f.select();
        }
        _ => {
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            match rng.below(3) {
                0 => f.i32_shl(),
                1 => f.i32_shr_s(),
                _ => f.i32_rotl(),
            };
        }
    }
}

/// Picks a writable local: never index 0 — that is the parameter, which
/// bounds the outer loop; overwriting it would make generated programs
/// run unboundedly.
fn writable(rng: &mut Rng, locals: u32) -> u32 {
    1 + rng.below(u64::from(locals - 1)) as u32
}

/// Emits a random statement (net stack effect zero).
fn emit_stmt(f: &mut FuncBuilder, rng: &mut Rng, locals: u32, depth: u32) {
    match rng.below(4) {
        // local := expr
        0 | 1 => {
            emit_expr(f, rng, locals, 2);
            let dst = writable(rng, locals);
            f.local_set(dst);
        }
        // if/else on a random condition
        2 => {
            emit_expr(f, rng, locals, 2);
            f.if_(BlockType::Empty);
            emit_expr(f, rng, locals, 1);
            let dst = writable(rng, locals);
            f.local_set(dst);
            if rng.below(2) == 0 {
                f.else_();
                emit_expr(f, rng, locals, 1);
                let dst = writable(rng, locals);
                f.local_set(dst);
            }
            f.end();
        }
        // small nested constant loop
        _ => {
            if depth > 0 {
                let i = f.local(I32);
                let n = 1 + rng.below(4) as i32;
                let inner = 1 + rng.below(2) as u32;
                f.for_const(i, n, |f| {
                    for _ in 0..inner {
                        emit_stmt(f, rng, locals, depth - 1);
                    }
                });
            } else {
                emit_expr(f, rng, locals, 1);
                let dst = writable(rng, locals);
                f.local_set(dst);
            }
        }
    }
}

/// Builds a random module: one exported `run(i32) -> i32` with a
/// parameter-bounded outer loop whose body is a random statement list,
/// returning a mix of the locals. Deterministic in `seed`.
pub fn random_module(seed: u64) -> Module {
    let mut rng = Rng::new(seed);
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let n_locals = 2 + rng.below(3) as u32; // declared i32 locals
    for _ in 0..n_locals {
        f.local(I32);
    }
    let locals = 1 + n_locals; // param + declared
    let i = f.local(I32);
    let n_stmts = 1 + rng.below(3);
    f.for_range(i, 0, |f| {
        for _ in 0..n_stmts {
            emit_stmt(f, &mut rng, locals, 1);
        }
    });
    // Fold every local into the result.
    f.local_get(0);
    for k in 1..locals {
        f.local_get(k);
        f.i32_add();
    }
    mb.add_func("run", f);
    mb.build().expect("generated module validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::encode::encode;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        for seed in [0u64, 1, 7, 12345] {
            assert_eq!(encode(&random_module(seed)), encode(&random_module(seed)));
        }
        assert_ne!(encode(&random_module(1)), encode(&random_module(2)));
    }

    #[test]
    fn generated_modules_round_trip_through_the_binary_format() {
        for seed in 0..25u64 {
            let m = random_module(seed);
            let bytes = encode(&m);
            let m2 = wizard_wasm::decode::decode(&bytes).expect("decodes");
            assert_eq!(encode(&m2), bytes, "seed {seed}: re-encode differs");
        }
    }
}
