//! Emission helpers shared by the benchmark kernels: array addressing,
//! deterministic initialization, reductions, and counted loops.
//!
//! Array convention: `f64` matrices are stored row-major with a *runtime*
//! stride equal to the problem size `n`; element `(i, j)` of the array at
//! byte offset `base` lives at `base + (i*n + j) * 8`.

use wizard_wasm::builder::FuncBuilder;
use wizard_wasm::module::LocalIdx;
use wizard_wasm::types::BlockType;

/// Pushes the address of `f64` element `base[i]`.
pub fn a1(f: &mut FuncBuilder, base: i32, i: LocalIdx) {
    f.local_get(i).i32_const(8).i32_mul().i32_const(base).i32_add();
}

/// Pushes the address of `f64` element `base[i*n + j]` (stride local `n`).
pub fn a2(f: &mut FuncBuilder, base: i32, i: LocalIdx, j: LocalIdx, n: LocalIdx) {
    f.local_get(i)
        .local_get(n)
        .i32_mul()
        .local_get(j)
        .i32_add()
        .i32_const(8)
        .i32_mul()
        .i32_const(base)
        .i32_add();
}

/// Pushes the address of `f64` element `base[(i*n + j)*n + k]`.
pub fn a3(f: &mut FuncBuilder, base: i32, i: LocalIdx, j: LocalIdx, k: LocalIdx, n: LocalIdx) {
    f.local_get(i)
        .local_get(n)
        .i32_mul()
        .local_get(j)
        .i32_add()
        .local_get(n)
        .i32_mul()
        .local_get(k)
        .i32_add()
        .i32_const(8)
        .i32_mul()
        .i32_const(base)
        .i32_add();
}

/// Loads `f64` `base[i]`.
pub fn ld1(f: &mut FuncBuilder, base: i32, i: LocalIdx) {
    a1(f, base, i);
    f.f64_load(0);
}

/// Loads `f64` `base[i*n + j]`.
pub fn ld2(f: &mut FuncBuilder, base: i32, i: LocalIdx, j: LocalIdx, n: LocalIdx) {
    a2(f, base, i, j, n);
    f.f64_load(0);
}

/// Stores to `base[i]` the value produced by `val`.
pub fn st1(f: &mut FuncBuilder, base: i32, i: LocalIdx, val: impl FnOnce(&mut FuncBuilder)) {
    a1(f, base, i);
    val(f);
    f.f64_store(0);
}

/// Stores to `base[i*n + j]` the value produced by `val`.
pub fn st2(
    f: &mut FuncBuilder,
    base: i32,
    i: LocalIdx,
    j: LocalIdx,
    n: LocalIdx,
    val: impl FnOnce(&mut FuncBuilder),
) {
    a2(f, base, i, j, n);
    val(f);
    f.f64_store(0);
}

/// Emits `for (i = n-1; i >= 0; i--) { body }`.
pub fn for_down(
    f: &mut FuncBuilder,
    i: LocalIdx,
    n: LocalIdx,
    body: impl FnOnce(&mut FuncBuilder),
) {
    f.local_get(n).i32_const(1).i32_sub().local_set(i);
    f.block(BlockType::Empty);
    f.loop_(BlockType::Empty);
    f.local_get(i).i32_const(0).i32_lt_s().br_if(1);
    body(f);
    f.local_get(i).i32_const(1).i32_sub().local_set(i);
    f.br(0);
    f.end();
    f.end();
}

/// Fills the `count`-element `f64` array at `base` with deterministic
/// pseudo-data in roughly `[0.1, 1.1)`:
/// `base[k] = ((k*salt + 3) % 97) / 97.0 + 0.1`.
///
/// Uses `k` as the loop counter local and `count` as the bound local.
pub fn fill1(f: &mut FuncBuilder, base: i32, k: LocalIdx, count: LocalIdx, salt: i32) {
    f.for_range(k, count, |f| {
        st1(f, base, k, |f| {
            f.local_get(k)
                .i32_const(salt)
                .i32_mul()
                .i32_const(3)
                .i32_add()
                .i32_const(97)
                .i32_rem_s()
                .f64_convert_i32_s()
                .f64_const(97.0)
                .f64_div()
                .f64_const(0.1)
                .f64_add();
        });
    });
}

/// Fills an `n × n` `f64` matrix at `base` (loop locals `i`, `j`).
pub fn fill2(f: &mut FuncBuilder, base: i32, i: LocalIdx, j: LocalIdx, n: LocalIdx, salt: i32) {
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            st2(f, base, i, j, n, |f| {
                f.local_get(i)
                    .i32_const(salt)
                    .i32_mul()
                    .local_get(j)
                    .i32_add()
                    .i32_const(5)
                    .i32_add()
                    .i32_const(97)
                    .i32_rem_s()
                    .f64_convert_i32_s()
                    .f64_const(97.0)
                    .f64_div()
                    .f64_const(0.1)
                    .f64_add();
            });
        });
    });
}

/// Sums the `count` `f64`s at `base` into local `acc` (an f64 local),
/// using `k` as the loop counter. Leaves `acc` updated.
pub fn checksum1(f: &mut FuncBuilder, base: i32, k: LocalIdx, count: LocalIdx, acc: LocalIdx) {
    f.for_range(k, count, |f| {
        f.local_get(acc);
        ld1(f, base, k);
        f.f64_add().local_set(acc);
    });
}

/// Sums the `n × n` `f64`s at `base` into f64 local `acc`.
pub fn checksum2(
    f: &mut FuncBuilder,
    base: i32,
    i: LocalIdx,
    j: LocalIdx,
    n: LocalIdx,
    acc: LocalIdx,
) {
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            f.local_get(acc);
            ld2(f, base, i, j, n);
            f.f64_add().local_set(acc);
        });
    });
}

/// Standard matrix base offsets (spaced for n ≤ 128 f64 matrices).
pub mod bases {
    /// Matrix A.
    pub const A: i32 = 0x0000_0000;
    /// Matrix B.
    pub const B: i32 = 0x0002_0000;
    /// Matrix C.
    pub const C: i32 = 0x0004_0000;
    /// Matrix D.
    pub const D: i32 = 0x0006_0000;
    /// Matrix E.
    pub const E: i32 = 0x0008_0000;
    /// Vector x.
    pub const X: i32 = 0x000a_0000;
    /// Vector y.
    pub const Y: i32 = 0x000a_8000;
    /// Vector z / tmp.
    pub const Z: i32 = 0x000b_0000;
    /// Vector w / second tmp.
    pub const W: i32 = 0x000b_8000;
    /// Total pages needed (768 KiB).
    pub const PAGES: u32 = 12;
}

#[cfg(test)]
mod tests {
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::{F64, I32};

    use super::*;

    #[test]
    fn fill_and_checksum_roundtrip() {
        let mut mb = ModuleBuilder::new();
        mb.memory(bases::PAGES);
        let mut f = FuncBuilder::new(&[I32], &[F64]);
        let n = 0;
        let i = f.local(I32);
        let j = f.local(I32);
        let acc = f.local(F64);
        fill2(&mut f, bases::A, i, j, n, 7);
        checksum2(&mut f, bases::A, i, j, n, acc);
        f.local_get(acc);
        mb.add_func("run", f);
        let m = mb.build().unwrap();
        let mut p1 = Process::new(m.clone(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let mut p2 = Process::new(m, EngineConfig::jit(), &Linker::new()).unwrap();
        let r1 = p1.invoke_export("run", &[Value::I32(16)]).unwrap();
        let r2 = p2.invoke_export("run", &[Value::I32(16)]).unwrap();
        assert_eq!(r1, r2, "tiers agree bit-exactly");
        let v = r1[0].as_f64().unwrap();
        assert!(v > 16.0 && v < 300.0, "checksum in plausible range: {v}");
    }

    #[test]
    fn for_down_counts_backwards() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        for_down(&mut f, i, 0, |f| {
            // acc = acc * 10 + i  (records order)
            f.local_get(acc).i32_const(10).i32_mul().local_get(i).i32_add().local_set(acc);
        });
        f.local_get(acc);
        mb.add_func("run", f);
        let mut p =
            Process::new(mb.build().unwrap(), EngineConfig::interpreter(), &Linker::new()).unwrap();
        let r = p.invoke_export("run", &[Value::I32(4)]).unwrap();
        assert_eq!(r, vec![Value::I32(3210)]);
    }
}
