//! The PolyBench/C kernels (Pouchet), hand-written against the Wasm
//! assembler DSL — the paper's primary evaluation suite (Figures 3–7).
//!
//! Every kernel exports `run(n: i32) -> f64`: deterministic initialization,
//! the kernel's loop nest, and a checksum over the output array. Problem
//! sizes are runtime parameters (n ≤ 128; 3-D kernels n ≤ 32), replacing
//! PolyBench's compile-time `medium` dataset with a tunable one.

use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::{LocalIdx, Module};
use wizard_wasm::types::BlockType;
use wizard_wasm::types::ValType::{F64, I32};

use crate::dsl::{a1, a2, checksum1, checksum2, fill1, fill2, for_down, ld1, ld2, st1, st2};

const M: i32 = 0x2_0000;
const fn mat(k: i32) -> i32 {
    k * M
}
const fn vc(k: i32) -> i32 {
    0xe_0000 + k * 0x2000
}
const PAGES: u32 = 16;

/// Standard kernel frame: `run(n) -> f64` with scratch locals.
struct K {
    f: FuncBuilder,
    n: LocalIdx,
    i: LocalIdx,
    j: LocalIdx,
    k: LocalIdx,
    t: LocalIdx,
    u: LocalIdx,
    acc: LocalIdx,
    fa: LocalIdx,
    fb: LocalIdx,
}

fn kern() -> K {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let i = f.local(I32);
    let j = f.local(I32);
    let k = f.local(I32);
    let t = f.local(I32);
    let u = f.local(I32);
    let acc = f.local(F64);
    let fa = f.local(F64);
    let fb = f.local(F64);
    K { f, n: 0, i, j, k, t, u, acc, fa, fb }
}

fn module(name: &str, mut kk: K) -> Module {
    kk.f.local_get(kk.acc);
    let mut mb = ModuleBuilder::new();
    mb.memory(PAGES);
    mb.add_func("run", kk.f);
    mb.build().unwrap_or_else(|e| panic!("kernel {name} failed to validate: {e}"))
}

/// Adds `n` to the diagonal of the matrix at `base` (diagonal dominance
/// for the factorization kernels).
fn dominate_diag(kk: &mut K, base: i32) {
    let (i, n) = (kk.i, kk.n);
    let f = &mut kk.f;
    f.for_range(i, n, |f| {
        a2(f, base, i, i, n);
        ld2(f, base, i, i, n);
        f.local_get(n).f64_convert_i32_s().f64_add();
        f.f64_store(0);
    });
}

// ---- linear algebra: BLAS-like ----

/// `gemm`: C = 1.5·A·B + 1.2·C.
pub fn gemm() -> Module {
    let mut kk = kern();
    let (a, b, c) = (mat(0), mat(1), mat(2));
    let K { ref mut f, n, i, j, k, acc, fa, .. } = kk;
    fill2(f, a, i, j, n, 7);
    fill2(f, b, i, j, n, 11);
    fill2(f, c, i, j, n, 13);
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            ld2(f, c, i, j, n);
            f.f64_const(1.2).f64_mul().local_set(fa);
            f.for_range(k, n, |f| {
                f.local_get(fa);
                ld2(f, a, i, k, n);
                ld2(f, b, k, j, n);
                f.f64_mul().f64_const(1.5).f64_mul().f64_add().local_set(fa);
            });
            st2(f, c, i, j, n, |f| {
                f.local_get(fa);
            });
        });
    });
    checksum2(f, c, i, j, n, acc);
    module("gemm", kk)
}

/// `2mm`: D = (A·B)·C.
pub fn two_mm() -> Module {
    let mut kk = kern();
    let (a, b, c, tmp, d) = (mat(0), mat(1), mat(2), mat(3), mat(4));
    let K { ref mut f, n, i, j, k, acc, fa, .. } = kk;
    fill2(f, a, i, j, n, 7);
    fill2(f, b, i, j, n, 11);
    fill2(f, c, i, j, n, 13);
    for (x, y, out) in [(a, b, tmp), (tmp, c, d)] {
        f.for_range(i, n, |f| {
            f.for_range(j, n, |f| {
                f.f64_const(0.0).local_set(fa);
                f.for_range(k, n, |f| {
                    f.local_get(fa);
                    ld2(f, x, i, k, n);
                    ld2(f, y, k, j, n);
                    f.f64_mul().f64_add().local_set(fa);
                });
                st2(f, out, i, j, n, |f| {
                    f.local_get(fa);
                });
            });
        });
    }
    checksum2(f, d, i, j, n, acc);
    module("2mm", kk)
}

/// `3mm`: G = (A·B)·(C·D).
pub fn three_mm() -> Module {
    let mut kk = kern();
    let (a, b, c, d, e, ff, g) = (mat(0), mat(1), mat(2), mat(3), mat(4), mat(5), mat(6));
    let K { ref mut f, n, i, j, k, acc, fa, .. } = kk;
    for (base, salt) in [(a, 7), (b, 11), (c, 13), (d, 17)] {
        fill2(f, base, i, j, n, salt);
    }
    for (x, y, out) in [(a, b, e), (c, d, ff), (e, ff, g)] {
        f.for_range(i, n, |f| {
            f.for_range(j, n, |f| {
                f.f64_const(0.0).local_set(fa);
                f.for_range(k, n, |f| {
                    f.local_get(fa);
                    ld2(f, x, i, k, n);
                    ld2(f, y, k, j, n);
                    f.f64_mul().f64_add().local_set(fa);
                });
                st2(f, out, i, j, n, |f| {
                    f.local_get(fa);
                });
            });
        });
    }
    checksum2(f, g, i, j, n, acc);
    module("3mm", kk)
}

/// `atax`: y = Aᵀ(A·x).
pub fn atax() -> Module {
    let mut kk = kern();
    let (a, x, y, tmp) = (mat(0), vc(0), vc(1), vc(2));
    let K { ref mut f, n, i, j, acc, fa, .. } = kk;
    fill2(f, a, i, j, n, 7);
    fill1(f, x, i, n, 11);
    f.for_range(i, n, |f| {
        st1(f, y, i, |f| {
            f.f64_const(0.0);
        });
    });
    f.for_range(i, n, |f| {
        f.f64_const(0.0).local_set(fa);
        f.for_range(j, n, |f| {
            f.local_get(fa);
            ld2(f, a, i, j, n);
            ld1(f, x, j);
            f.f64_mul().f64_add().local_set(fa);
        });
        st1(f, tmp, i, |f| {
            f.local_get(fa);
        });
        f.for_range(j, n, |f| {
            a1(f, y, j);
            ld1(f, y, j);
            ld2(f, a, i, j, n);
            f.local_get(fa).f64_mul().f64_add();
            f.f64_store(0);
        });
    });
    checksum1(f, y, i, n, acc);
    module("atax", kk)
}

/// `bicg`: q = A·p, s = Aᵀ·r.
pub fn bicg() -> Module {
    let mut kk = kern();
    let (a, p, r, q, s) = (mat(0), vc(0), vc(1), vc(2), vc(3));
    let K { ref mut f, n, i, j, acc, fa, .. } = kk;
    fill2(f, a, i, j, n, 7);
    fill1(f, p, i, n, 11);
    fill1(f, r, i, n, 13);
    f.for_range(i, n, |f| {
        st1(f, s, i, |f| {
            f.f64_const(0.0);
        });
    });
    f.for_range(i, n, |f| {
        f.f64_const(0.0).local_set(fa);
        f.for_range(j, n, |f| {
            // s[j] += r[i] * A[i][j]
            a1(f, s, j);
            ld1(f, s, j);
            ld1(f, r, i);
            ld2(f, a, i, j, n);
            f.f64_mul().f64_add();
            f.f64_store(0);
            // q accumulation
            f.local_get(fa);
            ld2(f, a, i, j, n);
            ld1(f, p, j);
            f.f64_mul().f64_add().local_set(fa);
        });
        st1(f, q, i, |f| {
            f.local_get(fa);
        });
    });
    checksum1(f, q, i, n, acc);
    checksum1(f, s, i, n, acc);
    module("bicg", kk)
}

/// `mvt`: x1 += A·y1, x2 += Aᵀ·y2.
pub fn mvt() -> Module {
    let mut kk = kern();
    let (a, x1, x2, y1, y2) = (mat(0), vc(0), vc(1), vc(2), vc(3));
    let K { ref mut f, n, i, j, acc, .. } = kk;
    fill2(f, a, i, j, n, 7);
    fill1(f, x1, i, n, 11);
    fill1(f, x2, i, n, 13);
    fill1(f, y1, i, n, 17);
    fill1(f, y2, i, n, 19);
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            a1(f, x1, i);
            ld1(f, x1, i);
            ld2(f, a, i, j, n);
            ld1(f, y1, j);
            f.f64_mul().f64_add();
            f.f64_store(0);
        });
    });
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            a1(f, x2, i);
            ld1(f, x2, i);
            ld2(f, a, j, i, n);
            ld1(f, y2, j);
            f.f64_mul().f64_add();
            f.f64_store(0);
        });
    });
    checksum1(f, x1, i, n, acc);
    checksum1(f, x2, i, n, acc);
    module("mvt", kk)
}

/// `gesummv`: y = 1.5·A·x + 1.2·B·x.
pub fn gesummv() -> Module {
    let mut kk = kern();
    let (a, b, x, y) = (mat(0), mat(1), vc(0), vc(1));
    let K { ref mut f, n, i, j, acc, fa, fb, .. } = kk;
    fill2(f, a, i, j, n, 7);
    fill2(f, b, i, j, n, 11);
    fill1(f, x, i, n, 13);
    f.for_range(i, n, |f| {
        f.f64_const(0.0).local_set(fa);
        f.f64_const(0.0).local_set(fb);
        f.for_range(j, n, |f| {
            f.local_get(fa);
            ld2(f, a, i, j, n);
            ld1(f, x, j);
            f.f64_mul().f64_add().local_set(fa);
            f.local_get(fb);
            ld2(f, b, i, j, n);
            ld1(f, x, j);
            f.f64_mul().f64_add().local_set(fb);
        });
        st1(f, y, i, |f| {
            f.local_get(fa)
                .f64_const(1.5)
                .f64_mul()
                .local_get(fb)
                .f64_const(1.2)
                .f64_mul()
                .f64_add();
        });
    });
    checksum1(f, y, i, n, acc);
    module("gesummv", kk)
}

/// `gemver`: rank-2 update, two matvecs, vector add.
pub fn gemver() -> Module {
    let mut kk = kern();
    let a = mat(0);
    let (u1, v1, u2, v2, x, y, z, w) = (vc(0), vc(1), vc(2), vc(3), vc(4), vc(5), vc(6), vc(7));
    let K { ref mut f, n, i, j, acc, .. } = kk;
    fill2(f, a, i, j, n, 7);
    for (base, salt) in [(u1, 11), (v1, 13), (u2, 17), (v2, 19), (y, 23), (z, 29)] {
        fill1(f, base, i, n, salt);
    }
    for base in [x, w] {
        f.for_range(i, n, |f| {
            st1(f, base, i, |f| {
                f.f64_const(0.0);
            });
        });
    }
    // A += u1 v1ᵀ + u2 v2ᵀ
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            a2(f, a, i, j, n);
            ld2(f, a, i, j, n);
            ld1(f, u1, i);
            ld1(f, v1, j);
            f.f64_mul().f64_add();
            ld1(f, u2, i);
            ld1(f, v2, j);
            f.f64_mul().f64_add();
            f.f64_store(0);
        });
    });
    // x = 1.2·Aᵀ·y + z
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            a1(f, x, i);
            ld1(f, x, i);
            ld2(f, a, j, i, n);
            ld1(f, y, j);
            f.f64_mul().f64_const(1.2).f64_mul().f64_add();
            f.f64_store(0);
        });
        a1(f, x, i);
        ld1(f, x, i);
        ld1(f, z, i);
        f.f64_add();
        f.f64_store(0);
    });
    // w = 1.5·A·x
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            a1(f, w, i);
            ld1(f, w, i);
            ld2(f, a, i, j, n);
            ld1(f, x, j);
            f.f64_mul().f64_const(1.5).f64_mul().f64_add();
            f.f64_store(0);
        });
    });
    checksum1(f, w, i, n, acc);
    module("gemver", kk)
}

/// `trmm`: triangular matrix multiply, B = 1.5·Aᵀ_lower·B.
pub fn trmm() -> Module {
    let mut kk = kern();
    let (a, b) = (mat(0), mat(1));
    let K { ref mut f, n, i, j, k, t, acc, fa, .. } = kk;
    fill2(f, a, i, j, n, 7);
    fill2(f, b, i, j, n, 11);
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            ld2(f, b, i, j, n);
            f.local_set(fa);
            f.local_get(i).i32_const(1).i32_add().local_set(t);
            f.for_range_from(k, t, n, |f| {
                f.local_get(fa);
                ld2(f, a, k, i, n);
                ld2(f, b, k, j, n);
                f.f64_mul().f64_add().local_set(fa);
            });
            st2(f, b, i, j, n, |f| {
                f.local_get(fa).f64_const(1.5).f64_mul();
            });
        });
    });
    checksum2(f, b, i, j, n, acc);
    module("trmm", kk)
}

/// `symm`: symmetric matrix multiply (PolyBench loop structure).
pub fn symm() -> Module {
    let mut kk = kern();
    let (a, b, c) = (mat(0), mat(1), mat(2));
    let K { ref mut f, n, i, j, k, acc, fa, fb, .. } = kk;
    fill2(f, a, i, j, n, 7);
    fill2(f, b, i, j, n, 11);
    fill2(f, c, i, j, n, 13);
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            f.f64_const(0.0).local_set(fb); // temp2
            f.for_range(k, i, |f| {
                // C[k][j] += 1.5 * B[i][j] * A[i][k]
                a2(f, c, k, j, n);
                ld2(f, c, k, j, n);
                ld2(f, b, i, j, n);
                ld2(f, a, i, k, n);
                f.f64_mul().f64_const(1.5).f64_mul().f64_add();
                f.f64_store(0);
                // temp2 += B[k][j] * A[i][k]
                f.local_get(fb);
                ld2(f, b, k, j, n);
                ld2(f, a, i, k, n);
                f.f64_mul().f64_add().local_set(fb);
            });
            ld2(f, c, i, j, n);
            f.f64_const(1.2).f64_mul();
            ld2(f, b, i, j, n);
            ld2(f, a, i, i, n);
            f.f64_mul().f64_const(1.5).f64_mul().f64_add();
            f.local_get(fb).f64_const(1.5).f64_mul().f64_add();
            f.local_set(fa);
            st2(f, c, i, j, n, |f| {
                f.local_get(fa);
            });
        });
    });
    checksum2(f, c, i, j, n, acc);
    module("symm", kk)
}

/// `syrk`: C = 1.5·A·Aᵀ + 1.2·C (lower triangle).
pub fn syrk() -> Module {
    let mut kk = kern();
    let (a, c) = (mat(0), mat(1));
    let K { ref mut f, n, i, j, k, t, acc, .. } = kk;
    fill2(f, a, i, j, n, 7);
    fill2(f, c, i, j, n, 11);
    f.for_range(i, n, |f| {
        f.local_get(i).i32_const(1).i32_add().local_set(t);
        f.for_range(j, t, |f| {
            a2(f, c, i, j, n);
            ld2(f, c, i, j, n);
            f.f64_const(1.2).f64_mul();
            f.f64_store(0);
        });
        f.for_range(k, n, |f| {
            f.for_range(j, t, |f| {
                a2(f, c, i, j, n);
                ld2(f, c, i, j, n);
                ld2(f, a, i, k, n);
                ld2(f, a, j, k, n);
                f.f64_mul().f64_const(1.5).f64_mul().f64_add();
                f.f64_store(0);
            });
        });
    });
    checksum2(f, c, i, j, n, acc);
    module("syrk", kk)
}

/// `syr2k`: C = 1.5·(A·Bᵀ + B·Aᵀ) + 1.2·C (lower triangle).
pub fn syr2k() -> Module {
    let mut kk = kern();
    let (a, b, c) = (mat(0), mat(1), mat(2));
    let K { ref mut f, n, i, j, k, t, acc, .. } = kk;
    fill2(f, a, i, j, n, 7);
    fill2(f, b, i, j, n, 11);
    fill2(f, c, i, j, n, 13);
    f.for_range(i, n, |f| {
        f.local_get(i).i32_const(1).i32_add().local_set(t);
        f.for_range(j, t, |f| {
            a2(f, c, i, j, n);
            ld2(f, c, i, j, n);
            f.f64_const(1.2).f64_mul();
            f.f64_store(0);
        });
        f.for_range(k, n, |f| {
            f.for_range(j, t, |f| {
                a2(f, c, i, j, n);
                ld2(f, c, i, j, n);
                ld2(f, a, j, k, n);
                ld2(f, b, i, k, n);
                f.f64_mul();
                ld2(f, b, j, k, n);
                ld2(f, a, i, k, n);
                f.f64_mul().f64_add();
                f.f64_const(1.5).f64_mul().f64_add();
                f.f64_store(0);
            });
        });
    });
    checksum2(f, c, i, j, n, acc);
    module("syr2k", kk)
}

// ---- solvers / factorizations ----

/// `trisolv`: forward substitution with a diagonally-dominant L.
pub fn trisolv() -> Module {
    let mut kk = kern();
    let (l, b, x) = (mat(0), vc(0), vc(1));
    {
        let K { ref mut f, n, i, j, .. } = kk;
        fill2(f, l, i, j, n, 7);
        fill1(f, b, i, n, 11);
    }
    dominate_diag(&mut kk, l);
    let K { ref mut f, n, i, j, acc, fa, .. } = kk;
    f.for_range(i, n, |f| {
        ld1(f, b, i);
        f.local_set(fa);
        f.for_range(j, i, |f| {
            f.local_get(fa);
            ld2(f, l, i, j, n);
            ld1(f, x, j);
            f.f64_mul().f64_sub().local_set(fa);
        });
        st1(f, x, i, |f| {
            f.local_get(fa);
            ld2(f, l, i, i, n);
            f.f64_div();
        });
    });
    checksum1(f, x, i, n, acc);
    module("trisolv", kk)
}

/// `durbin`: Levinson-Durbin recursion (r scaled for stability).
pub fn durbin() -> Module {
    let mut kk = kern();
    let (r, y, z) = (vc(0), vc(1), vc(2));
    let K { ref mut f, n, i, k, t, u, acc, fa, fb, .. } = kk;
    fill1(f, r, i, n, 7);
    // Scale r down so reflection coefficients stay bounded.
    f.for_range(i, n, |f| {
        a1(f, r, i);
        ld1(f, r, i);
        f.local_get(n).f64_convert_i32_s().f64_const(4.0).f64_mul().f64_div();
        f.f64_store(0);
    });
    // y[0] = -r[0]; beta (fb) = 1; alpha (fa) = -r[0].
    st1(f, y, 0, |f| {
        ld1(f, r, 0);
        f.f64_neg();
    });
    // Reuse local 0? locals: use t to hold literal 0 index for loads.
    f.i32_const(0).local_set(t);
    ld1(f, r, t);
    f.f64_neg().local_set(fa);
    f.f64_const(1.0).local_set(fb);
    f.i32_const(1).local_set(u);
    f.for_range_from(k, u, n, |f| {
        // beta = (1 - alpha^2) * beta
        f.f64_const(1.0)
            .local_get(fa)
            .local_get(fa)
            .f64_mul()
            .f64_sub()
            .local_get(fb)
            .f64_mul()
            .local_set(fb);
        // sum = Σ_{i<k} r[k-i-1] * y[i]   (accumulated into acc temporarily)
        f.f64_const(0.0).local_set(acc);
        f.for_range(i, k, |f| {
            f.local_get(k).local_get(i).i32_sub().i32_const(1).i32_sub().local_set(t);
            f.local_get(acc);
            ld1(f, r, t);
            ld1(f, y, i);
            f.f64_mul().f64_add().local_set(acc);
        });
        // alpha = -(r[k] + sum) / beta
        ld1(f, r, k);
        f.local_get(acc).f64_add().f64_neg().local_get(fb).f64_div().local_set(fa);
        // z[i] = y[i] + alpha * y[k-i-1]
        f.for_range(i, k, |f| {
            f.local_get(k).local_get(i).i32_sub().i32_const(1).i32_sub().local_set(t);
            st1(f, z, i, |f| {
                ld1(f, y, i);
                f.local_get(fa);
                ld1(f, y, t);
                f.f64_mul().f64_add();
            });
        });
        f.for_range(i, k, |f| {
            st1(f, y, i, |f| {
                ld1(f, z, i);
            });
        });
        st1(f, y, k, |f| {
            f.local_get(fa);
        });
    });
    f.f64_const(0.0).local_set(acc);
    checksum1(f, y, i, n, acc);
    module("durbin", kk)
}

/// `lu`: in-place LU decomposition of a diagonally-dominant matrix.
pub fn lu() -> Module {
    let mut kk = kern();
    let a = mat(0);
    {
        let K { ref mut f, n, i, j, .. } = kk;
        fill2(f, a, i, j, n, 7);
    }
    dominate_diag(&mut kk, a);
    let K { ref mut f, n, i, j, k, acc, fa, .. } = kk;
    f.for_range(i, n, |f| {
        f.for_range(j, i, |f| {
            ld2(f, a, i, j, n);
            f.local_set(fa);
            f.for_range(k, j, |f| {
                f.local_get(fa);
                ld2(f, a, i, k, n);
                ld2(f, a, k, j, n);
                f.f64_mul().f64_sub().local_set(fa);
            });
            st2(f, a, i, j, n, |f| {
                f.local_get(fa);
                ld2(f, a, j, j, n);
                f.f64_div();
            });
        });
        f.for_range_from(j, i, n, |f| {
            ld2(f, a, i, j, n);
            f.local_set(fa);
            f.for_range(k, i, |f| {
                f.local_get(fa);
                ld2(f, a, i, k, n);
                ld2(f, a, k, j, n);
                f.f64_mul().f64_sub().local_set(fa);
            });
            st2(f, a, i, j, n, |f| {
                f.local_get(fa);
            });
        });
    });
    checksum2(f, a, i, j, n, acc);
    module("lu", kk)
}

/// `ludcmp`: LU decomposition plus forward/backward substitution.
pub fn ludcmp() -> Module {
    let mut kk = kern();
    let (a, b, x, y) = (mat(0), vc(0), vc(1), vc(2));
    {
        let K { ref mut f, n, i, j, .. } = kk;
        fill2(f, a, i, j, n, 7);
        fill1(f, b, i, n, 11);
    }
    dominate_diag(&mut kk, a);
    let K { ref mut f, n, i, j, k, acc, fa, .. } = kk;
    // LU (same as `lu`).
    f.for_range(i, n, |f| {
        f.for_range(j, i, |f| {
            ld2(f, a, i, j, n);
            f.local_set(fa);
            f.for_range(k, j, |f| {
                f.local_get(fa);
                ld2(f, a, i, k, n);
                ld2(f, a, k, j, n);
                f.f64_mul().f64_sub().local_set(fa);
            });
            st2(f, a, i, j, n, |f| {
                f.local_get(fa);
                ld2(f, a, j, j, n);
                f.f64_div();
            });
        });
        f.for_range_from(j, i, n, |f| {
            ld2(f, a, i, j, n);
            f.local_set(fa);
            f.for_range(k, i, |f| {
                f.local_get(fa);
                ld2(f, a, i, k, n);
                ld2(f, a, k, j, n);
                f.f64_mul().f64_sub().local_set(fa);
            });
            st2(f, a, i, j, n, |f| {
                f.local_get(fa);
            });
        });
    });
    // Forward: y[i] = b[i] - Σ_{j<i} A[i][j]·y[j].
    f.for_range(i, n, |f| {
        ld1(f, b, i);
        f.local_set(fa);
        f.for_range(j, i, |f| {
            f.local_get(fa);
            ld2(f, a, i, j, n);
            ld1(f, y, j);
            f.f64_mul().f64_sub().local_set(fa);
        });
        st1(f, y, i, |f| {
            f.local_get(fa);
        });
    });
    // Backward: x[i] = (y[i] - Σ_{j>i} A[i][j]·x[j]) / A[i][i].
    for_down(f, i, n, |f| {
        ld1(f, y, i);
        f.local_set(fa);
        f.local_get(i).i32_const(1).i32_add().local_set(k);
        f.for_range_from(j, k, n, |f| {
            f.local_get(fa);
            ld2(f, a, i, j, n);
            ld1(f, x, j);
            f.f64_mul().f64_sub().local_set(fa);
        });
        st1(f, x, i, |f| {
            f.local_get(fa);
            ld2(f, a, i, i, n);
            f.f64_div();
        });
    });
    checksum1(f, x, i, n, acc);
    module("ludcmp", kk)
}

/// `cholesky`: Cholesky factorization of a diagonally-dominant matrix.
pub fn cholesky() -> Module {
    let mut kk = kern();
    let a = mat(0);
    {
        let K { ref mut f, n, i, j, .. } = kk;
        fill2(f, a, i, j, n, 7);
        // Symmetrize: A[i][j] = A[j][i] for j > i.
        f.for_range(i, n, |f| {
            f.for_range(j, i, |f| {
                st2(f, a, j, i, n, |f| {
                    ld2(f, a, i, j, n);
                });
            });
        });
    }
    dominate_diag(&mut kk, a);
    let K { ref mut f, n, i, j, k, acc, fa, .. } = kk;
    f.for_range(i, n, |f| {
        f.for_range(j, i, |f| {
            ld2(f, a, i, j, n);
            f.local_set(fa);
            f.for_range(k, j, |f| {
                f.local_get(fa);
                ld2(f, a, i, k, n);
                ld2(f, a, j, k, n);
                f.f64_mul().f64_sub().local_set(fa);
            });
            st2(f, a, i, j, n, |f| {
                f.local_get(fa);
                ld2(f, a, j, j, n);
                f.f64_div();
            });
        });
        ld2(f, a, i, i, n);
        f.local_set(fa);
        f.for_range(k, i, |f| {
            f.local_get(fa);
            ld2(f, a, i, k, n);
            ld2(f, a, i, k, n);
            f.f64_mul().f64_sub().local_set(fa);
        });
        st2(f, a, i, i, n, |f| {
            f.local_get(fa).f64_abs().f64_sqrt();
        });
    });
    checksum2(f, a, i, j, n, acc);
    module("cholesky", kk)
}

/// `gramschmidt`: modified Gram-Schmidt QR.
pub fn gramschmidt() -> Module {
    let mut kk = kern();
    let (a, q, r) = (mat(0), mat(1), mat(2));
    let K { ref mut f, n, i, j, k, t, acc, fa, .. } = kk;
    fill2(f, a, i, j, n, 7);
    f.for_range(k, n, |f| {
        // nrm = Σ_i A[i][k]^2 ; R[k][k] = sqrt(nrm)
        f.f64_const(0.0).local_set(fa);
        f.for_range(i, n, |f| {
            f.local_get(fa);
            ld2(f, a, i, k, n);
            ld2(f, a, i, k, n);
            f.f64_mul().f64_add().local_set(fa);
        });
        st2(f, r, k, k, n, |f| {
            f.local_get(fa).f64_sqrt();
        });
        f.for_range(i, n, |f| {
            st2(f, q, i, k, n, |f| {
                ld2(f, a, i, k, n);
                ld2(f, r, k, k, n);
                f.f64_div();
            });
        });
        f.local_get(k).i32_const(1).i32_add().local_set(t);
        f.for_range_from(j, t, n, |f| {
            f.f64_const(0.0).local_set(fa);
            f.for_range(i, n, |f| {
                f.local_get(fa);
                ld2(f, q, i, k, n);
                ld2(f, a, i, j, n);
                f.f64_mul().f64_add().local_set(fa);
            });
            st2(f, r, k, j, n, |f| {
                f.local_get(fa);
            });
            f.for_range(i, n, |f| {
                a2(f, a, i, j, n);
                ld2(f, a, i, j, n);
                ld2(f, q, i, k, n);
                ld2(f, r, k, j, n);
                f.f64_mul().f64_sub();
                f.f64_store(0);
            });
        });
    });
    checksum2(f, q, i, j, n, acc);
    checksum2(f, r, i, j, n, acc);
    module("gramschmidt", kk)
}

// ---- data mining ----

/// `correlation`: correlation matrix of an n×n dataset.
pub fn correlation() -> Module {
    let mut kk = kern();
    let (data, corr, mean, stddev) = (mat(0), mat(1), vc(0), vc(1));
    let K { ref mut f, n, i, j, k, t, acc, fa, .. } = kk;
    fill2(f, data, i, j, n, 7);
    // mean[j], stddev[j]
    f.for_range(j, n, |f| {
        f.f64_const(0.0).local_set(fa);
        f.for_range(i, n, |f| {
            f.local_get(fa);
            ld2(f, data, i, j, n);
            f.f64_add().local_set(fa);
        });
        st1(f, mean, j, |f| {
            f.local_get(fa).local_get(n).f64_convert_i32_s().f64_div();
        });
    });
    f.for_range(j, n, |f| {
        f.f64_const(0.0).local_set(fa);
        f.for_range(i, n, |f| {
            f.local_get(fa);
            ld2(f, data, i, j, n);
            ld1(f, mean, j);
            f.f64_sub();
            ld2(f, data, i, j, n);
            ld1(f, mean, j);
            f.f64_sub();
            f.f64_mul().f64_add().local_set(fa);
        });
        st1(f, stddev, j, |f| {
            f.local_get(fa)
                .local_get(n)
                .f64_convert_i32_s()
                .f64_div()
                .f64_sqrt()
                .f64_const(0.1)
                .f64_max();
        });
    });
    // Center and scale.
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            a2(f, data, i, j, n);
            ld2(f, data, i, j, n);
            ld1(f, mean, j);
            f.f64_sub();
            f.local_get(n).f64_convert_i32_s().f64_sqrt();
            ld1(f, stddev, j);
            f.f64_mul().f64_div();
            f.f64_store(0);
        });
    });
    // corr = dataᵀ·data (upper triangle mirrored).
    f.for_range(i, n, |f| {
        st2(f, corr, i, i, n, |f| {
            f.f64_const(1.0);
        });
        f.local_get(i).i32_const(1).i32_add().local_set(t);
        f.for_range_from(j, t, n, |f| {
            f.f64_const(0.0).local_set(fa);
            f.for_range(k, n, |f| {
                f.local_get(fa);
                ld2(f, data, k, i, n);
                ld2(f, data, k, j, n);
                f.f64_mul().f64_add().local_set(fa);
            });
            st2(f, corr, i, j, n, |f| {
                f.local_get(fa);
            });
            st2(f, corr, j, i, n, |f| {
                f.local_get(fa);
            });
        });
    });
    checksum2(f, corr, i, j, n, acc);
    module("correlation", kk)
}

/// `covariance`: covariance matrix of an n×n dataset.
pub fn covariance() -> Module {
    let mut kk = kern();
    let (data, cov, mean) = (mat(0), mat(1), vc(0));
    let K { ref mut f, n, i, j, k, acc, fa, .. } = kk;
    fill2(f, data, i, j, n, 7);
    f.for_range(j, n, |f| {
        f.f64_const(0.0).local_set(fa);
        f.for_range(i, n, |f| {
            f.local_get(fa);
            ld2(f, data, i, j, n);
            f.f64_add().local_set(fa);
        });
        st1(f, mean, j, |f| {
            f.local_get(fa).local_get(n).f64_convert_i32_s().f64_div();
        });
    });
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            a2(f, data, i, j, n);
            ld2(f, data, i, j, n);
            ld1(f, mean, j);
            f.f64_sub();
            f.f64_store(0);
        });
    });
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            f.f64_const(0.0).local_set(fa);
            f.for_range(k, n, |f| {
                f.local_get(fa);
                ld2(f, data, k, i, n);
                ld2(f, data, k, j, n);
                f.f64_mul().f64_add().local_set(fa);
            });
            st2(f, cov, i, j, n, |f| {
                f.local_get(fa)
                    .local_get(n)
                    .i32_const(1)
                    .i32_sub()
                    .f64_convert_i32_s()
                    .f64_const(1.0)
                    .f64_max()
                    .f64_div();
            });
        });
    });
    checksum2(f, cov, i, j, n, acc);
    module("covariance", kk)
}

// ---- stencils ----

/// `jacobi-1d`: 1-D 3-point stencil, n/2 time steps.
pub fn jacobi_1d() -> Module {
    let mut kk = kern();
    let (a, b) = (vc(0), vc(1));
    let K { ref mut f, n, i, t, k, u, acc, .. } = kk;
    fill1(f, a, i, n, 7);
    fill1(f, b, i, n, 11);
    f.local_get(n).i32_const(2).i32_div_s().local_set(k); // tsteps
    f.local_get(n).i32_const(1).i32_sub().local_set(u); // n-1
    f.for_range(t, k, |f| {
        for (src, dst) in [(a, b), (b, a)] {
            f.i32_const(1).local_set(i);
            f.block(BlockType::Empty);
            f.loop_(BlockType::Empty);
            f.local_get(i).local_get(u).i32_ge_s().br_if(1);
            {
                a1(f, dst, i);
                // A[i-1] + A[i] + A[i+1]
                f.local_get(i).i32_const(8).i32_mul().i32_const(src - 8).i32_add();
                f.f64_load(0);
                ld1(f, src, i);
                f.f64_add();
                f.local_get(i).i32_const(8).i32_mul().i32_const(src + 8).i32_add();
                f.f64_load(0);
                f.f64_add().f64_const(0.33333).f64_mul();
                f.f64_store(0);
            }
            f.local_get(i).i32_const(1).i32_add().local_set(i);
            f.br(0);
            f.end();
            f.end();
        }
    });
    checksum1(f, a, i, n, acc);
    module("jacobi-1d", kk)
}

/// `jacobi-2d`: 2-D 5-point stencil, n/8 time steps.
pub fn jacobi_2d() -> Module {
    let mut kk = kern();
    let (a, b) = (mat(0), mat(1));
    let K { ref mut f, n, i, j, t, k, u, acc, .. } = kk;
    fill2(f, a, i, j, n, 7);
    fill2(f, b, i, j, n, 11);
    f.local_get(n).i32_const(8).i32_div_s().i32_const(1).i32_add().local_set(k);
    f.local_get(n).i32_const(1).i32_sub().local_set(u);
    f.for_range(t, k, |f| {
        for (src, dst) in [(a, b), (b, a)] {
            f.i32_const(1).local_set(i);
            f.while_loop(
                |f| {
                    f.local_get(i).local_get(u).i32_lt_s();
                },
                |f| {
                    f.i32_const(1).local_set(j);
                    f.while_loop(
                        |f| {
                            f.local_get(j).local_get(u).i32_lt_s();
                        },
                        |f| {
                            a2(f, dst, i, j, n);
                            ld2(f, src, i, j, n);
                            // left/right: offset ±8 bytes
                            f.local_get(i)
                                .local_get(n)
                                .i32_mul()
                                .local_get(j)
                                .i32_add()
                                .i32_const(8)
                                .i32_mul()
                                .i32_const(src - 8)
                                .i32_add()
                                .f64_load(0);
                            f.f64_add();
                            f.local_get(i)
                                .local_get(n)
                                .i32_mul()
                                .local_get(j)
                                .i32_add()
                                .i32_const(8)
                                .i32_mul()
                                .i32_const(src + 8)
                                .i32_add()
                                .f64_load(0);
                            f.f64_add();
                            // up/down: ±n rows — recompute with i±1
                            f.local_get(i).i32_const(1).i32_sub().local_get(n).i32_mul();
                            f.local_get(j)
                                .i32_add()
                                .i32_const(8)
                                .i32_mul()
                                .i32_const(src)
                                .i32_add();
                            f.f64_load(0);
                            f.f64_add();
                            f.local_get(i).i32_const(1).i32_add().local_get(n).i32_mul();
                            f.local_get(j)
                                .i32_add()
                                .i32_const(8)
                                .i32_mul()
                                .i32_const(src)
                                .i32_add();
                            f.f64_load(0);
                            f.f64_add().f64_const(0.2).f64_mul();
                            f.f64_store(0);
                            f.local_get(j).i32_const(1).i32_add().local_set(j);
                        },
                    );
                    f.local_get(i).i32_const(1).i32_add().local_set(i);
                },
            );
        }
    });
    checksum2(f, a, i, j, n, acc);
    module("jacobi-2d", kk)
}

/// `seidel-2d`: in-place 9-point Gauss-Seidel sweep, n/8 time steps.
pub fn seidel_2d() -> Module {
    let mut kk = kern();
    let a = mat(0);
    let K { ref mut f, n, i, j, t, k, u, acc, .. } = kk;
    fill2(f, a, i, j, n, 7);
    f.local_get(n).i32_const(8).i32_div_s().i32_const(1).i32_add().local_set(k);
    f.local_get(n).i32_const(1).i32_sub().local_set(u);
    f.for_range(t, k, |f| {
        f.i32_const(1).local_set(i);
        f.while_loop(
            |f| {
                f.local_get(i).local_get(u).i32_lt_s();
            },
            |f| {
                f.i32_const(1).local_set(j);
                f.while_loop(
                    |f| {
                        f.local_get(j).local_get(u).i32_lt_s();
                    },
                    |f| {
                        a2(f, a, i, j, n);
                        // Nine neighbours via (i+di)*n + (j+dj).
                        let mut first = true;
                        for di in [-1i32, 0, 1] {
                            for dj in [-1i32, 0, 1] {
                                f.local_get(i).i32_const(di).i32_add();
                                f.local_get(n).i32_mul();
                                f.local_get(j).i32_const(dj).i32_add().i32_add();
                                f.i32_const(8).i32_mul().i32_const(a).i32_add();
                                f.f64_load(0);
                                if !first {
                                    f.f64_add();
                                }
                                first = false;
                            }
                        }
                        f.f64_const(9.0).f64_div();
                        f.f64_store(0);
                        f.local_get(j).i32_const(1).i32_add().local_set(j);
                    },
                );
                f.local_get(i).i32_const(1).i32_add().local_set(i);
            },
        );
    });
    checksum2(f, a, i, j, n, acc);
    module("seidel-2d", kk)
}

/// `fdtd-2d`: 2-D finite-difference time domain, n/8 time steps.
pub fn fdtd_2d() -> Module {
    let mut kk = kern();
    let (ex, ey, hz) = (mat(0), mat(1), mat(2));
    let K { ref mut f, n, i, j, t, k, u, acc, .. } = kk;
    fill2(f, ex, i, j, n, 7);
    fill2(f, ey, i, j, n, 11);
    fill2(f, hz, i, j, n, 13);
    f.local_get(n).i32_const(8).i32_div_s().i32_const(1).i32_add().local_set(k);
    f.local_get(n).i32_const(1).i32_sub().local_set(u);
    f.for_range(t, k, |f| {
        // ey[0][j] = t
        f.for_range(j, n, |f| {
            f.local_get(j).i32_const(8).i32_mul().i32_const(ey).i32_add();
            f.local_get(t).f64_convert_i32_s();
            f.f64_store(0);
        });
        // ey[i][j] -= 0.5*(hz[i][j] - hz[i-1][j]) for i>=1
        f.i32_const(1).local_set(i);
        f.while_loop(
            |f| {
                f.local_get(i).local_get(n).i32_lt_s();
            },
            |f| {
                f.for_range(j, n, |f| {
                    a2(f, ey, i, j, n);
                    ld2(f, ey, i, j, n);
                    ld2(f, hz, i, j, n);
                    f.local_get(i).i32_const(1).i32_sub().local_get(n).i32_mul();
                    f.local_get(j).i32_add().i32_const(8).i32_mul().i32_const(hz).i32_add();
                    f.f64_load(0);
                    f.f64_sub().f64_const(0.5).f64_mul().f64_sub();
                    f.f64_store(0);
                });
                f.local_get(i).i32_const(1).i32_add().local_set(i);
            },
        );
        // ex[i][j] -= 0.5*(hz[i][j] - hz[i][j-1]) for j>=1
        f.for_range(i, n, |f| {
            f.i32_const(1).local_set(j);
            f.while_loop(
                |f| {
                    f.local_get(j).local_get(n).i32_lt_s();
                },
                |f| {
                    a2(f, ex, i, j, n);
                    ld2(f, ex, i, j, n);
                    ld2(f, hz, i, j, n);
                    f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
                    f.i32_const(8).i32_mul().i32_const(hz - 8).i32_add();
                    f.f64_load(0);
                    f.f64_sub().f64_const(0.5).f64_mul().f64_sub();
                    f.f64_store(0);
                    f.local_get(j).i32_const(1).i32_add().local_set(j);
                },
            );
        });
        // hz[i][j] -= 0.7*(ex[i][j+1]-ex[i][j]+ey[i+1][j]-ey[i][j])
        f.for_range(i, u, |f| {
            f.for_range(j, u, |f| {
                a2(f, hz, i, j, n);
                ld2(f, hz, i, j, n);
                f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
                f.i32_const(8).i32_mul().i32_const(ex + 8).i32_add();
                f.f64_load(0);
                ld2(f, ex, i, j, n);
                f.f64_sub();
                f.local_get(i).i32_const(1).i32_add().local_get(n).i32_mul();
                f.local_get(j).i32_add().i32_const(8).i32_mul().i32_const(ey).i32_add();
                f.f64_load(0);
                f.f64_add();
                ld2(f, ey, i, j, n);
                f.f64_sub().f64_const(0.7).f64_mul().f64_sub();
                f.f64_store(0);
            });
        });
    });
    checksum2(f, hz, i, j, n, acc);
    module("fdtd-2d", kk)
}

/// `heat-3d`: 3-D 7-point stencil (n ≤ 32), 4 time steps.
pub fn heat_3d() -> Module {
    let mut kk = kern();
    let (a, b) = (mat(0), mat(2));
    let K { ref mut f, n, i, j, k, t, u, acc, fa, .. } = kk;
    // Fill the n^3 cube.
    f.local_get(n).local_get(n).i32_mul().local_get(n).i32_mul().local_set(t);
    fill1(f, a, i, t, 7);
    fill1(f, b, i, t, 11);
    f.local_get(n).i32_const(1).i32_sub().local_set(u);
    for step in 0..4 {
        let (src, dst) = if step % 2 == 0 { (a, b) } else { (b, a) };
        f.i32_const(1).local_set(i);
        f.while_loop(
            |f| {
                f.local_get(i).local_get(u).i32_lt_s();
            },
            |f| {
                f.i32_const(1).local_set(j);
                f.while_loop(
                    |f| {
                        f.local_get(j).local_get(u).i32_lt_s();
                    },
                    |f| {
                        f.i32_const(1).local_set(k);
                        f.while_loop(
                            |f| {
                                f.local_get(k).local_get(u).i32_lt_s();
                            },
                            |f| {
                                // center index in t
                                f.local_get(i)
                                    .local_get(n)
                                    .i32_mul()
                                    .local_get(j)
                                    .i32_add()
                                    .local_get(n)
                                    .i32_mul()
                                    .local_get(k)
                                    .i32_add()
                                    .local_set(t);
                                // fa = 0.125*(sum of 6 neighbours - 6*center) + center
                                ld1(f, src, t);
                                f.local_set(fa);
                                f.f64_const(0.0).local_set(acc);
                                // ±1 (k), ±n (j), ±n*n (i): byte offsets
                                f.local_get(acc);
                                for delta in [1i32, -1] {
                                    f.local_get(t).i32_const(8).i32_mul();
                                    f.i32_const(src + delta * 8).i32_add();
                                    f.f64_load(0);
                                    f.f64_add();
                                }
                                f.local_set(acc);
                                for (mul, _) in [(1, ()), (-1, ())] {
                                    f.local_get(acc);
                                    f.local_get(t)
                                        .local_get(n)
                                        .i32_const(mul)
                                        .i32_mul()
                                        .i32_add()
                                        .i32_const(8)
                                        .i32_mul()
                                        .i32_const(src)
                                        .i32_add()
                                        .f64_load(0);
                                    f.f64_add().local_set(acc);
                                    f.local_get(acc);
                                    f.local_get(t)
                                        .local_get(n)
                                        .local_get(n)
                                        .i32_mul()
                                        .i32_const(mul)
                                        .i32_mul()
                                        .i32_add()
                                        .i32_const(8)
                                        .i32_mul()
                                        .i32_const(src)
                                        .i32_add()
                                        .f64_load(0);
                                    f.f64_add().local_set(acc);
                                }
                                st1(f, dst, t, |f| {
                                    f.local_get(acc)
                                        .local_get(fa)
                                        .f64_const(6.0)
                                        .f64_mul()
                                        .f64_sub()
                                        .f64_const(0.125)
                                        .f64_mul()
                                        .local_get(fa)
                                        .f64_add();
                                });
                                f.local_get(k).i32_const(1).i32_add().local_set(k);
                            },
                        );
                        f.local_get(j).i32_const(1).i32_add().local_set(j);
                    },
                );
                f.local_get(i).i32_const(1).i32_add().local_set(i);
            },
        );
    }
    f.local_get(n).local_get(n).i32_mul().local_get(n).i32_mul().local_set(t);
    f.f64_const(0.0).local_set(acc);
    checksum1(f, a, i, t, acc);
    module("heat-3d", kk)
}

/// `adi`: alternating-direction implicit sweeps (PolyBench structure,
/// simplified coefficients), n/8 time steps.
pub fn adi() -> Module {
    let mut kk = kern();
    let (u_, v_, p_, q_) = (mat(0), mat(1), mat(2), mat(3));
    let K { ref mut f, n, i, j, t, k, u, acc, .. } = kk;
    fill2(f, u_, i, j, n, 7);
    f.local_get(n).i32_const(8).i32_div_s().i32_const(1).i32_add().local_set(k);
    f.local_get(n).i32_const(1).i32_sub().local_set(u);
    f.for_range(t, k, |f| {
        for (rd, wr) in [(u_, v_), (v_, u_)] {
            // Sweep: for each column i, a first-order recurrence in j.
            f.i32_const(1).local_set(i);
            f.while_loop(
                |f| {
                    f.local_get(i).local_get(u).i32_lt_s();
                },
                |f| {
                    st2(f, p_, i, 0, n, |f| {
                        f.f64_const(0.0);
                    });
                    st2(f, q_, i, 0, n, |f| {
                        f.f64_const(1.0);
                    });
                    f.i32_const(1).local_set(j);
                    f.while_loop(
                        |f| {
                            f.local_get(j).local_get(u).i32_lt_s();
                        },
                        |f| {
                            // p[i][j] = -0.5 / (0.5*p[i][j-1] + 2)
                            a2(f, p_, i, j, n);
                            f.f64_const(-0.5);
                            f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
                            f.i32_const(8).i32_mul().i32_const(p_ - 8).i32_add();
                            f.f64_load(0);
                            f.f64_const(0.5).f64_mul().f64_const(2.0).f64_add();
                            f.f64_div();
                            f.f64_store(0);
                            // q[i][j] = (rd[j][i] + 0.5*q[i][j-1]) / (0.5*p[i][j-1]+2)
                            a2(f, q_, i, j, n);
                            ld2(f, rd, j, i, n);
                            f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
                            f.i32_const(8).i32_mul().i32_const(q_ - 8).i32_add();
                            f.f64_load(0);
                            f.f64_const(0.5).f64_mul().f64_add();
                            f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
                            f.i32_const(8).i32_mul().i32_const(p_ - 8).i32_add();
                            f.f64_load(0);
                            f.f64_const(0.5).f64_mul().f64_const(2.0).f64_add();
                            f.f64_div();
                            f.f64_store(0);
                            f.local_get(j).i32_const(1).i32_add().local_set(j);
                        },
                    );
                    // Back substitution: wr[n-1][i]=1; wr[j][i]=p[i][j]*wr[j+1][i]+q[i][j]
                    st2(f, wr, u, i, n, |f| {
                        f.f64_const(1.0);
                    });
                    for_down(f, j, u, |f| {
                        st2(f, wr, j, i, n, |f| {
                            ld2(f, p_, i, j, n);
                            f.local_get(j).i32_const(1).i32_add().local_get(n).i32_mul();
                            f.local_get(i).i32_add().i32_const(8).i32_mul().i32_const(wr).i32_add();
                            f.f64_load(0);
                            f.f64_mul();
                            ld2(f, q_, i, j, n);
                            f.f64_add();
                        });
                    });
                    f.local_get(i).i32_const(1).i32_add().local_set(i);
                },
            );
        }
    });
    checksum2(f, u_, i, j, n, acc);
    module("adi", kk)
}

// ---- dynamic programming / misc ----

/// `doitgen`: multiresolution analysis kernel (n ≤ 32).
pub fn doitgen() -> Module {
    let mut kk = kern();
    let (a, c4, sum) = (mat(0), mat(2), vc(0));
    let K { ref mut f, n, i, j, k, t, u, acc, fa, .. } = kk;
    // A is n×n×n at base a; C4 is n×n.
    f.local_get(n).local_get(n).i32_mul().local_get(n).i32_mul().local_set(t);
    fill1(f, a, i, t, 7);
    fill2(f, c4, i, j, n, 11);
    // for r (i), q (j): sum[p] = Σ_s A[r][q][s]·C4[s][p]; A[r][q][p] = sum[p].
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            f.for_range(k, n, |f| {
                f.f64_const(0.0).local_set(fa);
                f.for_range(u, n, |f| {
                    // t = ((i*n + j)*n + u)
                    f.local_get(i)
                        .local_get(n)
                        .i32_mul()
                        .local_get(j)
                        .i32_add()
                        .local_get(n)
                        .i32_mul()
                        .local_get(u)
                        .i32_add()
                        .local_set(t);
                    f.local_get(fa);
                    ld1(f, a, t);
                    ld2(f, c4, u, k, n);
                    f.f64_mul().f64_add().local_set(fa);
                });
                st1(f, sum, k, |f| {
                    f.local_get(fa);
                });
            });
            f.for_range(k, n, |f| {
                f.local_get(i)
                    .local_get(n)
                    .i32_mul()
                    .local_get(j)
                    .i32_add()
                    .local_get(n)
                    .i32_mul()
                    .local_get(k)
                    .i32_add()
                    .local_set(t);
                st1(f, a, t, |f| {
                    ld1(f, sum, k);
                });
            });
        });
    });
    f.local_get(n).local_get(n).i32_mul().local_get(n).i32_mul().local_set(t);
    checksum1(f, a, i, t, acc);
    module("doitgen", kk)
}

/// `nussinov`: RNA folding dynamic program (i32 DP table).
pub fn nussinov() -> Module {
    let mut kk = kern();
    let (tbl, seq) = (mat(0), vc(0)); // i32 table, i32 sequence
    let K { ref mut f, n, i, j, k, t, u, acc, .. } = kk;
    // seq[i] = i % 4 (i32 at 4-byte stride); table zeroed.
    f.for_range(i, n, |f| {
        f.local_get(i).i32_const(4).i32_mul().i32_const(seq).i32_add();
        f.local_get(i).i32_const(4).i32_rem_s();
        f.i32_store(0);
    });
    f.local_get(n).local_get(n).i32_mul().local_set(t);
    f.for_range(i, t, |f| {
        f.local_get(i).i32_const(4).i32_mul().i32_const(tbl).i32_add();
        f.i32_const(0);
        f.i32_store(0);
    });
    // i32 2-D addressing helper is emitted inline: (i*n+j)*4 + tbl.
    for_down(f, i, n, |f| {
        f.local_get(i).i32_const(1).i32_add().local_set(t);
        f.for_range_from(j, t, n, |f| {
            // u = max(T[i][j-1], T[i+1][j])
            f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
            f.i32_const(4).i32_mul().i32_const(tbl - 4).i32_add();
            f.i32_load(0);
            f.local_get(i).i32_const(1).i32_add().local_get(n).i32_mul().local_get(j).i32_add();
            f.i32_const(4).i32_mul().i32_const(tbl).i32_add();
            f.i32_load(0);
            f.local_set(u);
            f.local_tee(k); // k = T[i][j-1] (temp reuse)
            f.local_get(u).local_get(k).local_get(u).i32_gt_s().select();
            f.local_set(u);
            // pairing: if i < j-1: u = max(u, T[i+1][j-1] + match)
            f.local_get(i).local_get(j).i32_const(1).i32_sub().i32_lt_s();
            f.if_(BlockType::Empty);
            f.local_get(i).i32_const(1).i32_add().local_get(n).i32_mul();
            f.local_get(j).i32_add();
            f.i32_const(4).i32_mul().i32_const(tbl - 4).i32_add();
            f.i32_load(0);
            // match = (seq[i] + seq[j] == 3)
            f.local_get(i).i32_const(4).i32_mul().i32_const(seq).i32_add().i32_load(0);
            f.local_get(j).i32_const(4).i32_mul().i32_const(seq).i32_add().i32_load(0);
            f.i32_add().i32_const(3).i32_eq();
            f.i32_add();
            f.local_set(k);
            f.local_get(k).local_get(u).local_get(k).local_get(u).i32_gt_s().select();
            f.local_set(u);
            f.end();
            // split: for k in i+1..j: u = max(u, T[i][k] + T[k+1][j])
            f.local_get(i).i32_const(1).i32_add().local_set(k);
            f.while_loop(
                |f| {
                    f.local_get(k).local_get(j).i32_lt_s();
                },
                |f| {
                    f.local_get(i).local_get(n).i32_mul().local_get(k).i32_add();
                    f.i32_const(4).i32_mul().i32_const(tbl).i32_add();
                    f.i32_load(0);
                    f.local_get(k).i32_const(1).i32_add().local_get(n).i32_mul();
                    f.local_get(j).i32_add();
                    f.i32_const(4).i32_mul().i32_const(tbl).i32_add();
                    f.i32_load(0);
                    f.i32_add();
                    f.local_set(t);
                    f.local_get(t).local_get(u).local_get(t).local_get(u).i32_gt_s().select();
                    f.local_set(u);
                    f.local_get(k).i32_const(1).i32_add().local_set(k);
                },
            );
            // T[i][j] = u
            f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
            f.i32_const(4).i32_mul().i32_const(tbl).i32_add();
            f.local_get(u);
            f.i32_store(0);
        });
    });
    // checksum = T[0][n-1] as f64
    f.local_get(n).i32_const(1).i32_sub().i32_const(4).i32_mul().i32_const(tbl).i32_add();
    f.i32_load(0);
    f.f64_convert_i32_s().local_set(acc);
    module("nussinov", kk)
}

/// `floyd-warshall`: all-pairs shortest paths on an i32 matrix.
pub fn floyd_warshall() -> Module {
    let mut kk = kern();
    let p = mat(0); // i32 matrix
    let K { ref mut f, n, i, j, k, t, acc, .. } = kk;
    // path[i][j] = (i*j) % 13 + 3, diagonal 0.
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
            f.i32_const(4).i32_mul().i32_const(p).i32_add();
            f.i32_const(0);
            f.local_get(i).local_get(j).i32_mul().i32_const(13).i32_rem_s().i32_const(3).i32_add();
            f.local_get(i).local_get(j).i32_eq();
            f.select();
            f.i32_store(0);
        });
    });
    f.for_range(k, n, |f| {
        f.for_range(i, n, |f| {
            f.for_range(j, n, |f| {
                // t = path[i][k] + path[k][j]
                f.local_get(i).local_get(n).i32_mul().local_get(k).i32_add();
                f.i32_const(4).i32_mul().i32_const(p).i32_add().i32_load(0);
                f.local_get(k).local_get(n).i32_mul().local_get(j).i32_add();
                f.i32_const(4).i32_mul().i32_const(p).i32_add().i32_load(0);
                f.i32_add().local_set(t);
                // path[i][j] = min(path[i][j], t)
                f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
                f.i32_const(4).i32_mul().i32_const(p).i32_add();
                f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
                f.i32_const(4).i32_mul().i32_const(p).i32_add().i32_load(0);
                f.local_get(t);
                f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
                f.i32_const(4).i32_mul().i32_const(p).i32_add().i32_load(0);
                f.local_get(t).i32_lt_s().select();
                f.i32_store(0);
            });
        });
    });
    // checksum = sum of the i32 matrix.
    f.f64_const(0.0).local_set(acc);
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            f.local_get(acc);
            f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
            f.i32_const(4).i32_mul().i32_const(p).i32_add().i32_load(0);
            f.f64_convert_i32_s().f64_add().local_set(acc);
        });
    });
    module("floyd-warshall", kk)
}

/// The built suite, memoized: kernel construction is deterministic, so
/// fleets and benches that materialize the suite per job/process clone the
/// cached modules instead of re-running the builder DSL every time.
static ALL: std::sync::LazyLock<Vec<(&'static str, Module)>> = std::sync::LazyLock::new(build_all);

/// Returns every PolyBench kernel as `(name, module)` (cached; cloning a
/// built module is cheap relative to rebuilding it).
pub fn all() -> Vec<(&'static str, Module)> {
    ALL.clone()
}

fn build_all() -> Vec<(&'static str, Module)> {
    vec![
        ("jacobi-1d", jacobi_1d()),
        ("trisolv", trisolv()),
        ("gesummv", gesummv()),
        ("durbin", durbin()),
        ("bicg", bicg()),
        ("atax", atax()),
        ("mvt", mvt()),
        ("gemver", gemver()),
        ("trmm", trmm()),
        ("doitgen", doitgen()),
        ("syrk", syrk()),
        ("correlation", correlation()),
        ("covariance", covariance()),
        ("symm", symm()),
        ("gemm", gemm()),
        ("syr2k", syr2k()),
        ("gramschmidt", gramschmidt()),
        ("2mm", two_mm()),
        ("fdtd-2d", fdtd_2d()),
        ("nussinov", nussinov()),
        ("3mm", three_mm()),
        ("jacobi-2d", jacobi_2d()),
        ("adi", adi()),
        ("seidel-2d", seidel_2d()),
        ("heat-3d", heat_3d()),
        ("cholesky", cholesky()),
        ("ludcmp", ludcmp()),
        ("lu", lu()),
        ("floyd-warshall", floyd_warshall()),
    ]
}

/// Kernels that use 3-D arrays and need smaller problem sizes.
pub fn is_cubic(name: &str) -> bool {
    matches!(name, "heat-3d" | "doitgen")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};

    #[test]
    fn all_kernels_validate_and_tiers_agree() {
        for (name, module) in all() {
            let n = if is_cubic(name) { 6 } else { 10 };
            let mut interp =
                Process::new(module.clone(), EngineConfig::interpreter(), &Linker::new())
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut jit = Process::new(module, EngineConfig::jit(), &Linker::new()).unwrap();
            let r1 = interp
                .invoke_export("run", &[Value::I32(n)])
                .unwrap_or_else(|e| panic!("{name} (interp): {e}"));
            let r2 = jit
                .invoke_export("run", &[Value::I32(n)])
                .unwrap_or_else(|e| panic!("{name} (jit): {e}"));
            // Bit-exact agreement between tiers.
            assert_eq!(
                r1[0].to_slot(),
                r2[0].to_slot(),
                "{name}: tier results diverge: {r1:?} vs {r2:?}"
            );
            let v = r1[0].as_f64().unwrap();
            assert!(v.is_finite(), "{name}: non-finite checksum {v}");
            assert!(v != 0.0 || name == "nussinov", "{name}: suspicious zero checksum");
        }
    }
}
