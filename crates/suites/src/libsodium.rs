//! Libsodium-style crypto kernels: the paper's third suite. Each kernel
//! exports `run(n: i32) -> f64` where `n` scales the message size (KiB)
//! or operation count.
//!
//! `stream` (ChaCha20 core) and `shorthash` (SipHash-2-4) are faithful
//! implementations; the remaining kernels preserve each primitive's
//! operation mix (add-rotate-xor rounds, field multiplications, MAC
//! accumulation) with simplified constants — see DESIGN.md.

use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::{LocalIdx, Module};
use wizard_wasm::types::ValType::{F64, I32, I64};

const BUF: i32 = 0x1_0000;
const PAGES: u32 = 16;

fn finish(name: &str, f: FuncBuilder) -> Module {
    let mut mb = ModuleBuilder::new();
    mb.memory(PAGES);
    mb.add_func("run", f);
    mb.build().unwrap_or_else(|e| panic!("kernel {name} failed to validate: {e}"))
}

/// `stream`: the real ChaCha20 block function, `n*16` blocks of keystream.
pub fn stream_chacha20() -> Module {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let blk = f.local(I32);
    let nblocks = f.local(I32);
    let r = f.local(I32);
    let acc = f.local(I64);
    // Sixteen state words.
    let s: Vec<LocalIdx> = (0..16).map(|_| f.local(I32)).collect();
    // Initial state constants: "expa" etc. + fixed key/nonce words.
    let init: [i32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        0x0302_0100,
        0x0706_0504,
        0x0b0a_0908,
        0x0f0e_0d0c,
        0x1312_1110,
        0x1716_1514,
        0x1b1a_1918,
        0x1f1e_1d1c,
        0, // counter, set per block
        0x0000_004a,
        0x0000_0000,
        0x4a00_0000u32 as i32,
    ];
    f.local_get(0).i32_const(16).i32_mul().local_set(nblocks);
    f.for_range(blk, nblocks, |f| {
        for (w, sw) in s.iter().enumerate() {
            if w == 12 {
                f.local_get(blk).local_set(*sw);
            } else {
                f.i32_const(init[w]).local_set(*sw);
            }
        }
        // 10 double rounds.
        let qr = |f: &mut FuncBuilder, a: LocalIdx, b: LocalIdx, c: LocalIdx, d: LocalIdx| {
            f.local_get(a).local_get(b).i32_add().local_set(a);
            f.local_get(d).local_get(a).i32_xor().i32_const(16).i32_rotl().local_set(d);
            f.local_get(c).local_get(d).i32_add().local_set(c);
            f.local_get(b).local_get(c).i32_xor().i32_const(12).i32_rotl().local_set(b);
            f.local_get(a).local_get(b).i32_add().local_set(a);
            f.local_get(d).local_get(a).i32_xor().i32_const(8).i32_rotl().local_set(d);
            f.local_get(c).local_get(d).i32_add().local_set(c);
            f.local_get(b).local_get(c).i32_xor().i32_const(7).i32_rotl().local_set(b);
        };
        f.for_const(r, 10, |f| {
            qr(f, s[0], s[4], s[8], s[12]);
            qr(f, s[1], s[5], s[9], s[13]);
            qr(f, s[2], s[6], s[10], s[14]);
            qr(f, s[3], s[7], s[11], s[15]);
            qr(f, s[0], s[5], s[10], s[15]);
            qr(f, s[1], s[6], s[11], s[12]);
            qr(f, s[2], s[7], s[8], s[13]);
            qr(f, s[3], s[4], s[9], s[14]);
        });
        // Add the initial state and fold into the checksum accumulator.
        for (w, sw) in s.iter().enumerate() {
            f.local_get(acc);
            f.local_get(*sw);
            if w == 12 {
                f.local_get(blk).i32_add();
            } else {
                f.i32_const(init[w]).i32_add();
            }
            f.i64_extend_i32_u().i64_add().local_set(acc);
        }
    });
    f.local_get(acc).i64_const(0xfff_ffff).i64_and().f64_convert_i64_s();
    finish("stream", f)
}

/// `shorthash`: SipHash-2-4 over `n` KiB of generated 8-byte words.
pub fn shorthash_siphash() -> Module {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let i = f.local(I32);
    let words = f.local(I32);
    let m = f.local(I64);
    let v0 = f.local(I64);
    let v1 = f.local(I64);
    let v2 = f.local(I64);
    let v3 = f.local(I64);
    f.i64_const(0x736f_6d65_7073_6575u64 as i64).local_set(v0);
    f.i64_const(0x646f_7261_6e64_6f6du64 as i64).local_set(v1);
    f.i64_const(0x6c79_6765_6e65_7261u64 as i64).local_set(v2);
    f.i64_const(0x7465_6462_7974_6573u64 as i64).local_set(v3);
    let round = |f: &mut FuncBuilder| {
        f.local_get(v0).local_get(v1).i64_add().local_set(v0);
        f.local_get(v1).i64_const(13).i64_rotl().local_get(v0).i64_xor().local_set(v1);
        f.local_get(v0).i64_const(32).i64_rotl().local_set(v0);
        f.local_get(v2).local_get(v3).i64_add().local_set(v2);
        f.local_get(v3).i64_const(16).i64_rotl().local_get(v2).i64_xor().local_set(v3);
        f.local_get(v0).local_get(v3).i64_add().local_set(v0);
        f.local_get(v3).i64_const(21).i64_rotl().local_get(v0).i64_xor().local_set(v3);
        f.local_get(v2).local_get(v1).i64_add().local_set(v2);
        f.local_get(v1).i64_const(17).i64_rotl().local_get(v2).i64_xor().local_set(v1);
        f.local_get(v2).i64_const(32).i64_rotl().local_set(v2);
    };
    f.local_get(0).i32_const(128).i32_mul().local_set(words);
    f.for_range(i, words, |f| {
        // m = word i of the message (generated arithmetically).
        f.local_get(i)
            .i64_extend_i32_u()
            .i64_const(0x9e37_79b9_7f4a_7c15u64 as i64)
            .i64_mul()
            .local_set(m);
        f.local_get(v3).local_get(m).i64_xor().local_set(v3);
        round(f);
        round(f);
        f.local_get(v0).local_get(m).i64_xor().local_set(v0);
    });
    f.local_get(v2).i64_const(0xff).i64_xor().local_set(v2);
    for _ in 0..4 {
        round(&mut f);
    }
    f.local_get(v0)
        .local_get(v1)
        .i64_xor()
        .local_get(v2)
        .i64_xor()
        .local_get(v3)
        .i64_xor()
        .i64_const(0xfff_ffff)
        .i64_and()
        .f64_convert_i64_s();
    finish("shorthash", f)
}

/// `hash`: FNV-1a 64 with avalanche finalization over `n` KiB.
pub fn hash() -> Module {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let i = f.local(I32);
    let len = f.local(I32);
    let h = f.local(I64);
    f.i64_const(0xcbf2_9ce4_8422_2325u64 as i64).local_set(h);
    f.local_get(0).i32_const(1024).i32_mul().local_set(len);
    f.for_range(i, len, |f| {
        f.local_get(h);
        f.local_get(i).i32_const(251).i32_mul().i32_const(0xff).i32_and().i64_extend_i32_u();
        f.i64_xor().i64_const(0x0000_0100_0000_01b3).i64_mul().local_set(h);
    });
    // xorshift-multiply avalanche.
    for shift in [33, 29, 32] {
        f.local_get(h).local_get(h).i64_const(shift).i64_shr_u().i64_xor().local_set(h);
        f.local_get(h).i64_const(0xff51_afd7_ed55_8ccdu64 as i64).i64_mul().local_set(h);
    }
    f.local_get(h).i64_const(0xfff_ffff).i64_and().f64_convert_i64_s();
    finish("hash", f)
}

/// `auth`: HMAC-style two-pass keyed hash (inner and outer pads).
pub fn auth() -> Module {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let i = f.local(I32);
    let len = f.local(I32);
    let h = f.local(I64);
    let pass = f.local(I32);
    let key: i64 = 0x0f1e_2d3c_4b5a_6978;
    f.local_get(0).i32_const(1024).i32_mul().local_set(len);
    f.i64_const(key ^ 0x3636_3636_3636_3636).local_set(h);
    f.for_const(pass, 2, |f| {
        f.for_range(i, len, |f| {
            f.local_get(h);
            f.local_get(i).i32_const(167).i32_mul().i32_const(0xff).i32_and().i64_extend_i32_u();
            f.i64_xor().i64_const(0x0000_0100_0000_01b3).i64_mul().local_set(h);
        });
        // Re-key with the opad for the outer pass.
        f.local_get(h).i64_const(key ^ 0x5c5c_5c5c_5c5c_5c5cu64 as i64).i64_xor().local_set(h);
    });
    f.local_get(h).i64_const(0xfff_ffff).i64_and().f64_convert_i64_s();
    finish("auth", f)
}

/// `onetimeauth`: Poly1305-style MAC accumulation,
/// `acc = (acc + m) * r mod 2^61-1`, over `n` KiB of 8-byte words.
pub fn onetimeauth() -> Module {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let i = f.local(I32);
    let words = f.local(I32);
    let acc = f.local(I64);
    let p: i64 = (1 << 61) - 1;
    f.local_get(0).i32_const(128).i32_mul().local_set(words);
    f.for_range(i, words, |f| {
        // m = generated message word, kept below 2^32 so the modular
        // multiply cannot overflow 64 bits.
        f.local_get(acc);
        f.local_get(i).i64_extend_i32_u().i64_const(0x9e3_779b).i64_mul();
        f.i64_add().i64_const(p).i64_rem_u();
        f.i64_const(0x1234_5679).i64_mul().i64_const(p).i64_rem_u();
        f.local_set(acc);
    });
    f.local_get(acc).i64_const(0xfff_ffff).i64_and().f64_convert_i64_s();
    finish("onetimeauth", f)
}

/// `generichash`: BLAKE2-style mixing — 12 rounds of the G function over
/// an 8-word i64 state per `n*64` message blocks.
pub fn generichash() -> Module {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let blk = f.local(I32);
    let nblocks = f.local(I32);
    let r = f.local(I32);
    let m = f.local(I64);
    let v: Vec<LocalIdx> = (0..8).map(|_| f.local(I64)).collect();
    for (w, vw) in v.iter().enumerate() {
        f.i64_const(0x6a09_e667_f3bc_c908u64 as i64 ^ (w as i64 * 0x1011)).local_set(*vw);
    }
    f.local_get(0).i32_const(64).i32_mul().local_set(nblocks);
    f.for_range(blk, nblocks, |f| {
        f.local_get(blk)
            .i64_extend_i32_u()
            .i64_const(0x9e37_79b9_7f4a_7c15u64 as i64)
            .i64_mul()
            .local_set(m);
        f.for_const(r, 12, |f| {
            for (a, b, c, d) in [(0, 2, 4, 6), (1, 3, 5, 7), (0, 3, 4, 7), (1, 2, 5, 6)] {
                // G: a += b + m; d = rotr(d ^ a, 32); c += d;
                //    b = rotr(b ^ c, 24); a += b; d = rotr(d ^ a, 16);
                //    c += d; b = rotr(b ^ c, 63)
                f.local_get(v[a]).local_get(v[b]).i64_add().local_get(m).i64_add().local_set(v[a]);
                f.local_get(v[d])
                    .local_get(v[a])
                    .i64_xor()
                    .i64_const(32)
                    .i64_rotr()
                    .local_set(v[d]);
                f.local_get(v[c]).local_get(v[d]).i64_add().local_set(v[c]);
                f.local_get(v[b])
                    .local_get(v[c])
                    .i64_xor()
                    .i64_const(24)
                    .i64_rotr()
                    .local_set(v[b]);
                f.local_get(v[a]).local_get(v[b]).i64_add().local_set(v[a]);
                f.local_get(v[d])
                    .local_get(v[a])
                    .i64_xor()
                    .i64_const(16)
                    .i64_rotr()
                    .local_set(v[d]);
                f.local_get(v[c]).local_get(v[d]).i64_add().local_set(v[c]);
                f.local_get(v[b])
                    .local_get(v[c])
                    .i64_xor()
                    .i64_const(63)
                    .i64_rotr()
                    .local_set(v[b]);
            }
        });
    });
    f.local_get(v[0]);
    for vw in &v[1..] {
        f.local_get(*vw).i64_xor();
    }
    f.i64_const(0xfff_ffff).i64_and().f64_convert_i64_s();
    finish("generichash", f)
}

/// `scalarmult`: Montgomery-ladder-style field exponentiation,
/// square-and-multiply mod 2^61-1 per scalar bit, repeated `n*4` times.
pub fn scalarmult() -> Module {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let rep = f.local(I32);
    let reps = f.local(I32);
    let bit = f.local(I32);
    let x = f.local(I64);
    let acc = f.local(I64);
    let p: i64 = (1 << 61) - 1;
    f.local_get(0).i32_const(4).i32_mul().local_set(reps);
    f.i64_const(9).local_set(x);
    f.for_range(rep, reps, |f| {
        f.for_const(bit, 255, |f| {
            // Keep x < 2^31 so x*x fits in i64: reduce then mask.
            f.local_get(x).i64_const(p).i64_rem_u().i64_const(0x7fff_ffff).i64_and().local_set(x);
            // Square, conditionally multiply by the base point.
            f.local_get(x).local_get(x).i64_mul().i64_const(p).i64_rem_u().local_set(x);
            f.local_get(bit)
                .i32_const(3)
                .i32_and()
                .i32_eqz()
                .if_(wizard_wasm::types::BlockType::Empty);
            f.local_get(x).i64_const(9).i64_mul().i64_const(p).i64_rem_u().local_set(x);
            f.end();
        });
        f.local_get(acc).local_get(x).i64_add().local_set(acc);
    });
    f.local_get(acc).i64_const(0xfff_ffff).i64_and().f64_convert_i64_s();
    finish("scalarmult", f)
}

/// `secretbox`: stream-cipher keystream (ChaCha-style quarter rounds on 4
/// words) XOR message, then a running MAC — the secretbox composition.
pub fn secretbox() -> Module {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let i = f.local(I32);
    let words = f.local(I32);
    let a = f.local(I32);
    let b = f.local(I32);
    let c = f.local(I32);
    let d = f.local(I32);
    let mac = f.local(I64);
    let p: i64 = (1 << 61) - 1;
    f.local_get(0).i32_const(256).i32_mul().local_set(words);
    f.i32_const(0x6170_7865).local_set(a);
    f.i32_const(0x3320_646e).local_set(b);
    f.i32_const(0x7962_2d32).local_set(c);
    f.i32_const(0x6b20_6574).local_set(d);
    f.for_range(i, words, |f| {
        // One quarter round per word of keystream.
        f.local_get(a).local_get(b).i32_add().local_set(a);
        f.local_get(d).local_get(a).i32_xor().i32_const(16).i32_rotl().local_set(d);
        f.local_get(c).local_get(d).i32_add().local_set(c);
        f.local_get(b).local_get(c).i32_xor().i32_const(12).i32_rotl().local_set(b);
        // ciphertext word = keystream ^ message word; store it.
        f.local_get(i).i32_const(4).i32_mul().i32_const(BUF).i32_add();
        f.local_get(a).local_get(i).i32_const(0x55aa_55aa).i32_mul().i32_xor();
        f.i32_store(0);
        // MAC accumulate.
        f.local_get(mac);
        f.local_get(i).i32_const(4).i32_mul().i32_const(BUF).i32_add().i32_load(0);
        f.i64_extend_i32_u().i64_add().i64_const(p).i64_rem_u();
        f.i64_const(0x1234_5679).i64_mul().i64_const(p).i64_rem_u().local_set(mac);
    });
    f.local_get(mac).i64_const(0xfff_ffff).i64_and().f64_convert_i64_s();
    finish("secretbox", f)
}

/// `kdf`: iterated subkey derivation — `n*256` chained hash compressions.
pub fn kdf() -> Module {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let i = f.local(I32);
    let iters = f.local(I32);
    let h = f.local(I64);
    f.i64_const(0x243f_6a88_85a3_08d3u64 as i64).local_set(h);
    f.local_get(0).i32_const(256).i32_mul().local_set(iters);
    f.for_range(i, iters, |f| {
        // Subkey id mixed in, then two avalanche rounds.
        f.local_get(h).local_get(i).i64_extend_i32_u().i64_xor().local_set(h);
        for shift in [31, 27] {
            f.local_get(h).local_get(h).i64_const(shift).i64_shr_u().i64_xor().local_set(h);
            f.local_get(h).i64_const(0x9e37_79b9_7f4a_7c15u64 as i64).i64_mul().local_set(h);
        }
    });
    f.local_get(h).i64_const(0xfff_ffff).i64_and().f64_convert_i64_s();
    finish("kdf", f)
}

/// `box_easy`: public-key box ≈ scalarmult session key + secretbox; here
/// a short ladder followed by stream+MAC, per `n` messages.
pub fn box_easy() -> Module {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let msg = f.local(I32);
    let i = f.local(I32);
    let x = f.local(I64);
    let mac = f.local(I64);
    let acc = f.local(I64);
    let p: i64 = (1 << 61) - 1;
    f.for_range(msg, 0, |f| {
        // Session key: 64 ladder steps.
        f.i64_const(9).local_set(x);
        f.for_const(i, 64, |f| {
            f.local_get(x).i64_const(0x7fff_ffff).i64_and().local_set(x);
            f.local_get(x).local_get(x).i64_mul().i64_const(p).i64_rem_u().local_set(x);
        });
        // Encrypt+MAC 128 words.
        f.i64_const(0).local_set(mac);
        f.for_const(i, 128, |f| {
            f.local_get(mac);
            f.local_get(x).local_get(i).i64_extend_i32_u().i64_add().i64_const(p).i64_rem_u();
            f.i64_add().i64_const(p).i64_rem_u().local_set(mac);
        });
        f.local_get(acc).local_get(mac).i64_add().local_set(acc);
    });
    f.local_get(acc).i64_const(0xfff_ffff).i64_and().f64_convert_i64_s();
    finish("box_easy", f)
}

/// The built suite, memoized — see `polybench::all` for the rationale.
static ALL: std::sync::LazyLock<Vec<(&'static str, Module)>> = std::sync::LazyLock::new(build_all);

/// Returns every libsodium-style kernel as `(name, module)` (cached).
pub fn all() -> Vec<(&'static str, Module)> {
    ALL.clone()
}

fn build_all() -> Vec<(&'static str, Module)> {
    vec![
        ("stream", stream_chacha20()),
        ("onetimeauth", onetimeauth()),
        ("hash", hash()),
        ("secretbox", secretbox()),
        ("auth", auth()),
        ("shorthash", shorthash_siphash()),
        ("generichash", generichash()),
        ("scalarmult", scalarmult()),
        ("kdf", kdf()),
        ("box_easy", box_easy()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};

    #[test]
    fn all_kernels_validate_and_tiers_agree() {
        for (name, module) in all() {
            let mut interp =
                Process::new(module.clone(), EngineConfig::interpreter(), &Linker::new())
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut jit = Process::new(module, EngineConfig::jit(), &Linker::new()).unwrap();
            let r1 = interp
                .invoke_export("run", &[Value::I32(2)])
                .unwrap_or_else(|e| panic!("{name} (interp): {e}"));
            let r2 = jit
                .invoke_export("run", &[Value::I32(2)])
                .unwrap_or_else(|e| panic!("{name} (jit): {e}"));
            assert_eq!(r1[0].to_slot(), r2[0].to_slot(), "{name}: tiers diverge");
            let v = r1[0].as_f64().unwrap();
            assert!(v.is_finite() && v >= 0.0, "{name}: bad checksum {v}");
        }
    }

    #[test]
    fn chacha20_keystream_is_deterministic() {
        let m = stream_chacha20();
        let mut p1 = Process::new(m.clone(), EngineConfig::jit(), &Linker::new()).unwrap();
        let a = p1.invoke_export("run", &[Value::I32(1)]).unwrap();
        let mut p2 = Process::new(m, EngineConfig::jit(), &Linker::new()).unwrap();
        let b = p2.invoke_export("run", &[Value::I32(1)]).unwrap();
        assert_eq!(a, b);
    }
}
