//! A deterministic corpus of *production-shaped* modules for the binary
//! ingestion pipeline.
//!
//! Unlike the benchmark suites — pure compute kernels over locals and one
//! flat memory — every corpus module exercises the parts of the frontend
//! a real-world `.wasm` binary leans on: **imports** (host functions and
//! globals resolved through `wizard_engine::shims::Shims`), **multiple
//! globals**, **data and element segments**, **start functions**, and
//! `call_indirect` dispatch. Each exports `run(n: i32) -> i32` returning
//! a checksum, so correctness is established differentially across
//! dispatchers exactly like the suites.
//!
//! [`corpus`] returns each module both as a built [`Module`] and as its
//! **encoded binary bytes** — the conformance harness and the
//! `translate_speed` bench deliberately start from the bytes, driving
//! decode → validate → lower → artifact-build → execute end to end.
//!
//! The workload classes mirror common real deployments:
//!
//! | name        | class                    | frontend surface |
//! |-------------|--------------------------|------------------|
//! | `erc20`     | token-ledger contract    | call_indirect op dispatch, data-segment balances, imported `gas_limit` global, start sums supply |
//! | `keccak`    | keccak-f\[1600\] hashing | i64 lane arithmetic, round constants in a data segment, start absorbs the seed block |
//! | `regex_redux` | DNA pattern scanner    | br_table classifier, multi-global match counters, start checksums the text |
//! | `crc32`     | table-driven checksum    | start builds the 256-entry table in memory |
//! | `base64`    | codec round-trip         | alphabet + reverse table, start builds the decoder table |
//! | `hashtable` | open-addressing map      | call_indirect hash selection via element segment |
//! | `wasi_io`   | WASI console writer      | `fd_write`/`random_get`/`proc_exit` shims, iovec data segment, start writes a banner |

use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::encode::encode;
use wizard_wasm::module::{ConstExpr, Module};
use wizard_wasm::types::BlockType;
use wizard_wasm::types::ValType::{I32, I64};

use crate::Scale;

/// One corpus module, carried both decoded and as raw binary bytes.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Workload name (see the module table).
    pub name: &'static str,
    /// The built module (ground truth for round-trip checks).
    pub module: Module,
    /// The encoded `.wasm` binary — the ingestion input.
    pub bytes: Vec<u8>,
    /// The `run` argument at the chosen scale.
    pub n: i32,
    /// Whether the module imports host functions or globals (and so needs
    /// a shim-built linker rather than an empty one).
    pub uses_imports: bool,
}

/// The full corpus at `scale`.
pub fn corpus(scale: Scale) -> Vec<CorpusEntry> {
    let s = |test, small, medium| match scale {
        Scale::Test => test,
        Scale::Small => small,
        Scale::Medium => medium,
    };
    let mk = |name, module: Module, n, uses_imports| {
        let bytes = encode(&module);
        CorpusEntry { name, module, bytes, n, uses_imports }
    };
    vec![
        mk("erc20", erc20(), s(48, 600, 3000), true),
        mk("keccak", keccak(), s(2, 24, 96), true),
        mk("regex_redux", regex_redux(), s(1, 4, 12), true),
        mk("crc32", crc32(), s(1, 8, 32), true),
        mk("base64", base64(), s(1, 8, 32), false),
        mk("hashtable", hashtable(), s(1, 6, 20), false),
        mk("wasi_io", wasi_io(), s(2, 16, 64), true),
    ]
}

/// The shared pseudo-DNA text blob (deterministic LCG over `ACGT` with
/// newline fenceposts), used by the scanner-class workloads.
pub fn sample_text(len: usize) -> Vec<u8> {
    let mut s: u64 = 0x243f_6a88_85a3_08d3;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let r = (s >> 33) as u32;
        out.push(if i % 64 == 63 { b'\n' } else { b"ACGT"[(r % 4) as usize] });
    }
    out
}

/// Pushes `mem[addr]` (i64) for a constant address.
fn ld64(f: &mut FuncBuilder, addr: u32) {
    f.i32_const(0).i64_load(addr);
}

/// Stores an i64 produced by `value` at a constant address.
fn st64(f: &mut FuncBuilder, addr: u32, value: impl FnOnce(&mut FuncBuilder)) {
    f.i32_const(0);
    value(f);
    f.i64_store(addr);
}

/// Folds an i64 local into an i32 checksum: `wrap(acc) ^ wrap(acc >> 32)`.
fn fold64(f: &mut FuncBuilder, acc: u32) {
    f.local_get(acc).i32_wrap_i64();
    f.local_get(acc).i64_const(32).i64_shr_u().i32_wrap_i64();
    f.i32_xor();
}

// ---------------------------------------------------------------- erc20

/// A token-ledger contract: 8 accounts in a data segment, an allowance
/// matrix, `transfer`/`approve`/`transfer_from` ops dispatched through a
/// funcref table, total supply tracked in a global, gas limit imported.
fn erc20() -> Module {
    const BAL: u32 = 0x100; // 8 × i64 balances
    const ALW: u32 = 0x200; // 8×8 × i64 allowances

    let mut mb = ModuleBuilder::new();
    let log_i64 = mb.import_func("env", "log_i64", &[I64], &[]);
    let g_gas = mb.import_global("env", "gas_limit", I64, false);
    mb.memory(1);
    let g_supply = mb.global(I64, true, ConstExpr::I64(0));
    let g_ops = mb.global(I32, true, ConstExpr::I32(0));

    // Initial balances: account i holds 1000 + 37·i tokens.
    let balances: Vec<u8> = (0..8i64).flat_map(|i| (1000 + 37 * i).to_le_bytes()).collect();
    mb.data(BAL as i32, &balances);

    let op_sig = mb.sig(&[I32], &[]);

    // transfer(r): from = r&7 moves (r%5)+1 tokens to (7r+3)&7 if funded.
    let transfer = {
        let mut f = FuncBuilder::new(&[I32], &[]);
        let from = f.local(I32);
        let to = f.local(I32);
        let amt = f.local(I64);
        f.local_get(0).i32_const(7).i32_and().local_set(from);
        f.local_get(0).i32_const(7).i32_mul().i32_const(3).i32_add().i32_const(7).i32_and();
        f.local_set(to);
        f.local_get(0).i32_const(5).i32_rem_u().i32_const(1).i32_add().i64_extend_i32_u();
        f.local_set(amt);
        // if from != to && bal[from] >= amt
        f.local_get(from).local_get(to).i32_ne();
        f.local_get(from).i32_const(8).i32_mul().i64_load(BAL).local_get(amt).i64_ge_s();
        f.i32_and();
        f.if_(BlockType::Empty);
        {
            f.local_get(from).i32_const(8).i32_mul();
            f.local_get(from).i32_const(8).i32_mul().i64_load(BAL).local_get(amt).i64_sub();
            f.i64_store(BAL);
            f.local_get(to).i32_const(8).i32_mul();
            f.local_get(to).i32_const(8).i32_mul().i64_load(BAL).local_get(amt).i64_add();
            f.i64_store(BAL);
        }
        f.end();
        f.global_get(g_ops).i32_const(1).i32_add().global_set(g_ops);
        mb.add_private_func("transfer", f)
    };

    // approve(r): allowance[owner][spender] = r % 9.
    let approve = {
        let mut f = FuncBuilder::new(&[I32], &[]);
        let slot = f.local(I32);
        f.local_get(0).i32_const(7).i32_and().i32_const(8).i32_mul();
        f.local_get(0).i32_const(3).i32_shr_u().i32_const(7).i32_and();
        f.i32_add().i32_const(8).i32_mul().local_set(slot);
        f.local_get(slot);
        f.local_get(0).i32_const(9).i32_rem_u().i64_extend_i32_u();
        f.i64_store(ALW);
        f.global_get(g_ops).i32_const(1).i32_add().global_set(g_ops);
        mb.add_private_func("approve", f)
    };

    // transfer_from(r): spend one token of allowance if present and funded.
    let transfer_from = {
        let mut f = FuncBuilder::new(&[I32], &[]);
        let owner = f.local(I32);
        let to = f.local(I32);
        let slot = f.local(I32);
        f.local_get(0).i32_const(5).i32_mul().i32_const(7).i32_and().local_set(owner);
        f.local_get(0).i32_const(13).i32_mul().i32_const(7).i32_and().local_set(to);
        f.local_get(owner).i32_const(8).i32_mul();
        f.local_get(0).i32_const(11).i32_mul().i32_const(7).i32_and();
        f.i32_add().i32_const(8).i32_mul().local_set(slot);
        // if allowance > 0 && bal[owner] > 0: move one token, burn allowance
        f.local_get(slot).i64_load(ALW).i64_const(0).i64_gt_s();
        f.local_get(owner).i32_const(8).i32_mul().i64_load(BAL).i64_const(0).i64_gt_s();
        f.i32_and();
        f.if_(BlockType::Empty);
        {
            f.local_get(slot);
            f.local_get(slot).i64_load(ALW).i64_const(1).i64_sub();
            f.i64_store(ALW);
            f.local_get(owner).i32_const(8).i32_mul();
            f.local_get(owner).i32_const(8).i32_mul().i64_load(BAL).i64_const(1).i64_sub();
            f.i64_store(BAL);
            f.local_get(to).i32_const(8).i32_mul();
            f.local_get(to).i32_const(8).i32_mul().i64_load(BAL).i64_const(1).i64_add();
            f.i64_store(BAL);
        }
        f.end();
        f.global_get(g_ops).i32_const(1).i32_add().global_set(g_ops);
        mb.add_private_func("transfer_from", f)
    };

    mb.table(3);
    mb.elem(0, &[transfer, approve, transfer_from]);

    // start: total supply = Σ balances, reported through the log shim.
    let start = {
        let mut f = FuncBuilder::new(&[], &[]);
        let i = f.local(I32);
        f.for_const(i, 8, |f| {
            f.global_get(g_supply);
            f.local_get(i).i32_const(8).i32_mul().i64_load(BAL);
            f.i64_add().global_set(g_supply);
        });
        f.global_get(g_supply).call(log_i64);
        mb.add_private_func("init_supply", f)
    };
    mb.start(start);

    // run(n): n ledger ops round-robined through the dispatch table, then
    // a checksum over balances, allowances, supply, ops, and gas limit.
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let r = f.local(I32);
    let acc = f.local(I64);
    f.for_range(r, 0, |f| {
        f.local_get(r);
        f.local_get(r).i32_const(3).i32_rem_u();
        f.call_indirect(op_sig);
    });
    f.global_get(g_supply).local_set(acc);
    let i = f.local(I32);
    f.for_const(i, 8, |f| {
        f.local_get(acc).i64_const(13).i64_rotl();
        f.local_get(i).i32_const(8).i32_mul().i64_load(BAL);
        f.i64_xor().local_set(acc);
    });
    f.for_const(i, 64, |f| {
        f.local_get(acc).i64_const(31).i64_mul();
        f.local_get(i).i32_const(8).i32_mul().i64_load(ALW);
        f.i64_add().local_set(acc);
    });
    f.local_get(acc).global_get(g_gas).i64_xor().local_set(acc);
    fold64(&mut f, acc);
    f.global_get(g_ops).i32_add();
    mb.add_func("run", f);
    mb.build().expect("erc20 validates")
}

// --------------------------------------------------------------- keccak

/// keccak-f\[1600\]: the full 24-round permutation over 25 i64 lanes in
/// memory, round constants in a data segment, θ/ρπ/χ emitted from the
/// standard offset tables.
fn keccak() -> Module {
    const A: u32 = 0x000; // 25 × i64 state lanes
    const C: u32 = 0x0c8; // 5 × i64 theta scratch
    const B: u32 = 0x148; // 25 × i64 rho-pi scratch
    const RC: u32 = 0x300; // 24 × i64 round constants

    const ROUND_CONSTANTS: [u64; 24] = [
        0x0000000000000001,
        0x0000000000008082,
        0x800000000000808a,
        0x8000000080008000,
        0x000000000000808b,
        0x0000000080000001,
        0x8000000080008081,
        0x8000000000008009,
        0x000000000000008a,
        0x0000000000000088,
        0x0000000080008009,
        0x000000008000000a,
        0x000000008000808b,
        0x800000000000008b,
        0x8000000000008089,
        0x8000000000008003,
        0x8000000000008002,
        0x8000000000000080,
        0x000000000000800a,
        0x800000008000000a,
        0x8000000080008081,
        0x8000000000008080,
        0x0000000080000001,
        0x8000000080008008,
    ];
    /// Rotation offsets indexed by lane `x + 5y`.
    const RHO: [i64; 25] = [
        0, 1, 62, 28, 27, 36, 44, 6, 55, 20, 3, 10, 43, 25, 39, 41, 45, 15, 21, 8, 18, 2, 61, 56,
        14,
    ];

    let mut mb = ModuleBuilder::new();
    let log_i64 = mb.import_func("env", "log_i64", &[I64], &[]);
    mb.memory(1);
    let g_rounds = mb.global(I64, true, ConstExpr::I64(0));
    let g_blocks = mb.global(I32, true, ConstExpr::I32(0));

    let rc_bytes: Vec<u8> = ROUND_CONSTANTS.iter().flat_map(|c| c.to_le_bytes()).collect();
    mb.data(RC as i32, &rc_bytes);

    let lane = |i: usize| A + i as u32 * 8;

    // permute(): one keccak-f[1600] application to the state at A.
    let permute = {
        let mut f = FuncBuilder::new(&[], &[]);
        let r = f.local(I32);
        let d = f.local(I64);
        f.for_const(r, 24, |f| {
            // θ step 1: column parities.
            for x in 0..5usize {
                f.i32_const(0);
                ld64(f, lane(x));
                for y in 1..5 {
                    ld64(f, lane(x + 5 * y));
                    f.i64_xor();
                }
                f.i64_store(C + x as u32 * 8);
            }
            // θ step 2: D[x] = C[x-1] ^ rotl(C[x+1], 1), xor into the column.
            for x in 0..5usize {
                ld64(f, C + ((x + 4) % 5) as u32 * 8);
                ld64(f, C + ((x + 1) % 5) as u32 * 8);
                f.i64_const(1).i64_rotl().i64_xor().local_set(d);
                for y in 0..5 {
                    f.i32_const(0);
                    ld64(f, lane(x + 5 * y));
                    f.local_get(d).i64_xor();
                    f.i64_store(lane(x + 5 * y));
                }
            }
            // ρ + π: B[y + 5((2x+3y) mod 5)] = rotl(A[x+5y], RHO[x+5y]).
            for (i, &rot) in RHO.iter().enumerate() {
                let (x, y) = (i % 5, i / 5);
                let dst = y + 5 * ((2 * x + 3 * y) % 5);
                f.i32_const(0);
                ld64(f, lane(i));
                f.i64_const(rot).i64_rotl();
                f.i64_store(B + dst as u32 * 8);
            }
            // χ: A[x] = B[x] ^ (¬B[x+1] & B[x+2]) per row.
            for y in 0..5usize {
                for x in 0..5usize {
                    f.i32_const(0);
                    ld64(f, B + (x + 5 * y) as u32 * 8);
                    ld64(f, B + ((x + 1) % 5 + 5 * y) as u32 * 8);
                    f.i64_const(-1).i64_xor();
                    ld64(f, B + ((x + 2) % 5 + 5 * y) as u32 * 8);
                    f.i64_and().i64_xor();
                    f.i64_store(lane(x + 5 * y));
                }
            }
            // ι: A[0] ^= RC[r].
            f.i32_const(0);
            ld64(f, lane(0));
            f.local_get(r).i32_const(8).i32_mul().i64_load(RC);
            f.i64_xor();
            f.i64_store(lane(0));
            f.global_get(g_rounds).i64_const(1).i64_add().global_set(g_rounds);
        });
        mb.add_private_func("permute", f)
    };

    // start: seed the 25 lanes deterministically and absorb one block.
    let start = {
        let mut f = FuncBuilder::new(&[], &[]);
        let i = f.local(I32);
        f.for_const(i, 25, |f| {
            f.local_get(i).i32_const(8).i32_mul();
            f.local_get(i).i32_const(1).i32_add().i64_extend_i32_u();
            f.i64_const(0x9e37_79b9_7f4a_7c15u64 as i64).i64_mul();
            f.i64_store(A);
        });
        f.call(permute);
        mb.add_private_func("seed_state", f)
    };
    mb.start(start);

    // run(n): absorb n counter blocks, permuting after each; digest the
    // lanes and report through the log shim.
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let b = f.local(I32);
    let acc = f.local(I64);
    f.for_range(b, 0, |f| {
        st64(f, lane(0), |f| {
            ld64(f, lane(0));
            f.local_get(b).i32_const(1).i32_add().i64_extend_i32_u().i64_xor();
        });
        f.call(permute);
        f.global_get(g_blocks).i32_const(1).i32_add().global_set(g_blocks);
    });
    f.i64_const(0).local_set(acc);
    for i in 0..25usize {
        f.local_get(acc).i64_const(7).i64_rotl();
        ld64(&mut f, lane(i));
        f.i64_xor().local_set(acc);
    }
    f.local_get(acc).call(log_i64);
    fold64(&mut f, acc);
    f.global_get(g_blocks).i32_add();
    mb.add_func("run", f);
    mb.build().expect("keccak validates")
}

// --------------------------------------------------------- regex_redux

/// A regex-redux-class scanner: a br_table nucleotide classifier plus
/// three pattern counters over a pseudo-DNA text, counts in globals.
fn regex_redux() -> Module {
    const CNT: u32 = 0x20; // 5 × i32 classifier buckets
    const TEXT: u32 = 0x1000;
    const LEN: i32 = 1024;

    let text = sample_text(LEN as usize);
    let patterns: [&[u8]; 3] = [b"GGTA", b"TTAAC", b"ACGTAC"];

    let mut mb = ModuleBuilder::new();
    let log_i32 = mb.import_func("env", "log_i32", &[I32], &[]);
    mb.memory(1);
    let g_len = mb.global(I32, false, ConstExpr::I32(LEN));
    let g_sum = mb.global(I32, true, ConstExpr::I32(0));
    let g_counts: Vec<u32> = (0..3).map(|_| mb.global(I32, true, ConstExpr::I32(0))).collect();
    mb.data(TEXT as i32, &text);

    // start: checksum the text into g_sum (detects segment-init bugs).
    let start = {
        let mut f = FuncBuilder::new(&[], &[]);
        let i = f.local(I32);
        f.for_const(i, LEN, |f| {
            f.global_get(g_sum).i32_const(31).i32_mul();
            f.local_get(i).i32_load8_u(TEXT);
            f.i32_add().global_set(g_sum);
        });
        mb.add_private_func("sum_text", f)
    };
    mb.start(start);

    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let rep = f.local(I32);
    let i = f.local(I32);
    let byte = f.local(I32);
    let cls = f.local(I32);
    let acc = f.local(I32);
    f.for_range(rep, 0, |f| {
        // Pass 1: classify every byte into A/C/G/T/other buckets through
        // a br_table (the realistic shape of DFA-driven scanners).
        f.for_const(i, LEN, |f| {
            f.local_get(i).i32_load8_u(TEXT).local_set(byte);
            f.i32_const(4).local_set(cls);
            for (k, ch) in [b'A', b'C', b'G', b'T'].into_iter().enumerate() {
                f.local_get(byte).i32_const(i32::from(ch)).i32_eq();
                f.if_(BlockType::Empty);
                f.i32_const(k as i32).local_set(cls);
                f.end();
            }
            f.block(BlockType::Empty); // exit label
            for _ in 0..5 {
                f.block(BlockType::Empty);
            }
            f.local_get(cls);
            f.br_table(&[0, 1, 2, 3], 4);
            for k in 0..5u32 {
                f.end();
                f.i32_const(0);
                f.i32_const(0).i32_load(CNT + 4 * k);
                f.i32_const(1).i32_add();
                f.i32_store(CNT + 4 * k);
                if k < 4 {
                    f.br(4 - k);
                }
            }
            f.end();
        });
        // Pass 2: count each pattern with an unrolled window compare.
        for (p, pat) in patterns.iter().enumerate() {
            f.for_const(i, LEN - pat.len() as i32, |f| {
                for (j, &ch) in pat.iter().enumerate() {
                    f.local_get(i).i32_load8_u(TEXT + j as u32);
                    f.i32_const(i32::from(ch)).i32_eq();
                    if j > 0 {
                        f.i32_and();
                    }
                }
                f.global_get(g_counts[p]).i32_add().global_set(g_counts[p]);
            });
        }
    });
    // Report the pattern counts, then fold everything.
    for &g in &g_counts {
        f.global_get(g).call(log_i32);
    }
    f.global_get(g_sum).local_set(acc);
    for &g in &g_counts {
        f.local_get(acc).i32_const(31).i32_mul().global_get(g).i32_add().local_set(acc);
    }
    for k in 0..5u32 {
        f.local_get(acc).i32_const(7).i32_rotl();
        f.i32_const(0).i32_load(CNT + 4 * k);
        f.i32_xor().local_set(acc);
    }
    f.local_get(acc).global_get(g_len).i32_add();
    mb.add_func("run", f);
    mb.build().expect("regex_redux validates")
}

// ---------------------------------------------------------------- crc32

/// Table-driven CRC-32: the start function builds the 256-entry table
/// from the polynomial global; `run` checksums the text `n` times.
fn crc32() -> Module {
    const TABLE: u32 = 0x000; // 256 × u32
    const TEXT: u32 = 0x1000;
    const LEN: i32 = 1024;

    let mut mb = ModuleBuilder::new();
    let log_i32 = mb.import_func("env", "log_i32", &[I32], &[]);
    mb.memory(1);
    let g_poly = mb.global(I32, false, ConstExpr::I32(0xedb8_8320u32 as i32));
    let g_crc = mb.global(I32, true, ConstExpr::I32(0));
    mb.data(TEXT as i32, &sample_text(LEN as usize));

    let start = {
        let mut f = FuncBuilder::new(&[], &[]);
        let i = f.local(I32);
        let k = f.local(I32);
        let c = f.local(I32);
        f.for_const(i, 256, |f| {
            f.local_get(i).local_set(c);
            f.for_const(k, 8, |f| {
                // c = (c & 1) ? poly ^ (c >>> 1) : (c >>> 1)
                f.global_get(g_poly);
                f.local_get(c).i32_const(1).i32_shr_u();
                f.i32_xor();
                f.local_get(c).i32_const(1).i32_shr_u();
                f.local_get(c).i32_const(1).i32_and();
                f.select();
                f.local_set(c);
            });
            f.local_get(i).i32_const(4).i32_mul();
            f.local_get(c);
            f.i32_store(TABLE);
        });
        mb.add_private_func("build_table", f)
    };
    mb.start(start);

    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let rep = f.local(I32);
    let i = f.local(I32);
    let crc = f.local(I32);
    f.for_range(rep, 0, |f| {
        f.i32_const(-1).local_set(crc);
        f.for_const(i, LEN, |f| {
            // crc = table[(crc ^ byte) & 0xff] ^ (crc >>> 8)
            f.local_get(crc);
            f.local_get(i).i32_load8_u(TEXT);
            f.i32_xor().i32_const(0xff).i32_and().i32_const(4).i32_mul();
            f.i32_load(TABLE);
            f.local_get(crc).i32_const(8).i32_shr_u();
            f.i32_xor().local_set(crc);
        });
        // Chain reps: fold this rep's crc into the running global.
        f.global_get(g_crc).i32_const(5).i32_rotl().local_get(crc).i32_xor();
        f.global_set(g_crc);
    });
    f.global_get(g_crc).call(log_i32);
    f.global_get(g_crc).local_get(0).i32_add();
    mb.add_func("run", f);
    mb.build().expect("crc32 validates")
}

// --------------------------------------------------------------- base64

/// base64 round-trip codec: encode the text, decode it back through a
/// start-built reverse table, count mismatches (must be zero).
fn base64() -> Module {
    const ALPHA: u32 = 0x040; // 64-byte alphabet (data segment)
    const REV: u32 = 0x140; // 128-byte reverse table (start-built)
    const TEXT: u32 = 0x1000;
    const OUT: u32 = 0x2000;
    const BACK: u32 = 0x3000;
    const LEN: i32 = 1022; // deliberately not a multiple of 3: exercises padding

    let mut mb = ModuleBuilder::new();
    mb.memory(1);
    let g_enc_len = mb.global(I32, true, ConstExpr::I32(0));
    let g_mismatch = mb.global(I32, true, ConstExpr::I32(0));
    mb.data(ALPHA as i32, b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/");
    mb.data(TEXT as i32, &sample_text(LEN as usize));

    // start: rev[alpha[i]] = i for the decoder.
    let start = {
        let mut f = FuncBuilder::new(&[], &[]);
        let i = f.local(I32);
        f.for_const(i, 64, |f| {
            f.local_get(i).i32_load8_u(ALPHA);
            f.local_get(i);
            f.i32_store8(REV);
        });
        mb.add_private_func("build_rev", f)
    };
    mb.start(start);

    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let rep = f.local(I32);
    let i = f.local(I32);
    let o = f.local(I32);
    let w = f.local(I32);
    let acc = f.local(I32);
    let limit = f.local(I32);
    f.for_range(rep, 0, |f| {
        // Encode whole 3-byte groups.
        f.i32_const(0).local_set(o);
        f.i32_const(0).local_set(i);
        f.while_loop(
            |f| {
                f.local_get(i).i32_const(LEN - 2).i32_lt_s();
            },
            |f| {
                // w = b0<<16 | b1<<8 | b2
                f.local_get(i).i32_load8_u(TEXT).i32_const(16).i32_shl();
                f.local_get(i).i32_load8_u(TEXT + 1).i32_const(8).i32_shl();
                f.i32_or();
                f.local_get(i).i32_load8_u(TEXT + 2).i32_or();
                f.local_set(w);
                for k in 0..4 {
                    f.local_get(o).i32_const(k).i32_add();
                    f.local_get(w).i32_const(18 - 6 * k).i32_shr_u().i32_const(63).i32_and();
                    f.i32_load8_u(ALPHA);
                    f.i32_store8(OUT);
                }
                f.local_get(i).i32_const(3).i32_add().local_set(i);
                f.local_get(o).i32_const(4).i32_add().local_set(o);
            },
        );
        // Tail: LEN % 3 == 0 means none; here LEN % 3 may leave 1 or 2.
        if LEN % 3 != 0 {
            let rem = LEN % 3;
            // w = remaining bytes left-aligned in 24 bits.
            f.local_get(i).i32_load8_u(TEXT).i32_const(16).i32_shl();
            if rem == 2 {
                f.local_get(i).i32_load8_u(TEXT + 1).i32_const(8).i32_shl();
                f.i32_or();
            }
            f.local_set(w);
            let chars = if rem == 1 { 2 } else { 3 };
            for k in 0..chars {
                f.local_get(o).i32_const(k).i32_add();
                f.local_get(w).i32_const(18 - 6 * k).i32_shr_u().i32_const(63).i32_and();
                f.i32_load8_u(ALPHA);
                f.i32_store8(OUT);
            }
            for k in chars..4 {
                f.local_get(o).i32_const(k).i32_add();
                f.i32_const(i32::from(b'='));
                f.i32_store8(OUT);
            }
            f.local_get(o).i32_const(4).i32_add().local_set(o);
        }
        f.local_get(o).global_set(g_enc_len);

        // Decode OUT back into BACK, stopping at padding.
        f.i32_const(0).local_set(i); // reader over OUT, 4 chars at a time
        f.i32_const(0).local_set(o); // writer into BACK
        f.global_get(g_enc_len).local_set(limit);
        f.while_loop(
            |f| {
                f.local_get(i).local_get(limit).i32_lt_s();
            },
            |f| {
                // w = rev[c0]<<18 | rev[c1]<<12 | rev[c2]<<6 | rev[c3]
                // ('=' maps to 0 in REV, harmless for the tail bytes).
                f.i32_const(0).local_set(w);
                for k in 0..4u32 {
                    f.local_get(w).i32_const(6).i32_shl();
                    f.local_get(i).i32_load8_u(OUT + k);
                    f.i32_const(127).i32_and();
                    f.i32_load8_u(REV);
                    f.i32_or().local_set(w);
                }
                for k in 0..3 {
                    f.local_get(o).i32_const(k).i32_add();
                    f.local_get(w).i32_const(16 - 8 * k).i32_shr_u().i32_const(255).i32_and();
                    f.i32_store8(BACK);
                }
                f.local_get(i).i32_const(4).i32_add().local_set(i);
                f.local_get(o).i32_const(3).i32_add().local_set(o);
            },
        );
        // Compare the round-trip.
        f.for_const(i, LEN, |f| {
            f.local_get(i).i32_load8_u(TEXT);
            f.local_get(i).i32_load8_u(BACK);
            f.i32_ne();
            f.global_get(g_mismatch).i32_add().global_set(g_mismatch);
        });
    });
    // Checksum: fold the encoded bytes; mismatches weighted heavily so a
    // round-trip bug can't cancel out.
    f.i32_const(0).local_set(acc);
    f.global_get(g_enc_len).local_set(limit);
    f.for_range(i, limit, |f| {
        f.local_get(acc).i32_const(5).i32_rotl();
        f.local_get(i).i32_load8_u(OUT);
        f.i32_xor().local_set(acc);
    });
    f.local_get(acc);
    f.global_get(g_mismatch).i32_const(0x0101_0101).i32_mul().i32_add();
    f.global_get(g_enc_len).i32_add();
    mb.add_func("run", f);
    mb.build().expect("base64 validates")
}

// ------------------------------------------------------------ hashtable

/// Open-addressing hash map with call_indirect-selected hash functions.
fn hashtable() -> Module {
    const SLOTS: u32 = 0x0000; // 1024 slots × (i32 key, i32 val)
    const MASK: i32 = 1023;
    const INSERTS: i32 = 512;

    let mut mb = ModuleBuilder::new();
    mb.memory(1);
    let g_seed = mb.global(I32, true, ConstExpr::I32(0));
    let g_count = mb.global(I32, true, ConstExpr::I32(0));

    let hash_sig = mb.sig(&[I32], &[I32]);

    let h_mul = {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(0x9e37_79b1u32 as i32).i32_mul().i32_const(17).i32_shr_u();
        mb.add_private_func("h_mul", f)
    };
    let h_xs = {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let x = f.local(I32);
        f.local_get(0).local_set(x);
        f.local_get(x).i32_const(13).i32_shl().local_get(x).i32_xor().local_set(x);
        f.local_get(x).i32_const(7).i32_shr_u().local_get(x).i32_xor().local_set(x);
        f.local_get(x).i32_const(17).i32_shl().local_get(x).i32_xor().local_set(x);
        f.local_get(x);
        mb.add_private_func("h_xs", f)
    };
    mb.table(2);
    mb.elem(0, &[h_mul, h_xs]);

    // The key-stream seed lives in a data segment just past the slot
    // array; start reads it into the seed global.
    const SEED_ADDR: u32 = 0x2000;
    mb.data(SEED_ADDR as i32, &0x1234_5677u32.to_le_bytes());
    let start = {
        let mut f = FuncBuilder::new(&[], &[]);
        f.i32_const(0).i32_load(SEED_ADDR).global_set(g_seed);
        mb.add_private_func("init_seed", f)
    };
    mb.start(start);

    // insert(key, val): linear probing from the selected hash.
    let insert = {
        let mut f = FuncBuilder::new(&[I32, I32], &[]);
        let idx = f.local(I32);
        f.local_get(0);
        f.local_get(0).i32_const(1).i32_and();
        f.call_indirect(hash_sig);
        f.i32_const(MASK).i32_and().local_set(idx);
        f.while_loop(
            |f| {
                // occupied by another key?
                f.local_get(idx).i32_const(8).i32_mul().i32_load(SLOTS);
                f.i32_const(0).i32_ne();
                f.local_get(idx).i32_const(8).i32_mul().i32_load(SLOTS);
                f.local_get(0).i32_ne();
                f.i32_and();
            },
            |f| {
                f.local_get(idx).i32_const(1).i32_add().i32_const(MASK).i32_and().local_set(idx);
            },
        );
        f.local_get(idx).i32_const(8).i32_mul().local_get(0).i32_store(SLOTS);
        f.local_get(idx).i32_const(8).i32_mul().local_get(1).i32_store(SLOTS + 4);
        f.global_get(g_count).i32_const(1).i32_add().global_set(g_count);
        mb.add_private_func("insert", f)
    };

    // lookup(key) -> val or -7777 on miss.
    let lookup = {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let idx = f.local(I32);
        let steps = f.local(I32);
        let out = f.local(I32);
        f.local_get(0);
        f.local_get(0).i32_const(1).i32_and();
        f.call_indirect(hash_sig);
        f.i32_const(MASK).i32_and().local_set(idx);
        f.i32_const(-7777).local_set(out);
        f.i32_const(0).local_set(steps);
        f.block(BlockType::Empty);
        f.loop_(BlockType::Empty);
        {
            // empty slot: miss.
            f.local_get(idx).i32_const(8).i32_mul().i32_load(SLOTS);
            f.i32_eqz().br_if(1);
            // our key: hit.
            f.local_get(idx).i32_const(8).i32_mul().i32_load(SLOTS);
            f.local_get(0).i32_eq();
            f.if_(BlockType::Empty);
            f.local_get(idx).i32_const(8).i32_mul().i32_load(SLOTS + 4).local_set(out);
            f.br(2);
            f.end();
            f.local_get(idx).i32_const(1).i32_add().i32_const(MASK).i32_and().local_set(idx);
            f.local_get(steps).i32_const(1).i32_add().local_set(steps);
            // safety bound
            f.local_get(steps).i32_const(MASK + 1).i32_gt_s().br_if(1);
            f.br(0);
        }
        f.end();
        f.end();
        f.local_get(out).local_get(steps).i32_const(13).i32_mul().i32_add();
        mb.add_private_func("lookup", f)
    };

    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let rep = f.local(I32);
    let i = f.local(I32);
    let key = f.local(I32);
    let acc = f.local(I32);
    f.for_range(rep, 0, |f| {
        // Clear the table.
        f.for_const(i, MASK + 1, |f| {
            f.local_get(i).i32_const(8).i32_mul().i32_const(0).i32_store(SLOTS);
            f.local_get(i).i32_const(8).i32_mul().i32_const(0).i32_store(SLOTS + 4);
        });
        // Insert a deterministic key stream.
        f.global_get(g_seed).local_set(key);
        f.for_const(i, INSERTS, |f| {
            f.local_get(key).i32_const(1103515245).i32_mul().i32_const(12345).i32_add();
            f.i32_const(0x7fff_fffe).i32_and().i32_const(1).i32_or().local_set(key);
            f.local_get(key).local_get(i).call(insert);
        });
        // Look them all up again.
        f.global_get(g_seed).local_set(key);
        f.for_const(i, INSERTS, |f| {
            f.local_get(key).i32_const(1103515245).i32_mul().i32_const(12345).i32_add();
            f.i32_const(0x7fff_fffe).i32_and().i32_const(1).i32_or().local_set(key);
            f.local_get(acc).i32_const(3).i32_rotl();
            f.local_get(key).call(lookup);
            f.i32_xor().local_set(acc);
        });
    });
    f.local_get(acc).global_get(g_count).i32_add();
    mb.add_func("run", f);
    mb.build().expect("hashtable validates")
}

// --------------------------------------------------------------- wasi_io

/// A WASI-preview1 console writer: scatter-gather `fd_write` of a banner
/// plus a `random_get`-filled buffer, `proc_exit` on negative input.
fn wasi_io() -> Module {
    const NW: u32 = 0x08; // fd_write's nwritten out-pointer
    const IOV: u32 = 0x10; // two iovecs
    const MSG: u32 = 0x100;
    const RAND: u32 = 0x200;
    const RAND_LEN: i32 = 32;

    let msg = b"wizard corpus: conformance over real binaries\n";

    let mut mb = ModuleBuilder::new();
    let fd_write =
        mb.import_func("wasi_snapshot_preview1", "fd_write", &[I32, I32, I32, I32], &[I32]);
    let random_get = mb.import_func("wasi_snapshot_preview1", "random_get", &[I32, I32], &[I32]);
    let proc_exit = mb.import_func("wasi_snapshot_preview1", "proc_exit", &[I32], &[]);
    mb.memory(1);
    let g_written = mb.global(I32, true, ConstExpr::I32(0));
    let g_fd = mb.global(I32, false, ConstExpr::I32(1)); // stdout

    mb.data(MSG as i32, msg);
    // iovec[0] = (MSG, len), iovec[1] = (RAND, RAND_LEN)
    let iovs: Vec<u8> = [
        MSG.to_le_bytes(),
        (msg.len() as u32).to_le_bytes(),
        RAND.to_le_bytes(),
        (RAND_LEN as u32).to_le_bytes(),
    ]
    .concat();
    mb.data(IOV as i32, &iovs);

    // start: write the banner once (host calls during instantiation).
    let start = {
        let mut f = FuncBuilder::new(&[], &[]);
        f.global_get(g_fd).i32_const(IOV as i32).i32_const(1).i32_const(NW as i32).call(fd_write);
        f.drop_();
        mb.add_private_func("banner", f)
    };
    mb.start(start);

    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let rep = f.local(I32);
    let i = f.local(I32);
    let acc = f.local(I32);
    // proc_exit on negative n (the trapping path, tested differentially).
    f.local_get(0).i32_const(0).i32_lt_s();
    f.if_(BlockType::Empty);
    f.local_get(0).call(proc_exit);
    f.end();
    f.for_range(rep, 0, |f| {
        f.i32_const(RAND as i32).i32_const(RAND_LEN).call(random_get).drop_();
        f.global_get(g_fd).i32_const(IOV as i32).i32_const(2).i32_const(NW as i32).call(fd_write);
        f.drop_();
        f.global_get(g_written);
        f.i32_const(0).i32_load(NW);
        f.i32_add().global_set(g_written);
    });
    // Fold the last random block and the written-byte count.
    f.for_const(i, RAND_LEN, |f| {
        f.local_get(acc).i32_const(5).i32_rotl();
        f.local_get(i).i32_load8_u(RAND);
        f.i32_xor().local_set(acc);
    });
    f.local_get(acc).global_get(g_written).i32_add();
    mb.add_func("run", f);
    mb.build().expect("wasi_io validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::value::Value;
    use wizard_engine::{EngineConfig, Process, Shims};
    use wizard_wasm::decode::decode;

    #[test]
    fn corpus_has_the_documented_shape() {
        let c = corpus(Scale::Test);
        assert!(c.len() >= 6, "corpus must hold at least 6 realistic modules");
        for e in &c {
            assert!(!e.bytes.is_empty(), "{}: empty binary", e.name);
            assert!(e.module.start.is_some(), "{}: every corpus module has a start", e.name);
            assert!(!e.module.data.is_empty(), "{}: every corpus module has data segments", e.name);
            let n_globals = e.module.global_types().len();
            assert!(n_globals >= 2, "{}: expected multiple globals, got {n_globals}", e.name);
        }
        // Between them the modules cover tables+element segments and
        // host-function/global imports.
        assert!(c.iter().any(|e| !e.module.elems.is_empty()));
        assert!(c.iter().any(|e| e.uses_imports));
        assert!(c.iter().any(|e| !e.uses_imports));
    }

    #[test]
    fn corpus_binaries_decode_back_to_the_built_module() {
        for e in corpus(Scale::Test) {
            let m2 = decode(&e.bytes).unwrap_or_else(|err| panic!("{}: {err}", e.name));
            assert_eq!(encode(&m2), e.bytes, "{}: re-encode differs", e.name);
        }
    }

    #[test]
    fn corpus_modules_execute_identically_on_both_interpreters() {
        for e in corpus(Scale::Test) {
            let shims = Shims::standard();
            let run = |config: EngineConfig| {
                let shims = Shims::standard();
                let linker = shims
                    .linker_for(&e.module)
                    .unwrap_or_else(|err| panic!("{}: shim resolution failed: {err}", e.name));
                let module = decode(&e.bytes).expect("decodes");
                let mut p = Process::new(module, config, &linker)
                    .unwrap_or_else(|err| panic!("{}: instantiate failed: {err}", e.name));
                let out = p
                    .invoke_export("run", &[Value::I32(e.n)])
                    .unwrap_or_else(|err| panic!("{}: run trapped: {err}", e.name));
                (out, shims.digest(), shims.total_calls())
            };
            let lowered = run(EngineConfig::interpreter());
            let classic = run(EngineConfig::interpreter_bytecode());
            assert_eq!(lowered, classic, "{}: dispatcher-dependent behavior", e.name);
            drop(shims);
        }
    }

    #[test]
    fn base64_round_trip_has_zero_mismatches() {
        // g_mismatch is weighted by 0x01010101 in the checksum; a clean
        // round-trip therefore produces the same result as a run that
        // never compares. Execute and make sure the checksum is stable
        // across scales (reps don't accumulate mismatches).
        let m = base64();
        let run = |n: i32| {
            let mut p =
                Process::new(m.clone(), EngineConfig::interpreter(), &Linker::new()).unwrap();
            p.invoke_export("run", &[Value::I32(n)]).unwrap()
        };
        let one = run(1);
        let two = run(2);
        assert_eq!(one, two, "mismatch counter accumulated across reps");
    }

    #[test]
    fn wasi_io_proc_exit_traps_on_negative_input() {
        let e = &corpus(Scale::Test)[6];
        assert_eq!(e.name, "wasi_io");
        let shims = Shims::standard();
        let linker = shims.linker_for(&e.module).unwrap();
        let mut p = Process::new(e.module.clone(), EngineConfig::interpreter(), &linker).unwrap();
        let err = p.invoke_export("run", &[Value::I32(-1)]).unwrap_err();
        assert!(format!("{err}").contains("proc_exit"), "unexpected trap: {err}");
    }
}
