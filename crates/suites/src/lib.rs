//! `wizard-suites`: the paper's benchmark programs as Wasm module
//! generators — PolyBench/C, Ostrich-style, libsodium-style, and a
//! Richards-style scheduler (for the JVMTI comparison).
//!
//! Every kernel is real WebAssembly produced by the `wizard-wasm`
//! assembler DSL and validated by its type checker; there is no C
//! toolchain in the loop (see DESIGN.md for the substitution table).
//! All kernels export `run(n: i32)` returning a checksum, so correctness
//! can be established differentially across engine tiers and baseline
//! systems.

#![warn(missing_docs)]

pub mod corpus;
pub mod dsl;
pub mod libsodium;
pub mod ostrich;
pub mod polybench;
pub mod randgen;
pub mod richards;

use wizard_wasm::module::Module;

/// Problem-size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Tiny inputs for unit tests.
    Test,
    /// Default benchmarking size (sub-second per kernel in the interpreter).
    #[default]
    Small,
    /// Larger runs for more stable timing.
    Medium,
}

/// One benchmark program: a module exporting `run(n) -> checksum`.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Suite name: `polybench`, `ostrich`, or `libsodium`.
    pub suite: &'static str,
    /// Program name (matching the paper's figure labels).
    pub name: &'static str,
    /// The compiled-to-Wasm program.
    pub module: Module,
    /// The `run` argument at the chosen scale.
    pub n: i32,
}

/// The PolyBench suite at `scale`.
pub fn polybench_suite(scale: Scale) -> Vec<Benchmark> {
    let (n, n3) = match scale {
        Scale::Test => (8, 5),
        Scale::Small => (18, 8),
        Scale::Medium => (28, 12),
    };
    polybench::all()
        .into_iter()
        .map(|(name, module)| Benchmark {
            suite: "polybench",
            name,
            module,
            n: if polybench::is_cubic(name) { n3 } else { n },
        })
        .collect()
}

/// The Ostrich-style suite at `scale`.
pub fn ostrich_suite(scale: Scale) -> Vec<Benchmark> {
    let n = match scale {
        Scale::Test => 1,
        Scale::Small => 2,
        Scale::Medium => 4,
    };
    ostrich::all()
        .into_iter()
        .map(|(name, module)| Benchmark { suite: "ostrich", name, module, n })
        .collect()
}

/// The libsodium-style suite at `scale`.
pub fn libsodium_suite(scale: Scale) -> Vec<Benchmark> {
    let n = match scale {
        Scale::Test => 1,
        Scale::Small => 2,
        Scale::Medium => 4,
    };
    libsodium::all()
        .into_iter()
        .map(|(name, module)| Benchmark { suite: "libsodium", name, module, n })
        .collect()
}

/// All three suites, concatenated.
pub fn all_suites(scale: Scale) -> Vec<Benchmark> {
    let mut v = polybench_suite(scale);
    v.extend(libsodium_suite(scale));
    v.extend(ostrich_suite(scale));
    v
}

/// The Richards-style scheduler benchmark (used by the JVMTI experiment).
pub fn richards_benchmark(loops: i32) -> Benchmark {
    Benchmark { suite: "richards", name: "richards", module: richards::module(), n: loops }
}

/// A mixed fleet for multi-process scheduling experiments (`wizard-pool`):
/// `size` jobs drawn from the Richards scheduler and the PolyBench
/// kernels, interleaved so every shard gets a heterogeneous mix of
/// control-flow-heavy and loop-heavy programs.
pub fn fleet(scale: Scale, size: usize) -> Vec<Benchmark> {
    let richards_loops = match scale {
        Scale::Test => 20,
        Scale::Small => 100,
        Scale::Medium => 300,
    };
    let pb = polybench_suite(scale);
    (0..size)
        .map(
            |k| {
                if k % 4 == 0 {
                    richards_benchmark(richards_loops)
                } else {
                    pb[k % pb.len()].clone()
                }
            },
        )
        .collect()
}

/// One job spec of a multi-tenant serving fleet
/// ([`tenant_fleet`]): a kernel plus the tenant and scheduling class it
/// should be served under. The class is a plain dense integer (0 = most
/// urgent) so this crate does not depend on the pool's `Priority` type.
#[derive(Debug, Clone)]
pub struct TenantJob {
    /// Tenant the job bills to.
    pub tenant: &'static str,
    /// Scheduling class: 0 = high, 1 = normal, 2 = low.
    pub class: u8,
    /// Suite the kernel came from.
    pub suite: &'static str,
    /// Kernel name.
    pub name: &'static str,
    /// The module; exports `run(n) -> checksum`.
    pub module: Module,
    /// The `run` argument.
    pub n: i32,
    /// Whether the module imports host functions/globals and needs a
    /// shim-built linker (ingestion-corpus kernels).
    pub uses_imports: bool,
}

/// A mixed multi-tenant fleet for serving experiments: three tenants
/// with distinct traffic shapes, interleaved deterministically —
///
/// * `interactive` (class 0, high): short ingestion-corpus requests
///   (crc32, base64, hashtable) — the latency-sensitive traffic whose
///   p99 the serving engine must protect;
/// * `batch` (class 1, normal): the PolyBench kernels in rotation;
/// * `background` (class 2, low): Richards scheduler runs and cubic
///   PolyBench kernels — the long jobs that would head-of-line-block a
///   round-robin shard.
pub fn tenant_fleet(scale: Scale, size: usize) -> Vec<TenantJob> {
    let richards_loops = match scale {
        Scale::Test => 20,
        Scale::Small => 100,
        Scale::Medium => 300,
    };
    let light: Vec<corpus::CorpusEntry> = corpus::corpus(scale)
        .into_iter()
        .filter(|e| matches!(e.name, "crc32" | "base64" | "hashtable"))
        .collect();
    let pb = polybench_suite(scale);
    let heavy: Vec<Benchmark> =
        pb.iter().filter(|b| polybench::is_cubic(b.name)).cloned().collect();
    (0..size)
        .map(|k| match k % 3 {
            0 => {
                let e = &light[(k / 3) % light.len()];
                TenantJob {
                    tenant: "interactive",
                    class: 0,
                    suite: "corpus",
                    name: e.name,
                    module: e.module.clone(),
                    n: e.n,
                    uses_imports: e.uses_imports,
                }
            }
            1 => {
                let b = &pb[(k / 3) % pb.len()];
                TenantJob {
                    tenant: "batch",
                    class: 1,
                    suite: b.suite,
                    name: b.name,
                    module: b.module.clone(),
                    n: b.n,
                    uses_imports: false,
                }
            }
            _ => {
                if (k / 3) % 2 == 0 {
                    let r = richards_benchmark(richards_loops);
                    TenantJob {
                        tenant: "background",
                        class: 2,
                        suite: r.suite,
                        name: r.name,
                        module: r.module,
                        n: r.n,
                        uses_imports: false,
                    }
                } else {
                    let b = &heavy[(k / 3) % heavy.len()];
                    TenantJob {
                        tenant: "background",
                        class: 2,
                        suite: b.suite,
                        name: b.name,
                        module: b.module.clone(),
                        n: b.n,
                        uses_imports: false,
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_registries_are_complete() {
        let pb = polybench_suite(Scale::Test);
        assert_eq!(pb.len(), 29);
        assert!(pb.iter().any(|b| b.name == "floyd-warshall"));
        let os = ostrich_suite(Scale::Test);
        assert_eq!(os.len(), 10);
        let ls = libsodium_suite(Scale::Test);
        assert_eq!(ls.len(), 10);
        assert_eq!(all_suites(Scale::Test).len(), 49);
    }

    #[test]
    fn fleet_mixes_richards_and_polybench() {
        let f = fleet(Scale::Test, 8);
        assert_eq!(f.len(), 8);
        assert_eq!(f.iter().filter(|b| b.suite == "richards").count(), 2);
        assert!(f.iter().any(|b| b.suite == "polybench"));
    }

    #[test]
    fn tenant_fleet_covers_all_tenants_and_classes() {
        let f = tenant_fleet(Scale::Test, 12);
        assert_eq!(f.len(), 12);
        for tenant in ["interactive", "batch", "background"] {
            assert!(f.iter().any(|j| j.tenant == tenant), "missing {tenant}");
        }
        // Classes are dense and tied to tenants.
        assert!(f.iter().all(|j| match j.tenant {
            "interactive" => j.class == 0,
            "batch" => j.class == 1,
            _ => j.class == 2,
        }));
        // Interactive traffic comes from the ingestion corpus, including
        // at least one import-using module (needs a shim linker).
        assert!(f.iter().filter(|j| j.tenant == "interactive").all(|j| j.suite == "corpus"));
        assert!(f.iter().any(|j| j.uses_imports));
        // Background includes the long richards jobs.
        assert!(f.iter().any(|j| j.name == "richards"));
    }

    #[test]
    fn suite_modules_are_cached_and_deterministic() {
        // The registries memoize their built modules; repeated calls hand
        // out byte-identical clones (so a fleet's jobs all resolve to one
        // shared artifact in wizard-pool's cache).
        let a = polybench::all();
        let b = polybench::all();
        let enc = |m: &wizard_wasm::Module| wizard_wasm::encode::encode(m);
        for ((na, ma), (nb, mb)) in a.iter().zip(b.iter()) {
            assert_eq!(na, nb);
            assert_eq!(enc(ma), enc(mb), "{na}: cached module differs across calls");
        }
        assert_eq!(
            enc(&richards::module()),
            enc(&richards::module()),
            "richards module is deterministic"
        );
    }

    #[test]
    fn cubic_kernels_get_smaller_sizes() {
        let pb = polybench_suite(Scale::Small);
        let heat = pb.iter().find(|b| b.name == "heat-3d").unwrap();
        let gemm = pb.iter().find(|b| b.name == "gemm").unwrap();
        assert!(heat.n < gemm.n);
    }
}
