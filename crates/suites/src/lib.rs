//! `wizard-suites`: the paper's benchmark programs as Wasm module
//! generators — PolyBench/C, Ostrich-style, libsodium-style, and a
//! Richards-style scheduler (for the JVMTI comparison).
//!
//! Every kernel is real WebAssembly produced by the `wizard-wasm`
//! assembler DSL and validated by its type checker; there is no C
//! toolchain in the loop (see DESIGN.md for the substitution table).
//! All kernels export `run(n: i32)` returning a checksum, so correctness
//! can be established differentially across engine tiers and baseline
//! systems.

#![warn(missing_docs)]

pub mod corpus;
pub mod dsl;
pub mod libsodium;
pub mod ostrich;
pub mod polybench;
pub mod randgen;
pub mod richards;

use wizard_wasm::module::Module;

/// Problem-size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Tiny inputs for unit tests.
    Test,
    /// Default benchmarking size (sub-second per kernel in the interpreter).
    #[default]
    Small,
    /// Larger runs for more stable timing.
    Medium,
}

/// One benchmark program: a module exporting `run(n) -> checksum`.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Suite name: `polybench`, `ostrich`, or `libsodium`.
    pub suite: &'static str,
    /// Program name (matching the paper's figure labels).
    pub name: &'static str,
    /// The compiled-to-Wasm program.
    pub module: Module,
    /// The `run` argument at the chosen scale.
    pub n: i32,
}

/// The PolyBench suite at `scale`.
pub fn polybench_suite(scale: Scale) -> Vec<Benchmark> {
    let (n, n3) = match scale {
        Scale::Test => (8, 5),
        Scale::Small => (18, 8),
        Scale::Medium => (28, 12),
    };
    polybench::all()
        .into_iter()
        .map(|(name, module)| Benchmark {
            suite: "polybench",
            name,
            module,
            n: if polybench::is_cubic(name) { n3 } else { n },
        })
        .collect()
}

/// The Ostrich-style suite at `scale`.
pub fn ostrich_suite(scale: Scale) -> Vec<Benchmark> {
    let n = match scale {
        Scale::Test => 1,
        Scale::Small => 2,
        Scale::Medium => 4,
    };
    ostrich::all()
        .into_iter()
        .map(|(name, module)| Benchmark { suite: "ostrich", name, module, n })
        .collect()
}

/// The libsodium-style suite at `scale`.
pub fn libsodium_suite(scale: Scale) -> Vec<Benchmark> {
    let n = match scale {
        Scale::Test => 1,
        Scale::Small => 2,
        Scale::Medium => 4,
    };
    libsodium::all()
        .into_iter()
        .map(|(name, module)| Benchmark { suite: "libsodium", name, module, n })
        .collect()
}

/// All three suites, concatenated.
pub fn all_suites(scale: Scale) -> Vec<Benchmark> {
    let mut v = polybench_suite(scale);
    v.extend(libsodium_suite(scale));
    v.extend(ostrich_suite(scale));
    v
}

/// The Richards-style scheduler benchmark (used by the JVMTI experiment).
pub fn richards_benchmark(loops: i32) -> Benchmark {
    Benchmark { suite: "richards", name: "richards", module: richards::module(), n: loops }
}

/// A mixed fleet for multi-process scheduling experiments (`wizard-pool`):
/// `size` jobs drawn from the Richards scheduler and the PolyBench
/// kernels, interleaved so every shard gets a heterogeneous mix of
/// control-flow-heavy and loop-heavy programs.
pub fn fleet(scale: Scale, size: usize) -> Vec<Benchmark> {
    let richards_loops = match scale {
        Scale::Test => 20,
        Scale::Small => 100,
        Scale::Medium => 300,
    };
    let pb = polybench_suite(scale);
    (0..size)
        .map(
            |k| {
                if k % 4 == 0 {
                    richards_benchmark(richards_loops)
                } else {
                    pb[k % pb.len()].clone()
                }
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_registries_are_complete() {
        let pb = polybench_suite(Scale::Test);
        assert_eq!(pb.len(), 29);
        assert!(pb.iter().any(|b| b.name == "floyd-warshall"));
        let os = ostrich_suite(Scale::Test);
        assert_eq!(os.len(), 10);
        let ls = libsodium_suite(Scale::Test);
        assert_eq!(ls.len(), 10);
        assert_eq!(all_suites(Scale::Test).len(), 49);
    }

    #[test]
    fn fleet_mixes_richards_and_polybench() {
        let f = fleet(Scale::Test, 8);
        assert_eq!(f.len(), 8);
        assert_eq!(f.iter().filter(|b| b.suite == "richards").count(), 2);
        assert!(f.iter().any(|b| b.suite == "polybench"));
    }

    #[test]
    fn suite_modules_are_cached_and_deterministic() {
        // The registries memoize their built modules; repeated calls hand
        // out byte-identical clones (so a fleet's jobs all resolve to one
        // shared artifact in wizard-pool's cache).
        let a = polybench::all();
        let b = polybench::all();
        let enc = |m: &wizard_wasm::Module| wizard_wasm::encode::encode(m);
        for ((na, ma), (nb, mb)) in a.iter().zip(b.iter()) {
            assert_eq!(na, nb);
            assert_eq!(enc(ma), enc(mb), "{na}: cached module differs across calls");
        }
        assert_eq!(
            enc(&richards::module()),
            enc(&richards::module()),
            "richards module is deterministic"
        );
    }

    #[test]
    fn cubic_kernels_get_smaller_sizes() {
        let pb = polybench_suite(Scale::Small);
        let heat = pb.iter().find(|b| b.name == "heat-3d").unwrap();
        let gemm = pb.iter().find(|b| b.name == "gemm").unwrap();
        assert!(heat.n < gemm.n);
    }
}
