//! Ostrich-style numerical kernels (Herrera et al., DLS'18): the paper's
//! second suite. Each kernel exports `run(n: i32) -> f64`.
//!
//! Substitutions (documented in DESIGN.md): kernels needing `sin`/`cos`/
//! `exp` (fft twiddles, back-propagation sigmoid) use algebraic stand-ins
//! with the same loop and memory structure, since core Wasm has no
//! transcendental instructions and neither did the paper's C-compiled
//! kernels (they linked libm; we inline rational approximations).

// The fft kernel hard-codes a truncated 1/sqrt(2) twiddle (0.7071) on
// purpose: results are compared differentially across systems, and the
// truncated constant keeps historical checksums stable.
#![allow(clippy::approx_constant)]

use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::{LocalIdx, Module};
use wizard_wasm::types::BlockType;
use wizard_wasm::types::ValType::{F64, I32, I64};

use crate::dsl::{a1, checksum1, fill1, ld1, st1};

const BUF: i32 = 0x1_0000;
const BUF2: i32 = 0x8_0000;
const PAGES: u32 = 16;

struct K {
    f: FuncBuilder,
    n: LocalIdx,
    i: LocalIdx,
    j: LocalIdx,
    k: LocalIdx,
    t: LocalIdx,
    u: LocalIdx,
    acc: LocalIdx,
    fa: LocalIdx,
}

fn kern() -> K {
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let i = f.local(I32);
    let j = f.local(I32);
    let k = f.local(I32);
    let t = f.local(I32);
    let u = f.local(I32);
    let acc = f.local(F64);
    let fa = f.local(F64);
    K { f, n: 0, i, j, k, t, u, acc, fa }
}

fn module(name: &str, mut kk: K) -> Module {
    kk.f.local_get(kk.acc);
    let mut mb = ModuleBuilder::new();
    mb.memory(PAGES);
    mb.add_func("run", kk.f);
    mb.build().unwrap_or_else(|e| panic!("kernel {name} failed to validate: {e}"))
}

/// `crc`: bitwise CRC-32 over `n` KiB of generated data.
pub fn crc() -> Module {
    let mut kk = kern();
    let K { ref mut f, n, i, k, t, acc, .. } = kk;
    // len = n * 1024 bytes at BUF, byte k = (k*31+7) & 0xff.
    f.local_get(n).i32_const(1024).i32_mul().local_set(t);
    f.for_range(i, t, |f| {
        f.local_get(i).i32_const(BUF).i32_add();
        f.local_get(i).i32_const(31).i32_mul().i32_const(7).i32_add();
        f.i32_store8(0);
    });
    // crc in k, init 0xffffffff.
    f.i32_const(-1).local_set(k);
    f.for_range(i, t, |f| {
        f.local_get(k);
        f.local_get(i).i32_const(BUF).i32_add().i32_load8_u(0);
        f.i32_xor().local_set(k);
        for _ in 0..8 {
            // k = (k >> 1) ^ (0xEDB88320 & -(k & 1))
            f.local_get(k).i32_const(1).i32_shr_u();
            f.i32_const(0xedb8_8320u32 as i32);
            f.i32_const(0).local_get(k).i32_const(1).i32_and().i32_sub();
            f.i32_and().i32_xor().local_set(k);
        }
    });
    f.local_get(k).i32_const(-1).i32_xor().f64_convert_i32_u().local_set(acc);
    module("crc", kk)
}

/// `fft`: radix-2 butterfly passes over 512 complex points, `n` rounds
/// (algebraic twiddles; same dataflow as an FFT stage sweep).
pub fn fft() -> Module {
    let mut kk = kern();
    let K { ref mut f, n, i, j, k, t, acc, fa, .. } = kk;
    let size: i32 = 512;
    // Interleaved re/im pairs at BUF (size*2 doubles).
    f.i32_const(size * 2).local_set(t);
    fill1(f, BUF, i, t, 7);
    f.for_range(k, n, |f| {
        // Stage sweep: half = 1, 2, 4, ..., size/2.
        f.i32_const(1).local_set(j);
        f.while_loop(
            |f| {
                f.local_get(j).i32_const(size).i32_lt_s();
            },
            |f| {
                f.i32_const(0).local_set(i);
                f.while_loop(
                    |f| {
                        f.local_get(i).i32_const(size).i32_lt_s();
                    },
                    |f| {
                        // Butterfly between point i and i+half (re only and
                        // im only with a fixed rational "twiddle" 0.7071).
                        for part in 0..2i32 {
                            // idx_a = (2i+part), idx_b = 2(i+half)+part
                            f.local_get(i).i32_const(2).i32_mul().i32_const(part).i32_add();
                            f.local_set(t);
                            a1(f, BUF, t);
                            a1(f, BUF, t);
                            f.f64_load(0).local_set(fa);
                            // b
                            f.local_get(i)
                                .local_get(j)
                                .i32_add()
                                .i32_const(2)
                                .i32_mul()
                                .i32_const(part)
                                .i32_add()
                                .local_set(t);
                            f.local_get(fa);
                            ld1(f, BUF, t);
                            f.f64_const(0.7071).f64_mul().f64_add();
                            f.f64_store(0);
                            // b' = a - w*b
                            a1(f, BUF, t);
                            f.local_get(fa);
                            ld1(f, BUF, t);
                            f.f64_const(0.7071).f64_mul().f64_sub();
                            f.f64_store(0);
                        }
                        // Advance i: within each 2*half block only the first
                        // half positions host butterflies, so when (i+1) is a
                        // multiple of half, skip the second half.
                        f.local_get(i).i32_const(1).i32_add().local_get(j).i32_add(); // i+1+half
                        f.local_get(i).i32_const(1).i32_add(); // i+1
                        f.local_get(i).i32_const(1).i32_add().local_get(j).i32_rem_s().i32_eqz();
                        f.select().local_set(i);
                    },
                );
                f.local_get(j).i32_const(2).i32_mul().local_set(j);
            },
        );
    });
    f.i32_const(size * 2).local_set(t);
    checksum1(f, BUF, i, t, acc);
    module("fft", kk)
}

/// `nqueens`: count solutions for a `min(n, 10)`-queens board with
/// bitmask backtracking — a recursion/call-heavy integer kernel.
pub fn nqueens() -> Module {
    let mut mb = ModuleBuilder::new();
    mb.memory(1);
    // solve(cols, ld, rd, all) -> count   (recursive)
    let solve = mb.declare_func("solve", &[I32, I32, I32, I32], &[I32]);
    let mut s = FuncBuilder::new(&[I32, I32, I32, I32], &[I32]);
    let (cols, ld, rd, all) = (0, 1, 2, 3);
    let poss = s.local(I32);
    let bit = s.local(I32);
    let count = s.local(I32);
    s.local_get(cols).local_get(all).i32_eq().if_(BlockType::Empty);
    s.i32_const(1).return_();
    s.end();
    // poss = ~(cols | ld | rd) & all
    s.local_get(cols)
        .local_get(ld)
        .i32_or()
        .local_get(rd)
        .i32_or()
        .i32_const(-1)
        .i32_xor()
        .local_get(all)
        .i32_and()
        .local_set(poss);
    s.while_loop(
        |s| {
            s.local_get(poss).i32_const(0).i32_ne();
        },
        |s| {
            // bit = poss & -poss; poss -= bit
            s.local_get(poss).i32_const(0).local_get(poss).i32_sub().i32_and().local_set(bit);
            s.local_get(poss).local_get(bit).i32_sub().local_set(poss);
            s.local_get(count);
            s.local_get(cols).local_get(bit).i32_or();
            s.local_get(ld).local_get(bit).i32_or().i32_const(1).i32_shl();
            s.local_get(rd).local_get(bit).i32_or().i32_const(1).i32_shr_u();
            s.local_get(all);
            s.call(solve);
            s.i32_add().local_set(count);
        },
    );
    s.local_get(count);
    mb.define_func(solve, s);
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let size = f.local(I32);
    // size = clamp(n, 4, 10)
    f.local_get(0).i32_const(10).local_get(0).i32_const(10).i32_lt_s().select();
    f.local_set(size);
    f.i32_const(0).i32_const(0).i32_const(0);
    f.i32_const(1).local_get(size).i32_shl().i32_const(1).i32_sub();
    f.call(solve);
    f.f64_convert_i32_s();
    mb.add_func("run", f);
    mb.build().expect("nqueens validates")
}

/// `lud`: dense LU decomposition (Ostrich flavor, diagonally dominant).
pub fn lud() -> Module {
    let mut kk = kern();
    let K { ref mut f, n, i, j, k, t, acc, fa, .. } = kk;
    let a = BUF;
    // Fill n×n and dominate the diagonal.
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
            f.i32_const(8).i32_mul().i32_const(a).i32_add();
            f.local_get(i)
                .i32_const(7)
                .i32_mul()
                .local_get(j)
                .i32_add()
                .i32_const(97)
                .i32_rem_s()
                .f64_convert_i32_s()
                .f64_const(97.0)
                .f64_div()
                .f64_const(0.1)
                .f64_add()
                .local_set(fa);
            // Diagonal dominance: A[i][i] += n.
            f.local_get(fa).local_get(n).f64_convert_i32_s().f64_add();
            f.local_get(fa);
            f.local_get(i).local_get(j).i32_eq();
            f.select();
            f.f64_store(0);
        });
    });
    let ld2 = |f: &mut FuncBuilder, r: LocalIdx, c: LocalIdx, n: LocalIdx| {
        f.local_get(r).local_get(n).i32_mul().local_get(c).i32_add();
        f.i32_const(8).i32_mul().i32_const(a).i32_add().f64_load(0);
    };
    f.for_range(k, n, |f| {
        f.local_get(k).i32_const(1).i32_add().local_set(t);
        f.for_range_from(i, t, n, |f| {
            // A[i][k] /= A[k][k]
            f.local_get(i).local_get(n).i32_mul().local_get(k).i32_add();
            f.i32_const(8).i32_mul().i32_const(a).i32_add();
            ld2(f, i, k, n);
            ld2(f, k, k, n);
            f.f64_div();
            f.f64_store(0);
        });
        f.for_range_from(i, t, n, |f| {
            ld2(f, i, k, n);
            f.local_set(fa);
            f.for_range_from(j, t, n, |f| {
                f.local_get(i).local_get(n).i32_mul().local_get(j).i32_add();
                f.i32_const(8).i32_mul().i32_const(a).i32_add();
                ld2(f, i, j, n);
                f.local_get(fa);
                ld2(f, k, j, n);
                f.f64_mul().f64_sub();
                f.f64_store(0);
            });
        });
    });
    f.f64_const(0.0).local_set(acc);
    f.for_range(i, n, |f| {
        f.for_range(j, n, |f| {
            f.local_get(acc);
            ld2(f, i, j, n);
            f.f64_add().local_set(acc);
        });
    });
    module("lud", kk)
}

/// `nw`: Needleman-Wunsch sequence alignment (i32 DP).
pub fn nw() -> Module {
    let mut kk = kern();
    let K { ref mut f, n, i, j, t, k, u, acc, .. } = kk;
    let tbl = BUF; // (n+1)×(n+1) i32, stride n+1 in local t
    f.local_get(n).i32_const(1).i32_add().local_set(t);
    // Borders: T[i][0] = -2i, T[0][j] = -2j.
    f.for_range(i, t, |f| {
        f.local_get(i).local_get(t).i32_mul().i32_const(4).i32_mul().i32_const(tbl).i32_add();
        f.i32_const(-2).local_get(i).i32_mul();
        f.i32_store(0);
        f.local_get(i).i32_const(4).i32_mul().i32_const(tbl).i32_add();
        f.i32_const(-2).local_get(i).i32_mul();
        f.i32_store(0);
    });
    f.i32_const(1).local_set(i);
    f.while_loop(
        |f| {
            f.local_get(i).local_get(t).i32_lt_s();
        },
        |f| {
            f.i32_const(1).local_set(j);
            f.while_loop(
                |f| {
                    f.local_get(j).local_get(t).i32_lt_s();
                },
                |f| {
                    // match = (i*7+3)%4 == (j*5+1)%4 ? 1 : -1
                    // diag = T[i-1][j-1] + match
                    f.local_get(i).i32_const(1).i32_sub().local_get(t).i32_mul();
                    f.local_get(j).i32_const(1).i32_sub().i32_add();
                    f.i32_const(4).i32_mul().i32_const(tbl).i32_add().i32_load(0);
                    f.i32_const(1).i32_const(-1);
                    f.local_get(i)
                        .i32_const(7)
                        .i32_mul()
                        .i32_const(3)
                        .i32_add()
                        .i32_const(4)
                        .i32_rem_s();
                    f.local_get(j)
                        .i32_const(5)
                        .i32_mul()
                        .i32_const(1)
                        .i32_add()
                        .i32_const(4)
                        .i32_rem_s();
                    f.i32_eq().select().i32_add().local_set(k);
                    // up = T[i-1][j] - 2; left = T[i][j-1] - 2; max3
                    f.local_get(i)
                        .i32_const(1)
                        .i32_sub()
                        .local_get(t)
                        .i32_mul()
                        .local_get(j)
                        .i32_add();
                    f.i32_const(4).i32_mul().i32_const(tbl).i32_add().i32_load(0);
                    f.i32_const(2).i32_sub().local_set(u);
                    f.local_get(u);
                    f.local_get(k).local_get(u).local_get(k).i32_gt_s().select().local_set(k);
                    f.local_get(i).local_get(t).i32_mul().local_get(j).i32_add();
                    f.i32_const(4).i32_mul().i32_const(tbl - 4).i32_add().i32_load(0);
                    f.i32_const(2).i32_sub().local_set(u);
                    f.local_get(u);
                    f.local_get(k).local_get(u).local_get(k).i32_gt_s().select().local_set(k);
                    // store
                    f.local_get(i).local_get(t).i32_mul().local_get(j).i32_add();
                    f.i32_const(4).i32_mul().i32_const(tbl).i32_add();
                    f.local_get(k);
                    f.i32_store(0);
                    f.local_get(j).i32_const(1).i32_add().local_set(j);
                },
            );
            f.local_get(i).i32_const(1).i32_add().local_set(i);
        },
    );
    // checksum = T[n][n]
    f.local_get(n).local_get(t).i32_mul().local_get(n).i32_add();
    f.i32_const(4).i32_mul().i32_const(tbl).i32_add().i32_load(0);
    f.f64_convert_i32_s().local_set(acc);
    module("nw", kk)
}

/// `hmm`: forward algorithm over 16 hidden states, `n*16` observations.
pub fn hmm() -> Module {
    let mut kk = kern();
    let K { ref mut f, n, i, j, k, t, u, acc, fa } = kk;
    let (trans, alpha, alpha2) = (BUF, BUF2, BUF2 + 0x1000);
    let s = 16i32;
    // Transition matrix 16x16 and initial alpha vector.
    f.i32_const(s * s).local_set(t);
    fill1(f, trans, i, t, 7);
    f.i32_const(s).local_set(u);
    fill1(f, alpha, i, u, 11);
    f.local_get(n).i32_const(16).i32_mul().local_set(t);
    f.for_range(k, t, |f| {
        // alpha2[j] = (sum_i alpha[i]*trans[i][j]) * emit + tiny
        f.for_range(j, u, |f| {
            f.f64_const(0.0).local_set(fa);
            f.for_range(i, u, |f| {
                f.local_get(fa);
                ld1(f, alpha, i);
                f.local_get(i).i32_const(s).i32_mul().local_get(j).i32_add();
                f.i32_const(8).i32_mul().i32_const(trans).i32_add().f64_load(0);
                f.f64_mul().f64_add().local_set(fa);
            });
            st1(f, alpha2, j, |f| {
                f.local_get(fa).f64_const(0.0625).f64_mul().f64_const(1e-30).f64_add();
            });
        });
        // Normalize by the row sum and copy back.
        f.f64_const(0.0).local_set(fa);
        f.for_range(i, u, |f| {
            f.local_get(fa);
            ld1(f, alpha2, i);
            f.f64_add().local_set(fa);
        });
        f.for_range(i, u, |f| {
            st1(f, alpha, i, |f| {
                ld1(f, alpha2, i);
                f.local_get(fa).f64_div();
            });
        });
    });
    f.f64_const(0.0).local_set(acc);
    checksum1(f, alpha, i, u, acc);
    module("hmm", kk)
}

/// `lavamd`: particle force accumulation within a neighborhood (O(n²)
/// inner kernel with a distance cutoff).
pub fn lavamd() -> Module {
    let mut kk = kern();
    let K { ref mut f, n, i, j, t, acc, fa, .. } = kk;
    let (px, py, fx) = (BUF, BUF + 0x1_0000, BUF + 0x2_0000);
    f.local_get(n).i32_const(16).i32_mul().local_set(t);
    fill1(f, px, i, t, 7);
    fill1(f, py, i, t, 11);
    f.for_range(i, t, |f| {
        st1(f, fx, i, |f| {
            f.f64_const(0.0);
        });
    });
    f.for_range(i, t, |f| {
        f.for_range(j, t, |f| {
            // d = (px[i]-px[j])² + (py[i]-py[j])² + 0.01
            ld1(f, px, i);
            ld1(f, px, j);
            f.f64_sub();
            ld1(f, px, i);
            ld1(f, px, j);
            f.f64_sub();
            f.f64_mul();
            ld1(f, py, i);
            ld1(f, py, j);
            f.f64_sub();
            ld1(f, py, i);
            ld1(f, py, j);
            f.f64_sub();
            f.f64_mul();
            f.f64_add().f64_const(0.01).f64_add().local_set(fa);
            // if d < 0.5: fx[i] += 1/d
            f.local_get(fa).f64_const(0.5).f64_lt().if_(BlockType::Empty);
            a1(f, fx, i);
            ld1(f, fx, i);
            f.f64_const(1.0).local_get(fa).f64_div().f64_add();
            f.f64_store(0);
            f.end();
        });
    });
    checksum1(f, fx, i, t, acc);
    module("lavamd", kk)
}

/// `spmv`: sparse matrix-vector product in CSR form (7 nonzeros/row).
pub fn spmv() -> Module {
    let mut kk = kern();
    let K { ref mut f, n, i, j, t, acc, fa, .. } = kk;
    let (vals, x, y) = (BUF, BUF2, BUF2 + 0x1_0000);
    let nnz_per_row = 7i32;
    // rows = n*32; vals[k] filled; col(k) = (k*13) % rows computed on the fly.
    f.local_get(n).i32_const(32).i32_mul().local_set(t);
    f.local_get(t).i32_const(nnz_per_row).i32_mul().local_set(j);
    fill1(f, vals, i, j, 7);
    fill1(f, x, i, t, 11);
    f.for_range(i, t, |f| {
        f.f64_const(0.0).local_set(fa);
        f.for_const(j, nnz_per_row, |f| {
            // k = i*7 + j; col = (k*13) % rows
            f.local_get(fa);
            f.local_get(i).i32_const(nnz_per_row).i32_mul().local_get(j).i32_add();
            f.i32_const(8).i32_mul().i32_const(vals).i32_add().f64_load(0);
            f.local_get(i)
                .i32_const(nnz_per_row)
                .i32_mul()
                .local_get(j)
                .i32_add()
                .i32_const(13)
                .i32_mul()
                .local_get(t)
                .i32_rem_s();
            f.i32_const(8).i32_mul().i32_const(x).i32_add().f64_load(0);
            f.f64_mul().f64_add().local_set(fa);
        });
        st1(f, y, i, |f| {
            f.local_get(fa);
        });
    });
    checksum1(f, y, i, t, acc);
    module("spmv", kk)
}

/// `backprop`: one-hidden-layer forward/backward pass with a rational
/// activation (`x / (1 + |x|)` standing in for sigmoid).
pub fn backprop() -> Module {
    let mut kk = kern();
    let K { ref mut f, n, i, j, k, t, acc, fa, .. } = kk;
    let (w1, x, h, w2) = (BUF, BUF2, BUF2 + 0x1000, BUF2 + 0x2000);
    let hid = 64i32;
    // in = n*4 inputs, hid hidden units.
    f.local_get(n).i32_const(4).i32_mul().local_set(t);
    f.local_get(t).i32_const(hid).i32_mul().local_set(j);
    fill1(f, w1, i, j, 7);
    fill1(f, x, i, t, 11);
    f.i32_const(hid).local_set(j);
    fill1(f, w2, i, j, 13);
    // Forward: h[u] = act(Σ_i x[i]*w1[i*hid+u]).
    f.for_const(k, hid, |f| {
        f.f64_const(0.0).local_set(fa);
        f.for_range(i, t, |f| {
            f.local_get(fa);
            ld1(f, x, i);
            f.local_get(i).i32_const(hid).i32_mul().local_get(k).i32_add();
            f.i32_const(8).i32_mul().i32_const(w1).i32_add().f64_load(0);
            f.f64_mul().f64_add().local_set(fa);
        });
        st1(f, h, k, |f| {
            f.local_get(fa).local_get(fa).f64_abs().f64_const(1.0).f64_add().f64_div();
        });
    });
    // Output + backward: err = out - 0.5; w2[u] -= 0.1*err*h[u].
    f.f64_const(0.0).local_set(fa);
    f.for_const(k, hid, |f| {
        f.local_get(fa);
        ld1(f, h, k);
        ld1(f, w2, k);
        f.f64_mul().f64_add().local_set(fa);
    });
    f.local_get(fa).f64_const(0.5).f64_sub().local_set(fa);
    f.for_const(k, hid, |f| {
        a1(f, w2, k);
        ld1(f, w2, k);
        f.f64_const(0.1).local_get(fa).f64_mul();
        ld1(f, h, k);
        f.f64_mul().f64_sub();
        f.f64_store(0);
    });
    f.i32_const(hid).local_set(j);
    checksum1(f, w2, i, j, acc);
    module("back-propagation", kk)
}

/// `randombytes`: xorshift64* PRNG filling `n` KiB, checksummed.
pub fn randombytes() -> Module {
    let mut mb = ModuleBuilder::new();
    mb.memory(PAGES);
    let mut f = FuncBuilder::new(&[I32], &[F64]);
    let i = f.local(I32);
    let t = f.local(I32);
    let s = f.local(I64);
    let acc = f.local(I64);
    f.i64_const(0x9e37_79b9_7f4a_7c15u64 as i64).local_set(s);
    f.local_get(0).i32_const(128).i32_mul().local_set(t); // n*128 u64s
    f.for_range(i, t, |f| {
        // xorshift64*
        f.local_get(s).local_get(s).i64_const(12).i64_shr_u().i64_xor().local_set(s);
        f.local_get(s).local_get(s).i64_const(25).i64_shl().i64_xor().local_set(s);
        f.local_get(s).local_get(s).i64_const(27).i64_shr_u().i64_xor().local_set(s);
        f.local_get(i).i32_const(8).i32_mul().i32_const(BUF).i32_add();
        f.local_get(s).i64_const(0x2545_f491_4f6c_dd1du64 as i64).i64_mul();
        f.i64_store(0);
        f.local_get(acc);
        f.local_get(i).i32_const(8).i32_mul().i32_const(BUF).i32_add().i64_load(0);
        f.i64_add().local_set(acc);
    });
    f.local_get(acc).i64_const(0xffff_ffff).i64_and().f64_convert_i64_s();
    mb.add_func("run", f);
    mb.build().expect("randombytes validates")
}

/// The built suite, memoized — see `polybench::all` for the rationale.
static ALL: std::sync::LazyLock<Vec<(&'static str, Module)>> = std::sync::LazyLock::new(build_all);

/// Returns every Ostrich-style kernel as `(name, module)` (cached).
pub fn all() -> Vec<(&'static str, Module)> {
    ALL.clone()
}

fn build_all() -> Vec<(&'static str, Module)> {
    vec![
        ("lavamd", lavamd()),
        ("fft", fft()),
        ("crc", crc()),
        ("nw", nw()),
        ("randombytes", randombytes()),
        ("lud", lud()),
        ("nqueens", nqueens()),
        ("hmm", hmm()),
        ("back-propagation", backprop()),
        ("spmv", spmv()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};

    #[test]
    fn all_kernels_validate_and_tiers_agree() {
        for (name, module) in all() {
            let mut interp =
                Process::new(module.clone(), EngineConfig::interpreter(), &Linker::new())
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut jit = Process::new(module, EngineConfig::jit(), &Linker::new()).unwrap();
            let r1 = interp
                .invoke_export("run", &[Value::I32(2)])
                .unwrap_or_else(|e| panic!("{name} (interp): {e}"));
            let r2 = jit
                .invoke_export("run", &[Value::I32(2)])
                .unwrap_or_else(|e| panic!("{name} (jit): {e}"));
            assert_eq!(r1[0].to_slot(), r2[0].to_slot(), "{name}: tiers diverge");
            assert!(r1[0].as_f64().unwrap().is_finite(), "{name}: non-finite checksum");
        }
    }
}
