//! The script-level `trace` action is sugar for the hand-written
//! streaming tracer: on the same module and input, `match branch do
//! trace` must produce a stream *byte-identical* to
//! [`StreamingTraceMonitor`]'s — same dictionary, same site ids, same
//! delta encoding, same block framing.

use wizard_engine::store::Linker;
use wizard_engine::{EngineConfig, Process, Value};
use wizard_script::ScriptMonitor;
use wizard_suites::richards;
use wizard_trace::{decode_trace, StreamingTraceMonitor, TraceEvent};

fn richards_process(config: EngineConfig) -> Process {
    Process::new(richards::module(), config, &Linker::new()).expect("richards instantiates")
}

#[test]
fn script_trace_is_byte_identical_to_streaming_monitor() {
    let mut scripted = richards_process(EngineConfig::interpreter());
    let sm = scripted
        .attach_monitor(ScriptMonitor::from_source("match branch do trace").unwrap())
        .expect("attach");
    let out = scripted.invoke_export("run", &[Value::I32(2)]).expect("runs");
    scripted.detach_monitor(sm.handle()).expect("detach");
    let script_bytes = sm.borrow().trace_data().expect("default sink is in-memory");

    let mut handwritten = richards_process(EngineConfig::interpreter());
    let tm = handwritten.attach_monitor(StreamingTraceMonitor::in_memory()).expect("attach");
    assert_eq!(handwritten.invoke_export("run", &[Value::I32(2)]).expect("runs"), out);
    handwritten.detach_monitor(tm.handle()).expect("detach");
    let monitor_bytes = tm.borrow().trace_data().expect("in-memory tracer");

    assert!(!script_bytes.is_empty());
    assert_eq!(script_bytes, monitor_bytes, "scripted and hand-attached streams diverge");

    // And the shared stream decodes to real branch activity.
    let (dict, events) = decode_trace(&script_bytes).expect("stream decodes");
    assert!(!dict.is_empty());
    assert!(events.iter().any(|e| matches!(e, TraceEvent::Branch { .. })));
    let mon = sm.borrow();
    let c = mon.trace_counters();
    assert_eq!(c.events, events.len() as u64);
    assert_eq!(c.bytes, script_bytes.len() as u64);
    assert!(mon.trace_error().is_none());
}

#[test]
fn trace_composes_with_counters_and_credits_stats() {
    // A trace rule rides alongside ordinary counting rules in the same
    // batch; detach credits the stream to `EngineStats` and restores the
    // zero-probe baseline.
    let src = "match branch do trace\n\
               match branch do inc branches\n\
               report \"summary\" total \"branches\" branches";
    let mut p = richards_process(EngineConfig::interpreter());
    assert_eq!(p.stats().trace_events, 0);
    let m = p.attach_monitor(ScriptMonitor::from_source(src).unwrap()).expect("attach");
    p.invoke_export("run", &[Value::I32(1)]).expect("runs");
    p.detach_monitor(m.handle()).expect("detach");
    assert_eq!(p.probed_location_count(), 0, "detach restores the baseline");

    let mon = m.borrow();
    let data = mon.trace_data().expect("in-memory trace");
    let (_, events) = decode_trace(&data).expect("stream decodes");
    let branches = events.iter().filter(|e| matches!(e, TraceEvent::Branch { .. })).count() as u64;
    assert_eq!(branches, mon.counter("branches"), "stream and counter agree");
    assert_eq!(p.stats().trace_events, mon.trace_counters().events);
    assert_eq!(p.stats().trace_bytes, data.len() as u64);
}

#[test]
fn trace_validation_rejects_bad_shapes() {
    for bad in
        ["match call do trace", "match branch when tos != 0 do trace", "match branch once do trace"]
    {
        let err = wizard_script::Script::parse(bad).unwrap_err();
        assert!(err.to_string().contains("trace"), "{bad}: {err}");
    }
}
